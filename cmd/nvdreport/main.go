// Command nvdreport regenerates every table and figure of the paper's
// evaluation from a synthetic snapshot: it generates the data, runs the
// full cleaning pipeline, and prints each experiment.
//
// Usage:
//
//	nvdreport                         # all experiments, small scale
//	nvdreport -scale paper -epochs 100
//	nvdreport -only table5,table7     # subset
//	nvdreport -ablations              # design-choice sweeps too
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nvdclean/internal/experiments"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvdreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale       = flag.String("scale", "small", "snapshot scale: paper, small, tiny")
		seed        = flag.Int64("seed", 1, "generator seed")
		epochs      = flag.Int("epochs", 40, "training epochs for the deep models")
		compact     = flag.Bool("compact", true, "use compact (fast) neural models")
		lrOnly      = flag.Bool("lr-only", false, "train only the linear model")
		only        = flag.String("only", "", "comma-separated experiment ids to run")
		ablations   = flag.Bool("ablations", false, "also run the design-choice ablations")
		timeout     = flag.Duration("timeout", time.Hour, "overall deadline")
		concurrency = flag.Int("concurrency", 0, "worker bound for every stage (0: GOMAXPROCS)")
	)
	flag.Parse()

	var cfg gen.Config
	switch *scale {
	case "paper":
		cfg = gen.DefaultConfig()
	case "small":
		cfg = gen.SmallConfig()
	case "tiny":
		cfg = gen.TinyConfig()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	opts := experiments.Options{
		Scale:       cfg,
		ModelConfig: predict.ModelConfig{Epochs: *epochs, Compact: *compact, Seed: *seed},
		Concurrency: *concurrency,
	}
	if *lrOnly {
		opts.Models = []predict.ModelKind{predict.ModelLR}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building suite (%s scale, %d CVEs)...\n", *scale, cfg.NumCVEs)
	suite, err := experiments.NewSuite(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pipeline complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[id] = true
		}
	}
	if len(wanted) == 0 && !*ablations {
		// Full run: render every experiment in parallel, print in
		// paper order.
		for _, r := range suite.RenderAll() {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			fmt.Printf("=== %s — %s ===\n%s\n", r.ID, r.Title, r.Output)
		}
		return nil
	}
	exps := suite.All()
	if *ablations {
		exps = append(exps, suite.Ablations(ctx)...)
	}
	ran := 0
	for _, exp := range exps {
		if len(wanted) > 0 && !wanted[exp.ID] {
			continue
		}
		out, err := exp.Render()
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Printf("=== %s — %s ===\n%s\n", exp.ID, exp.Title, out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q", *only)
	}
	return nil
}
