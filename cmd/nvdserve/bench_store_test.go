package main

import (
	"context"
	"sync"
	"testing"

	"nvdclean"
	"nvdclean/internal/cvss"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// benchWorld is the shared benchmark fixture: one cleaned small-scale
// (3K CVE) generation plus the query mix the latency benchmarks
// rotate through. Built once; benchmarks only read it.
var benchWorld struct {
	once sync.Once
	err  error
	opts nvdclean.Options
	snap *nvdclean.Snapshot
	srv  *server
	st   *serveState
	mix  []queryParams
}

func benchState(b *testing.B) *serveState {
	b.Helper()
	benchWorld.once.Do(func() {
		snap, truth, err := nvdclean.GenerateSnapshot(nvdclean.SmallScale())
		if err != nil {
			benchWorld.err = err
			return
		}
		opts := nvdclean.Options{
			Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
			Models:      []predict.ModelKind{predict.ModelLR},
			ModelConfig: predict.ModelConfig{Seed: 1},
			Seed:        1,
		}
		srv := newServer(opts)
		if err := srv.load(context.Background(), snap); err != nil {
			benchWorld.err = err
			return
		}
		benchWorld.opts = opts
		benchWorld.snap = snap
		benchWorld.srv = srv
		benchWorld.st = srv.cur.Load()
		e := benchWorld.st.res.Cleaned.Entries[0]
		benchWorld.mix = []queryParams{
			{vendor: e.CPEs[0].Vendor, limit: 50},
			{vendor: e.CPEs[0].Vendor, product: e.CPEs[0].Product, limit: 50},
			{sev: cvss.SeverityHigh, hasSev: true, year: e.Year(), limit: 50},
			{year: 2017, sev: cvss.SeverityCritical, hasSev: true, limit: 50},
		}
	})
	if benchWorld.err != nil {
		b.Fatal(benchWorld.err)
	}
	return benchWorld.st
}

// BenchmarkQueryIndexed measures /query answered by index
// intersection over the sharded inverted indexes.
func BenchmarkQueryIndexed(b *testing.B) {
	st := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchWorld.mix[i%len(benchWorld.mix)]
		if resp := st.queryIndexed(p); resp.Total < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkQueryScan measures the same query mix answered by the
// reference O(entries) linear scan — the pre-index serving path.
func BenchmarkQueryScan(b *testing.B) {
	st := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchWorld.mix[i%len(benchWorld.mix)]
		if resp := st.queryScan(p); resp.Total < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkIndexBuild measures a full index build of the generation,
// the cost a warm restart pays once at boot.
func BenchmarkIndexBuild(b *testing.B) {
	st := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix := store.BuildIndex(st.res.Cleaned, 0); ix == nil {
			b.Fatal("nil index")
		}
	}
}

// restartWorld is the restart-benchmark fixture: the same small-scale
// snapshot cleaned under a production-shaped configuration — the
// paper's full model zoo (LR, SVR, CNN, DNN; compact widths, the
// repo's standard 25 benchmark epochs) — which is the training cost a
// cold restart pays and a warm restart restores from engine.json.
var restartWorld struct {
	once sync.Once
	err  error
	opts nvdclean.Options
	snap *nvdclean.Snapshot
	res  *nvdclean.Result
}

func restartFixture(b *testing.B) {
	b.Helper()
	restartWorld.once.Do(func() {
		snap, truth, err := nvdclean.GenerateSnapshot(nvdclean.SmallScale())
		if err != nil {
			restartWorld.err = err
			return
		}
		opts := nvdclean.Options{
			Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
			Models:      nil, // the full zoo, as the paper trains
			ModelConfig: predict.ModelConfig{Epochs: 25, Compact: true, Seed: 1},
			Seed:        1,
		}
		res, err := nvdclean.Clean(context.Background(), snap, opts)
		if err != nil {
			restartWorld.err = err
			return
		}
		restartWorld.opts = opts
		restartWorld.snap = snap
		restartWorld.res = res
	})
	if restartWorld.err != nil {
		b.Fatal(restartWorld.err)
	}
}

// BenchmarkWarmRestart measures restoring a serving generation from a
// committed checkpoint directory — disk read, decode, Result
// reassembly and index build; no crawling, no training, no pipeline
// stages.
func BenchmarkWarmRestart(b *testing.B) {
	restartFixture(b)
	dir := b.TempDir()
	str, _, _, _, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := str.Commit(restartWorld.res.StoreCheckpoint()); err != nil {
		b.Fatal(err)
	}
	str.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		str, cp, logged, _, err := store.Open(dir)
		if err != nil || cp == nil || len(logged) != 0 {
			b.Fatalf("open: %v", err)
		}
		res, err := nvdclean.RestoreResult(cp, restartWorld.opts)
		if err != nil {
			b.Fatal(err)
		}
		if ix := store.BuildIndex(res.Cleaned, 0); ix == nil {
			b.Fatal("nil index")
		}
		str.Close()
	}
}

// BenchmarkColdRestart measures the restart path without a store: the
// full cleaning pipeline (crawl, consolidation, CWE fix, zoo
// training, backport) plus the index build.
func BenchmarkColdRestart(b *testing.B) {
	restartFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nvdclean.Clean(context.Background(), restartWorld.snap, restartWorld.opts)
		if err != nil {
			b.Fatal(err)
		}
		if ix := store.BuildIndex(res.Cleaned, 0); ix == nil {
			b.Fatal("nil index")
		}
	}
}
