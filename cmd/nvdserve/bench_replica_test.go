package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/store"
)

// BENCH_8 harness: replication economics. The paper's daemon exists so
// nobody re-runs the cleaning pipeline; replication extends that claim
// across machines. BenchmarkFollowerCatchUp measures provisioning a
// replica over HTTP (manifest, verified checkpoint install, restore,
// tail replay) and is read against BenchmarkColdRestart from
// bench_store_test.go — the same fixture cleaned from scratch — for
// the catch-up-vs-re-clean ratio. BenchmarkFollowerSteadyStateLag
// measures how far behind a tailing replica runs under continuous
// primary ingest.

// BenchmarkFollowerBootstrap: one iteration = a cold machine becoming
// a serving replica of a freshly-compacted primary (checkpoint only,
// empty tail) — the pure replication machinery: manifest fetch,
// concurrent verified install, staged-checkpoint load, RestoreResult,
// serving swap, and the caught-up poll. This is the number to read
// against BenchmarkColdRestart for the ship-vs-re-clean ratio; tail
// replay on top of it costs whatever the deltas cost the primary at
// ingest (BenchmarkFollowerCatchUp below).
func BenchmarkFollowerBootstrap(b *testing.B) {
	restartFixture(b)
	pStr, _, _, _, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer pStr.Close()
	if err := pStr.Commit(restartWorld.res.StoreCheckpoint()); err != nil {
		b.Fatal(err)
	}
	psrv := newServer(restartWorld.opts)
	psrv.persist = pStr
	ts := httptest.NewServer(psrv.handler())
	defer ts.Close()
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fStr, _, _, _, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		fsrv := newServer(restartWorld.opts)
		fsrv.persist = fStr
		fol := newFollower(fsrv, ts.URL, time.Millisecond, 0)
		if err := fol.bootstrap(ctx); err != nil {
			b.Fatal(err)
		}
		for {
			wait, err := fol.syncOnce(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if wait > 0 {
				break
			}
		}
		st := fsrv.cur.Load()
		if st == nil || st.res.Cleaned.Len() != restartWorld.res.Cleaned.Len() {
			b.Fatalf("replica view incomplete: %v", st)
		}
		b.StopTimer()
		fStr.Close()
		b.StartTimer()
	}
}

// BenchmarkFollowerCatchUp: one iteration = a cold machine becoming a
// serving replica. The primary holds the production-shaped (full zoo)
// checkpoint plus a sealed and an active tail segment, so the follower
// pays every phase: bootstrap install, RestoreResult, index build,
// sealed-segment replay with its local checkpoint, and the live tail.
func BenchmarkFollowerCatchUp(b *testing.B) {
	restartFixture(b)
	pStr, _, _, _, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer pStr.Close()
	if err := pStr.Commit(restartWorld.res.StoreCheckpoint()); err != nil {
		b.Fatal(err)
	}
	// The tail holds modification deltas (description edits — the
	// daily-churn shape), which the fold warm-starts through the
	// trained engine. A tail with *added* entries would additionally
	// pay zoo retraining — that is ingest cost (BENCH_4), identical on
	// primary and follower, not replication cost.
	base := restartWorld.res.Original
	for i, seal := range []bool{true, false} {
		mod := base.Entries[i].Clone()
		mod.Descriptions[0].Value += " Advisory updated."
		d := &nvdclean.Delta{CapturedAt: base.CapturedAt.Add(time.Duration(i+1) * time.Hour), Modified: []*nvdclean.Entry{mod}}
		d.Sort()
		if err := pStr.AppendDelta(d); err != nil {
			b.Fatal(err)
		}
		if seal {
			if _, err := pStr.Seal(); err != nil {
				b.Fatal(err)
			}
		}
	}
	psrv := newServer(restartWorld.opts)
	psrv.persist = pStr
	ts := httptest.NewServer(psrv.handler())
	defer ts.Close()
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fStr, _, _, _, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		fsrv := newServer(restartWorld.opts)
		fsrv.persist = fStr
		// Production shape: followers checkpoint their sealed segments
		// through the background commit queue, so time-to-serving does
		// not include the local commit. The queue drains between
		// iterations, off the clock — same protocol as
		// BenchmarkFeedIngestCompactBackground.
		fsrv.committer = store.NewCommitter(fStr)
		fol := newFollower(fsrv, ts.URL, time.Millisecond, 0)
		if err := fol.bootstrap(ctx); err != nil {
			b.Fatal(err)
		}
		for {
			wait, err := fol.syncOnce(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if wait > 0 {
				break
			}
		}
		st := fsrv.cur.Load()
		if st == nil || st.res.Cleaned.Len() != restartWorld.res.Cleaned.Len() {
			b.Fatalf("replica view incomplete: %v", st)
		}
		if e := st.byID[base.Entries[1].ID]; e == nil || !strings.Contains(e.Descriptions[0].Value, "Advisory updated.") {
			b.Fatal("replica view missing the tail modifications")
		}
		b.StopTimer()
		fsrv.committer.Close()
		fStr.Close()
		b.StartTimer()
	}
}

// BenchmarkFollowerSteadyStateLag: a replica tails (1ms poll, via its
// background loop) while the primary ingests one delta per iteration
// through POST /feed, compacting every 8th. Each iteration measures
// acknowledged-write-to-replica-durable lag: from the primary's feed
// ack until the follower's log position reaches the primary's (the
// fold into the serving view completes inside the same apply hold).
// p50/max land in BENCH_8.json via ReportMetric.
func BenchmarkFollowerSteadyStateLag(b *testing.B) {
	benchState(b)
	opts, snap := benchWorld.opts, benchWorld.snap
	ctx := context.Background()

	pStr, _, _, _, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer pStr.Close()
	cp := benchWorld.st.res.StoreCheckpoint()
	if err := pStr.Commit(cp); err != nil {
		b.Fatal(err)
	}
	pRes, err := nvdclean.RestoreResult(cp, opts)
	if err != nil {
		b.Fatal(err)
	}
	primary := newServer(opts)
	primary.persist = pStr
	primary.compactEvery = 8
	primary.committer = store.NewCommitter(pStr)
	defer primary.committer.Close()
	primary.cur.Store(primary.newState(pRes, nil, nil, nil, 0, 1, false, true))
	ts := httptest.NewServer(primary.handler())
	defer ts.Close()

	fStr, _, _, _, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer fStr.Close()
	fsrv := newServer(opts)
	fsrv.persist = fStr
	fol := newFollower(fsrv, ts.URL, time.Millisecond, 0)
	fsrv.follower = fol
	fctx, fcancel := context.WithCancel(ctx)
	go fol.run(fctx)
	defer func() { fcancel(); <-fol.done }()

	// Let the replica bootstrap before the clock starts.
	for start := time.Now(); fsrv.cur.Load() == nil; {
		if time.Since(start) > time.Minute {
			b.Fatal("replica never bootstrapped")
		}
		time.Sleep(time.Millisecond)
	}

	caughtUp := func() bool {
		pSeq, pOff := pStr.LastPosition()
		fSeq, fOff := fStr.LastPosition()
		return fSeq > pSeq || (fSeq == pSeq && fOff >= pOff)
	}
	lags := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := snap.Entries[i%5].Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" steady-state %d", i)
		body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Minute), Entries: []*nvdclean.Entry{mod}}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, body); err != nil {
			b.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("POST /feed %d = %d", i, resp.StatusCode)
		}
		acked := time.Now()
		for !caughtUp() {
			if time.Since(acked) > 30*time.Second {
				b.Fatal("replica stalled")
			}
			time.Sleep(100 * time.Microsecond)
		}
		lags = append(lags, time.Since(acked))
	}
	b.StopTimer()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	b.ReportMetric(float64(lags[len(lags)/2].Nanoseconds()), "p50-lag-ns")
	b.ReportMetric(float64(lags[len(lags)-1].Nanoseconds()), "max-lag-ns")
}
