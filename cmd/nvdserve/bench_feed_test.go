package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// The feed-latency benchmarks measure what a client waits on POST
// /feed — the paper-facing cost the commit queue exists to bound. Each
// iteration posts a one-entry modification; the three variants differ
// only in what compaction does:
//
//	NoCompact          the log grows, no checkpoint is ever written —
//	                   the floor an ingest can cost.
//	CompactSync        every ingest trips compaction and pays the full
//	                   checkpoint write inline (-compact-sync).
//	CompactBackground  every ingest trips compaction but only seals
//	                   and enqueues; the committer pays the write.
//
// Besides ns/op (which averages away the stalls), each benchmark
// reports the p50 and p99 of the per-request wall time — the
// acceptance criterion is CompactBackground's p99 staying within ~2x
// of NoCompact's, where CompactSync sits at the full checkpoint cost.
//
// The benchmarks measure the latency of an *isolated* ingest — the
// stall a feed client observes, which is what the commit queue exists
// to remove — so the background variant drains the commit queue
// between iterations, outside the timed window. Feed updates arrive
// minutes apart in production; without the drain, a single-CPU host
// measures the committer contending for the core inside the next
// iteration (a throughput ceiling no queue can lift), not the request
// stall. On multicore hosts the commit overlaps ingests as well.
func benchFeedIngest(b *testing.B, compactEvery int, background bool) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	dir := b.TempDir()
	str, _, _, _, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer str.Close()
	srv := newServer(opts)
	srv.persist = str
	srv.compactEvery = compactEvery
	if background {
		srv.committer = store.NewCommitter(str)
		defer srv.committer.Close()
	}
	if err := srv.load(context.Background(), snap); err != nil {
		b.Fatal(err)
	}
	handler := srv.handler()

	// Each post toggles one entry's description, so every iteration
	// carries exactly one modified entry relative to the served
	// snapshot.
	target := snap.Entries[0]
	bodyFor := func(i int) *bytes.Reader {
		mod := target.Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" update %d", i)
		update := &nvdclean.Snapshot{
			CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Minute),
			Entries:    []*nvdclean.Entry{mod},
		}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, update); err != nil {
			b.Fatal(err)
		}
		return bytes.NewReader(buf.Bytes())
	}

	drain := func() {
		if srv.committer == nil {
			return
		}
		for srv.committer.Stats().Pending || str.SealedSegments() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodyFor(i)
		req := httptest.NewRequest("POST", "/feed", body)
		w := httptest.NewRecorder()
		start := time.Now()
		handler.ServeHTTP(w, req)
		durs = append(durs, time.Since(start))
		if w.Code != 200 {
			b.Fatalf("POST /feed = %d: %s", w.Code, w.Body.String())
		}
		b.StopTimer()
		drain()
		b.StartTimer()
	}
	b.StopTimer()
	slices.Sort(durs)
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(durs)-1))
		return float64(durs[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
}

// BenchmarkFeedIngestNoCompact is the floor: ingest with the log
// growing and no checkpoint ever written.
func BenchmarkFeedIngestNoCompact(b *testing.B) {
	benchFeedIngest(b, 0, false)
}

// BenchmarkFeedIngestCompactSync pays the full checkpoint write inside
// every POST /feed (-compact-sync with compactEvery=1) — the stall the
// commit queue removes.
func BenchmarkFeedIngestCompactSync(b *testing.B) {
	benchFeedIngest(b, 1, false)
}

// BenchmarkFeedIngestCompactBackground seals and enqueues on every
// POST /feed; the background committer pays the write.
func BenchmarkFeedIngestCompactBackground(b *testing.B) {
	benchFeedIngest(b, 1, true)
}
