package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// TestRaceReplicaTailDuringCompaction stresses the replication stream's
// concurrency surface: a follower tails a primary whose every ingest
// seals a segment and enqueues a background checkpoint (compactEvery=1),
// so the follower's reads race seals, commits, and segment retirement —
// forcing live 410 re-bootstraps — while its own readers race the fold
// swaps. Afterwards the follower, drained synchronously, must converge
// to the primary's exact serving view.
func TestRaceReplicaTailDuringCompaction(t *testing.T) {
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LR-only for the same reason as the other race tests: the race
	// surface does not depend on which models train.
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}

	pStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pStr.Close()
	primary := newServer(opts)
	primary.persist = pStr
	primary.compactEvery = 1
	primary.committer = store.NewCommitter(pStr)
	if err := primary.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary.handler())
	defer ts.Close()

	fStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fStr.Close()
	fsrv := newServer(opts)
	fsrv.persist = fStr
	fsrv.committer = store.NewCommitter(fStr)
	fol := newFollower(fsrv, ts.URL, 5*time.Millisecond, 0)
	fsrv.follower = fol
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	fctx, fcancel := context.WithCancel(context.Background())
	go fol.run(fctx)

	// Readers hammer the follower while folds swap generations under it.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/query?severity=HIGH", "/stats", "/readyz"} {
					if resp, err := fts.Client().Get(fts.URL + path); err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}

	// Sequential compacting ingests on the primary: each one seals the
	// follower's cursor segment and soon retires it.
	const posts = 6
	for i := 0; i < posts; i++ {
		mod := snap.Entries[i%3].Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" replica race %d", i)
		body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Hour), Entries: []*nvdclean.Entry{mod}}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, body); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST /feed %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	close(stop)
	wg.Wait()
	fcancel()
	<-fol.done

	// The primary is quiescent now; drain the follower synchronously to
	// whatever the stream's committed end is and compare views.
	ctx := context.Background()
	for i := 0; fsrv.cur.Load() == nil; i++ {
		if i > 20 {
			t.Fatal("follower never bootstrapped")
		}
		if err := fol.bootstrap(ctx); err != nil {
			t.Logf("bootstrap retry: %v", err)
		}
	}
	catchUp(t, ctx, fol)
	// Positions either match exactly, or the follower re-bootstrapped
	// from a checkpoint covering the primary's whole log and parks at
	// the empty successor segment — same content, one boundary apart.
	pSeq, pOff := pStr.LastPosition()
	fSeq, fOff := fStr.LastPosition()
	if !(pSeq == fSeq && pOff == fOff) && !(fSeq == pStr.Watermark()+1 && fOff == 0) {
		t.Fatalf("positions diverge after the race: primary (%d,%d) watermark %d, follower (%d,%d)",
			pSeq, pOff, pStr.Watermark(), fSeq, fOff)
	}
	assertConverged(t, "post-race", primary, fsrv)

	// Both commit queues drain cleanly (Close waits for in-flight work).
	fsrv.committer.Close()
	primary.committer.Close()
}
