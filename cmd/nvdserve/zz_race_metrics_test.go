package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// TestRaceMetricsScrapeDuringFeed hammers GET /metrics (which samples
// store, committer, index, and generation state through scrape-time
// closures) concurrently with generation swaps and background commits:
// every POST /feed trips compaction (compactEvery=1), so scrapes race
// segment seals, queue handoffs, and the committer's checkpoint writes.
// The scrape output itself must stay well-formed under the race — the
// final body goes through the full format parser.
func TestRaceMetricsScrapeDuringFeed(t *testing.T) {
	dir := t.TempDir()
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LR-only for the same reason as the other race harnesses: the
	// contended surface is scrape-vs-swap, not model training.
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	st, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv.persist = st
	srv.compactEvery = 1
	srv.committer = store.NewCommitter(st)
	srv.persist.SetCommitObserver(srv.observeCommit)
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/stats", "/readyz"} {
					if resp, err := ts.Client().Get(ts.URL + path); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	const posts = 4
	for i := 0; i < posts; i++ {
		mod := snap.Entries[i%3].Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" scrape race %d", i)
		body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Hour), Entries: []*nvdclean.Entry{mod}}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, body); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST /feed %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
	srv.committer.Close()

	// After the dust settles the scrape must still be a valid
	// exposition reflecting everything that happened: all swaps in the
	// ingest histogram, the checkpoint observer fired, gauges sampling
	// the final state.
	fams := scrape(t, ts)
	if got := histCount("nvdserve_ingest_swap_seconds", fams["nvdserve_ingest_swap_seconds"]); got != posts {
		t.Errorf("ingest swap count = %g, want %d", got, posts)
	}
	if got := histCount("nvdserve_store_checkpoint_seconds", fams["nvdserve_store_checkpoint_seconds"]); got < 1 {
		t.Errorf("checkpoint histogram never observed a commit (count %g)", got)
	}
	if v := fams["nvdserve_generation_sequence"].samples[0].value; v != posts+1 {
		t.Errorf("generation sequence = %g, want %d", v, posts+1)
	}
	if v := fams["nvdserve_store_commit_queue_depth"].samples[0].value; v != 0 {
		t.Errorf("commit queue depth after drain = %g, want 0", v)
	}
}
