package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/fsio"
	"nvdclean/internal/store"
)

// enospcDecider fails every mutating filesystem op with ENOSPC except
// Truncate: shrinking a file needs no new space, which is exactly what
// a real full disk allows. Keeping truncate working lets the WAL's
// failed-append rollback succeed, so the log is not poisoned and the
// daemon can resume appending the moment space frees up.
func enospcDecider(op fsio.Op) fsio.Decision {
	if op.Kind == fsio.OpTruncate {
		return fsio.Decision{}
	}
	return fsio.Decision{Err: syscall.ENOSPC}
}

// degradedServer builds a daemon over a store whose filesystem is an
// injector, with the recovery probe cadence shrunk to test speed.
func degradedServer(t *testing.T) (*server, *nvdclean.Snapshot, *fsio.Injector, string) {
	t.Helper()
	srv, snap := demoServer(t)
	inj := fsio.NewInjector(fsio.OS{})
	dir := t.TempDir()
	st, _, _, _, err := store.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv.persist = st
	srv.persist.SetCommitObserver(srv.observeCommit)
	srv.health.probeInitial = 5 * time.Millisecond
	srv.health.probeMax = 20 * time.Millisecond
	t.Cleanup(srv.health.close)
	// Record the boot checkpoint so the store mirrors the served view.
	cp := srv.cur.Load().res.StoreCheckpoint()
	if err := st.Commit(cp); err != nil {
		t.Fatal(err)
	}
	return srv, snap, inj, dir
}

// namedUpdate clones a v2-only entry from snap under a fresh CVE ID,
// so successive posts carry non-empty, distinct deltas.
func namedUpdate(t *testing.T, snap *nvdclean.Snapshot, id string) *nvdclean.Snapshot {
	t.Helper()
	for _, e := range snap.Entries {
		if e.V2 != nil && e.V3 == nil {
			added := e.Clone()
			added.ID = id
			return &nvdclean.Snapshot{
				CapturedAt: snap.CapturedAt.Add(24 * time.Hour),
				Entries:    []*nvdclean.Entry{added},
			}
		}
	}
	t.Fatal("no v2-only entry in snapshot")
	return nil
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestDegradedModeServing is the acceptance scenario for fail-read-only
// serving: under persistent ENOSPC the daemon keeps answering reads
// byte-identically, reports degraded on /readyz, /stats and /metrics,
// rejects POST /feed with 507 + Retry-After, and — once the fault
// clears — recovers by itself and accepts writes again.
func TestDegradedModeServing(t *testing.T) {
	srv, snap, inj, dir := degradedServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Healthy baseline: one ingest succeeds end to end.
	postFeed(t, ts, namedUpdate(t, snap, "CVE-2018-9999"))
	cveID := srv.cur.Load().res.Cleaned.Entries[0].ID
	stBefore, cveBefore := getBody(t, ts, "/cve/"+cveID)
	if stBefore != 200 {
		t.Fatalf("baseline GET /cve = %d", stBefore)
	}
	_, queryBefore := getBody(t, ts, "/query?limit=5")

	// The disk fills.
	inj.SetDecide(enospcDecider)

	// The write is rejected with 507 (disk full), Retry-After, and a
	// body naming the cause — not a bare 500.
	var feedBody bytes.Buffer
	update2 := namedUpdate(t, snap, "CVE-2018-7777")
	if err := nvdclean.WriteFeed(&feedBody, update2); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", &feedBody)
	if err != nil {
		t.Fatal(err)
	}
	rejected := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&rejected); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 507 {
		t.Fatalf("POST /feed on full disk = %d (want 507): %v", resp.StatusCode, rejected)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded rejection carries no Retry-After")
	}
	if rejected["degraded"] != true {
		t.Fatalf("rejection body does not say degraded: %v", rejected)
	}
	if !strings.Contains(rejected["error"].(string), "no space left") {
		t.Fatalf("rejection does not name the cause: %v", rejected["error"])
	}

	// A second post is rejected up front (same status, no append try).
	resp, err = ts.Client().Post(ts.URL+"/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 507 {
		t.Fatalf("repeat POST /feed = %d (want 507)", resp.StatusCode)
	}

	// Reads are untouched: byte-identical to the pre-fault responses.
	if st, b := getBody(t, ts, "/cve/"+cveID); st != 200 || !bytes.Equal(b, cveBefore) {
		t.Fatalf("degraded GET /cve changed: status %d, bytes equal %v", st, bytes.Equal(b, cveBefore))
	}
	if _, b := getBody(t, ts, "/query?limit=5"); !bytes.Equal(b, queryBefore) {
		t.Fatal("degraded GET /query changed bytes")
	}

	// /readyz stays 200 (reads still serve; do not rotate the daemon
	// out of the pool) but says degraded, with the cause.
	ready := map[string]string{}
	if st := getJSON(t, ts, "/readyz", &ready); st != 200 {
		t.Fatalf("degraded /readyz = %d", st)
	}
	if ready["status"] != "degraded" || !strings.Contains(ready["reason"], "no space left") {
		t.Fatalf("degraded /readyz body: %v", ready)
	}

	// /stats carries the health block.
	stats := struct {
		Store struct {
			Health healthStatus `json:"health"`
		} `json:"store"`
	}{}
	if st := getJSON(t, ts, "/stats", &stats); st != 200 {
		t.Fatalf("degraded /stats = %d", st)
	}
	h := stats.Store.Health
	if !h.Degraded || !h.DiskFull || h.Failures == 0 || h.RetryAfterMs <= 0 {
		t.Fatalf("degraded /stats health block: %+v", h)
	}

	// /metrics exports the degraded gauge and failure counter.
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "nvdserve_store_degraded 1") {
		t.Fatal("metrics do not report nvdserve_store_degraded 1")
	}
	if strings.Contains(string(metrics), "nvdserve_store_persist_failures_total 0\n") {
		t.Fatal("metrics report zero persist failures while degraded")
	}

	// Space frees up; the probe notices and re-admits writes without
	// any operator action.
	inj.SetDecide(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if degraded, _, _ := srv.health.isDegraded(); !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not leave degraded mode after the fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	recovered := map[string]any{}
	if st := getJSON(t, ts, "/readyz", &recovered); st != 200 || recovered["status"] != "ok" {
		t.Fatalf("recovered /readyz = %d %v", st, recovered)
	}

	// Ingest works again, and the recovery is visible on the scrape.
	postFeed(t, ts, update2)
	_, metrics = getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "nvdserve_store_degraded 0") {
		t.Fatal("metrics still report degraded after recovery")
	}
	if strings.Contains(string(metrics), "nvdserve_store_degraded_recoveries_total 0\n") {
		t.Fatal("metrics report zero recoveries after a recovery")
	}
	if strings.Contains(string(metrics), "nvdserve_store_probes_total 0\n") {
		t.Fatal("metrics report zero probes after probed recovery")
	}

	// The store really holds both accepted deltas: a clean reopen of
	// the directory replays them.
	if err := srv.persist.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, deltas, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(deltas) != 2 {
		t.Fatalf("reopened store replays %d deltas (want 2)", len(deltas))
	}
}

// TestDegradedSealRecordsFailure covers the compaction entry point: a
// Seal that cannot create the successor segment degrades the daemon
// exactly like a failed append.
func TestDegradedSealRecordsFailure(t *testing.T) {
	srv, snap, inj, _ := degradedServer(t)
	srv.compactEvery = 1 // every accepted delta trips compaction
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Fail only segment creation: the append lands (the active segment
	// is already open), then Seal's OpenFile for the successor hits
	// ENOSPC and the daemon degrades.
	inj.SetDecide(func(op fsio.Op) fsio.Decision {
		if op.Kind == fsio.OpOpenFile && strings.Contains(op.Path, "log-") {
			return fsio.Decision{Err: syscall.ENOSPC}
		}
		return fsio.Decision{}
	})
	var body bytes.Buffer
	if err := nvdclean.WriteFeed(&body, namedUpdate(t, snap, "CVE-2018-6666")); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	summary := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The delta itself was durably appended, so the ingest succeeds;
	// only the compaction step failed, and it reported it.
	if resp.StatusCode != 200 {
		t.Fatalf("POST /feed = %d: %v", resp.StatusCode, summary)
	}
	if summary["compactionError"] == nil {
		t.Fatalf("summary has no compactionError: %v", summary)
	}
	if degraded, _, diskFull := srv.health.isDegraded(); !degraded || !diskFull {
		t.Fatalf("failed seal did not degrade (degraded=%v diskFull=%v)", degraded, diskFull)
	}

	// Clearing the fault lets the probe recover the daemon.
	inj.SetDecide(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if degraded, _, _ := srv.health.isDegraded(); !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not recover after seal fault cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
