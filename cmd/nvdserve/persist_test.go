package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// paramGrid builds a representative /query parameter grid from the
// served snapshot itself, so vendor/product/cwe values actually occur.
func paramGrid(st *serveState) []queryParams {
	var ps []queryParams
	e := st.res.Cleaned.Entries[0]
	vendor := e.CPEs[0].Vendor
	product := e.CPEs[0].Product
	var cweID cwe.ID
	for _, entry := range st.res.Cleaned.Entries {
		for _, c := range entry.CWEs {
			if !c.IsMeta() {
				cweID = c
				break
			}
		}
		if cweID != 0 {
			break
		}
	}
	year := e.Year()
	for _, limit := range []int{1, 5, 50} {
		for _, offset := range []int{0, 3, 100000} {
			ps = append(ps,
				queryParams{limit: limit, offset: offset},
				queryParams{vendor: vendor, limit: limit, offset: offset},
				queryParams{product: product, limit: limit, offset: offset},
				queryParams{vendor: vendor, product: product, limit: limit, offset: offset},
				queryParams{vendor: "no-such-vendor", limit: limit, offset: offset},
				queryParams{sev: cvss.SeverityHigh, hasSev: true, limit: limit, offset: offset},
				queryParams{sev: cvss.SeverityCritical, hasSev: true, year: year, limit: limit, offset: offset},
				queryParams{cweID: cweID, hasCWE: true, limit: limit, offset: offset},
				queryParams{cweID: cweID, hasCWE: true, vendor: vendor, sev: cvss.SeverityMedium, hasSev: true, limit: limit, offset: offset},
				queryParams{year: year, limit: limit, offset: offset},
				queryParams{year: 1901, limit: limit, offset: offset},
			)
		}
	}
	return ps
}

func marshalResponse(t *testing.T, resp queryResponse) []byte {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQueryIndexEquivalence is the index invariant: for every filter
// combination, index-intersection answers are byte-identical to the
// reference linear scan — under an index built at any worker count,
// after an incremental ordinal-level update, and after a persist→load
// round-trip through lazy checkpoint segments.
func TestQueryIndexEquivalence(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	check := func(st *serveState, alt *serveState, label string) {
		t.Helper()
		for _, p := range paramGrid(st) {
			indexed := marshalResponse(t, st.queryIndexed(p))
			scanned := marshalResponse(t, st.queryScan(p))
			if !bytes.Equal(indexed, scanned) {
				t.Fatalf("%s: query %+v: indexed %s != scanned %s", label, p, indexed, scanned)
			}
			if alt != nil {
				if b := marshalResponse(t, alt.queryIndexed(p)); !bytes.Equal(indexed, b) {
					t.Fatalf("%s: query %+v: alternate index differs", label, p)
				}
			}
		}
	}

	// Fresh builds at several worker counts.
	st := srv.cur.Load()
	for _, w := range []int{1, 8} {
		reindexed := *st
		reindexed.idx = store.BuildIndex(st.res.Cleaned, w)
		check(st, &reindexed, fmt.Sprintf("workers=%d", w))
	}

	// Incremental path: a POST /feed advances the index via the
	// ordinal-level Update; answers must stay identical to the scan and
	// to a from-scratch rebuild of the new snapshot.
	postFeed(t, ts, feedUpdate(t, snap))
	st2 := srv.cur.Load()
	if st2.generation == st.generation {
		t.Fatal("feed did not advance the generation")
	}
	rebuilt := *st2
	rebuilt.idx = store.BuildIndex(st2.res.Cleaned, 1)
	check(st2, &rebuilt, "incremental update")

	// Persist→load round-trip: the committed index segments reload as
	// a lazy index answering byte-identically, shards parsing only on
	// first touch.
	dir := t.TempDir()
	str, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp := st2.res.StoreCheckpoint()
	cp.Index = st2.idx
	if err := str.Commit(cp); err != nil {
		t.Fatal(err)
	}
	if err := str.Close(); err != nil {
		t.Fatal(err)
	}
	str2, cp2, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer str2.Close()
	if cp2.Index == nil {
		t.Fatalf("reloaded checkpoint has no index (note %q)", cp2.IndexNote)
	}
	ixs := cp2.Index.Stats()
	if ixs.LoadedShards != 0 {
		t.Fatalf("freshly loaded index already parsed %d shards", ixs.LoadedShards)
	}
	if ixs.DiskBytes == 0 {
		t.Fatal("loaded index reports no on-disk bytes")
	}
	restored := *st2
	restored.idx = cp2.Index
	check(st2, &restored, "persist/load round-trip")
	if after := cp2.Index.Stats(); after.LoadedShards == 0 {
		t.Fatal("queries never touched a lazy shard")
	}
}

// postFeed writes update as an NVD feed body and POSTs it.
func postFeed(t *testing.T, ts *httptest.Server, update *nvdclean.Snapshot) map[string]any {
	t.Helper()
	var body bytes.Buffer
	if err := nvdclean.WriteFeed(&body, update); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	summary := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("POST /feed = %d: %v", resp.StatusCode, summary)
	}
	return summary
}

// feedUpdate builds the canonical test delta: one added v2-only CVE
// cloned from an existing entry plus one modified description.
func feedUpdate(t *testing.T, snap *nvdclean.Snapshot) *nvdclean.Snapshot {
	t.Helper()
	var v2only *nvdclean.Entry
	for _, e := range snap.Entries {
		if e.V2 != nil && e.V3 == nil {
			v2only = e
			break
		}
	}
	if v2only == nil {
		t.Fatal("no v2-only entry in snapshot")
	}
	added := v2only.Clone()
	added.ID = "CVE-2018-9999"
	modified := v2only.Clone()
	modified.Descriptions[0].Value += " Exploited in the wild."
	return &nvdclean.Snapshot{
		CapturedAt: snap.CapturedAt.Add(24 * time.Hour),
		Entries:    []*nvdclean.Entry{added, modified},
	}
}

// TestWarmRestartEquivalence is the persistence acceptance test: a
// server restored from -data-dir state (checkpoint + a delta log
// spanning two sealed segments plus the active one, no pipeline run,
// different concurrency) must serve a view bit-identical to a cold
// full Clean of the merged feed.
func TestWarmRestartEquivalence(t *testing.T) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	transport := nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport()
	opts := nvdclean.Options{
		Transport:   transport,
		Concurrency: 8,
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	ctx := context.Background()
	dir := t.TempDir()

	// Cold server with persistence: full clean, checkpoint commit,
	// then three POSTed deltas spread across the segmented log — two
	// segments sealed (as the compaction path would leave them with
	// their background commits never run) and one active.
	str1, cp0, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp0 != nil {
		t.Fatal("fresh directory has a checkpoint")
	}
	srv1 := newServer(opts)
	srv1.persist = str1
	srv1.compactEvery = 1000 // keep the deltas in the log, not a checkpoint
	if err := srv1.load(ctx, snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.handler())
	update := feedUpdate(t, snap)
	postFeed(t, ts, update)
	if _, err := str1.Seal(); err != nil {
		t.Fatal(err)
	}
	second := &nvdclean.Snapshot{CapturedAt: update.CapturedAt.Add(time.Hour)}
	again := update.Entries[0].Clone()
	again.Descriptions[0].Value += " Patched."
	second.Entries = []*nvdclean.Entry{again}
	postFeed(t, ts, second)
	if _, err := str1.Seal(); err != nil {
		t.Fatal(err)
	}
	third := &nvdclean.Snapshot{CapturedAt: update.CapturedAt.Add(2 * time.Hour)}
	once := update.Entries[1].Clone()
	once.Descriptions[0].Value += " Regression confirmed."
	third.Entries = []*nvdclean.Entry{once}
	postFeed(t, ts, third)
	ts.Close()
	merged := srv1.cur.Load().res.Original
	if err := str1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm restart: restore checkpoint, replay the segments — no Clean.
	str2, cp, logged, notes, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer str2.Close()
	if cp == nil || len(logged) != 3 {
		t.Fatalf("reopen: checkpoint=%v deltas=%d notes=%v", cp != nil, len(logged), notes)
	}
	if str2.SealedSegments() != 2 || str2.ActiveRecords() != 1 {
		t.Fatalf("reopened log shape: sealed=%d active=%d, want 2/1", str2.SealedSegments(), str2.ActiveRecords())
	}
	warmOpts := opts
	warmOpts.Concurrency = 3 // concurrency is a wall-clock knob, never bits
	res, err := nvdclean.RestoreResult(cp, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Index == nil {
		t.Fatalf("restored checkpoint carried no index segments (note %q)", cp.IndexNote)
	}
	// Mirror the production warm boot: the checkpoint's restored lazy
	// index anchors the base generation, and the logged deltas advance
	// it incrementally.
	srvWarm := newServer(warmOpts)
	base := srvWarm.newState(res, nil, nil, cp.Index, 0, 0, false, true)
	cur := res.Original
	for _, d := range logged {
		cur = cur.ApplyDelta(d)
	}
	if total := nvdclean.Diff(res.Original, cur); !total.Empty() {
		if res, err = nvdclean.CleanDelta(ctx, res, total, warmOpts); err != nil {
			t.Fatal(err)
		}
		srvWarm.cur.Store(srvWarm.newState(res, base, total, nil, 0, 1, true, true))
	} else {
		srvWarm.cur.Store(base)
	}
	if res.Engine == nil || res.Engine != cp.Engine {
		t.Error("warm restart should reuse the restored engine (v2-only delta)")
	}

	// Cold reference: full Clean of the merged feed, in-memory.
	coldOpts := opts
	coldOpts.Concurrency = 2
	srvCold := newServer(coldOpts)
	if err := srvCold.load(ctx, merged); err != nil {
		t.Fatal(err)
	}

	stWarm := srvWarm.cur.Load()
	stCold := srvCold.cur.Load()
	if stWarm.res.Cleaned.Len() != stCold.res.Cleaned.Len() {
		t.Fatalf("entry counts differ: %d vs %d", stWarm.res.Cleaned.Len(), stCold.res.Cleaned.Len())
	}

	// Every served CVE view must be bit-identical.
	for _, e := range stCold.res.Cleaned.Entries {
		we, ok := stWarm.byID[e.ID]
		if !ok {
			t.Fatalf("warm view lacks %s", e.ID)
		}
		cold, err := json.Marshal(stCold.view(e))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := json.Marshal(stWarm.view(we))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("view of %s differs:\ncold: %s\nwarm: %s", e.ID, cold, warm)
		}
	}

	// Every query answer must be bit-identical — across restart AND
	// across the warm server's indexed vs scan paths.
	for _, p := range paramGrid(stCold) {
		cold := marshalResponse(t, stCold.queryIndexed(p))
		warm := marshalResponse(t, stWarm.queryIndexed(p))
		if !bytes.Equal(cold, warm) {
			t.Fatalf("query %+v differs across restart:\ncold: %s\nwarm: %s", p, cold, warm)
		}
		if scan := marshalResponse(t, stWarm.queryScan(p)); !bytes.Equal(warm, scan) {
			t.Fatalf("query %+v: warm index differs from scan", p)
		}
	}

	// The deterministic /stats content must agree too.
	coldStats, warmStats := statsView(t, srvCold), statsView(t, srvWarm)
	for _, k := range []string{"entries", "distinctVendors", "distinctProducts", "naming", "cweCorrection", "crawl", "engine"} {
		c, _ := json.Marshal(coldStats[k])
		w, _ := json.Marshal(warmStats[k])
		if !bytes.Equal(c, w) {
			t.Errorf("stats[%s] differs: cold %s warm %s", k, c, w)
		}
	}
}

func statsView(t *testing.T, srv *server) map[string]any {
	t.Helper()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var stats map[string]any
	if code := getJSON(t, ts, "/stats", &stats); code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	return stats
}

// TestFeedPersistsAndCompacts drives POST /feed with a store attached
// past the compaction threshold and proves the log folds into a new
// checkpoint that restores cleanly.
func TestFeedPersistsAndCompacts(t *testing.T) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Concurrency: 4,
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	dir := t.TempDir()
	str, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(opts)
	srv.persist = str
	srv.compactEvery = 2
	if err := srv.load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	base := feedUpdate(t, snap)
	sum1 := postFeed(t, ts, base)
	if sum1["compacted"] == true {
		t.Fatal("compacted after one delta with compactEvery=2")
	}
	if str.LogRecords() != 1 {
		t.Fatalf("log records = %d, want 1", str.LogRecords())
	}
	second := &nvdclean.Snapshot{CapturedAt: base.CapturedAt.Add(time.Hour)}
	again := base.Entries[0].Clone()
	again.Descriptions[0].Value += " Patched."
	second.Entries = []*nvdclean.Entry{again}
	sum2 := postFeed(t, ts, second)
	if sum2["compacted"] != true {
		t.Fatalf("second delta should compact: %v", sum2)
	}
	if str.LogRecords() != 0 || str.Generation() != 2 {
		t.Fatalf("after compaction: gen=%d records=%d", str.Generation(), str.LogRecords())
	}
	str.Close()

	// The compacted store restores to exactly the serving state.
	str2, cp, logged, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer str2.Close()
	if cp == nil || cp.Generation != 2 || len(logged) != 0 {
		t.Fatalf("restore after compaction: gen=%v deltas=%d", cp.Generation, len(logged))
	}
	res, err := nvdclean.RestoreResult(cp, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := srv.cur.Load().res
	if res.Cleaned.Len() != want.Cleaned.Len() {
		t.Fatalf("restored %d entries, want %d", res.Cleaned.Len(), want.Cleaned.Len())
	}
	for i, e := range want.Cleaned.Entries {
		if !e.Equal(res.Cleaned.Entries[i]) {
			t.Fatalf("restored cleaned entry %d (%s) differs", i, e.ID)
		}
	}
}
