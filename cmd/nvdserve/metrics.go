package main

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nvdclean/internal/obs"
)

// serverMetrics is the daemon's production telemetry surface: a
// per-process obs.Registry serving GET /metrics, the HTTP middleware
// instruments, and the domain histograms the handlers feed directly.
//
// Swap-safety: everything here lives on the server, beside — never
// inside — the atomic serveState pointer, so a generation swap can
// only change what the gauge closures *read*, never reset a counter or
// histogram (the same ownership split respcache.Metrics uses for the
// /stats cache counters). Gauges over per-generation facts (index
// residency, generation age) sample s.cur.Load() at scrape time.
type serverMetrics struct {
	registry *obs.Registry

	// HTTP request instruments, filled by the per-route middleware.
	inflight  *obs.Gauge
	requests  *obs.CounterVec   // route, method, code
	duration  *obs.HistogramVec // route, code
	reqBytes  *obs.CounterVec   // route
	respBytes *obs.CounterVec   // route

	// Ingest-path histograms observed by handleFeed, and the
	// checkpoint-write histogram fed by the store's commit observer
	// (both the background committer and -compact-sync inline commits
	// funnel through it).
	ingestDeltaEntries *obs.Histogram
	ingestSwapSeconds  *obs.Histogram
	checkpointSeconds  *obs.Histogram
	checkpointFailures *obs.Counter
}

// newServerMetrics builds the registry and registers every family. The
// gauge closures read s dynamically (s.persist and s.committer are
// assigned after newServer), and nil-guard so the scrape shape is
// stable across configurations: a daemon without a store still exports
// the store families at zero rather than making dashboards conditional
// on deployment flags.
func newServerMetrics(s *server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		registry:  r,
		inflight:  r.Gauge("nvdserve_http_requests_in_flight", "Requests currently being served."),
		requests:  r.CounterVec("nvdserve_http_requests_total", "HTTP requests served, by route pattern, method and status code.", "route", "method", "code"),
		duration:  r.HistogramVec("nvdserve_http_request_duration_seconds", "Request latency from middleware entry to handler return, by route pattern and status code.", obs.LatencyBuckets, "route", "code"),
		reqBytes:  r.CounterVec("nvdserve_http_request_bytes_total", "Request body bytes received (Content-Length), by route pattern.", "route"),
		respBytes: r.CounterVec("nvdserve_http_response_bytes_total", "Response body bytes written, by route pattern.", "route"),

		ingestDeltaEntries: r.Histogram("nvdserve_ingest_delta_entries", "Entries changed per accepted POST /feed delta (added+modified+removed).", obs.ExponentialBuckets(1, 4, 10)),
		ingestSwapSeconds:  r.Histogram("nvdserve_ingest_swap_seconds", "POST /feed ingest latency from delta parse to generation swap (incremental clean included).", obs.LatencyBuckets),
		checkpointSeconds:  r.Histogram("nvdserve_store_checkpoint_seconds", "Wall time of successful checkpoint commits (CommitSealed).", obs.LatencyBuckets),
		checkpointFailures: r.Counter("nvdserve_store_checkpoint_failures_total", "Checkpoint commits that returned an error (each is retried or surfaced to the ingest caller)."),
	}

	// Serving-state gauges: one load of the atomic generation pointer
	// per closure, sampled at scrape time.
	r.GaugeFunc("nvdserve_generation_sequence", "In-memory serving generation (restarts at 1 per boot; see nvdserve_boot_epoch_seconds).", func() float64 {
		if st := s.cur.Load(); st != nil {
			return float64(st.generation)
		}
		return 0
	})
	r.GaugeFunc("nvdserve_generation_age_seconds", "Seconds since the serving generation was installed — replication/staleness lag in one number.", func() float64 {
		if st := s.cur.Load(); st != nil {
			return time.Since(st.loadedAt).Seconds()
		}
		return 0
	})
	r.GaugeFunc("nvdserve_generation_entries", "Entries in the serving generation's cleaned snapshot.", func() float64 {
		if st := s.cur.Load(); st != nil {
			return float64(st.res.Cleaned.Len())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_boot_epoch_seconds", "Boot time of this process as a Unix timestamp (the ETag boot epoch).", func() float64 {
		return float64(s.bootEpoch) / 1e9
	})
	r.GaugeFunc("nvdserve_ready", "1 when /readyz answers 200 (first generation installed, not draining).", func() float64 {
		if ok, _ := s.ready(); ok {
			return 1
		}
		return 0
	})

	// Index residency, from the serving generation's shard stats.
	indexStat := func(pick func(s *server) float64) func() float64 { return func() float64 { return pick(s) } }
	r.GaugeFunc("nvdserve_index_shards", "Query-index shards in the serving generation.", indexStat(func(s *server) float64 {
		if st := s.cur.Load(); st != nil && st.idx != nil {
			return float64(st.idx.Stats().Shards)
		}
		return 0
	}))
	r.GaugeFunc("nvdserve_index_shards_loaded", "Index shards parsed into posting maps (the rest are raw checkpoint segments awaiting first query).", indexStat(func(s *server) float64 {
		if st := s.cur.Load(); st != nil && st.idx != nil {
			return float64(st.idx.Stats().LoadedShards)
		}
		return 0
	}))
	r.GaugeFunc("nvdserve_index_posting_bytes_resident", "Posting-block bytes held in memory by loaded index shards.", indexStat(func(s *server) float64 {
		if st := s.cur.Load(); st != nil && st.idx != nil {
			return float64(st.idx.Stats().ResidentBytes)
		}
		return 0
	}))
	r.GaugeFunc("nvdserve_index_posting_bytes_on_disk", "Index segment bytes as persisted in the current checkpoint (0 for in-memory indexes).", indexStat(func(s *server) float64 {
		if st := s.cur.Load(); st != nil && st.idx != nil {
			return float64(st.idx.Stats().DiskBytes)
		}
		return 0
	}))

	// Store and commit-queue families (zero without -data-dir).
	r.GaugeFunc("nvdserve_store_generation", "Committed checkpoint generation of the persistent store.", func() float64 {
		if s.persist != nil {
			return float64(s.persist.Generation())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_log_records", "Delta-log records applied on top of the committed checkpoint (sealed + active segments).", func() float64 {
		if s.persist != nil {
			return float64(s.persist.LogRecords())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_active_log_records", "Records in the active delta-log segment alone — the compaction trigger.", func() float64 {
		if s.persist != nil {
			return float64(s.persist.ActiveRecords())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_sealed_segments", "Sealed delta-log segments awaiting retirement by a checkpoint commit.", func() float64 {
		if s.persist != nil {
			return float64(s.persist.SealedSegments())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_wal_seq", "Sequence number of the active delta-log segment (the replication cursor).", func() float64 {
		if s.persist != nil {
			return float64(s.persist.WALSeq())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_commit_queue_depth", "Checkpoints queued or mid-write in the background committer (latest-wins slot: 0 or 1).", func() float64 {
		if s.committer != nil && s.committer.Stats().Pending {
			return 1
		}
		return 0
	})
	r.CounterFunc("nvdserve_store_commits_total", "Checkpoints committed by the background committer since boot.", func() float64 {
		if s.committer != nil {
			return float64(s.committer.Stats().Committed)
		}
		return 0
	})
	r.CounterFunc("nvdserve_store_commit_retries_total", "Failed background commit attempts (each re-enqueued with backoff unless superseded).", func() float64 {
		if s.committer != nil {
			return float64(s.committer.Stats().Retries)
		}
		return 0
	})
	r.GaugeFunc("nvdserve_store_commit_last_error_age_seconds", "Seconds since the commit queue's last recorded failure; 0 when no failure is outstanding (the next success clears it).", func() float64 {
		if s.committer != nil {
			if st := s.committer.Stats(); st.LastErrorUnix != 0 {
				return float64(time.Now().Unix() - st.LastErrorUnix)
			}
		}
		return 0
	})

	// Degraded-mode families: the store write-health tracker. Alert on
	// the gauge; the counters tell whether the daemon is flapping (many
	// recoveries) or stuck (many probes, zero recoveries).
	r.GaugeFunc("nvdserve_store_degraded", "1 while the store cannot accept writes and the daemon serves read-only (POST /feed returns 503/507).", func() float64 {
		if h := s.health; h != nil {
			if degraded, _, _ := h.isDegraded(); degraded {
				return 1
			}
		}
		return 0
	})
	r.CounterFunc("nvdserve_store_persist_failures_total", "Durability failures observed on the ingest path (append, seal, or checkpoint commit); each enters or extends degraded mode.", func() float64 {
		if h := s.health; h != nil {
			return float64(h.status().Failures)
		}
		return 0
	})
	r.CounterFunc("nvdserve_store_degraded_recoveries_total", "Transitions out of degraded mode back to read-write (a probe or commit proved durable writes work again).", func() float64 {
		if h := s.health; h != nil {
			return float64(h.status().Recoveries)
		}
		return 0
	})
	r.CounterFunc("nvdserve_store_probes_total", "Durable-write recovery probes attempted while degraded (jittered exponential backoff).", func() float64 {
		if h := s.health; h != nil {
			return float64(h.status().Probes)
		}
		return 0
	})

	// Replication families (zero on a primary, so the scrape shape is
	// identical across roles and a dashboard can template over the
	// fleet). Follower counters are the follower's own atomics; the
	// lag gauge reports -1 until the first caught-up confirmation so
	// "never synced" and "zero lag" cannot be confused.
	r.GaugeFunc("nvdserve_replica_follower", "1 when this daemon runs as a read replica (-follow), 0 on a primary.", func() float64 {
		if s.follower != nil {
			return 1
		}
		return 0
	})
	r.GaugeFunc("nvdserve_replica_lag_seconds", "Seconds since the follower last confirmed it held every committed byte of the primary's stream; -1 before the first confirmation, 0 on a primary.", func() float64 {
		if f := s.follower; f != nil {
			if lag, ok := f.lag(); ok {
				return lag.Seconds()
			}
			return -1
		}
		return 0
	})
	r.GaugeFunc("nvdserve_replica_cursor_segment", "Segment seq the follower will fetch next.", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.cursorSeq.Load())
		}
		return 0
	})
	r.GaugeFunc("nvdserve_replica_cursor_offset", "Byte offset of the follower's cursor within its segment.", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.cursorOff.Load())
		}
		return 0
	})
	r.CounterFunc("nvdserve_replica_fetches_total", "Completed /replicate/log polls against the primary.", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.fetches.Load())
		}
		return 0
	})
	r.CounterFunc("nvdserve_replica_fetch_errors_total", "Replication fetches or applies that failed (each retried on the next poll).", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.fetchErrors.Load())
		}
		return 0
	})
	r.CounterFunc("nvdserve_replica_fetch_bytes_total", "Segment bytes fetched from the primary and appended to the local log.", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.fetchBytes.Load())
		}
		return 0
	})
	r.CounterFunc("nvdserve_replica_deltas_applied_total", "Shipped deltas folded into the follower's serving view.", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.deltasApplied.Load())
		}
		return 0
	})
	r.CounterFunc("nvdserve_replica_bootstraps_total", "Checkpoint installs from the primary (cold start plus every post-compaction catch-up).", func() float64 {
		if f := s.follower; f != nil {
			return float64(f.bootstraps.Load())
		}
		return 0
	})

	// Read-cache counters, re-exported from the swap-surviving
	// respcache.Metrics atomics — the same source /stats reads, so the
	// two surfaces can never disagree.
	cm := s.metrics
	r.CounterFunc("nvdserve_respcache_entry_hits_total", "GET /cve/{id} responses served from the pre-encoded entry cache.", func() float64 { return float64(cm.EntryHits.Load()) })
	r.CounterFunc("nvdserve_respcache_entry_misses_total", "GET /cve/{id} responses encoded on first hit.", func() float64 { return float64(cm.EntryMisses.Load()) })
	r.CounterFunc("nvdserve_respcache_query_hits_total", "GET /query responses served from the canonical-key LRU.", func() float64 { return float64(cm.QueryHits.Load()) })
	r.CounterFunc("nvdserve_respcache_query_misses_total", "GET /query responses rendered per request.", func() float64 { return float64(cm.QueryMisses.Load()) })
	r.CounterFunc("nvdserve_respcache_query_evictions_total", "LRU evictions from the /query response cache.", func() float64 { return float64(cm.QueryEvictions.Load()) })
	r.CounterFunc("nvdserve_respcache_query_bytes_saved_total", "Response bytes served from the /query cache instead of re-rendered.", func() float64 { return float64(cm.QueryBytesSaved.Load()) })
	r.CounterFunc("nvdserve_respcache_not_modified_total", "Conditional requests answered with a bodiless 304.", func() float64 { return float64(cm.NotModified.Load()) })
	r.CounterFunc("nvdserve_respcache_not_modified_bytes_saved_total", "Representation bytes 304 responses did not resend (counted when cheaply known).", func() float64 { return float64(cm.NotModifiedBytes.Load()) })

	return m
}

// observeCheckpoint is the store commit observer: successful commit
// wall times feed the checkpoint histogram, failures count — the
// committer's own retry counter tracks re-enqueues, this one also sees
// synchronous (-compact-sync and boot) commit errors.
func (m *serverMetrics) observeCheckpoint(d time.Duration, err error) {
	if err != nil {
		m.checkpointFailures.Inc()
		return
	}
	m.checkpointSeconds.Observe(d.Seconds())
}

// codeInstruments is the pre-resolved child set for one (route,
// method, code) combination — steady state touches only these atomics.
type codeInstruments struct {
	requests *obs.Counter
	duration *obs.Histogram
}

// routeInstruments instruments one registered route. Children are
// interned per status code in an int-keyed copy-on-write map: the warm
// path reads it through one atomic pointer load — no lock word to
// bounce between cores — then pays only the handful of atomic adds on
// the child. Interning a new code (rare: a route sees a few distinct
// statuses ever) copies the map under a plain mutex.
type routeInstruments struct {
	m             *serverMetrics
	route, method string
	reqBytes      *obs.Counter
	respBytes     *obs.Counter

	byCode atomic.Pointer[map[int]*codeInstruments]
	mu     sync.Mutex // serializes interning only; readers never take it
}

func (ri *routeInstruments) code(status int) *codeInstruments {
	if ci, ok := (*ri.byCode.Load())[status]; ok {
		return ci
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	cur := *ri.byCode.Load()
	if ci, ok := cur[status]; ok {
		return ci
	}
	code := strconv.Itoa(status)
	ci := &codeInstruments{
		requests: ri.m.requests.With(ri.route, ri.method, code),
		duration: ri.m.duration.With(ri.route, code),
	}
	next := make(map[int]*codeInstruments, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[status] = ci
	ri.byCode.Store(&next)
	return ci
}

// statusRecorder captures the status code and body bytes a handler
// writes. Recorders are pooled: the read hot path must not pay an
// allocation per request for its own accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

var recorderPool = sync.Pool{New: func() any { return &statusRecorder{} }}

// instrument wraps h with the request middleware under a fixed route
// pattern label (the mux pattern, never the raw URL — /cve/{id} is one
// series regardless of how many IDs exist).
func (m *serverMetrics) instrument(route, method string, h http.HandlerFunc) http.HandlerFunc {
	ri := &routeInstruments{
		m: m, route: route, method: method,
		reqBytes:  m.reqBytes.With(route),
		respBytes: m.respBytes.With(route),
	}
	ri.byCode.Store(&map[int]*codeInstruments{})
	// Pre-intern the 200 child: almost every request resolves to it,
	// and a direct field beats even the lock-free map.
	ok := ri.code(http.StatusOK)
	return func(w http.ResponseWriter, r *http.Request) {
		start := obs.Nanotime()
		m.inflight.Add(1)
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status, rec.bytes = w, 0, 0
		h(rec, r)
		elapsed := obs.Nanotime() - start
		m.inflight.Add(-1)
		status, written := rec.status, rec.bytes
		rec.ResponseWriter = nil
		recorderPool.Put(rec)
		// status 0 means the handler returned without writing: the
		// net/http default is 200.
		ci := ok
		if status != http.StatusOK && status != 0 {
			ci = ri.code(status)
		}
		ci.requests.Inc()
		ci.duration.Observe(float64(elapsed) / 1e9)
		if n := r.ContentLength; n > 0 {
			ri.reqBytes.Add(n)
		}
		if written > 0 {
			ri.respBytes.Add(written)
		}
	}
}

// handleMetrics serves the Prometheus scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.obs.registry.ServeHTTP(w, r)
}

// pprofMux builds the net/http/pprof handler set for the optional
// -pprof-addr listener. Profiling gets its own listener so a scrape or
// trace can never contend with (or be exposed on) the serving port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
