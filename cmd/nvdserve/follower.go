package main

// Follower mode (-follow): this daemon is a read replica of one
// primary nvdserve. It bootstraps by installing the primary's shipped
// checkpoint into its own store, restores a serving generation from
// it, and then tails the primary's segment bytes — appending them
// verbatim to its local log (so stream positions, and therefore ETag
// validators, align across the fleet) and folding the decoded deltas
// into its serving view through the same CleanDelta+swap path POST
// /feed uses on the primary.
//
// Convergence: followers never coordinate with the primary beyond
// polling its stream. When a follower falls behind a compaction (its
// cursor's segment is retired — HTTP 410), it re-bootstraps from the
// primary's latest checkpoint: periodic state broadcast rather than
// lock-step replication, so an arbitrarily late or freshly provisioned
// replica converges in one checkpoint fetch plus a bounded tail.

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"nvdclean"
	"nvdclean/internal/replica"
	"nvdclean/internal/store"
)

type follower struct {
	srv    *server
	client *replica.Client
	// poll is the steady-state poll interval when caught up; maxLag is
	// the /readyz gate (0 disables gating).
	poll   time.Duration
	maxLag time.Duration

	// unapplied holds deltas durably appended to the local log but not
	// yet folded into the serving view (a fold interrupted by shutdown
	// leaves them pending); the next successful fold drains them.
	// Guarded by srv.feedMu.
	unapplied []*nvdclean.Delta

	// cursor is the next stream position to fetch: the segment seq and
	// the byte offset of its first unconsumed byte.
	cursorSeq atomic.Uint64
	cursorOff atomic.Int64
	// caughtUpAt is the unix-nano time of the last poll that confirmed
	// the follower holds every committed byte the primary had; 0 until
	// the first confirmation. Lag is measured from it.
	caughtUpAt    atomic.Int64
	fetches       atomic.Uint64
	fetchErrors   atomic.Uint64
	fetchBytes    atomic.Uint64
	deltasApplied atomic.Uint64
	bootstraps    atomic.Uint64
	lastErr       atomic.Value // string; "" when the last poll succeeded

	// done closes when run returns, so shutdown can join the tail loop
	// before the committer and store close underneath it.
	done chan struct{}
}

func newFollower(srv *server, primary string, poll, maxLag time.Duration) *follower {
	f := &follower{
		srv:    srv,
		client: replica.NewClient(primary),
		poll:   poll,
		maxLag: maxLag,
		done:   make(chan struct{}),
	}
	// A warm-booted follower resumes tailing from its recovered local
	// log position; a cold one gets its cursor from bootstrap.
	if seq, off := srv.persist.ActivePosition(); seq > 0 {
		f.cursorSeq.Store(seq)
		f.cursorOff.Store(off)
	}
	return f
}

// lag returns the time since the follower last confirmed it was caught
// up with the primary's committed stream end; ok is false before the
// first confirmation (lag is unknown, not zero).
func (f *follower) lag() (time.Duration, bool) {
	at := f.caughtUpAt.Load()
	if at == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, at)), true
}

// statsBlock is the follower's /stats replication block.
func (f *follower) statsBlock() map[string]any {
	b := map[string]any{
		"role":          "follower",
		"primary":       f.client.Base(),
		"cursorSegment": f.cursorSeq.Load(),
		"cursorOffset":  f.cursorOff.Load(),
		"watermark":     f.srv.persist.Watermark(),
		"fetches":       f.fetches.Load(),
		"fetchErrors":   f.fetchErrors.Load(),
		"fetchBytes":    f.fetchBytes.Load(),
		"deltasApplied": f.deltasApplied.Load(),
		"bootstraps":    f.bootstraps.Load(),
		"synced":        false,
		"lagSeconds":    -1.0,
	}
	if lag, ok := f.lag(); ok {
		b["synced"] = true
		b["lagSeconds"] = lag.Seconds()
	}
	if e, _ := f.lastErr.Load().(string); e != "" {
		b["lastFetchError"] = e
	}
	return b
}

// run is the replica lifecycle: bootstrap until a generation serves,
// then tail forever. It only returns when ctx is cancelled.
func (f *follower) run(ctx context.Context) {
	defer close(f.done)
	for ctx.Err() == nil && f.srv.cur.Load() == nil {
		if err := f.bootstrap(ctx); err != nil {
			f.fetchErrors.Add(1)
			f.lastErr.Store(err.Error())
			fmt.Printf("nvdserve: replica bootstrap: %v\n", err)
			// Jittered: a fleet of replicas booting against a down
			// primary must not hammer it in lockstep when it returns.
			if !sleepCtx(ctx, jitter(f.poll)) {
				return
			}
			continue
		}
	}
	for ctx.Err() == nil {
		wait, err := f.syncOnce(ctx)
		if err != nil && ctx.Err() == nil {
			fmt.Printf("nvdserve: replica sync: %v\n", err)
			// Failed polls back off with jitter so a primary outage
			// does not synchronize the fleet's retry schedule.
			wait = jitter(wait)
		}
		if wait <= 0 {
			continue
		}
		if !sleepCtx(ctx, wait) {
			return
		}
	}
}

// bootstrap installs the primary's current checkpoint into the local
// store (re-verified file by file), restores a serving generation from
// it, and parks the cursor at the watermark's successor segment. It is
// both the cold-start path and the catch-up path after a 410.
func (f *follower) bootstrap(ctx context.Context) error {
	rm, err := f.client.Manifest(ctx)
	if err != nil {
		return err
	}
	start := time.Now()
	cp, err := f.srv.persist.InstallCheckpoint(rm, func(mf store.ManifestFile) (io.ReadCloser, error) {
		return f.client.CheckpointFile(ctx, mf)
	})
	if err != nil {
		return err
	}
	res, err := nvdclean.RestoreResult(cp, f.srv.opts)
	if err != nil {
		return fmt.Errorf("restoring shipped checkpoint: %w", err)
	}
	f.srv.feedMu.Lock()
	gen := 1
	if prev := f.srv.cur.Load(); prev != nil {
		gen = prev.generation + 1
	}
	st := f.srv.newState(res, nil, nil, cp.Index, time.Since(start), gen, false, true)
	st.restored = true
	f.srv.cur.Store(st)
	// Anything pending was folded into the shipped checkpoint (the
	// install refuses a local log ahead of its watermark).
	f.unapplied = nil
	f.srv.feedMu.Unlock()
	f.cursorSeq.Store(rm.CheckpointSeq + 1)
	f.cursorOff.Store(0)
	f.bootstraps.Add(1)
	fmt.Printf("nvdserve: replica bootstrapped from %s: generation %d (%d entries), tailing from segment %d\n",
		f.client.Base(), f.srv.persist.Generation(), res.Cleaned.Len(), rm.CheckpointSeq+1)
	return nil
}

// syncOnce runs one poll of the stream: fetch bytes at the cursor,
// append them durably, fold the decoded deltas into the serving view,
// and mirror the primary's seal boundaries. It returns how long the
// caller should wait before the next poll — zero when the stream
// yielded progress and more may be pending immediately.
func (f *follower) syncOnce(ctx context.Context) (time.Duration, error) {
	seq, off := f.cursorSeq.Load(), f.cursorOff.Load()
	chunk, err := f.client.Log(ctx, seq, off)
	if err != nil {
		f.fetchErrors.Add(1)
		f.lastErr.Store(err.Error())
		return f.poll, err
	}
	f.fetches.Add(1)
	switch {
	case chunk.Retired:
		// The primary compacted past the cursor: re-bootstrap from its
		// latest checkpoint — the periodic-state-broadcast path.
		if err := f.bootstrap(ctx); err != nil {
			f.fetchErrors.Add(1)
			f.lastErr.Store(err.Error())
			return f.poll, err
		}
		f.lastErr.Store("")
		return 0, nil
	case chunk.AtWatermark:
		f.caughtUpAt.Store(time.Now().UnixNano())
		f.lastErr.Store("")
		wait := f.poll
		if chunk.RetryAfter > wait {
			wait = chunk.RetryAfter
		}
		return wait, nil
	}
	f.fetchBytes.Add(uint64(len(chunk.Data)))
	if err := f.apply(ctx, chunk); err != nil {
		f.lastErr.Store(err.Error())
		return f.poll, err
	}
	f.lastErr.Store("")
	if !chunk.Sealed {
		// An active-segment read returns every committed byte the
		// primary had at fetch time, so a successful apply means the
		// follower is caught up as of that moment.
		f.caughtUpAt.Store(time.Now().UnixNano())
		return f.poll, nil
	}
	return 0, nil
}

// apply lands one fetched chunk: frames append verbatim to the local
// log (advancing the shared stream position), the decoded deltas fold
// into the serving view, and a sealed segment boundary triggers a
// local seal — keeping segment seqs in lockstep with the primary —
// plus a local checkpoint so this replica's restarts (and its own
// followers, if chained) stay cheap.
func (f *follower) apply(ctx context.Context, chunk *replica.LogChunk) error {
	f.srv.feedMu.Lock()
	defer f.srv.feedMu.Unlock()
	if len(chunk.Data) > 0 {
		deltas, err := f.srv.persist.AppendFrames(chunk.Data)
		if err != nil {
			return err
		}
		f.cursorOff.Add(int64(len(chunk.Data)))
		f.unapplied = append(f.unapplied, deltas...)
	}
	if err := f.fold(ctx); err != nil {
		// The frames are durable and the cursor advanced; the fold
		// retries on the next poll (or a restart replays the log).
		return err
	}
	if chunk.Sealed {
		sealedSeq, err := f.srv.persist.Seal()
		if err != nil {
			return err
		}
		f.cursorSeq.Store(sealedSeq + 1)
		f.cursorOff.Store(0)
		if st := f.srv.cur.Load(); st != nil {
			cp := st.res.StoreCheckpoint()
			cp.Index = st.idx
			if f.srv.committer != nil {
				f.srv.committer.Enqueue(cp, sealedSeq)
			} else if err := f.srv.persist.CommitSealed(cp, sealedSeq); err != nil {
				return err
			}
		}
	}
	return nil
}

// fold drains the unapplied deltas into one incremental re-clean and
// swaps the resulting generation in. Batching is safe because
// CleanDelta is bit-deterministic and composition-invariant: folding N
// deltas in one step yields the same bytes as N single-step folds —
// the follower's view converges to the primary's however the stream
// was chunked.
func (f *follower) fold(ctx context.Context) error {
	if len(f.unapplied) == 0 {
		return nil
	}
	st := f.srv.cur.Load()
	if st == nil {
		return fmt.Errorf("no serving generation to fold deltas into")
	}
	start := time.Now()
	merged := st.res.Original
	for _, d := range f.unapplied {
		merged = merged.ApplyDelta(d)
	}
	total := nvdclean.Diff(st.res.Original, merged)
	n := uint64(len(f.unapplied))
	if total.Empty() {
		f.unapplied = nil
		f.deltasApplied.Add(n)
		return nil
	}
	res, err := nvdclean.CleanDelta(ctx, st.res, total, f.srv.opts)
	if err != nil {
		return err
	}
	warm := res.Engine != nil && res.Engine == st.res.Engine
	next := f.srv.newState(res, st, total, nil, time.Since(start), st.generation+1, true, warm)
	f.srv.cur.Store(next)
	f.srv.obs.ingestDeltaEntries.Observe(float64(total.Size()))
	f.srv.obs.ingestSwapSeconds.Observe(time.Since(start).Seconds())
	f.unapplied = nil
	f.deltasApplied.Add(n)
	return nil
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
