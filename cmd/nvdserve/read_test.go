package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"nvdclean"
)

// getRaw performs one GET with optional If-None-Match, returning the
// exact status, headers and body bytes — the read-path tests compare
// wire bytes, not decoded values.
func getRaw(t *testing.T, ts *httptest.Server, path, ifNoneMatch string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// queryURL renders a parsed parameter set back into a /query URL.
func queryURL(p queryParams) string {
	v := url.Values{}
	if p.vendor != "" {
		v.Set("vendor", p.vendor)
	}
	if p.product != "" {
		v.Set("product", p.product)
	}
	if p.hasCWE {
		v.Set("cwe", p.cweID.String())
	}
	if p.hasSev {
		v.Set("severity", p.sev.String())
	}
	if p.year != 0 {
		v.Set("year", strconv.Itoa(p.year))
	}
	v.Set("limit", strconv.Itoa(p.limit))
	v.Set("offset", strconv.Itoa(p.offset))
	return "/query?" + v.Encode()
}

// TestReadCacheEquivalence is the read-path acceptance invariant:
// every cached response — first hit (encode + fill), second hit
// (cache), and bytes seeded across incremental generation swaps — is
// byte-identical to a fresh render of the serving state. The sweep
// covers every /cve/{id} and the full /query parameter grid, across
// two incremental swaps, so carried-forward entry bytes are checked
// against the *new* generation's render.
func TestReadCacheEquivalence(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	checkGen := func(tag string) {
		t.Helper()
		st := srv.cur.Load()
		for _, e := range st.res.Cleaned.Entries {
			fresh := encodeJSON(st.view(e), false)
			for pass := 0; pass < 2; pass++ { // miss-or-seeded, then hit
				code, h, body := getRaw(t, ts, "/cve/"+e.ID, "")
				if code != http.StatusOK {
					t.Fatalf("%s: /cve/%s pass %d = %d", tag, e.ID, pass, code)
				}
				if !bytes.Equal(body, fresh) {
					t.Fatalf("%s: /cve/%s pass %d: cached bytes differ from fresh render\ncached: %s\nfresh:  %s",
						tag, e.ID, pass, body, fresh)
				}
				if h.Get("ETag") != st.etagFor(false) || h.Get("Cache-Control") == "" {
					t.Fatalf("%s: /cve/%s missing validator headers: %v", tag, e.ID, h)
				}
			}
		}
		for _, p := range paramGrid(st) {
			if p.hasCWE && p.cweID == 0 {
				continue // grid found no concrete CWE in this snapshot
			}
			fresh := encodeJSON(st.queryIndexed(p), false)
			for pass := 0; pass < 2; pass++ {
				code, _, body := getRaw(t, ts, queryURL(p), "")
				if code != http.StatusOK {
					t.Fatalf("%s: %s pass %d = %d", tag, queryURL(p), pass, code)
				}
				if !bytes.Equal(body, fresh) {
					t.Fatalf("%s: %s pass %d: cached bytes differ from fresh render\ncached: %s\nfresh:  %s",
						tag, queryURL(p), pass, body, fresh)
				}
			}
		}
	}

	checkGen("generation 1")

	// Swap 1: one added + one modified entry. The sweep above filled
	// the whole entry cache, so this swap seeds every untouched ID and
	// the next sweep compares those carried bytes to the new
	// generation's fresh render.
	postFeed(t, ts, feedUpdate(t, snap))
	if g := srv.cur.Load().generation; g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	checkGen("generation 2")

	// Swap 2: modify a different entry, re-prove everything again.
	st := srv.cur.Load()
	mod := st.res.Original.Entries[1].Clone()
	mod.Descriptions[0].Value += " Second wave."
	postFeed(t, ts, &nvdclean.Snapshot{
		CapturedAt: st.res.Original.CapturedAt.Add(48 * time.Hour),
		Entries:    []*nvdclean.Entry{mod},
	})
	if g := srv.cur.Load().generation; g != 3 {
		t.Fatalf("generation = %d, want 3", g)
	}
	checkGen("generation 3")
}

// TestETagConditional pins the conditional-serving contract: a
// matching If-None-Match costs a bodiless 304 carrying the validator,
// the validator is shared by every read endpoint of one generation,
// differs between pretty and compact representations, and rotates on
// a generation swap so a stale validator can never 304.
func TestETagConditional(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	id := snap.Entries[0].ID

	code, h, body := getRaw(t, ts, "/cve/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("/cve/%s = %d", id, code)
	}
	etag := h.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) || h.Get("Cache-Control") != readCacheControl {
		t.Fatalf("validator headers: ETag=%q Cache-Control=%q", etag, h.Get("Cache-Control"))
	}

	// Matching validators 304 with no body, echoing the validator.
	for _, inm := range []string{etag, "W/" + etag, `"bogus", ` + etag, "*"} {
		code, h304, b304 := getRaw(t, ts, "/cve/"+id, inm)
		if code != http.StatusNotModified || len(b304) != 0 {
			t.Fatalf("If-None-Match %q = %d with %d body bytes, want bare 304", inm, code, len(b304))
		}
		if h304.Get("ETag") != etag {
			t.Fatalf("304 validator = %q, want %q", h304.Get("ETag"), etag)
		}
	}
	// A stale or foreign validator serves the full response.
	if code, _, b := getRaw(t, ts, "/cve/"+id, `"bogus"`); code != http.StatusOK || !bytes.Equal(b, body) {
		t.Fatalf("mismatched validator = %d", code)
	}

	// One generation, one validator: /query and /healthz share it.
	if code, hq, _ := getRaw(t, ts, "/query?limit=5", ""); code != http.StatusOK || hq.Get("ETag") != etag {
		t.Fatalf("/query validator = %q, want %q", hq.Get("ETag"), etag)
	}
	if code, _, b := getRaw(t, ts, "/query?limit=5", etag); code != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional /query = %d", code)
	}
	if code, _, b := getRaw(t, ts, "/healthz", etag); code != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional /healthz = %d", code)
	}

	// The pretty representation has its own validator.
	codep, hp, bp := getRaw(t, ts, "/cve/"+id+"?pretty=1", "")
	if codep != http.StatusOK || hp.Get("ETag") == etag || hp.Get("ETag") == "" {
		t.Fatalf("pretty validator = %q (compact %q)", hp.Get("ETag"), etag)
	}
	if code, _, _ := getRaw(t, ts, "/cve/"+id+"?pretty=1", etag); code != http.StatusOK {
		t.Fatalf("compact validator matched the pretty representation: %d", code)
	}
	if code, _, b := getRaw(t, ts, "/cve/"+id+"?pretty=1", hp.Get("ETag")); code != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional pretty = %d", code)
	}
	var compact, pretty any
	if err := json.Unmarshal(body, &compact); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bp, &pretty); err != nil {
		t.Fatal(err)
	}
	if len(bp) <= len(body) {
		t.Errorf("pretty body (%d bytes) not larger than compact (%d)", len(bp), len(body))
	}

	// Errors carry no validator.
	if code, h404, _ := getRaw(t, ts, "/cve/CVE-2098-9999", ""); code != http.StatusNotFound || h404.Get("ETag") != "" {
		t.Fatalf("404 = %d ETag=%q, want no validator", code, h404.Get("ETag"))
	}
	// /stats is live-countered and deliberately unvalidated.
	if code, hs, _ := getRaw(t, ts, "/stats", ""); code != http.StatusOK || hs.Get("ETag") != "" {
		t.Fatalf("/stats = %d ETag=%q, want no validator", code, hs.Get("ETag"))
	}

	// A generation swap rotates the validator: the old tag must never
	// 304 again, and the new one must.
	postFeed(t, ts, feedUpdate(t, snap))
	code, h2, _ := getRaw(t, ts, "/cve/"+id, etag)
	if code != http.StatusOK {
		t.Fatalf("stale validator against swapped generation = %d, want full 200", code)
	}
	etag2 := h2.Get("ETag")
	if etag2 == etag || etag2 == "" {
		t.Fatalf("validator did not rotate on swap: %q", etag2)
	}
	if code, _, _ := getRaw(t, ts, "/cve/"+id, etag2); code != http.StatusNotModified {
		t.Fatalf("fresh validator = %d, want 304", code)
	}
}

// TestPrettyOptIn pins the wire change: responses are compact by
// default, byte-identical JSON documents to the old indented form, and
// ?pretty=1 restores indentation per request. A malformed pretty value
// is a 400, not a silent default.
func TestPrettyOptIn(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	st := srv.cur.Load()
	id := snap.Entries[0].ID

	_, _, compact := getRaw(t, ts, "/cve/"+id, "")
	if bytes.Contains(compact, []byte("\n  ")) {
		t.Error("default /cve body is indented")
	}
	_, _, pretty := getRaw(t, ts, "/cve/"+id+"?pretty=1", "")
	if want := encodeJSON(st.view(st.byID[id]), true); !bytes.Equal(pretty, want) {
		t.Errorf("pretty body differs from indented render")
	}
	var indented bytes.Buffer
	if err := json.Indent(&indented, compact, "", "  "); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(indented.String()) != strings.TrimSpace(string(pretty)) {
		t.Error("pretty and compact are not the same JSON document")
	}

	p, err := parseQueryParams(url.Values{"limit": {"3"}, "pretty": {"true"}})
	if err != nil || !p.pretty {
		t.Fatalf("pretty=true parse: %+v %v", p, err)
	}
	if _, _, b := getRaw(t, ts, "/query?limit=3&pretty=1", ""); !bytes.Equal(b, encodeJSON(st.queryIndexed(p), true)) {
		t.Error("/query?pretty=1 differs from indented render")
	}
	for _, path := range []string{"/cve/" + id + "?pretty=2", "/query?pretty=yes", "/healthz?pretty=2", "/stats?pretty=2"} {
		if code, _, _ := getRaw(t, ts, path, ""); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, code)
		}
	}
}

// TestFeedBodyLimit pins the POST /feed body bound: a body past
// -max-feed-bytes is a 413 before it can balloon the heap, and the
// error names the limit. The bound fires during the streaming decode,
// so no loaded snapshot is needed.
func TestFeedBodyLimit(t *testing.T) {
	srv := newServer(nvdclean.Options{})
	srv.maxFeedBytes = 1024
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	big := `{"pad":"` + strings.Repeat("x", 4096) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var msg map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST /feed = %d, want 413 (%v)", resp.StatusCode, msg)
	}
	if !strings.Contains(msg["error"], "1024") {
		t.Errorf("413 does not name the limit: %v", msg)
	}

	// A body under the limit reaches the handler proper (503 here:
	// this bare server never loaded a snapshot — parsing succeeded).
	resp, err = ts.Client().Post(ts.URL+"/feed", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("small POST /feed = %d, want 503 from the empty server", resp.StatusCode)
	}

	// maxFeedBytes <= 0 lifts the bound.
	srv.maxFeedBytes = 0
	resp, err = ts.Client().Post(ts.URL+"/feed", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("unbounded server returned 413")
	}
}

// TestReadCacheStats proves the /stats readCache section counts real
// traffic: misses on first render, hits on repeats, query bytes saved,
// and 304s.
func TestReadCacheStats(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	id := snap.Entries[0].ID

	getRaw(t, ts, "/cve/"+id, "")
	_, h, _ := getRaw(t, ts, "/cve/"+id, "")
	getRaw(t, ts, "/query?limit=3", "")
	getRaw(t, ts, "/query?limit=3", "")
	getRaw(t, ts, "/cve/"+id, h.Get("ETag")) // 304

	var stats struct {
		ReadCache struct {
			Enabled bool `json:"enabled"`
			Entry   struct {
				Hits          int `json:"hits"`
				Misses        int `json:"misses"`
				CachedEntries int `json:"cachedEntries"`
			} `json:"entry"`
			Query struct {
				Hits       int `json:"hits"`
				Misses     int `json:"misses"`
				BytesSaved int `json:"bytesSaved"`
			} `json:"query"`
			Conditional struct {
				NotModified int `json:"notModified"`
				BytesSaved  int `json:"bytesSaved"`
			} `json:"conditional"`
		} `json:"readCache"`
	}
	if code := getJSON(t, ts, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	rc := stats.ReadCache
	if !rc.Enabled {
		t.Error("readCache.enabled = false on a default server")
	}
	if rc.Entry.Hits < 1 {
		t.Errorf("entry hits = %d, want >= 1", rc.Entry.Hits)
	}
	if rc.Query.Hits < 1 || rc.Query.Misses < 1 || rc.Query.BytesSaved < 1 {
		t.Errorf("query counters: %+v", rc.Query)
	}
	if rc.Conditional.NotModified < 1 || rc.Conditional.BytesSaved < 1 {
		t.Errorf("conditional counters: %+v", rc.Conditional)
	}
}

// TestReadCacheDisabled proves -read-cache=false still serves
// byte-identical responses and validators — the cache changes latency,
// never bytes.
func TestReadCacheDisabled(t *testing.T) {
	srv, snap := demoServer(t)
	srv.readCache = false
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	st := srv.cur.Load()
	id := snap.Entries[0].ID

	code, h, body := getRaw(t, ts, "/cve/"+id, "")
	if code != http.StatusOK || !bytes.Equal(body, encodeJSON(st.view(st.byID[id]), false)) {
		t.Fatalf("uncached /cve differs from render (%d)", code)
	}
	if code, _, _ := getRaw(t, ts, "/cve/"+id, h.Get("ETag")); code != http.StatusNotModified {
		t.Error("conditional serving should work without the cache")
	}
	if st.entries.Len() != 0 {
		t.Errorf("disabled cache filled %d entries", st.entries.Len())
	}
}
