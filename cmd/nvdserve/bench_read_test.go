package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
)

// The read-path benchmarks measure what a client waits on GET under
// concurrent load — the cost the pre-encoded caches exist to remove.
// Each variant drives the same in-process handler with readClients
// goroutines sharing an atomic work counter, so the numbers include
// the lock/CAS traffic a real fan-in pays, not just a single encode:
//
//	CVEBaseline       /cve/{id} with -read-cache=false: every request
//	                  renders the view and marshals it — the old cost.
//	CVECached         /cve/{id} from the per-generation byte cache: one
//	                  encode at first hit, then copies.
//	CVEConditional    /cve/{id} with If-None-Match matching the current
//	                  generation — a 304, no body at all.
//	QueryBaseline     a broad /query with -read-cache=false: index scan
//	                  plus marshal per request.
//	QueryCached       the same /query from the canonical-key LRU.
//
// Besides ns/op, each reports p50/p99 of per-request wall time. The
// acceptance criterion (PERFORMANCE.md, BENCH_5.json) is cached p50 at
// least 2x faster than baseline for both endpoints, conditional faster
// still.
const readClients = 8

// benchReadServer builds a loaded in-memory server once per benchmark.
// LR-only: read latency does not depend on which models trained.
func benchReadServer(b *testing.B, readCache bool) (*server, http.Handler) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	srv.readCache = readCache
	if err := srv.load(context.Background(), snap); err != nil {
		b.Fatal(err)
	}
	return srv, srv.handler()
}

// benchServe drives b.N requests through handler from readClients
// goroutines. mkReq builds the i-th request; every response must carry
// wantCode. Per-request wall times are merged and reported as p50/p99.
func benchServe(b *testing.B, handler http.Handler, mkReq func(i int) *http.Request, wantCode int) {
	var next atomic.Int64
	durs := make([][]time.Duration, readClients)
	var wg sync.WaitGroup
	var bad atomic.Int64
	b.ResetTimer()
	for g := 0; g < readClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, b.N/readClients+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					break
				}
				req := mkReq(i)
				w := httptest.NewRecorder()
				start := time.Now()
				handler.ServeHTTP(w, req)
				mine = append(mine, time.Since(start))
				if w.Code != wantCode {
					bad.Store(int64(w.Code))
					break
				}
			}
			durs[g] = mine
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	if code := bad.Load(); code != 0 {
		b.Fatalf("got status %d, want %d", code, wantCode)
	}
	all := slices.Concat(durs...)
	slices.Sort(all)
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(all)-1))
		return float64(all[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
}

// cveTargets picks a rotating set of IDs so the benchmark exercises
// more than one hot map slot.
func cveTargets(srv *server) []string {
	st := srv.cur.Load()
	ids := make([]string, 0, 16)
	for _, e := range st.res.Cleaned.Entries[:min(16, len(st.res.Cleaned.Entries))] {
		ids = append(ids, e.ID)
	}
	return ids
}

// BenchmarkReadCVEBaseline renders and marshals the view on every
// request (-read-cache=false) — the per-request-marshal floor the
// cache is judged against.
func BenchmarkReadCVEBaseline(b *testing.B) {
	srv, handler := benchReadServer(b, false)
	ids := cveTargets(srv)
	benchServe(b, handler, func(i int) *http.Request {
		return httptest.NewRequest("GET", "/cve/"+ids[i%len(ids)], nil)
	}, http.StatusOK)
}

// BenchmarkReadCVECached serves the same requests from the
// per-generation pre-encoded byte cache.
func BenchmarkReadCVECached(b *testing.B) {
	srv, handler := benchReadServer(b, true)
	ids := cveTargets(srv)
	benchServe(b, handler, func(i int) *http.Request {
		return httptest.NewRequest("GET", "/cve/"+ids[i%len(ids)], nil)
	}, http.StatusOK)
}

// BenchmarkReadCVEConditional sends If-None-Match with the current
// generation's validator: the whole response is a 304.
func BenchmarkReadCVEConditional(b *testing.B) {
	srv, handler := benchReadServer(b, true)
	ids := cveTargets(srv)
	etag := srv.cur.Load().etagFor(false)
	benchServe(b, handler, func(i int) *http.Request {
		req := httptest.NewRequest("GET", "/cve/"+ids[i%len(ids)], nil)
		req.Header.Set("If-None-Match", etag)
		return req
	}, http.StatusNotModified)
}

// readQueryPath is a broad scan — most of the snapshot matches, so the
// per-request marshal the cache removes is substantial.
const readQueryPath = "/query?severity=High&limit=200"

// BenchmarkReadQueryBaseline scans the index and marshals the response
// on every request (-read-cache=false).
func BenchmarkReadQueryBaseline(b *testing.B) {
	_, handler := benchReadServer(b, false)
	benchServe(b, handler, func(i int) *http.Request {
		return httptest.NewRequest("GET", readQueryPath, nil)
	}, http.StatusOK)
}

// BenchmarkReadQueryCached serves the same query from the
// canonical-key LRU.
func BenchmarkReadQueryCached(b *testing.B) {
	_, handler := benchReadServer(b, true)
	benchServe(b, handler, func(i int) *http.Request {
		return httptest.NewRequest("GET", readQueryPath, nil)
	}, http.StatusOK)
}

// BenchmarkMetricsScrape measures one full /metrics render under the
// same concurrent-client harness: every registered family snapshotted,
// sampled, sorted, and written. This is the per-scrape cost a
// Prometheus server imposes at its scrape interval — it should sit in
// the tens of microseconds, invisible next to a 10s+ interval.
func BenchmarkMetricsScrape(b *testing.B) {
	srv, handler := benchReadServer(b, true)
	// Populate labeled children the way a live server would have them:
	// a few hits per route so the scrape renders realistic series.
	for _, id := range cveTargets(srv) {
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest("GET", "/cve/"+id, nil))
	}
	for _, path := range []string{readQueryPath, "/stats", "/readyz", "/metrics"} {
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	}
	benchServe(b, handler, func(i int) *http.Request {
		return httptest.NewRequest("GET", "/metrics", nil)
	}, http.StatusOK)
}

// benchBareHandler builds the same mux as server.handler but without
// the metrics middleware — the control for measuring instrumentation
// overhead inside one benchmark invocation, where host-speed drift
// between runs cannot pollute the comparison.
func benchBareHandler(srv *server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cve/{id}", srv.handleCVE)
	mux.HandleFunc("GET /query", srv.handleQuery)
	return mux
}

// BenchmarkReadCVECachedBare is BenchmarkReadCVECached minus the
// middleware. The p50 gap between the two, taken from the same run, is
// the per-request cost of instrumentation.
func BenchmarkReadCVECachedBare(b *testing.B) {
	srv, _ := benchReadServer(b, true)
	ids := cveTargets(srv)
	benchServe(b, benchBareHandler(srv), func(i int) *http.Request {
		return httptest.NewRequest("GET", "/cve/"+ids[i%len(ids)], nil)
	}, http.StatusOK)
}

// BenchmarkReadQueryCachedBare is BenchmarkReadQueryCached minus the
// middleware.
func BenchmarkReadQueryCachedBare(b *testing.B) {
	srv, _ := benchReadServer(b, true)
	benchServe(b, benchBareHandler(srv), func(i int) *http.Request {
		return httptest.NewRequest("GET", readQueryPath, nil)
	}, http.StatusOK)
}
