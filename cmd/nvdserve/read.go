package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// The read hot path. Every read response is a pure function of
// (request URL, serving generation): the generation is immutable and
// swaps atomically, so its sequence number is a correct HTTP validator
// and anything cached per generation is trivially coherent. This file
// holds the pieces the handlers share — encoding, the ETag scheme, and
// conditional (If-None-Match / 304) serving.

// readCacheControl is sent on every cacheable read response: clients
// and intermediaries may store responses but must revalidate, because
// generations swap on unpredictable POST /feed ingests. Revalidation
// is nearly free — a matching ETag costs a 304 with no body.
const readCacheControl = "no-cache"

// encodeJSON renders v the way every response body is encoded: compact
// by default, indented only when a client opts in with ?pretty=1, and
// always newline-terminated (the json.Encoder convention the wire
// format has used since the first release). Encode errors are
// impossible for the server's own view types and are ignored, matching
// the previous writeJSON behavior.
func encodeJSON(v any, pretty bool) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if pretty {
		enc.SetIndent("", "  ")
	}
	_ = enc.Encode(v)
	return buf.Bytes()
}

// parsePretty reads the ?pretty flag: absent or "0"/"false" means
// compact, "1"/"true" means indented, anything else is an error.
func parsePretty(values url.Values) (bool, error) {
	switch v := values.Get("pretty"); v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("bad pretty %q (want 1 or 0)", v)
	}
}

// etagFor returns the strong ETag of this generation's representation
// of any read resource. The tag is the generation sequence — the boot
// epoch, the persistent store generation captured at the swap, and the
// in-memory generation counter — so it changes exactly when a swap
// changes the served bytes, and never aliases across restarts (the
// boot epoch differs even though the in-memory counter restarts at 1).
// The pretty and compact representations of one URL carry distinct
// tags.
func (st *serveState) etagFor(pretty bool) string {
	if pretty {
		return st.etag[:len(st.etag)-1] + `-p"`
	}
	return st.etag
}

// etagMatch reports whether an If-None-Match header matches etag. The
// header is a comma-separated list of entity tags or "*"; weak
// validator prefixes compare as their opaque tag (our tags are strong
// and byte-exact per generation, so a weak match is still exact).
func etagMatch(header, etag string) bool {
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "W/")
		if tok == "*" || tok == etag {
			return true
		}
	}
	return false
}

// serveNotModified answers a conditional request whose validator still
// matches: a 304 with the validator and cache policy, no body. cached
// is the representation that was not resent, when cheaply known (nil
// is fine) — it feeds the bytes-saved counter only; the whole point of
// the 304 path is never rendering the body.
func (s *server) serveNotModified(w http.ResponseWriter, etag string, cached []byte) {
	s.metrics.NotModified.Add(1)
	s.metrics.NotModifiedBytes.Add(int64(len(cached)))
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", readCacheControl)
	w.WriteHeader(http.StatusNotModified)
}

// serveRead writes a 200 read response with its validator and cache
// policy. body is shared cache memory and is never modified.
func serveRead(w http.ResponseWriter, etag string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("ETag", etag)
	h.Set("Cache-Control", readCacheControl)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// cveBody returns the encoded /cve/{id} response for e, from the
// generation's pre-encoded cache on the compact path. Pretty rendering
// bypasses the cache: it is a debugging convenience, not the hot path,
// and caching both representations would double the cache for no
// reader benefit.
func (s *server) cveBody(st *serveState, id string, pretty bool) []byte {
	e := st.byID[id]
	if pretty || !s.readCache {
		return encodeJSON(st.view(e), pretty)
	}
	return st.entries.Get(id, func() []byte {
		return encodeJSON(st.view(e), false)
	})
}

// queryBody returns the encoded /query response for p, consulting the
// generation's canonical-key response cache on the compact path.
func (s *server) queryBody(st *serveState, p queryParams) []byte {
	if p.pretty || !s.readCache {
		return encodeJSON(st.queryIndexed(p), p.pretty)
	}
	key := p.cacheKey()
	if b, ok := st.queries.Get(key); ok {
		return b
	}
	b := encodeJSON(st.queryIndexed(p), false)
	st.queries.Put(key, b)
	return b
}

// cacheKey canonicalizes the parsed parameter set: two URLs that parse
// to the same filters share one cache slot regardless of parameter
// order or defaulted values. Fields are joined with a separator byte
// that cannot occur in any value, so concatenations never collide.
func (p queryParams) cacheKey() string {
	var b strings.Builder
	const sep = '\x1f'
	b.WriteString(p.vendor)
	b.WriteByte(sep)
	b.WriteString(p.product)
	b.WriteByte(sep)
	if p.hasCWE {
		b.WriteString(p.cweID.String())
	}
	b.WriteByte(sep)
	if p.hasSev {
		b.WriteString(p.sev.String())
	}
	b.WriteByte(sep)
	b.WriteString(strconv.Itoa(p.year))
	b.WriteByte(sep)
	b.WriteString(strconv.Itoa(p.limit))
	b.WriteByte(sep)
	b.WriteString(strconv.Itoa(p.offset))
	return b.String()
}
