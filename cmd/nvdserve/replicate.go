package main

// The primary side of the replication stream: three GET handlers that
// expose the store's ReplicationSource surface over HTTP. The wire
// format is the store's native artifacts — manifest JSON, verbatim
// checkpoint file bytes, verbatim segment frame bytes — so the
// follower re-verifies everything with the same CRCs the store itself
// uses, and the handlers never re-encode anything on the hot path.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"nvdclean/internal/replica"
	"nvdclean/internal/store"
)

// replicationSource returns the store to replicate from, answering 404
// when the daemon runs without one (an in-memory daemon has no stream
// to offer).
func (s *server) replicationSource(w http.ResponseWriter) *store.Store {
	if s.persist == nil {
		writeError(w, http.StatusNotFound, "replication requires a -data-dir store")
		return nil
	}
	return s.persist
}

// handleReplicateManifest serves the point-in-time replication
// manifest: the committed checkpoint's file list (with sums) and the
// live segments. 503 until the first checkpoint commits.
func (s *server) handleReplicateManifest(w http.ResponseWriter, r *http.Request) {
	src := s.replicationSource(w)
	if src == nil {
		return
	}
	rm, err := src.ReplicationManifest()
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rm)
}

// handleReplicateCheckpoint streams one checkpoint file verbatim. The
// follower verifies the bytes against the manifest sums, so no
// integrity metadata travels here — just the bytes.
func (s *server) handleReplicateCheckpoint(w http.ResponseWriter, r *http.Request) {
	src := s.replicationSource(w)
	if src == nil {
		return
	}
	name := r.PathValue("file")
	rc, size, err := src.CheckpointFile(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "no checkpoint file %q", name)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, rc)
}

// handleReplicateLog serves committed segment bytes from a follower's
// cursor: ?from={seq} names the segment, an optional "Range: bytes=N-"
// header resumes mid-segment (answered 206). The response headers
// carry the segment's sealed flag, the checkpoint watermark and the
// active seq so the follower can steer without a manifest round trip.
// Protocol statuses: 204 + Retry-After when the cursor is at the
// committed end of the active segment (nothing to ship — pollers back
// off without parsing a body), 410 when the segment is retired into a
// checkpoint (the follower must re-bootstrap), 404 for a segment that
// does not exist yet.
func (s *server) handleReplicateLog(w http.ResponseWriter, r *http.Request) {
	src := s.replicationSource(w)
	if src == nil {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeError(w, http.StatusBadRequest, "bad or missing from=%q (want a segment seq)", r.URL.Query().Get("from"))
		return
	}
	var off int64
	if rng := r.Header.Get("Range"); rng != "" {
		rest, okPrefix := strings.CutPrefix(rng, "bytes=")
		rest, okSuffix := strings.CutSuffix(rest, "-")
		if okPrefix && okSuffix {
			off, err = strconv.ParseInt(rest, 10, 64)
		}
		if !okPrefix || !okSuffix || err != nil || off < 0 {
			writeError(w, http.StatusBadRequest, "bad Range %q (want bytes=N-)", rng)
			return
		}
	}
	data, sealed, err := src.ReadSegment(from, off)
	h := w.Header()
	h.Set(replica.HeaderWatermark, strconv.FormatUint(src.Watermark(), 10))
	walSeq, _ := src.ActivePosition()
	h.Set(replica.HeaderWALSeq, strconv.FormatUint(walSeq, 10))
	switch {
	case errors.Is(err, store.ErrSegmentRetired):
		writeError(w, http.StatusGone,
			"segment %d is retired into the checkpoint (watermark %d); re-bootstrap from %s",
			from, src.Watermark(), replica.ManifestPath)
		return
	case errors.Is(err, store.ErrNoSegment):
		writeError(w, http.StatusNotFound, "no segment %d", from)
		return
	case err != nil:
		writeError(w, http.StatusRequestedRangeNotSatisfiable, "%v", err)
		return
	}
	if sealed {
		h.Set(replica.HeaderSealed, "1")
	} else {
		h.Set(replica.HeaderSealed, "0")
	}
	if len(data) == 0 && !sealed {
		h.Set("Retry-After", "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	if off > 0 && len(data) > 0 {
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/*", off, off+int64(len(data))-1))
		w.WriteHeader(http.StatusPartialContent)
	} else {
		w.WriteHeader(http.StatusOK)
	}
	_, _ = w.Write(data)
}
