package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/predict"
)

// TestRaceReadDuringFeedSwap hammers the cached read path — /cve/{id}
// and /query, mixing fresh and If-None-Match requests — while POST
// /feed swaps generations underneath. The stress invariants, checked
// on every response:
//
//   - one validator, one body: two 200s carrying the same ETag are
//     byte-identical, even when one was rendered before a swap and the
//     other served from a seeded cache after it;
//   - a 304 echoes exactly the validator the client presented;
//   - a validator from generation N never 304s once generation N+1
//     serves (checked deterministically after every swap);
//   - after the last swap the served body carries the last update's
//     marker — no stale cached bytes survive a swap that touched the
//     entry.
//
// Run under -race this also proves the cache fill (singleflight
// encode, seeded map) and the LRU are sound against the swap.
func TestRaceReadDuringFeedSwap(t *testing.T) {
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LR-only: the race surface (cache fill vs generation swap) does
	// not depend on which models train.
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	target := snap.Entries[0].ID
	paths := []string{"/cve/" + target, "/cve/" + snap.Entries[1].ID, "/query?severity=HIGH&limit=50"}

	// bodies maps ETag -> first body bytes observed under it; every
	// later 200 with the same validator must match. Keys are
	// etag + "\x00" + path because different resources share one
	// generation validator.
	var bodies sync.Map
	var raceErr sync.Map // goroutine id -> error
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastTag := make(map[string]string) // path -> last validator seen
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(g+i)%len(paths)]
				req, err := http.NewRequest("GET", ts.URL+path, nil)
				if err != nil {
					raceErr.Store(g, err)
					return
				}
				conditional := i%2 == 1 && lastTag[path] != ""
				if conditional {
					req.Header.Set("If-None-Match", lastTag[path])
				}
				resp, err := ts.Client().Do(req)
				if err != nil {
					continue // server shutting down
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				etag := resp.Header.Get("ETag")
				switch resp.StatusCode {
				case http.StatusOK:
					if etag == "" {
						raceErr.Store(g, fmt.Errorf("%s: 200 without validator", path))
						return
					}
					key := etag + "\x00" + path
					if prev, loaded := bodies.LoadOrStore(key, body); loaded && !bytes.Equal(prev.([]byte), body) {
						raceErr.Store(g, fmt.Errorf("%s: two bodies under validator %s", path, etag))
						return
					}
					lastTag[path] = etag
				case http.StatusNotModified:
					if !conditional {
						raceErr.Store(g, fmt.Errorf("%s: 304 for unconditional request", path))
						return
					}
					if len(body) != 0 || etag != lastTag[path] {
						raceErr.Store(g, fmt.Errorf("%s: 304 body=%d etag=%q (sent %q)", path, len(body), etag, lastTag[path]))
						return
					}
				default:
					raceErr.Store(g, fmt.Errorf("%s: status %d", path, resp.StatusCode))
					return
				}
			}
		}(g)
	}

	// Serial ingests from the main goroutine, each modifying the target
	// entry, so every swap invalidates bytes the readers are hammering.
	const posts = 5
	var marker string
	for i := 0; i < posts; i++ {
		_, prevHdr, _ := getRaw(t, ts, "/cve/"+target, "")
		prevTag := prevHdr.Get("ETag")

		mod := srv.cur.Load().res.Original.Entries[0].Clone()
		if mod.ID != target {
			t.Fatalf("original entry order changed: %s", mod.ID)
		}
		marker = fmt.Sprintf("swap marker %d.", i)
		mod.Descriptions[0].Value += " " + marker
		postFeed(t, ts, &nvdclean.Snapshot{
			CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Hour),
			Entries:    []*nvdclean.Entry{mod},
		})

		// The swapped generation must never 304 a stale validator.
		code, h, body := getRaw(t, ts, "/cve/"+target, prevTag)
		if code != http.StatusOK {
			t.Fatalf("post %d: stale validator %s got %d, want full 200", i, prevTag, code)
		}
		if h.Get("ETag") == prevTag {
			t.Fatalf("post %d: validator did not rotate", i)
		}
		if !bytes.Contains(body, []byte(marker)) {
			t.Fatalf("post %d: swapped body is stale (missing %q)", i, marker)
		}
	}
	close(stop)
	wg.Wait()
	raceErr.Range(func(g, err any) bool {
		t.Errorf("reader %v: %v", g, err)
		return true
	})

	// Final serving state: fresh read reflects the last update.
	if _, _, body := getRaw(t, ts, "/cve/"+target, ""); !bytes.Contains(body, []byte(marker)) {
		t.Fatalf("final body missing %q", marker)
	}
}
