package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"nvdclean"
	"nvdclean/internal/store"
)

// Exercises concurrent GET /query during a POST /feed that triggers
// compaction (StoreCheckpoint -> ApplyBackport on the serving snapshot).
func TestRaceCompactionVsQuery(t *testing.T) {
	dir := t.TempDir()
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{Transport: nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(), Seed: 1}
	srv := newServer(opts)
	st, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv.persist = st
	srv.compactEvery = 1
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Build a feed body that modifies one entry.
	mod := snap.Clone()
	mod.Entries[0].Descriptions[0].Value += " updated"
	var buf bytes.Buffer
	if err := nvdclean.WriteFeed(&buf, &nvdclean.Snapshot{CapturedAt: mod.CapturedAt, Entries: mod.Entries[:1]}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/query?severity=HIGH")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("feed status:", resp.StatusCode)
	resp.Body.Close()
	close(stop)
	wg.Wait()
}
