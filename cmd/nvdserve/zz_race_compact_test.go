package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// Exercises concurrent GET /query during a POST /feed that triggers
// compaction (StoreCheckpoint -> ApplyBackport on the serving snapshot).
func TestRaceCompactionVsQuery(t *testing.T) {
	dir := t.TempDir()
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LR-only: the race surface (compaction vs lock-free readers) does
	// not depend on which models train, and the full zoo under the
	// race detector is minutes of training on a small host.
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	st, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv.persist = st
	srv.compactEvery = 1
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Build a feed body that modifies one entry.
	mod := snap.Clone()
	mod.Entries[0].Descriptions[0].Value += " updated"
	var buf bytes.Buffer
	if err := nvdclean.WriteFeed(&buf, &nvdclean.Snapshot{CapturedAt: mod.CapturedAt, Entries: mod.Entries[:1]}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/query?severity=HIGH")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("feed status:", resp.StatusCode)
	resp.Body.Close()
	close(stop)
	wg.Wait()
}

// TestRaceFeedDuringBackgroundCommit is the commit-queue stress test:
// every POST /feed trips compaction (compactEvery=1), so each ingest
// seals a segment and enqueues a checkpoint while the previous
// background commit may still be writing — all under concurrent /query
// and /stats readers. Afterwards the store must reopen to exactly the
// serving view: whatever mix of committed checkpoints and live
// segments the race left behind, no acknowledged delta is lost.
func TestRaceFeedDuringBackgroundCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	st, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv.persist = st
	srv.compactEvery = 1
	srv.committer = store.NewCommitter(st)
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/query?severity=HIGH", "/stats"} {
					if resp, err := ts.Client().Get(ts.URL + path); err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}

	// Sequential ingests, each modifying one entry: every one seals
	// and enqueues while the committer races the successor appends.
	const posts = 5
	for i := 0; i < posts; i++ {
		mod := snap.Entries[i%3].Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" race update %d", i)
		body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Hour), Entries: []*nvdclean.Entry{mod}}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, body); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("POST /feed %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()

	// Drain the queue (Close waits for an in-flight commit) and prove
	// the store reopens to the serving view: restored checkpoint plus
	// replayed segments == what the server was serving when it stopped.
	srv.committer.Close()
	want := srv.cur.Load().res
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, cp, logged, notes, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if cp == nil {
		t.Fatalf("no checkpoint after %d compacting ingests (notes %v)", posts, notes)
	}
	res, err := nvdclean.RestoreResult(cp, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := res.Original
	for _, d := range logged {
		cur = cur.ApplyDelta(d)
	}
	if total := nvdclean.Diff(res.Original, cur); !total.Empty() {
		if res, err = nvdclean.CleanDelta(context.Background(), res, total, opts); err != nil {
			t.Fatal(err)
		}
	}
	if res.Cleaned.Len() != want.Cleaned.Len() {
		t.Fatalf("restored %d entries, want %d", res.Cleaned.Len(), want.Cleaned.Len())
	}
	nvdclean.ApplyBackport(res.Cleaned, res.Backport)
	for i, e := range want.Cleaned.Entries {
		if !e.Equal(res.Cleaned.Entries[i]) {
			t.Fatalf("restored entry %d (%s) differs from the serving view", i, e.ID)
		}
	}
}
