package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// protoPrimary builds a store-backed server with a minimal committed
// checkpoint — enough for the /replicate protocol handlers, which never
// touch the serving generation — without paying a pipeline run.
func protoPrimary(t *testing.T) *server {
	t.Helper()
	str, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { str.Close() })
	e := &cve.Entry{
		ID:           "CVE-2020-0001",
		Published:    time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC),
		Descriptions: []cve.Description{{Value: "A vulnerability."}},
		CPEs:         []cpe.Name{cpe.NewName(cpe.PartApplication, "acme", "anvil", "")},
	}
	snap := &cve.Snapshot{CapturedAt: time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC), Entries: []*cve.Entry{e}}
	cp := &store.Checkpoint{
		Original: snap,
		Cleaned:  snap.Clone(),
		Vendors:  naming.NewMap(nil),
		Products: naming.NewProductMap(nil),
		State:    &store.State{},
	}
	if err := str.Commit(cp); err != nil {
		t.Fatal(err)
	}
	added := e.Clone()
	added.ID = "CVE-2020-0002"
	d := &cve.Delta{CapturedAt: snap.CapturedAt.Add(time.Hour), Added: []*cve.Entry{added}}
	d.Sort()
	if err := str.AppendDelta(d); err != nil {
		t.Fatal(err)
	}
	srv := newServer(nvdclean.Options{})
	srv.persist = str
	return srv
}

// TestReplicateEndpoints pins the primary-side wire protocol: manifest
// shape, verbatim checkpoint bytes, and the /replicate/log status
// grammar — 200/206 for bytes, 204 + Retry-After at the watermark, 410
// for retired segments, 404 for future ones, 400 for bad cursors.
func TestReplicateEndpoints(t *testing.T) {
	srv := protoPrimary(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// A store-less daemon has no stream to offer.
	none := httptest.NewServer(newServer(nvdclean.Options{}).handler())
	defer none.Close()
	var e map[string]any
	if code := getJSON(t, none, "/replicate/manifest", &e); code != http.StatusNotFound {
		t.Errorf("store-less manifest = %d, want 404", code)
	}

	var rm store.ReplicationManifest
	if code := getJSON(t, ts, "/replicate/manifest", &rm); code != http.StatusOK {
		t.Fatalf("/replicate/manifest = %d", code)
	}
	if rm.Generation != 1 || rm.CheckpointSeq != 0 || rm.WALSeq != 1 || len(rm.Files) == 0 {
		t.Fatalf("manifest = %+v", rm)
	}

	// Checkpoint files ship verbatim, sized by the manifest.
	resp, err := ts.Client().Get(ts.URL + "/replicate/checkpoint/" + rm.Files[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int64(body.Len()) != rm.Files[0].Size {
		t.Fatalf("checkpoint file: %d, %d bytes (manifest says %d)", resp.StatusCode, body.Len(), rm.Files[0].Size)
	}
	if code := getJSON(t, ts, "/replicate/checkpoint/no-such-file", &e); code != http.StatusNotFound {
		t.Errorf("missing checkpoint file = %d, want 404", code)
	}

	get := func(path, rng string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rng != "" {
			req.Header.Set("Range", rng)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		return resp, b.Bytes()
	}

	// Bad cursors are 400, not empty responses.
	for _, path := range []string{"/replicate/log", "/replicate/log?from=0", "/replicate/log?from=x"} {
		if resp, _ := get(path, ""); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, resp.StatusCode)
		}
	}
	if resp, _ := get("/replicate/log?from=1", "bytes=oops"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Range = %d, want 400", resp.StatusCode)
	}

	// The active segment's committed bytes, whole and resumed.
	resp1, full := get("/replicate/log?from=1", "")
	if resp1.StatusCode != http.StatusOK || len(full) == 0 {
		t.Fatalf("log from=1: %d, %d bytes", resp1.StatusCode, len(full))
	}
	if resp1.Header.Get("X-Nvdserve-Sealed") != "0" || resp1.Header.Get("X-Nvdserve-Wal-Seq") != "1" {
		t.Errorf("log headers: sealed=%q walSeq=%q", resp1.Header.Get("X-Nvdserve-Sealed"), resp1.Header.Get("X-Nvdserve-Wal-Seq"))
	}
	resp2, tail := get("/replicate/log?from=1", "bytes=8-")
	if resp2.StatusCode != http.StatusPartialContent || !bytes.Equal(tail, full[8:]) {
		t.Fatalf("resumed log: %d, %d bytes", resp2.StatusCode, len(tail))
	}
	if cr := resp2.Header.Get("Content-Range"); !strings.HasPrefix(cr, "bytes 8-") {
		t.Errorf("Content-Range = %q", cr)
	}

	// At the committed end: 204 with a Retry-After hint, no body to parse.
	respEnd, _ := get(fmt.Sprintf("/replicate/log?from=1"), fmt.Sprintf("bytes=%d-", len(full)))
	if respEnd.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up log = %d, want 204", respEnd.StatusCode)
	}
	if respEnd.Header.Get("Retry-After") == "" {
		t.Error("204 carries no Retry-After")
	}

	// A segment that does not exist yet.
	if resp, _ := get("/replicate/log?from=9", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("future segment = %d, want 404", resp.StatusCode)
	}

	// Retire segment 1 into a checkpoint: the cursor's segment is gone
	// and the 410 tells the follower to re-bootstrap.
	if _, err := srv.persist.Seal(); err != nil {
		t.Fatal(err)
	}
	snapResp, _ := get("/replicate/log?from=1", "")
	if snapResp.StatusCode != http.StatusOK || snapResp.Header.Get("X-Nvdserve-Sealed") != "1" {
		t.Fatalf("sealed segment read: %d sealed=%q", snapResp.StatusCode, snapResp.Header.Get("X-Nvdserve-Sealed"))
	}
	cp2 := &store.Checkpoint{
		Original: &cve.Snapshot{CapturedAt: time.Now().UTC()},
		Cleaned:  &cve.Snapshot{CapturedAt: time.Now().UTC()},
		Vendors:  naming.NewMap(nil),
		Products: naming.NewProductMap(nil),
		State:    &store.State{},
	}
	if err := srv.persist.CommitSealed(cp2, 1); err != nil {
		t.Fatal(err)
	}
	respGone, goneBody := get("/replicate/log?from=1", "")
	if respGone.StatusCode != http.StatusGone {
		t.Fatalf("retired segment = %d, want 410", respGone.StatusCode)
	}
	if !strings.Contains(string(goneBody), "/replicate/manifest") {
		t.Errorf("410 body does not point at the manifest: %s", goneBody)
	}
	if respGone.Header.Get("X-Nvdserve-Watermark") != "1" {
		t.Errorf("410 watermark = %q, want 1", respGone.Header.Get("X-Nvdserve-Watermark"))
	}
}

// catchUp drives the follower's sync loop synchronously until one poll
// confirms it holds every committed byte the primary has (the primary
// is quiescent while this runs, so the first successful wait>0 outcome
// means fully caught up).
func catchUp(t *testing.T, ctx context.Context, f *follower) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("follower never caught up")
		}
		wait, err := f.syncOnce(ctx)
		if err != nil {
			t.Fatalf("syncOnce: %v", err)
		}
		if wait > 0 {
			return
		}
	}
}

// assertConverged proves the follower's serving view is byte-identical
// to the primary's: every /cve view and every /query answer (indexed
// and scan) renders the same bytes on both.
func assertConverged(t *testing.T, label string, p, f *server) {
	t.Helper()
	stP, stF := p.cur.Load(), f.cur.Load()
	if stP.res.Cleaned.Len() != stF.res.Cleaned.Len() {
		t.Fatalf("%s: entry counts differ: primary %d, follower %d", label, stP.res.Cleaned.Len(), stF.res.Cleaned.Len())
	}
	for _, e := range stP.res.Cleaned.Entries {
		fe, ok := stF.byID[e.ID]
		if !ok {
			t.Fatalf("%s: follower lacks %s", label, e.ID)
		}
		pb, err := json.Marshal(stP.view(e))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := json.Marshal(stF.view(fe))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, fb) {
			t.Fatalf("%s: view of %s differs:\nprimary:  %s\nfollower: %s", label, e.ID, pb, fb)
		}
	}
	for _, q := range paramGrid(stP) {
		pb := marshalResponse(t, stP.queryIndexed(q))
		fb := marshalResponse(t, stF.queryIndexed(q))
		if !bytes.Equal(pb, fb) {
			t.Fatalf("%s: query %+v differs across replicas:\nprimary:  %s\nfollower: %s", label, q, pb, fb)
		}
		if scan := marshalResponse(t, stF.queryScan(q)); !bytes.Equal(fb, scan) {
			t.Fatalf("%s: query %+v: follower index differs from scan", label, q)
		}
	}
}

// TestFollowerEquivalence is the replication acceptance test: a
// follower bootstrapped from the primary's shipped checkpoint and
// tailing its stream — across two sealed segments, a live tail, and a
// primary compaction that forces a 410 re-bootstrap — serves a view
// byte-identical to the primary's, with equal ETag validators at the
// same stream position.
func TestFollowerEquivalence(t *testing.T) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	transport := nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport()
	opts := nvdclean.Options{
		Transport:   transport,
		Concurrency: 8,
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	ctx := context.Background()

	// Primary: full clean + checkpoint, then three ingested deltas
	// spread over two sealed segments plus the active tail.
	pStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pStr.Close()
	primary := newServer(opts)
	primary.persist = pStr
	primary.compactEvery = 1000
	if err := primary.load(ctx, snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary.handler())
	defer ts.Close()

	update := feedUpdate(t, snap)
	postFeed(t, ts, update)
	if _, err := pStr.Seal(); err != nil {
		t.Fatal(err)
	}
	second := &nvdclean.Snapshot{CapturedAt: update.CapturedAt.Add(time.Hour)}
	again := update.Entries[0].Clone()
	again.Descriptions[0].Value += " Patched."
	second.Entries = []*nvdclean.Entry{again}
	postFeed(t, ts, second)
	if _, err := pStr.Seal(); err != nil {
		t.Fatal(err)
	}
	third := &nvdclean.Snapshot{CapturedAt: update.CapturedAt.Add(2 * time.Hour)}
	once := update.Entries[1].Clone()
	once.Descriptions[0].Value += " Regression confirmed."
	third.Entries = []*nvdclean.Entry{once}
	postFeed(t, ts, third)
	if pStr.SealedSegments() != 2 || pStr.ActiveRecords() != 1 {
		t.Fatalf("primary log shape: sealed=%d active=%d, want 2/1", pStr.SealedSegments(), pStr.ActiveRecords())
	}

	// Follower: own store, different concurrency (a wall-clock knob,
	// never bits), driven synchronously for determinism.
	fOpts := opts
	fOpts.Concurrency = 3
	fStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fStr.Close()
	fsrv := newServer(fOpts)
	fsrv.persist = fStr
	fol := newFollower(fsrv, ts.URL, 50*time.Millisecond, 15*time.Second)
	fsrv.follower = fol
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	// Before the bootstrap the replica serves nothing and is not ready.
	var probe map[string]any
	if code := getJSON(t, fts, "/readyz", &probe); code != http.StatusServiceUnavailable {
		t.Fatalf("unbootstrapped /readyz = %d, want 503", code)
	}

	if err := fol.bootstrap(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if fsrv.cur.Load() == nil {
		t.Fatal("bootstrap installed no serving generation")
	}
	catchUp(t, ctx, fol)

	// The stream positions — and therefore the ETag validators — align.
	pSeq, pOff := pStr.LastPosition()
	fSeq, fOff := fStr.LastPosition()
	if pSeq != fSeq || pOff != fOff {
		t.Fatalf("positions diverge: primary (%d,%d) follower (%d,%d)", pSeq, pOff, fSeq, fOff)
	}
	if pe, fe := primary.cur.Load().etag, fsrv.cur.Load().etag; pe != fe {
		t.Fatalf("ETag validators diverge at the same position: primary %s follower %s", pe, fe)
	}
	// The follower sealed its copies in lockstep and checkpointed them
	// locally (inline, no committer), so its own restarts stay cheap.
	if fStr.Watermark() == 0 {
		t.Error("follower never checkpointed its sealed segments")
	}
	assertConverged(t, "live tail", primary, fsrv)

	// A replica refuses writes and points at the primary.
	resp, err := fts.Client().Post(fts.URL+"/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower POST /feed = %d, want 403", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != ts.URL+"/feed" {
		t.Errorf("403 Location = %q, want %q", loc, ts.URL+"/feed")
	}

	// Both roles report a replication block on /stats.
	var fStats map[string]any
	if code := getJSON(t, fts, "/stats", &fStats); code != http.StatusOK {
		t.Fatalf("follower /stats = %d", code)
	}
	frepl, ok := fStats["replication"].(map[string]any)
	if !ok {
		t.Fatalf("follower /stats has no replication block: %v", fStats)
	}
	if frepl["role"] != "follower" || frepl["primary"] != ts.URL || frepl["synced"] != true {
		t.Errorf("follower replication block = %v", frepl)
	}
	if frepl["lagSeconds"].(float64) < 0 {
		t.Errorf("synced follower reports unknown lag: %v", frepl["lagSeconds"])
	}
	var pStats map[string]any
	if code := getJSON(t, ts, "/stats", &pStats); code != http.StatusOK {
		t.Fatalf("primary /stats = %d", code)
	}
	prepl, ok := pStats["replication"].(map[string]any)
	if !ok || prepl["role"] != "primary" {
		t.Fatalf("primary replication block = %v", pStats["replication"])
	}
	if uint64(prepl["cursorSegment"].(float64)) != pSeq {
		t.Errorf("primary cursorSegment = %v, want %d", prepl["cursorSegment"], pSeq)
	}

	// Readiness gates on lag: a stale caught-up stamp flips 503, a
	// fresh confirmation restores 200.
	if code := getJSON(t, fts, "/readyz", &probe); code != http.StatusOK {
		t.Fatalf("caught-up follower /readyz = %d, want 200", code)
	}
	fol.caughtUpAt.Store(time.Now().Add(-time.Hour).UnixNano())
	if code := getJSON(t, fts, "/readyz", &probe); code != http.StatusServiceUnavailable {
		t.Fatalf("lagging follower /readyz = %d, want 503", code)
	}
	if !strings.Contains(probe["status"].(string), "replication lag") {
		t.Errorf("lag 503 reason = %v", probe["status"])
	}
	fol.caughtUpAt.Store(time.Now().UnixNano())

	// Compaction catch-up: the primary folds everything — including the
	// follower's cursor segment — into a fresh checkpoint; the next poll
	// sees 410 and re-bootstraps from the shipped state.
	primary.compactEvery = 1
	fourth := &nvdclean.Snapshot{CapturedAt: update.CapturedAt.Add(3 * time.Hour)}
	more := update.Entries[0].Clone()
	more.Descriptions[0].Value += " Fix verified."
	fourth.Entries = []*nvdclean.Entry{more}
	sum := postFeed(t, ts, fourth)
	if sum["compacted"] != true {
		t.Fatalf("primary did not compact: %v", sum)
	}
	if pStr.Watermark() < 3 {
		t.Fatalf("primary watermark = %d after compacting the tail", pStr.Watermark())
	}
	before := fol.bootstraps.Load()
	catchUp(t, ctx, fol)
	if fol.bootstraps.Load() != before+1 {
		t.Fatalf("compaction did not force a re-bootstrap: %d -> %d", before, fol.bootstraps.Load())
	}
	assertConverged(t, "post-compaction", primary, fsrv)

	// The follower's own store survives a restart: reopen and check it
	// lands on the installed generation with no recovery notes.
	fol2 := newFollower(fsrv, ts.URL, 50*time.Millisecond, 0)
	if seq, _ := fsrv.persist.ActivePosition(); seq == 0 {
		t.Fatal("follower store has no active segment after install")
	}
	if got, _ := fol2.cursorSeq.Load(), fol2.cursorOff.Load(); got == 0 {
		t.Error("a rebuilt follower does not resume from the local store position")
	}
}

// TestNvdserveReplicaSmoke is the CI replica step: a real primary and a
// real follower as separate processes, the follower bootstrapping and
// tailing over actual HTTP until the two daemons serve identical bytes
// with identical validators.
func TestNvdserveReplicaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke test skipped in -short")
	}
	bin := buildNvdserve(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	pDir := filepath.Join(t.TempDir(), "primary")
	p := startDaemon(t, ctx, bin, "-demo", "tiny", "-data-dir", pDir)

	// Ingest one delta so the follower has both a checkpoint and live
	// tail bytes to replicate.
	snap, _, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := nvdclean.WriteFeed(&body, feedUpdate(t, snap)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary POST /feed = %d", resp.StatusCode)
	}

	fDir := filepath.Join(t.TempDir(), "replica")
	f := startDaemon(t, ctx, bin, "-demo", "tiny", "-data-dir", fDir,
		"-follow", p.base, "-follow-poll", "100ms")

	// The replica turns ready once bootstrapped and caught up.
	deadline := time.Now().Add(90 * time.Second)
	for {
		var probe map[string]any
		if code := f.get(t, "/readyz", &probe); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Identical content, identical validator, on the ingested entry.
	pCode, pHdr, pBody := p.getRaw(t, "/cve/CVE-2018-9999")
	fCode, fHdr, fBody := f.getRaw(t, "/cve/CVE-2018-9999")
	if pCode != http.StatusOK || fCode != http.StatusOK {
		t.Fatalf("/cve across replicas: primary %d, follower %d", pCode, fCode)
	}
	if pBody != fBody {
		t.Fatalf("replica serves different bytes:\nprimary:  %s\nfollower: %s", pBody, fBody)
	}
	if pHdr.Get("ETag") == "" || pHdr.Get("ETag") != fHdr.Get("ETag") {
		t.Fatalf("ETags diverge: primary %q, follower %q", pHdr.Get("ETag"), fHdr.Get("ETag"))
	}

	// Role surfaces: /stats blocks and 403 on replica writes.
	var stats map[string]any
	if code := p.get(t, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("primary /stats = %d", code)
	}
	if repl, _ := stats["replication"].(map[string]any); repl["role"] != "primary" {
		t.Errorf("primary replication role = %v", stats["replication"])
	}
	if code := f.get(t, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("follower /stats = %d", code)
	}
	if repl, _ := stats["replication"].(map[string]any); repl["role"] != "follower" {
		t.Errorf("follower replication role = %v", stats["replication"])
	}
	resp, err = http.Post(f.base+"/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica POST /feed = %d, want 403", resp.StatusCode)
	}

	// The replica metric families render with real values.
	code, _, metrics := f.getRaw(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("follower /metrics = %d", code)
	}
	for _, fam := range []string{
		"nvdserve_replica_follower 1",
		"nvdserve_replica_lag_seconds",
		"nvdserve_replica_bootstraps_total",
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("follower /metrics missing %s", fam)
		}
	}

	f.shutdown(t)
	p.shutdown(t)
}
