package main

import (
	"errors"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"syscall"
	"time"
)

// storeHealth tracks whether the persistent store can accept writes.
// The serving view never depends on it — reads come from the immutable
// in-memory generation — so a full disk or a failing volume degrades
// the daemon to read-only instead of taking it down: POST /feed is
// rejected with Retry-After while /cve and /query keep answering the
// current generation byte-for-byte.
//
// Degradation is entered on any persist failure (append, seal, or
// checkpoint commit) and left only when a background probe proves a
// durable write round-trips again. Probing is how the daemon recovers
// without an operator bounce: ENOSPC clears when something frees the
// volume, and the next successful probe flips the daemon back to
// read-write on its own.
type storeHealth struct {
	srv *server

	mu       sync.Mutex
	degraded bool
	reason   string
	// enospc remembers whether the triggering failure was disk-full,
	// which maps to 507 Insufficient Storage instead of a generic 503.
	enospc  bool
	since   time.Time
	probing bool
	// delay is the current probe backoff (doubling, jittered); it also
	// feeds Retry-After so clients back off no faster than the probe
	// that would readmit them.
	delay        time.Duration
	probeInitial time.Duration
	probeMax     time.Duration

	failures   uint64
	recoveries uint64
	probes     uint64

	stop     chan struct{}
	stopOnce sync.Once
}

func newStoreHealth(s *server) *storeHealth {
	return &storeHealth{
		srv:          s,
		probeInitial: 250 * time.Millisecond,
		probeMax:     5 * time.Second,
		stop:         make(chan struct{}),
	}
}

// close stops the probe goroutine (if running) at shutdown.
func (h *storeHealth) close() {
	h.stopOnce.Do(func() { close(h.stop) })
}

// recordFailure marks the store degraded and starts the recovery probe
// if one is not already running. Safe to call from any handler or the
// commit observer; repeated failures only bump the counter.
func (h *storeHealth) recordFailure(err error) {
	if h == nil || err == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	h.enospc = errors.Is(err, syscall.ENOSPC)
	h.reason = err.Error()
	if !h.degraded {
		h.degraded = true
		h.since = time.Now()
	}
	if !h.probing && h.srv != nil && h.srv.persist != nil {
		h.probing = true
		h.delay = h.probeInitial
		go h.probeLoop()
	}
}

// noteCommit feeds checkpoint-commit outcomes into the tracker: a
// failure degrades, a success while degraded proves the disk writes
// again and recovers immediately (no need to wait for the next probe).
func (h *storeHealth) noteCommit(err error) {
	if h == nil {
		return
	}
	if err != nil {
		h.recordFailure(err)
		return
	}
	h.mu.Lock()
	if h.degraded {
		h.clearLocked()
	}
	h.mu.Unlock()
}

// clearLocked leaves degraded mode. Caller holds h.mu.
func (h *storeHealth) clearLocked() {
	h.degraded = false
	h.reason = ""
	h.enospc = false
	h.since = time.Time{}
	h.recoveries++
}

// probeLoop retries a durable-write probe with jittered exponential
// backoff until one succeeds (or the daemon shuts down). The probe is
// a real create-write-fsync-remove round-trip through the store's
// filesystem, not a guess — recovery means the next POST /feed's
// append will actually land.
func (h *storeHealth) probeLoop() {
	for {
		h.mu.Lock()
		if !h.degraded {
			h.probing = false
			h.mu.Unlock()
			return
		}
		delay := jitter(h.delay)
		if h.delay *= 2; h.delay > h.probeMax {
			h.delay = h.probeMax
		}
		h.mu.Unlock()

		select {
		case <-h.stop:
			h.mu.Lock()
			h.probing = false
			h.mu.Unlock()
			return
		case <-time.After(delay):
		}

		h.mu.Lock()
		h.probes++
		h.mu.Unlock()
		err := h.srv.persist.Probe()
		h.mu.Lock()
		if err == nil {
			if h.degraded {
				h.clearLocked()
			}
			h.probing = false
			h.mu.Unlock()
			return
		}
		h.reason = err.Error()
		h.enospc = errors.Is(err, syscall.ENOSPC)
		h.mu.Unlock()
	}
}

// status is a point-in-time view for /readyz, /stats and /metrics.
type healthStatus struct {
	Degraded     bool   `json:"degraded"`
	Reason       string `json:"reason,omitempty"`
	SinceUnix    int64  `json:"sinceUnix,omitempty"`
	Failures     uint64 `json:"persistFailures"`
	Recoveries   uint64 `json:"recoveries"`
	Probes       uint64 `json:"probes"`
	DiskFull     bool   `json:"diskFull,omitempty"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

func (h *storeHealth) status() healthStatus {
	if h == nil {
		return healthStatus{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := healthStatus{
		Degraded:   h.degraded,
		Reason:     h.reason,
		Failures:   h.failures,
		Recoveries: h.recoveries,
		Probes:     h.probes,
		DiskFull:   h.enospc,
	}
	if h.degraded {
		st.SinceUnix = h.since.Unix()
		st.RetryAfterMs = h.retryDelayLocked().Milliseconds()
	}
	return st
}

// isDegraded reports degraded mode and its cause without copying the
// whole status block.
func (h *storeHealth) isDegraded() (degraded bool, reason string, diskFull bool) {
	if h == nil {
		return false, "", false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded, h.reason, h.enospc
}

// retryDelayLocked is the delay a rejected writer should wait before
// retrying: the current probe backoff, floored at the initial probe
// interval. Caller holds h.mu.
func (h *storeHealth) retryDelayLocked() time.Duration {
	d := h.delay
	if d < h.probeInitial {
		d = h.probeInitial
	}
	if d > h.probeMax {
		d = h.probeMax
	}
	return d
}

// retryAfterSeconds shapes the retry delay for a Retry-After header:
// whole seconds, at least 1 (the header does not carry fractions), at
// most 30 so a recovered daemon is not ignored for long.
func (h *storeHealth) retryAfterSeconds() int {
	h.mu.Lock()
	d := h.retryDelayLocked()
	h.mu.Unlock()
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// jitter spreads a delay over [d/2, d) — same rationale as the store
// committer's backoff: correlated failures must not retry in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half)
}

// persistUnavailable rejects a write because the store cannot make it
// durable: 507 Insufficient Storage when the cause is a full disk, 503
// otherwise, both with Retry-After tied to the recovery probe cadence.
// The body names the cause so a client log is actionable.
func (s *server) persistUnavailable(w http.ResponseWriter, reason string, diskFull bool) {
	status := http.StatusServiceUnavailable
	if diskFull {
		status = http.StatusInsufficientStorage
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.health.retryAfterSeconds()))
	writeJSON(w, status, map[string]any{
		"error":    "store cannot accept writes: " + reason,
		"degraded": true,
	})
}

// observeCommit is the store commit observer the daemon actually
// installs: it fans each outcome to the metrics histograms and the
// health tracker, so one CommitSealed failure both counts on /metrics
// and flips the daemon read-only.
func (s *server) observeCommit(d time.Duration, err error) {
	s.obs.observeCheckpoint(d, err)
	s.health.noteCommit(err)
}
