package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/fsio"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// TestRaceFeedDuringENOSPCFlaps is the fault-injection race stress:
// readers hammer /cve, /query, /readyz, /stats and /metrics while the
// store's filesystem flaps between healthy and ENOSPC under concurrent
// POST /feed traffic. Every degraded transition, probe-driven
// recovery, health scrape and generation swap races every reader; the
// -race build must stay silent, reads must never fail, writes must
// answer only 200/503/507, and when the dust settles the daemon must
// be recovered, consistent, and cleanly reopenable.
func TestRaceFeedDuringENOSPCFlaps(t *testing.T) {
	dir := t.TempDir()
	cfg := nvdclean.SmallScale()
	cfg.NumCVEs = 120
	cfg.NumVendors = 30
	snap, truth, err := nvdclean.GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	inj := fsio.NewInjector(fsio.OS{})
	st, _, _, _, err := store.OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	srv.persist = st
	srv.compactEvery = 2
	srv.committer = store.NewCommitter(st)
	srv.committer.SetBackoff(time.Millisecond, 10*time.Millisecond)
	srv.persist.SetCommitObserver(srv.observeCommit)
	srv.health.probeInitial = time.Millisecond
	srv.health.probeMax = 5 * time.Millisecond
	defer srv.health.close()
	if err := srv.load(t.Context(), snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	cveID := srv.cur.Load().res.Cleaned.Entries[0].ID
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: the degraded flag must never leak into the read path.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/cve/" + cveID, "/query?limit=3", "/readyz", "/stats", "/metrics"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range paths {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						continue // listener teardown race at test end
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("GET %s = %d under fault flaps", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	// The fault flapper: ENOSPC storms alternating with calm, racing
	// the probe loop, the committer's retries, and every writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				inj.SetDecide(nil)
				return
			default:
			}
			if i%2 == 0 {
				inj.SetDecide(enospcDecider)
			} else {
				inj.SetDecide(nil)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Writers: posts race the flapper, so any of healthy (200),
	// degraded-up-front or append-failed (503/507) can happen — but
	// nothing else, and never a torn response.
	const posts = 12
	accepted := 0
	for i := 0; i < posts; i++ {
		mod := snap.Entries[i%5].Clone()
		mod.Descriptions[0].Value += fmt.Sprintf(" fault flap %d", i)
		body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(time.Duration(i+1) * time.Hour), Entries: []*nvdclean.Entry{mod}}
		var buf bytes.Buffer
		if err := nvdclean.WriteFeed(&buf, body); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case 200:
			accepted++
		case 503, 507:
			// rejected while degraded — the fault was live
		default:
			t.Fatalf("POST /feed %d = %d (want 200, 503 or 507)", i, resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Fault cleared: the probe must bring the daemon back on its own.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if degraded, _, _ := srv.health.isDegraded(); !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon stuck degraded after the flapping stopped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One more write must land end to end.
	mod := snap.Entries[7].Clone()
	mod.Descriptions[0].Value += " post-recovery"
	body := &nvdclean.Snapshot{CapturedAt: snap.CapturedAt.Add(100 * time.Hour), Entries: []*nvdclean.Entry{mod}}
	var buf bytes.Buffer
	if err := nvdclean.WriteFeed(&buf, body); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-recovery POST /feed = %d", resp.StatusCode)
	}
	accepted++
	srv.committer.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The surviving directory is consistent: it reopens cleanly and
	// replaying its recovered checkpoint plus deltas reconstructs
	// exactly the snapshot the daemon last acknowledged — every 200'd
	// write durable, no rejected write leaked in, disk never behind
	// memory.
	st2, cp2, deltas, _, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen after fault storm: %v", err)
	}
	defer st2.Close()
	if cp2 == nil {
		t.Fatal("no checkpoint survived the fault storm")
	}
	if accepted == 0 {
		t.Fatal("no write was ever accepted — the flapper starved the test")
	}
	recovered := cp2.Original
	for _, d := range deltas {
		recovered = recovered.ApplyDelta(d)
	}
	var recoveredBytes, servedBytes bytes.Buffer
	if err := nvdclean.WriteFeed(&recoveredBytes, recovered); err != nil {
		t.Fatal(err)
	}
	if err := nvdclean.WriteFeed(&servedBytes, srv.cur.Load().res.Original); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recoveredBytes.Bytes(), servedBytes.Bytes()) {
		t.Fatalf("recovered store diverges from the served snapshot (%d vs %d bytes)",
			recoveredBytes.Len(), servedBytes.Len())
	}
	if degraded, reason, _ := srv.health.isDegraded(); degraded {
		t.Fatalf("still degraded after recovery: %s", reason)
	}
}
