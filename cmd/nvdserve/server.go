package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nvdclean"
	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/predict"
	"nvdclean/internal/replica"
	"nvdclean/internal/respcache"
	"nvdclean/internal/store"
)

// serveState is one immutable generation of the served snapshot. The
// server swaps whole generations atomically, so readers never observe
// a half-cleaned view and POST /feed re-cleans cause zero downtime.
// Each generation carries its own sharded query indexes; swapping the
// state pointer swaps snapshot and indexes together.
type serveState struct {
	res      *nvdclean.Result
	byID     map[string]*nvdclean.Entry
	idx      *store.Index
	loadedAt time.Time
	cleanDur time.Duration
	// generation counts snapshot swaps since boot; incremental marks a
	// generation produced by CleanDelta rather than a full Clean.
	generation  int
	incremental bool
	warmStart   bool
	// restored marks the boot generation of a warm restart from the
	// persistent store (no full re-clean).
	restored bool
	// etag is the strong validator every read response of this
	// generation carries (see etagFor); entries and queries are the
	// generation's pre-encoded response caches, coherent by
	// construction because the generation they belong to is immutable.
	etag    string
	entries *respcache.EntryCache
	queries *respcache.QueryCache
}

// server is the nvdserve daemon: it owns the current snapshot
// generation and the cleaning options reloads run with.
type server struct {
	opts nvdclean.Options
	cur  atomic.Pointer[serveState]
	// feedMu serializes POST /feed pipelines; reads are lock-free.
	feedMu sync.Mutex
	// persist is the generation store; nil runs in-memory only.
	// compactEvery seals the active delta-log segment after that many
	// records and folds the sealed generation into a fresh checkpoint.
	persist      *store.Store
	compactEvery int
	// committer runs compaction checkpoints off the ingest path; when
	// nil (-compact-sync, or no store) the handler pays the checkpoint
	// write inline, the pre-commit-queue behavior.
	committer *store.Committer
	// bootEpoch makes ETags unique across restarts: the in-memory
	// generation counter restarts at 1 while the served content does
	// not, so a validator must carry something boot-unique or a client
	// could get a false 304 from a post-restart generation that reused
	// a pre-restart counter value.
	bootEpoch uint64
	// readCache gates the pre-encoded response caches (-read-cache);
	// off, every read renders per request — the pre-PR-5 behavior kept
	// as an escape hatch and as the benchmark baseline.
	readCache bool
	// queryCacheBytes caps each generation's /query response cache
	// (-query-cache-bytes; <= 0 disables it). The /cve cache needs no
	// cap: it is bounded by the generation's entry count.
	queryCacheBytes int
	// maxFeedBytes bounds a POST /feed body (-max-feed-bytes; <= 0
	// unbounded); metrics accumulates read-cache counters across
	// generations for /stats.
	maxFeedBytes int64
	metrics      *respcache.Metrics
	// obs is the Prometheus surface (/metrics plus the request
	// middleware); like metrics it lives outside serveState so no
	// generation swap can reset a time series.
	obs *serverMetrics
	// follower is non-nil when the daemon runs as a read replica
	// (-follow): it owns the replication cursor and the tail loop, and
	// its presence flips POST /feed to 403 and gates /readyz on lag.
	follower *follower
	// draining flips when shutdown begins: /readyz turns 503 (with
	// Retry-After) while in-flight and newly-arriving requests still
	// serve, giving a fronting load balancer a drain signal before the
	// listener closes.
	draining atomic.Bool
	// health tracks persistent-store write failures and runs the
	// degraded-mode recovery probe; reads never consult it.
	health *storeHealth
}

// Default resource bounds, overridable by flags.
const (
	defaultQueryCacheBytes = 4 << 20
	defaultMaxFeedBytes    = 64 << 20
)

func newServer(opts nvdclean.Options) *server {
	s := &server{
		opts:            opts,
		bootEpoch:       uint64(time.Now().UnixNano()),
		readCache:       true,
		queryCacheBytes: defaultQueryCacheBytes,
		maxFeedBytes:    defaultMaxFeedBytes,
		metrics:         &respcache.Metrics{},
	}
	// The registry's gauge closures read s.persist/s.committer/s.cur
	// dynamically, so building it before those are assigned is fine.
	// health must exist first: the degraded gauge closure samples it.
	s.health = newStoreHealth(s)
	s.obs = newServerMetrics(s)
	return s
}

// load runs the full pipeline on snap and installs the result as the
// current generation, committing a checkpoint when a store is
// attached. The commit happens before the install: a boot whose
// checkpoint fails must surface the error without leaving the server
// serving a generation the store never recorded.
func (s *server) load(ctx context.Context, snap *nvdclean.Snapshot) error {
	start := time.Now()
	res, err := nvdclean.Clean(ctx, snap, s.opts)
	if err != nil {
		return err
	}
	gen := 1
	if prev := s.cur.Load(); prev != nil {
		gen = prev.generation + 1
	}
	st := s.newState(res, nil, nil, nil, time.Since(start), gen, false, false)
	if s.persist != nil {
		cp := res.StoreCheckpoint()
		cp.Index = st.idx
		if err := s.persist.Commit(cp); err != nil {
			return fmt.Errorf("committing checkpoint: %w", err)
		}
		// The commit opened the store's first log segment, giving the
		// daemon its stream position; re-derive the validator from it
		// (st is not published yet, so this is race-free).
		st.etag = s.readValidator(gen)
	}
	s.cur.Store(st)
	return nil
}

// newState builds one serving generation: backported scores are
// materialized into the cleaned snapshot (so severity indexes and the
// persisted cleaned feed are entry-local), and the query indexes are
// either built in full or, given the previous generation, advanced
// incrementally from the cleaned-view delta — the Diff of the two
// cleaned snapshots, which also captures consolidation flips on
// entries the feed delta never named. Untouched index shards are
// shared between generations, and so are the previous generation's
// pre-encoded /cve responses: an entry neither delta names serves the
// exact bytes it served last generation, copied forward by reference.
// The invalidation set is the union of both deltas because the /cve
// view is wider than the cleaned entry — a feed update can flip a
// Result-level annotation (say, a consolidation mark) while leaving
// the cleaned entry bytes equal, so the feed delta's IDs are stale
// even when the cleaned diff never names them.
func (s *server) newState(res *nvdclean.Result, prev *serveState, feedDelta *nvdclean.Delta, restored *store.Index, dur time.Duration, gen int, incremental, warm bool) *serveState {
	nvdclean.ApplyBackport(res.Cleaned, res.Backport)
	byID := make(map[string]*nvdclean.Entry, res.Cleaned.Len())
	for _, e := range res.Cleaned.Entries {
		byID[e.ID] = e
	}
	st := &serveState{
		res: res, byID: byID,
		loadedAt: time.Now(), cleanDur: dur,
		generation: gen, incremental: incremental, warmStart: warm,
		entries: respcache.NewEntryCache(s.metrics),
		queries: respcache.NewQueryCache(s.queryCacheBytes, s.metrics),
	}
	switch {
	case restored != nil:
		// A checkpoint-restored index: shards stay raw segment bytes
		// until queries touch them, so the warm boot never pays a
		// BuildIndex over the feed.
		st.idx = restored
	case prev != nil && prev.idx != nil:
		cleanedDelta := nvdclean.Diff(prev.res.Cleaned, res.Cleaned)
		idx, err := prev.idx.Update(cleanedDelta, func(id string) *cve.Entry {
			return prev.byID[id]
		}, res.Cleaned, s.opts.Concurrency)
		if err != nil {
			// A corrupt lazily-loaded shard surfaces on the first
			// update that touches it; a full rebuild restores a clean
			// in-memory index.
			idx = store.BuildIndex(res.Cleaned, s.opts.Concurrency)
		}
		st.idx = idx
		stale := staleIDs(cleanedDelta, feedDelta)
		st.entries.Seed(prev.entries, func(id string) bool {
			_, alive := byID[id]
			return alive && !stale[id]
		})
	default:
		st.idx = store.BuildIndex(res.Cleaned, s.opts.Concurrency)
	}
	st.etag = s.readValidator(gen)
	return st
}

// readValidator derives the strong validator a generation's read
// responses carry. Store-backed daemons use the replication stream
// position of the last applied record — "w<segment seq>-<byte
// offset>" — which is identical on every replica serving the same
// content (followers append the primary's frame bytes verbatim, so
// positions align across the fleet and a CDN or client cache keeps
// hitting across a failover). Positions only advance, so no two
// distinct generations of one store ever alias; two replicas at
// different positions can alias the same content across an empty-seal
// boundary, which costs a cache miss, never a false 304. Store-less
// daemons have no stream position and keep the bootEpoch-qualified
// in-memory counter (the counter alone would repeat across restarts).
func (s *server) readValidator(gen int) string {
	if s.persist != nil && s.persist.Generation() > 0 {
		seq, off := s.persist.LastPosition()
		return fmt.Sprintf(`"w%d-%d"`, seq, off)
	}
	return fmt.Sprintf(`"%x-%d"`, s.bootEpoch, gen)
}

// staleIDs collects every CVE ID either delta names — the entries
// whose cached response bytes must not carry over a generation swap.
func staleIDs(deltas ...*nvdclean.Delta) map[string]bool {
	stale := make(map[string]bool)
	for _, d := range deltas {
		if d == nil {
			continue
		}
		for _, id := range d.ChangedIDs() {
			stale[id] = true
		}
		for _, id := range d.Removed {
			stale[id] = true
		}
	}
	return stale
}

// handler builds the HTTP mux. Every route passes through the metrics
// middleware under its pattern label (never the raw URL — /cve/{id} is
// one time series however many IDs exist); the catch-all keeps 404s
// visible in the same families instead of bypassing instrumentation.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	i := s.obs.instrument
	mux.HandleFunc("GET /livez", i("/livez", "GET", s.handleLivez))
	mux.HandleFunc("GET /readyz", i("/readyz", "GET", s.handleReadyz))
	// /healthz predates the liveness/readiness split and aliases
	// /readyz: every pre-split health checker was really asking "can
	// this process serve?", which is readiness.
	mux.HandleFunc("GET /healthz", i("/healthz", "GET", s.handleReadyz))
	mux.HandleFunc("GET /metrics", i("/metrics", "GET", s.handleMetrics))
	mux.HandleFunc("GET /cve/{id}", i("/cve/{id}", "GET", s.handleCVE))
	mux.HandleFunc("GET /query", i("/query", "GET", s.handleQuery))
	mux.HandleFunc("GET /stats", i("/stats", "GET", s.handleStats))
	mux.HandleFunc("GET "+replica.ManifestPath, i(replica.ManifestPath, "GET", s.handleReplicateManifest))
	mux.HandleFunc("GET "+replica.CheckpointPathPrefix+"{file}", i(replica.CheckpointPathPrefix+"{file}", "GET", s.handleReplicateCheckpoint))
	mux.HandleFunc("GET "+replica.LogPath, i(replica.LogPath, "GET", s.handleReplicateLog))
	mux.HandleFunc("POST /feed", i("/feed", "POST", s.handleFeed))
	mux.HandleFunc("/", i("other", "any", s.handleFallback))
	return mux
}

// handleFallback answers requests no route matched — instrumented
// under the "other" route label so scans and typos show up in the
// request families rather than vanishing.
func (s *server) handleFallback(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
}

// writeJSON renders non-cacheable responses — errors, feed summaries,
// stats — compactly. Read endpoints honor ?pretty=1; everything else
// is machine-consumed and no longer pays the ~30% indentation tax.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(encodeJSON(v, false))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) state(w http.ResponseWriter) *serveState {
	st := s.cur.Load()
	if st == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot loaded yet")
		return nil
	}
	return st
}

// ready reports whether the daemon should receive traffic; the reason
// names what blocks it ("loading" until the first generation installs,
// "draining" once shutdown begins, and on followers "replication
// lag"/"replication unsynced" when the replica has fallen more than
// -max-replica-lag behind its primary — a lagging replica should be
// rotated out of a fleet's read pool rather than serve stale answers).
func (s *server) ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.cur.Load() == nil {
		return false, "loading"
	}
	if f := s.follower; f != nil && f.maxLag > 0 {
		lag, ok := f.lag()
		if !ok {
			return false, "replication unsynced"
		}
		if lag > f.maxLag {
			return false, fmt.Sprintf("replication lag %s", lag.Round(time.Millisecond))
		}
	}
	return true, ""
}

// handleLivez is the liveness probe: 200 whenever the process can
// answer at all — even before the first generation installs and while
// draining. Restarting a pod for being not-yet-ready or mid-drain is
// exactly the failure mode the liveness/readiness split exists to
// avoid; only a hung process should fail this probe.
func (s *server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe (also serving the legacy
// /healthz path): 503 until the boot restore or first clean installs a
// generation, and 503 again — with Retry-After — once shutdown drain
// begins, so a fronting load balancer stops routing before the
// listener closes. The ready body keeps the historical healthz shape
// (status/entries/generation) with its generation validator.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.ready(); !ok {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": reason})
		return
	}
	// Degraded (read-only) is still ready — reads serve normally, so
	// the daemon must stay in a load balancer's read pool — but the
	// probe body says so, plainly and unconditionally: degraded status
	// must never hide behind a cached 304, so this branch skips the
	// ETag machinery entirely.
	if degraded, reason, _ := s.health.isDegraded(); degraded {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": reason,
		})
		return
	}
	st := s.cur.Load()
	pretty, err := parsePretty(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := st.etagFor(pretty)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		s.serveNotModified(w, etag, nil)
		return
	}
	serveRead(w, etag, encodeJSON(map[string]any{
		"status":     "ok",
		"entries":    st.res.Cleaned.Len(),
		"generation": st.generation,
	}, pretty))
}

// affectedView is one (vendor, product) pair of a CVE.
type affectedView struct {
	Vendor  string `json:"vendor"`
	Product string `json:"product"`
}

// cveView is the JSON shape of one served CVE: the cleaned entry plus
// every pipeline artifact attached to it.
type cveView struct {
	ID           string         `json:"id"`
	Published    time.Time      `json:"published"`
	Descriptions []string       `json:"descriptions,omitempty"`
	CWEs         []string       `json:"cwes,omitempty"`
	Affected     []affectedView `json:"affected,omitempty"`
	References   []string       `json:"references,omitempty"`

	V2Score    *float64 `json:"v2Score,omitempty"`
	V2Severity string   `json:"v2Severity,omitempty"`
	V3Score    *float64 `json:"v3Score,omitempty"`
	V3Severity string   `json:"v3Severity,omitempty"`
	// Backported marks entries whose v3 score is the §4.3 prediction.
	Backported  bool     `json:"backported,omitempty"`
	PV3Score    *float64 `json:"pv3Score,omitempty"`
	PV3Severity string   `json:"pv3Severity,omitempty"`

	EstimatedDisclosure *time.Time `json:"estimatedDisclosure,omitempty"`
	LagDays             *int       `json:"lagDays,omitempty"`

	VendorConsolidated  bool `json:"vendorConsolidated,omitempty"`
	ProductConsolidated bool `json:"productConsolidated,omitempty"`
}

func (st *serveState) view(e *nvdclean.Entry) cveView {
	v := cveView{ID: e.ID, Published: e.Published}
	for _, d := range e.Descriptions {
		v.Descriptions = append(v.Descriptions, d.Value)
	}
	for _, c := range e.CWEs {
		v.CWEs = append(v.CWEs, c.String())
	}
	for _, n := range e.CPEs {
		v.Affected = append(v.Affected, affectedView{Vendor: n.Vendor, Product: n.Product})
	}
	for _, r := range e.References {
		v.References = append(v.References, r.URL)
	}
	if e.V2 != nil {
		score := e.V2.BaseScore()
		v.V2Score = &score
		v.V2Severity = e.V2.Severity().String()
	}
	if e.V3 != nil {
		score := e.V3.BaseScore()
		v.V3Score = &score
		v.V3Severity = e.V3.Severity().String()
	}
	if e.V3 == nil && st.res.Backport != nil {
		if score, ok := st.res.Backport.Scores[e.ID]; ok {
			v.Backported = true
			v.PV3Score = &score
			v.PV3Severity = cvss.SeverityV3(score).String()
		}
	}
	if d, ok := st.res.EstimatedDisclosure[e.ID]; ok {
		v.EstimatedDisclosure = &d
		lag := st.res.LagDays[e.ID]
		v.LagDays = &lag
	}
	v.VendorConsolidated = st.res.VendorChanged[e.ID]
	v.ProductConsolidated = st.res.ProductChanged[e.ID]
	return v
}

// handleCVE serves one pre-encoded entry: a conditional request whose
// validator still matches costs a 304 and never touches the body; a
// fresh request is one cache lookup (encode-once per generation, with
// untouched entries' bytes carried over incremental swaps).
func (s *server) handleCVE(w http.ResponseWriter, r *http.Request) {
	st := s.state(w)
	if st == nil {
		return
	}
	id := r.PathValue("id")
	if _, ok := st.byID[id]; !ok {
		writeError(w, http.StatusNotFound, "no entry %s", id)
		return
	}
	pretty, err := parsePretty(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := st.etagFor(pretty)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		// Only the compact representation is cached, so only there is
		// the unsent body length known without an encode.
		var cached []byte
		if !pretty {
			cached = st.entries.Peek(id)
		}
		s.serveNotModified(w, etag, cached)
		return
	}
	serveRead(w, etag, s.cveBody(st, id, pretty))
}

// queryParams is one parsed /query request.
type queryParams struct {
	vendor, product string
	cweID           cwe.ID
	hasCWE          bool
	sev             cvss.Severity
	hasSev          bool
	year            int
	limit, offset   int
	pretty          bool
}

// maxQueryLimit caps the /query page size: an arbitrary client-chosen
// limit would size the response window (and the JSON the server
// renders) from attacker input.
const maxQueryLimit = 1000

// parseQueryParams validates a /query parameter set strictly: unknown
// parameters are an error (a typoed filter silently matching
// everything is worse than a 400), and every value must parse.
func parseQueryParams(values url.Values) (queryParams, error) {
	p := queryParams{limit: 50}
	for k := range values {
		switch k {
		case "vendor", "product", "cwe", "severity", "year", "limit", "offset", "pretty":
		default:
			return p, fmt.Errorf("unknown query parameter %q (want vendor, product, cwe, severity, year, limit, offset or pretty)", k)
		}
	}
	var err error
	if p.pretty, err = parsePretty(values); err != nil {
		return p, err
	}
	p.vendor = values.Get("vendor")
	p.product = values.Get("product")
	if c := values.Get("cwe"); c != "" {
		id, err := cwe.Parse(c)
		if err != nil {
			return p, fmt.Errorf("bad cwe %q", c)
		}
		p.cweID, p.hasCWE = id, true
	}
	if sev := values.Get("severity"); sev != "" {
		var ok bool
		if p.sev, ok = cvss.ParseSeverity(sev); !ok {
			return p, fmt.Errorf("bad severity %q", sev)
		}
		p.hasSev = true
	}
	if y := values.Get("year"); y != "" {
		var err error
		if p.year, err = strconv.Atoi(y); err != nil {
			return p, fmt.Errorf("bad year %q", y)
		}
	}
	if l := values.Get("limit"); l != "" {
		var err error
		if p.limit, err = strconv.Atoi(l); err != nil || p.limit < 1 {
			return p, fmt.Errorf("bad limit %q", l)
		}
		if p.limit > maxQueryLimit {
			return p, fmt.Errorf("limit %d exceeds the maximum %d", p.limit, maxQueryLimit)
		}
	}
	if o := values.Get("offset"); o != "" {
		var err error
		if p.offset, err = strconv.Atoi(o); err != nil || p.offset < 0 {
			return p, fmt.Errorf("bad offset %q", o)
		}
	}
	return p, nil
}

type hit struct {
	ID          string   `json:"id"`
	Severity    string   `json:"severity,omitempty"`
	Score       *float64 `json:"score,omitempty"`
	Backported  bool     `json:"backported,omitempty"`
	VendorMatch string   `json:"vendor,omitempty"`
}

type queryResponse struct {
	Total   int   `json:"total"`
	Limit   int   `json:"limit"`
	Offset  int   `json:"offset"`
	Results []hit `json:"results"`
}

// matchVendor returns the vendor of the first CPE name satisfying the
// vendor/product constraints, or "" when neither constraint is set —
// the "vendor" field of a query hit.
func matchVendor(e *nvdclean.Entry, vendor, product string) string {
	if vendor == "" && product == "" {
		return ""
	}
	for _, n := range e.CPEs {
		if vendor != "" && n.Vendor != vendor {
			continue
		}
		if product != "" && n.Product != product {
			continue
		}
		return n.Vendor
	}
	return ""
}

// hitOf renders one matched entry.
func (st *serveState) hitOf(e *nvdclean.Entry, p queryParams) hit {
	h := hit{ID: e.ID, VendorMatch: matchVendor(e, p.vendor, p.product)}
	if sev, ok := predict.PV3Severity(e, st.res.Backport); ok {
		h.Severity = sev.String()
	}
	if e.V3 != nil {
		score := e.V3.BaseScore()
		h.Score = &score
	} else if st.res.Backport != nil {
		if score, ok := st.res.Backport.Scores[e.ID]; ok {
			h.Score = &score
			h.Backported = true
		}
	}
	return h
}

// window applies offset/limit pagination to the matched entries and
// renders the response.
func (st *serveState) window(matched []*nvdclean.Entry, p queryParams) queryResponse {
	resp := queryResponse{Total: len(matched), Limit: p.limit, Offset: p.offset, Results: []hit{}}
	lo := p.offset
	if lo > len(matched) {
		lo = len(matched)
	}
	hi := lo + p.limit
	if hi > len(matched) {
		hi = len(matched)
	}
	for _, e := range matched[lo:hi] {
		resp.Results = append(resp.Results, st.hitOf(e, p))
	}
	return resp
}

// queryIndexed answers a /query via index intersection: each active
// filter contributes one ordinal posting list, the block-skipping
// ordered merge of which is the match set in snapshot order. Ordinals
// translate to entries only here, at the materialization edge.
func (st *serveState) queryIndexed(p queryParams) queryResponse {
	q := store.Query{
		Vendor: p.vendor, Product: p.product,
		CWE: p.cweID, HasCWE: p.hasCWE,
		Severity: p.sev, HasSeverity: p.hasSev,
		Year: p.year,
	}
	ords, filtered, err := st.idx.Match(q)
	if err != nil {
		// A corrupt lazily-loaded index shard cannot change response
		// bytes: the linear scan answers instead.
		return st.queryScan(p)
	}
	var matched []*nvdclean.Entry
	if !filtered {
		matched = st.res.Cleaned.Entries
	} else {
		entries := st.res.Cleaned.Entries
		matched = make([]*nvdclean.Entry, 0, len(ords))
		for _, o := range ords {
			matched = append(matched, entries[o])
		}
	}
	return st.window(matched, p)
}

// queryScan is the reference linear scan over the cleaned snapshot.
// The handler serves queryIndexed; this path exists so the invariant
// test can prove the indexes change latency, never bytes.
func (st *serveState) queryScan(p queryParams) queryResponse {
	var matched []*nvdclean.Entry
	for _, e := range st.res.Cleaned.Entries {
		if p.year != 0 && e.Year() != p.year {
			continue
		}
		if (p.vendor != "" || p.product != "") && matchVendor(e, p.vendor, p.product) == "" {
			continue
		}
		if p.hasCWE && !e.HasCWE(p.cweID) {
			continue
		}
		if p.hasSev {
			sev, ok := predict.PV3Severity(e, st.res.Backport)
			if !ok || sev != p.sev {
				continue
			}
		}
		matched = append(matched, e)
	}
	return st.window(matched, p)
}

// handleQuery filters the cleaned snapshot by consolidated vendor,
// product (both on the same CPE name when combined), CWE type, pv3
// severity band (real v3 when present, backported otherwise) and year,
// paginated by limit/offset. Matching is index-intersection over the
// generation's sharded inverted indexes; repeated queries serve the
// pre-encoded bytes from the generation's canonical-key cache, and
// conditional requests whose validator matches cost a bodiless 304.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	st := s.state(w)
	if st == nil {
		return
	}
	p, err := parseQueryParams(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := st.etagFor(p.pretty)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		var cached []byte
		if !p.pretty {
			cached = st.queries.Peek(p.cacheKey())
		}
		s.serveNotModified(w, etag, cached)
		return
	}
	serveRead(w, etag, s.queryBody(st, p))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.state(w)
	if st == nil {
		return
	}
	res := st.res
	stats := map[string]any{
		"entries":          res.Cleaned.Len(),
		"capturedAt":       res.Cleaned.CapturedAt,
		"distinctVendors":  res.Cleaned.DistinctVendors(),
		"distinctProducts": res.Cleaned.DistinctProducts(),
		"generation":       st.generation,
		"loadedAt":         st.loadedAt,
		"cleanMillis":      st.cleanDur.Milliseconds(),
		"incremental":      st.incremental,
		"engineWarmStart":  st.warmStart,
		"naming": map[string]any{
			"vendorsConsolidated":  res.VendorMap.Len(),
			"productsConsolidated": res.ProductMap.Len(),
			"cvesVendorChanged":    len(res.VendorChanged),
			"cvesProductChanged":   len(res.ProductChanged),
		},
		"cweCorrection": res.CWECorrection,
	}
	if st.restored {
		stats["warmRestart"] = true
	}
	if st.idx != nil {
		ixs := st.idx.Stats()
		stats["index"] = map[string]any{
			"shards":               ixs.Shards,
			"loadedShards":         ixs.LoadedShards,
			"lazyShards":           ixs.Shards - ixs.LoadedShards,
			"keys":                 ixs.Keys,
			"entries":              ixs.Entries,
			"postingBytesResident": ixs.ResidentBytes,
			"postingBytesOnDisk":   ixs.DiskBytes,
			"format":               ixs.Format,
		}
	}
	m := s.metrics
	stats["readCache"] = map[string]any{
		"enabled": s.readCache,
		"entry": map[string]any{
			"hits":          m.EntryHits.Load(),
			"misses":        m.EntryMisses.Load(),
			"cachedEntries": st.entries.Len(),
		},
		"query": map[string]any{
			"hits":          m.QueryHits.Load(),
			"misses":        m.QueryMisses.Load(),
			"evictions":     m.QueryEvictions.Load(),
			"bytesSaved":    m.QueryBytesSaved.Load(),
			"cachedQueries": st.queries.Len(),
			"cachedBytes":   st.queries.Bytes(),
			"capBytes":      s.queryCacheBytes,
		},
		"conditional": map[string]any{
			"notModified": m.NotModified.Load(),
			"bytesSaved":  m.NotModifiedBytes.Load(),
		},
	}
	if s.persist != nil {
		storeStats := map[string]any{
			"generation":     s.persist.Generation(),
			"logRecords":     s.persist.LogRecords(),
			"activeRecords":  s.persist.ActiveRecords(),
			"sealedSegments": s.persist.SealedSegments(),
		}
		if s.committer != nil {
			storeStats["commitQueue"] = s.committer.Stats()
		}
		storeStats["health"] = s.health.status()
		stats["store"] = storeStats
	}
	stats["replication"] = s.replicationStats()
	if res.CrawlStats.URLs > 0 {
		stats["crawl"] = map[string]any{
			"urls":      res.CrawlStats.URLs,
			"fetched":   res.CrawlStats.Fetched,
			"extracted": res.CrawlStats.Extracted,
			"skipped":   res.CrawlStats.Skipped,
			"coverage":  res.CrawlStats.Coverage(),
		}
	}
	if res.Engine != nil {
		best := res.Engine.Best()
		engine := map[string]any{"model": best.String()}
		if ev := res.Engine.Evaluation(best); ev != nil {
			engine["accuracy"] = ev.Accuracy
		}
		if res.Backport != nil {
			engine["backported"] = len(res.Backport.Scores)
		}
		stats["engine"] = engine
	}
	// /stats carries live counters (the cache numbers above change on
	// every read), so it gets no ETag — a validator that rotates per
	// request validates nothing. It still honors ?pretty.
	pretty, err := parsePretty(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(encodeJSON(stats, pretty))
}

// replicationStats builds the /stats replication block. Both roles
// carry one: a primary reports its stream position (what followers
// tail toward), a follower additionally reports its cursor, lag and
// last fetch error — the numbers an operator compares across the
// fleet to see who is behind.
func (s *server) replicationStats() map[string]any {
	if f := s.follower; f != nil {
		return f.statsBlock()
	}
	repl := map[string]any{"role": "primary"}
	if s.persist != nil {
		seq, off := s.persist.ActivePosition()
		repl["cursorSegment"] = seq
		repl["cursorOffset"] = off
		repl["watermark"] = s.persist.Watermark()
	}
	return repl
}

// handleFeed ingests a feed update: the posted body is an NVD JSON 1.1
// feed whose entries are upserted into the current snapshot (mode=
// replace instead treats the body as a complete capture, so entries it
// omits are removed). The delta re-cleans incrementally off the serving
// generation, which keeps serving until the swap.
func (s *server) handleFeed(w http.ResponseWriter, r *http.Request) {
	// A replica's view is defined by its primary's stream: a local
	// write would fork it (and be silently clobbered by the next
	// bootstrap). Point the writer at the primary instead.
	if f := s.follower; f != nil {
		w.Header().Set("Location", f.client.Base()+"/feed")
		writeError(w, http.StatusForbidden,
			"this daemon is a read replica; POST /feed to the primary at %s", f.client.Base())
		return
	}
	// Degraded mode: the store cannot make this write durable, so
	// reject it before parsing the body. Reads are unaffected — the
	// serving generation is immutable and in memory.
	if degraded, reason, diskFull := s.health.isDegraded(); degraded {
		s.persistUnavailable(w, reason, diskFull)
		return
	}
	// Bound the body before the JSON decoder streams it: without this
	// a client can feed an unbounded body into LoadFeed and size the
	// server's heap from the wire.
	body := io.Reader(r.Body)
	if s.maxFeedBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxFeedBytes)
	}
	snap, err := nvdclean.LoadFeed(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "feed body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing feed: %v", err)
		return
	}
	s.feedMu.Lock()
	defer s.feedMu.Unlock()
	st := s.state(w)
	if st == nil {
		return
	}
	prev := st.res

	var delta *nvdclean.Delta
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "upsert":
		delta = upsertDelta(prev.Original, snap)
	case "replace":
		delta = nvdclean.Diff(prev.Original, snap)
	default:
		writeError(w, http.StatusBadRequest, "bad mode %q (want upsert or replace)", mode)
		return
	}

	summary := map[string]any{
		"added":    len(delta.Added),
		"modified": len(delta.Modified),
		"removed":  len(delta.Removed),
	}
	if delta.Empty() {
		summary["changed"] = 0
		summary["generation"] = st.generation
		writeJSON(w, http.StatusOK, summary)
		return
	}

	start := time.Now()
	res, err := nvdclean.CleanDelta(r.Context(), prev, delta, s.opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "incremental clean: %v", err)
		return
	}
	dur := time.Since(start)
	warm := res.Engine != nil && res.Engine == prev.Engine

	// Make the delta durable before the new generation is built: a
	// crash after the append replays it on restart, a crash before it
	// loses only an update the client never saw acknowledged. The
	// append also advances the store's replication position, which the
	// new generation's ETag validator is derived from — so the order
	// here is load-bearing, not just a durability nicety.
	if s.persist != nil {
		if err := s.persist.AppendDelta(delta); err != nil {
			// Not a 500: the daemon is healthy, the disk is not. Enter
			// degraded mode (read-only serving plus a recovery probe)
			// and tell the client when to retry. The in-memory swap
			// below never happens, so memory cannot run ahead of disk.
			s.health.recordFailure(err)
			s.persistUnavailable(w, err.Error(), errors.Is(err, syscall.ENOSPC))
			return
		}
	}
	next := s.newState(res, st, delta, nil, dur, st.generation+1, true, warm)
	s.maybeCompact(res, next.idx, summary)
	s.cur.Store(next)
	// Observed after the swap so the histogram matches what a client
	// actually waited for a visible generation change.
	s.obs.ingestDeltaEntries.Observe(float64(delta.Size()))
	s.obs.ingestSwapSeconds.Observe(time.Since(start).Seconds())

	summary["changed"] = delta.Size()
	summary["entries"] = res.Cleaned.Len()
	summary["cleanMillis"] = dur.Milliseconds()
	summary["engineWarmStart"] = warm
	summary["generation"] = next.generation
	writeJSON(w, http.StatusOK, summary)
}

// maybeCompact folds the delta log down once enough records accumulate
// in the active segment: it seals the segment (O(1)) and hands a
// checkpoint of the sealed generation to the background committer, so
// the handler never pays the checkpoint write. The checkpoint document
// is assembled here — before the generation swap, while no reader can
// hold res — because StoreCheckpoint materializes backported scores
// into the cleaned snapshot; only the disk write leaves the handler.
// With -compact-sync (or no committer) the commit runs inline, the
// pre-commit-queue behavior.
func (s *server) maybeCompact(res *nvdclean.Result, idx *store.Index, summary map[string]any) {
	if s.persist == nil || s.compactEvery <= 0 || s.persist.ActiveRecords() < s.compactEvery {
		return
	}
	cp := res.StoreCheckpoint()
	cp.Index = idx
	seq, err := s.persist.Seal()
	if err != nil {
		summary["compactionError"] = err.Error()
		s.health.recordFailure(err)
		return
	}
	if s.committer != nil {
		s.committer.Enqueue(cp, seq)
		summary["compactionQueued"] = true
		return
	}
	// Inline commits report through the commit observer when one is
	// installed; recordFailure here keeps the degraded transition even
	// for a bare store with no observer wired.
	if err := s.persist.CommitSealed(cp, seq); err != nil {
		summary["compactionError"] = err.Error()
		s.health.recordFailure(err)
	} else {
		summary["compacted"] = true
	}
}

// upsertDelta builds the delta for a partial feed: posted entries are
// added or modified; nothing is removed. This matches the NVD's
// "modified" data feed semantics.
func upsertDelta(cur, posted *nvdclean.Snapshot) *nvdclean.Delta {
	d := &nvdclean.Delta{CapturedAt: posted.CapturedAt}
	if d.CapturedAt.IsZero() {
		d.CapturedAt = cur.CapturedAt
	}
	byID := make(map[string]*nvdclean.Entry, cur.Len())
	for _, e := range cur.Entries {
		byID[e.ID] = e
	}
	for _, e := range posted.Entries {
		prev := byID[e.ID]
		switch {
		case prev == nil:
			d.Added = append(d.Added, e)
		case !prev.Equal(e):
			d.Modified = append(d.Modified, e)
		}
	}
	d.Sort()
	return d
}

// parseModels turns a comma-separated list ("LR,CNN", "all") into
// model kinds.
func parseModels(s string) ([]predict.ModelKind, error) {
	if s == "" || strings.EqualFold(s, "all") {
		return nil, nil // nil trains the full zoo
	}
	var kinds []predict.ModelKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range predict.AllModels() {
			if strings.EqualFold(k.String(), name) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown model %q (want LR, SVR, CNN, DNN or all)", name)
		}
	}
	return kinds, nil
}
