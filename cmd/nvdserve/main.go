// Command nvdserve is a long-lived daemon serving a cleaned NVD
// snapshot over HTTP. It loads a feed (or generates a synthetic demo
// snapshot), runs the full cleaning pipeline once, and then serves:
//
//	GET  /healthz       liveness + current generation
//	GET  /cve/{id}      one cleaned entry with every pipeline artifact
//	GET  /query         filter by vendor/product/severity/year
//	GET  /stats         snapshot-wide cleaning statistics
//	POST /feed          ingest a feed update (NVD JSON 1.1 body)
//
// POST /feed is the incremental path: the posted entries diff against
// the current snapshot and only the delta re-cleans (CleanDelta), with
// the previous generation serving until the new one swaps in
// atomically — reloads cause zero downtime and, when the update leaves
// the training split untouched, reuse the trained model zoo.
//
// With -data-dir the daemon keeps a persistent generation store: every
// ingested delta is logged durably before it serves, and checkpoints
// fold the log back down (-compact-every). A restart with the same
// -data-dir restores the last committed generation from checkpoint
// plus log in ~O(delta) — no crawling, no training, no re-clean — and
// the store becomes authoritative over the -feed/-demo input.
//
// A store-backed daemon is also a replication primary: it serves its
// checkpoint and delta log over /replicate/manifest,
// /replicate/checkpoint/{file} and /replicate/log?from={seq}. A
// second daemon started with -follow <primary-url> runs as a read
// replica: it bootstraps from the shipped checkpoint, tails segment
// bytes into its own store, folds the deltas into its serving view
// through the same CleanDelta path, answers POST /feed with 403
// pointing at the primary, and gates /readyz on -max-replica-lag.
//
// Usage:
//
//	nvdserve -demo small                 # synthetic snapshot + simulated web
//	nvdserve -feed nvdcve-1.1-2017.json  # real data feed, no crawling
//	nvdserve -feed feed.json -crawl     # also crawl reference URLs
//	nvdserve -demo tiny -data-dir ./nvd  # durable generations, warm restarts
//	nvdserve -demo tiny -data-dir ./r1 -addr :8418 \
//	         -follow http://127.0.0.1:8417  # read replica of the first daemon
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nvdclean"
	"nvdclean/internal/cve"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// serveConfig collects every flag the daemon runs with.
type serveConfig struct {
	addr, feedPath, demoScale string
	crawl                     bool
	concurrency               int
	models                    string
	epochs                    int
	compact                   bool
	seed                      int64
	dataDir                   string
	compactEvery              int
	compactSync               bool
	maxFeedBytes              int64
	queryCacheBytes           int
	readCache                 bool
	indexLoad                 string
	pprofAddr                 string
	drainWait                 time.Duration
	follow                    string
	followPoll                time.Duration
	maxReplicaLag             time.Duration
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8417", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&cfg.feedPath, "feed", "", "NVD JSON 1.1 feed file to serve (empty: synthetic demo snapshot)")
	flag.StringVar(&cfg.demoScale, "demo", "tiny", "demo snapshot scale: tiny, small or paper")
	flag.BoolVar(&cfg.crawl, "crawl", false, "crawl reference URLs of real feeds over the live web")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "worker bound for every pipeline stage (0: GOMAXPROCS)")
	flag.StringVar(&cfg.models, "models", "LR", "severity models to train: comma-separated LR,SVR,CNN,DNN or all")
	flag.IntVar(&cfg.epochs, "epochs", 0, "training epochs for the deep models (0: paper's 100)")
	flag.BoolVar(&cfg.compact, "compact", true, "use compact deep models (paper-width models are expensive)")
	flag.Int64Var(&cfg.seed, "seed", 1, "dataset split and weight-init seed")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "persistent generation store directory (empty: in-memory only)")
	flag.IntVar(&cfg.compactEvery, "compact-every", 8, "fold the delta log into a fresh checkpoint after this many records (0: never)")
	flag.BoolVar(&cfg.compactSync, "compact-sync", false, "write compaction checkpoints inside POST /feed instead of a background committer")
	flag.Int64Var(&cfg.maxFeedBytes, "max-feed-bytes", defaultMaxFeedBytes, "largest POST /feed body accepted, in bytes (0: unbounded)")
	flag.IntVar(&cfg.queryCacheBytes, "query-cache-bytes", defaultQueryCacheBytes, "per-generation /query response cache cap, in bytes (0: disabled)")
	flag.BoolVar(&cfg.readCache, "read-cache", true, "serve reads from per-generation pre-encoded response caches")
	flag.StringVar(&cfg.indexLoad, "index-load", "lazy", "checkpoint index loading: lazy (shards parse on first query) or eager (parse all at boot)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate listener (empty: disabled; profiling never shares the serving port)")
	flag.DurationVar(&cfg.drainWait, "drain-wait", 500*time.Millisecond, "how long /readyz reports 503 before the listener closes on shutdown, so load balancers drain first (0: immediate)")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read replica of the primary nvdserve at this base URL (requires -data-dir; POST /feed turns 403)")
	flag.DurationVar(&cfg.followPoll, "follow-poll", 500*time.Millisecond, "replication poll interval when caught up with the primary")
	flag.DurationVar(&cfg.maxReplicaLag, "max-replica-lag", 15*time.Second, "replica /readyz reports 503 when replication lag exceeds this (0: never gate readiness on lag)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nvdserve: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg serveConfig) error {
	addr, feedPath, demoScale := cfg.addr, cfg.feedPath, cfg.demoScale
	crawl, dataDir := cfg.crawl, cfg.dataDir
	compactEvery, compactSync := cfg.compactEvery, cfg.compactSync
	kinds, err := parseModels(cfg.models)
	if err != nil {
		return err
	}
	if cfg.indexLoad != "lazy" && cfg.indexLoad != "eager" {
		return fmt.Errorf("bad -index-load %q (want lazy or eager)", cfg.indexLoad)
	}
	if cfg.follow != "" && dataDir == "" {
		return fmt.Errorf("-follow requires -data-dir (the replica tails the primary's log into its own store)")
	}
	opts := nvdclean.Options{
		Concurrency: cfg.concurrency,
		Models:      kinds,
		ModelConfig: predict.ModelConfig{Epochs: cfg.epochs, Compact: cfg.compact, Seed: cfg.seed},
		Seed:        cfg.seed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With a data directory, recover the generation store first: a
	// committed checkpoint plus its delta log restores the serving
	// generation in ~O(delta) — no crawling, no training, no re-clean
	// — and makes the store authoritative over the -feed/-demo input.
	var persist *store.Store
	var cp *store.Checkpoint
	var logged []*cve.Delta
	if dataDir != "" {
		var notes []string
		var err error
		persist, cp, logged, notes, err = store.Open(dataDir)
		if err != nil {
			return fmt.Errorf("opening store %s: %w", dataDir, err)
		}
		defer persist.Close()
		for _, n := range notes {
			fmt.Printf("nvdserve: store recovery: %s\n", n)
		}
	}

	var snap *nvdclean.Snapshot
	if feedPath != "" {
		if crawl {
			opts.Transport = http.DefaultTransport
		}
		// On a warm restart the feed file is never cleaned (the store
		// is authoritative), so don't pay to load it. A follower never
		// cleans a local feed either — its view comes from the primary.
		if cp == nil && cfg.follow == "" {
			f, err := os.Open(feedPath)
			if err != nil {
				return err
			}
			snap, err = nvdclean.LoadFeed(f)
			f.Close()
			if err != nil {
				return err
			}
		}
	} else {
		// Demo mode always regenerates: the simulated-web transport
		// derives from the (deterministic) snapshot and is needed for
		// future POST /feed deltas even when the store restores.
		var cfg nvdclean.GenConfig
		switch demoScale {
		case "tiny":
			cfg = nvdclean.SmallScale()
			cfg.NumCVEs = 400
			cfg.NumVendors = 120
		case "small":
			cfg = nvdclean.SmallScale()
		case "paper":
			cfg = nvdclean.PaperScale()
		default:
			return fmt.Errorf("unknown demo scale %q (want tiny, small or paper)", demoScale)
		}
		var truth *nvdclean.Truth
		snap, truth, err = nvdclean.GenerateSnapshot(cfg)
		if err != nil {
			return err
		}
		opts.Transport = nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport()
		fmt.Printf("nvdserve: generated %s demo snapshot (%d CVEs)\n", demoScale, snap.Len())
	}

	srv := newServer(opts)
	srv.persist = persist
	srv.compactEvery = compactEvery
	srv.maxFeedBytes = cfg.maxFeedBytes
	srv.queryCacheBytes = cfg.queryCacheBytes
	srv.readCache = cfg.readCache
	if persist != nil {
		// Every checkpoint commit — boot, -compact-sync inline, or
		// background — reports its wall time into the scrape surface
		// and its outcome into the degraded-mode health tracker.
		persist.SetCommitObserver(srv.observeCommit)
	}
	// Stop the degraded-mode recovery probe (if one is running) before
	// the store it probes closes.
	defer srv.health.close()
	if persist != nil && !compactSync {
		// Background compaction: POST /feed seals the delta log and
		// enqueues the checkpoint; the committer pays the write. Closed
		// (draining any in-flight commit) before the store closes.
		srv.committer = store.NewCommitter(persist)
		defer srv.committer.Close()
	}

	if cp != nil && cfg.follow != "" {
		fmt.Printf("nvdserve: replica warm start: serving local generation %d while resuming the tail from %s\n",
			cp.Generation, cfg.follow)
	}
	if cp != nil {
		start := time.Now()
		res, err := nvdclean.RestoreResult(cp, opts)
		if err != nil {
			return fmt.Errorf("restoring checkpoint: %w", err)
		}
		// Fold the logged deltas into one and re-clean just that.
		merged := res.Original
		for _, d := range logged {
			merged = merged.ApplyDelta(d)
		}
		var st *serveState
		if total := nvdclean.Diff(res.Original, merged); !total.Empty() {
			// The checkpoint's own view — carrying its restored lazy
			// index — becomes the base generation; the logged deltas
			// then advance it incrementally, exactly as POST /feed
			// would, re-ordinating only the shards they touch.
			base := srv.newState(res, nil, nil, cp.Index, 0, 0, false, true)
			if res, err = nvdclean.CleanDelta(ctx, res, total, opts); err != nil {
				return fmt.Errorf("replaying delta log: %w", err)
			}
			st = srv.newState(res, base, total, nil, time.Since(start), 1, len(logged) > 0, true)
		} else {
			st = srv.newState(res, nil, nil, cp.Index, time.Since(start), 1, len(logged) > 0, true)
		}
		st.restored = true
		if cfg.indexLoad == "eager" {
			if err := st.idx.LoadAll(opts.Concurrency); err != nil {
				fmt.Printf("nvdserve: eager index load failed (%v); rebuilding\n", err)
				st.idx = store.BuildIndex(res.Cleaned, opts.Concurrency)
			}
		}
		srv.cur.Store(st)
		ixs := st.idx.Stats()
		indexMode := fmt.Sprintf("restored (%d/%d shards lazy)", ixs.Shards-ixs.LoadedShards, ixs.Shards)
		if cp.Index == nil {
			indexMode = "rebuilt (checkpoint carried no index segments)"
		}
		fmt.Printf("nvdserve: warm start: restored store generation %d (%d entries, %d logged deltas) in %dms — no re-clean; index %s\n",
			srv.persist.Generation(), res.Cleaned.Len(), len(logged), st.cleanDur.Milliseconds(), indexMode)
		if feedPath != "" || snap != nil {
			fmt.Println("nvdserve: store is authoritative; POST /feed to ingest feed updates")
		}
	} else if cfg.follow == "" {
		fmt.Printf("nvdserve: cleaning %d entries...\n", snap.Len())
		if err := srv.load(ctx, snap); err != nil {
			return err
		}
		st := srv.cur.Load()
		fmt.Printf("nvdserve: pipeline done in %dms\n", st.cleanDur.Milliseconds())
		if srv.persist != nil {
			fmt.Printf("nvdserve: committed checkpoint generation %d to %s\n", srv.persist.Generation(), dataDir)
		}
	} else {
		// A cold follower never runs a local clean: its first
		// generation ships from the primary. The bootstrap runs in the
		// background so the listener (and /livez) come up immediately;
		// /readyz stays 503 until the first generation installs.
		fmt.Printf("nvdserve: replica: bootstrapping from %s in the background\n", cfg.follow)
	}

	// The tail loop starts before the listener and is joined on the way
	// out — after the HTTP server stops, before the committer and store
	// close underneath it.
	if cfg.follow != "" {
		fol := newFollower(srv, cfg.follow, cfg.followPoll, cfg.maxReplicaLag)
		srv.follower = fol
		fctx, fcancel := context.WithCancel(ctx)
		go fol.run(fctx)
		defer func() {
			fcancel()
			<-fol.done
		}()
	}

	// Profiling rides a separate listener so a heap dump or 30-second
	// trace can never contend with — or be exposed on — the serving
	// port; empty -pprof-addr compiles the handlers in but binds
	// nothing.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		ps := &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = ps.Serve(pln) }()
		defer ps.Close()
		fmt.Printf("nvdserve: pprof listening on http://%s/debug/pprof/\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The exact address is printed after binding so -addr :0 callers
	// (the smoke test, scripts) can discover the ephemeral port.
	fmt.Printf("nvdserve: listening on http://%s\n", ln.Addr())

	// Slowloris hardening: headers must arrive promptly, the whole
	// request — POST /feed body included, which sets the generous
	// bound — within ReadTimeout, and idle keep-alive connections are
	// reaped instead of pinned open. Responses are in-memory bytes, so
	// no WriteTimeout is needed beyond the kernel's send buffers.
	hs := &http.Server{
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		fmt.Println("nvdserve: shutting down")
		// Flip readiness before touching the listener: /readyz answers
		// 503 (with Retry-After) while every other route still serves,
		// so a fronting load balancer sees the drain signal and stops
		// routing here. Only after the drain window does Shutdown close
		// the listener and wait out in-flight requests.
		srv.draining.Store(true)
		if cfg.drainWait > 0 {
			select {
			case <-time.After(cfg.drainWait):
			case err := <-errCh:
				return err
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}
