package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"nvdclean"
	"nvdclean/internal/obs"
)

// ---- a line-by-line exposition-format parser for the tests ----

type promSample struct {
	name   string            // full sample name (family, or family_bucket/_sum/_count)
	labels map[string]string // includes le for buckets
	value  float64
}

type promFamily struct {
	help, typ string
	samples   []promSample
}

// parsePromText parses Prometheus text exposition format v0.0.4
// strictly enough to enforce the format invariants the satellite test
// pins: it fails the test on any line it cannot account for, on
// samples whose family was not declared first, and on duplicate
// HELP/TYPE declarations.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var cur string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if f, dup := fams[name]; dup && f.help != "" {
				t.Fatalf("line %d: duplicate HELP for family %s", ln+1, name)
			}
			if fams[name] == nil {
				fams[name] = &promFamily{}
			}
			fams[name].help = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if f := fams[name]; f == nil || f.help == "" {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if fams[name].typ != "" {
				t.Fatalf("line %d: duplicate TYPE for family %s", ln+1, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			fams[name].typ = typ
			cur = name
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			s := parsePromSample(t, ln+1, line)
			fam := sampleFamily(s.name, fams)
			if fam == "" {
				t.Fatalf("line %d: sample %s has no declared family", ln+1, s.name)
			}
			if fam != cur {
				t.Fatalf("line %d: sample %s appears outside its family block (%s active)", ln+1, s.name, cur)
			}
			fams[fam].samples = append(fams[fam].samples, s)
		}
	}
	for name, f := range fams {
		if f.typ == "" || f.help == "" {
			t.Fatalf("family %s missing HELP or TYPE", name)
		}
	}
	return fams
}

// sampleFamily maps a sample name to its declared family, accounting
// for histogram suffixes.
func sampleFamily(name string, fams map[string]*promFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	return ""
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced braces: %q", ln, line)
		}
		s.name = line[:i]
		for _, pair := range splitLabels(line[i+1 : j]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			s.labels[k] = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(v[1 : len(v)-1])
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", ln, line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	s.name = strings.TrimSpace(s.name)
	s.value = v
	return s
}

// splitLabels splits a label block on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// labelSig returns a stable signature of a sample's labels minus le —
// the grouping key for one histogram series.
func labelSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q;", k, labels[k])
	}
	return sb.String()
}

// checkHistograms asserts, for every histogram family, per series:
// buckets cumulative and non-decreasing in le order, a +Inf bucket
// equal to _count, and _sum present.
func checkHistograms(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		type series struct {
			buckets map[float64]float64 // le -> cumulative count
			inf     *float64
			sum     *float64
			count   *float64
		}
		bySig := map[string]*series{}
		get := func(sig string) *series {
			if bySig[sig] == nil {
				bySig[sig] = &series{buckets: map[float64]float64{}}
			}
			return bySig[sig]
		}
		for _, s := range f.samples {
			sig := labelSig(s.labels)
			switch {
			case s.name == name+"_bucket":
				le := s.labels["le"]
				if le == "" {
					t.Fatalf("%s: bucket without le: %v", name, s.labels)
				}
				if le == "+Inf" {
					v := s.value
					get(sig).inf = &v
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: bad le %q", name, le)
				}
				get(sig).buckets[bound] = s.value
			case s.name == name+"_sum":
				v := s.value
				get(sig).sum = &v
			case s.name == name+"_count":
				v := s.value
				get(sig).count = &v
			default:
				t.Fatalf("%s: stray sample %s in histogram family", name, s.name)
			}
		}
		for sig, se := range bySig {
			if se.inf == nil || se.sum == nil || se.count == nil {
				t.Fatalf("%s{%s}: missing +Inf bucket, _sum or _count", name, sig)
			}
			bounds := make([]float64, 0, len(se.buckets))
			for b := range se.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			prev := 0.0
			for _, b := range bounds {
				if se.buckets[b] < prev {
					t.Errorf("%s{%s}: bucket le=%g not cumulative (%g < %g)", name, sig, b, se.buckets[b], prev)
				}
				prev = se.buckets[b]
			}
			if *se.inf < prev {
				t.Errorf("%s{%s}: +Inf bucket %g below le=%g bucket %g", name, sig, *se.inf, bounds[len(bounds)-1], prev)
			}
			if *se.inf != *se.count {
				t.Errorf("%s{%s}: +Inf bucket %g != _count %g", name, sig, *se.inf, *se.count)
			}
		}
	}
}

// scrape fetches /metrics and parses it with the format checks on.
func scrape(t *testing.T, ts *httptest.Server) map[string]*promFamily {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, string(body))
	checkHistograms(t, fams)
	return fams
}

// sumFamily adds up every sample of a counter/gauge family (across all
// label children).
func sumFamily(f *promFamily) float64 {
	var total float64
	for _, s := range f.samples {
		total += s.value
	}
	return total
}

// histCount returns the _count total of a histogram family across
// series.
func histCount(name string, f *promFamily) float64 {
	var total float64
	for _, s := range f.samples {
		if s.name == name+"_count" {
			total += s.value
		}
	}
	return total
}

// TestMetricsScrapeFormat is the scrape-format satellite: after real
// traffic on every route class, the full /metrics output must parse
// line-by-line — HELP/TYPE exactly once per family and before its
// samples, no duplicate families, histogram buckets cumulative with
// +Inf == _count and _sum present — and the key families of every
// layer must be present even in a store-less in-memory configuration.
func TestMetricsScrapeFormat(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Touch every route class so the labeled children exist: reads,
	// query, stats, probes, a 404 and a 400.
	id := snap.Entries[0].ID
	for _, path := range []string{
		"/cve/" + id, "/cve/" + id, "/cve/CVE-2098-9999",
		"/query?limit=3", "/query?bogus=1",
		"/stats", "/healthz", "/livez", "/readyz", "/no-such-route",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	fams := scrape(t, ts)
	for _, want := range []string{
		"nvdserve_http_requests_total",
		"nvdserve_http_requests_in_flight",
		"nvdserve_http_request_duration_seconds",
		"nvdserve_http_request_bytes_total",
		"nvdserve_http_response_bytes_total",
		"nvdserve_generation_sequence",
		"nvdserve_generation_age_seconds",
		"nvdserve_boot_epoch_seconds",
		"nvdserve_ready",
		"nvdserve_index_shards",
		"nvdserve_index_shards_loaded",
		"nvdserve_index_posting_bytes_resident",
		"nvdserve_store_generation",
		"nvdserve_store_commit_queue_depth",
		"nvdserve_store_checkpoint_seconds",
		"nvdserve_respcache_entry_hits_total",
		"nvdserve_respcache_query_hits_total",
		"nvdserve_respcache_not_modified_total",
		"nvdserve_ingest_delta_entries",
		"nvdserve_ingest_swap_seconds",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from scrape", want)
		}
	}

	// The request counter carries the route pattern, not raw URLs: two
	// /cve reads + the 404d one share the /cve/{id} children, and no
	// label value contains a concrete CVE ID.
	reqs := fams["nvdserve_http_requests_total"]
	var cve200, cve404, q400, fallback404 float64
	for _, s := range reqs.samples {
		if strings.Contains(s.labels["route"], "CVE-") {
			t.Errorf("raw URL leaked into route label: %v", s.labels)
		}
		switch {
		case s.labels["route"] == "/cve/{id}" && s.labels["code"] == "200":
			cve200 = s.value
		case s.labels["route"] == "/cve/{id}" && s.labels["code"] == "404":
			cve404 = s.value
		case s.labels["route"] == "/query" && s.labels["code"] == "400":
			q400 = s.value
		case s.labels["route"] == "other" && s.labels["code"] == "404":
			fallback404 = s.value
		}
	}
	if cve200 < 2 || cve404 != 1 || q400 != 1 || fallback404 != 1 {
		t.Errorf("request children: cve200=%g cve404=%g q400=%g fallback404=%g", cve200, cve404, q400, fallback404)
	}
	// Latency histograms observed exactly as many requests as counted.
	if got := histCount("nvdserve_http_request_duration_seconds", fams["nvdserve_http_request_duration_seconds"]); got != sumFamily(reqs) {
		t.Errorf("duration count %g != requests total %g", got, sumFamily(reqs))
	}
	// Response bytes flowed for the served routes.
	var respBytes float64
	for _, s := range fams["nvdserve_http_response_bytes_total"].samples {
		respBytes += s.value
	}
	if respBytes <= 0 {
		t.Error("no response bytes accounted")
	}
	// Ready and generation gauges reflect the loaded server.
	if v := fams["nvdserve_ready"].samples[0].value; v != 1 {
		t.Errorf("nvdserve_ready = %g, want 1", v)
	}
	if v := fams["nvdserve_generation_entries"].samples[0].value; int(v) != snap.Len() {
		t.Errorf("generation entries gauge = %g, want %d", v, snap.Len())
	}
}

// TestMetricsSurviveSwap is the swap-safety acceptance: counters and
// histograms accumulated before a POST /feed generation swap must
// carry through it — the registry lives beside the swapped pointer,
// so a swap changes gauge readings, never resets a series.
func TestMetricsSurviveSwap(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Warm the read path so entry-cache hits and request counters have
	// non-zero values to survive.
	id := snap.Entries[0].ID
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/cve/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	before := scrape(t, ts)
	reqBefore := sumFamily(before["nvdserve_http_requests_total"])
	hitsBefore := sumFamily(before["nvdserve_respcache_entry_hits_total"])
	durBefore := histCount("nvdserve_http_request_duration_seconds", before["nvdserve_http_request_duration_seconds"])
	if reqBefore == 0 || hitsBefore == 0 {
		t.Fatalf("no traffic recorded before swap: requests=%g hits=%g", reqBefore, hitsBefore)
	}
	if v := before["nvdserve_generation_sequence"].samples[0].value; v != 1 {
		t.Fatalf("generation before swap = %g", v)
	}

	postFeed(t, ts, feedUpdate(t, snap))

	after := scrape(t, ts)
	if v := after["nvdserve_generation_sequence"].samples[0].value; v != 2 {
		t.Errorf("generation after swap = %g, want 2", v)
	}
	if got := sumFamily(after["nvdserve_http_requests_total"]); got <= reqBefore {
		t.Errorf("request counter reset across swap: %g -> %g", reqBefore, got)
	}
	if got := sumFamily(after["nvdserve_respcache_entry_hits_total"]); got < hitsBefore {
		t.Errorf("entry-hit counter reset across swap: %g -> %g", hitsBefore, got)
	}
	if got := histCount("nvdserve_http_request_duration_seconds", after["nvdserve_http_request_duration_seconds"]); got <= durBefore {
		t.Errorf("duration histogram reset across swap: %g -> %g", durBefore, got)
	}
	// The ingest histograms observed exactly one swap.
	if got := histCount("nvdserve_ingest_swap_seconds", after["nvdserve_ingest_swap_seconds"]); got != 1 {
		t.Errorf("ingest swap histogram count = %g, want 1", got)
	}
	if got := histCount("nvdserve_ingest_delta_entries", after["nvdserve_ingest_delta_entries"]); got != 1 {
		t.Errorf("ingest delta histogram count = %g, want 1", got)
	}
}

// TestProbes pins the liveness/readiness split: /livez is process-up
// (200 before the first generation and while draining), /readyz gates
// on a serving generation and flips 503 with Retry-After during drain
// — while ordinary routes keep serving — and /healthz aliases /readyz.
func TestProbes(t *testing.T) {
	// A server with no generation yet: live, not ready.
	empty := newServer(nvdclean.Options{})
	ets := httptest.NewServer(empty.handler())
	defer ets.Close()
	var probe map[string]any
	if code := getJSON(t, ets, "/livez", &probe); code != http.StatusOK {
		t.Errorf("/livez before load = %d, want 200", code)
	}
	resp, err := ets.Client().Get(ets.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before load = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 carries no Retry-After")
	}

	// A loaded server: ready on /readyz and on the /healthz alias.
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	for _, path := range []string{"/readyz", "/healthz"} {
		var ready map[string]any
		if code := getJSON(t, ts, path, &ready); code != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, code)
		}
		if ready["status"] != "ok" || int(ready["entries"].(float64)) != snap.Len() {
			t.Errorf("%s = %v", path, ready)
		}
	}

	// Draining: readiness flips 503 with Retry-After, liveness and the
	// read path keep answering (the drain window exists so traffic
	// already routed here still completes).
	srv.draining.Store(true)
	for _, path := range []string{"/readyz", "/healthz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "draining" {
			t.Errorf("%s while draining = %d %v, want 503 draining", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s drain 503 carries no Retry-After", path)
		}
	}
	if code := getJSON(t, ts, "/livez", &probe); code != http.StatusOK {
		t.Errorf("/livez while draining = %d, want 200", code)
	}
	var view cveView
	if code := getJSON(t, ts, "/cve/"+snap.Entries[0].ID, &view); code != http.StatusOK {
		t.Errorf("read path refused during drain: %d", code)
	}
	fams := scrape(t, ts)
	if v := fams["nvdserve_ready"].samples[0].value; v != 0 {
		t.Errorf("nvdserve_ready while draining = %g, want 0", v)
	}
	srv.draining.Store(false)
}

// TestPprofMux sanity-checks the optional profiling mux wiring without
// binding a real listener.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
