package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
	"nvdclean/internal/replica"
	"nvdclean/internal/store"
)

// TestFollowerSurvivesPrimaryOutage subjects the replication path to
// injected network faults: the follower bootstraps through connection
// resets, keeps serving its last generation byte-identically through a
// hard primary outage (5xx storm, then torn bodies), stays in the read
// pool, and reconverges on its own once the primary returns.
func TestFollowerSurvivesPrimaryOutage(t *testing.T) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Concurrency: 8,
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	ctx := context.Background()

	pStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pStr.Close()
	primary := newServer(opts)
	primary.persist = pStr
	primary.compactEvery = 1000
	if err := primary.load(ctx, snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary.handler())
	defer ts.Close()
	postFeed(t, ts, feedUpdate(t, snap))

	fStr, _, _, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fStr.Close()
	fsrv := newServer(opts)
	fsrv.persist = fStr
	fol := newFollower(fsrv, ts.URL, 10*time.Millisecond, 15*time.Second)
	fsrv.follower = fol
	ft := &replica.FaultTransport{}
	fol.client.SetTransport(ft)
	fol.client.SetRetry(3, time.Millisecond)
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	// Bootstrap through transient connection resets: the client's
	// internal retries absorb them without surfacing an error.
	ft.SetDecide(replica.FaultFirst(2, replica.Fault{Err: syscall.ECONNRESET}))
	if err := fol.bootstrap(ctx); err != nil {
		t.Fatalf("bootstrap through resets: %v", err)
	}
	catchUp(t, ctx, fol)
	if ft.Injected() < 2 {
		t.Fatalf("transport injected %d faults, want >= 2", ft.Injected())
	}
	assertConverged(t, "bootstrap through resets", primary, fsrv)

	cveID := fsrv.cur.Load().res.Cleaned.Entries[0].ID
	stBase, cveBase := getBody(t, fts, "/cve/"+cveID)
	if stBase != 200 {
		t.Fatalf("baseline follower GET /cve = %d", stBase)
	}

	// The primary "goes down": every replication request 5xxes. It
	// still takes writes from its own clients, so the follower is now
	// genuinely stale.
	ft.SetDecide(replica.FaultAll(replica.Fault{Status: http.StatusServiceUnavailable}))
	postFeed(t, ts, namedUpdate(t, snap, "CVE-2018-5555"))
	errsBefore := fol.fetchErrors.Load()
	if _, err := fol.syncOnce(ctx); err == nil {
		t.Fatal("poll through a hard outage did not error")
	}
	if fol.fetchErrors.Load() == errsBefore {
		t.Fatal("failed poll did not count as a fetch error")
	}

	// Stale-with-lag serving: reads answer the last good generation
	// byte-identically, readiness holds (lag is within -max-replica-lag),
	// and /stats names the fetch error.
	if st, b := getBody(t, fts, "/cve/"+cveID); st != 200 || !bytes.Equal(b, cveBase) {
		t.Fatalf("follower read changed during outage: status %d, identical %v", st, bytes.Equal(b, cveBase))
	}
	var probe map[string]any
	if code := getJSON(t, fts, "/readyz", &probe); code != http.StatusOK {
		t.Fatalf("follower /readyz during outage = %d, want 200", code)
	}
	var stats map[string]any
	if code := getJSON(t, fts, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("follower /stats = %d", code)
	}
	repl := stats["replication"].(map[string]any)
	if repl["lastFetchError"] == nil || repl["lastFetchError"] == "" {
		t.Fatalf("outage not visible in /stats replication block: %v", repl)
	}

	// Torn transfers: responses cut off mid-body must surface as fetch
	// errors, never as partially applied stream bytes.
	ft.SetDecide(replica.FaultAll(replica.Fault{TruncateBody: 8}))
	posBefore, offBefore := fol.cursorSeq.Load(), fol.cursorOff.Load()
	if _, err := fol.syncOnce(ctx); err == nil {
		t.Fatal("truncated log body did not error")
	}
	if fol.cursorSeq.Load() != posBefore || fol.cursorOff.Load() != offBefore {
		t.Fatal("cursor moved on a truncated fetch")
	}

	// The primary returns; the follower reconverges with no operator
	// intervention and the fleet's stream positions realign.
	ft.SetDecide(nil)
	catchUp(t, ctx, fol)
	assertConverged(t, "post-outage reconvergence", primary, fsrv)
	pSeq, pOff := pStr.LastPosition()
	fSeq, fOff := fStr.LastPosition()
	if pSeq != fSeq || pOff != fOff {
		t.Fatalf("positions diverge after reconvergence: primary (%d,%d) follower (%d,%d)", pSeq, pOff, fSeq, fOff)
	}
}
