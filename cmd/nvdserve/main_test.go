package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
	"nvdclean/internal/store"
)

// demoServer builds an in-process server over a tiny synthetic
// snapshot with fast training settings.
func demoServer(t *testing.T) (*server, *nvdclean.Snapshot) {
	t.Helper()
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Concurrency: 8,
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	srv := newServer(opts)
	if err := srv.load(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	return srv, snap
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}

func TestServerEndpoints(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var health map[string]any
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if health["status"] != "ok" || int(health["entries"].(float64)) != snap.Len() {
		t.Fatalf("healthz = %v", health)
	}

	id := snap.Entries[0].ID
	var view cveView
	if code := getJSON(t, ts, "/cve/"+id, &view); code != http.StatusOK {
		t.Fatalf("/cve/%s = %d", id, code)
	}
	if view.ID != id || len(view.Affected) == 0 {
		t.Fatalf("cve view = %+v", view)
	}
	if view.EstimatedDisclosure == nil {
		t.Error("crawled demo server should estimate disclosure dates")
	}

	var missing map[string]any
	if code := getJSON(t, ts, "/cve/CVE-2098-9999", &missing); code != http.StatusNotFound {
		t.Errorf("missing CVE = %d, want 404", code)
	}

	// Query by the consolidated vendor of the first entry's first CPE.
	st := srv.cur.Load()
	vendor := st.byID[id].CPEs[0].Vendor
	var q struct {
		Total   int `json:"total"`
		Results []struct {
			ID       string `json:"id"`
			Severity string `json:"severity"`
		} `json:"results"`
	}
	if code := getJSON(t, ts, "/query?vendor="+vendor, &q); code != http.StatusOK {
		t.Fatalf("/query = %d", code)
	}
	if q.Total == 0 || len(q.Results) == 0 {
		t.Fatalf("vendor query returned nothing: %+v", q)
	}
	if code := getJSON(t, ts, "/query?severity=High&limit=5", &q); code != http.StatusOK {
		t.Fatalf("/query severity = %d", code)
	}
	if len(q.Results) > 5 {
		t.Errorf("limit ignored: %d results", len(q.Results))
	}
	if code := getJSON(t, ts, "/query?severity=bogus", &q); code != http.StatusBadRequest {
		t.Errorf("bogus severity = %d, want 400", code)
	}

	// Unknown parameters are rejected, not silently ignored.
	var bad map[string]any
	if code := getJSON(t, ts, "/query?vendors="+vendor, &bad); code != http.StatusBadRequest {
		t.Errorf("unknown parameter = %d, want 400", code)
	}
	if code := getJSON(t, ts, "/query?offset=-1", &bad); code != http.StatusBadRequest {
		t.Errorf("negative offset = %d, want 400", code)
	}

	// The page size is capped: a client cannot size the response
	// window arbitrarily, and the 400 reports the cap.
	if code := getJSON(t, ts, "/query?limit=1000000000", &bad); code != http.StatusBadRequest {
		t.Errorf("unbounded limit = %d, want 400", code)
	} else if !strings.Contains(bad["error"].(string), "1000") {
		t.Errorf("limit cap not reported: %v", bad["error"])
	}
	if code := getJSON(t, ts, "/query?limit=1000", &q); code != http.StatusOK {
		t.Errorf("limit at the cap = %d, want 200", code)
	}

	// limit/offset paginate one stable ordering: page 2 picks up
	// exactly where page 1 ended.
	var page1, page2, both struct {
		Total   int `json:"total"`
		Offset  int `json:"offset"`
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
	}
	if code := getJSON(t, ts, "/query?limit=4", &both); code != http.StatusOK {
		t.Fatalf("/query limit=4 = %d", code)
	}
	if code := getJSON(t, ts, "/query?limit=2", &page1); code != http.StatusOK {
		t.Fatalf("/query page1 = %d", code)
	}
	if code := getJSON(t, ts, "/query?limit=2&offset=2", &page2); code != http.StatusOK {
		t.Fatalf("/query page2 = %d", code)
	}
	if page2.Offset != 2 || page1.Total != both.Total || page2.Total != both.Total {
		t.Errorf("pagination metadata: %+v %+v %+v", page1, page2, both)
	}
	for i, r := range append(page1.Results, page2.Results...) {
		if i >= len(both.Results) || both.Results[i].ID != r.ID {
			t.Fatalf("paginated pages do not tile the unpaginated ordering")
		}
	}

	var stats map[string]any
	if code := getJSON(t, ts, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if int(stats["entries"].(float64)) != snap.Len() || stats["engine"] == nil {
		t.Fatalf("stats = %v", stats)
	}
	// The index block reports shard residency; a freshly built index
	// is fully resident (no segments to stay lazy in).
	ix, ok := stats["index"].(map[string]any)
	if !ok {
		t.Fatalf("stats carries no index block: %v", stats)
	}
	if int(ix["entries"].(float64)) != snap.Len() {
		t.Errorf("index entries = %v, want %d", ix["entries"], snap.Len())
	}
	if int(ix["shards"].(float64)) != int(ix["loadedShards"].(float64))+int(ix["lazyShards"].(float64)) {
		t.Errorf("index shard accounting inconsistent: %v", ix)
	}
	if ix["keys"].(float64) == 0 || ix["postingBytesResident"].(float64) == 0 {
		t.Errorf("built index reports empty postings: %v", ix)
	}
	if int(ix["format"].(float64)) < 1 {
		t.Errorf("index format version missing: %v", ix)
	}
	// Every daemon reports its replication role; a plain store-less
	// server is a primary with no stream state.
	repl, ok := stats["replication"].(map[string]any)
	if !ok {
		t.Fatalf("stats carries no replication block: %v", stats)
	}
	if repl["role"] != "primary" {
		t.Errorf("replication role = %v, want primary", repl["role"])
	}
}

// TestServerFeedUpdate posts an upsert feed (one new v2-only CVE + one
// modified description) and verifies the swap: new generation, entry
// served, engine warm-started, old generation untouched.
func TestServerFeedUpdate(t *testing.T) {
	srv, snap := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	before := srv.cur.Load()

	// A brand-new v2-only entry cloned from an existing one (so its
	// reference URLs exist in the simulated web), plus a modified
	// v2-only entry: neither touches the dual-labeled training split.
	var v2only *nvdclean.Entry
	for _, e := range snap.Entries {
		if e.V2 != nil && e.V3 == nil {
			v2only = e
			break
		}
	}
	if v2only == nil {
		t.Fatal("no v2-only entry in demo snapshot")
	}
	added := v2only.Clone()
	added.ID = "CVE-2018-9999"
	modified := v2only.Clone()
	modified.Descriptions[0].Value += " Exploited in the wild."

	update := &nvdclean.Snapshot{
		CapturedAt: snap.CapturedAt.Add(24 * time.Hour),
		Entries:    []*nvdclean.Entry{added, modified},
	}
	var body bytes.Buffer
	if err := nvdclean.WriteFeed(&body, update); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /feed = %d: %v", resp.StatusCode, summary)
	}
	if int(summary["added"].(float64)) != 1 || int(summary["modified"].(float64)) != 1 {
		t.Fatalf("summary = %v", summary)
	}
	if summary["engineWarmStart"] != true {
		t.Errorf("v2-only update should warm-start the engine: %v", summary)
	}

	after := srv.cur.Load()
	if after == before || after.generation != before.generation+1 {
		t.Fatalf("generation did not advance: %d -> %d", before.generation, after.generation)
	}
	if !after.incremental {
		t.Error("feed update should be an incremental generation")
	}
	// The old generation still serves its own view (zero downtime).
	if _, ok := before.byID["CVE-2018-9999"]; ok {
		t.Error("previous generation was mutated by the update")
	}

	var view cveView
	if code := getJSON(t, ts, "/cve/CVE-2018-9999", &view); code != http.StatusOK {
		t.Fatalf("new CVE not served: %d", code)
	}
	if !view.Backported || view.PV3Score == nil {
		t.Errorf("new v2-only CVE should carry a backported score: %+v", view)
	}

	// Re-posting the same update is a no-op.
	body.Reset()
	if err := nvdclean.WriteFeed(&body, update); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Post(ts.URL+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	summary = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int(summary["changed"].(float64)) != 0 {
		t.Errorf("idempotent repost changed %v entries", summary["changed"])
	}
}

// TestQueryPaginationBeyondTotal pins the offset >= total edge: the
// window is empty, the metadata intact, and the status 200 — paging
// one past the last page is not an error.
func TestQueryPaginationBeyondTotal(t *testing.T) {
	srv, _ := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var all struct {
		Total   int   `json:"total"`
		Results []any `json:"results"`
	}
	if code := getJSON(t, ts, "/query?limit=1", &all); code != http.StatusOK || all.Total == 0 {
		t.Fatalf("/query = %d total=%d", code, all.Total)
	}
	for _, offset := range []int{all.Total, all.Total + 1, all.Total + 100000} {
		var page struct {
			Total   int   `json:"total"`
			Offset  int   `json:"offset"`
			Results []any `json:"results"`
		}
		path := fmt.Sprintf("/query?limit=5&offset=%d", offset)
		if code := getJSON(t, ts, path, &page); code != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, code)
		}
		if len(page.Results) != 0 || page.Total != all.Total || page.Offset != offset {
			t.Errorf("%s: results=%d total=%d offset=%d", path, len(page.Results), page.Total, page.Offset)
		}
	}
}

// TestLoadCommitFailure pins the boot ordering fix: when the initial
// checkpoint commit fails, load must surface the error without
// installing the generation — a server that reports a failed boot must
// not quietly serve an uncheckpointed view.
func TestLoadCommitFailure(t *testing.T) {
	snap, truth, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := nvdclean.Options{
		Transport:   nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport(),
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Seed:        1,
	}
	dir := filepath.Join(t.TempDir(), "data")
	str, _, _, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(opts)
	srv.persist = str
	// Sabotage the store directory so the checkpoint write must fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.load(context.Background(), snap); err == nil {
		t.Fatal("load succeeded with an uncommittable store")
	}
	if srv.cur.Load() != nil {
		t.Fatal("failed boot commit left the server serving a generation")
	}
}

func TestParseModels(t *testing.T) {
	if kinds, err := parseModels("LR,cnn"); err != nil ||
		len(kinds) != 2 || kinds[0] != predict.ModelLR || kinds[1] != predict.ModelCNN {
		t.Errorf("parseModels = %v, %v", kinds, err)
	}
	if kinds, err := parseModels("all"); err != nil || kinds != nil {
		t.Errorf("all = %v, %v", kinds, err)
	}
	if _, err := parseModels("LR,bogus"); err == nil {
		t.Error("bogus model should fail")
	}
}

// buildNvdserve compiles the daemon binary once per test.
func buildNvdserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nvdserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nvdserve: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running nvdserve process under test.
type daemon struct {
	cmd     *exec.Cmd
	base    string
	scanner *bufio.Scanner
	output  []string
}

// startDaemon launches the binary and waits for its listen line. The
// daemon is terminated (SIGINT, then kill via context) at test end.
func startDaemon(t *testing.T, ctx context.Context, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, scanner: bufio.NewScanner(stdout)}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() })
	// The daemon prints its bound address once listening.
	for d.scanner.Scan() {
		line := d.scanner.Text()
		t.Log(line)
		d.output = append(d.output, line)
		if rest, ok := strings.CutPrefix(line, "nvdserve: listening on "); ok {
			d.base = rest
			break
		}
	}
	if d.base == "" {
		t.Fatalf("daemon never reported a listen address: %v", d.scanner.Err())
	}
	return d
}

func (d *daemon) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}

// getRaw fetches a path without decoding, for non-JSON surfaces like
// /metrics.
func (d *daemon) getRaw(t *testing.T, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// signal delivers SIGINT without waiting, so a test can observe the
// drain window before the process exits.
func (d *daemon) signal(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
}

// shutdown delivers SIGINT and asserts the daemon drains and exits
// cleanly, printing its shutdown line.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.signal(t)
	d.awaitExit(t)
}

// awaitExit drains the output pipe to EOF and asserts a clean exit.
// The pipe is drained before Wait — Wait closes the pipe, so calling
// it while the scanner still reads would race away buffered output.
func (d *daemon) awaitExit(t *testing.T) {
	t.Helper()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for d.scanner.Scan() {
			line := d.scanner.Text()
			t.Log(line)
			d.output = append(d.output, line)
		}
	}()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGINT")
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGINT: %v", err)
	}
	if !d.sawLine("nvdserve: shutting down") {
		t.Error("daemon never logged its graceful shutdown")
	}
}

func (d *daemon) sawLine(prefix string) bool {
	for _, line := range d.output {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// TestNvdserveSmoke is the CI smoke test: build the real binary, start
// the daemon on an ephemeral port, query it over actual HTTP, and shut
// it down gracefully with SIGINT.
func TestNvdserveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke test skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// A generous -drain-wait so the test can observe the drain window
	// between SIGINT and listener close.
	d := startDaemon(t, ctx, buildNvdserve(t), "-demo", "tiny", "-drain-wait", "3s")

	var health map[string]any
	if code := d.get(t, "/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("/healthz = %d %v", code, health)
	}
	// Discover a real CVE ID through /query, then fetch it.
	var q struct {
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
	}
	if code := d.get(t, "/query?limit=1", &q); code != http.StatusOK || len(q.Results) == 0 {
		t.Fatalf("/query = %d %+v", code, q)
	}
	var view map[string]any
	if code := d.get(t, fmt.Sprintf("/cve/%s", q.Results[0].ID), &view); code != http.StatusOK {
		t.Fatalf("/cve/%s = %d", q.Results[0].ID, code)
	}
	if view["id"] != q.Results[0].ID {
		t.Fatalf("served %v, want %s", view["id"], q.Results[0].ID)
	}

	// Probe split: liveness and readiness both green on a loaded daemon.
	var probe map[string]any
	if code := d.get(t, "/livez", &probe); code != http.StatusOK || probe["status"] != "ok" {
		t.Fatalf("/livez = %d %v", code, probe)
	}
	if code := d.get(t, "/readyz", &probe); code != http.StatusOK || probe["status"] != "ok" {
		t.Fatalf("/readyz = %d %v", code, probe)
	}

	// The Prometheus surface over real HTTP: exposition content type
	// and a key family from each layer present by name — even without
	// -data-dir the store families render (as zeros) so dashboards keep
	// one stable scrape shape.
	code, hdr, metrics := d.getRaw(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", hdr.Get("Content-Type"))
	}
	for _, fam := range []string{
		"nvdserve_http_requests_total",
		"nvdserve_store_commit_queue_depth",
		"nvdserve_generation_age_seconds",
	} {
		if !strings.Contains(metrics, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}

	// Graceful shutdown with a drain window: after SIGINT readiness
	// flips 503 + Retry-After while the listener stays up (so load
	// balancers stop routing before connections die), then exit 0.
	d.signal(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(d.base + "/readyz")
		if err != nil {
			t.Fatalf("daemon dropped connections before the drain window closed: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if retry == "" {
				t.Error("draining /readyz carries no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readiness never flipped to 503 after SIGINT")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Ordinary routes still answer inside the window: the drain exists
	// so traffic already routed here completes.
	if code := d.get(t, "/query?limit=1", &q); code != http.StatusOK {
		t.Errorf("/query during drain = %d, want 200", code)
	}
	d.awaitExit(t)
}

// TestNvdserveWarmRestartSmoke is the CI warm-restart step: run the
// daemon with -data-dir, ingest a delta, SIGINT it, start it again on
// the same directory, and assert the second boot restores the store
// generation — posted entry included — without a full re-clean.
func TestNvdserveWarmRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke test skipped in -short")
	}
	bin := buildNvdserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// First boot: cold clean + checkpoint commit.
	d1 := startDaemon(t, ctx, bin, "-demo", "tiny", "-data-dir", dataDir)
	if !d1.sawLine("nvdserve: committed checkpoint generation 1") {
		t.Error("first boot did not commit a checkpoint")
	}
	// POST the canonical update (the daemon's tiny demo snapshot is
	// deterministic, so we can regenerate it here to build the body).
	snap, _, err := nvdclean.GenerateSnapshot(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := nvdclean.WriteFeed(&body, feedUpdate(t, snap)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d1.base+"/feed", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int(summary["added"].(float64)) != 1 {
		t.Fatalf("POST /feed = %d %v", resp.StatusCode, summary)
	}
	d1.shutdown(t)

	// Second boot, same directory: restore, don't re-clean.
	d2 := startDaemon(t, ctx, bin, "-demo", "tiny", "-data-dir", dataDir)
	if !d2.sawLine("nvdserve: warm start: restored store generation 1") {
		t.Fatalf("second boot did not warm-start from the store: %v", d2.output)
	}
	if d2.sawLine("nvdserve: cleaning") {
		t.Fatal("second boot ran a full re-clean despite the store")
	}
	var view map[string]any
	if code := d2.get(t, "/cve/CVE-2018-9999", &view); code != http.StatusOK {
		t.Fatalf("restored daemon does not serve the logged delta: %d", code)
	}
	if view["backported"] != true {
		t.Errorf("restored entry lost its backported score: %v", view)
	}
	var stats map[string]any
	if code := d2.get(t, "/stats", &stats); code != http.StatusOK || stats["warmRestart"] != true {
		t.Fatalf("/stats = %d warmRestart=%v", code, stats["warmRestart"])
	}
	d2.shutdown(t)
}
