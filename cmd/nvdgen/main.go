// Command nvdgen synthesizes an NVD snapshot with the defects the paper
// studies and writes it as an NVD JSON 1.1 data feed, plus an optional
// ground-truth sidecar for scoring cleaning tools.
//
// Usage:
//
//	nvdgen -scale small -out nvd.json -truth truth.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvdgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale     = flag.String("scale", "small", "snapshot scale: paper (107.2K CVEs), small (3K), tiny (400)")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "nvd.json", "output feed path ('-' for stdout)")
		truthPath = flag.String("truth", "", "optional ground-truth sidecar path")
	)
	flag.Parse()

	var cfg gen.Config
	switch *scale {
	case "paper":
		cfg = gen.DefaultConfig()
	case "small":
		cfg = gen.SmallConfig()
	case "tiny":
		cfg = gen.TinyConfig()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	start := time.Now()
	snap, truth, _, err := gen.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d CVEs in %v\n", snap.Len(), time.Since(start).Round(time.Millisecond))

	if err := writeFeed(*out, snap); err != nil {
		return err
	}
	if *truthPath != "" {
		if err := writeTruth(*truthPath, truth); err != nil {
			return err
		}
	}
	return nil
}

func writeFeed(path string, snap *cve.Snapshot) error {
	if path == "-" {
		return cve.WriteFeed(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := cve.WriteFeed(f, snap); err != nil {
		return err
	}
	return f.Close()
}

// truthJSON is the sidecar layout: everything needed to score a
// cleaning run.
type truthJSON struct {
	Disclosure       map[string]string    `json:"disclosure_dates"`
	TrueCWE          map[string]string    `json:"true_cwe"`
	TrueV3           map[string]string    `json:"true_v3_vector"`
	VendorCanonical  map[string]string    `json:"vendor_canonical"`
	ProductCanonical map[string][2]string `json:"product_canonical"`
}

func writeTruth(path string, truth *gen.Truth) error {
	t := truthJSON{
		Disclosure:       make(map[string]string, len(truth.Disclosure)),
		TrueCWE:          make(map[string]string, len(truth.TrueCWE)),
		TrueV3:           make(map[string]string, len(truth.TrueV3)),
		VendorCanonical:  truth.VendorCanonical,
		ProductCanonical: make(map[string][2]string, len(truth.ProductCanonical)),
	}
	for id, d := range truth.Disclosure {
		t.Disclosure[id] = d.Format("2006-01-02")
	}
	for id, c := range truth.TrueCWE {
		t.TrueCWE[id] = c.String()
	}
	for id, v := range truth.TrueV3 {
		t.TrueV3[id] = v.String()
	}
	for k, canonical := range truth.ProductCanonical {
		t.ProductCanonical[k[0]+"/"+k[1]] = [2]string{k[0], canonical}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&t); err != nil {
		return err
	}
	return f.Close()
}
