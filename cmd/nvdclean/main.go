// Command nvdclean runs the full cleaning pipeline over an NVD
// snapshot — either a real NVD JSON 1.1 feed or a freshly generated
// synthetic one — and writes the rectified feed plus a correction
// summary.
//
// Usage:
//
//	nvdclean -in nvd.json -out cleaned.json            # real feed, live web
//	nvdclean -generate small -out cleaned.json         # synthetic, simulated web
//	nvdclean -in nvd.json -offline -out cleaned.json   # skip the crawl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvdclean:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input NVD JSON 1.1 feed (mutually exclusive with -generate)")
		generate = flag.String("generate", "", "generate a synthetic snapshot: paper, small, or tiny")
		out      = flag.String("out", "cleaned.json", "output feed path ('-' for stdout)")
		scores   = flag.String("scores", "", "optional path for predicted v3 scores (JSON)")
		vmapOut  = flag.String("vendor-map", "", "optional path for the vendor consolidation map (JSON)")
		pmapOut  = flag.String("product-map", "", "optional path for the product consolidation map (JSON)")
		engOut   = flag.String("engine", "", "optional path for the trained severity engine (JSON)")
		offline  = flag.Bool("offline", false, "skip disclosure-date crawling")
		compact  = flag.Bool("compact", false, "use compact (fast) neural models")
		epochs   = flag.Int("epochs", 100, "training epochs for the deep models")
		lrOnly   = flag.Bool("lr-only", false, "train only the linear model (fastest)")
		seed     = flag.Int64("seed", 1, "pipeline seed")
		timeout  = flag.Duration("timeout", 30*time.Minute, "overall deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var (
		snap  *nvdclean.Snapshot
		truth *nvdclean.Truth
		err   error
	)
	switch {
	case *in != "" && *generate != "":
		return fmt.Errorf("-in and -generate are mutually exclusive")
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		snap, err = nvdclean.LoadFeed(f)
		f.Close()
		if err != nil {
			return err
		}
	case *generate != "":
		var cfg gen.Config
		switch *generate {
		case "paper":
			cfg = gen.DefaultConfig()
		case "small":
			cfg = gen.SmallConfig()
		case "tiny":
			cfg = gen.TinyConfig()
		default:
			return fmt.Errorf("unknown scale %q", *generate)
		}
		cfg.Seed = *seed
		snap, truth, err = nvdclean.GenerateSnapshot(cfg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -in or -generate is required")
	}
	fmt.Fprintf(os.Stderr, "loaded %d CVEs\n", snap.Len())

	opts := nvdclean.Options{
		Seed:        *seed,
		ModelConfig: predict.ModelConfig{Epochs: *epochs, Compact: *compact, Seed: *seed},
	}
	if *lrOnly {
		opts.Models = []predict.ModelKind{predict.ModelLR}
	}
	switch {
	case *offline:
		// no transport: skip the crawl
	case truth != nil:
		opts.Transport = nvdclean.NewWebCorpus(snap, truth.Disclosure).Transport()
	default:
		opts.Transport = http.DefaultTransport
	}

	start := time.Now()
	res, err := nvdclean.Clean(ctx, snap, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cleaned in %v\n", time.Since(start).Round(time.Millisecond))
	printSummary(res)

	if err := writeFeed(*out, res.Cleaned); err != nil {
		return err
	}
	if *scores != "" && res.Backport != nil {
		if err := writeScores(*scores, res); err != nil {
			return err
		}
	}
	if *vmapOut != "" {
		if err := writeTo(*vmapOut, res.VendorMap.WriteJSON); err != nil {
			return err
		}
	}
	if *pmapOut != "" {
		if err := writeTo(*pmapOut, res.ProductMap.WriteJSON); err != nil {
			return err
		}
	}
	if *engOut != "" && res.Engine != nil {
		if err := writeTo(*engOut, res.Engine.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeTo streams a serializer to a file.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

func printSummary(res *nvdclean.Result) {
	fmt.Fprintf(os.Stderr, "  dates estimated:       %d (crawl: %d fetched, %d extracted)\n",
		len(res.EstimatedDisclosure), res.CrawlStats.Fetched, res.CrawlStats.Extracted)
	fmt.Fprintf(os.Stderr, "  vendor names remapped:  %d (affecting %d CVEs)\n",
		res.VendorMap.Len(), len(res.VendorChanged))
	fmt.Fprintf(os.Stderr, "  product names remapped: %d (affecting %d CVEs)\n",
		res.ProductMap.Len(), len(res.ProductChanged))
	fmt.Fprintf(os.Stderr, "  CWE fields corrected:   %d\n", res.CWECorrection.Corrected)
	if res.Backport != nil {
		fmt.Fprintf(os.Stderr, "  v3 scores backported:   %d (model: %s, accuracy %.2f%%)\n",
			len(res.Backport.Scores), res.Engine.Best(),
			100*res.Engine.Evaluation(res.Engine.Best()).Accuracy)
	}
}

func writeFeed(path string, snap *nvdclean.Snapshot) error {
	if path == "-" {
		return nvdclean.WriteFeed(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := nvdclean.WriteFeed(f, snap); err != nil {
		return err
	}
	return f.Close()
}

func writeScores(path string, res *nvdclean.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Backport.Scores); err != nil {
		return err
	}
	return f.Close()
}
