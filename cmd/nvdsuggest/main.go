// Command nvdsuggest is the §6 reporter-assistance interface: it builds
// (or loads) a consistent name database and answers vendor/product name
// queries with ranked canonical suggestions.
//
// Usage:
//
//	nvdsuggest -generate small microsft              # vendor query
//	nvdsuggest -generate small -vendor microsoft ie  # product query
//	nvdsuggest -in nvd.json -map vendor-map.json oracel
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nvdclean"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
	"nvdclean/internal/suggest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nvdsuggest:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "NVD JSON 1.1 feed to index")
		generate = flag.String("generate", "", "or generate a synthetic snapshot: paper, small, tiny")
		mapPath  = flag.String("map", "", "optional vendor consolidation map (JSON) for known-alias hits")
		vendor   = flag.String("vendor", "", "scope the query to this vendor's products")
		topK     = flag.Int("k", 5, "number of suggestions")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("exactly one name query is required")
	}
	query := flag.Arg(0)

	var (
		snap *nvdclean.Snapshot
		err  error
	)
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		snap, err = nvdclean.LoadFeed(f)
		f.Close()
		if err != nil {
			return err
		}
	case *generate != "":
		var cfg gen.Config
		switch *generate {
		case "paper":
			cfg = gen.DefaultConfig()
		case "small":
			cfg = gen.SmallConfig()
		case "tiny":
			cfg = gen.TinyConfig()
		default:
			return fmt.Errorf("unknown scale %q", *generate)
		}
		snap, _, err = nvdclean.GenerateSnapshot(cfg)
		if err != nil {
			return err
		}
		// Run the naming pipeline so suggestions come from the
		// consistent database.
		res, cerr := nvdclean.Clean(context.Background(), snap, nvdclean.Options{SkipSeverity: true})
		if cerr != nil {
			return cerr
		}
		advisor := res.Advisor()
		return printSuggestions(advisor, *vendor, query, *topK)
	default:
		return fmt.Errorf("either -in or -generate is required")
	}

	var vmap *naming.Map
	if *mapPath != "" {
		f, ferr := os.Open(*mapPath)
		if ferr != nil {
			return ferr
		}
		vmap, err = naming.ReadMapJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	advisor := suggest.NewAdvisor(snap, vmap, nil)
	return printSuggestions(advisor, *vendor, query, *topK)
}

func printSuggestions(advisor *suggest.Advisor, vendor, query string, k int) error {
	var sugs []suggest.Suggestion
	if vendor != "" {
		sugs = advisor.SuggestProduct(vendor, query, k)
	} else {
		sugs = advisor.SuggestVendor(query, k)
	}
	if len(sugs) == 0 {
		fmt.Printf("no suggestions for %q — possibly a new name\n", query)
		return nil
	}
	for _, s := range sugs {
		fmt.Printf("%-30s %.2f  %-14s %d CVEs\n", s.Name, s.Score, s.Reason, s.CVEs)
	}
	return nil
}
