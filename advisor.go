package nvdclean

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"nvdclean/internal/crawler"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/predict"
	"nvdclean/internal/suggest"
)

// Advisor is the reporter-assistance interface of §6: name suggestion
// against the consistent database produced by a Clean run.
type Advisor = suggest.Advisor

// Suggestion is one ranked candidate name.
type Suggestion = suggest.Suggestion

// Advisor builds the §6 reporter-assistance tool over the cleaned
// snapshot and the consolidation maps, so inconsistent spellings typed
// by reporters resolve to consistent names.
func (r *Result) Advisor() *Advisor {
	return suggest.NewAdvisor(r.Cleaned, r.VendorMap, r.ProductMap)
}

// EntryAssessment is the pipeline's §6 "incremental reporting" output
// for one new or modified CVE: everything an NVD analyst would want
// before accepting the entry.
type EntryAssessment struct {
	// EstimatedDisclosure is the minimum reference-page date (or the
	// entry's own publication date when no reference yields one).
	EstimatedDisclosure time.Time
	// LagDays is the publication lag implied by the estimate.
	LagDays int
	// VendorSuggestions maps each vendor name in the entry's CPEs to
	// ranked consistent alternatives (empty for exact canonical names).
	VendorSuggestions map[string][]Suggestion
	// ExtractedCWEs are concrete weakness types found in the entry's
	// descriptions (§4.4 regex).
	ExtractedCWEs []cwe.ID
	// PredictedV3 is the backported v3 base score (present when the
	// Clean run trained an engine and the entry has a v2 vector but no
	// v3 label).
	PredictedV3 float64
	// PredictedSeverity is the corresponding band.
	PredictedSeverity cvss.Severity
	// HasPrediction reports whether PredictedV3 is meaningful.
	HasPrediction bool
}

// AssessEntry runs the §6 analyst workflow on one entry using the
// artifacts of a prior Clean run: estimate its disclosure date from its
// references (transport may be nil to skip crawling), suggest
// consistent vendor names, extract description CWEs, and predict a v3
// severity. The entry is not modified.
func (r *Result) AssessEntry(ctx context.Context, e *Entry, transport http.RoundTripper) (*EntryAssessment, error) {
	if e == nil {
		return nil, fmt.Errorf("nvdclean: nil entry")
	}
	out := &EntryAssessment{
		EstimatedDisclosure: e.Published,
		VendorSuggestions:   make(map[string][]Suggestion),
	}

	if transport != nil && len(e.References) > 0 {
		c, err := crawler.New(crawler.Config{Transport: transport})
		if err != nil {
			return nil, fmt.Errorf("nvdclean: building crawler: %w", err)
		}
		est, _ := c.Estimate(ctx, e)
		out.EstimatedDisclosure = est
		if lag := int(e.Published.Sub(est).Hours() / 24); lag > 0 {
			out.LagDays = lag
		}
	}

	advisor := r.Advisor()
	for _, vendor := range e.Vendors() {
		sugs := advisor.SuggestVendor(vendor, 3)
		// Exact canonical names need no advice.
		if len(sugs) > 0 && !(sugs[0].Reason == "exact" && sugs[0].Name == vendor) {
			out.VendorSuggestions[vendor] = sugs
		}
	}

	out.ExtractedCWEs = cwe.NewRegistry().Validate(cwe.Extract(e.AllDescriptionText()))

	if r.Engine != nil && e.V2 != nil && e.V3 == nil {
		id := cwe.Unassigned
		if len(out.ExtractedCWEs) > 0 {
			id = out.ExtractedCWEs[0]
		} else {
			for _, c := range e.CWEs {
				if !c.IsMeta() {
					id = c
					break
				}
			}
		}
		score, err := r.Engine.Predict(*e.V2, id)
		if err != nil {
			return nil, fmt.Errorf("nvdclean: predicting severity: %w", err)
		}
		out.PredictedV3 = score
		out.PredictedSeverity = cvss.SeverityV3(score)
		out.HasPrediction = true
	}
	return out, nil
}

// ModelKind re-exports the §4.3 algorithm identifiers for Options.
type ModelKind = predict.ModelKind

// The four Table 5 algorithms.
const (
	ModelLR  = predict.ModelLR
	ModelSVR = predict.ModelSVR
	ModelCNN = predict.ModelCNN
	ModelDNN = predict.ModelDNN
)
