module nvdclean

go 1.24
