package nvdclean

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"nvdclean/internal/cwe"
	"nvdclean/internal/predict"
)

// fastOpts keeps the end-to-end pipeline quick in tests.
func fastOpts(transport bool, snap *Snapshot, truth *Truth) Options {
	opts := Options{
		Models:      []predict.ModelKind{predict.ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
		Concurrency: 16,
		Seed:        1,
	}
	if transport {
		opts.Transport = NewWebCorpus(snap, truth.Disclosure).Transport()
	}
	return opts
}

func TestCleanEndToEnd(t *testing.T) {
	cfg := SmallScale()
	snap, truth, err := GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clean(context.Background(), snap, fastOpts(true, snap, truth))
	if err != nil {
		t.Fatal(err)
	}

	// The original is untouched.
	if res.Original != snap {
		t.Error("Original should be the input snapshot")
	}
	for _, e := range snap.Entries {
		for _, n := range e.CPEs {
			_ = n // compile check; deep equality asserted below on one field
		}
	}

	// §4.1: estimated dates cover the snapshot and never precede truth.
	if len(res.EstimatedDisclosure) != snap.Len() {
		t.Errorf("estimated dates = %d, want %d", len(res.EstimatedDisclosure), snap.Len())
	}
	var recovered, lagged int
	for _, e := range snap.Entries {
		est := res.EstimatedDisclosure[e.ID]
		disc := truth.Disclosure[e.ID]
		if est.Before(disc) {
			t.Fatalf("%s: estimate before true disclosure", e.ID)
		}
		if disc.Before(e.Published) {
			lagged++
			if est.Equal(disc) {
				recovered++
			}
		}
	}
	if lagged > 0 && float64(recovered)/float64(lagged) < 0.75 {
		t.Errorf("date recovery = %d/%d", recovered, lagged)
	}

	// §4.2: maps built and applied to the clone only.
	if res.VendorMap.Len() == 0 {
		t.Error("no vendor consolidations")
	}
	if len(res.VendorChanged) == 0 {
		t.Error("no vendor-changed CVEs")
	}
	aliasSurvives := false
	for _, e := range res.Cleaned.Entries {
		for _, n := range e.CPEs {
			if res.VendorMap.Mapped(n.Vendor) {
				aliasSurvives = true
			}
		}
	}
	if aliasSurvives {
		t.Error("mapped vendor names survive in cleaned snapshot")
	}

	// §4.4: CWE corrections happened.
	if res.CWECorrection == nil || res.CWECorrection.Corrected == 0 {
		t.Error("no CWE corrections")
	}

	// §4.3: every v2-only CVE got a predicted score.
	var v2only int
	for _, e := range res.Cleaned.Entries {
		if e.V2 != nil && e.V3 == nil {
			v2only++
		}
	}
	if len(res.Backport.Scores) != v2only {
		t.Errorf("backported %d, want %d", len(res.Backport.Scores), v2only)
	}
	if res.Engine.Evaluation(res.Engine.Best()) == nil {
		t.Error("engine has no evaluation")
	}
	if res.CrawlStats.Fetched == 0 {
		t.Error("crawl stats empty")
	}
}

func TestCleanWithoutTransport(t *testing.T) {
	snap, _, err := GenerateSnapshot(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clean(context.Background(), snap, Options{
		SkipSeverity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EstimatedDisclosure) != 0 {
		t.Error("no transport: dates should be empty")
	}
	if res.Engine != nil || res.Backport != nil {
		t.Error("SkipSeverity: engine should be nil")
	}
	if res.VendorMap.Len() == 0 {
		t.Error("naming step should still run")
	}
}

func TestCleanContextCancellation(t *testing.T) {
	snap, truth, err := GenerateSnapshot(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("pre-canceled without transport", func(t *testing.T) {
		// No crawl stage at all: cancellation must be observed by the
		// naming+CWE stages, which historically ignored ctx.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Clean(ctx, snap, Options{SkipSeverity: true})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("expired deadline with transport", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := Clean(ctx, snap, fastOpts(true, snap, truth))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

func TestCleanEmptySnapshot(t *testing.T) {
	if _, err := Clean(context.Background(), &Snapshot{}, Options{}); err == nil {
		t.Error("empty snapshot should fail")
	}
	if _, err := Clean(context.Background(), nil, Options{}); err == nil {
		t.Error("nil snapshot should fail")
	}
}

func TestCleanedCWEFeedsSeverityModel(t *testing.T) {
	// The pipeline corrects CWE fields before training, so entries that
	// were NVD-CWE-Other but had an evaluator hint must be typed in the
	// cleaned snapshot.
	snap, truth, err := GenerateSnapshot(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clean(context.Background(), snap, Options{SkipSeverity: true})
	if err != nil {
		t.Fatal(err)
	}
	var fixed int
	for _, e := range res.Cleaned.Entries {
		orig := res.Original.ByID(e.ID)
		if orig.Typed() || e.Typed() == orig.Typed() {
			continue
		}
		fixed++
		if e.CWEs[0] != truth.TrueCWE[e.ID] {
			t.Errorf("%s: corrected to %v, truth %v", e.ID, e.CWEs[0], truth.TrueCWE[e.ID])
		}
	}
	if fixed == 0 {
		t.Error("no entries became typed")
	}
}

func TestFeedRoundTripThroughPublicAPI(t *testing.T) {
	cfg := SmallScale()
	cfg.NumCVEs = 100
	cfg.NumVendors = 30
	snap, _, err := GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFeed(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != snap.Len() {
		t.Errorf("round trip %d entries, want %d", back.Len(), snap.Len())
	}
}

func TestRegistryAccessibleViaInternal(t *testing.T) {
	// Sanity: the cwe registry the pipeline uses has the paper's class
	// count.
	if got := cwe.NewRegistry().Len(); got != 151 {
		t.Errorf("registry classes = %d, want 151", got)
	}
}
