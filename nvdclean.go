// Package nvdclean is the public API of the NVD cleaning system, a
// reproduction of "Cleaning the NVD: Comprehensive Quality Assessment,
// Improvements, and Analyses" (Anwar et al., DSN 2021).
//
// The package ties together the four §4 correction tools — disclosure-
// date estimation by reference crawling, vendor/product name
// consolidation, CVSS v3 severity backporting, and CWE type correction
// — into one Clean call producing a rectified snapshot plus everything
// the §5 case studies need.
//
// A typical session:
//
//	snap, truth, _, _ := nvdclean.GenerateSnapshot(nvdclean.SmallScale())
//	corpus := nvdclean.NewWebCorpus(snap, truth.Disclosure)
//	result, err := nvdclean.Clean(context.Background(), snap, nvdclean.Options{
//		Transport: corpus.Transport(),
//	})
//
// Real NVD JSON 1.1 feeds load with LoadFeed, in which case Transport
// should be http.DefaultTransport.
package nvdclean

import (
	"context"
	"io"
	"net/http"
	"time"

	"nvdclean/internal/crawler"
	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
	"nvdclean/internal/predict"
	"nvdclean/internal/webcorpus"
)

// Re-exported entry points for snapshot acquisition. The aliases keep
// example and downstream code inside the public package.
type (
	// Snapshot is a full NVD capture.
	Snapshot = cve.Snapshot
	// Entry is one CVE record.
	Entry = cve.Entry
	// Description is one free-form CVE description.
	Description = cve.Description
	// Reference is one CVE reference URL.
	Reference = cve.Reference
	// Truth is generator ground truth (synthetic snapshots only).
	Truth = gen.Truth
	// GenConfig scales a synthetic snapshot.
	GenConfig = gen.Config
	// WebCorpus simulates the reference-URL web.
	WebCorpus = webcorpus.Corpus
)

// PaperScale returns the generator configuration matching the paper's
// snapshot (107.2K CVEs, 1988–2018, captured 2018-05-21).
func PaperScale() GenConfig { return gen.DefaultConfig() }

// SmallScale returns a proportionally scaled configuration (3K CVEs)
// for quick runs.
func SmallScale() GenConfig { return gen.SmallConfig() }

// GenerateSnapshot synthesizes an NVD snapshot with injected,
// ground-truthed inconsistencies.
func GenerateSnapshot(cfg GenConfig) (*Snapshot, *Truth, error) {
	snap, truth, _, err := gen.Generate(cfg)
	return snap, truth, err
}

// NewWebCorpus builds the simulated advisory web for a snapshot; its
// Transport is what Clean crawls when no live web is available.
func NewWebCorpus(snap *Snapshot, disclosure map[string]time.Time) *WebCorpus {
	return webcorpus.New(snap, disclosure)
}

// LoadFeed parses an NVD JSON 1.1 data feed.
func LoadFeed(r io.Reader) (*Snapshot, error) { return cve.ReadFeed(r) }

// WriteFeed serializes a snapshot in NVD JSON 1.1 format.
func WriteFeed(w io.Writer, s *Snapshot) error { return cve.WriteFeed(w, s) }

// Options tunes Clean. The zero value disables crawling (no transport)
// and uses fast model settings.
type Options struct {
	// Transport fetches reference pages for disclosure-date estimation.
	// nil skips the date step. Use a WebCorpus transport for simulation
	// or http.DefaultTransport for the live web.
	Transport http.RoundTripper
	// TopKDomains restricts crawling to the most popular reference
	// domains (paper: 50). Zero means 50.
	TopKDomains int
	// Concurrency bounds the parallelism of every pipeline stage: the
	// reference crawl, name consolidation, model training, and score
	// backporting. Zero means GOMAXPROCS. Results are identical at any
	// setting — the pipeline's parallel paths use order-stable
	// reductions (see internal/parallel), so concurrency only changes
	// wall-clock time.
	Concurrency int
	// Models selects which §4.3 algorithms to train; nil trains all
	// four (LR, SVR, CNN, DNN).
	Models []predict.ModelKind
	// ModelConfig tunes training cost; the zero value uses the paper's
	// settings (100 epochs, paper-width networks).
	ModelConfig predict.ModelConfig
	// SkipSeverity disables the v3 backporting step.
	SkipSeverity bool
	// Seed drives dataset splits.
	Seed int64
}

// Result is the outcome of a Clean run.
type Result struct {
	// Original is the snapshot as given (untouched).
	Original *Snapshot
	// Cleaned is the rectified snapshot: consolidated names, corrected
	// CWE fields.
	Cleaned *Snapshot

	// EstimatedDisclosure maps CVE ID to the §4.1 estimated disclosure
	// date (empty when no Transport was given).
	EstimatedDisclosure map[string]time.Time
	// LagDays maps CVE ID to the measured publication lag.
	LagDays map[string]int
	// CrawlStats accounts for the reference crawl.
	CrawlStats crawler.Stats

	// VendorMap and ProductMap are the §4.2 consolidation mappings.
	VendorMap *naming.Map
	// VendorChanged marks CVEs whose vendor field was rewritten.
	VendorChanged map[string]bool
	// ProductMap is the product consolidation mapping.
	ProductMap *naming.ProductMap
	// ProductChanged marks CVEs whose product field was rewritten.
	ProductChanged map[string]bool

	// Engine is the trained §4.3 model zoo (nil when SkipSeverity).
	Engine *predict.Engine
	// Backport holds predicted v3 scores for v2-only CVEs.
	Backport *predict.Backport

	// CWECorrection summarizes the §4.4 regex fix.
	CWECorrection *predict.CWECorrection

	// inc carries the per-entry artifacts and warm caches CleanDelta
	// needs to reprocess only a feed delta.
	inc *incState
}

// Clean runs the full pipeline on snap, returning the rectified
// snapshot and all intermediate artifacts. snap itself is not modified.
//
// Internally Clean is a staged DAG over internal/pipeline: the §4.1
// reference crawl reads only the original snapshot while the §4.2
// naming consolidation and §4.4 CWE correction rewrite disjoint fields
// of the clone, so all three overlap and join before the §4.3 severity
// step (which needs the corrected clone). The scheduler splits
// opts.Concurrency across the stages in flight, and every stage
// observes ctx. The returned Result also carries the state CleanDelta
// needs to reprocess a feed delta incrementally.
func Clean(ctx context.Context, snap *Snapshot, opts Options) (*Result, error) {
	return runClean(ctx, snap, opts, nil)
}
