package nvdclean

import (
	"context"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/predict"
)

// cleanFixture runs one shared fast Clean for advisor tests.
func cleanFixture(t *testing.T) (*Result, *Truth, *WebCorpus) {
	t.Helper()
	snap, truth, err := GenerateSnapshot(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewWebCorpus(snap, truth.Disclosure)
	res, err := Clean(context.Background(), snap, Options{
		Transport:   corpus.Transport(),
		Concurrency: 16,
		Models:      []predict.ModelKind{ModelLR},
		ModelConfig: predict.ModelConfig{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, truth, corpus
}

func TestAdvisorSuggestsConsistentNames(t *testing.T) {
	res, truth, _ := cleanFixture(t)
	advisor := res.Advisor()
	var queried, hit int
	for alias, canonical := range truth.VendorCanonical {
		sugs := advisor.SuggestVendor(alias, 3)
		if len(sugs) == 0 {
			continue
		}
		queried++
		// The consolidation may have picked either side of a pair as
		// canonical; the advisor should lead to whatever name the
		// cleaned database settled on.
		want := res.VendorMap.Canonical(canonical)
		for _, s := range sugs {
			if s.Name == want || s.Name == canonical {
				hit++
				break
			}
		}
	}
	if queried == 0 {
		t.Fatal("no suggestions produced")
	}
	if rate := float64(hit) / float64(queried); rate < 0.75 {
		t.Errorf("suggestion hit rate = %.2f (%d/%d)", rate, hit, queried)
	}
}

func TestAssessEntry(t *testing.T) {
	res, truth, corpus := cleanFixture(t)

	// Take a real lagged entry from the original snapshot and assess it
	// as if newly reported.
	var target *Entry
	for _, e := range res.Original.Entries {
		if truth.Disclosure[e.ID].Before(e.Published) && len(e.References) > 0 &&
			e.V2 != nil && e.V3 == nil {
			target = e
			break
		}
	}
	if target == nil {
		t.Skip("no suitable entry")
	}
	a, err := res.AssessEntry(context.Background(), target, corpus.Transport())
	if err != nil {
		t.Fatal(err)
	}
	if a.EstimatedDisclosure.After(target.Published) {
		t.Error("estimate after publication")
	}
	if !a.EstimatedDisclosure.Equal(truth.Disclosure[target.ID]) && a.LagDays == 0 {
		// Either the exact date was recovered (usual) or refs were all
		// dead (possible); both leave lag consistent.
		t.Logf("date not exactly recovered for %s (dead refs?)", target.ID)
	}
	if !a.HasPrediction {
		t.Error("expected a severity prediction for a v2-only entry")
	}
	if a.PredictedV3 < 0 || a.PredictedV3 > 10 {
		t.Errorf("predicted score %v out of range", a.PredictedV3)
	}
	if a.PredictedSeverity < cvss.SeverityNone || a.PredictedSeverity > cvss.SeverityCritical {
		t.Errorf("predicted severity %v invalid", a.PredictedSeverity)
	}
}

func TestAssessEntrySyntheticReport(t *testing.T) {
	res, _, _ := cleanFixture(t)

	// A hand-written incoming report with an inconsistent vendor name, a
	// CWE hint in the description, and no v3 label.
	v2, err := cvss.ParseV2("AV:N/AC:L/Au:N/C:P/I:P/A:P")
	if err != nil {
		t.Fatal(err)
	}
	entry := &Entry{
		ID:        "CVE-2018-99999",
		Published: time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC),
		V2:        &v2,
		CPEs: []cpe.Name{
			cpe.NewName(cpe.PartApplication, "microsft", "word", "1.0"),
		},
		Descriptions: []Description{
			{Value: "SQL injection, see CWE-89, in the search form."},
		},
	}
	a, err := res.AssessEntry(context.Background(), entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ExtractedCWEs) != 1 || a.ExtractedCWEs[0] != cwe.ID(89) {
		t.Errorf("ExtractedCWEs = %v", a.ExtractedCWEs)
	}
	sugs, ok := a.VendorSuggestions["microsft"]
	if !ok || len(sugs) == 0 {
		t.Fatalf("no suggestions for misspelled vendor: %v", a.VendorSuggestions)
	}
	if sugs[0].Name != "microsoft" {
		t.Errorf("top suggestion = %v", sugs[0])
	}
	if !a.HasPrediction {
		t.Error("expected severity prediction")
	}
	// No transport: estimate falls back to the published date.
	if !a.EstimatedDisclosure.Equal(entry.Published) || a.LagDays != 0 {
		t.Errorf("no-transport estimate = %v lag %d", a.EstimatedDisclosure, a.LagDays)
	}
}

func TestAssessEntryNil(t *testing.T) {
	res, _, _ := cleanFixture(t)
	if _, err := res.AssessEntry(context.Background(), nil, nil); err == nil {
		t.Error("nil entry should fail")
	}
}
