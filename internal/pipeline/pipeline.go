// Package pipeline is the staged execution engine of the cleaning
// system: named stages declare the artifacts they need and provide, a
// DAG scheduler overlaps every stage whose inputs are ready, and an
// ArtifactStore carries the typed intermediate results between them.
//
// The scheduler owns two things the stages should not:
//
//   - Stage overlap. A stage launches the moment every artifact it
//     Needs is present in the store, so independent stages (the §4.1
//     crawl and the §4.2 naming consolidation, say) run concurrently
//     without hand-rolled goroutine plumbing.
//   - The worker budget. Run is given one total worker budget; each
//     launching stage receives an equal share of it relative to the
//     number of stages in flight, so the aggregate parallelism stays
//     near the budget instead of multiplying per level.
//
// Stages must be worker-invariant — the repository-wide contract that
// output bits never depend on the worker count — which is what lets
// the scheduler hand out budget shares freely: the split changes only
// wall-clock time, never results.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"nvdclean/internal/parallel"
)

// Store is the artifact store: a keyed set of typed intermediate
// results shared by the stages of one run. It is safe for concurrent
// use.
type Store struct {
	mu   sync.RWMutex
	vals map[string]any
}

// NewStore returns an empty store. Seed it with Put before Run for
// artifacts that exist up front (the input snapshot, its clone).
func NewStore() *Store {
	return &Store{vals: make(map[string]any)}
}

// Put stores an artifact under key, replacing any previous value.
func (s *Store) Put(key string, v any) {
	s.mu.Lock()
	s.vals[key] = v
	s.mu.Unlock()
}

// Value returns the raw artifact under key.
func (s *Store) Value(key string) (any, bool) {
	s.mu.RLock()
	v, ok := s.vals[key]
	s.mu.RUnlock()
	return v, ok
}

// Has reports whether an artifact exists under key.
func (s *Store) Has(key string) bool {
	_, ok := s.Value(key)
	return ok
}

// Keys returns every artifact key, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Get fetches a typed artifact from the store, failing loudly when the
// artifact is missing or holds a different type — both are wiring bugs
// in the stage graph, not runtime conditions.
func Get[T any](s *Store, key string) (T, error) {
	var zero T
	v, ok := s.Value(key)
	if !ok {
		return zero, fmt.Errorf("pipeline: artifact %q not in store", key)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("pipeline: artifact %q is %T, not %T", key, v, zero)
	}
	return t, nil
}

// Stage is one named unit of pipeline work. Needs lists the artifact
// keys that must be in the store before the stage can run; Provides
// lists the keys the stage is responsible for putting there. Run
// receives the stage's worker-budget share and the shared store.
type Stage struct {
	Name     string
	Needs    []string
	Provides []string
	Run      func(ctx context.Context, workers int, store *Store) error
}

// Engine schedules a set of stages as a DAG over an artifact store.
type Engine struct {
	budget int
	stages []Stage
}

// New returns an engine with the given total worker budget (zero or
// negative means GOMAXPROCS, the repository-wide convention).
func New(budget int) *Engine {
	return &Engine{budget: parallel.Workers(budget)}
}

// Add appends a stage. Stages added first win ties in error reporting,
// mirroring parallel.Group's first-in-Add-order semantics.
func (e *Engine) Add(st Stage) {
	e.stages = append(e.stages, st)
}

// validate checks the stage graph against the seeded store: unique
// stage names, unique providers per artifact, and every Need either
// seeded or provided by some stage.
func (e *Engine) validate(store *Store) error {
	names := make(map[string]bool, len(e.stages))
	providers := make(map[string]string)
	for _, st := range e.stages {
		if st.Name == "" || st.Run == nil {
			return fmt.Errorf("pipeline: stage %q must have a name and a Run func", st.Name)
		}
		if names[st.Name] {
			return fmt.Errorf("pipeline: duplicate stage %q", st.Name)
		}
		names[st.Name] = true
		for _, p := range st.Provides {
			if prev, ok := providers[p]; ok {
				return fmt.Errorf("pipeline: artifact %q provided by both %q and %q", p, prev, st.Name)
			}
			providers[p] = st.Name
		}
	}
	for _, st := range e.stages {
		for _, need := range st.Needs {
			if _, provided := providers[need]; !provided && !store.Has(need) {
				return fmt.Errorf("pipeline: stage %q needs artifact %q, which is neither seeded nor provided", st.Name, need)
			}
		}
	}
	return nil
}

// Run executes the stage graph: every stage launches as soon as its
// Needs are satisfied, newly launching stages split the worker budget
// with the stages already in flight, and Run returns after every
// launched stage has finished. On error, no further stages launch and
// the first error in Add order is returned; a canceled context stops
// new launches and surfaces ctx.Err() once in-flight stages drain.
// Stage panics are repanicked on the calling goroutine, matching
// internal/parallel.
func (e *Engine) Run(ctx context.Context, store *Store) error {
	if store == nil {
		store = NewStore()
	}
	if err := e.validate(store); err != nil {
		return err
	}
	n := len(e.stages)
	avail := make(map[string]bool)
	for _, k := range store.Keys() {
		avail[k] = true
	}

	type result struct {
		idx int
		err error
		pan *any
	}
	done := make(chan result)
	launched := make([]bool, n)
	errs := make([]error, n)
	var panicked *any
	finished, running := 0, 0
	failed := false

	for finished < n {
		if !failed && ctx.Err() == nil {
			var ready []int
			for i, st := range e.stages {
				if launched[i] {
					continue
				}
				ok := true
				for _, need := range st.Needs {
					if !avail[need] {
						ok = false
						break
					}
				}
				if ok {
					ready = append(ready, i)
				}
			}
			if len(ready) == 0 && running == 0 {
				var stuck []string
				for i, st := range e.stages {
					if !launched[i] {
						stuck = append(stuck, st.Name)
					}
				}
				return fmt.Errorf("pipeline: stages %v blocked on artifacts that will never appear (dependency cycle?)", stuck)
			}
			if len(ready) > 0 {
				// Equal budget share across everything in flight once
				// this wave launches. Stages are worker-invariant, so
				// the split is a wall-clock decision only.
				share := e.budget / (running + len(ready))
				if share < 1 {
					share = 1
				}
				for _, i := range ready {
					launched[i] = true
					running++
					go func(i int, w int) {
						r := result{idx: i}
						defer func() { done <- r }()
						defer func() {
							if p := recover(); p != nil {
								r.pan = &p
							}
						}()
						r.err = e.stages[i].Run(ctx, w, store)
					}(i, share)
				}
			}
		} else if running == 0 {
			break
		}
		r := <-done
		running--
		finished++
		switch {
		case r.pan != nil:
			failed = true
			if panicked == nil {
				panicked = r.pan
			}
		case r.err != nil:
			failed = true
			errs[r.idx] = r.err
		default:
			for _, p := range e.stages[r.idx].Provides {
				avail[p] = true
			}
		}
	}
	if panicked != nil {
		panic(*panicked)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if finished < n {
		// Only a canceled context leaves stages unlaunched without an
		// error of their own.
		return ctx.Err()
	}
	return nil
}
