package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// linear builds a three-stage chain a -> b -> c recording run order.
func linear(order *[]string, mu *sync.Mutex) *Engine {
	e := New(4)
	record := func(name string) {
		mu.Lock()
		*order = append(*order, name)
		mu.Unlock()
	}
	e.Add(Stage{Name: "a", Provides: []string{"A"}, Run: func(ctx context.Context, w int, s *Store) error {
		record("a")
		s.Put("A", 1)
		return nil
	}})
	e.Add(Stage{Name: "b", Needs: []string{"A"}, Provides: []string{"B"}, Run: func(ctx context.Context, w int, s *Store) error {
		record("b")
		v, err := Get[int](s, "A")
		if err != nil {
			return err
		}
		s.Put("B", v+1)
		return nil
	}})
	e.Add(Stage{Name: "c", Needs: []string{"B"}, Provides: []string{"C"}, Run: func(ctx context.Context, w int, s *Store) error {
		record("c")
		v, err := Get[int](s, "B")
		if err != nil {
			return err
		}
		s.Put("C", v+1)
		return nil
	}})
	return e
}

func TestRunLinearChain(t *testing.T) {
	var order []string
	var mu sync.Mutex
	e := linear(&order, &mu)
	store := NewStore()
	if err := e.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Errorf("run order %q, want abc", got)
	}
	v, err := Get[int](store, "C")
	if err != nil || v != 3 {
		t.Errorf("C = %d (%v), want 3", v, err)
	}
}

func TestRunOverlapsIndependentStages(t *testing.T) {
	// Two independent stages must be in flight simultaneously: each
	// waits for the other's side effect before returning.
	e := New(4)
	aArrived := make(chan struct{})
	bArrived := make(chan struct{})
	e.Add(Stage{Name: "a", Run: func(ctx context.Context, w int, s *Store) error {
		close(aArrived)
		select {
		case <-bArrived:
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("b never launched while a was running")
		}
	}})
	e.Add(Stage{Name: "b", Run: func(ctx context.Context, w int, s *Store) error {
		close(bArrived)
		select {
		case <-aArrived:
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("a never launched while b was running")
		}
	}})
	if err := e.Run(context.Background(), NewStore()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSplitsWorkerBudget(t *testing.T) {
	// Two stages launch together on a budget of 8: each should get 4.
	// A third stage, launching alone afterwards, should get the full 8.
	e := New(8)
	var wA, wB, wC atomic.Int64
	e.Add(Stage{Name: "a", Provides: []string{"A"}, Run: func(ctx context.Context, w int, s *Store) error {
		wA.Store(int64(w))
		s.Put("A", true)
		return nil
	}})
	e.Add(Stage{Name: "b", Provides: []string{"B"}, Run: func(ctx context.Context, w int, s *Store) error {
		wB.Store(int64(w))
		s.Put("B", true)
		return nil
	}})
	e.Add(Stage{Name: "c", Needs: []string{"A", "B"}, Run: func(ctx context.Context, w int, s *Store) error {
		wC.Store(int64(w))
		return nil
	}})
	if err := e.Run(context.Background(), NewStore()); err != nil {
		t.Fatal(err)
	}
	if wA.Load() != 4 || wB.Load() != 4 {
		t.Errorf("concurrent stages got %d and %d workers, want 4 and 4", wA.Load(), wB.Load())
	}
	if wC.Load() != 8 {
		t.Errorf("solo stage got %d workers, want 8", wC.Load())
	}
}

func TestRunStopsLaunchingAfterError(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	var ran atomic.Bool
	e.Add(Stage{Name: "a", Provides: []string{"A"}, Run: func(ctx context.Context, w int, s *Store) error {
		return boom
	}})
	e.Add(Stage{Name: "b", Needs: []string{"A"}, Run: func(ctx context.Context, w int, s *Store) error {
		ran.Store(true)
		return nil
	}})
	err := e.Run(context.Background(), NewStore())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() {
		t.Error("downstream stage ran after its dependency failed")
	}
}

func TestRunReturnsFirstErrorInAddOrder(t *testing.T) {
	// Both independent stages fail; the error of the stage added first
	// wins regardless of completion order.
	e := New(4)
	first := errors.New("first")
	second := errors.New("second")
	e.Add(Stage{Name: "a", Run: func(ctx context.Context, w int, s *Store) error {
		time.Sleep(20 * time.Millisecond)
		return first
	}})
	e.Add(Stage{Name: "b", Run: func(ctx context.Context, w int, s *Store) error {
		return second
	}})
	if err := e.Run(context.Background(), NewStore()); !errors.Is(err, first) {
		t.Errorf("err = %v, want first", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var order []string
	var mu sync.Mutex
	e := linear(&order, &mu)
	err := e.Run(ctx, NewStore())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(order) != 0 {
		t.Errorf("stages %v ran under a canceled context", order)
	}
}

func TestRunDetectsUnsatisfiableGraph(t *testing.T) {
	e := New(1)
	e.Add(Stage{Name: "a", Needs: []string{"missing"}, Run: func(ctx context.Context, w int, s *Store) error {
		return nil
	}})
	if err := e.Run(context.Background(), NewStore()); err == nil {
		t.Fatal("unsatisfiable need should fail validation")
	}
}

func TestRunDetectsCycle(t *testing.T) {
	e := New(2)
	noop := func(ctx context.Context, w int, s *Store) error { return nil }
	e.Add(Stage{Name: "a", Needs: []string{"B"}, Provides: []string{"A"}, Run: noop})
	e.Add(Stage{Name: "b", Needs: []string{"A"}, Provides: []string{"B"}, Run: noop})
	err := e.Run(context.Background(), NewStore())
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("err = %v, want blocked-stages error", err)
	}
}

func TestRunDetectsDuplicateProvider(t *testing.T) {
	e := New(1)
	noop := func(ctx context.Context, w int, s *Store) error { return nil }
	e.Add(Stage{Name: "a", Provides: []string{"X"}, Run: noop})
	e.Add(Stage{Name: "b", Provides: []string{"X"}, Run: noop})
	if err := e.Run(context.Background(), NewStore()); err == nil {
		t.Fatal("duplicate provider should fail validation")
	}
}

func TestRunRepanicsStagePanic(t *testing.T) {
	e := New(2)
	e.Add(Stage{Name: "a", Run: func(ctx context.Context, w int, s *Store) error {
		panic("stage blew up")
	}})
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected repanic")
		}
	}()
	_ = e.Run(context.Background(), NewStore())
}

func TestRunSeededStore(t *testing.T) {
	e := New(1)
	e.Add(Stage{Name: "a", Needs: []string{"seed"}, Run: func(ctx context.Context, w int, s *Store) error {
		v, err := Get[string](s, "seed")
		if err != nil {
			return err
		}
		if v != "hello" {
			return fmt.Errorf("seed = %q", v)
		}
		return nil
	}})
	store := NewStore()
	store.Put("seed", "hello")
	if err := e.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
}

func TestGetTypeMismatch(t *testing.T) {
	s := NewStore()
	s.Put("k", 42)
	if _, err := Get[string](s, "k"); err == nil {
		t.Error("type mismatch should error")
	}
	if _, err := Get[int](s, "absent"); err == nil {
		t.Error("missing key should error")
	}
	if v, err := Get[int](s, "k"); err != nil || v != 42 {
		t.Errorf("Get = %d, %v", v, err)
	}
}
