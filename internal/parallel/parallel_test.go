package parallel

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 4, 0}, {-1, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{8, 4, 2}, {9, 4, 3}, {7, 0, 7},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.grain); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 32} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]int32, n)
			For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestForWithWorkerState(t *testing.T) {
	var inits atomic.Int32
	n := 500
	out := make([]int, n)
	ForWith(4, n, func() *int {
		inits.Add(1)
		v := new(int)
		return v
	}, func(s *int, i int) {
		*s++
		out[i] = i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if got := inits.Load(); got < 1 || got > 4 {
		t.Errorf("init called %d times, want 1..4", got)
	}
}

func TestForRangeChunkLayout(t *testing.T) {
	n, grain := 103, 10
	covered := make([]int32, n)
	var starts atomic.Int32
	ForRange(8, n, grain, func(start, end int) {
		starts.Add(1)
		if start%grain != 0 {
			t.Errorf("chunk start %d not grain-aligned", start)
		}
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, h := range covered {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
	if got := starts.Load(); got != 11 {
		t.Errorf("chunks = %d, want 11", got)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom")
	for _, w := range []int{1, 4} {
		err := ForErr(w, 100, func(i int) error {
			if i == 13 || i == 77 {
				return errors.New("late")
			}
			if i == 7 {
				return wantErr
			}
			return nil
		})
		if err != wantErr {
			t.Errorf("workers=%d: err = %v, want lowest-index error", w, err)
		}
	}
	if err := ForErr(4, 50, func(int) error { return nil }); err != nil {
		t.Errorf("clean run err = %v", err)
	}
}

// TestOrderedReduceDeterministic is the core contract: a floating-point
// reduction gives bit-identical results at every concurrency level.
func TestOrderedReduceDeterministic(t *testing.T) {
	n := 10007
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * math.Exp(float64(i%97)/13)
	}
	sum := func(workers int) float64 {
		return OrderedReduce(workers, n, 64, 0.0,
			func(start, end int) float64 {
				var s float64
				for i := start; i < end; i++ {
					s += vals[i]
				}
				return s
			},
			func(acc, part float64) float64 { return acc + part })
	}
	base := sum(1)
	for _, w := range []int{2, 3, 8, 16} {
		if got := sum(w); got != base {
			t.Errorf("workers=%d: sum %v != serial %v (diff %g)", w, got, base, got-base)
		}
	}
}

func TestGroupCollectsFirstErrorInGoOrder(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	var g Group
	g.Go(func() error { return nil })
	g.Go(func() error { return e1 })
	g.Go(func() error { return e2 })
	if err := g.Wait(); err != e1 {
		t.Errorf("Wait = %v, want first added error", err)
	}
	var ok Group
	ok.Go(func() error { return nil })
	if err := ok.Wait(); err != nil {
		t.Errorf("clean Wait = %v", err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(errFromPanic(r), "kaboom") {
			t.Errorf("panic value %v does not carry cause", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 42 {
			panic("kaboom")
		}
	})
}

func TestGroupPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("group panic did not propagate")
		}
	}()
	var g Group
	g.Go(func() error { panic("exploded") })
	_ = g.Wait()
}

func errFromPanic(r any) string {
	if err, ok := r.(error); ok {
		return err.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return ""
}
