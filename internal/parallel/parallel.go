// Package parallel is the concurrency substrate of the cleaning
// pipeline: a bounded worker pool exposed as chunked parallel-for
// loops, order-stable reductions, and an errgroup-style join, all with
// a per-call concurrency override.
//
// Every helper obeys one contract: the result is byte-identical no
// matter how many workers run. Disjoint-write loops (For, ForWith,
// ForRange) get this for free because every index writes only its own
// output slot. Reductions (OrderedReduce) get it by fixing the chunk
// decomposition as a function of the input size alone — never of the
// worker count — and folding the per-chunk partial results in chunk
// order on a single goroutine. Floating-point reductions therefore
// produce the same bits at concurrency 1 and concurrency N, which is
// what lets the pipeline promise "same output, any core count" and
// what the determinism tests across the repository enforce.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a concurrency setting: n when positive, otherwise
// GOMAXPROCS. This is the pipeline-wide meaning of a zero
// Options.Concurrency.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// NumChunks returns the number of grain-sized chunks covering n items.
// It depends only on n and grain, never on the worker count, so chunk
// layouts — and any reduction folded in chunk order — are stable across
// concurrency levels.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// run fans fn out over chunk indexes [0, chunks) on w workers and
// repanics the first worker panic on the calling goroutine.
func run(w, chunks int, fn func(chunk int)) {
	if chunks <= 0 {
		return
	}
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			fn(c)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				v := any(fmt.Errorf("parallel: worker panic: %v", r))
				panicked.CompareAndSwap(nil, &v)
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			fn(c)
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go body()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
}

// For runs fn(i) for every i in [0, n) using up to workers goroutines
// (0 means GOMAXPROCS). fn must write only to state owned by index i;
// under that contract the result is identical at any concurrency.
func For(workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Batch index claims to cut contention; batching only affects
	// scheduling, not output, so it may depend on the worker count.
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	chunks := NumChunks(n, grain)
	run(w, chunks, func(c int) {
		start := c * grain
		end := start + grain
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForWith is For with worker-local state: each worker calls init once
// and passes the value to every fn it runs. Use it for scratch buffers
// or per-worker model replicas that are expensive to build per item.
func ForWith[S any](workers, n int, init func() S, fn func(s S, i int)) {
	w := Workers(workers)
	if w <= 1 || n <= 1 {
		if n <= 0 {
			return
		}
		s := init()
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		return
	}
	grain := n / (w * 8)
	if grain < 1 {
		grain = 1
	}
	chunks := NumChunks(n, grain)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	if w > chunks {
		w = chunks
	}
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				v := any(fmt.Errorf("parallel: worker panic: %v", r))
				panicked.CompareAndSwap(nil, &v)
			}
		}()
		s := init()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			start := c * grain
			end := start + grain
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(s, i)
			}
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go body()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
}

// ForRange splits [0, n) into grain-sized chunks (grain ≤ 0 means one
// chunk per worker-batch, like For) and runs fn(start, end) per chunk.
// The chunk layout depends only on n and grain, so per-chunk outputs
// land identically at any concurrency.
func ForRange(workers, n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := NumChunks(n, grain)
	run(Workers(workers), chunks, func(c int) {
		start := c * grain
		end := start + grain
		if end > n {
			end = n
		}
		fn(start, end)
	})
}

// ForErr runs fn(i) for every i in [0, n) and returns the error with
// the lowest index, or nil. Every index is attempted (fn itself should
// observe cancellation and return fast), which is what makes the
// returned error deterministic.
func ForErr(workers, n int, fn func(i int) error) error {
	var (
		mu     sync.Mutex
		minIdx = n
		first  error
	)
	For(workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < minIdx {
				minIdx, first = i, err
			}
			mu.Unlock()
		}
	})
	return first
}

// OrderedReduce maps grain-sized chunks of [0, n) in parallel and folds
// the partial results in ascending chunk order on one goroutine:
//
//	acc = reduce(...reduce(reduce(zero, part₀), part₁)..., partₖ)
//
// Because the chunk layout is worker-independent and the fold is
// sequential, floating-point reductions are bit-identical at any
// concurrency level.
func OrderedReduce[T any](workers, n, grain int, zero T, mapf func(start, end int) T, reduce func(acc, part T) T) T {
	if n <= 0 {
		return zero
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := NumChunks(n, grain)
	parts := make([]T, chunks)
	run(Workers(workers), chunks, func(c int) {
		start := c * grain
		end := start + grain
		if end > n {
			end = n
		}
		parts[c] = mapf(start, end)
	})
	acc := zero
	for _, p := range parts {
		acc = reduce(acc, p)
	}
	return acc
}

// Group is an errgroup-style join for heterogeneous pipeline stages:
// every added function runs on its own goroutine, Wait blocks for all
// of them and returns the first error in Go-call order (deterministic
// when each stage's own error is).
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	pan  atomic.Pointer[any]
}

// Go launches fn on a new goroutine.
func (g *Group) Go(fn func() error) {
	g.mu.Lock()
	slot := len(g.errs)
	g.errs = append(g.errs, nil)
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				v := any(fmt.Errorf("parallel: group panic: %v", r))
				g.pan.CompareAndSwap(nil, &v)
			}
		}()
		err := fn()
		g.mu.Lock()
		g.errs[slot] = err
		g.mu.Unlock()
	}()
}

// Wait blocks until every added function returns, repanicking the
// first captured panic, then returns the first non-nil error in the
// order the functions were added.
func (g *Group) Wait() error {
	g.wg.Wait()
	if p := g.pan.Load(); p != nil {
		panic(*p)
	}
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
