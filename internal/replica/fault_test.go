package replica

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func faultServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFaultTransportPassThrough(t *testing.T) {
	ts := faultServer(t, "hello")
	ft := &FaultTransport{}
	client := &http.Client{Transport: ft}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(b) != "hello" {
		t.Fatalf("pass-through read = %q, %v", b, err)
	}
	if ft.Requests() != 1 || ft.Injected() != 0 {
		t.Fatalf("counters = %d requests, %d injected", ft.Requests(), ft.Injected())
	}
}

func TestFaultTransportDropAndStatus(t *testing.T) {
	ts := faultServer(t, "hello")
	ft := &FaultTransport{}
	ft.SetDecide(FaultFirst(1, Fault{Err: syscall.ECONNRESET}))
	client := &http.Client{Transport: ft}
	if _, err := client.Get(ts.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("dropped request error = %v", err)
	}
	ft.SetDecide(FaultAll(Fault{Status: http.StatusBadGateway}))
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("synthetic status = %d", resp.StatusCode)
	}
	if ft.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", ft.Injected())
	}
}

func TestFaultTransportTruncatesBody(t *testing.T) {
	ts := faultServer(t, strings.Repeat("x", 1024))
	ft := &FaultTransport{}
	ft.SetDecide(FaultAll(Fault{TruncateBody: 16}))
	client := &http.Client{Transport: ft}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v (read %d bytes)", err, len(b))
	}
	if len(b) != 16 {
		t.Fatalf("read %d bytes before the cut, want 16", len(b))
	}
}

func TestFaultTransportStallRespectsContext(t *testing.T) {
	ts := faultServer(t, "hello")
	ft := &FaultTransport{}
	ft.SetDecide(FaultAll(Fault{Stall: time.Hour}))
	client := &http.Client{Transport: ft}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("stalled request did not fail with the context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall outlived its context: %s", elapsed)
	}
}

// TestClientRetriesThroughTransientFaults drives the real client
// backoff: the first attempts die (reset, then 502) and the request
// still completes on a later attempt.
func TestClientRetriesThroughTransientFaults(t *testing.T) {
	ts := faultServer(t, `{"generation":1,"checkpointSeq":1,"files":[{"name":"a","size":1,"crc32c":1}]}`)
	c := NewClient(ts.URL)
	c.SetRetry(4, time.Millisecond)
	ft := &FaultTransport{}
	c.SetTransport(ft)
	ft.SetDecide(func(n int64, _ *http.Request) Fault {
		switch n {
		case 1:
			return Fault{Err: syscall.ECONNRESET}
		case 2:
			return Fault{Status: http.StatusBadGateway}
		}
		return Fault{}
	})
	rm, err := c.Manifest(context.Background())
	if err != nil {
		t.Fatalf("manifest through transient faults: %v", err)
	}
	if rm.Generation != 1 {
		t.Fatalf("manifest generation = %d", rm.Generation)
	}
	if ft.Requests() != 3 || ft.Injected() != 2 {
		t.Fatalf("counters = %d requests, %d injected; want 3, 2", ft.Requests(), ft.Injected())
	}
}

// TestClientExhaustsRetries: a hard outage surfaces as an error after
// the retry budget, not a hang.
func TestClientExhaustsRetries(t *testing.T) {
	ts := faultServer(t, "hello")
	c := NewClient(ts.URL)
	c.SetRetry(3, time.Millisecond)
	ft := &FaultTransport{}
	c.SetTransport(ft)
	ft.SetDecide(FaultAll(Fault{Status: http.StatusServiceUnavailable}))
	if _, err := c.Manifest(context.Background()); err == nil {
		t.Fatal("hard 503 outage did not error")
	}
	if ft.Requests() != 3 {
		t.Fatalf("attempts = %d, want the full retry budget of 3", ft.Requests())
	}
}

func TestLogRetryAfterCapped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "86400")
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	chunk, err := NewClient(ts.URL).Log(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !chunk.AtWatermark {
		t.Fatal("204 did not decode as AtWatermark")
	}
	if chunk.RetryAfter != maxRetryAfter {
		t.Fatalf("RetryAfter = %s, want capped at %s", chunk.RetryAfter, maxRetryAfter)
	}
}

func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		j := jitter(d)
		if j < d/2 || j >= d {
			t.Fatalf("jitter(%s) = %s out of [%s, %s)", d, j, d/2, d)
		}
	}
	if jitter(0) != 0 || jitter(1) != 1 {
		t.Fatal("jitter must pass tiny delays through")
	}
}
