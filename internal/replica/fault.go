package replica

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injected network failure. Zero value means "pass the
// request through untouched". Fields compose in order: Stall delays,
// then Err aborts, then Status substitutes, then TruncateBody cuts the
// real response short.
type Fault struct {
	// Stall delays the request (bounded by the request context), as a
	// saturated primary or a lossy path would.
	Stall time.Duration
	// Err fails the round trip before any response — a connection
	// reset, refused connect, or mid-flight drop.
	Err error
	// Status substitutes a synthetic response with this status code and
	// a short body, as a fronting proxy returning 502/503 would.
	Status int
	// TruncateBody cuts the real response body after this many bytes
	// and ends it with io.ErrUnexpectedEOF — a connection torn down
	// mid-transfer. Zero means no truncation (use a negative value to
	// truncate at zero bytes).
	TruncateBody int64
}

func (f Fault) empty() bool {
	return f.Stall == 0 && f.Err == nil && f.Status == 0 && f.TruncateBody == 0
}

// FaultTransport is an http.RoundTripper that injects failures into a
// replication client's requests. It is the follower-side mirror of the
// store's fsio.Injector: deterministic, per-request fault decisions
// over the real transport, so tests can subject the bootstrap and tail
// paths to resets, 5xx storms, truncated bodies and stalls without a
// flaky network in the loop.
type FaultTransport struct {
	// Base performs real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	mu     sync.Mutex
	decide func(n int64, req *http.Request) Fault

	requests atomic.Int64
	injected atomic.Int64
}

// SetDecide installs (or, with nil, removes) the fault decider. It is
// called with the 1-based request ordinal and the outgoing request;
// whatever it returns is injected.
func (t *FaultTransport) SetDecide(decide func(n int64, req *http.Request) Fault) {
	t.mu.Lock()
	t.decide = decide
	t.mu.Unlock()
}

// Requests returns how many round trips were attempted through the
// transport; Injected counts the ones that carried a fault.
func (t *FaultTransport) Requests() int64 { return t.requests.Load() }
func (t *FaultTransport) Injected() int64 { return t.injected.Load() }

func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.requests.Add(1)
	t.mu.Lock()
	decide := t.decide
	t.mu.Unlock()
	var f Fault
	if decide != nil {
		f = decide(n, req)
	}
	if !f.empty() {
		t.injected.Add(1)
	}
	if f.Stall > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.Stall):
		}
	}
	if f.Err != nil {
		return nil, f.Err
	}
	if f.Status != 0 {
		return &http.Response{
			StatusCode: f.Status,
			Status:     http.StatusText(f.Status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(bytes.NewReader([]byte("injected fault\n"))),
			Request: req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || f.TruncateBody == 0 {
		return resp, err
	}
	limit := f.TruncateBody
	if limit < 0 {
		limit = 0
	}
	resp.Body = &truncatedBody{body: resp.Body, remaining: limit}
	resp.ContentLength = -1
	return resp, nil
}

// truncatedBody yields at most remaining bytes of the underlying body
// and then fails with io.ErrUnexpectedEOF, the error a real torn
// connection surfaces through the HTTP client.
type truncatedBody struct {
	body      io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.body.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended within the budget; no fault to inject.
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.body.Close() }

// FaultFirst injects f into the first k requests and passes the rest —
// the shape of a transient outage that heals while the client retries.
func FaultFirst(k int64, f Fault) func(n int64, req *http.Request) Fault {
	return func(n int64, _ *http.Request) Fault {
		if n <= k {
			return f
		}
		return Fault{}
	}
}

// FaultAll injects f into every request — a hard outage until the
// decider is replaced.
func FaultAll(f Fault) func(n int64, req *http.Request) Fault {
	return func(int64, *http.Request) Fault { return f }
}
