// Package replica is the follower side of nvdserve's replication
// stream: an HTTP client for the /replicate surface a primary daemon
// exposes from its internal/store ReplicationSource.
//
// The wire protocol is deliberately dumb — three GET endpoints over
// the store's native artifacts:
//
//	/replicate/manifest            the ReplicationManifest (JSON)
//	/replicate/checkpoint/{file}   one checkpoint file, verbatim bytes
//	/replicate/log?from={seq}      segment bytes from a cursor; a
//	                               Range: bytes=N- header resumes
//	                               mid-segment
//
// Every response that carries stream bytes is re-verified on the
// follower: checkpoint files against the manifest's CRC-32C sums as
// they stream (CheckpointFile), and log bytes by re-running the frame
// scanner when the store appends them — the client trusts the network
// for liveness only, never for integrity.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nvdclean/internal/store"
)

// Paths and headers of the /replicate surface, shared by the client
// and the primary's handlers so they cannot drift.
const (
	ManifestPath         = "/replicate/manifest"
	CheckpointPathPrefix = "/replicate/checkpoint/"
	LogPath              = "/replicate/log"

	// HeaderSealed ("1"/"0") reports whether the served segment is
	// sealed: a sealed segment with no bytes past the cursor tells the
	// follower to seal its own copy and advance to the successor.
	HeaderSealed = "X-Nvdserve-Sealed"
	// HeaderWatermark is the primary's committed checkpoint watermark;
	// sent on every log response (including 204/410) so followers can
	// tell how far behind a retirement they fell.
	HeaderWatermark = "X-Nvdserve-Watermark"
	// HeaderWALSeq is the primary's active segment seq.
	HeaderWALSeq = "X-Nvdserve-Wal-Seq"
)

// LogChunk is one /replicate/log response decoded.
type LogChunk struct {
	// Data holds committed frame bytes from the cursor on; empty when
	// the follower is caught up (AtWatermark) or the segment ended
	// exactly at the cursor (Sealed with no Data).
	Data []byte
	// Sealed reports the served segment sealed: once Data is consumed
	// the follower seals its copy and advances to seq+1.
	Sealed bool
	// AtWatermark reports a 204: the cursor is at the committed end of
	// the active segment; poll again after RetryAfter.
	AtWatermark bool
	// Retired reports a 410: the cursor's segment is folded into the
	// primary's checkpoint. The follower must re-bootstrap from a fresh
	// manifest.
	Retired bool
	// Watermark and WALSeq mirror the primary's stream headers.
	Watermark uint64
	WALSeq    uint64
	// RetryAfter is the primary's suggested poll delay (zero when the
	// response carried none).
	RetryAfter time.Duration
}

// Client fetches the replication surface of one primary. It retries
// transient failures (network errors, 5xx) with exponential backoff
// internally; protocol outcomes (204, 410) are returned as LogChunk
// flags, not errors.
type Client struct {
	base string
	http *http.Client
	// retries is the number of attempts per request; backoff is the
	// initial inter-attempt delay, doubling each time.
	retries int
	backoff time.Duration
}

// NewClient returns a Client for the primary at base (scheme://host
// [:port], no trailing slash needed).
func NewClient(base string) *Client {
	return &Client{
		base:    strings.TrimRight(base, "/"),
		http:    &http.Client{Timeout: 5 * time.Minute},
		retries: 3,
		backoff: 200 * time.Millisecond,
	}
}

// Base returns the primary base URL the client was built with.
func (c *Client) Base() string { return c.base }

// SetTransport replaces the underlying HTTP transport — the seam a
// fault-injection layer (FaultTransport) or a custom TLS/proxy config
// plugs into.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.http.Transport = rt
}

// SetRetry overrides the per-request retry budget: attempts per
// request and the initial inter-attempt delay (doubling, jittered).
func (c *Client) SetRetry(attempts int, backoff time.Duration) {
	if attempts > 0 {
		c.retries = attempts
	}
	if backoff > 0 {
		c.backoff = backoff
	}
}

// maxRetryAfter caps the poll delay a primary's Retry-After header can
// impose: a misconfigured (or compromised) primary must not be able to
// park a whole follower fleet for minutes with one header.
const maxRetryAfter = 30 * time.Second

// jitter spreads a retry delay over [d/2, d) so followers that failed
// on the same primary outage do not reconnect in lockstep and stampede
// it the instant it returns.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half)
}

// retryable reports whether an attempt outcome is worth another try:
// transport errors and 5xx statuses are; context cancellation and
// protocol statuses are not.
func retryable(err error, status int) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return status >= 500
}

// do issues one GET with retries. On success the caller owns resp.Body.
func (c *Client) do(ctx context.Context, url string, header http.Header) (*http.Response, error) {
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(jitter(delay)):
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		for k, v := range header {
			req.Header[k] = v
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			if !retryable(err, 0) {
				return nil, err
			}
			continue
		}
		if retryable(nil, resp.StatusCode) {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("replica: %s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Manifest fetches and decodes the primary's replication manifest.
func (c *Client) Manifest(ctx context.Context) (*store.ReplicationManifest, error) {
	resp, err := c.do(ctx, c.base+ManifestPath, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: manifest: %s", resp.Status)
	}
	var rm store.ReplicationManifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rm); err != nil {
		return nil, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	if rm.Generation == 0 || len(rm.Files) == 0 {
		return nil, fmt.Errorf("replica: manifest names no checkpoint")
	}
	return &rm, nil
}

// CheckpointFile streams one checkpoint file, verifying its size and
// CRC-32C against mf as the bytes pass through: the returned reader
// yields an error before EOF if the body does not match, so a store
// installing through it never accepts a corrupt file.
func (c *Client) CheckpointFile(ctx context.Context, mf store.ManifestFile) (io.ReadCloser, error) {
	resp, err := c.do(ctx, c.base+CheckpointPathPrefix+mf.Name, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("replica: checkpoint file %s: %s", mf.Name, resp.Status)
	}
	return &verifyReader{body: resp.Body, crc: crc32.New(crc32.MakeTable(crc32.Castagnoli)), want: mf}, nil
}

// verifyReader re-verifies a checkpoint file against its manifest
// entry as it streams. It fails the read (not just the close) on
// mismatch so io.Copy-style consumers see the corruption.
type verifyReader struct {
	body io.ReadCloser
	crc  hash.Hash32
	n    int64
	want store.ManifestFile
}

func (v *verifyReader) Read(p []byte) (int, error) {
	n, err := v.body.Read(p)
	if n > 0 {
		v.crc.Write(p[:n])
		v.n += int64(n)
		if v.n > v.want.Size {
			return n, fmt.Errorf("replica: %s: body exceeds manifest size %d", v.want.Name, v.want.Size)
		}
	}
	if err == io.EOF {
		if v.n != v.want.Size {
			return n, fmt.Errorf("replica: %s: short body (%d of %d bytes)", v.want.Name, v.n, v.want.Size)
		}
		if v.crc.Sum32() != v.want.CRC32C {
			return n, fmt.Errorf("replica: %s: checksum mismatch (crc %08x, want %08x)", v.want.Name, v.crc.Sum32(), v.want.CRC32C)
		}
	}
	return n, err
}

func (v *verifyReader) Close() error { return v.body.Close() }

// Log fetches segment bytes from the cursor (seq, off). off > 0 is
// sent as a Range header, resuming mid-segment after a partial fetch
// or follower restart.
func (c *Client) Log(ctx context.Context, seq uint64, off int64) (*LogChunk, error) {
	url := fmt.Sprintf("%s%s?from=%d", c.base, LogPath, seq)
	var header http.Header
	if off > 0 {
		header = http.Header{"Range": []string{fmt.Sprintf("bytes=%d-", off)}}
	}
	resp, err := c.do(ctx, url, header)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	chunk := &LogChunk{
		Sealed:    resp.Header.Get(HeaderSealed) == "1",
		Watermark: parseUint(resp.Header.Get(HeaderWatermark)),
		WALSeq:    parseUint(resp.Header.Get(HeaderWALSeq)),
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		chunk.RetryAfter = min(time.Duration(ra)*time.Second, maxRetryAfter)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("replica: reading log segment %d: %w", seq, err)
		}
		chunk.Data = data
		return chunk, nil
	case http.StatusNoContent:
		chunk.AtWatermark = true
		return chunk, nil
	case http.StatusGone:
		chunk.Retired = true
		return chunk, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replica: log segment %d: %s (%s)", seq, resp.Status, strings.TrimSpace(string(body)))
	}
}

func parseUint(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}
