// Package textnorm provides the text normalization and string-similarity
// primitives used throughout the NVD cleaning pipeline: tokenization of
// vendor/product names, longest-common-substring and edit-distance
// computation for the naming heuristics of §4.2, and the description
// preprocessing (case folding, stopword removal, contraction expansion,
// tense normalization) used by the CWE type classifier of §4.4.
package textnorm

import (
	"strings"
	"unicode"
)

// Tokenize splits a name on whitespace and special characters, lowercasing
// each token. It implements the tokenization used by the product-name
// heuristic of §4.2: "internet-explorer", "internet_explorer" and
// "internet explorer" all tokenize to ["internet", "explorer"].
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	if b.Len() > 0 {
		tokens = append(tokens, b.String())
	}
	return tokens
}

// CanonicalTokens returns the tokenization of s joined by a single space.
// Two names are "token identical" (the Tokens pattern of Table 2) when
// their canonical token strings are equal: "avast" and "avast!" match, as
// do "bea_systems" and "bea systems".
func CanonicalTokens(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// StripSpecial removes every character that is not a letter or digit and
// lowercases the remainder. Names identical after StripSpecial differ only
// in special characters, the strongest matching signal in Table 2 (all 260
// such vendor pairs were confirmed matches).
func StripSpecial(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

// Abbreviation concatenates the first character of every token of s. The
// product heuristic of §4.2 compares Abbreviation("internet-explorer") =
// "ie" against single-token product names to catch abbreviated aliases.
func Abbreviation(s string) string {
	tokens := Tokenize(s)
	if len(tokens) < 2 {
		return ""
	}
	var b strings.Builder
	for _, t := range tokens {
		b.WriteByte(t[0])
	}
	return b.String()
}

// LongestCommonSubstring returns the length of the longest contiguous
// substring shared by a and b (both compared case-insensitively). Table 2
// splits the vendor-pair heuristics on |LCS| >= 3 versus |LCS| < 3.
func LongestCommonSubstring(a, b string) int {
	a = strings.ToLower(a)
	b = strings.ToLower(b)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Rolling single-row DP: prev[j] is the match length ending at a[i-1],
	// b[j-1].
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// EditDistance returns the Levenshtein distance between a and b: the
// minimum number of single-character insertions, deletions, and
// substitutions transforming a into b. The product heuristic of §4.2 flags
// pairs at distance 1 as candidate human-error typos (tbe_banner_engine vs
// the_banner_engine).
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// WithinEditDistance reports whether EditDistance(a, b) <= k without
// computing the full distance when the answer is clearly no. It is the
// hot-path form used when scanning all product-name pairs under a vendor.
func WithinEditDistance(a, b string, k int) bool {
	if abs(len(a)-len(b)) > k {
		return false
	}
	return EditDistance(a, b) <= k
}

// IsPrefix reports whether one name is a strict string prefix of the other
// (case-insensitive), the Pref pattern of Table 2 (lynx / lynx_project).
func IsPrefix(a, b string) bool {
	a = strings.ToLower(a)
	b = strings.ToLower(b)
	if a == b {
		return false
	}
	return strings.HasPrefix(a, b) || strings.HasPrefix(b, a)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
