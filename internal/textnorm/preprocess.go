package textnorm

import (
	"strings"
	"unicode"
)

// stopwords is the list of commonly used words removed from CVE
// descriptions before embedding (§4.4: "This capability can be accessed"
// becomes "capability access"). The list covers English function words;
// domain terms are intentionally kept.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "the": {}, "this": {}, "that": {}, "these": {},
	"those": {}, "is": {}, "are": {}, "was": {}, "were": {}, "be": {},
	"been": {}, "being": {}, "am": {}, "it": {}, "its": {}, "of": {},
	"in": {}, "on": {}, "at": {}, "by": {}, "to": {}, "for": {},
	"with": {}, "from": {}, "as": {}, "and": {}, "or": {}, "not": {},
	"no": {}, "can": {}, "could": {}, "may": {}, "might": {}, "will": {},
	"would": {}, "shall": {}, "should": {}, "do": {}, "does": {},
	"did": {}, "has": {}, "have": {}, "had": {}, "which": {}, "who": {},
	"whom": {}, "whose": {}, "what": {}, "when": {}, "where": {},
	"how": {}, "via": {}, "than": {}, "then": {}, "there": {},
	"their": {}, "they": {}, "them": {}, "he": {}, "she": {}, "his": {},
	"her": {}, "we": {}, "our": {}, "you": {}, "your": {}, "but": {},
	"if": {}, "so": {}, "such": {}, "into": {}, "onto": {}, "also": {},
	"other": {}, "before": {}, "after": {}, "during": {}, "while": {},
	"all": {}, "any": {}, "some": {}, "each": {}, "more": {}, "most": {},
	"only": {}, "own": {}, "same": {}, "both": {}, "between": {},
	"through": {}, "because": {}, "due": {}, "earlier": {},
}

// contractions maps possessive and contracted forms to their base word.
// §4.4 normalizes "identifier's" to "identifier".
var contractions = map[string]string{
	"n't": " not", "'re": " are", "'ve": " have", "'ll": " will",
	"'d": " would", "'m": " am", "'s": "", "s'": "s",
}

// irregularPast maps common irregular past-tense verbs seen in CVE
// descriptions to present tense (§4.4: "used" becomes "use").
var irregularPast = map[string]string{
	"was": "is", "were": "are", "had": "have", "did": "do",
	"sent": "send", "found": "find", "made": "make", "gave": "give",
	"took": "take", "got": "get", "ran": "run", "read": "read",
	"wrote": "write", "written": "write", "led": "lead", "built": "build",
	"broke": "break", "broken": "break", "chose": "choose",
	"chosen": "choose", "known": "know", "knew": "know", "seen": "see",
	"saw": "see", "held": "hold", "kept": "keep", "left": "leave",
	"lost": "lose", "meant": "mean", "put": "put", "set": "set",
	"shown": "show", "thought": "think", "caught": "catch",
	"brought": "bring",
}

// PresentTense heuristically converts a past-tense or participle token to
// present tense: irregular verbs via table lookup, then the regular
// "-ied" -> "-y" and "-ed" -> "" suffix rules with doubled-consonant
// handling ("permitted" -> "permit").
func PresentTense(w string) string {
	if base, ok := irregularPast[w]; ok {
		return base
	}
	switch {
	case strings.HasSuffix(w, "ied") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "eed"), strings.HasSuffix(w, "eed."):
		return w // "exceed", "succeed" are present tense.
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		stem := w[:len(w)-2]
		// Doubled final consonant: "permitted" -> "permit". Following the
		// Porter rule, l/s/z doubles are kept ("accessed" -> "access").
		n := len(stem)
		if n >= 2 && stem[n-1] == stem[n-2] && !isVowel(stem[n-1]) {
			switch stem[n-1] {
			case 'l', 's', 'z':
				return stem
			}
			return stem[:n-1]
		}
		// "used" -> "use": restore trailing 'e' when the stem ends in a
		// consonant cluster that needs it (heuristic: ends in s, c, g, v,
		// z, or single consonant after vowel).
		if n >= 2 && !isVowel(stem[n-1]) && isVowel(stem[n-2]) {
			switch stem[n-1] {
			case 's', 'c', 'g', 'v', 'z', 'u':
				return stem + "e"
			}
		}
		return stem
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// PreprocessDescription applies the §4.4 description pipeline: case
// folding, contraction expansion, special-character and stopword removal,
// and tense normalization. The result is the cleaned token stream fed to
// the text encoder.
func PreprocessDescription(s string) []string {
	s = strings.ToLower(s)
	for c, repl := range contractions {
		s = strings.ReplaceAll(s, c, repl)
	}
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		w := b.String()
		b.Reset()
		if _, stop := stopwords[w]; stop {
			return
		}
		w = PresentTense(w)
		if _, stop := stopwords[w]; stop {
			return
		}
		tokens = append(tokens, w)
	}
	for _, r := range s {
		// Keep CWE-123 style identifiers intact by keeping digits and
		// letters; hyphens and punctuation split tokens.
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return tokens
}

// IsStopword reports whether w (lowercase) is in the stopword list.
func IsStopword(w string) bool {
	_, ok := stopwords[strings.ToLower(w)]
	return ok
}
