package textnorm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"hyphen", "internet-explorer", "internet explorer"},
		{"underscore", "internet_explorer", "internet explorer"},
		{"space", "internet explorer", "internet explorer"},
		{"bang", "avast!", "avast"},
		{"mixed case", "Internet-Explorer", "internet explorer"},
		{"digits kept", "ucs-e160dp-m1_firmware", "ucs e160dp m1 firmware"},
		{"empty", "", ""},
		{"only specials", "!!__--", ""},
		{"leading special", "_lynx", "lynx"},
		{"trailing special", "lynx_", "lynx"},
		{"consecutive specials", "a__b", "a b"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := strings.Join(Tokenize(tt.in), " ")
			if got != tt.want {
				t.Errorf("Tokenize(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestCanonicalTokensEquivalence(t *testing.T) {
	// The three paper spellings of Internet Explorer must collide.
	forms := []string{"internet-explorer", "internet_explorer", "internet explorer", "Internet Explorer"}
	want := CanonicalTokens(forms[0])
	for _, f := range forms[1:] {
		if got := CanonicalTokens(f); got != want {
			t.Errorf("CanonicalTokens(%q) = %q, want %q", f, got, want)
		}
	}
}

func TestStripSpecial(t *testing.T) {
	tests := []struct{ in, want string }{
		{"avast!", "avast"},
		{"bea_systems", "beasystems"},
		{"BEA Systems", "beasystems"},
		{"", ""},
		{"a-b-c", "abc"},
	}
	for _, tt := range tests {
		if got := StripSpecial(tt.in); got != tt.want {
			t.Errorf("StripSpecial(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAbbreviation(t *testing.T) {
	tests := []struct{ in, want string }{
		{"internet-explorer", "ie"},
		{"lan_management_system", "lms"},
		{"single", ""}, // single token: no abbreviation
		{"", ""},
		{"tbe banner engine", "tbe"},
	}
	for _, tt := range tests {
		if got := Abbreviation(tt.in); got != tt.want {
			t.Errorf("Abbreviation(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"microsoft", "microsft", 6}, // "micros"
		{"bea", "bea_systems", 3},
		{"abc", "xyz", 0},
		{"", "abc", 0},
		{"abc", "", 0},
		{"same", "same", 4},
		{"Lynx", "lynx_project", 4}, // case-insensitive
		{"ab", "ba", 1},
	}
	for _, tt := range tests {
		if got := LongestCommonSubstring(tt.a, tt.b); got != tt.want {
			t.Errorf("LCS(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLongestCommonSubstringSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return LongestCommonSubstring(a, b) == LongestCommonSubstring(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLongestCommonSubstringBounds(t *testing.T) {
	f := func(a, b string) bool {
		got := LongestCommonSubstring(a, b)
		return got >= 0 && got <= len(a) && got <= len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"microsoft", "microsft", 1},
		{"tbe_banner_engine", "the_banner_engine", 1},
		{"ucs-e160dp-m1_firmware", "ucs-e140dp-m1_firmware", 1},
		{"kitten", "sitting", 3},
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
	}
	for _, tt := range tests {
		if got := EditDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEditDistanceMetricProperties(t *testing.T) {
	sym := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestWithinEditDistance(t *testing.T) {
	if !WithinEditDistance("abc", "abd", 1) {
		t.Error("abc/abd should be within distance 1")
	}
	if WithinEditDistance("abc", "abcdef", 1) {
		t.Error("length gap 3 cannot be within distance 1")
	}
	if WithinEditDistance("kitten", "sitting", 2) {
		t.Error("kitten/sitting is distance 3")
	}
}

func TestIsPrefix(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"lynx", "lynx_project", true},
		{"lynx_project", "lynx", true},
		{"Lynx", "lynx_project", true},
		{"lynx", "lynx", false}, // strict: identical names are not a prefix pair
		{"abc", "xyz", false},
	}
	for _, tt := range tests {
		if got := IsPrefix(tt.a, tt.b); got != tt.want {
			t.Errorf("IsPrefix(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPresentTense(t *testing.T) {
	tests := []struct{ in, want string }{
		{"used", "use"},
		{"accessed", "access"},
		{"permitted", "permit"},
		{"found", "find"},
		{"denied", "deny"},
		{"was", "is"},
		{"run", "run"},
		{"overflow", "overflow"},
	}
	for _, tt := range tests {
		if got := PresentTense(tt.in); got != tt.want {
			t.Errorf("PresentTense(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPreprocessDescription(t *testing.T) {
	got := PreprocessDescription("This capability can be accessed")
	want := []string{"capability", "access"}
	if len(got) != len(want) {
		t.Fatalf("PreprocessDescription = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPreprocessDescriptionPossessive(t *testing.T) {
	got := PreprocessDescription("the identifier's value")
	joined := strings.Join(got, " ")
	if strings.Contains(joined, "identifiers") {
		t.Errorf("possessive not stripped: %v", got)
	}
	if !strings.Contains(joined, "identifier") {
		t.Errorf("base word missing: %v", got)
	}
}

func TestPreprocessKeepsDomainTerms(t *testing.T) {
	got := strings.Join(PreprocessDescription("SQL injection in the login page allows remote attackers"), " ")
	for _, w := range []string{"sql", "injection", "login", "remote", "attacker"} {
		if !strings.Contains(got, w) {
			t.Errorf("domain term %q dropped: %v", w, got)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") {
		t.Error("The should be a stopword")
	}
	if IsStopword("overflow") {
		t.Error("overflow should not be a stopword")
	}
}

func BenchmarkEditDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EditDistance("ucs-e160dp-m1_firmware", "ucs-e140dp-m1_firmware")
	}
}

func BenchmarkLongestCommonSubstring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LongestCommonSubstring("lan_management_system", "lms_management")
	}
}
