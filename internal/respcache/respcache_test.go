package respcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEntryCacheSingleflight proves a hot ID encodes exactly once no
// matter how many requests race the first hit.
func TestEntryCacheSingleflight(t *testing.T) {
	m := &Metrics{}
	c := NewEntryCache(m)
	var encodes atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	results := make([][]byte, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get("CVE-2017-0001", func() []byte {
				encodes.Add(1)
				return []byte("encoded")
			})
		}(i)
	}
	wg.Wait()
	if n := encodes.Load(); n != 1 {
		t.Fatalf("hot ID encoded %d times, want 1", n)
	}
	for i, b := range results {
		if string(b) != "encoded" {
			t.Fatalf("goroutine %d got %q", i, b)
		}
	}
	if hits, misses := m.EntryHits.Load(), m.EntryMisses.Load(); misses != 1 || hits != goroutines-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
}

// TestEntryCacheSeed proves seeding shares bytes for kept IDs and
// drops the rest, without the previous cache ever being modified.
func TestEntryCacheSeed(t *testing.T) {
	m := &Metrics{}
	prev := NewEntryCache(m)
	prev.Get("keep", func() []byte { return []byte("kept bytes") })
	prev.Get("drop", func() []byte { return []byte("stale bytes") })

	next := NewEntryCache(m)
	next.Seed(prev, func(id string) bool { return id == "keep" })
	if next.Len() != 1 {
		t.Fatalf("seeded %d entries, want 1", next.Len())
	}
	// The kept entry is shared, not re-encoded: the encode func must
	// never run.
	b := next.Get("keep", func() []byte {
		t.Fatal("seeded entry was re-encoded")
		return nil
	})
	if string(b) != "kept bytes" {
		t.Fatalf("seeded bytes = %q", b)
	}
	// The dropped entry re-encodes in the new generation.
	if b := next.Get("drop", func() []byte { return []byte("fresh bytes") }); string(b) != "fresh bytes" {
		t.Fatalf("dropped entry served %q, want a fresh encode", b)
	}
	// The previous generation still serves its own bytes.
	if b := prev.Peek("drop"); string(b) != "stale bytes" {
		t.Fatalf("previous generation mutated: %q", b)
	}
}

// TestQueryCacheLRU proves the byte cap evicts least-recently-used
// responses and recency is refreshed by Get.
func TestQueryCacheLRU(t *testing.T) {
	m := &Metrics{}
	c := NewQueryCache(30, m)
	put := func(k string) { c.Put(k, []byte("0123456789")) } // 10 bytes each
	put("a")
	put("b")
	put("c")
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("len=%d bytes=%d, want 3/30", c.Len(), c.Bytes())
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put("d")
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want only b", k)
		}
	}
	if ev := m.QueryEvictions.Load(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// A response larger than the whole cap is never stored.
	c.Put("huge", make([]byte, 31))
	if b := c.Peek("huge"); b != nil {
		t.Error("over-cap response was stored")
	}
}

// TestQueryCacheDisabled proves maxBytes <= 0 turns the cache off
// entirely.
func TestQueryCacheDisabled(t *testing.T) {
	c := NewQueryCache(0, &Metrics{})
	c.Put("k", []byte("bytes"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache served a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("disabled cache stored len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestQueryCacheBytesSaved proves the bytes-saved counter sums the
// encoded length of every hit.
func TestQueryCacheBytesSaved(t *testing.T) {
	m := &Metrics{}
	c := NewQueryCache(1<<20, m)
	c.Put("k", []byte("ten bytes!"))
	for i := 0; i < 3; i++ {
		if _, ok := c.Get("k"); !ok {
			t.Fatal("miss on cached key")
		}
	}
	if saved := m.QueryBytesSaved.Load(); saved != 30 {
		t.Errorf("bytes saved = %d, want 30", saved)
	}
	if hits, misses := m.QueryHits.Load(), m.QueryMisses.Load(); hits != 3 || misses != 0 {
		t.Errorf("hits=%d misses=%d, want 3/0", hits, misses)
	}
}

// TestQueryCacheConcurrent hammers mixed Get/Put from many goroutines
// (meaningful under -race) and then checks the size invariant held.
func TestQueryCacheConcurrent(t *testing.T) {
	m := &Metrics{}
	c := NewQueryCache(200, m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", (g+i)%20)
				if _, ok := c.Get(k); !ok {
					c.Put(k, []byte(k))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 200 {
		t.Fatalf("cache exceeded cap: %d bytes", c.Bytes())
	}
}
