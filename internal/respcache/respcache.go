// Package respcache caches pre-encoded HTTP response bytes for one
// serving generation of nvdserve.
//
// The server swaps immutable generations atomically, which gives every
// cache here a free coherence epoch: a response is a pure function of
// (request, generation), so a cache owned by the generation can never
// serve stale bytes — the swap that changes the answer also retires
// the cache. Nothing in this package watches for invalidation; it
// relies entirely on that ownership.
//
// Two shapes are provided:
//
//   - EntryCache: an unbounded lazily-filled map for /cve/{id}. The
//     first hit on an ID encodes the response once (a singleflight
//     collapses concurrent encoders of a hot ID) and every later hit
//     is a map lookup. Incremental generations seed their cache with
//     the previous generation's bytes for entries the swap did not
//     touch — the same copy-on-write sharing the query-index shards
//     use — so a swap does not re-pay the encode for the unchanged
//     99% of a daily delta.
//
//   - QueryCache: a byte-bounded LRU for /query responses keyed by
//     the canonicalized parameter set. Query results are larger and
//     the key space is open-ended (attacker-sized, even), so this
//     cache is capped and evicting where the entry cache is not.
//
// Both report into a shared Metrics struct that outlives generations,
// so /stats counters are cumulative across swaps.
package respcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Metrics holds cumulative cache counters. One Metrics instance is
// shared by every generation's caches so the numbers survive swaps.
// All fields are atomics; read them with Load. These atomics are the
// single source of truth for the cache counters on BOTH operational
// surfaces — the /stats JSON and the Prometheus /metrics families
// (re-exported there through sample-at-scrape closures, never copied)
// — so the two can never disagree and nothing resets on a swap.
type Metrics struct {
	// EntryHits / EntryMisses count /cve/{id} lookups served from vs
	// filled into the entry cache. A seeded (copied-forward) byte
	// slice counts as a hit when it is next requested.
	EntryHits   atomic.Int64
	EntryMisses atomic.Int64
	// QueryHits / QueryMisses / QueryEvictions count /query cache
	// traffic; QueryBytesSaved sums the response bytes served from
	// cache instead of re-rendered.
	QueryHits       atomic.Int64
	QueryMisses     atomic.Int64
	QueryEvictions  atomic.Int64
	QueryBytesSaved atomic.Int64
	// NotModified counts 304 responses; NotModifiedBytes sums the
	// representation bytes those responses did not resend (known only
	// when the representation was already cached).
	NotModified      atomic.Int64
	NotModifiedBytes atomic.Int64
}

// call is one in-flight singleflight encode.
type call struct {
	done chan struct{}
	b    []byte
}

// EntryCache memoizes encoded /cve/{id} responses for one generation.
// Entries are immutable once stored; the cache only grows (bounded by
// the number of CVEs in the generation, each response a few KB).
type EntryCache struct {
	m *Metrics

	mu       sync.RWMutex
	done     map[string][]byte
	inflight map[string]*call
}

// NewEntryCache returns an empty cache reporting into m.
func NewEntryCache(m *Metrics) *EntryCache {
	return &EntryCache{
		m:        m,
		done:     make(map[string][]byte),
		inflight: make(map[string]*call),
	}
}

// Seed copies prev's already-encoded bytes into c for every ID keep
// accepts. The byte slices are shared, never copied — they are
// immutable once encoded — so seeding an incremental generation costs
// one map insert per carried entry, exactly the sharing trick the
// index shards use. Seed must run before c serves requests.
func (c *EntryCache) Seed(prev *EntryCache, keep func(id string) bool) {
	if prev == nil {
		return
	}
	prev.mu.RLock()
	defer prev.mu.RUnlock()
	for id, b := range prev.done {
		if keep(id) {
			c.done[id] = b
		}
	}
}

// Get returns the cached response bytes for id, calling encode to
// produce them on the first request. Concurrent first requests for the
// same id share one encode: a hot ID never encodes twice. The returned
// slice is shared and must not be modified.
func (c *EntryCache) Get(id string, encode func() []byte) []byte {
	c.mu.RLock()
	b, ok := c.done[id]
	c.mu.RUnlock()
	if ok {
		c.m.EntryHits.Add(1)
		return b
	}

	c.mu.Lock()
	if b, ok := c.done[id]; ok {
		c.mu.Unlock()
		c.m.EntryHits.Add(1)
		return b
	}
	if fl, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		<-fl.done
		c.m.EntryHits.Add(1)
		return fl.b
	}
	fl := &call{done: make(chan struct{})}
	c.inflight[id] = fl
	c.mu.Unlock()

	fl.b = encode()
	c.mu.Lock()
	c.done[id] = fl.b
	delete(c.inflight, id)
	c.mu.Unlock()
	close(fl.done)
	c.m.EntryMisses.Add(1)
	return fl.b
}

// Peek returns the cached bytes for id without filling, or nil. Used
// by the 304 path to account bytes saved without forcing an encode.
func (c *EntryCache) Peek(id string) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.done[id]
}

// Len returns the number of cached responses.
func (c *EntryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.done)
}

// qentry is one LRU cache slot.
type qentry struct {
	key string
	b   []byte
}

// QueryCache is a byte-bounded LRU over canonicalized /query keys for
// one generation. Unlike the entry cache its key space is unbounded
// (every limit/offset/filter combination a client invents), so it
// evicts least-recently-used responses once the stored bytes exceed
// the cap.
type QueryCache struct {
	m        *Metrics
	maxBytes int

	mu    sync.Mutex
	ll    *list.List // front = most recent; values are *qentry
	byKey map[string]*list.Element
	bytes int
}

// NewQueryCache returns a cache holding at most maxBytes of encoded
// responses. maxBytes <= 0 disables the cache (every Get misses,
// every Put is dropped).
func NewQueryCache(maxBytes int, m *Metrics) *QueryCache {
	return &QueryCache{
		m:        m,
		maxBytes: maxBytes,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Get returns the cached response for a canonical key, marking it most
// recently used. The returned slice is shared and must not be
// modified.
func (c *QueryCache) Get(key string) ([]byte, bool) {
	if c.maxBytes <= 0 {
		c.m.QueryMisses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.m.QueryMisses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	b := el.Value.(*qentry).b
	c.m.QueryHits.Add(1)
	c.m.QueryBytesSaved.Add(int64(len(b)))
	return b, true
}

// Put stores a freshly rendered response, evicting LRU entries until
// the cache fits the cap again. A response larger than the whole cap
// is not stored at all. Concurrent Puts of the same key keep the
// first-stored bytes (they are byte-identical by construction).
func (c *QueryCache) Put(key string, b []byte) {
	if c.maxBytes <= 0 || len(b) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	c.byKey[key] = c.ll.PushFront(&qentry{key: key, b: b})
	c.bytes += len(b)
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		q := el.Value.(*qentry)
		c.ll.Remove(el)
		delete(c.byKey, q.key)
		c.bytes -= len(q.b)
		c.m.QueryEvictions.Add(1)
	}
}

// Peek returns the cached bytes for key without touching recency or
// counters, or nil.
func (c *QueryCache) Peek(key string) []byte {
	if c.maxBytes <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		return el.Value.(*qentry).b
	}
	return nil
}

// Len returns the number of cached responses.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total encoded bytes currently cached.
func (c *QueryCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
