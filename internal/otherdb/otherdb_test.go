package otherdb

import (
	"testing"

	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
)

func universe(t testing.TB) (*gen.Universe, *gen.Truth, *naming.Map) {
	t.Helper()
	snap, truth, uni, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	va := naming.AnalyzeVendors(snap)
	return uni, truth, va.Consolidate(naming.HeuristicJudge{})
}

func TestBuildSizes(t *testing.T) {
	uni, _, _ := universe(t)
	sf := Build(uni, DefaultSF())
	st := Build(uni, DefaultST())
	if sf.Kind != SecurityFocus || st.Kind != SecurityTracker {
		t.Error("kinds wrong")
	}
	// SF tracks (essentially) the whole universe; ST a fraction
	// (paper: 24.8K vs 4.2K names).
	if len(sf.Vendors) <= 2*len(st.Vendors) {
		t.Errorf("SF (%d) should be much larger than ST (%d)", len(sf.Vendors), len(st.Vendors))
	}
	if sf.TrueInconsistent() == 0 {
		t.Error("SF has no injected inconsistencies")
	}
	// SF inconsistency rate should exceed ST's (8% vs 3%).
	sfRate := float64(sf.TrueInconsistent()) / float64(len(sf.Vendors))
	stRate := float64(st.TrueInconsistent()) / float64(len(st.Vendors))
	if sfRate <= stRate {
		t.Errorf("SF rate %.3f should exceed ST rate %.3f", sfRate, stRate)
	}
}

func TestBuildDeterministic(t *testing.T) {
	uni, _, _ := universe(t)
	a := Build(uni, DefaultSF())
	b := Build(uni, DefaultSF())
	if len(a.Vendors) != len(b.Vendors) {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Vendors {
		if a.Vendors[i] != b.Vendors[i] {
			t.Fatal("non-deterministic vendor list")
		}
	}
}

func TestVendorsSortedUnique(t *testing.T) {
	uni, _, _ := universe(t)
	db := Build(uni, DefaultSF())
	for i := 1; i < len(db.Vendors); i++ {
		if db.Vendors[i-1] >= db.Vendors[i] {
			t.Fatalf("vendors not sorted/unique at %d: %q >= %q", i, db.Vendors[i-1], db.Vendors[i])
		}
	}
}

func TestApplyVendorMap(t *testing.T) {
	uni, _, m := universe(t)
	sf := Build(uni, DefaultSF())
	stats := sf.ApplyVendorMap(m)
	if stats.Names != len(sf.Vendors) {
		t.Errorf("Names = %d, want %d", stats.Names, len(sf.Vendors))
	}
	if stats.Impacted == 0 {
		t.Error("the NVD map found nothing in SF — shared aliases should match")
	}
	if stats.Consolidated == 0 || stats.Consolidated > stats.Impacted {
		t.Errorf("Consolidated = %d with Impacted = %d", stats.Consolidated, stats.Impacted)
	}
	// Most flagged names should be part of a genuinely inconsistent
	// group: either the flagged name or its consolidation target is an
	// injected alias. (The map may pick either side of a pair as
	// canonical, so check both directions.)
	var grounded int
	for _, name := range sf.Vendors {
		if !m.Mapped(name) {
			continue
		}
		if sf.TruthCanonical(name) != name || uniAliased(uni, name) || uniAliased(uni, m.Canonical(name)) {
			grounded++
		}
	}
	if float64(grounded) < 0.5*float64(stats.Impacted) {
		t.Errorf("only %d of %d flagged names trace to an injected inconsistency", grounded, stats.Impacted)
	}
}

// uniAliased reports whether name is an injected alias in the NVD
// universe.
func uniAliased(u *gen.Universe, name string) bool {
	for _, v := range u.Vendors {
		for _, a := range v.Aliases {
			if a.Name == name {
				return true
			}
		}
	}
	return false
}

func TestKindString(t *testing.T) {
	if SecurityFocus.String() != "SF" || SecurityTracker.String() != "ST" || Kind(0).String() != "?" {
		t.Error("Kind strings wrong")
	}
}

func BenchmarkBuildSF(b *testing.B) {
	_, _, uni, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(uni, DefaultSF())
	}
}
