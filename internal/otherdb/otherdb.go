// Package otherdb simulates the two additional vulnerability databases
// of Table 3 — SecurityFocus (SF) and SecurityTracker (ST). The paper
// applies its NVD-derived vendor map to their vendor strings and finds
// 8% and 3% of names inconsistent respectively; we synthesize vendor
// tables from the same vendor universe with independently injected
// inconsistencies at those rates, so the cross-database application of
// the map is exercised mechanically.
package otherdb

import (
	"math/rand"
	"sort"
	"strings"

	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
)

// Kind selects the simulated database.
type Kind int

// The two Table 3 databases.
const (
	SecurityFocus Kind = iota + 1
	SecurityTracker
)

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case SecurityFocus:
		return "SF"
	case SecurityTracker:
		return "ST"
	default:
		return "?"
	}
}

// Database is a simulated third-party vulnerability database's vendor
// dimension: a list of vendor names as that database spells them.
type Database struct {
	Kind Kind
	// Vendors are the distinct vendor names, sorted.
	Vendors []string
	// truth maps each inconsistent name to its canonical form.
	truth map[string]string
}

// Config scales a simulated database.
type Config struct {
	Kind Kind
	// CoverageRate is the fraction of the NVD vendor universe the
	// database tracks. SecurityFocus is larger than the NVD's vendor
	// list (24.8K names), SecurityTracker much smaller (4.2K).
	CoverageRate float64
	// InconsistencyRate is the fraction of names that are inconsistent
	// variants (paper: SF 8%, ST 3%).
	InconsistencyRate float64
	// Seed drives the injection; keep it different from the NVD
	// generator seed so the variants differ.
	Seed int64
}

// DefaultSF returns the SecurityFocus configuration.
func DefaultSF() Config {
	return Config{Kind: SecurityFocus, CoverageRate: 1.0, InconsistencyRate: 0.08, Seed: 101}
}

// DefaultST returns the SecurityTracker configuration.
func DefaultST() Config {
	return Config{Kind: SecurityTracker, CoverageRate: 0.22, InconsistencyRate: 0.03, Seed: 202}
}

// Build derives a database from the NVD vendor universe.
func Build(u *gen.Universe, cfg Config) *Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &Database{Kind: cfg.Kind, truth: make(map[string]string)}
	for _, v := range u.Vendors {
		if rng.Float64() >= cfg.CoverageRate {
			continue
		}
		db.Vendors = append(db.Vendors, v.Name)
		// Reuse the NVD's injected aliases sometimes (the same wrong
		// spellings propagate across databases)...
		for _, a := range v.Aliases {
			if rng.Float64() < cfg.InconsistencyRate*5 {
				db.Vendors = append(db.Vendors, a.Name)
				db.truth[a.Name] = v.Name
			}
		}
		// ...and mint database-specific variants at the configured rate.
		if rng.Float64() < cfg.InconsistencyRate {
			if alias := localVariant(v.Name, rng); alias != "" && alias != v.Name {
				db.Vendors = append(db.Vendors, alias)
				db.truth[alias] = v.Name
			}
		}
	}
	sort.Strings(db.Vendors)
	db.Vendors = dedupe(db.Vendors)
	return db
}

// localVariant spells a vendor name the way a different database's
// analysts might.
func localVariant(name string, rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		if strings.Contains(name, "_") {
			return strings.ReplaceAll(name, "_", " ")
		}
		return name + "_corp"
	case 1:
		return strings.ToUpper(name[:1]) + name[1:]
	default:
		if len(name) > 5 {
			return name[:len(name)-1]
		}
		return ""
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Stats is one row of Table 3 for a third-party database.
type Stats struct {
	Kind Kind
	// Names is the number of distinct vendor names.
	Names int
	// Impacted is the number of names the map flags as inconsistent.
	Impacted int
	// Consolidated is the number of consistent names the impacted ones
	// map onto.
	Consolidated int
}

// ApplyVendorMap applies an NVD-derived vendor consolidation map to the
// database's names, as §4.2 does, returning the Table 3 row. Case is
// folded first because third-party databases capitalize differently.
func (db *Database) ApplyVendorMap(m *naming.Map) Stats {
	st := Stats{Kind: db.Kind, Names: len(db.Vendors)}
	targets := make(map[string]struct{})
	for _, name := range db.Vendors {
		folded := strings.ToLower(name)
		if m.Mapped(folded) {
			st.Impacted++
			targets[m.Canonical(folded)] = struct{}{}
		}
	}
	st.Consolidated = len(targets)
	return st
}

// TrueInconsistent returns the number of injected inconsistent names —
// the denominator ground truth for evaluating the map's coverage.
func (db *Database) TrueInconsistent() int { return len(db.truth) }

// TruthCanonical resolves a name against the injected ground truth.
func (db *Database) TruthCanonical(name string) string {
	if c, ok := db.truth[name]; ok {
		return c
	}
	return name
}
