package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/parallel"
)

// Stats accounts for a crawl, mirroring the coverage discussion of §4.1
// and §6.
type Stats struct {
	// URLs is the number of reference URLs considered.
	URLs int
	// Skipped counts URLs outside the top-K domain set.
	Skipped int
	// DeadDomain counts fetches that failed at the connection level.
	DeadDomain int
	// Fetched counts successful page fetches.
	Fetched int
	// Extracted counts pages yielding a date.
	Extracted int
	// HTTPErrors counts non-200 responses.
	HTTPErrors int
}

// add merges per-URL outcomes.
func (s *Stats) add(o Stats) {
	s.URLs += o.URLs
	s.Skipped += o.Skipped
	s.DeadDomain += o.DeadDomain
	s.Fetched += o.Fetched
	s.Extracted += o.Extracted
	s.HTTPErrors += o.HTTPErrors
}

// Config controls a Crawler.
type Config struct {
	// Transport fetches pages. Required: use webcorpus.Transport() for
	// the simulated web or http.DefaultTransport for the real one.
	Transport http.RoundTripper
	// TopK restricts crawling to the TopK most popular domains
	// (paper: 50). Zero means 50.
	TopK int
	// Concurrency is the number of parallel fetch workers. Zero means
	// GOMAXPROCS, the pipeline-wide default.
	Concurrency int
	// Timeout bounds each fetch. Zero means 10s.
	Timeout time.Duration
	// MaxBodyBytes caps each response read. Zero means 1 MiB.
	MaxBodyBytes int64
}

// Crawler estimates CVE disclosure dates from reference pages.
type Crawler struct {
	cfg        Config
	client     *http.Client
	extractors map[string]Extractor // host -> extractor, top-K only

	// memo caches per-URL fetch outcomes: the same advisory URL is
	// referenced by many CVEs, and its page yields the same date every
	// time. Stats still count every occurrence, so aggregate accounting
	// matches an uncached crawl exactly.
	memo sync.Map // url -> fetchOutcome
}

// fetchOutcome is one URL's memoized crawl result.
type fetchOutcome struct {
	date time.Time
	st   Stats
}

// New validates cfg and builds the per-domain extractor set.
func New(cfg Config) (*Crawler, error) {
	if cfg.Transport == nil {
		return nil, errors.New("crawler: Transport is required")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 50
	}
	cfg.Concurrency = parallel.Workers(cfg.Concurrency)
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	// Per-fetch timeouts come from a context deadline in fetchDate
	// rather than http.Client.Timeout: the client's timeout machinery
	// arms three cancel paths per request, which dominates the cost of
	// fast in-process fetches.
	c := &Crawler{
		cfg:        cfg,
		client:     &http.Client{Transport: cfg.Transport},
		extractors: make(map[string]Extractor),
	}
	for i, d := range gen.Domains() {
		if i >= cfg.TopK {
			break
		}
		if ex := ExtractorFor(d.Format); ex != nil {
			c.extractors[d.Host] = ex
		}
	}
	return c, nil
}

// NumDomains returns the number of domains the crawler can parse.
func (c *Crawler) NumDomains() int { return len(c.extractors) }

// fetchDate retrieves one reference page and extracts its date.
func (c *Crawler) fetchDate(ctx context.Context, rawURL string) (time.Time, Stats) {
	var st Stats
	st.URLs = 1
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		st.Skipped = 1
		return time.Time{}, st
	}
	ex, ok := c.extractors[u.Hostname()]
	if !ok {
		st.Skipped = 1
		return time.Time{}, st
	}
	if c.cfg.Timeout > 0 {
		fctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
		ctx = fctx
	}
	// The URL is already parsed; building the request directly avoids
	// a second url.Parse per fetch.
	req := (&http.Request{
		Method: http.MethodGet,
		URL:    u,
		Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: make(http.Header),
		Host:   u.Host,
	}).WithContext(ctx)
	resp, err := c.client.Do(req)
	if err != nil {
		st.DeadDomain = 1
		return time.Time{}, st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.HTTPErrors = 1
		return time.Time{}, st
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		st.HTTPErrors = 1
		return time.Time{}, st
	}
	st.Fetched = 1
	date, found := ex(body)
	if !found {
		return time.Time{}, st
	}
	st.Extracted = 1
	return date, st
}

// fetchDateCached is fetchDate memoized per URL. Only deterministic
// outcomes are cached — successful fetches and out-of-scope skips; a
// transient failure (dead connection, HTTP error, timeout) is retried
// on the URL's next occurrence rather than poisoning the whole crawl.
// Cached outcomes carry the single-occurrence stats, which are
// re-counted per reference, so aggregate stats match an uncached
// crawl.
func (c *Crawler) fetchDateCached(ctx context.Context, rawURL string) (time.Time, Stats) {
	if v, ok := c.memo.Load(rawURL); ok {
		o := v.(fetchOutcome)
		return o.date, o.st
	}
	d, st := c.fetchDate(ctx, rawURL)
	if (st.Fetched == 1 || st.Skipped == 1) && ctx.Err() == nil {
		c.memo.Store(rawURL, fetchOutcome{date: d, st: st})
	}
	return d, st
}

// Estimate computes the estimated disclosure date for one entry: the
// minimum of the dates extracted from its reference URLs and the NVD
// publication date (§4.1).
func (c *Crawler) Estimate(ctx context.Context, e *cve.Entry) (time.Time, Stats) {
	best := e.Published
	var st Stats
	for _, r := range e.References {
		d, s := c.fetchDateCached(ctx, r.URL)
		st.add(s)
		if !d.IsZero() && d.Before(best) {
			best = d
		}
	}
	return best, st
}

// Result is one CVE's estimated disclosure date.
type Result struct {
	ID        string
	Estimated time.Time
	// LagDays is the number of days the NVD publication trails the
	// estimate (the paper's "lag time").
	LagDays int
}

// EstimateEntries crawls the given entries on a bounded worker pool of
// the configured concurrency and returns one Result and one Stats per
// entry, index-aligned with the input. Each entry writes only its own
// slots, so the outcome is identical at any concurrency. Per-entry
// stats are what make incremental cleaning possible: an entry's crawl
// outcome is a pure function of the entry (the memo only skips
// repeated fetches, it never changes accounting), so unchanged entries
// of a feed delta can reuse their recorded stats verbatim.
func (c *Crawler) EstimateEntries(ctx context.Context, entries []*cve.Entry) ([]Result, []Stats, error) {
	results := make([]Result, len(entries))
	perEntry := make([]Stats, len(entries))
	err := parallel.ForErr(c.cfg.Concurrency, len(entries), func(i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("crawler: %w", err)
		}
		e := entries[i]
		est, st := c.Estimate(ctx, e)
		lag := int(e.Published.Sub(est).Hours() / 24)
		if lag < 0 {
			lag = 0
		}
		results[i] = Result{ID: e.ID, Estimated: est, LagDays: lag}
		perEntry[i] = st
		return nil
	})
	if err != nil {
		return nil, perEntry, err
	}
	return results, perEntry, nil
}

// FoldStats reduces per-entry stats to the aggregate in entry order.
func FoldStats(workers int, perEntry []Stats) Stats {
	return parallel.OrderedReduce(workers, len(perEntry), 1024, Stats{},
		func(start, end int) Stats {
			var s Stats
			for i := start; i < end; i++ {
				s.add(perEntry[i])
			}
			return s
		},
		func(acc, part Stats) Stats { acc.add(part); return acc })
}

// EstimateAll crawls every entry of the snapshot and returns per-CVE
// results (in snapshot order) plus aggregate stats.
func (c *Crawler) EstimateAll(ctx context.Context, snap *cve.Snapshot) ([]Result, Stats, error) {
	results, perEntry, err := c.EstimateEntries(ctx, snap.Entries)
	agg := FoldStats(c.cfg.Concurrency, perEntry)
	if err != nil {
		return nil, agg, err
	}
	return results, agg, nil
}

// Coverage returns the fraction of considered URLs whose domain was in
// the crawlable top-K set.
func (s Stats) Coverage() float64 {
	if s.URLs == 0 {
		return 0
	}
	return float64(s.URLs-s.Skipped) / float64(s.URLs)
}

// LagTimes extracts the lag-day series from results, the input to the
// Fig 1 CDF.
func LagTimes(results []Result) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = float64(r.LagDays)
	}
	return out
}

// EstimatedDates converts results to a map for analysis code.
func EstimatedDates(results []Result) map[string]time.Time {
	m := make(map[string]time.Time, len(results))
	for _, r := range results {
		m[r.ID] = r.Estimated
	}
	return m
}

// SortByLag sorts a copy of results by descending lag.
func SortByLag(results []Result) []Result {
	out := append([]Result(nil), results...)
	sort.Slice(out, func(i, j int) bool { return out[i].LagDays > out[j].LagDays })
	return out
}
