package crawler

import (
	"context"
	"testing"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/webcorpus"
)

func testSetup(t testing.TB, cfg gen.Config) (*cve.Snapshot, *gen.Truth, *Crawler) {
	t.Helper()
	snap, truth, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := webcorpus.New(snap, truth.Disclosure)
	c, err := New(Config{Transport: corpus.Transport(), Concurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	return snap, truth, c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing transport should fail")
	}
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	corpus := webcorpus.New(snap, truth.Disclosure)
	c, err := New(Config{Transport: corpus.Transport(), TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDomains() != 10 {
		t.Errorf("NumDomains = %d, want 10", c.NumDomains())
	}
}

func TestEstimateRecoversDisclosure(t *testing.T) {
	snap, truth, c := testSetup(t, gen.TinyConfig())
	ctx := context.Background()
	var recovered, lagged int
	for _, e := range snap.Entries {
		if len(e.References) == 0 {
			continue
		}
		est, _ := c.Estimate(ctx, e)
		disc := truth.Disclosure[e.ID]
		if est.Before(disc) {
			t.Fatalf("%s: estimate %v before true disclosure %v", e.ID, est, disc)
		}
		if est.After(e.Published) {
			t.Fatalf("%s: estimate %v after publication %v", e.ID, est, e.Published)
		}
		if disc.Before(e.Published) {
			lagged++
			if est.Equal(disc) {
				recovered++
			}
		}
	}
	if lagged == 0 {
		t.Skip("no lagged CVEs at this scale")
	}
	rate := float64(recovered) / float64(lagged)
	// Most lagged CVEs have a live primary reference carrying the exact
	// disclosure date; only the dead-refs-only and no-refs slices are
	// unrecoverable (§6 "Limitations").
	if rate < 0.80 {
		t.Errorf("recovery rate = %.2f, want ≥0.80", rate)
	}
}

func TestEstimateAll(t *testing.T) {
	snap, truth, c := testSetup(t, gen.TinyConfig())
	results, stats, err := c.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != snap.Len() {
		t.Fatalf("results = %d, want %d", len(results), snap.Len())
	}
	if stats.URLs == 0 || stats.Fetched == 0 || stats.Extracted == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
	if stats.Extracted > stats.Fetched {
		t.Errorf("extracted %d > fetched %d", stats.Extracted, stats.Fetched)
	}
	if stats.Coverage() < 0.75 {
		t.Errorf("coverage = %.2f, want ≈0.85 for top-50", stats.Coverage())
	}
	// Results align with entries.
	for i, r := range results {
		if r.ID != snap.Entries[i].ID {
			t.Fatalf("result %d is %s, want %s", i, r.ID, snap.Entries[i].ID)
		}
		if r.LagDays < 0 {
			t.Fatalf("%s: negative lag", r.ID)
		}
		trueLag := truth.LagDays(r.ID, snap.Entries[i].Published)
		if r.LagDays > trueLag {
			t.Fatalf("%s: measured lag %d exceeds injected lag %d", r.ID, r.LagDays, trueLag)
		}
	}
}

func TestEstimateAllContextCancel(t *testing.T) {
	snap, _, c := testSetup(t, gen.TinyConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.EstimateAll(ctx, snap); err == nil {
		t.Error("cancelled context should abort")
	}
}

func TestTopKLimitsCoverage(t *testing.T) {
	snap, truth, _ := testSetup(t, gen.TinyConfig())
	corpus := webcorpus.New(snap, truth.Disclosure)
	wide, err := New(Config{Transport: corpus.Transport(), TopK: 50})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := New(Config{Transport: corpus.Transport(), TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, wideStats, err := wide.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	_, narrowStats, err := narrow.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if narrowStats.Coverage() >= wideStats.Coverage() {
		t.Errorf("narrow coverage %.2f should be below wide %.2f",
			narrowStats.Coverage(), wideStats.Coverage())
	}
}

func TestExtractors(t *testing.T) {
	date := time.Date(2011, 2, 7, 0, 0, 0, 0, time.UTC)
	for _, format := range []gen.PageFormat{
		gen.FormatMeta, gen.FormatTable, gen.FormatText, gen.FormatISO, gen.FormatJapanese,
	} {
		d := gen.Domain{Host: "h.example.com", Category: gen.CategoryVulnDB, Format: format}
		body := webcorpus.RenderPage(d, "CVE-2011-0700", date)
		ex := ExtractorFor(format)
		if ex == nil {
			t.Fatalf("no extractor for format %d", format)
		}
		got, ok := ex([]byte(body))
		if !ok {
			t.Errorf("format %d: extraction failed on\n%s", format, body)
			continue
		}
		if !got.Equal(date) {
			t.Errorf("format %d: extracted %v, want %v", format, got, date)
		}
	}
	if ExtractorFor(gen.PageFormat(99)) != nil {
		t.Error("unknown format should have no extractor")
	}
}

func TestExtractorsRejectGarbage(t *testing.T) {
	bodies := [][]byte{
		nil,
		[]byte("<html><body>no dates here</body></html>"),
		[]byte(`<meta name="date" content="not-a-date">`),
		[]byte(`<td>Published:</td><td>99 Xxx 2014</td>`),
	}
	for _, format := range []gen.PageFormat{
		gen.FormatMeta, gen.FormatTable, gen.FormatText, gen.FormatISO, gen.FormatJapanese,
	} {
		ex := ExtractorFor(format)
		for _, b := range bodies {
			if _, ok := ex(b); ok {
				t.Errorf("format %d extracted a date from garbage %q", format, b)
			}
		}
	}
}

func TestExtractorIgnoresDistractors(t *testing.T) {
	// The table page has an "Updated:" row after "Published:"; the
	// extractor must return the published one.
	d := gen.Domain{Host: "h.example.com", Format: gen.FormatTable}
	date := time.Date(2014, 4, 7, 0, 0, 0, 0, time.UTC)
	body := webcorpus.RenderPage(d, "CVE-2014-0160", date)
	got, ok := extractTable([]byte(body))
	if !ok || !got.Equal(date) {
		t.Errorf("extracted %v, want %v", got, date)
	}
}

func TestHelpers(t *testing.T) {
	results := []Result{
		{ID: "CVE-2001-0001", Estimated: time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC), LagDays: 5},
		{ID: "CVE-2001-0002", Estimated: time.Date(2001, 2, 1, 0, 0, 0, 0, time.UTC), LagDays: 50},
	}
	lags := LagTimes(results)
	if len(lags) != 2 || lags[0] != 5 || lags[1] != 50 {
		t.Errorf("LagTimes = %v", lags)
	}
	dates := EstimatedDates(results)
	if len(dates) != 2 || dates["CVE-2001-0002"].Month() != time.February {
		t.Errorf("EstimatedDates = %v", dates)
	}
	sorted := SortByLag(results)
	if sorted[0].LagDays != 50 {
		t.Errorf("SortByLag = %v", sorted)
	}
	if results[0].LagDays != 5 {
		t.Error("SortByLag mutated input")
	}
}

func BenchmarkEstimateAllTiny(b *testing.B) {
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	corpus := webcorpus.New(snap, truth.Disclosure)
	c, err := New(Config{Transport: corpus.Transport(), Concurrency: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.EstimateAll(context.Background(), snap); err != nil {
			b.Fatal(err)
		}
	}
}
