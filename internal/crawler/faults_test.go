package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/webcorpus"
)

// flakyTransport fails every nth request with a transport error.
type flakyTransport struct {
	inner http.RoundTripper
	n     int64
	count atomic.Int64
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.count.Add(1)%f.n == 0 {
		return nil, errors.New("injected transport failure")
	}
	return f.inner.RoundTrip(req)
}

// errorTransport returns HTTP 500 for everything.
type errorTransport struct{}

func (errorTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusInternalServerError,
		Status:     "500 Internal Server Error",
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader("boom")),
		Request:    req,
	}, nil
}

// garbageTransport serves pages without any parseable date.
type garbageTransport struct{}

func (garbageTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	body := "<html><body>nothing to see here</body></html>"
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{"Content-Type": []string{"text/html"}},
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}, nil
}

// hugeTransport serves an endless body to exercise the read cap.
type hugeTransport struct{}

func (hugeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// 8 MiB of padding with a valid date planted past the 1 MiB cap.
	var b strings.Builder
	b.WriteString("<html><body>")
	b.WriteString(strings.Repeat("x", 8<<20))
	b.WriteString(`<time datetime="2014-04-07">late date</time></body></html>`)
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(b.String())),
		Request:    req,
	}, nil
}

func faultSnapshot(t testing.TB) (*cve.Snapshot, *gen.Truth, *webcorpus.Corpus) {
	t.Helper()
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return snap, truth, webcorpus.New(snap, truth.Disclosure)
}

// TestFlakyTransport: a transport failing 1 in 3 requests must not abort
// the crawl; estimates degrade gracefully toward the NVD date and never
// go below the true disclosure.
func TestFlakyTransport(t *testing.T) {
	snap, truth, corpus := faultSnapshot(t)
	c, err := New(Config{
		Transport:   &flakyTransport{inner: corpus.Transport(), n: 3},
		Concurrency: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := c.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatalf("flaky crawl aborted: %v", err)
	}
	if len(results) != snap.Len() {
		t.Fatalf("results = %d, want %d", len(results), snap.Len())
	}
	if stats.DeadDomain == 0 {
		t.Error("injected failures not accounted")
	}
	for i, r := range results {
		e := snap.Entries[i]
		if r.Estimated.Before(truth.Disclosure[e.ID]) {
			t.Fatalf("%s: estimate before true disclosure despite failures", e.ID)
		}
		if r.Estimated.After(e.Published) {
			t.Fatalf("%s: estimate after publication", e.ID)
		}
	}
}

// TestAllServerErrors: HTTP 500s everywhere must leave estimates at the
// NVD dates and count as HTTP errors.
func TestAllServerErrors(t *testing.T) {
	snap, _, _ := faultSnapshot(t)
	c, err := New(Config{Transport: errorTransport{}, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := c.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HTTPErrors == 0 {
		t.Error("no HTTP errors recorded")
	}
	if stats.Extracted != 0 {
		t.Error("extraction from 500s should be impossible")
	}
	for i, r := range results {
		if !r.Estimated.Equal(snap.Entries[i].Published) {
			t.Fatalf("%s: estimate moved despite all-500s", r.ID)
		}
		if r.LagDays != 0 {
			t.Fatalf("%s: lag %d without extraction", r.ID, r.LagDays)
		}
	}
}

// TestUnparseablePages: valid 200s with no date must count as fetched
// but not extracted.
func TestUnparseablePages(t *testing.T) {
	snap, _, _ := faultSnapshot(t)
	c, err := New(Config{Transport: garbageTransport{}, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched == 0 {
		t.Error("pages should have been fetched")
	}
	if stats.Extracted != 0 {
		t.Errorf("extracted %d dates from garbage", stats.Extracted)
	}
}

// TestBodyCap: a multi-megabyte page is truncated at MaxBodyBytes; a
// date planted beyond the cap is not read, and the crawler neither
// hangs nor overallocates.
func TestBodyCap(t *testing.T) {
	snap, _, _ := faultSnapshot(t)
	c, err := New(Config{Transport: hugeTransport{}, Concurrency: 4, MaxBodyBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e := firstWithRefs(t, snap)
	_, stats := c.Estimate(context.Background(), e)
	if stats.Fetched == 0 {
		t.Fatal("nothing fetched")
	}
	if stats.Extracted != 0 {
		t.Error("date beyond the body cap should not be extracted")
	}
}

// TestConcurrentCrawlsShareNothing: two crawls over the same corpus in
// parallel must both succeed (no hidden shared state).
func TestConcurrentCrawlsShareNothing(t *testing.T) {
	snap, _, corpus := faultSnapshot(t)
	c, err := New(Config{Transport: corpus.Transport(), Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.EstimateAll(context.Background(), snap); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPartialDomainOutage: taking live domains down mid-universe leaves
// the remaining references to carry the estimate.
func TestPartialDomainOutage(t *testing.T) {
	snap, truth, corpus := faultSnapshot(t)
	// Kill every other live domain at the transport level.
	down := make(map[string]bool)
	i := 0
	for _, d := range gen.Domains() {
		if !d.Dead {
			if i%2 == 0 {
				down[d.Host] = true
			}
			i++
		}
	}
	inner := corpus.Transport()
	rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if down[req.URL.Hostname()] {
			return nil, fmt.Errorf("outage: %s", req.URL.Hostname())
		}
		return inner.RoundTrip(req)
	})
	c, err := New(Config{Transport: rt, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := c.EstimateAll(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadDomain == 0 {
		t.Error("outages not observed")
	}
	// Some dates still recovered through surviving domains.
	var recovered int
	for i, r := range results {
		e := snap.Entries[i]
		if truth.Disclosure[e.ID].Before(e.Published) && r.Estimated.Equal(truth.Disclosure[e.ID]) {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no dates recovered despite surviving domains")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func firstWithRefs(t *testing.T, snap *cve.Snapshot) *cve.Entry {
	t.Helper()
	for _, e := range snap.Entries {
		if len(e.References) > 0 {
			return e
		}
	}
	t.Fatal("no entry with references")
	return nil
}
