// Package crawler implements the disclosure-date estimation of §4.1: a
// concurrent reference-URL crawler with one date extractor per page
// format ("we built a separate crawler for each domain"), restricted to
// the top-K reference domains (the paper used the top 50, covering ≈85%
// of URLs), estimating each CVE's public disclosure date as the minimum
// of the extracted reference dates and the NVD publication date.
package crawler

import (
	"regexp"
	"strconv"
	"time"

	"nvdclean/internal/gen"
)

// Extractor parses the publication date out of one page body, returning
// false when no date is found.
type Extractor func(body []byte) (time.Time, bool)

var (
	metaRE  = regexp.MustCompile(`<meta name="date" content="(\d{4})-(\d{2})-(\d{2})"`)
	tableRE = regexp.MustCompile(`<td>Published:</td><td>(\d{2}) ([A-Z][a-z]{2}) (\d{4})</td>`)
	textRE  = regexp.MustCompile(`Published: ([A-Z][a-z]+) (\d{1,2}), (\d{4})`)
	isoRE   = regexp.MustCompile(`<time datetime="(\d{4})-(\d{2})-(\d{2})"`)
	jpRE    = regexp.MustCompile(`公開日: <span class="published">(\d{4})年(\d{2})月(\d{2})日`)
)

var monthAbbrev = map[string]time.Month{
	"Jan": time.January, "Feb": time.February, "Mar": time.March,
	"Apr": time.April, "May": time.May, "Jun": time.June,
	"Jul": time.July, "Aug": time.August, "Sep": time.September,
	"Oct": time.October, "Nov": time.November, "Dec": time.December,
}

var monthFull = map[string]time.Month{
	"January": time.January, "February": time.February, "March": time.March,
	"April": time.April, "May": time.May, "June": time.June,
	"July": time.July, "August": time.August, "September": time.September,
	"October": time.October, "November": time.November, "December": time.December,
}

// ExtractorFor returns the extractor matching a domain's page format,
// or nil for unknown formats.
func ExtractorFor(format gen.PageFormat) Extractor {
	switch format {
	case gen.FormatMeta:
		return extractMeta
	case gen.FormatTable:
		return extractTable
	case gen.FormatText:
		return extractText
	case gen.FormatISO:
		return extractISO
	case gen.FormatJapanese:
		return extractJapanese
	default:
		return nil
	}
}

func extractMeta(body []byte) (time.Time, bool) {
	return ymdMatch(metaRE.FindSubmatch(body), 1, 2, 3)
}

func extractISO(body []byte) (time.Time, bool) {
	return ymdMatch(isoRE.FindSubmatch(body), 1, 2, 3)
}

func extractJapanese(body []byte) (time.Time, bool) {
	return ymdMatch(jpRE.FindSubmatch(body), 1, 2, 3)
}

// ymdMatch converts a (year, month, day) submatch triple to a date.
func ymdMatch(m [][]byte, yi, mi, di int) (time.Time, bool) {
	if m == nil {
		return time.Time{}, false
	}
	y, err1 := strconv.Atoi(string(m[yi]))
	mo, err2 := strconv.Atoi(string(m[mi]))
	d, err3 := strconv.Atoi(string(m[di]))
	if err1 != nil || err2 != nil || err3 != nil || mo < 1 || mo > 12 || d < 1 || d > 31 {
		return time.Time{}, false
	}
	return time.Date(y, time.Month(mo), d, 0, 0, 0, 0, time.UTC), true
}

func extractTable(body []byte) (time.Time, bool) {
	m := tableRE.FindSubmatch(body)
	if m == nil {
		return time.Time{}, false
	}
	d, err1 := strconv.Atoi(string(m[1]))
	mo, ok := monthAbbrev[string(m[2])]
	y, err2 := strconv.Atoi(string(m[3]))
	if err1 != nil || err2 != nil || !ok || d < 1 || d > 31 {
		return time.Time{}, false
	}
	return time.Date(y, mo, d, 0, 0, 0, 0, time.UTC), true
}

func extractText(body []byte) (time.Time, bool) {
	m := textRE.FindSubmatch(body)
	if m == nil {
		return time.Time{}, false
	}
	mo, ok := monthFull[string(m[1])]
	d, err1 := strconv.Atoi(string(m[2]))
	y, err2 := strconv.Atoi(string(m[3]))
	if err1 != nil || err2 != nil || !ok || d < 1 || d > 31 {
		return time.Time{}, false
	}
	return time.Date(y, mo, d, 0, 0, 0, 0, time.UTC), true
}
