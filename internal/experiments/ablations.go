package experiments

import (
	"context"
	"fmt"
	"strings"

	"nvdclean/internal/naming"
	"nvdclean/internal/predict"
)

// AblationTopK sweeps the crawl's domain cut-off, quantifying the
// paper's "top 50 domains cover more than 85% of all URLs (we observed
// diminishing returns from considering additional domains)".
func (s *Suite) AblationTopK(ctx context.Context) (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: crawl domain cut-off (paper §4.1 chose top-50)")
	fmt.Fprintln(&b, "  topK  coverage  extracted")
	for _, k := range []int{10, 25, 50, 60} {
		stats, err := s.CrawlResults(ctx, k)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %4d  %7.3f  %9d\n", k, stats.Coverage(), stats.Extracted)
	}
	return b.String(), nil
}

// AblationLCS sweeps the vendor-judge's longest-common-substring
// threshold, the signifier Table 2 splits on.
func (s *Suite) AblationLCS() (string, error) {
	va := naming.AnalyzeVendorsN(s.Snap, s.Concurrency)
	oracle := naming.OracleJudge{Canonical: s.Truth.CanonicalVendor}
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: LCS threshold for vendor-pair confirmation (paper: 3)")
	fmt.Fprintln(&b, "  minLCS  TP  FP  FN  precision  recall")
	for _, minLCS := range []int{2, 3, 4} {
		judge := thresholdJudge{minLCS: minLCS}
		var tp, fp, fn int
		for i := range va.Pairs {
			p := &va.Pairs[i]
			pred := judge.SameVendor(p)
			actual := oracle.SameVendor(p)
			switch {
			case pred && actual:
				tp++
			case pred && !actual:
				fp++
			case !pred && actual:
				fn++
			}
		}
		precision, recall := safeDiv(tp, tp+fp), safeDiv(tp, tp+fn)
		fmt.Fprintf(&b, "  %6d  %3d %3d %3d  %9.3f  %6.3f\n", minLCS, tp, fp, fn, precision, recall)
	}
	return b.String(), nil
}

// thresholdJudge is HeuristicJudge with a configurable LCS threshold.
type thresholdJudge struct{ minLCS int }

func (j thresholdJudge) SameVendor(p *naming.VendorPair) bool {
	if p.HasPattern(naming.PatternTokens) || p.HasPattern(naming.PatternAbbrev) {
		return true
	}
	if p.LCS >= j.minLCS {
		switch {
		case p.HasPattern(naming.PatternPrefix),
			p.HasPattern(naming.PatternEdit),
			p.HasPattern(naming.PatternProductAsVendor):
			return true
		case p.HasPattern(naming.PatternSharedProduct) && p.MatchingProducts >= 1:
			return float64(p.LCS) >= 0.6*float64(minInt(len(p.A), len(p.B)))
		}
		return false
	}
	if p.MatchingProducts >= 2 {
		return true
	}
	return len(p.Patterns) >= 2
}

// AblationDong compares our product heuristics to the Dong et al.
// word-overlap baseline against the oracle (§4.2's qualitative
// comparison, quantified).
func (s *Suite) AblationDong() (string, error) {
	oracle := naming.OracleProductJudge{Canonical: func(vendor, product string) string {
		return s.Truth.CanonicalProduct(s.Truth.CanonicalVendor(vendor), product)
	}}
	ours, dong := naming.CompareBaseline(s.Snap, oracle)
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: product matching vs Dong et al. word-overlap baseline")
	fmt.Fprintf(&b, "  ours: TP=%d FP=%d precision=%.3f\n", ours.TP, ours.FP, safeDiv(ours.TP, ours.TP+ours.FP))
	fmt.Fprintf(&b, "  dong: TP=%d FP=%d precision=%.3f\n", dong.TP, dong.FP, safeDiv(dong.TP, dong.TP+dong.FP))
	return b.String(), nil
}

// AblationKNN sweeps k for the §4.4 type classifier (paper: k = 1 was
// best) and the embedding dimensionality.
func (s *Suite) AblationKNN() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: description→CWE k-NN (paper: k=1, 512-d embeddings)")
	fmt.Fprintln(&b, "  k  dim  classes  accuracy")
	// Brute-force k-NN is quadratic; cap the corpus so the sweep stays
	// tractable at paper scale.
	const maxDocs = 12000
	for _, cfg := range []predict.TypeClassifierConfig{
		{K: 1, Dim: 512, Seed: 3, MaxDocs: maxDocs, Workers: s.Concurrency},
		{K: 3, Dim: 512, Seed: 3, MaxDocs: maxDocs, Workers: s.Concurrency},
		{K: 5, Dim: 512, Seed: 3, MaxDocs: maxDocs, Workers: s.Concurrency},
		{K: 1, Dim: 256, Seed: 3, MaxDocs: maxDocs, Workers: s.Concurrency},
		{K: 1, Dim: 128, Seed: 3, MaxDocs: maxDocs, Workers: s.Concurrency},
	} {
		tc, acc, err := predict.TrainTypeClassifier(s.Snap, cfg)
		if err != nil {
			return "", err
		}
		k := cfg.K
		if k == 0 {
			k = 1
		}
		fmt.Fprintf(&b, "  %d  %4d  %7d  %.3f\n", k, cfg.Dim, tc.NumClasses(), acc)
	}
	return b.String(), nil
}

// AblationNaiveSeverity scores trivial non-learning baselines for the
// §4.3 task — copy the v2 score, or shift it by a constant — against
// the trained models' Table 7 accuracy. The gap is what the learning
// machinery buys.
func (s *Suite) AblationNaiveSeverity() (string, error) {
	ds, err := predict.BuildDataset(s.Result.Cleaned, s.Cfg.Seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: naive severity baselines vs trained models (band accuracy)")
	score := func(name string, f func(v2Score float64) float64) {
		var hits int
		for _, sample := range ds.Test {
			// Feature 6 is the v2 base score scaled by 10.
			v2Score := sample.Features[6] * 10
			if severityBand(f(v2Score)) == severityBand(sample.TargetScore) {
				hits++
			}
		}
		fmt.Fprintf(&b, "  %-22s %.3f\n", name, float64(hits)/float64(len(ds.Test)))
	}
	score("copy v2 score", func(v float64) float64 { return v })
	score("v2 + 1.0", func(v float64) float64 { return v + 1.0 })
	score("v2 + 1.5", func(v float64) float64 { return v + 1.5 })
	best := s.Result.Engine.Evaluation(s.Result.Engine.Best())
	fmt.Fprintf(&b, "  %-22s %.3f\n", "trained "+best.Model.String(), best.Accuracy)
	return b.String(), nil
}

func severityBand(score float64) int {
	switch {
	case score < 4:
		return 0
	case score < 7:
		return 1
	case score < 9:
		return 2
	default:
		return 3
	}
}

// Ablations returns the design-choice sweeps called out in DESIGN.md.
func (s *Suite) Ablations(ctx context.Context) []Experiment {
	return []Experiment{
		{"ablation-topk", "Crawl domain cut-off sweep", func() (string, error) { return s.AblationTopK(ctx) }},
		{"ablation-lcs", "Vendor LCS threshold sweep", s.AblationLCS},
		{"ablation-dong", "Product baseline comparison", s.AblationDong},
		{"ablation-knn", "Type classifier k / dim sweep", s.AblationKNN},
		{"ablation-naive", "Naive severity baselines", s.AblationNaiveSeverity},
	}
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
