// Package experiments drives the reproduction of every table and
// figure in the paper's evaluation: it generates (or accepts) a
// snapshot, runs the full cleaning pipeline once, and renders each
// experiment from the shared artifacts. cmd/nvdreport prints the
// results; the repository's benchmark suite times them.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nvdclean"
	"nvdclean/internal/analysis"
	"nvdclean/internal/crawler"
	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
	"nvdclean/internal/otherdb"
	"nvdclean/internal/parallel"
	"nvdclean/internal/predict"
	"nvdclean/internal/report"
	"nvdclean/internal/stats"
	"nvdclean/internal/webcorpus"
)

// Suite holds the shared artifacts of one reproduction run.
type Suite struct {
	Cfg    gen.Config
	Snap   *cve.Snapshot
	Truth  *gen.Truth
	Uni    *gen.Universe
	Corpus *webcorpus.Corpus
	Result *nvdclean.Result
	// Concurrency bounds RenderAll's parallelism (zero: GOMAXPROCS).
	Concurrency int
	// render, when set, is the per-render worker budget RenderAll
	// hands each experiment so the aggregate bound stays exact; zero
	// (individual renders) means the full Concurrency.
	render int
}

// workers returns the worker bound a render should use internally.
func (s *Suite) workers() int {
	if s.render > 0 {
		return s.render
	}
	return s.Concurrency
}

// Options tunes suite construction.
type Options struct {
	// Scale is the generator configuration.
	Scale gen.Config
	// Models to train; nil trains all four.
	Models []predict.ModelKind
	// ModelConfig tunes training cost.
	ModelConfig predict.ModelConfig
	// Concurrency bounds the parallelism of every pipeline stage and
	// of RenderAll. Zero means GOMAXPROCS; suite artifacts and
	// rendered experiments are identical at any setting.
	Concurrency int
}

// NewSuite generates the snapshot, builds the simulated web, and runs
// the full pipeline.
func NewSuite(ctx context.Context, opts Options) (*Suite, error) {
	snap, truth, uni, err := gen.Generate(opts.Scale)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating snapshot: %w", err)
	}
	corpus := webcorpus.New(snap, truth.Disclosure)
	res, err := nvdclean.Clean(ctx, snap, nvdclean.Options{
		Transport:   corpus.Transport(),
		Concurrency: opts.Concurrency,
		Models:      opts.Models,
		ModelConfig: opts.ModelConfig,
		Seed:        opts.Scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: cleaning: %w", err)
	}
	return &Suite{
		Cfg: opts.Scale, Snap: snap, Truth: truth, Uni: uni,
		Corpus: corpus, Result: res, Concurrency: opts.Concurrency,
	}, nil
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID matches the paper's numbering: "fig1", "table2", ….
	ID string
	// Title is the paper caption, abbreviated.
	Title string
	// Render computes and formats the experiment.
	Render func() (string, error)
}

// All returns every experiment in paper order.
func (s *Suite) All() []Experiment {
	return []Experiment{
		{"fig1", "CDF of vulnerability lag times", s.Fig1},
		{"table2", "Vendor naming inconsistency patterns", s.Table2},
		{"table3", "Cross-database name inconsistencies", s.Table3},
		{"table4", "v2 to v3 ground-truth transitions", s.Table4},
		{"table5", "Model prediction errors", s.Table5},
		{"table6", "Predicted transitions for v2-only CVEs", s.Table6},
		{"table7", "Model accuracy by input class", s.Table7},
		{"table8", "Top dates by publication and disclosure", s.Table8},
		{"fig2", "CVEs per day of week", s.Fig2},
		{"table9", "Severity distributions", s.Table9},
		{"fig3", "Yearly severity distributions", s.Fig3},
		{"table10", "Top types by severity", s.Table10},
		{"table11", "Top vendors", s.Table11},
		{"table12", "Mislabeled CVEs by severity", s.Table12},
		{"fig4", "Average lag by severity", s.Fig4},
		{"fig5", "PCA of v2 features", s.Fig5},
		{"table13", "Ground-truth prediction results", s.Table13},
		{"table14", "Test-split ground truth", s.Table14},
		{"table15", "Test-split predictions", s.Table15},
		{"table16", "Mislabeled-vendor case studies", s.Table16},
		{"cwefix", "CWE field correction summary", s.CWEFix},
		{"importance", "Severity-model feature importance", s.Importance},
	}
}

// Rendered is one experiment's computed output.
type Rendered struct {
	ID, Title, Output string
	Err               error
}

// RenderAll computes every experiment concurrently — each render reads
// only the suite's shared artifacts — and returns the results in paper
// order. Outputs are identical to rendering serially; only wall-clock
// time changes with the worker bound. The bound is exact in aggregate:
// renders fan out across at most min(Concurrency, #experiments)
// workers, and each render's internal parallelism (the engine's batch
// scoring, the naming re-analysis) is capped at the remaining share of
// the budget, so total parallelism never multiplies across levels.
func (s *Suite) RenderAll() []Rendered {
	total := parallel.Workers(s.Concurrency)
	exps := s.All()
	outer := len(exps)
	if total < outer {
		outer = total
	}
	inner := total / outer
	if inner < 1 {
		inner = 1
	}
	// Renders go through a shallow copy carrying the per-render share,
	// so individually invoked experiments keep the full budget.
	sub := *s
	sub.render = inner
	exps = sub.All()
	out := make([]Rendered, len(exps))
	parallel.For(outer, len(exps), func(i int) {
		r := Rendered{ID: exps[i].ID, Title: exps[i].Title}
		r.Output, r.Err = exps[i].Render()
		out[i] = r
	})
	return out
}

// Importance renders the §4.3 feature-influence finding ("the
// confidentiality, base score, and integrity are important features")
// via permutation importance of the selected model.
func (s *Suite) Importance() (string, error) {
	ds, err := predict.BuildDataset(s.Result.Cleaned, s.Cfg.Seed)
	if err != nil {
		return "", err
	}
	imp, err := s.Result.Engine.FeatureImportanceN(ds, s.Cfg.Seed, s.workers())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Feature importance of the %s model (accuracy drop when shuffled):\n",
		s.Result.Engine.Best())
	for _, im := range imp {
		fmt.Fprintf(&b, "  %-26s %+.4f\n", im.Feature, im.AccuracyDrop)
	}
	return b.String(), nil
}

// Fig1 renders the lag CDF.
func (s *Suite) Fig1() (string, error) {
	lags := make([]float64, 0, s.Snap.Len())
	for _, e := range s.Snap.Entries {
		if lag, ok := s.Result.LagDays[e.ID]; ok {
			lags = append(lags, float64(lag))
		}
	}
	var b strings.Builder
	if err := report.Fig1(&b, lags); err != nil {
		return "", err
	}
	if err := report.CrawlSummary(&b,
		s.Result.CrawlStats.URLs, s.Result.CrawlStats.Skipped,
		s.Result.CrawlStats.DeadDomain, s.Result.CrawlStats.Fetched,
		s.Result.CrawlStats.Extracted); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Table2 renders the vendor-pattern taxonomy, using the generator's
// ground truth as the confirmation oracle (the paper's manual vetting).
func (s *Suite) Table2() (string, error) {
	va := naming.AnalyzeVendorsN(s.Snap, s.workers())
	tbl := naming.BuildTable2(va, naming.OracleJudge{Canonical: s.Truth.CanonicalVendor})
	var b strings.Builder
	if err := report.Table2(&b, tbl); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "confirm rate: %.2f\n", tbl.ConfirmRate())
	return b.String(), nil
}

// Table3 renders the NVD / SecurityFocus / SecurityTracker summary.
func (s *Suite) Table3() (string, error) {
	rows := []report.Table3Row{{
		Database:           "NVD",
		VendorNames:        s.Snap.DistinctVendors(),
		VendorImpacted:     s.Result.VendorMap.Len(),
		VendorConsolidated: len(s.Result.VendorMap.Targets()),
		ProductNames:       s.Snap.DistinctProducts(),
		ProductImpacted:    s.Result.ProductMap.Len(),
		ProductVendors:     len(s.Result.ProductMap.Vendors()),
		HasProducts:        true,
	}}
	for _, cfg := range []otherdb.Config{otherdb.DefaultSF(), otherdb.DefaultST()} {
		db := otherdb.Build(s.Uni, cfg)
		rows = append(rows, report.OtherDBRow(db.ApplyVendorMap(s.Result.VendorMap)))
	}
	var b strings.Builder
	err := report.Table3(&b, rows)
	return b.String(), err
}

// Table4 renders the ground-truth v2→v3 transition matrix.
func (s *Suite) Table4() (string, error) {
	m := predict.TransitionMatrix(predict.GroundTruthTransitions(s.Snap))
	var b strings.Builder
	err := report.Transition(&b, "Table 4: Transformation from v2 to v3 (ground truth)", m)
	return b.String(), err
}

// Table5 renders model errors.
func (s *Suite) Table5() (string, error) {
	var b strings.Builder
	err := report.Table5(&b, s.Result.Engine.Evaluations())
	return b.String(), err
}

// Table6 renders the predicted transitions of backported CVEs.
func (s *Suite) Table6() (string, error) {
	m := predict.TransitionMatrix(predict.PredictedTransitions(s.Result.Cleaned, s.Result.Backport))
	var b strings.Builder
	err := report.Transition(&b, "Table 6: v2 to predicted v3 for v2-only CVEs", m)
	return b.String(), err
}

// Table7 renders model accuracy.
func (s *Suite) Table7() (string, error) {
	var b strings.Builder
	if err := report.Table7(&b, s.Result.Engine.Evaluations()); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "selected model: %s\n", s.Result.Engine.Best())
	return b.String(), nil
}

// Table8 renders top dates under both date fields.
func (s *Suite) Table8() (string, error) {
	pub := analysis.TopDates(analysis.PublishedDates(s.Snap), 10)
	edd := analysis.TopDates(s.estimatedDates(), 10)
	var b strings.Builder
	err := report.Table8(&b, pub, edd)
	return b.String(), err
}

func (s *Suite) estimatedDates() []time.Time {
	out := make([]time.Time, 0, len(s.Result.EstimatedDisclosure))
	for _, e := range s.Snap.Entries {
		if d, ok := s.Result.EstimatedDisclosure[e.ID]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Fig2 renders the day-of-week comparison.
func (s *Suite) Fig2() (string, error) {
	disc := analysis.DayOfWeekCounts(s.estimatedDates())
	pub := analysis.DayOfWeekCounts(analysis.PublishedDates(s.Snap))
	var b strings.Builder
	err := report.Fig2(&b, disc, pub)
	return b.String(), err
}

// Table9 renders overall severity distributions.
func (s *Suite) Table9() (string, error) {
	v2 := analysis.SeverityDistribution(s.Result.Cleaned, analysis.ScoreV2, nil)
	pv3 := analysis.SeverityDistribution(s.Result.Cleaned, analysis.ScorePV3, s.Result.Backport)
	var b strings.Builder
	err := report.Table9(&b, v2, pv3)
	return b.String(), err
}

// Fig3 renders yearly severity stacks.
func (s *Suite) Fig3() (string, error) {
	yearly := analysis.YearlySeverity(s.Result.Cleaned, s.Result.Backport)
	var b strings.Builder
	err := report.Fig3(&b, yearly)
	return b.String(), err
}

// Table10 renders top types by severity band under the three scorings.
func (s *Suite) Table10() (string, error) {
	cols := map[string][]analysis.TypeCount{
		"v2 High":      analysis.TopTypes(s.Result.Cleaned, analysis.ScoreV2, cvss.SeverityHigh, 10, nil),
		"v3 High":      analysis.TopTypes(s.Result.Cleaned, analysis.ScoreV3, cvss.SeverityHigh, 10, nil),
		"v3 Critical":  analysis.TopTypes(s.Result.Cleaned, analysis.ScoreV3, cvss.SeverityCritical, 10, nil),
		"pv3 High":     analysis.TopTypes(s.Result.Cleaned, analysis.ScorePV3, cvss.SeverityHigh, 10, s.Result.Backport),
		"pv3 Critical": analysis.TopTypes(s.Result.Cleaned, analysis.ScorePV3, cvss.SeverityCritical, 10, s.Result.Backport),
	}
	var b strings.Builder
	err := report.Table10(&b, cols)
	return b.String(), err
}

// Table11 renders top vendors before and after naming fixes.
func (s *Suite) Table11() (string, error) {
	cveAfter := analysis.TopVendorsByCVE(s.Result.Cleaned, 10)
	prodAfter := analysis.TopVendorsByProducts(s.Result.Cleaned, 10)
	// Unbounded "before" lists so the lookup finds vendors that only
	// enter the top 10 after consolidation.
	cveBefore := analysis.TopVendorsByCVE(s.Result.Original, 0)
	prodBefore := analysis.TopVendorsByProducts(s.Result.Original, 0)
	var b strings.Builder
	err := report.Table11(&b, cveAfter, cveBefore, prodAfter, prodBefore)
	return b.String(), err
}

// Table12 renders the mislabeled-CVE severity breakdown.
func (s *Suite) Table12() (string, error) {
	v2 := analysis.MislabeledBySeverity(s.Result.Cleaned, s.Result.VendorChanged, s.Result.ProductChanged, analysis.ScoreV2, nil)
	pv3 := analysis.MislabeledBySeverity(s.Result.Cleaned, s.Result.VendorChanged, s.Result.ProductChanged, analysis.ScorePV3, s.Result.Backport)
	var b strings.Builder
	err := report.Table12(&b, v2, pv3)
	return b.String(), err
}

// Fig4 renders average lag by pv3 severity.
func (s *Suite) Fig4() (string, error) {
	avg := analysis.AvgLagBySeverity(s.Result.Cleaned, s.Result.LagDays, analysis.ScorePV3, s.Result.Backport)
	var b strings.Builder
	err := report.Fig4(&b, avg)
	return b.String(), err
}

// Fig5 renders the PCA of the dual-labeled feature space: the pooled
// view plus the paper's per-v2-band sub-figures 5(a)–(c), which show
// how vulnerabilities of each v2 class scatter across their resulting
// v3 labels.
func (s *Suite) Fig5() (string, error) {
	enc := predict.NeutralCWEEncoder()
	var rows [][]float64
	var v3Labels, v2Labels []cvss.Severity
	for _, e := range s.Snap.Entries {
		if e.V2 == nil || e.V3 == nil {
			continue
		}
		rows = append(rows, enc.Features(*e.V2, firstCWE(e)))
		v3Labels = append(v3Labels, e.V3.Severity())
		v2Labels = append(v2Labels, e.V2.Severity())
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("experiments: no dual-labeled CVEs for PCA")
	}
	p, err := stats.FitPCA(rows, 3)
	if err != nil {
		return "", err
	}
	proj, err := p.TransformAll(rows)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := report.Fig5(&b, p, proj, v3Labels); err != nil {
		return "", err
	}
	// Sub-figures (a)-(c): one projection summary per v2 input band.
	for _, band := range []cvss.Severity{cvss.SeverityLow, cvss.SeverityMedium, cvss.SeverityHigh} {
		var subProj [][]float64
		var subLabels []cvss.Severity
		for i := range rows {
			if v2Labels[i] != band {
				continue
			}
			subProj = append(subProj, proj[i])
			subLabels = append(subLabels, v3Labels[i])
		}
		if len(subProj) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nFigure 5(%s): v2 %s vulnerabilities by resulting v3 label\n",
			strings.ToLower(band.Abbrev()), band)
		if err := report.Fig5Band(&b, subProj, subLabels); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func firstCWE(e *cve.Entry) cwe.ID {
	for _, c := range e.CWEs {
		if !c.IsMeta() {
			return c
		}
	}
	return cwe.Unassigned
}

// Table13 renders the best model's predictions over the whole ground
// truth (train + test), the appendix A.2 sanity check.
func (s *Suite) Table13() (string, error) {
	ds, err := predict.BuildDataset(s.Result.Cleaned, s.Cfg.Seed)
	if err != nil {
		return "", err
	}
	full := &predict.Dataset{
		Test:    append(append([]predict.Sample{}, ds.Train...), ds.Test...),
		Encoder: ds.Encoder,
	}
	_, pred, err := s.Result.Engine.TestTransitionsN(full, s.workers())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	err = report.Transition(&b, "Table 13: Ground truth — prediction results", predict.TransitionMatrix(pred))
	return b.String(), err
}

// Table14 renders the test split's true transitions.
func (s *Suite) Table14() (string, error) {
	ds, err := predict.BuildDataset(s.Result.Cleaned, s.Cfg.Seed)
	if err != nil {
		return "", err
	}
	truth, _, err := s.Result.Engine.TestTransitionsN(ds, s.workers())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	err = report.Transition(&b, "Table 14: Test dataset — ground truth", predict.TransitionMatrix(truth))
	return b.String(), err
}

// Table15 renders the test split's predicted transitions.
func (s *Suite) Table15() (string, error) {
	ds, err := predict.BuildDataset(s.Result.Cleaned, s.Cfg.Seed)
	if err != nil {
		return "", err
	}
	_, pred, err := s.Result.Engine.TestTransitionsN(ds, s.workers())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	err = report.Transition(&b, "Table 15: Test dataset — prediction results", predict.TransitionMatrix(pred))
	return b.String(), err
}

// Table16 renders sampled mislabeled-vendor case studies.
func (s *Suite) Table16() (string, error) {
	cases := analysis.SampleCaseStudies(s.Result.Original, s.Result.VendorChanged, 10, s.Cfg.Seed)
	var b strings.Builder
	err := report.Table16(&b, cases)
	return b.String(), err
}

// CWEFix summarizes the §4.4 correction counts.
func (s *Suite) CWEFix() (string, error) {
	c := s.Result.CWECorrection
	var b strings.Builder
	fmt.Fprintln(&b, "CWE field correction (§4.4):")
	fmt.Fprintf(&b, "  corrected CVEs:        %d\n", c.Corrected)
	fmt.Fprintf(&b, "  from NVD-CWE-Other:    %d\n", c.FromOther)
	fmt.Fprintf(&b, "  from NVD-CWE-noinfo:   %d\n", c.FromNoInfo)
	fmt.Fprintf(&b, "  from unassigned:       %d\n", c.FromUnassigned)
	fmt.Fprintf(&b, "  typed gaining labels:  %d\n", c.FromTyped)
	return b.String(), nil
}

// CrawlResults re-runs the §4.1 crawl with a given top-K, for the
// domain-coverage ablation.
func (s *Suite) CrawlResults(ctx context.Context, topK int) (crawler.Stats, error) {
	c, err := crawler.New(crawler.Config{
		Transport:   s.Corpus.Transport(),
		TopK:        topK,
		Concurrency: s.Concurrency,
	})
	if err != nil {
		return crawler.Stats{}, err
	}
	_, stats, err := c.EstimateAll(ctx, s.Snap)
	return stats, err
}
