package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"nvdclean/internal/gen"
	"nvdclean/internal/predict"
)

var (
	sharedSuite *Suite
	suiteOnce   sync.Once
	suiteErr    error
)

// testSuite builds one shared small-scale suite (pipeline + LR model)
// for all experiment tests.
func testSuite(t testing.TB) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		sharedSuite, suiteErr = NewSuite(context.Background(), Options{
			Scale:       gen.SmallConfig(),
			Models:      []predict.ModelKind{predict.ModelLR, predict.ModelDNN},
			ModelConfig: predict.ModelConfig{Epochs: 15, Compact: true, Seed: 1},
			Concurrency: 16,
		})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return sharedSuite
}

func TestAllExperimentsRender(t *testing.T) {
	s := testSuite(t)
	for _, exp := range s.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			out, err := exp.Render()
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(out) < 20 {
				t.Errorf("%s: suspiciously short output %q", exp.ID, out)
			}
		})
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	s := testSuite(t)
	seen := make(map[string]bool)
	for _, exp := range s.All() {
		if seen[exp.ID] {
			t.Errorf("duplicate experiment id %s", exp.ID)
		}
		seen[exp.ID] = true
		if exp.Title == "" {
			t.Errorf("%s: empty title", exp.ID)
		}
	}
	// All paper tables (2-16) and figures (1-5) are covered.
	for _, id := range []string{
		"fig1", "fig2", "fig3", "fig4", "fig5",
		"table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12",
		"table13", "table14", "table15", "table16",
	} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestFig1MentionsZeroLagShare(t *testing.T) {
	s := testSuite(t)
	out, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lag <=     0 days") {
		t.Errorf("zero-lag row missing:\n%s", out)
	}
	if !strings.Contains(out, "Reference crawl summary") {
		t.Error("crawl summary missing")
	}
}

func TestTable3HasThreeDatabases(t *testing.T) {
	s := testSuite(t)
	out, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []string{"NVD", "SF", "ST"} {
		if !strings.Contains(out, db) {
			t.Errorf("database %s missing:\n%s", db, out)
		}
	}
}

func TestTable7NamesSelectedModel(t *testing.T) {
	s := testSuite(t)
	out, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "selected model:") {
		t.Errorf("selected model missing:\n%s", out)
	}
}

func TestAblationsRender(t *testing.T) {
	s := testSuite(t)
	for _, exp := range s.Ablations(context.Background()) {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			out, err := exp.Render()
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(out) < 20 {
				t.Errorf("%s: output too short:\n%s", exp.ID, out)
			}
		})
	}
}

func TestAblationTopKShowsDiminishingReturns(t *testing.T) {
	s := testSuite(t)
	out, err := s.AblationTopK(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("expected 4 sweep rows:\n%s", out)
	}
}
