package cve

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

func TestFeedRoundTrip(t *testing.T) {
	orig := &Snapshot{
		CapturedAt: time.Date(2018, 5, 21, 12, 0, 0, 0, time.UTC),
		Entries: []*Entry{
			sampleEntry(t),
			{
				ID:        "CVE-2017-5638",
				Published: time.Date(2017, 3, 11, 2, 29, 0, 0, time.UTC),
				Descriptions: []Description{
					{Value: "The Jakarta Multipart parser in Apache Struts 2 has incorrect exception handling"},
				},
				CWEs: []cwe.ID{cwe.ID(20)},
				V2:   mustV2(t, "AV:N/AC:L/Au:N/C:C/I:C/A:C"),
				V3:   mustV3(t, "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"),
				CPEs: []cpe.Name{
					cpe.NewName(cpe.PartApplication, "apache", "struts", "2.3.5"),
				},
				References: []Reference{
					{URL: "https://advisory.example/s2-045"},
				},
			},
			{
				// Entry with meta CWE and no impact at all.
				ID:           "CVE-2000-0001",
				Published:    time.Date(2000, 1, 4, 0, 0, 0, 0, time.UTC),
				Descriptions: []Description{{Value: "legacy entry"}},
				CWEs:         []cwe.ID{cwe.Other},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteFeed(&buf, orig); err != nil {
		t.Fatalf("WriteFeed: %v", err)
	}
	got, err := ReadFeed(&buf)
	if err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	if !got.CapturedAt.Equal(orig.CapturedAt) {
		t.Errorf("CapturedAt = %v, want %v", got.CapturedAt, orig.CapturedAt)
	}
	if len(got.Entries) != len(orig.Entries) {
		t.Fatalf("entries = %d, want %d", len(got.Entries), len(orig.Entries))
	}
	for i, want := range orig.Entries {
		e := got.Entries[i]
		if e.ID != want.ID {
			t.Errorf("entry %d ID = %s, want %s", i, e.ID, want.ID)
		}
		if !e.Published.Equal(want.Published.Truncate(time.Minute)) {
			t.Errorf("entry %d Published = %v, want %v", i, e.Published, want.Published)
		}
		if len(e.CWEs) != len(want.CWEs) {
			t.Errorf("entry %d CWEs = %v, want %v", i, e.CWEs, want.CWEs)
		} else {
			for j := range want.CWEs {
				if e.CWEs[j] != want.CWEs[j] {
					t.Errorf("entry %d CWE %d = %v, want %v", i, j, e.CWEs[j], want.CWEs[j])
				}
			}
		}
		if (e.V2 == nil) != (want.V2 == nil) || (e.V3 == nil) != (want.V3 == nil) {
			t.Errorf("entry %d vector presence mismatch", i)
		}
		if e.V2 != nil && *e.V2 != *want.V2 {
			t.Errorf("entry %d V2 = %v, want %v", i, e.V2, want.V2)
		}
		if e.V3 != nil && *e.V3 != *want.V3 {
			t.Errorf("entry %d V3 = %v, want %v", i, e.V3, want.V3)
		}
		if len(e.CPEs) != len(want.CPEs) {
			t.Errorf("entry %d CPEs = %d, want %d", i, len(e.CPEs), len(want.CPEs))
		}
		if len(e.References) != len(want.References) {
			t.Errorf("entry %d refs = %d, want %d", i, len(e.References), len(want.References))
		}
		if len(e.Descriptions) != len(want.Descriptions) {
			t.Errorf("entry %d descriptions = %d, want %d", i, len(e.Descriptions), len(want.Descriptions))
		} else {
			for j := range want.Descriptions {
				if e.Descriptions[j] != want.Descriptions[j] {
					t.Errorf("entry %d description %d = %+v, want %+v", i, j, e.Descriptions[j], want.Descriptions[j])
				}
			}
		}
	}
}

// A hand-written fragment in the real NVD 1.1 shape must parse.
func TestReadFeedRealShape(t *testing.T) {
	const feed = `{
  "CVE_data_type": "CVE",
  "CVE_data_format": "MITRE",
  "CVE_data_version": "4.0",
  "CVE_data_numberOfCVEs": "1",
  "CVE_data_timestamp": "2018-05-21T07:00Z",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2014-0160", "ASSIGNER": "cve@mitre.org"},
        "problemtype": {"problemtype_data": [{"description": [{"lang": "en", "value": "CWE-119"}]}]},
        "references": {"reference_data": [
          {"url": "http://www.securityfocus.com/bid/66690", "name": "66690", "tags": ["Third Party Advisory"]}
        ]},
        "description": {"description_data": [{"lang": "en", "value": "The TLS and DTLS implementations in OpenSSL do not properly handle Heartbeat Extension packets."}]}
      },
      "configurations": {
        "CVE_data_version": "4.0",
        "nodes": [{"operator": "OR", "cpe_match": [
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:a:openssl:openssl:1.0.1:*:*:*:*:*:*:*"},
          {"vulnerable": false, "cpe23Uri": "cpe:2.3:a:openssl:openssl:1.0.2:*:*:*:*:*:*:*"}
        ]}]
      },
      "impact": {
        "baseMetricV2": {
          "cvssV2": {"version": "2.0", "vectorString": "AV:N/AC:L/Au:N/C:P/I:N/A:N", "baseScore": 5.0},
          "severity": "MEDIUM"
        }
      },
      "publishedDate": "2014-04-07T22:55Z",
      "lastModifiedDate": "2018-05-11T01:29Z"
    }
  ]
}`
	s, err := ReadFeed(strings.NewReader(feed))
	if err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("entries = %d", s.Len())
	}
	e := s.Entries[0]
	if e.ID != "CVE-2014-0160" {
		t.Errorf("ID = %s", e.ID)
	}
	if len(e.CWEs) != 1 || e.CWEs[0] != cwe.ID(119) {
		t.Errorf("CWEs = %v", e.CWEs)
	}
	// Only the vulnerable cpe_match is collected.
	if len(e.CPEs) != 1 || e.CPEs[0].Vendor != "openssl" {
		t.Errorf("CPEs = %v", e.CPEs)
	}
	if e.V2 == nil || e.V2.BaseScore() != 5.0 {
		t.Errorf("V2 = %v", e.V2)
	}
	if e.V3 != nil {
		t.Error("V3 should be absent")
	}
	sev, _ := e.SeverityV2()
	if sev != cvss.SeverityMedium {
		t.Errorf("severity = %v", sev)
	}
	if e.Published.Year() != 2014 || e.LastModified.Year() != 2018 {
		t.Errorf("dates = %v / %v", e.Published, e.LastModified)
	}
}

func TestReadFeedErrors(t *testing.T) {
	cases := []struct {
		name string
		feed string
	}{
		{"not json", "{"},
		{"bad cve id", `{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"bogus"}},"publishedDate":"2014-04-07T22:55Z"}]}`},
		{"bad date", `{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"CVE-2014-0001"}},"publishedDate":"yesterday"}]}`},
		{"bad v2 vector", `{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"CVE-2014-0001"}},"publishedDate":"2014-04-07T22:55Z","impact":{"baseMetricV2":{"cvssV2":{"vectorString":"AV:X"}}}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFeed(strings.NewReader(tc.feed)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadFeedSkipsMalformedCPE(t *testing.T) {
	const feed = `{"CVE_Items":[{
    "cve":{"CVE_data_meta":{"ID":"CVE-2014-0001"}},
    "publishedDate":"2014-04-07T22:55Z",
    "configurations":{"nodes":[{"cpe_match":[
      {"vulnerable":true,"cpe23Uri":"not-a-cpe"},
      {"vulnerable":true,"cpe23Uri":"cpe:2.3:a:ok:fine:*:*:*:*:*:*:*:*"}
    ]}]}}]}`
	s, err := ReadFeed(strings.NewReader(feed))
	if err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	if len(s.Entries[0].CPEs) != 1 || s.Entries[0].CPEs[0].Vendor != "ok" {
		t.Errorf("CPEs = %v", s.Entries[0].CPEs)
	}
}

func TestReadFeedNestedNodes(t *testing.T) {
	const feed = `{"CVE_Items":[{
    "cve":{"CVE_data_meta":{"ID":"CVE-2014-0001"}},
    "publishedDate":"2014-04-07T22:55Z",
    "configurations":{"nodes":[{"operator":"AND","children":[
      {"operator":"OR","cpe_match":[{"vulnerable":true,"cpe23Uri":"cpe:2.3:a:nested:prod:*:*:*:*:*:*:*:*"}]}
    ]}]}}]}`
	s, err := ReadFeed(strings.NewReader(feed))
	if err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	if len(s.Entries[0].CPEs) != 1 || s.Entries[0].CPEs[0].Vendor != "nested" {
		t.Errorf("nested CPEs = %v", s.Entries[0].CPEs)
	}
}

func BenchmarkWriteFeed(b *testing.B) {
	s := &Snapshot{CapturedAt: time.Now()}
	for i := 0; i < 100; i++ {
		e := sampleEntry(b)
		e.ID = FormatID(2015, i+1)
		s.Entries = append(s.Entries, e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteFeed(&buf, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFeed(b *testing.B) {
	s := &Snapshot{CapturedAt: time.Now()}
	for i := 0; i < 100; i++ {
		e := sampleEntry(b)
		e.ID = FormatID(2015, i+1)
		s.Entries = append(s.Entries, e)
	}
	var buf bytes.Buffer
	if err := WriteFeed(&buf, s); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFeed(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
