package cve

import (
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

func mustV2(t testing.TB, s string) *cvss.VectorV2 {
	t.Helper()
	v, err := cvss.ParseV2(s)
	if err != nil {
		t.Fatal(err)
	}
	return &v
}

func mustV3(t testing.TB, s string) *cvss.VectorV3 {
	t.Helper()
	v, err := cvss.ParseV3(s)
	if err != nil {
		t.Fatal(err)
	}
	return &v
}

func sampleEntry(t testing.TB) *Entry {
	return &Entry{
		ID:           "CVE-2011-0700",
		Published:    time.Date(2011, 3, 14, 0, 0, 0, 0, time.UTC),
		LastModified: time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
		Descriptions: []Description{
			{Value: "Cross-site scripting (XSS) vulnerability in WordPress before 3.0.5"},
			{Source: "evaluator", Value: "Per CWE-79, input is not sanitized."},
		},
		CWEs: []cwe.ID{cwe.ID(79)},
		V2:   mustV2(t, "AV:N/AC:M/Au:N/C:N/I:P/A:N"),
		CPEs: []cpe.Name{
			cpe.NewName(cpe.PartApplication, "wordpress", "wordpress", "3.0.4"),
		},
		References: []Reference{
			{URL: "https://securityfocus.example/bid/46365", Tags: []string{"Third Party Advisory"}},
		},
	}
}

func TestSplitID(t *testing.T) {
	tests := []struct {
		id        string
		year, seq int
		wantErr   bool
	}{
		{"CVE-2011-0700", 2011, 700, false},
		{"CVE-1999-0001", 1999, 1, false},
		{"CVE-2018-123456", 2018, 123456, false},
		{"cve-2011-0700", 0, 0, true},
		{"CVE-2011", 0, 0, true},
		{"CVE-abcd-0001", 0, 0, true},
		{"CVE-1980-0001", 0, 0, true},
		{"CVE-2011-x", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, tt := range tests {
		y, s, err := SplitID(tt.id)
		if (err != nil) != tt.wantErr {
			t.Errorf("SplitID(%q) error = %v, wantErr %v", tt.id, err, tt.wantErr)
			continue
		}
		if err == nil && (y != tt.year || s != tt.seq) {
			t.Errorf("SplitID(%q) = %d, %d", tt.id, y, s)
		}
	}
}

func TestFormatID(t *testing.T) {
	if got := FormatID(2011, 700); got != "CVE-2011-0700" {
		t.Errorf("FormatID = %q", got)
	}
	if got := FormatID(2018, 123456); got != "CVE-2018-123456" {
		t.Errorf("FormatID wide seq = %q", got)
	}
}

func TestEntryYear(t *testing.T) {
	e := sampleEntry(t)
	if e.Year() != 2011 {
		t.Errorf("Year() = %d", e.Year())
	}
	bad := &Entry{ID: "garbage"}
	if bad.Year() != 0 {
		t.Errorf("bad id Year() = %d, want 0", bad.Year())
	}
}

func TestEntryAccessors(t *testing.T) {
	e := sampleEntry(t)
	if got := e.Description(); got == "" || got[:10] != "Cross-site" {
		t.Errorf("Description() = %q", got)
	}
	all := e.AllDescriptionText()
	if all == "" || !contains(all, "CWE-79") {
		t.Errorf("AllDescriptionText() = %q", all)
	}
	if e.HasV3() {
		t.Error("sample has no v3")
	}
	sev, ok := e.SeverityV2()
	if !ok || sev != cvss.SeverityMedium {
		t.Errorf("SeverityV2 = %v, %v", sev, ok)
	}
	if _, ok := e.SeverityV3(); ok {
		t.Error("SeverityV3 should be absent")
	}
	if !e.HasCWE(cwe.ID(79)) || e.HasCWE(cwe.ID(89)) {
		t.Error("HasCWE wrong")
	}
	if !e.Typed() {
		t.Error("entry with CWE-79 is typed")
	}
	untyped := &Entry{ID: "CVE-2000-0001", CWEs: []cwe.ID{cwe.Other}}
	if untyped.Typed() {
		t.Error("NVD-CWE-Other only entry should be untyped")
	}
}

func TestVendors(t *testing.T) {
	e := sampleEntry(t)
	e.CPEs = append(e.CPEs,
		cpe.NewName(cpe.PartApplication, "wordpress", "multisite", "1.0"),
		cpe.NewName(cpe.PartApplication, "acme", "blog", "2.0"),
	)
	got := e.Vendors()
	if len(got) != 2 || got[0] != "wordpress" || got[1] != "acme" {
		t.Errorf("Vendors() = %v", got)
	}
}

func TestClone(t *testing.T) {
	e := sampleEntry(t)
	c := e.Clone()
	c.CWEs[0] = cwe.ID(89)
	c.CPEs[0] = c.CPEs[0].WithVendor("other")
	c.Descriptions[0].Value = "changed"
	c.References[0].URL = "changed"
	*c.V2 = cvss.VectorV2{}
	if e.CWEs[0] != cwe.ID(79) || e.CPEs[0].Vendor != "wordpress" ||
		e.Descriptions[0].Value == "changed" || e.References[0].URL == "changed" ||
		!e.V2.Valid() {
		t.Error("Clone shares state with original")
	}
}

func TestSnapshotSortAndByID(t *testing.T) {
	s := &Snapshot{Entries: []*Entry{
		{ID: "CVE-2018-0002"},
		{ID: "CVE-1999-0100"},
		{ID: "CVE-2018-0001"},
	}}
	s.Sort()
	want := []string{"CVE-1999-0100", "CVE-2018-0001", "CVE-2018-0002"}
	for i, w := range want {
		if s.Entries[i].ID != w {
			t.Errorf("Entries[%d] = %s, want %s", i, s.Entries[i].ID, w)
		}
	}
	if s.ByID("CVE-2018-0001") == nil {
		t.Error("ByID missed existing entry")
	}
	if s.ByID("CVE-2020-9999") != nil {
		t.Error("ByID found nonexistent entry")
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d", s.Len())
	}
}

func TestSnapshotVendorStats(t *testing.T) {
	mk := func(id, vendor, product string) *Entry {
		return &Entry{ID: id, CPEs: []cpe.Name{cpe.NewName(cpe.PartApplication, vendor, product, "1")}}
	}
	s := &Snapshot{Entries: []*Entry{
		mk("CVE-2001-0001", "microsoft", "ie"),
		mk("CVE-2001-0002", "microsoft", "word"),
		mk("CVE-2001-0003", "oracle", "database"),
	}}
	counts := s.VendorCVECount()
	if counts["microsoft"] != 2 || counts["oracle"] != 1 {
		t.Errorf("VendorCVECount = %v", counts)
	}
	if s.DistinctVendors() != 2 {
		t.Errorf("DistinctVendors = %d", s.DistinctVendors())
	}
	if s.DistinctProducts() != 3 {
		t.Errorf("DistinctProducts = %d", s.DistinctProducts())
	}
	prods := s.VendorProducts()
	if len(prods["microsoft"]) != 2 {
		t.Errorf("VendorProducts[microsoft] = %v", prods["microsoft"])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
