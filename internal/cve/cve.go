// Package cve defines the vulnerability entry model of the NVD and a
// codec for the NVD JSON 1.1 data-feed format. An Entry carries exactly
// the fields the paper studies (§3): the CVE identifier, publication
// date, CWE types, CVSS v2/v3 base metrics, the affected CPE names, the
// free-form descriptions, and the reference URLs.
package cve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// Description is one free-form description of a CVE. The typical entry
// explains the security concern; a second common one is the evaluator's
// comment, which is where stray CWE IDs appear (§4.4).
type Description struct {
	Source string // e.g. "cve@mitre.org" or "evaluator"
	Value  string
}

// Reference is an external URL attached to a CVE (advisory, bug report,
// vulnerability database page).
type Reference struct {
	URL  string
	Tags []string
}

// Entry is one CVE record.
type Entry struct {
	// ID is the CVE identifier, e.g. "CVE-2011-0700".
	ID string
	// Published is when the entry was added to the NVD — not necessarily
	// when the vulnerability became public (§4.1).
	Published time.Time
	// LastModified is the NVD modification timestamp.
	LastModified time.Time
	// Descriptions holds the free-form texts.
	Descriptions []Description
	// CWEs is the set of weakness types in the CWE field.
	CWEs []cwe.ID
	// V2 is the CVSS v2 base vector; nil when absent.
	V2 *cvss.VectorV2
	// V3 is the CVSS v3 base vector; nil when absent (two thirds of the
	// paper's snapshot).
	V3 *cvss.VectorV3
	// PV3 is the backported (predicted) CVSS v3 base score for v2-only
	// entries — the paper's "pv3" scoring. It is an extension field
	// populated by the cleaning pipeline's ApplyBackport step, carried
	// through the feed codec under a non-NVD key; nil when absent.
	PV3 *float64
	// CPEs lists the affected vendor/product names.
	CPEs []cpe.Name
	// References lists the attached URLs.
	References []Reference
}

// Year returns the year component of the CVE identifier, which the
// paper's per-year analyses group by. It returns 0 for malformed IDs.
func (e *Entry) Year() int {
	y, _, err := SplitID(e.ID)
	if err != nil {
		return 0
	}
	return y
}

// SplitID parses "CVE-2011-0700" into (2011, 700).
func SplitID(id string) (year, seq int, err error) {
	rest, ok := strings.CutPrefix(id, "CVE-")
	if !ok {
		return 0, 0, fmt.Errorf("cve: malformed id %q", id)
	}
	ys, ss, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, fmt.Errorf("cve: malformed id %q", id)
	}
	year, err = strconv.Atoi(ys)
	if err != nil || year < 1988 || year > 2100 {
		return 0, 0, fmt.Errorf("cve: bad year in id %q", id)
	}
	seq, err = strconv.Atoi(ss)
	if err != nil || seq < 0 {
		return 0, 0, fmt.Errorf("cve: bad sequence in id %q", id)
	}
	return year, seq, nil
}

// FormatID builds a CVE identifier, zero-padding the sequence number to
// four digits as MITRE does.
func FormatID(year, seq int) string {
	return fmt.Sprintf("CVE-%d-%04d", year, seq)
}

// Description returns the primary (first) description text, or "".
func (e *Entry) Description() string {
	if len(e.Descriptions) == 0 {
		return ""
	}
	return e.Descriptions[0].Value
}

// AllDescriptionText concatenates every description value, the input to
// the §4.4 CWE extraction.
func (e *Entry) AllDescriptionText() string {
	switch len(e.Descriptions) {
	case 0:
		return ""
	case 1:
		return e.Descriptions[0].Value
	}
	parts := make([]string, len(e.Descriptions))
	for i, d := range e.Descriptions {
		parts[i] = d.Value
	}
	return strings.Join(parts, "\n")
}

// HasV3 reports whether the entry carries a CVSS v3 vector.
func (e *Entry) HasV3() bool { return e.V3 != nil }

// SeverityV2 returns the v2 severity band, or false when no v2 vector is
// present.
func (e *Entry) SeverityV2() (cvss.Severity, bool) {
	if e.V2 == nil {
		return 0, false
	}
	return e.V2.Severity(), true
}

// SeverityV3 returns the v3 severity band, or false when no v3 vector is
// present.
func (e *Entry) SeverityV3() (cvss.Severity, bool) {
	if e.V3 == nil {
		return 0, false
	}
	return e.V3.Severity(), true
}

// Vendors returns the distinct vendor names in the entry's CPE list, in
// first-appearance order.
func (e *Entry) Vendors() []string {
	seen := make(map[string]struct{}, len(e.CPEs))
	var out []string
	for _, n := range e.CPEs {
		if _, dup := seen[n.Vendor]; dup {
			continue
		}
		seen[n.Vendor] = struct{}{}
		out = append(out, n.Vendor)
	}
	return out
}

// HasCWE reports whether id appears in the entry's CWE field.
func (e *Entry) HasCWE(id cwe.ID) bool {
	for _, c := range e.CWEs {
		if c == id {
			return true
		}
	}
	return false
}

// Typed reports whether the entry has at least one concrete (non-meta)
// CWE type. The paper finds ≈31% of CVEs untyped (§4.4).
func (e *Entry) Typed() bool {
	for _, c := range e.CWEs {
		if !c.IsMeta() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the entry. The cleaning pipeline works on
// clones so the original snapshot stays available for before/after
// comparisons.
func (e *Entry) Clone() *Entry {
	c := *e
	c.Descriptions = append([]Description(nil), e.Descriptions...)
	c.CWEs = append([]cwe.ID(nil), e.CWEs...)
	c.CPEs = append([]cpe.Name(nil), e.CPEs...)
	c.References = make([]Reference, len(e.References))
	for i, r := range e.References {
		c.References[i] = Reference{URL: r.URL, Tags: append([]string(nil), r.Tags...)}
	}
	if e.V2 != nil {
		v := *e.V2
		c.V2 = &v
	}
	if e.V3 != nil {
		v := *e.V3
		c.V3 = &v
	}
	if e.PV3 != nil {
		v := *e.PV3
		c.PV3 = &v
	}
	return &c
}

// Snapshot is a full NVD capture: the paper's unit of analysis.
type Snapshot struct {
	// CapturedAt records when the snapshot was taken (the paper's was
	// May 21, 2018).
	CapturedAt time.Time
	// Entries holds every CVE, sorted by ID.
	Entries []*Entry
}

// Sort orders entries by (year, sequence).
func (s *Snapshot) Sort() {
	sort.Slice(s.Entries, func(i, j int) bool {
		yi, si, _ := SplitID(s.Entries[i].ID)
		yj, sj, _ := SplitID(s.Entries[j].ID)
		if yi != yj {
			return yi < yj
		}
		return si < sj
	})
}

// Len returns the number of entries.
func (s *Snapshot) Len() int { return len(s.Entries) }

// ByID returns the entry with the given CVE identifier, or nil.
func (s *Snapshot) ByID(id string) *Entry {
	for _, e := range s.Entries {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{CapturedAt: s.CapturedAt, Entries: make([]*Entry, len(s.Entries))}
	for i, e := range s.Entries {
		out.Entries[i] = e.Clone()
	}
	return out
}

// VendorCVECount returns, for every vendor name, the number of CVEs
// listing it. A CVE with several products of one vendor counts once.
func (s *Snapshot) VendorCVECount() map[string]int {
	counts := make(map[string]int)
	for _, e := range s.Entries {
		for _, v := range e.Vendors() {
			counts[v]++
		}
	}
	return counts
}

// VendorProducts returns the distinct product set per vendor.
func (s *Snapshot) VendorProducts() map[string]map[string]struct{} {
	out := make(map[string]map[string]struct{})
	for _, e := range s.Entries {
		for _, n := range e.CPEs {
			set := out[n.Vendor]
			if set == nil {
				set = make(map[string]struct{})
				out[n.Vendor] = set
			}
			set[n.Product] = struct{}{}
		}
	}
	return out
}

// DistinctVendors returns the number of distinct vendor names.
func (s *Snapshot) DistinctVendors() int {
	seen := make(map[string]struct{})
	for _, e := range s.Entries {
		for _, n := range e.CPEs {
			seen[n.Vendor] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctProducts returns the number of distinct (vendor, product)
// pairs' product names, counting a product name once per vendor as the
// paper's Table 3 does.
func (s *Snapshot) DistinctProducts() int {
	seen := make(map[[2]string]struct{})
	for _, e := range s.Entries {
		for _, n := range e.CPEs {
			seen[[2]string{n.Vendor, n.Product}] = struct{}{}
		}
	}
	return len(seen)
}
