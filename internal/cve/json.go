package cve

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// The NVD JSON 1.1 feed layout. Field names follow the feed schema so
// the codec reads real NVD data-feed files unchanged.
type (
	feedJSON struct {
		DataType    string     `json:"CVE_data_type"`
		DataFormat  string     `json:"CVE_data_format"`
		DataVersion string     `json:"CVE_data_version"`
		NumberCVEs  string     `json:"CVE_data_numberOfCVEs"`
		Timestamp   string     `json:"CVE_data_timestamp"`
		Items       []itemJSON `json:"CVE_Items"`
	}

	itemJSON struct {
		CVE            cveJSON      `json:"cve"`
		Configurations *configsJSON `json:"configurations,omitempty"`
		Impact         *impactJSON  `json:"impact,omitempty"`
		PublishedDate  string       `json:"publishedDate"`
		LastModified   string       `json:"lastModifiedDate,omitempty"`
	}

	cveJSON struct {
		Meta        metaJSON     `json:"CVE_data_meta"`
		ProblemType problemJSON  `json:"problemtype"`
		References  refsJSON     `json:"references"`
		Description descListJSON `json:"description"`
	}

	metaJSON struct {
		ID       string `json:"ID"`
		Assigner string `json:"ASSIGNER,omitempty"`
	}

	problemJSON struct {
		Data []problemDataJSON `json:"problemtype_data"`
	}

	problemDataJSON struct {
		Description []langValueJSON `json:"description"`
	}

	langValueJSON struct {
		Lang   string `json:"lang"`
		Value  string `json:"value"`
		Source string `json:"source,omitempty"` // extension: evaluator provenance
	}

	refsJSON struct {
		Data []refJSON `json:"reference_data"`
	}

	refJSON struct {
		URL  string   `json:"url"`
		Name string   `json:"name,omitempty"`
		Tags []string `json:"tags,omitempty"`
	}

	descListJSON struct {
		Data []langValueJSON `json:"description_data"`
	}

	configsJSON struct {
		DataVersion string     `json:"CVE_data_version"`
		Nodes       []nodeJSON `json:"nodes"`
	}

	nodeJSON struct {
		Operator string         `json:"operator,omitempty"`
		CPEMatch []cpeMatchJSON `json:"cpe_match,omitempty"`
		Children []nodeJSON     `json:"children,omitempty"`
	}

	cpeMatchJSON struct {
		Vulnerable bool   `json:"vulnerable"`
		CPE23URI   string `json:"cpe23Uri"`
	}

	impactJSON struct {
		BaseMetricV3 *baseMetricV3JSON `json:"baseMetricV3,omitempty"`
		BaseMetricV2 *baseMetricV2JSON `json:"baseMetricV2,omitempty"`
		// BackportedV3 is this codec's extension slot for the §4.3
		// predicted v3 score of v2-only CVEs. Real NVD feeds never
		// carry the key, so reading them is unaffected.
		BackportedV3 *backportedV3JSON `json:"backportedV3,omitempty"`
	}

	backportedV3JSON struct {
		BaseScore    float64 `json:"baseScore"`
		BaseSeverity string  `json:"baseSeverity"`
	}

	baseMetricV3JSON struct {
		CVSSV3 cvssV3JSON `json:"cvssV3"`
	}

	cvssV3JSON struct {
		Version      string  `json:"version"`
		VectorString string  `json:"vectorString"`
		BaseScore    float64 `json:"baseScore"`
		BaseSeverity string  `json:"baseSeverity"`
	}

	baseMetricV2JSON struct {
		CVSSV2   cvssV2JSON `json:"cvssV2"`
		Severity string     `json:"severity,omitempty"`
	}

	cvssV2JSON struct {
		Version      string  `json:"version"`
		VectorString string  `json:"vectorString"`
		BaseScore    float64 `json:"baseScore"`
	}
)

// feedTime is the timestamp layout of the NVD JSON feeds.
const feedTime = "2006-01-02T15:04Z"

// WriteFeed serializes the snapshot in NVD JSON 1.1 data-feed format,
// indented like the published feeds.
func WriteFeed(w io.Writer, s *Snapshot) error {
	return writeFeed(w, s, true)
}

// WriteFeedCompact is WriteFeed without indentation — the generation
// store's checkpoint encoding, where decode speed and file size beat
// readability. ReadFeed accepts both forms identically.
func WriteFeedCompact(w io.Writer, s *Snapshot) error {
	return writeFeed(w, s, false)
}

func writeFeed(w io.Writer, s *Snapshot, indent bool) error {
	f := feedJSON{
		DataType:    "CVE",
		DataFormat:  "MITRE",
		DataVersion: "4.0",
		NumberCVEs:  strconv.Itoa(len(s.Entries)),
		Timestamp:   s.CapturedAt.UTC().Format(feedTime),
		Items:       make([]itemJSON, 0, len(s.Entries)),
	}
	for _, e := range s.Entries {
		f.Items = append(f.Items, encodeItem(e))
	}
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(&f)
}

func encodeItem(e *Entry) itemJSON {
	item := itemJSON{
		CVE: cveJSON{
			Meta: metaJSON{ID: e.ID, Assigner: "cve@mitre.org"},
		},
		PublishedDate: e.Published.UTC().Format(feedTime),
	}
	if !e.LastModified.IsZero() {
		item.LastModified = e.LastModified.UTC().Format(feedTime)
	}
	// Problem type (CWE field).
	var ptDescs []langValueJSON
	for _, id := range e.CWEs {
		ptDescs = append(ptDescs, langValueJSON{Lang: "en", Value: id.String()})
	}
	item.CVE.ProblemType.Data = []problemDataJSON{{Description: ptDescs}}
	// References.
	for _, r := range e.References {
		item.CVE.References.Data = append(item.CVE.References.Data, refJSON{
			URL: r.URL, Name: r.URL, Tags: r.Tags,
		})
	}
	// Descriptions.
	for _, d := range e.Descriptions {
		item.CVE.Description.Data = append(item.CVE.Description.Data, langValueJSON{
			Lang: "en", Value: d.Value, Source: d.Source,
		})
	}
	// Configurations (CPE list).
	if len(e.CPEs) > 0 {
		node := nodeJSON{Operator: "OR"}
		for _, n := range e.CPEs {
			node.CPEMatch = append(node.CPEMatch, cpeMatchJSON{
				Vulnerable: true, CPE23URI: n.FormatString(),
			})
		}
		item.Configurations = &configsJSON{DataVersion: "4.0", Nodes: []nodeJSON{node}}
	}
	// Impact.
	if e.V2 != nil || e.V3 != nil || e.PV3 != nil {
		item.Impact = &impactJSON{}
		if e.PV3 != nil {
			item.Impact.BackportedV3 = &backportedV3JSON{
				BaseScore:    *e.PV3,
				BaseSeverity: upper(cvss.SeverityV3(*e.PV3).String()),
			}
		}
		if e.V3 != nil {
			item.Impact.BaseMetricV3 = &baseMetricV3JSON{CVSSV3: cvssV3JSON{
				Version:      "3.0",
				VectorString: e.V3.String(),
				BaseScore:    e.V3.BaseScore(),
				BaseSeverity: upper(e.V3.Severity().String()),
			}}
		}
		if e.V2 != nil {
			item.Impact.BaseMetricV2 = &baseMetricV2JSON{
				CVSSV2: cvssV2JSON{
					Version:      "2.0",
					VectorString: e.V2.String(),
					BaseScore:    e.V2.BaseScore(),
				},
				Severity: upper(e.V2.Severity().String()),
			}
		}
	}
	return item
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// ReadFeed parses an NVD JSON 1.1 data feed. Malformed CWE strings and
// CPE URIs are skipped rather than fatal, matching how NVD consumers must
// treat the real feeds; CVSS vector strings must parse when present.
func ReadFeed(r io.Reader) (*Snapshot, error) {
	var f feedJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("cve: decoding feed: %w", err)
	}
	s := &Snapshot{}
	if f.Timestamp != "" {
		if ts, err := time.Parse(feedTime, f.Timestamp); err == nil {
			s.CapturedAt = ts
		}
	}
	for i := range f.Items {
		e, err := decodeItem(&f.Items[i])
		if err != nil {
			return nil, fmt.Errorf("cve: item %d (%s): %w", i, f.Items[i].CVE.Meta.ID, err)
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

func decodeItem(item *itemJSON) (*Entry, error) {
	e := &Entry{ID: item.CVE.Meta.ID}
	if _, _, err := SplitID(e.ID); err != nil {
		return nil, err
	}
	var err error
	e.Published, err = time.Parse(feedTime, item.PublishedDate)
	if err != nil {
		return nil, fmt.Errorf("published date: %w", err)
	}
	if item.LastModified != "" {
		e.LastModified, _ = time.Parse(feedTime, item.LastModified)
	}
	for _, pd := range item.CVE.ProblemType.Data {
		for _, d := range pd.Description {
			id, perr := cwe.Parse(d.Value)
			if perr != nil || id == cwe.Unassigned {
				continue
			}
			e.CWEs = append(e.CWEs, id)
		}
	}
	for _, r := range item.CVE.References.Data {
		e.References = append(e.References, Reference{URL: r.URL, Tags: r.Tags})
	}
	for _, d := range item.CVE.Description.Data {
		e.Descriptions = append(e.Descriptions, Description{Source: d.Source, Value: d.Value})
	}
	if item.Configurations != nil {
		collectCPEs(item.Configurations.Nodes, e)
	}
	if item.Impact != nil {
		if m := item.Impact.BaseMetricV2; m != nil {
			v, perr := cvss.ParseV2(m.CVSSV2.VectorString)
			if perr != nil {
				return nil, fmt.Errorf("v2 vector: %w", perr)
			}
			e.V2 = &v
		}
		if m := item.Impact.BaseMetricV3; m != nil {
			v, perr := cvss.ParseV3(m.CVSSV3.VectorString)
			if perr != nil {
				return nil, fmt.Errorf("v3 vector: %w", perr)
			}
			e.V3 = &v
		}
		if m := item.Impact.BackportedV3; m != nil {
			score := m.BaseScore
			e.PV3 = &score
		}
	}
	return e, nil
}

// deltaJSON is the serialized form of a Delta — the record type of the
// generation store's append-only log. Entries reuse the feed codec's
// item layout (including the backportedV3 extension key), so a log
// record is exactly one day's worth of feed movement in feed terms.
type deltaJSON struct {
	Kind       string     `json:"kind"`
	CapturedAt string     `json:"capturedAt,omitempty"`
	Added      []itemJSON `json:"added,omitempty"`
	Modified   []itemJSON `json:"modified,omitempty"`
	Removed    []string   `json:"removed,omitempty"`
}

const deltaKind = "cve-delta"

// MarshalDelta serializes a delta as one self-describing JSON document,
// the payload format of the generation store's log records.
func MarshalDelta(d *Delta) ([]byte, error) {
	dj := deltaJSON{Kind: deltaKind, Removed: d.Removed}
	if !d.CapturedAt.IsZero() {
		dj.CapturedAt = d.CapturedAt.UTC().Format(feedTime)
	}
	for _, e := range d.Added {
		dj.Added = append(dj.Added, encodeItem(e))
	}
	for _, e := range d.Modified {
		dj.Modified = append(dj.Modified, encodeItem(e))
	}
	return json.Marshal(&dj)
}

// UnmarshalDelta parses a delta written by MarshalDelta.
func UnmarshalDelta(b []byte) (*Delta, error) {
	var dj deltaJSON
	if err := json.Unmarshal(b, &dj); err != nil {
		return nil, fmt.Errorf("cve: decoding delta: %w", err)
	}
	if dj.Kind != deltaKind {
		return nil, fmt.Errorf("cve: unexpected delta kind %q", dj.Kind)
	}
	d := &Delta{Removed: dj.Removed}
	if dj.CapturedAt != "" {
		ts, err := time.Parse(feedTime, dj.CapturedAt)
		if err != nil {
			return nil, fmt.Errorf("cve: delta capture time: %w", err)
		}
		d.CapturedAt = ts
	}
	for i := range dj.Added {
		e, err := decodeItem(&dj.Added[i])
		if err != nil {
			return nil, fmt.Errorf("cve: delta added %d (%s): %w", i, dj.Added[i].CVE.Meta.ID, err)
		}
		d.Added = append(d.Added, e)
	}
	for i := range dj.Modified {
		e, err := decodeItem(&dj.Modified[i])
		if err != nil {
			return nil, fmt.Errorf("cve: delta modified %d (%s): %w", i, dj.Modified[i].CVE.Meta.ID, err)
		}
		d.Modified = append(d.Modified, e)
	}
	return d, nil
}

func collectCPEs(nodes []nodeJSON, e *Entry) {
	for _, node := range nodes {
		for _, m := range node.CPEMatch {
			if !m.Vulnerable {
				continue
			}
			n, err := cpe.Parse(m.CPE23URI)
			if err != nil {
				continue // tolerate malformed URIs in real feeds
			}
			e.CPEs = append(e.CPEs, n)
		}
		collectCPEs(node.Children, e)
	}
}
