package cve

import (
	"sort"
	"time"
)

// Equal reports whether two entries carry identical data, field by
// field. Timestamps compare with time.Time.Equal so a parsed feed
// entry matches its in-memory source regardless of monotonic-clock
// noise. Diff uses this to decide whether a feed update actually
// changed an entry.
func (e *Entry) Equal(o *Entry) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.ID != o.ID ||
		!e.Published.Equal(o.Published) ||
		!e.LastModified.Equal(o.LastModified) ||
		len(e.Descriptions) != len(o.Descriptions) ||
		len(e.CWEs) != len(o.CWEs) ||
		len(e.CPEs) != len(o.CPEs) ||
		len(e.References) != len(o.References) {
		return false
	}
	for i := range e.Descriptions {
		if e.Descriptions[i] != o.Descriptions[i] {
			return false
		}
	}
	for i := range e.CWEs {
		if e.CWEs[i] != o.CWEs[i] {
			return false
		}
	}
	for i := range e.CPEs {
		if e.CPEs[i] != o.CPEs[i] {
			return false
		}
	}
	for i := range e.References {
		a, b := e.References[i], o.References[i]
		if a.URL != b.URL || len(a.Tags) != len(b.Tags) {
			return false
		}
		for j := range a.Tags {
			if a.Tags[j] != b.Tags[j] {
				return false
			}
		}
	}
	if (e.V2 == nil) != (o.V2 == nil) || (e.V2 != nil && *e.V2 != *o.V2) {
		return false
	}
	if (e.V3 == nil) != (o.V3 == nil) || (e.V3 != nil && *e.V3 != *o.V3) {
		return false
	}
	if (e.PV3 == nil) != (o.PV3 == nil) || (e.PV3 != nil && *e.PV3 != *o.PV3) {
		return false
	}
	return true
}

// Delta is the difference between two snapshots of the same feed — the
// unit of incremental cleaning. The real NVD is a feed that grows
// daily; a Delta captures one day's worth of movement without
// reprocessing the capture.
type Delta struct {
	// CapturedAt is the capture time of the newer snapshot.
	CapturedAt time.Time
	// Added holds entries present only in the newer snapshot, sorted
	// by ID.
	Added []*Entry
	// Modified holds the newer versions of entries present in both
	// snapshots but no longer equal, sorted by ID.
	Modified []*Entry
	// Removed lists IDs present only in the older snapshot, sorted.
	Removed []string
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.Added) == 0 && len(d.Modified) == 0 && len(d.Removed) == 0)
}

// Size returns the number of changed entries.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Added) + len(d.Modified) + len(d.Removed)
}

// Sort normalizes the delta into its documented order: Added and
// Modified by ID, Removed likewise. Diff returns sorted deltas
// already; hand-assembled deltas (feed upserts) should call this.
func (d *Delta) Sort() {
	if d == nil {
		return
	}
	sortEntries(d.Added)
	sortEntries(d.Modified)
	sortIDs(d.Removed)
}

// ChangedIDs returns the IDs of added and modified entries, sorted.
func (d *Delta) ChangedIDs() []string {
	if d == nil {
		return nil
	}
	out := make([]string, 0, len(d.Added)+len(d.Modified))
	for _, e := range d.Added {
		out = append(out, e.ID)
	}
	for _, e := range d.Modified {
		out = append(out, e.ID)
	}
	sortIDs(out)
	return out
}

// sortIDs orders CVE identifiers by (year, sequence), falling back to
// lexical order for malformed IDs.
func sortIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return idLess(ids[i], ids[j]) })
}

// IDLess reports whether CVE identifier a orders before b by (year,
// sequence) — the order snapshots, deltas and posting lists share.
// Malformed identifiers fall back to lexical order.
func IDLess(a, b string) bool { return idLess(a, b) }

func idLess(a, b string) bool {
	ya, sa, erra := SplitID(a)
	yb, sb, errb := SplitID(b)
	if erra != nil || errb != nil {
		return a < b
	}
	if ya != yb {
		return ya < yb
	}
	return sa < sb
}

func sortEntries(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool { return idLess(entries[i].ID, entries[j].ID) })
}

// Diff computes the delta that turns the old snapshot into the new
// one. Entries are matched by ID and compared deeply with Entry.Equal;
// the returned slices share entry pointers with the new snapshot.
func Diff(old, new *Snapshot) *Delta {
	d := &Delta{}
	if new != nil {
		d.CapturedAt = new.CapturedAt
	}
	oldByID := make(map[string]*Entry)
	if old != nil {
		for _, e := range old.Entries {
			oldByID[e.ID] = e
		}
	}
	seen := make(map[string]bool)
	if new != nil {
		for _, e := range new.Entries {
			seen[e.ID] = true
			prev, ok := oldByID[e.ID]
			switch {
			case !ok:
				d.Added = append(d.Added, e)
			case !prev.Equal(e):
				d.Modified = append(d.Modified, e)
			}
		}
	}
	if old != nil {
		for _, e := range old.Entries {
			if !seen[e.ID] {
				d.Removed = append(d.Removed, e.ID)
			}
		}
	}
	sortEntries(d.Added)
	sortEntries(d.Modified)
	sortIDs(d.Removed)
	return d
}

// ApplyDelta returns the snapshot that results from applying the delta
// to s: removed entries dropped, modified entries replaced, added
// entries inserted, the whole list re-sorted by ID. The receiver is
// not modified; the result shares entry pointers with s and the delta.
func (s *Snapshot) ApplyDelta(d *Delta) *Snapshot {
	out := &Snapshot{CapturedAt: s.CapturedAt}
	if d == nil {
		out.Entries = append([]*Entry(nil), s.Entries...)
		return out
	}
	if !d.CapturedAt.IsZero() {
		out.CapturedAt = d.CapturedAt
	}
	removed := make(map[string]bool, len(d.Removed))
	for _, id := range d.Removed {
		removed[id] = true
	}
	modified := make(map[string]*Entry, len(d.Modified))
	for _, e := range d.Modified {
		modified[e.ID] = e
	}
	out.Entries = make([]*Entry, 0, len(s.Entries)+len(d.Added))
	for _, e := range s.Entries {
		switch {
		case removed[e.ID]:
		case modified[e.ID] != nil:
			out.Entries = append(out.Entries, modified[e.ID])
		default:
			out.Entries = append(out.Entries, e)
		}
	}
	out.Entries = append(out.Entries, d.Added...)
	sortEntries(out.Entries)
	return out
}
