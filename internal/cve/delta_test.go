package cve

import (
	"bytes"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

func testEntry(id string, seq int) *Entry {
	return &Entry{
		ID:        id,
		Published: time.Date(2017, 3, 1+seq%20, 0, 0, 0, 0, time.UTC),
		Descriptions: []Description{
			{Source: "cve@mitre.org", Value: "A buffer overflow."},
		},
		CWEs: []cwe.ID{cwe.ID(119)},
		V2: &cvss.VectorV2{
			AccessVector: cvss.AccessNetwork, AccessComplexity: cvss.ComplexityLow,
			Authentication: cvss.AuthNone, Confidentiality: cvss.ImpactPartial,
			Integrity: cvss.ImpactPartial, Availability: cvss.ImpactPartial,
		},
		CPEs:       []cpe.Name{cpe.NewName(cpe.PartApplication, "acme", "widget", "")},
		References: []Reference{{URL: "https://example.com/advisory/1", Tags: []string{"Vendor Advisory"}}},
	}
}

func TestEntryEqual(t *testing.T) {
	a := testEntry("CVE-2017-0001", 1)
	if !a.Equal(a.Clone()) {
		t.Fatal("entry should equal its clone")
	}
	cases := map[string]func(*Entry){
		"published":   func(e *Entry) { e.Published = e.Published.AddDate(0, 0, 1) },
		"description": func(e *Entry) { e.Descriptions[0].Value = "changed" },
		"cwe":         func(e *Entry) { e.CWEs[0] = cwe.ID(79) },
		"cpe vendor":  func(e *Entry) { e.CPEs[0].Vendor = "acme_inc" },
		"ref url":     func(e *Entry) { e.References[0].URL = "https://example.com/2" },
		"ref tags":    func(e *Entry) { e.References[0].Tags = nil },
		"v2 dropped":  func(e *Entry) { e.V2 = nil },
		"v2 field":    func(e *Entry) { e.V2.AccessVector = cvss.AccessLocal },
		"pv3 set":     func(e *Entry) { s := 7.5; e.PV3 = &s },
	}
	for name, mutate := range cases {
		c := a.Clone()
		mutate(c)
		if a.Equal(c) {
			t.Errorf("%s: mutated entry should differ", name)
		}
	}
	// Tag content is compared, not just length.
	c := a.Clone()
	c.References[0].Tags[0] = "Patch"
	if a.Equal(c) {
		t.Error("tag content change should differ")
	}
}

func TestDiffAndApplyDelta(t *testing.T) {
	old := &Snapshot{CapturedAt: time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC)}
	for i := 1; i <= 5; i++ {
		old.Entries = append(old.Entries, testEntry(FormatID(2017, i), i))
	}
	newSnap := &Snapshot{CapturedAt: time.Date(2018, 5, 22, 0, 0, 0, 0, time.UTC)}
	// Keep 1,2,4 as-is; modify 3; drop 5; add 6 and one from 2016.
	newSnap.Entries = append(newSnap.Entries, old.Entries[0].Clone(), old.Entries[1].Clone())
	mod := old.Entries[2].Clone()
	mod.Descriptions[0].Value = "Updated description."
	newSnap.Entries = append(newSnap.Entries, mod, old.Entries[3].Clone(),
		testEntry(FormatID(2017, 6), 6), testEntry(FormatID(2016, 9), 9))

	d := Diff(old, newSnap)
	if len(d.Added) != 2 || len(d.Modified) != 1 || len(d.Removed) != 1 {
		t.Fatalf("delta = +%d ~%d -%d, want +2 ~1 -1", len(d.Added), len(d.Modified), len(d.Removed))
	}
	if d.Added[0].ID != "CVE-2016-0009" || d.Added[1].ID != "CVE-2017-0006" {
		t.Errorf("added order: %s, %s", d.Added[0].ID, d.Added[1].ID)
	}
	if d.Modified[0].ID != "CVE-2017-0003" || d.Removed[0] != "CVE-2017-0005" {
		t.Errorf("modified %s, removed %s", d.Modified[0].ID, d.Removed[0])
	}
	if !d.CapturedAt.Equal(newSnap.CapturedAt) {
		t.Error("delta should carry the new capture time")
	}
	if d.Empty() || d.Size() != 4 {
		t.Errorf("Size = %d, want 4", d.Size())
	}

	merged := old.ApplyDelta(d)
	if merged.Len() != newSnap.Len() {
		t.Fatalf("merged %d entries, want %d", merged.Len(), newSnap.Len())
	}
	if !merged.CapturedAt.Equal(newSnap.CapturedAt) {
		t.Error("merged capture time should advance")
	}
	// Applying the diff must reproduce the new snapshot exactly, in
	// sorted order.
	for i, e := range merged.Entries {
		if i > 0 && !idLess(merged.Entries[i-1].ID, e.ID) {
			t.Errorf("merged entries unsorted at %d: %s after %s", i, e.ID, merged.Entries[i-1].ID)
		}
		want := newSnap.ByID(e.ID)
		if want == nil || !e.Equal(want) {
			t.Errorf("merged %s differs from new snapshot", e.ID)
		}
	}
	// Round trip: diffing the merged snapshot against new is empty.
	if rt := Diff(merged, newSnap); !rt.Empty() {
		t.Errorf("Diff(ApplyDelta(old, d), new) not empty: %+v", rt)
	}
	// The old snapshot is untouched.
	if old.Len() != 5 || old.ByID("CVE-2017-0003").Descriptions[0].Value != "A buffer overflow." {
		t.Error("ApplyDelta mutated the receiver")
	}
}

func TestDiffIdenticalSnapshots(t *testing.T) {
	s := &Snapshot{}
	for i := 1; i <= 3; i++ {
		s.Entries = append(s.Entries, testEntry(FormatID(2017, i), i))
	}
	if d := Diff(s, s.Clone()); !d.Empty() {
		t.Errorf("identical snapshots should diff empty, got %d changes", d.Size())
	}
}

func TestPV3FeedRoundTrip(t *testing.T) {
	s := &Snapshot{CapturedAt: time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC)}
	e := testEntry("CVE-2017-0001", 1)
	score := 7.3
	e.PV3 = &score
	s.Entries = append(s.Entries, e)

	var buf bytes.Buffer
	if err := WriteFeed(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.ByID("CVE-2017-0001")
	if got.PV3 == nil || *got.PV3 != score {
		t.Fatalf("PV3 not preserved: %v", got.PV3)
	}
	if !e.Equal(got) {
		t.Error("entry with PV3 should round-trip Equal")
	}
}
