package naming

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The paper open-sources both the correction tools and the rectified
// dataset; the consolidation maps are the reusable artifact in between
// (§4.2 applies the NVD-derived vendor map to SecurityFocus and
// SecurityTracker). This file gives both map types a stable JSON form.

// mapJSON is the serialized vendor map: alias → canonical.
type mapJSON struct {
	Kind    string            `json:"kind"`
	Vendors map[string]string `json:"vendors"`
}

// WriteJSON serializes the vendor map.
func (m *Map) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mapJSON{Kind: "vendor-map", Vendors: m.forward})
}

// ReadMapJSON loads a vendor map written by WriteJSON.
func ReadMapJSON(r io.Reader) (*Map, error) {
	var mj mapJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("naming: decoding vendor map: %w", err)
	}
	if mj.Kind != "vendor-map" {
		return nil, fmt.Errorf("naming: unexpected kind %q", mj.Kind)
	}
	if mj.Vendors == nil {
		mj.Vendors = map[string]string{}
	}
	for alias, canonical := range mj.Vendors {
		if alias == "" || canonical == "" || alias == canonical {
			return nil, fmt.Errorf("naming: invalid mapping %q -> %q", alias, canonical)
		}
	}
	return &Map{forward: mj.Vendors}, nil
}

// productMapJSON flattens the (vendor, product) keys as
// "vendor\tproduct" since JSON objects need string keys.
type productMapJSON struct {
	Kind     string            `json:"kind"`
	Products map[string]string `json:"products"`
}

const productKeySep = "\t"

// WriteJSON serializes the product map.
func (m *ProductMap) WriteJSON(w io.Writer) error {
	flat := make(map[string]string, len(m.forward))
	for k, canonical := range m.forward {
		flat[k[0]+productKeySep+k[1]] = canonical
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(productMapJSON{Kind: "product-map", Products: flat})
}

// ReadProductMapJSON loads a product map written by WriteJSON.
func ReadProductMapJSON(r io.Reader) (*ProductMap, error) {
	var pj productMapJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("naming: decoding product map: %w", err)
	}
	if pj.Kind != "product-map" {
		return nil, fmt.Errorf("naming: unexpected kind %q", pj.Kind)
	}
	forward := make(map[[2]string]string, len(pj.Products))
	for key, canonical := range pj.Products {
		vendor, product, ok := strings.Cut(key, productKeySep)
		if !ok || vendor == "" || product == "" || canonical == "" {
			return nil, fmt.Errorf("naming: invalid product key %q", key)
		}
		forward[[2]string{vendor, product}] = canonical
	}
	return &ProductMap{forward: forward}, nil
}
