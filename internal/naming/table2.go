package naming

// Table2Cell is one cell of the paper's Table 2: the number of unique
// vendor pairs matching a pattern, and the number of names involved.
type Table2Cell struct {
	Pairs int
	Names int
}

// Table2Row is one row (Possible or Confirmed) of Table 2, split by the
// |LCS| >= 3 signifier.
type Table2Row struct {
	// Tokens counts pairs identical except special characters.
	Tokens Table2Cell
	// LCSGE3 buckets pairs with longest common substring >= 3.
	LCSGE3 Table2Bucket
	// LCSLT3 buckets pairs with longest common substring < 3.
	LCSLT3 Table2Bucket
}

// Table2Bucket is the per-LCS-band pattern breakdown.
type Table2Bucket struct {
	MP0, MP1, MPMany Table2Cell // #MP = 0, = 1, > 1
	Pref, PaV        Table2Cell
}

// Table2 is the full statistic: Possible (all candidates) vs Confirmed
// (judge-accepted).
type Table2 struct {
	Possible, Confirmed Table2Row
}

// BuildTable2 classifies the analysis's candidate pairs into the paper's
// pattern taxonomy, judging each with judge for the Confirmed row.
// Table 2's note 4 applies: pairs with no shared-substring signal, no
// prefix relation, and no matching products are not counted.
func BuildTable2(va *VendorAnalysis, judge Judge) *Table2 {
	t := &Table2{}
	for i := range va.Pairs {
		vp := &va.Pairs[i]
		confirmed := judge.SameVendor(vp)
		classify(&t.Possible, vp)
		if confirmed {
			classify(&t.Confirmed, vp)
		}
	}
	return t
}

func classify(row *Table2Row, vp *VendorPair) {
	if vp.HasPattern(PatternTokens) {
		row.Tokens.add(vp)
		return
	}
	bucket := &row.LCSGE3
	if vp.LCS < 3 {
		bucket = &row.LCSLT3
	}
	switch {
	case vp.HasPattern(PatternPrefix):
		bucket.Pref.add(vp)
	case vp.HasPattern(PatternProductAsVendor):
		bucket.PaV.add(vp)
	default:
		switch {
		case vp.MatchingProducts == 0:
			bucket.MP0.add(vp)
		case vp.MatchingProducts == 1:
			bucket.MP1.add(vp)
		default:
			bucket.MPMany.add(vp)
		}
	}
}

func (c *Table2Cell) add(vp *VendorPair) {
	c.Pairs++
	c.Names += 2
}

// TotalPairs sums a row's pair counts.
func (r *Table2Row) TotalPairs() int {
	return r.Tokens.Pairs +
		r.LCSGE3.MP0.Pairs + r.LCSGE3.MP1.Pairs + r.LCSGE3.MPMany.Pairs +
		r.LCSGE3.Pref.Pairs + r.LCSGE3.PaV.Pairs +
		r.LCSLT3.MP0.Pairs + r.LCSLT3.MP1.Pairs + r.LCSLT3.MPMany.Pairs +
		r.LCSLT3.Pref.Pairs + r.LCSLT3.PaV.Pairs
}

// ConfirmRate returns the confirmed/possible pair ratio, the signal
// strength the paper reports per pattern.
func (t *Table2) ConfirmRate() float64 {
	p := t.Possible.TotalPairs()
	if p == 0 {
		return 0
	}
	return float64(t.Confirmed.TotalPairs()) / float64(p)
}
