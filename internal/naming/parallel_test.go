package naming

import (
	"reflect"
	"testing"

	"nvdclean/internal/gen"
)

// TestAnalyzeWorkerInvariant checks the §4.2 surveys produce identical
// pair lists (order included) at every concurrency level.
func TestAnalyzeWorkerInvariant(t *testing.T) {
	cfg := gen.TinyConfig()
	snap, _, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseV := AnalyzeVendorsN(snap, 1)
	baseP := AnalyzeProductsN(snap, 1)
	if len(baseV.Pairs) == 0 || len(baseP.Pairs) == 0 {
		t.Fatalf("degenerate fixture: %d vendor pairs, %d product pairs",
			len(baseV.Pairs), len(baseP.Pairs))
	}
	for _, w := range []int{2, 4, 8} {
		gotV := AnalyzeVendorsN(snap, w)
		if !reflect.DeepEqual(gotV.Pairs, baseV.Pairs) {
			t.Errorf("workers=%d: vendor pairs differ from serial", w)
		}
		gotP := AnalyzeProductsN(snap, w)
		if !reflect.DeepEqual(gotP.Pairs, baseP.Pairs) {
			t.Errorf("workers=%d: product pairs differ from serial", w)
		}
	}
}

// TestConsolidateWorkerInvariant checks the maps built from parallel
// analyses are identical too.
func TestConsolidateWorkerInvariant(t *testing.T) {
	cfg := gen.TinyConfig()
	snap, _, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := AnalyzeVendorsN(snap, 1).Consolidate(HeuristicJudge{})
	for _, w := range []int{4} {
		got := AnalyzeVendorsN(snap, w).Consolidate(HeuristicJudge{})
		if !reflect.DeepEqual(got.Entries(), base.Entries()) {
			t.Errorf("workers=%d: consolidation map differs from serial", w)
		}
	}
}
