package naming

import (
	"bytes"
	"strings"
	"testing"
)

func TestVendorMapJSONRoundTrip(t *testing.T) {
	orig := NewMap(map[string]string{
		"microsft":    "microsoft",
		"bea_systems": "bea",
		"avast!":      "avast",
	})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMapJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), orig.Len())
	}
	for alias, canonical := range orig.Entries() {
		if got := back.Canonical(alias); got != canonical {
			t.Errorf("Canonical(%q) = %q, want %q", alias, got, canonical)
		}
	}
}

func TestReadMapJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "{"},
		{"wrong kind", `{"kind":"product-map","vendors":{}}`},
		{"self mapping", `{"kind":"vendor-map","vendors":{"a":"a"}}`},
		{"empty alias", `{"kind":"vendor-map","vendors":{"":"x"}}`},
		{"empty canonical", `{"kind":"vendor-map","vendors":{"x":""}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMapJSON(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Empty mapping is fine.
	m, err := ReadMapJSON(strings.NewReader(`{"kind":"vendor-map"}`))
	if err != nil || m.Len() != 0 {
		t.Errorf("empty map: %v, %v", m, err)
	}
}

func TestProductMapJSONRoundTrip(t *testing.T) {
	snap := productSnapshot()
	pa := AnalyzeProducts(snap)
	orig := pa.Consolidate(HeuristicProductJudge{})
	if orig.Len() == 0 {
		t.Fatal("fixture produced empty product map")
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProductMapJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), orig.Len())
	}
	for k, canonical := range orig.Entries() {
		if got := back.Canonical(k[0], k[1]); got != canonical {
			t.Errorf("Canonical(%q, %q) = %q, want %q", k[0], k[1], got, canonical)
		}
	}
}

func TestReadProductMapJSONErrors(t *testing.T) {
	cases := []string{
		"{",
		`{"kind":"vendor-map","products":{}}`,
		`{"kind":"product-map","products":{"nokey":"x"}}`,
		`{"kind":"product-map","products":{"v\tp":""}}`,
	}
	for _, in := range cases {
		if _, err := ReadProductMapJSON(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestSerializedMapAppliesAcrossProcesses(t *testing.T) {
	// Simulate the §4.2 cross-database workflow: consolidate on one
	// snapshot, serialize, load elsewhere, apply to different strings.
	snap := paperSnapshot()
	va := AnalyzeVendors(snap)
	m := va.Consolidate(HeuristicJudge{})
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadMapJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Canonical("microsft"); got != "microsoft" {
		t.Errorf("loaded map Canonical(microsft) = %q", got)
	}
}
