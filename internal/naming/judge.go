package naming

// Judge decides whether a candidate pair truly names the same entity —
// the role the paper filled with manual investigation of "products,
// developers, and associated organizations".
type Judge interface {
	// SameVendor reports whether the pair's two vendor names refer to
	// the same vendor.
	SameVendor(p *VendorPair) bool
}

// HeuristicJudge is the automated stand-in for manual vetting. Its rules
// encode the confirmation rates the paper reports in Table 2:
//
//   - token-identical pairs were matches in 260/260 cases → always
//     confirm;
//   - with |LCS| ≥ 3, prefix pairs and shared-product pairs matched in
//     over 90% of cases → confirm;
//   - with |LCS| ≥ 3, product-as-vendor pairs matched in ~90% → confirm;
//   - misspelling (edit-distance-1) pairs with |LCS| ≥ 3 → confirm;
//   - abbreviations → confirm;
//   - with |LCS| < 3 only a minority matched → require corroboration
//     from at least two distinct patterns or ≥ 2 shared products.
type HeuristicJudge struct{}

// SameVendor implements Judge.
func (HeuristicJudge) SameVendor(p *VendorPair) bool {
	if p.HasPattern(PatternTokens) {
		return true
	}
	if p.HasPattern(PatternAbbrev) {
		return true
	}
	if p.LCS >= 3 {
		switch {
		case p.HasPattern(PatternPrefix),
			p.HasPattern(PatternEdit),
			p.HasPattern(PatternProductAsVendor):
			return true
		case p.HasPattern(PatternSharedProduct) && coversCatalog(p):
			// A shared product plus an incidental 3-character overlap
			// ("soft", "tech") is weak evidence; require the common
			// substring to cover most of the shorter name.
			return float64(p.LCS) >= 0.6*float64(minLen(p.A, p.B))
		}
		return false
	}
	// |LCS| < 3: weak string signal, demand strong corroboration.
	if p.MatchingProducts >= 2 && coversCatalog(p) {
		return true
	}
	return len(p.Patterns) >= 2
}

// coversCatalog reports whether the shared products are a significant
// share of the smaller vendor's catalog. Two 1,500-product vendors
// sharing six names is coincidence; an alias listing a handful of the
// canonical vendor's products shares most of its own catalog.
func coversCatalog(p *VendorPair) bool {
	return p.MatchingProducts >= 1 && 2*p.MatchingProducts >= p.SmallerCatalog
}

func minLen(a, b string) int {
	if len(a) < len(b) {
		return len(a)
	}
	return len(b)
}

// OracleJudge confirms pairs against generator ground truth; the test
// suite uses it to score HeuristicJudge and to reproduce the
// "Confirmed" row of Table 2 exactly.
type OracleJudge struct {
	// Canonical maps alias names to canonical vendor names (identity
	// for unmapped names).
	Canonical func(string) string
}

// SameVendor implements Judge.
func (o OracleJudge) SameVendor(p *VendorPair) bool {
	return o.Canonical(p.A) == o.Canonical(p.B)
}
