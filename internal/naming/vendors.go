// Package naming implements the vendor- and product-name inconsistency
// study of §4.2: heuristic candidate-pair generation (shared tokens,
// shared products, product-as-vendor, prefix), the Table 2 pattern
// taxonomy, a pluggable confirmation step standing in for the paper's
// manual vetting, consolidation of matching names under the name with
// the most CVEs, and snapshot rewriting. It also ships the Dong et al.
// word-overlap baseline the paper compares against.
package naming

import (
	"sort"
	"strings"
	"sync"

	"nvdclean/internal/cve"
	"nvdclean/internal/parallel"
	"nvdclean/internal/textnorm"
)

// Pattern labels one Table 2 inconsistency pattern observed on a pair.
type Pattern string

// Table 2 patterns.
const (
	// PatternTokens marks names identical except for special characters.
	PatternTokens Pattern = "tokens"
	// PatternSharedProduct marks vendor pairs associated with the same
	// product name (#MP).
	PatternSharedProduct Pattern = "shared-product"
	// PatternProductAsVendor marks one vendor name that is a product of
	// the other (PaV).
	PatternProductAsVendor Pattern = "product-as-vendor"
	// PatternPrefix marks one name being a strict prefix of the other.
	PatternPrefix Pattern = "prefix"
	// PatternEdit marks names within edit distance 1 (misspellings).
	PatternEdit Pattern = "misspell"
	// PatternAbbrev marks an abbreviation relationship (lms vs
	// lan_management_system).
	PatternAbbrev Pattern = "abbrev"
)

// VendorPair is a candidate inconsistent vendor-name pair with its
// matched patterns and the signals Table 2 splits on.
type VendorPair struct {
	// A, B are the two names, with A < B lexically.
	A, B string
	// Patterns are the heuristics that flagged the pair.
	Patterns []Pattern
	// LCS is the longest-common-substring length.
	LCS int
	// MatchingProducts is the number of product names both vendors
	// list (#MP).
	MatchingProducts int
	// SmallerCatalog is the product-catalog size of the vendor with
	// fewer products; shared-product evidence is judged relative to it.
	SmallerCatalog int
}

// HasPattern reports whether p was flagged on the pair.
func (vp *VendorPair) HasPattern(p Pattern) bool {
	for _, q := range vp.Patterns {
		if q == p {
			return true
		}
	}
	return false
}

// VendorAnalysis holds the vendor-name survey of one snapshot.
type VendorAnalysis struct {
	// Pairs are the candidate matching pairs found by the heuristics,
	// sorted by (A, B).
	Pairs []VendorPair
	// CVECount maps each vendor name to its number of CVEs.
	CVECount map[string]int
	// Products maps each vendor name to its distinct product set.
	Products map[string]map[string]struct{}
}

// LCSCache memoizes longest-common-substring lengths across analysis
// runs. LCS is a pure function of the two names and dominates pair
// scoring, so an incremental re-analysis after a feed delta only pays
// for pairs involving genuinely new names. Safe for concurrent use.
type LCSCache struct {
	mu sync.Mutex
	m  map[[2]string]int
}

// NewLCSCache returns an empty cache.
func NewLCSCache() *LCSCache {
	return &LCSCache{m: make(map[[2]string]int)}
}

// LCS returns the longest-common-substring length of a and b,
// computing and recording it on first use.
func (c *LCSCache) LCS(a, b string) int {
	k := [2]string{a, b}
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = textnorm.LongestCommonSubstring(a, b)
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// Len returns the number of memoized pairs.
func (c *LCSCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Prune drops memoized pairs mentioning any name keep rejects. A
// long-lived incremental pipeline calls this with the current vendor
// set after each run so names that left the feed stop occupying
// memory; dropping a live entry is harmless (it recomputes).
func (c *LCSCache) Prune(keep func(name string) bool) {
	c.mu.Lock()
	for k := range c.m {
		if !keep(k[0]) || !keep(k[1]) {
			delete(c.m, k)
		}
	}
	c.mu.Unlock()
}

// AnalyzeVendors surveys a snapshot and generates candidate pairs with
// the §4.2 vendor heuristics, scoring pairs with GOMAXPROCS workers.
func AnalyzeVendors(snap *cve.Snapshot) *VendorAnalysis {
	return AnalyzeVendorsN(snap, 0)
}

// AnalyzeVendorsN is AnalyzeVendors with an explicit worker bound
// (zero means GOMAXPROCS).
func AnalyzeVendorsN(snap *cve.Snapshot, workers int) *VendorAnalysis {
	return AnalyzeVendorsCached(snap, workers, nil)
}

// AnalyzeVendorsCached is AnalyzeVendorsN with an optional LCS memo
// shared across runs (nil computes every score fresh). Candidate
// generation uses pure blocking strategies to stay far from O(V²) —
// names are bucketed by stripped form, deletion signature,
// abbreviation, product, and a sorted-prefix scan — and the surviving
// candidates are scored (LCS, shared-product counts) in parallel, each
// pair writing only its own slot of the sorted pair list, so the
// analysis is identical at any concurrency, with or without a cache.
func AnalyzeVendorsCached(snap *cve.Snapshot, workers int, lcs *LCSCache) *VendorAnalysis {
	va := &VendorAnalysis{
		CVECount: snap.VendorCVECount(),
		Products: snap.VendorProducts(),
	}
	names := make([]string, 0, len(va.CVECount))
	for name := range va.CVECount {
		names = append(names, name)
	}
	sort.Strings(names)

	type pairKey [2]string
	cand := make(map[pairKey]map[Pattern]struct{})
	addPair := func(a, b string, p Pattern) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := pairKey{a, b}
		set := cand[k]
		if set == nil {
			set = make(map[Pattern]struct{}, 2)
			cand[k] = set
		}
		set[p] = struct{}{}
	}

	// 1. Tokens: identical after removing special characters.
	stripped := make(map[string][]string)
	for _, n := range names {
		s := textnorm.StripSpecial(n)
		if s == "" {
			continue
		}
		stripped[s] = append(stripped[s], n)
	}
	for _, group := range stripped {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				addPair(group[i], group[j], PatternTokens)
			}
		}
	}

	// 2. Prefix: sorted-order scan; every name is checked against the
	// following names that extend it.
	for i, n := range names {
		for j := i + 1; j < len(names); j++ {
			if !strings.HasPrefix(names[j], n) {
				break
			}
			addPair(n, names[j], PatternPrefix)
		}
	}

	// 3. Misspellings: deletion-signature blocking finds all pairs
	// within edit distance 1 without quadratic scans.
	sig := make(map[string][]string)
	addSig := func(s, name string) { sig[s] = append(sig[s], name) }
	for _, n := range names {
		addSig(n, n)
		for i := 0; i < len(n); i++ {
			addSig(n[:i]+n[i+1:], n)
		}
	}
	for _, group := range sig {
		if len(group) < 2 {
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if a != b && textnorm.WithinEditDistance(a, b, 1) {
					addPair(a, b, PatternEdit)
				}
			}
		}
	}

	// 4. Abbreviations: initials of multi-token names matched against
	// existing single-token names.
	nameSet := make(map[string]bool, len(names))
	for _, n := range names {
		nameSet[n] = true
	}
	for _, n := range names {
		// Two-letter initials collide across unrelated vendors; demand
		// three or more, like the paper's lan_management_system -> lms.
		if ab := textnorm.Abbreviation(n); len(ab) >= 3 && nameSet[ab] {
			addPair(n, ab, PatternAbbrev)
		}
	}

	// 5. Shared products (#MP): vendors listing the same product name.
	byProduct := make(map[string][]string)
	for vendor, prods := range va.Products {
		for p := range prods {
			byProduct[p] = append(byProduct[p], vendor)
		}
	}
	for _, vendors := range byProduct {
		if len(vendors) < 2 || len(vendors) > 25 {
			// Very popular product names ("firmware") join unrelated
			// vendors; the paper's manual stage discarded those floods.
			continue
		}
		sort.Strings(vendors)
		for i := 0; i < len(vendors); i++ {
			for j := i + 1; j < len(vendors); j++ {
				addPair(vendors[i], vendors[j], PatternSharedProduct)
			}
		}
	}

	// 6. Product-as-vendor (PaV): a vendor name equal to some other
	// vendor's product name.
	for vendor, prods := range va.Products {
		for p := range prods {
			if p != vendor && nameSet[p] {
				addPair(vendor, p, PatternProductAsVendor)
			}
		}
	}

	// Materialize pairs with their signals. Scoring — the LCS dynamic
	// program dominates — fans out across workers: keys are sorted
	// first so slot i is pair i of the final (A, B)-ordered list, and
	// every worker writes only its own slots.
	keys := make([]pairKey, 0, len(cand))
	for k := range cand {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	va.Pairs = make([]VendorPair, len(keys))
	parallel.For(workers, len(keys), func(i int) {
		k := keys[i]
		vp := VendorPair{A: k[0], B: k[1]}
		for p := range cand[k] {
			vp.Patterns = append(vp.Patterns, p)
		}
		sort.Slice(vp.Patterns, func(a, b int) bool { return vp.Patterns[a] < vp.Patterns[b] })
		if lcs != nil {
			vp.LCS = lcs.LCS(k[0], k[1])
		} else {
			vp.LCS = textnorm.LongestCommonSubstring(k[0], k[1])
		}
		vp.MatchingProducts = countShared(va.Products[k[0]], va.Products[k[1]])
		vp.SmallerCatalog = len(va.Products[k[0]])
		if n := len(va.Products[k[1]]); n < vp.SmallerCatalog {
			vp.SmallerCatalog = n
		}
		va.Pairs[i] = vp
	})
	return va
}

func countShared(a, b map[string]struct{}) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for p := range a {
		if _, ok := b[p]; ok {
			n++
		}
	}
	return n
}

// Map is a name-consolidation mapping from inconsistent names to their
// consistent (canonical) form.
type Map struct {
	forward map[string]string
}

// NewMap wraps a ready mapping (used by tests and cross-database
// application).
func NewMap(m map[string]string) *Map {
	return &Map{forward: m}
}

// Canonical resolves a name, returning the input when unmapped.
func (m *Map) Canonical(name string) string {
	if c, ok := m.forward[name]; ok {
		return c
	}
	return name
}

// Len returns the number of remapped names.
func (m *Map) Len() int { return len(m.forward) }

// Mapped reports whether name has a canonical form different from
// itself.
func (m *Map) Mapped(name string) bool {
	_, ok := m.forward[name]
	return ok
}

// Entries returns a copy of the alias→canonical mapping.
func (m *Map) Entries() map[string]string {
	out := make(map[string]string, len(m.forward))
	for k, v := range m.forward {
		out[k] = v
	}
	return out
}

// Targets returns the distinct canonical names, sorted.
func (m *Map) Targets() []string {
	set := make(map[string]struct{})
	for _, c := range m.forward {
		set[c] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Consolidate turns confirmed pairs into a Map: matching names are
// grouped with union-find and each group's canonical name is the one
// with the most associated CVEs (§4.2: "we considered the one with the
// most associated CVEs as the consistent name").
func (va *VendorAnalysis) Consolidate(judge Judge) *Map {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := range va.Pairs {
		vp := &va.Pairs[i]
		if judge.SameVendor(vp) {
			union(vp.A, vp.B)
		}
	}
	groups := make(map[string][]string)
	for name := range parent {
		root := find(name)
		groups[root] = append(groups[root], name)
	}
	forward := make(map[string]string)
	for root, members := range groups {
		if find(root) != root {
			continue
		}
		members = append(members, root)
		sort.Strings(members)
		canonical := members[0]
		for _, m := range members {
			if va.CVECount[m] > va.CVECount[canonical] {
				canonical = m
			}
		}
		for _, m := range members {
			if m != canonical {
				forward[m] = canonical
			}
		}
	}
	return &Map{forward: forward}
}

// Apply rewrites every CPE vendor in the snapshot through the map,
// returning the number of CVEs touched.
func (m *Map) Apply(snap *cve.Snapshot) int {
	changed := 0
	for _, e := range snap.Entries {
		touched := false
		for i := range e.CPEs {
			if c, ok := m.forward[e.CPEs[i].Vendor]; ok {
				e.CPEs[i].Vendor = c
				touched = true
			}
		}
		if touched {
			changed++
		}
	}
	return changed
}
