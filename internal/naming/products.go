package naming

import (
	"sort"
	"sync"
	"unicode"

	"nvdclean/internal/cve"
	"nvdclean/internal/parallel"
	"nvdclean/internal/textnorm"
)

// ProductPair is a candidate matching product-name pair under one
// vendor.
type ProductPair struct {
	Vendor string
	// A, B are the two product names, A < B lexically.
	A, B string
	// Patterns that flagged the pair: PatternTokens (identical
	// tokenization), PatternAbbrev, or PatternEdit.
	Patterns []Pattern
	// AbbrevExpansions is, for abbreviation pairs, the number of
	// multi-component products under the vendor sharing the
	// abbreviation. An analyst would not resolve "as" to one product
	// when a dozen expand to it.
	AbbrevExpansions int
}

// HasPattern reports whether p was flagged on the pair.
func (pp *ProductPair) HasPattern(p Pattern) bool {
	for _, q := range pp.Patterns {
		if q == p {
			return true
		}
	}
	return false
}

// ProductAnalysis holds the §4.2 product-name survey, which runs after
// vendor consolidation ("After consolidating vendor names, we
// identified likely matching product names under the same consolidated
// vendor").
type ProductAnalysis struct {
	Pairs []ProductPair
	// CVECount maps (vendor, product) to CVE count for canonical
	// selection.
	CVECount map[[2]string]int
}

// ProductCache carries per-vendor pair blocks across incremental
// analysis runs. A vendor's pair block is a pure function of its
// product catalog (the set of product names), so when a feed delta
// leaves a vendor's catalog untouched the previous block is reused
// verbatim; only vendors whose catalogs changed are re-surveyed.
// Staleness is impossible by construction: every reuse re-validates
// the stored catalog against the current one. Safe for concurrent use.
type ProductCache struct {
	mu      sync.Mutex
	vendors map[string]productCacheEntry
}

type productCacheEntry struct {
	catalog map[string]struct{}
	pairs   []ProductPair
}

// NewProductCache returns an empty cache.
func NewProductCache() *ProductCache {
	return &ProductCache{vendors: make(map[string]productCacheEntry)}
}

// lookup returns the cached pair block for vendor when its recorded
// catalog equals the given product set.
func (c *ProductCache) lookup(vendor string, set map[string]struct{}) ([]ProductPair, bool) {
	c.mu.Lock()
	ent, ok := c.vendors[vendor]
	c.mu.Unlock()
	if !ok || len(ent.catalog) != len(set) {
		return nil, false
	}
	for p := range set {
		if _, ok := ent.catalog[p]; !ok {
			return nil, false
		}
	}
	return ent.pairs, true
}

// store records vendor's pair block for the given catalog.
func (c *ProductCache) store(vendor string, set map[string]struct{}, pairs []ProductPair) {
	c.mu.Lock()
	c.vendors[vendor] = productCacheEntry{catalog: set, pairs: pairs}
	c.mu.Unlock()
}

// Len returns the number of cached vendors.
func (c *ProductCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vendors)
}

// Prune drops cached blocks for vendors keep rejects, bounding a
// long-lived incremental pipeline's memory by the current feed rather
// than by every vendor ever seen.
func (c *ProductCache) Prune(keep func(vendor string) bool) {
	c.mu.Lock()
	for v := range c.vendors {
		if !keep(v) {
			delete(c.vendors, v)
		}
	}
	c.mu.Unlock()
}

// AnalyzeProducts surveys product names per vendor using the §4.2
// heuristics: identical tokenization (internet-explorer vs
// internet_explorer), first-character abbreviation (ie), and edit
// distance 1 (human-error typos). Vendors are analyzed with GOMAXPROCS
// workers.
func AnalyzeProducts(snap *cve.Snapshot) *ProductAnalysis {
	return AnalyzeProductsN(snap, 0)
}

// AnalyzeProductsN is AnalyzeProducts with an explicit worker bound
// (zero means GOMAXPROCS).
func AnalyzeProductsN(snap *cve.Snapshot, workers int) *ProductAnalysis {
	return AnalyzeProductsCached(snap, workers, nil)
}

// AnalyzeProductsCached is AnalyzeProductsN with an optional per-vendor
// cache shared across runs (nil re-surveys everything). Vendors are
// mutually independent — every heuristic blocks within one vendor's
// catalog — so each worker surveys whole vendors, writing its sorted
// pair block into the vendor's slot; concatenating the blocks in
// sorted-vendor order yields the same (Vendor, A, B)-sorted pair list
// at any concurrency, with or without a cache.
func AnalyzeProductsCached(snap *cve.Snapshot, workers int, cache *ProductCache) *ProductAnalysis {
	pa := &ProductAnalysis{CVECount: make(map[[2]string]int)}
	perVendor := make(map[string]map[string]struct{})
	for _, e := range snap.Entries {
		seen := make(map[[2]string]bool, len(e.CPEs))
		for _, n := range e.CPEs {
			k := [2]string{n.Vendor, n.Product}
			set := perVendor[n.Vendor]
			if set == nil {
				set = make(map[string]struct{})
				perVendor[n.Vendor] = set
			}
			set[n.Product] = struct{}{}
			if !seen[k] {
				seen[k] = true
				pa.CVECount[k]++
			}
		}
	}

	vendors := make([]string, 0, len(perVendor))
	for v := range perVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)

	perVendorPairs := make([][]ProductPair, len(vendors))
	parallel.For(workers, len(vendors), func(vi int) {
		vendor := vendors[vi]
		set := perVendor[vendor]
		if cache != nil {
			if pairs, ok := cache.lookup(vendor, set); ok {
				perVendorPairs[vi] = pairs
				return
			}
		}
		products := make([]string, 0, len(set))
		for p := range set {
			products = append(products, p)
		}
		sort.Strings(products)

		type key [2]string
		cand := make(map[key]map[Pattern]struct{})
		add := func(a, b string, p Pattern) {
			if a == b {
				return
			}
			if a > b {
				a, b = b, a
			}
			k := key{a, b}
			s := cand[k]
			if s == nil {
				s = make(map[Pattern]struct{}, 2)
				cand[k] = s
			}
			s[p] = struct{}{}
		}

		// Heuristic 1: identical tokenization.
		byTokens := make(map[string][]string)
		for _, p := range products {
			t := textnorm.CanonicalTokens(p)
			if t == "" {
				continue
			}
			byTokens[t] = append(byTokens[t], p)
		}
		for _, group := range byTokens {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					add(group[i], group[j], PatternTokens)
				}
			}
		}

		// Heuristic 2: abbreviation of a multi-component name equals a
		// single-component name.
		nameSet := make(map[string]bool, len(products))
		for _, p := range products {
			nameSet[p] = true
		}
		// Expansions are counted by canonical tokenization, so separator
		// variants of one product ("internet_explorer",
		// "internet-explorer") count as a single expansion of "ie".
		abbrevSets := make(map[string]map[string]struct{})
		for _, p := range products {
			if ab := textnorm.Abbreviation(p); len(ab) >= 2 {
				set := abbrevSets[ab]
				if set == nil {
					set = make(map[string]struct{})
					abbrevSets[ab] = set
				}
				set[textnorm.CanonicalTokens(p)] = struct{}{}
			}
		}
		abbrevCount := make(map[string]int, len(abbrevSets))
		for ab, set := range abbrevSets {
			abbrevCount[ab] = len(set)
		}
		for _, p := range products {
			if ab := textnorm.Abbreviation(p); len(ab) >= 2 && nameSet[ab] {
				add(p, ab, PatternAbbrev)
			}
		}

		// Heuristic 3: edit distance 1 via deletion signatures.
		sig := make(map[string][]string)
		for _, p := range products {
			sig[p] = append(sig[p], p)
			for i := 0; i < len(p); i++ {
				s := p[:i] + p[i+1:]
				sig[s] = append(sig[s], p)
			}
		}
		for _, group := range sig {
			if len(group) < 2 {
				continue
			}
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					a, b := group[i], group[j]
					if a != b && textnorm.WithinEditDistance(a, b, 1) {
						add(a, b, PatternEdit)
					}
				}
			}
		}

		pairs := make([]ProductPair, 0, len(cand))
		for k, patterns := range cand {
			pp := ProductPair{Vendor: vendor, A: k[0], B: k[1]}
			for p := range patterns {
				pp.Patterns = append(pp.Patterns, p)
			}
			sort.Slice(pp.Patterns, func(i, j int) bool { return pp.Patterns[i] < pp.Patterns[j] })
			if pp.HasPattern(PatternAbbrev) {
				// The single-component side is the abbreviation.
				ab := pp.A
				if len(pp.B) < len(ab) {
					ab = pp.B
				}
				pp.AbbrevExpansions = abbrevCount[ab]
			}
			pairs = append(pairs, pp)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].A != pairs[j].A {
				return pairs[i].A < pairs[j].A
			}
			return pairs[i].B < pairs[j].B
		})
		perVendorPairs[vi] = pairs
		if cache != nil {
			cache.store(vendor, set, pairs)
		}
	})
	// Vendor blocks concatenate in sorted-vendor order, so the full
	// list arrives sorted by (Vendor, A, B) without a global sort.
	total := 0
	for _, pairs := range perVendorPairs {
		total += len(pairs)
	}
	pa.Pairs = make([]ProductPair, 0, total)
	for _, pairs := range perVendorPairs {
		pa.Pairs = append(pa.Pairs, pairs...)
	}
	return pa
}

// ProductJudge decides whether a candidate product pair names the same
// product.
type ProductJudge interface {
	SameProduct(p *ProductPair) bool
}

// HeuristicProductJudge automates the paper's manual verification:
// tokenization-identical and abbreviation pairs are confirmed; edit-
// distance-1 pairs are confirmed only when the difference is
// alphabetic, because digit differences are usually genuinely different
// products (the paper's ucs-e160dp-m1_firmware vs ucs-e140dp-m1_firmware
// example) while letter slips are typos (tbe_banner_engine vs
// the_banner_engine).
type HeuristicProductJudge struct{}

// SameProduct implements ProductJudge.
func (HeuristicProductJudge) SameProduct(p *ProductPair) bool {
	if p.HasPattern(PatternTokens) {
		return true
	}
	// Abbreviations resolve only when exactly one product under the
	// vendor expands to them ("ie" for internet_explorer), mirroring the
	// paper's manual disambiguation.
	if p.HasPattern(PatternAbbrev) && p.AbbrevExpansions == 1 {
		return true
	}
	if p.HasPattern(PatternEdit) {
		// Two-character names at distance 1 carry no evidence, and
		// digit differences are product lines, not typos.
		return minLen(p.A, p.B) >= 5 && !digitDifference(p.A, p.B)
	}
	return false
}

// digitDifference reports whether the single-character difference
// between two edit-distance-1 names involves a digit.
func digitDifference(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	i := 0
	for i < len(a) && a[i] == b[i] {
		i++
	}
	// i is the first divergence; check the characters at the edit site.
	if i < len(a) && unicode.IsDigit(rune(a[i])) {
		return true
	}
	if i < len(b) && unicode.IsDigit(rune(b[i])) {
		return true
	}
	return false
}

// OracleProductJudge scores against generator ground truth.
type OracleProductJudge struct {
	// Canonical maps (vendor, product) to the canonical product name.
	Canonical func(vendor, product string) string
}

// SameProduct implements ProductJudge.
func (o OracleProductJudge) SameProduct(p *ProductPair) bool {
	return o.Canonical(p.Vendor, p.A) == o.Canonical(p.Vendor, p.B)
}

// ProductMap maps (vendor, inconsistent product) to the consistent
// product name.
type ProductMap struct {
	forward map[[2]string]string
}

// NewProductMap wraps a ready (vendor, alias)→canonical mapping, the
// product counterpart of NewMap.
func NewProductMap(m map[[2]string]string) *ProductMap {
	return &ProductMap{forward: m}
}

// Canonical resolves a product name under a vendor.
func (m *ProductMap) Canonical(vendor, product string) string {
	if c, ok := m.forward[[2]string{vendor, product}]; ok {
		return c
	}
	return product
}

// Len returns the number of remapped product names.
func (m *ProductMap) Len() int { return len(m.forward) }

// Entries returns a copy of the (vendor, alias)→canonical mapping.
func (m *ProductMap) Entries() map[[2]string]string {
	out := make(map[[2]string]string, len(m.forward))
	for k, v := range m.forward {
		out[k] = v
	}
	return out
}

// Vendors returns the distinct vendors with at least one remapped
// product, sorted — the "#ven." column of Table 3.
func (m *ProductMap) Vendors() []string {
	set := make(map[string]struct{})
	for k := range m.forward {
		set[k[0]] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Consolidate builds the product map from confirmed pairs; the
// canonical name is the one with the most CVEs under that vendor.
func (pa *ProductAnalysis) Consolidate(judge ProductJudge) *ProductMap {
	parent := make(map[[2]string][2]string)
	var find func([2]string) [2]string
	find = func(x [2]string) [2]string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for i := range pa.Pairs {
		pp := &pa.Pairs[i]
		if !judge.SameProduct(pp) {
			continue
		}
		ka, kb := [2]string{pp.Vendor, pp.A}, [2]string{pp.Vendor, pp.B}
		ra, rb := find(ka), find(kb)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[[2]string][][2]string)
	for k := range parent {
		groups[find(k)] = append(groups[find(k)], k)
	}
	forward := make(map[[2]string]string)
	for root, members := range groups {
		if find(root) != root {
			continue
		}
		members = append(members, root)
		sort.Slice(members, func(i, j int) bool { return members[i][1] < members[j][1] })
		canonical := members[0]
		for _, m := range members {
			if pa.CVECount[m] > pa.CVECount[canonical] {
				canonical = m
			}
		}
		for _, m := range members {
			if m != canonical {
				forward[m] = canonical[1]
			}
		}
	}
	return &ProductMap{forward: forward}
}

// Apply rewrites product names through the map, returning the number of
// CVEs touched.
func (m *ProductMap) Apply(snap *cve.Snapshot) int {
	changed := 0
	for _, e := range snap.Entries {
		touched := false
		for i := range e.CPEs {
			k := [2]string{e.CPEs[i].Vendor, e.CPEs[i].Product}
			if c, ok := m.forward[k]; ok {
				e.CPEs[i].Product = c
				touched = true
			}
		}
		if touched {
			changed++
		}
	}
	return changed
}
