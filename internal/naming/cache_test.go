package naming

import (
	"reflect"
	"testing"

	"nvdclean/internal/gen"
)

// TestCachedAnalysisMatchesUncached runs the vendor and product
// analyses with and without warm caches and requires identical output:
// the caches are memoizations of pure functions, never semantic state.
func TestCachedAnalysisMatchesUncached(t *testing.T) {
	snap, _, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	lcs := NewLCSCache()
	prods := NewProductCache()

	baseV := AnalyzeVendorsN(snap, 2)
	baseP := AnalyzeProductsN(snap, 2)

	// Cold caches, then warm caches on the identical snapshot.
	for pass := 0; pass < 2; pass++ {
		gotV := AnalyzeVendorsCached(snap, 2, lcs)
		if !reflect.DeepEqual(gotV.Pairs, baseV.Pairs) {
			t.Fatalf("pass %d: cached vendor pairs differ", pass)
		}
		gotP := AnalyzeProductsCached(snap, 2, prods)
		if !reflect.DeepEqual(gotP.Pairs, baseP.Pairs) {
			t.Fatalf("pass %d: cached product pairs differ", pass)
		}
		if !reflect.DeepEqual(gotP.CVECount, baseP.CVECount) {
			t.Fatalf("pass %d: cached product CVE counts differ", pass)
		}
	}
	if lcs.Len() == 0 {
		t.Error("LCS cache never populated")
	}
	if prods.Len() == 0 {
		t.Error("product cache never populated")
	}

	// A changed catalog must invalidate only that vendor's block:
	// mutate one entry's product and re-analyze.
	mod := snap.Clone()
	mod.Entries[0].CPEs[0].Product = mod.Entries[0].CPEs[0].Product + "_v2"
	want := AnalyzeProductsN(mod, 1)
	got := AnalyzeProductsCached(mod, 4, prods)
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatal("warm cache produced wrong pairs after catalog change")
	}
}
