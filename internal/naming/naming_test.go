package naming

import (
	"testing"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
)

// buildSnapshot assembles a snapshot from (vendor, product) rows, one
// CVE per row repeated count times.
func buildSnapshot(rows []struct {
	vendor, product string
	count           int
}) *cve.Snapshot {
	snap := &cve.Snapshot{}
	seq := 1
	for _, r := range rows {
		for i := 0; i < r.count; i++ {
			snap.Entries = append(snap.Entries, &cve.Entry{
				ID:   cve.FormatID(2010, seq),
				CPEs: []cpe.Name{cpe.NewName(cpe.PartApplication, r.vendor, r.product, "1.0")},
			})
			seq++
		}
	}
	return snap
}

func paperSnapshot() *cve.Snapshot {
	return buildSnapshot([]struct {
		vendor, product string
		count           int
	}{
		{"microsoft", "internet_explorer", 30},
		{"microsoft", "windows", 20},
		{"microsft", "internet_explorer", 2}, // misspelling, shares a product
		{"bea", "weblogic_server", 17},
		{"bea_systems", "weblogic_server", 3}, // prefix + shared product
		{"avast", "antivirus", 8},
		{"avast!", "antivirus", 2}, // tokens
		{"lan_management_system", "lms_console", 5},
		{"lms", "lms_console", 2}, // abbreviation + shared product
		{"lynx", "lynx_browser", 6},
		{"lynx_project", "lynx_browser", 2}, // prefix
		{"windows", "media_player", 3},      // product-as-vendor (microsoft's windows)
		{"oracle", "database_server", 40},   // unrelated control
		{"ibm", "websphere", 25},            // unrelated control
	})
}

func TestAnalyzeVendorsFindsPaperPatterns(t *testing.T) {
	va := AnalyzeVendors(paperSnapshot())
	find := func(a, b string) *VendorPair {
		if a > b {
			a, b = b, a
		}
		for i := range va.Pairs {
			if va.Pairs[i].A == a && va.Pairs[i].B == b {
				return &va.Pairs[i]
			}
		}
		return nil
	}
	tests := []struct {
		a, b    string
		pattern Pattern
	}{
		{"microsoft", "microsft", PatternEdit},
		{"microsoft", "microsft", PatternSharedProduct},
		{"bea", "bea_systems", PatternPrefix},
		{"bea", "bea_systems", PatternSharedProduct},
		{"avast", "avast!", PatternTokens},
		{"lan_management_system", "lms", PatternAbbrev},
		{"lynx", "lynx_project", PatternPrefix},
		{"microsoft", "windows", PatternProductAsVendor},
	}
	for _, tt := range tests {
		p := find(tt.a, tt.b)
		if p == nil {
			t.Errorf("pair (%s, %s) not found", tt.a, tt.b)
			continue
		}
		if !p.HasPattern(tt.pattern) {
			t.Errorf("pair (%s, %s) missing pattern %s: has %v", tt.a, tt.b, tt.pattern, p.Patterns)
		}
	}
	// Control pair must not be flagged.
	if p := find("oracle", "ibm"); p != nil {
		t.Errorf("unrelated (oracle, ibm) flagged: %v", p.Patterns)
	}
}

func TestHeuristicJudge(t *testing.T) {
	va := AnalyzeVendors(paperSnapshot())
	judge := HeuristicJudge{}
	want := map[[2]string]bool{
		{"microsft", "microsoft"}:        true,
		{"bea", "bea_systems"}:           true,
		{"avast", "avast!"}:              true,
		{"lan_management_system", "lms"}: true,
		{"lynx", "lynx_project"}:         true,
		{"microsoft", "windows"}:         false, // LCS < 3 single pattern: microsoft's own product
	}
	for i := range va.Pairs {
		p := &va.Pairs[i]
		expect, ok := want[[2]string{p.A, p.B}]
		if !ok {
			continue
		}
		if got := judge.SameVendor(p); got != expect {
			t.Errorf("judge(%s, %s) = %v, want %v (patterns %v, LCS %d, MP %d)",
				p.A, p.B, got, expect, p.Patterns, p.LCS, p.MatchingProducts)
		}
	}
}

func TestConsolidateCanonicalByMostCVEs(t *testing.T) {
	va := AnalyzeVendors(paperSnapshot())
	m := va.Consolidate(HeuristicJudge{})
	tests := []struct{ alias, canonical string }{
		{"microsft", "microsoft"},
		{"bea_systems", "bea"},
		{"avast!", "avast"},
		{"lms", "lan_management_system"},
		{"lynx_project", "lynx"},
	}
	for _, tt := range tests {
		if got := m.Canonical(tt.alias); got != tt.canonical {
			t.Errorf("Canonical(%s) = %s, want %s", tt.alias, got, tt.canonical)
		}
	}
	// Canonical names map to themselves.
	if m.Mapped("microsoft") {
		t.Error("canonical name must not be remapped")
	}
	if got := m.Canonical("unrelated"); got != "unrelated" {
		t.Errorf("unmapped name = %s", got)
	}
}

func TestApplyRewritesSnapshot(t *testing.T) {
	snap := paperSnapshot()
	va := AnalyzeVendors(snap)
	m := va.Consolidate(HeuristicJudge{})
	changed := m.Apply(snap)
	if changed == 0 {
		t.Fatal("Apply touched nothing")
	}
	for _, e := range snap.Entries {
		for _, n := range e.CPEs {
			if n.Vendor == "microsft" || n.Vendor == "bea_systems" || n.Vendor == "avast!" {
				t.Fatalf("alias %q survived Apply", n.Vendor)
			}
		}
	}
}

func TestVendorHeuristicsAgainstOracle(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	va := AnalyzeVendors(snap)
	oracle := OracleJudge{Canonical: truth.CanonicalVendor}
	judge := HeuristicJudge{}

	var tp, fp, fn int
	for i := range va.Pairs {
		p := &va.Pairs[i]
		pred := judge.SameVendor(p)
		actual := oracle.SameVendor(p)
		switch {
		case pred && actual:
			tp++
		case pred && !actual:
			fp++
		case !pred && actual:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("heuristics found no true matches")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	// Table 2: confirmed rates above 60% for LCS>=3 patterns, >90% for
	// prefix/shared-product. The автоматed judge should be strongly
	// precise and recall most injected aliases that co-occur in CVEs.
	if precision < 0.70 {
		t.Errorf("precision = %.2f (tp=%d fp=%d), want ≥ 0.70", precision, tp, fp)
	}
	if recall < 0.60 {
		t.Errorf("recall = %.2f (tp=%d fn=%d), want ≥ 0.60", recall, tp, fn)
	}
}

func TestConsolidationRecoversInjectedAliases(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Count alias names that actually appear in CVEs.
	used := make(map[string]bool)
	for _, e := range snap.Entries {
		for _, v := range e.Vendors() {
			used[v] = true
		}
	}
	va := AnalyzeVendors(snap)
	m := va.Consolidate(HeuristicJudge{})
	var present, recovered int
	for alias, canonical := range truth.VendorCanonical {
		if !used[alias] || !used[canonical] {
			continue
		}
		present++
		if m.Canonical(alias) == canonical {
			recovered++
		}
	}
	if present == 0 {
		t.Fatal("no aliases in snapshot")
	}
	rate := float64(recovered) / float64(present)
	if rate < 0.55 {
		t.Errorf("alias recovery = %.2f (%d/%d), want ≥ 0.55", rate, recovered, present)
	}
}

func productSnapshot() *cve.Snapshot {
	return buildSnapshot([]struct {
		vendor, product string
		count           int
	}{
		{"microsoft", "internet_explorer", 25},
		{"microsoft", "internet-explorer", 3},
		{"microsoft", "ie", 2},
		{"microsoft", "internet_information_services", 10},
		{"nativesolutions", "the_banner_engine", 7},
		{"nativesolutions", "tbe_banner_engine", 1},
		{"cisco", "ucs-e160dp-m1_firmware", 4},
		{"cisco", "ucs-e140dp-m1_firmware", 3},
	})
}

func TestAnalyzeProducts(t *testing.T) {
	pa := AnalyzeProducts(productSnapshot())
	find := func(vendor, a, b string) *ProductPair {
		if a > b {
			a, b = b, a
		}
		for i := range pa.Pairs {
			p := &pa.Pairs[i]
			if p.Vendor == vendor && p.A == a && p.B == b {
				return p
			}
		}
		return nil
	}
	if p := find("microsoft", "internet_explorer", "internet-explorer"); p == nil || !p.HasPattern(PatternTokens) {
		t.Errorf("separator variant not flagged: %+v", p)
	}
	if p := find("microsoft", "internet_explorer", "ie"); p == nil || !p.HasPattern(PatternAbbrev) {
		t.Errorf("abbreviation not flagged: %+v", p)
	}
	if p := find("nativesolutions", "the_banner_engine", "tbe_banner_engine"); p == nil || !p.HasPattern(PatternEdit) {
		t.Errorf("typo not flagged: %+v", p)
	}
	if p := find("cisco", "ucs-e160dp-m1_firmware", "ucs-e140dp-m1_firmware"); p == nil || !p.HasPattern(PatternEdit) {
		t.Errorf("digit variant should still be a candidate: %+v", p)
	}
}

func TestHeuristicProductJudge(t *testing.T) {
	pa := AnalyzeProducts(productSnapshot())
	judge := HeuristicProductJudge{}
	want := map[[3]string]bool{
		{"microsoft", "internet-explorer", "internet_explorer"}:       true,
		{"microsoft", "ie", "internet_explorer"}:                      true,
		{"nativesolutions", "tbe_banner_engine", "the_banner_engine"}: true,
		{"cisco", "ucs-e140dp-m1_firmware", "ucs-e160dp-m1_firmware"}: false, // digit difference
	}
	checked := 0
	for i := range pa.Pairs {
		p := &pa.Pairs[i]
		expect, ok := want[[3]string{p.Vendor, p.A, p.B}]
		if !ok {
			continue
		}
		checked++
		if got := judge.SameProduct(p); got != expect {
			t.Errorf("judge(%s: %s, %s) = %v, want %v", p.Vendor, p.A, p.B, got, expect)
		}
	}
	if checked != len(want) {
		t.Errorf("only %d/%d expected pairs surfaced", checked, len(want))
	}
}

func TestProductConsolidateAndApply(t *testing.T) {
	snap := productSnapshot()
	pa := AnalyzeProducts(snap)
	m := pa.Consolidate(HeuristicProductJudge{})
	if got := m.Canonical("microsoft", "ie"); got != "internet_explorer" {
		t.Errorf("Canonical(ie) = %s", got)
	}
	if got := m.Canonical("microsoft", "internet-explorer"); got != "internet_explorer" {
		t.Errorf("Canonical(internet-explorer) = %s", got)
	}
	if got := m.Canonical("cisco", "ucs-e140dp-m1_firmware"); got != "ucs-e140dp-m1_firmware" {
		t.Errorf("digit variant was wrongly merged to %s", got)
	}
	vendors := m.Vendors()
	if len(vendors) != 2 { // microsoft and nativesolutions
		t.Errorf("Vendors() = %v", vendors)
	}
	changed := m.Apply(snap)
	if changed != 6 { // 3 internet-explorer + 2 ie + 1 tbe
		t.Errorf("Apply changed %d CVEs, want 6", changed)
	}
}

func TestProductOracleComparison(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleProductJudge{Canonical: func(vendor, product string) string {
		return truth.CanonicalProduct(truth.CanonicalVendor(vendor), product)
	}}
	ours, dong := CompareBaseline(snap, oracle)
	if ours.TP == 0 {
		t.Fatal("our heuristics found no true product pairs")
	}
	ourPrecision := float64(ours.TP) / float64(ours.TP+ours.FP)
	if ourPrecision < 0.7 {
		t.Errorf("our product precision = %.2f, want ≥ 0.7", ourPrecision)
	}
	// The Dong baseline misses separator/abbreviation pairs entirely
	// when names use underscores (its split is whitespace-only), so it
	// must not dominate our recall, and any pairs it does flag by
	// shared words are often false.
	if dong.TP > ours.TP {
		t.Errorf("baseline TP %d exceeds ours %d", dong.TP, ours.TP)
	}
}

func TestBuildTable2(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	va := AnalyzeVendors(snap)
	table := BuildTable2(va, OracleJudge{Canonical: truth.CanonicalVendor})
	if table.Possible.TotalPairs() == 0 {
		t.Fatal("no possible pairs")
	}
	if table.Confirmed.TotalPairs() == 0 {
		t.Fatal("no confirmed pairs")
	}
	if table.Confirmed.TotalPairs() > table.Possible.TotalPairs() {
		t.Error("confirmed exceeds possible")
	}
	// Tokens pairs are all confirmed (paper: 260/260).
	if table.Possible.Tokens.Pairs > 0 &&
		table.Confirmed.Tokens.Pairs < table.Possible.Tokens.Pairs {
		t.Errorf("tokens: confirmed %d < possible %d — paper found 100%%",
			table.Confirmed.Tokens.Pairs, table.Possible.Tokens.Pairs)
	}
	if rate := table.ConfirmRate(); rate <= 0 || rate > 1 {
		t.Errorf("ConfirmRate = %v", rate)
	}
}

func TestMapHelpers(t *testing.T) {
	m := NewMap(map[string]string{"a": "b", "c": "b", "d": "e"})
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
	targets := m.Targets()
	if len(targets) != 2 || targets[0] != "b" || targets[1] != "e" {
		t.Errorf("Targets = %v", targets)
	}
}

func BenchmarkAnalyzeVendorsSmall(b *testing.B) {
	snap, _, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeVendors(snap)
	}
}

func BenchmarkAnalyzeProductsSmall(b *testing.B) {
	snap, _, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeProducts(snap)
	}
}
