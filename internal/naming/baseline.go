package naming

import (
	"sort"
	"strings"

	"nvdclean/internal/cve"
)

// DongBaseline implements the product-matching heuristic of Dong et al.
// (USENIX Security 2019) as the paper describes it in §4.2: "their
// heuristic was to split product names by white spaces into words, and
// label two products as matching if they shared words." The paper notes
// it "does not account for abbreviations or special character
// separators, and yields false positives when different products share
// similar words (e.g., Microsoft's Internet Explorer and Internet
// Information Services)". The ablation bench quantifies exactly that.
type DongBaseline struct{}

// Pairs returns all product pairs under each vendor that the baseline
// labels as matching.
func (DongBaseline) Pairs(snap *cve.Snapshot) []ProductPair {
	perVendor := make(map[string]map[string]struct{})
	for _, e := range snap.Entries {
		for _, n := range e.CPEs {
			set := perVendor[n.Vendor]
			if set == nil {
				set = make(map[string]struct{})
				perVendor[n.Vendor] = set
			}
			set[n.Product] = struct{}{}
		}
	}
	vendors := make([]string, 0, len(perVendor))
	for v := range perVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)

	var out []ProductPair
	for _, vendor := range vendors {
		set := perVendor[vendor]
		products := make([]string, 0, len(set))
		for p := range set {
			products = append(products, p)
		}
		sort.Strings(products)
		// Index by word: only whitespace splitting, per the original
		// heuristic.
		byWord := make(map[string][]string)
		for _, p := range products {
			for _, w := range strings.Fields(p) {
				byWord[w] = append(byWord[w], p)
			}
		}
		type key [2]string
		seen := make(map[key]bool)
		for _, group := range byWord {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					a, b := group[i], group[j]
					if a > b {
						a, b = b, a
					}
					k := key{a, b}
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, ProductPair{Vendor: vendor, A: a, B: b})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Vendor != b.Vendor {
			return a.Vendor < b.Vendor
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return out
}

// CompareBaseline scores ours and Dong's product matching against an
// oracle, returning (truePositives, falsePositives) per method. It is
// the quantitative version of the paper's qualitative comparison.
func CompareBaseline(snap *cve.Snapshot, oracle OracleProductJudge) (ours, dong struct{ TP, FP int }) {
	pa := AnalyzeProducts(snap)
	judge := HeuristicProductJudge{}
	for i := range pa.Pairs {
		p := &pa.Pairs[i]
		if !judge.SameProduct(p) {
			continue
		}
		if oracle.SameProduct(p) {
			ours.TP++
		} else {
			ours.FP++
		}
	}
	for _, p := range (DongBaseline{}).Pairs(snap) {
		p := p
		if oracle.SameProduct(&p) {
			dong.TP++
		} else {
			dong.FP++
		}
	}
	return ours, dong
}
