package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(int, int64) (*Network, error)
	}{
		{"dnn", CompactDNN},
		{"cnn", CompactCNN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := tc.build(13, 5)
			if err != nil {
				t.Fatal(err)
			}
			// Train briefly so the weights are non-initial.
			rng := rand.New(rand.NewSource(1))
			var x [][]float64
			var y []float64
			for i := 0; i < 40; i++ {
				row := make([]float64, 13)
				for j := range row {
					row[j] = rng.Float64()
				}
				x = append(x, row)
				y = append(y, rng.Float64())
			}
			if err := net.Train(x, y, TrainConfig{Epochs: 3, Seed: 2}); err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := net.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range x {
				if got, want := back.Predict(row), net.Predict(row); got != want {
					t.Fatalf("prediction changed after round trip: %v != %v", got, want)
				}
			}
		})
	}
}

func TestLoadedNetworkCanContinueTraining(t *testing.T) {
	net, err := CompactDNN(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}}
	y := []float64{0.3, 0.7}
	if err := back.Train(x, y, TrainConfig{Epochs: 5, Seed: 1}); err != nil {
		t.Fatalf("continued training failed: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "{"},
		{"wrong kind", `{"kind":"other","layers":[{"kind":"relu"}]}`},
		{"no layers", `{"kind":"nn-network","layers":[]}`},
		{"unknown layer", `{"kind":"nn-network","layers":[{"kind":"pool"}]}`},
		{"dense shape", `{"kind":"nn-network","layers":[{"kind":"dense","in":2,"out":1,"weight":[1],"bias":[0]}]}`},
		{"conv shape", `{"kind":"nn-network","layers":[{"kind":"conv1d","in_channels":1,"out_channels":1,"kernel":3,"length":4,"weight":[1],"bias":[0]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}
