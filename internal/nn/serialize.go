package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Network serialization: a trained network round-trips through a typed
// JSON layer list, so the severity engine can be trained once and
// shipped (the paper proposes NVD run its prediction engine as a
// service; that requires persistable models).

type layerJSON struct {
	Kind string `json:"kind"`
	// Dense fields.
	In     int       `json:"in,omitempty"`
	Out    int       `json:"out,omitempty"`
	Weight []float64 `json:"weight,omitempty"`
	Bias   []float64 `json:"bias,omitempty"`
	// Conv1D fields.
	InChannels  int `json:"in_channels,omitempty"`
	OutChannels int `json:"out_channels,omitempty"`
	Kernel      int `json:"kernel,omitempty"`
	Length      int `json:"length,omitempty"`
}

type networkJSON struct {
	Kind   string      `json:"kind"`
	Layers []layerJSON `json:"layers"`
}

// Save writes the network's architecture and weights.
func (n *Network) Save(w io.Writer) error {
	nj := networkJSON{Kind: "nn-network"}
	for i, l := range n.layers {
		var lj layerJSON
		switch v := l.(type) {
		case *Dense:
			lj = layerJSON{
				Kind: "dense", In: v.In, Out: v.Out,
				Weight: v.weight.W, Bias: v.bias.W,
			}
		case *Conv1D:
			lj = layerJSON{
				Kind:        "conv1d",
				InChannels:  v.InChannels,
				OutChannels: v.OutChannels,
				Kernel:      v.Kernel,
				Length:      v.Length,
				Weight:      v.weight.W,
				Bias:        v.bias.W,
			}
		case *ReLU:
			lj = layerJSON{Kind: "relu"}
		case *Sigmoid:
			lj = layerJSON{Kind: "sigmoid"}
		default:
			return fmt.Errorf("nn: cannot serialize layer %d (%T)", i, l)
		}
		nj.Layers = append(nj.Layers, lj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&nj)
}

// Load reads a network written by Save. The Adam state is not
// persisted; continued training restarts the optimizer moments.
func Load(r io.Reader) (*Network, error) {
	var nj networkJSON
	if err := json.NewDecoder(r).Decode(&nj); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if nj.Kind != "nn-network" {
		return nil, fmt.Errorf("nn: unexpected kind %q", nj.Kind)
	}
	if len(nj.Layers) == 0 {
		return nil, fmt.Errorf("nn: network has no layers")
	}
	net := &Network{}
	for i, lj := range nj.Layers {
		switch lj.Kind {
		case "dense":
			if lj.In <= 0 || lj.Out <= 0 ||
				len(lj.Weight) != lj.In*lj.Out || len(lj.Bias) != lj.Out {
				return nil, fmt.Errorf("nn: layer %d: inconsistent dense shape", i)
			}
			d := &Dense{In: lj.In, Out: lj.Out,
				weight: newParam(lj.In * lj.Out), bias: newParam(lj.Out)}
			copy(d.weight.W, lj.Weight)
			copy(d.bias.W, lj.Bias)
			net.layers = append(net.layers, d)
		case "conv1d":
			wantW := lj.InChannels * lj.OutChannels * lj.Kernel
			if lj.InChannels <= 0 || lj.OutChannels <= 0 || lj.Kernel <= 0 || lj.Length <= 0 ||
				len(lj.Weight) != wantW || len(lj.Bias) != lj.OutChannels {
				return nil, fmt.Errorf("nn: layer %d: inconsistent conv shape", i)
			}
			c := &Conv1D{
				InChannels: lj.InChannels, OutChannels: lj.OutChannels,
				Kernel: lj.Kernel, Length: lj.Length,
				weight: newParam(wantW), bias: newParam(lj.OutChannels),
			}
			copy(c.weight.W, lj.Weight)
			copy(c.bias.W, lj.Bias)
			net.layers = append(net.layers, c)
		case "relu":
			net.layers = append(net.layers, &ReLU{})
		case "sigmoid":
			net.layers = append(net.layers, &Sigmoid{})
		default:
			return nil, fmt.Errorf("nn: layer %d: unknown kind %q", i, lj.Kind)
		}
	}
	return net, nil
}
