package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, rng)
	copy(d.weight.W, []float64{2, -1})
	d.bias.W[0] = 0.5
	out := d.Forward([]float64{3, 4})
	if math.Abs(out[0]-(2*3-4+0.5)) > 1e-12 {
		t.Errorf("Forward = %v, want 2.5", out[0])
	}
}

func TestDenseBackwardGradCheck(t *testing.T) {
	// Numerical gradient check on a 3->2 dense layer.
	rng := rand.New(rand.NewSource(7))
	d := NewDense(3, 2, rng)
	x := []float64{0.5, -1.2, 2.0}
	loss := func() float64 {
		out := d.Forward(x)
		return out[0]*out[0] + 2*out[1]
	}
	base0 := d.Forward(x)
	grad := []float64{2 * base0[0], 2}
	clear(d.weight.G)
	clear(d.bias.G)
	gin := d.Backward(grad)

	const eps = 1e-6
	for i := range d.weight.W {
		orig := d.weight.W[i]
		d.weight.W[i] = orig + eps
		up := loss()
		d.weight.W[i] = orig - eps
		down := loss()
		d.weight.W[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-d.weight.G[i]) > 1e-4 {
			t.Errorf("weight grad %d: analytic %v numeric %v", i, d.weight.G[i], num)
		}
	}
	// Input gradient check.
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-gin[i]) > 1e-4 {
			t.Errorf("input grad %d: analytic %v numeric %v", i, gin[i], num)
		}
	}
}

func TestConv1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewConv1D(2, 3, 3, 5, rng)
	x := make([]float64, 2*5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		out := c.Forward(x)
		var s float64
		for _, v := range out {
			s += v * v
		}
		return s
	}
	out := c.Forward(x)
	grad := make([]float64, len(out))
	for i, v := range out {
		grad[i] = 2 * v
	}
	clear(c.weight.G)
	clear(c.bias.G)
	gin := c.Backward(grad)

	const eps = 1e-6
	for i := range c.weight.W {
		orig := c.weight.W[i]
		c.weight.W[i] = orig + eps
		up := loss()
		c.weight.W[i] = orig - eps
		down := loss()
		c.weight.W[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-c.weight.G[i]) > 1e-3 {
			t.Fatalf("conv weight grad %d: analytic %v numeric %v", i, c.weight.G[i], num)
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-gin[i]) > 1e-3 {
			t.Fatalf("conv input grad %d: analytic %v numeric %v", i, gin[i], num)
		}
	}
}

func TestReLU(t *testing.T) {
	var r ReLU
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Errorf("ReLU forward = %v", out)
	}
	gin := r.Backward([]float64{5, 5, 5})
	if gin[0] != 0 || gin[1] != 0 || gin[2] != 5 {
		t.Errorf("ReLU backward = %v", gin)
	}
	if r.Params() != nil {
		t.Error("ReLU has no params")
	}
}

func TestSigmoid(t *testing.T) {
	var s Sigmoid
	out := s.Forward([]float64{0, 100, -100})
	if math.Abs(out[0]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", out[0])
	}
	if out[1] < 0.999 || out[2] > 0.001 {
		t.Errorf("saturation wrong: %v", out)
	}
	gin := s.Backward([]float64{1, 1, 1})
	if math.Abs(gin[0]-0.25) > 1e-12 {
		t.Errorf("sigmoid'(0) = %v, want 0.25", gin[0])
	}
}

func TestNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork(3); err == nil {
		t.Error("empty network should fail")
	}
	if _, err := NewNetwork(3, NewDense(4, 2, rng)); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := NewNetwork(3, NewDense(3, 2, rng), NewDense(3, 1, rng)); err == nil {
		t.Error("inter-layer mismatch should fail")
	}
	if _, err := NewNetwork(6, NewConv1D(2, 4, 3, 3, rng), NewDense(12, 1, rng)); err != nil {
		t.Errorf("valid conv stack rejected: %v", err)
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	// y = 0.3a + 0.5b (targets within sigmoid range).
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, 0.3*a+0.5*b)
	}
	net, err := NewNetwork(2,
		NewDense(2, 16, rng), &ReLU{},
		NewDense(16, 1, rng), &Sigmoid{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Train(x, y, TrainConfig{Epochs: 200, BatchSize: 16, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, row := range x {
		sum += math.Abs(net.Predict(row) - y[i])
	}
	if mean := sum / float64(len(x)); mean > 0.03 {
		t.Errorf("mean training error %v, want < 0.03", mean)
	}
}

func TestTrainLearnsNonlinearXor(t *testing.T) {
	// Scaled XOR: unlearnable by a linear model, requires the hidden
	// layer to be doing real work.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0.1, 0.9, 0.9, 0.1}
	rng := rand.New(rand.NewSource(5))
	net, err := NewNetwork(2,
		NewDense(2, 8, rng), &ReLU{},
		NewDense(8, 1, rng), &Sigmoid{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Train(x, y, TrainConfig{Epochs: 2000, BatchSize: 4, LearningRate: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		if diff := math.Abs(net.Predict(row) - y[i]); diff > 0.15 {
			t.Errorf("xor(%v) = %v, want %v", row, net.Predict(row), y[i])
		}
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, _ := NewNetwork(1, NewDense(1, 1, rng))
	if err := net.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training should fail")
	}
	if err := net.Train([][]float64{{1}}, []float64{1, 2}, TrainConfig{}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestTrainDeterministic(t *testing.T) {
	build := func() float64 {
		rng := rand.New(rand.NewSource(3))
		var x [][]float64
		var y []float64
		for i := 0; i < 50; i++ {
			a := rng.Float64()
			x = append(x, []float64{a})
			y = append(y, 0.5*a)
		}
		net, err := NewNetwork(1, NewDense(1, 4, rng), &ReLU{}, NewDense(4, 1, rng), &Sigmoid{})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Train(x, y, TrainConfig{Epochs: 10, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return net.Predict([]float64{0.7})
	}
	if a, b := build(), build(); a != b {
		t.Errorf("training is not deterministic: %v vs %v", a, b)
	}
}

func TestOnEpochCallbackAndLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a := rng.Float64()
		x = append(x, []float64{a})
		y = append(y, 0.2+0.6*a)
	}
	net, _ := NewNetwork(1, NewDense(1, 8, rng), &ReLU{}, NewDense(8, 1, rng), &Sigmoid{})
	var losses []float64
	err := net.Train(x, y, TrainConfig{Epochs: 30, Seed: 4, OnEpoch: func(_ int, l float64) {
		losses = append(losses, l)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 30 {
		t.Fatalf("epochs seen = %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: first %v last %v", losses[0], losses[len(losses)-1])
	}
}

func TestPaperModelsBuild(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(int, int64) (*Network, error)
	}{
		{"PaperDNN", PaperDNN},
		{"PaperCNN", PaperCNN},
		{"CompactDNN", CompactDNN},
		{"CompactCNN", CompactCNN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := tc.build(13, 1)
			if err != nil {
				t.Fatal(err)
			}
			out := net.Forward(make([]float64, 13))
			if len(out) != 1 {
				t.Fatalf("output size = %d", len(out))
			}
			if out[0] <= 0 || out[0] >= 1 {
				t.Errorf("sigmoid output %v outside (0,1)", out[0])
			}
		})
	}
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	if !math.IsNaN(MSE(nil, nil)) {
		t.Error("empty MSE should be NaN")
	}
	if !math.IsNaN(MSE([]float64{1}, []float64{1, 2})) {
		t.Error("mismatched MSE should be NaN")
	}
}

func BenchmarkCompactCNNForward(b *testing.B) {
	net, err := CompactCNN(13, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 13)
	for i := range x {
		x[i] = float64(i) / 13
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkCompactDNNTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 256; i++ {
		row := make([]float64, 13)
		for j := range row {
			row[j] = rng.Float64()
		}
		x = append(x, row)
		y = append(y, rng.Float64())
	}
	net, err := CompactDNN(13, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Train(x, y, TrainConfig{Epochs: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
