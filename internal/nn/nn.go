// Package nn is a small, deterministic neural-network library covering
// exactly what the paper's §4.3–4.4 deep-learning experiments need:
// fully connected and 1-D convolutional layers, ReLU and sigmoid
// activations, mean-squared-error loss, and the Adam optimizer
// (learning rate 0.001, the paper's setting). Everything is stdlib-only;
// weight initialization and batch shuffling use an explicit seed so
// results reproduce exactly.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nvdclean/internal/parallel"
)

// gradChunk is the fixed number of samples per gradient-accumulation
// chunk inside a mini-batch. The batch gradient is defined as the
// chunk partial sums folded in chunk order, and the chunk layout
// depends only on this constant and the batch size — never on the
// worker count — so training is bit-identical at any concurrency.
const gradChunk = 8

// Param is a learnable tensor: a flat value slice and its gradient
// accumulator.
type Param struct {
	W []float64
	G []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// Layer is one differentiable stage of a network. Forward consumes the
// previous activation; Backward consumes dLoss/dOut and returns
// dLoss/dIn, accumulating parameter gradients.
type Layer interface {
	Forward(x []float64) []float64
	Backward(grad []float64) []float64
	Params() []*Param
	OutSize(inSize int) (int, error)
}

// replicable layers can produce worker replicas of themselves: copies
// that share the weight values (read-only during a batch) but own
// their activation scratch, and — when ownGrad — their gradient
// buffers. All built-in layers implement it; a network containing a
// foreign layer falls back to serial training.
type replicable interface {
	replicate(ownGrad bool) Layer
}

// replicateParam shares the weight slice and, when ownGrad, allocates a
// private gradient accumulator.
func replicateParam(p *Param, ownGrad bool) *Param {
	if !ownGrad {
		return p
	}
	return &Param{W: p.W, G: make([]float64, len(p.G))}
}

// Dense is a fully connected layer: out = W·x + b.
type Dense struct {
	In, Out int
	weight  *Param // Out x In, row-major
	bias    *Param
	lastIn  []float64
}

// NewDense creates a dense layer with Glorot-uniform initialization from
// rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, weight: newParam(in * out), bias: newParam(out)}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.weight.W {
		d.weight.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the affine map.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", len(x), d.In))
	}
	d.lastIn = x
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		w := d.weight.W[o*d.In : (o+1)*d.In]
		s := d.bias.W[o]
		for i, xv := range x {
			s += w[i] * xv
		}
		out[o] = s
	}
	return out
}

// Backward accumulates gradients and returns dLoss/dIn.
func (d *Dense) Backward(grad []float64) []float64 {
	in := d.lastIn
	gin := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		d.bias.G[o] += g
		w := d.weight.W[o*d.In : (o+1)*d.In]
		gw := d.weight.G[o*d.In : (o+1)*d.In]
		for i := range w {
			gw[i] += g * in[i]
			gin[i] += g * w[i]
		}
	}
	return gin
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// replicate implements replicable.
func (d *Dense) replicate(ownGrad bool) Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		weight: replicateParam(d.weight, ownGrad),
		bias:   replicateParam(d.bias, ownGrad),
	}
}

// OutSize validates the input size and returns Out.
func (d *Dense) OutSize(inSize int) (int, error) {
	if inSize != d.In {
		return 0, fmt.Errorf("nn: dense expects %d inputs, got %d", d.In, inSize)
	}
	return d.Out, nil
}

// ReLU is the rectified linear activation.
type ReLU struct {
	lastIn []float64
}

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastIn = x
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward gates the gradient by the sign of the forward input.
func (r *ReLU) Backward(grad []float64) []float64 {
	gin := make([]float64, len(grad))
	for i, g := range grad {
		if r.lastIn[i] > 0 {
			gin[i] = g
		}
	}
	return gin
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// replicate implements replicable.
func (r *ReLU) replicate(bool) Layer { return &ReLU{} }

// OutSize is the identity.
func (r *ReLU) OutSize(inSize int) (int, error) { return inSize, nil }

// Sigmoid is the logistic activation the paper uses on the output neuron.
type Sigmoid struct {
	lastOut []float64
}

// Forward applies 1/(1+e^-x) elementwise.
func (s *Sigmoid) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = out
	return out
}

// Backward multiplies by σ(x)(1-σ(x)).
func (s *Sigmoid) Backward(grad []float64) []float64 {
	gin := make([]float64, len(grad))
	for i, g := range grad {
		o := s.lastOut[i]
		gin[i] = g * o * (1 - o)
	}
	return gin
}

// Params returns nil: Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// replicate implements replicable.
func (s *Sigmoid) replicate(bool) Layer { return &Sigmoid{} }

// OutSize is the identity.
func (s *Sigmoid) OutSize(inSize int) (int, error) { return inSize, nil }

// Conv1D is a same-padded one-dimensional convolution over a
// channels-major signal (layout: x[c*Length+p]). It is the 1-D analogue
// of the paper's 3×3 2-D convolutions, appropriate because the CVSS
// feature vector is a sequence, not an image (see DESIGN.md).
type Conv1D struct {
	InChannels, OutChannels, Kernel, Length int

	weight *Param // [out][in][k]
	bias   *Param
	lastIn []float64
}

// NewConv1D creates a convolution layer with He-uniform initialization.
func NewConv1D(inCh, outCh, kernel, length int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		InChannels: inCh, OutChannels: outCh, Kernel: kernel, Length: length,
		weight: newParam(inCh * outCh * kernel),
		bias:   newParam(outCh),
	}
	limit := math.Sqrt(6 / float64(inCh*kernel))
	for i := range c.weight.W {
		c.weight.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return c
}

func (c *Conv1D) wAt(o, i, k int) int {
	return (o*c.InChannels+i)*c.Kernel + k
}

// Forward computes the same-padded convolution.
func (c *Conv1D) Forward(x []float64) []float64 {
	if len(x) != c.InChannels*c.Length {
		panic(fmt.Sprintf("nn: conv input %d, want %d", len(x), c.InChannels*c.Length))
	}
	c.lastIn = x
	out := make([]float64, c.OutChannels*c.Length)
	pad := c.Kernel / 2
	for o := 0; o < c.OutChannels; o++ {
		for p := 0; p < c.Length; p++ {
			s := c.bias.W[o]
			for i := 0; i < c.InChannels; i++ {
				in := x[i*c.Length : (i+1)*c.Length]
				for k := 0; k < c.Kernel; k++ {
					q := p + k - pad
					if q < 0 || q >= c.Length {
						continue
					}
					s += c.weight.W[c.wAt(o, i, k)] * in[q]
				}
			}
			out[o*c.Length+p] = s
		}
	}
	return out
}

// Backward accumulates kernel gradients and returns the input gradient.
func (c *Conv1D) Backward(grad []float64) []float64 {
	gin := make([]float64, c.InChannels*c.Length)
	pad := c.Kernel / 2
	for o := 0; o < c.OutChannels; o++ {
		gout := grad[o*c.Length : (o+1)*c.Length]
		for p := 0; p < c.Length; p++ {
			g := gout[p]
			if g == 0 {
				continue
			}
			c.bias.G[o] += g
			for i := 0; i < c.InChannels; i++ {
				in := c.lastIn[i*c.Length : (i+1)*c.Length]
				gi := gin[i*c.Length : (i+1)*c.Length]
				for k := 0; k < c.Kernel; k++ {
					q := p + k - pad
					if q < 0 || q >= c.Length {
						continue
					}
					idx := c.wAt(o, i, k)
					c.weight.G[idx] += g * in[q]
					gi[q] += g * c.weight.W[idx]
				}
			}
		}
	}
	return gin
}

// Params returns the kernel and bias tensors.
func (c *Conv1D) Params() []*Param { return []*Param{c.weight, c.bias} }

// replicate implements replicable.
func (c *Conv1D) replicate(ownGrad bool) Layer {
	return &Conv1D{
		InChannels: c.InChannels, OutChannels: c.OutChannels,
		Kernel: c.Kernel, Length: c.Length,
		weight: replicateParam(c.weight, ownGrad),
		bias:   replicateParam(c.bias, ownGrad),
	}
}

// OutSize validates the input layout and returns OutChannels*Length.
func (c *Conv1D) OutSize(inSize int) (int, error) {
	if inSize != c.InChannels*c.Length {
		return 0, fmt.Errorf("nn: conv expects %d inputs, got %d", c.InChannels*c.Length, inSize)
	}
	return c.OutChannels * c.Length, nil
}

// Network is a feedforward stack of layers trained with MSE + Adam.
type Network struct {
	layers []Layer
	adam   *adamState
}

// NewNetwork validates layer size compatibility given the input size.
func NewNetwork(inSize int, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	size := inSize
	for i, l := range layers {
		var err error
		size, err = l.OutSize(size)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return &Network{layers: layers}, nil
}

// Forward runs the network on one input.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Predict is Forward for a single scalar-output network.
func (n *Network) Predict(x []float64) float64 {
	return n.Forward(x)[0]
}

// backward propagates dLoss/dOut through the stack.
func (n *Network) backward(grad []float64) {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
}

func (n *Network) params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// canReplicate reports whether every layer supports worker replicas,
// without building any.
func (n *Network) canReplicate() bool {
	for _, l := range n.layers {
		if _, ok := l.(replicable); !ok {
			return false
		}
	}
	return true
}

// replica builds a copy of the network whose layers share this
// network's weights but own their activation scratch and, when
// ownGrad, their gradient buffers. Returns false if any layer is not
// replicable.
func (n *Network) replica(ownGrad bool) (*Network, bool) {
	ls := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		r, ok := l.(replicable)
		if !ok {
			return nil, false
		}
		ls[i] = r.replicate(ownGrad)
	}
	return &Network{layers: ls}, true
}

// InferenceReplica returns a read-only-weights copy of the network
// safe for Forward/Predict on another goroutine while other replicas
// (or the original) predict concurrently. Returns false when the
// network contains a layer the library cannot replicate; the caller
// must then serialize access instead.
func (n *Network) InferenceReplica() (*Network, bool) { return n.replica(false) }

// PredictBatch runs Predict over rows with up to workers goroutines
// (0 means GOMAXPROCS), using one inference replica per worker. Output
// slot i belongs to rows[i], so results are identical at any
// concurrency. Falls back to a serial loop when the network is not
// replicable.
func (n *Network) PredictBatch(rows [][]float64, workers int) []float64 {
	out := make([]float64, len(rows))
	if !n.canReplicate() {
		for i, r := range rows {
			out[i] = n.Predict(r)
		}
		return out
	}
	parallel.ForWith(workers, len(rows),
		func() *Network { r, _ := n.replica(false); return r },
		func(rep *Network, i int) { out[i] = rep.Predict(rows[i]) })
	return out
}

// TrainConfig controls SGD with Adam.
type TrainConfig struct {
	// Epochs is the number of passes over the data (paper: 100).
	Epochs int
	// BatchSize is the mini-batch size; gradients are averaged per batch.
	BatchSize int
	// LearningRate for Adam (paper: 0.001).
	LearningRate float64
	// Seed drives batch shuffling.
	Seed int64
	// Workers bounds the per-sample parallelism inside each mini-batch.
	// Zero means GOMAXPROCS. Gradients accumulate per fixed-size sample
	// chunk and fold in chunk order, so the trained weights are
	// bit-identical at any Workers setting.
	Workers int
	// OnEpoch, when set, receives the epoch index and mean training
	// loss, useful for logging and early-stop tests.
	OnEpoch func(epoch int, loss float64)
}

// Train fits the network on rows x with scalar targets y using the mean
// squared error loss (1/N)Σ(y-f(x))², the paper's objective.
//
// Within each mini-batch the per-sample forward/backward passes fan
// out across cfg.Workers goroutines: one gradient-owning replica per
// sample chunk, folded into the live parameters in chunk order before
// the Adam step. The chunk layout is a function of the batch size
// alone, which makes training deterministic across concurrency levels.
func (n *Network) Train(x [][]float64, y []float64, cfg TrainConfig) error {
	if len(x) == 0 {
		return errors.New("nn: no training rows")
	}
	if len(x) != len(y) {
		return fmt.Errorf("nn: %d rows but %d targets", len(x), len(y))
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 100
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	lr := cfg.LearningRate
	if lr <= 0 {
		lr = 0.001
	}
	params := n.params()
	if n.adam == nil {
		n.adam = newAdamState(params)
	}
	// One gradient-owning replica per sample chunk of a full batch.
	// Replica ci always serves chunk ci, so its buffers are exclusive
	// to one worker and the ordered fold below never depends on the
	// schedule. A network with a non-replicable layer trains serially.
	maxChunks := parallel.NumChunks(batch, gradChunk)
	reps := make([]*Network, 0, maxChunks)
	repParams := make([][]*Param, 0, maxChunks)
	chunkLoss := make([]float64, maxChunks)
	var batchG [][]float64 // fallback-path accumulator, chunk-folded
	if n.canReplicate() {
		for ci := 0; ci < maxChunks; ci++ {
			r, _ := n.replica(true)
			reps = append(reps, r)
			repParams = append(repParams, r.params())
		}
	} else {
		reps = nil
		batchG = make([][]float64, len(params))
		for pi, p := range params {
			batchG[pi] = make([]float64, len(p.G))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			bs := float64(end - start)
			for _, p := range params {
				clear(p.G)
			}
			if reps == nil {
				// Serial fallback for non-replicable layers: one chunk
				// at a time through the live network, folding each
				// chunk's gradients into the batch accumulator in
				// chunk order — the same grouping as the replica path,
				// so both paths train to identical weights.
				for pi := range batchG {
					clear(batchG[pi])
				}
				for cs := 0; cs < end-start; cs += gradChunk {
					ce := cs + gradChunk
					if ce > end-start {
						ce = end - start
					}
					for _, p := range params {
						clear(p.G)
					}
					var closs float64
					for _, i := range idx[start+cs : start+ce] {
						out := n.Forward(x[i])
						diff := out[0] - y[i]
						closs += diff * diff
						n.backward([]float64{2 * diff / bs})
					}
					epochLoss += closs
					for pi, p := range params {
						for j, g := range p.G {
							batchG[pi][j] += g
						}
					}
				}
				for pi, p := range params {
					copy(p.G, batchG[pi])
				}
				n.adam.step(params, lr)
				continue
			}
			span := end - start
			nchunks := parallel.NumChunks(span, gradChunk)
			parallel.ForRange(cfg.Workers, span, gradChunk, func(cs, ce int) {
				ci := cs / gradChunk
				rep := reps[ci]
				for _, p := range repParams[ci] {
					clear(p.G)
				}
				var loss float64
				for _, i := range idx[start+cs : start+ce] {
					out := rep.Forward(x[i])
					diff := out[0] - y[i]
					loss += diff * diff
					rep.backward([]float64{2 * diff / bs})
				}
				chunkLoss[ci] = loss
			})
			// Ordered fold: chunk partials land in ascending chunk
			// order, fixing the floating-point summation order.
			for ci := 0; ci < nchunks; ci++ {
				for pi, p := range params {
					for j, g := range repParams[ci][pi].G {
						p.G[j] += g
					}
				}
				epochLoss += chunkLoss[ci]
			}
			n.adam.step(params, lr)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, epochLoss/float64(len(x)))
		}
	}
	return nil
}

// adamState holds first/second moment estimates per parameter tensor.
type adamState struct {
	m, v [][]float64
	t    int
}

func newAdamState(params []*Param) *adamState {
	s := &adamState{}
	for _, p := range params {
		s.m = append(s.m, make([]float64, len(p.W)))
		s.v = append(s.v, make([]float64, len(p.W)))
	}
	return s
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (s *adamState) step(params []*Param, lr float64) {
	s.t++
	bc1 := 1 - math.Pow(adamBeta1, float64(s.t))
	bc2 := 1 - math.Pow(adamBeta2, float64(s.t))
	for pi, p := range params {
		m, v := s.m[pi], s.v[pi]
		for i, g := range p.G {
			m[i] = adamBeta1*m[i] + (1-adamBeta1)*g
			v[i] = adamBeta2*v[i] + (1-adamBeta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W[i] -= lr * mh / (math.Sqrt(vh) + adamEps)
		}
	}
}

// MSE computes the mean squared error of predictions against targets.
func MSE(pred, y []float64) float64 {
	if len(pred) != len(y) || len(y) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return s / float64(len(y))
}
