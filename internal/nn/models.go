package nn

import "math/rand"

// PaperDNN builds the paper's DNN: four fully connected layers of sizes
// 128, 128, 256, 256 with ReLU activations, followed by a single sigmoid
// output neuron (§4.3). Targets must be scaled to (0, 1).
func PaperDNN(inSize int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(inSize,
		NewDense(inSize, 128, rng), &ReLU{},
		NewDense(128, 128, rng), &ReLU{},
		NewDense(128, 256, rng), &ReLU{},
		NewDense(256, 256, rng), &ReLU{},
		NewDense(256, 1, rng), &Sigmoid{},
	)
}

// PaperCNN builds the paper's CNN adapted to 1-D input: four
// convolutional layers (64, 64, 128, 128 filters, kernel size 3) over
// the feature sequence, a flattening step (implicit in the vector
// layout), a 512-neuron fully connected layer, and a sigmoid output
// neuron (§4.3).
func PaperCNN(inSize int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(inSize,
		NewConv1D(1, 64, 3, inSize, rng), &ReLU{},
		NewConv1D(64, 64, 3, inSize, rng), &ReLU{},
		NewConv1D(64, 128, 3, inSize, rng), &ReLU{},
		NewConv1D(128, 128, 3, inSize, rng), &ReLU{},
		NewDense(128*inSize, 512, rng), &ReLU{},
		NewDense(512, 1, rng), &Sigmoid{},
	)
}

// CompactDNN is a narrower variant of PaperDNN (32, 32, 64, 64) for
// fast test and CI runs; same depth and activations.
func CompactDNN(inSize int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(inSize,
		NewDense(inSize, 32, rng), &ReLU{},
		NewDense(32, 32, rng), &ReLU{},
		NewDense(32, 64, rng), &ReLU{},
		NewDense(64, 64, rng), &ReLU{},
		NewDense(64, 1, rng), &Sigmoid{},
	)
}

// CompactCNN is a narrower variant of PaperCNN (8, 8, 16, 16 filters,
// 64-neuron head) for fast test and CI runs; same depth, kernel size,
// and activations.
func CompactCNN(inSize int, seed int64) (*Network, error) {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(inSize,
		NewConv1D(1, 8, 3, inSize, rng), &ReLU{},
		NewConv1D(8, 8, 3, inSize, rng), &ReLU{},
		NewConv1D(8, 16, 3, inSize, rng), &ReLU{},
		NewConv1D(16, 16, 3, inSize, rng), &ReLU{},
		NewDense(16*inSize, 64, rng), &ReLU{},
		NewDense(64, 1, rng), &Sigmoid{},
	)
}
