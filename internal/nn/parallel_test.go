package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainedPredictions fits a fresh network with the given worker count
// and returns its predictions over the training inputs.
func trainedPredictions(t *testing.T, build func() (*Network, error), x [][]float64, y []float64, workers int) []float64 {
	t.Helper()
	net, err := build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{Epochs: 12, BatchSize: 32, LearningRate: 0.005, Seed: 9, Workers: workers}
	if err := net.Train(x, y, cfg); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = net.Predict(row)
	}
	return out
}

// TestTrainWorkerInvariant is the §tentpole determinism guarantee:
// training at concurrency 1 and concurrency N yields bit-identical
// weights, for both dense and convolutional stacks.
func TestTrainWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim = 6
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x = append(x, row)
		y = append(y, 1/(1+math.Exp(-row[0]+0.5*row[1])))
	}
	builders := map[string]func() (*Network, error){
		"dnn": func() (*Network, error) { return CompactDNN(dim, 7) },
		"cnn": func() (*Network, error) { return CompactCNN(dim, 7) },
	}
	for name, build := range builders {
		base := trainedPredictions(t, build, x, y, 1)
		for _, w := range []int{2, 4, 8} {
			got := trainedPredictions(t, build, x, y, w)
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("%s workers=%d: prediction %d = %v, want %v (diff %g)",
						name, w, i, got[i], base[i], got[i]-base[i])
				}
			}
		}
	}
}

// TestTrainLossCallbackWorkerInvariant checks the reported epoch losses
// match bitwise across concurrency levels too.
func TestTrainLossCallbackWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 90; i++ {
		a := rng.Float64()
		x = append(x, []float64{a, a * a})
		y = append(y, 0.2+0.5*a)
	}
	losses := func(workers int) []float64 {
		net, err := CompactDNN(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		var ls []float64
		cfg := TrainConfig{
			Epochs: 6, BatchSize: 20, LearningRate: 0.01, Seed: 2, Workers: workers,
			OnEpoch: func(_ int, loss float64) { ls = append(ls, loss) },
		}
		if err := net.Train(x, y, cfg); err != nil {
			t.Fatal(err)
		}
		return ls
	}
	base := losses(1)
	for _, w := range []int{3, 8} {
		got := losses(w)
		for e := range got {
			if got[e] != base[e] {
				t.Fatalf("workers=%d epoch %d: loss %v != %v", w, e, got[e], base[e])
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	net, err := CompactCNN(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	batch := net.PredictBatch(rows, 4)
	for i, row := range rows {
		if one := net.Predict(row); batch[i] != one {
			t.Fatalf("row %d: batch %v != single %v", i, batch[i], one)
		}
	}
}

// opaqueLayer hides a Dense behind a type the library cannot
// replicate, forcing Train's serial fallback path.
type opaqueLayer struct{ d *Dense }

func (o opaqueLayer) Forward(x []float64) []float64  { return o.d.Forward(x) }
func (o opaqueLayer) Backward(g []float64) []float64 { return o.d.Backward(g) }
func (o opaqueLayer) Params() []*Param               { return o.d.Params() }
func (o opaqueLayer) OutSize(in int) (int, error)    { return o.d.OutSize(in) }

// TestFallbackPathMatchesReplicaPath pins the two Train code paths to
// the same numerics: a network with a non-replicable layer (serial
// fallback) must train to bitwise the same weights as an identical
// all-builtin network (chunked replica path).
func TestFallbackPathMatchesReplicaPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b, a * b})
		y = append(y, 1/(1+math.Exp(-a)))
	}
	build := func(opaque bool) *Network {
		r := rand.New(rand.NewSource(21))
		d1 := NewDense(3, 8, r)
		d2 := NewDense(8, 1, r)
		var l1 Layer = d1
		if opaque {
			l1 = opaqueLayer{d1}
		}
		net, err := NewNetwork(3, l1, &ReLU{}, d2, &Sigmoid{})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	cfg := TrainConfig{Epochs: 8, BatchSize: 20, LearningRate: 0.01, Seed: 5, Workers: 4}
	replicaNet, fallbackNet := build(false), build(true)
	if err := replicaNet.Train(x, y, cfg); err != nil {
		t.Fatal(err)
	}
	if err := fallbackNet.Train(x, y, cfg); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		a, b := replicaNet.Predict(row), fallbackNet.Predict(row)
		if a != b {
			t.Fatalf("row %d: replica path %v != fallback path %v (diff %g)", i, a, b, a-b)
		}
	}
}

func TestInferenceReplicaSharesWeights(t *testing.T) {
	net, err := CompactDNN(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := net.InferenceReplica()
	if !ok {
		t.Fatal("built-in network should be replicable")
	}
	row := []float64{0.1, -0.4, 0.9}
	if got, want := rep.Predict(row), net.Predict(row); got != want {
		t.Fatalf("replica predicts %v, original %v", got, want)
	}
}
