package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters only go up
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_events_total Events.\n# TYPE test_events_total counter\ntest_events_total 5\n",
		"# HELP test_depth Depth.\n# TYPE test_depth gauge\ntest_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("test_func_total", "Sampled.", func() float64 { return n })
	r.GaugeFunc("test_age_seconds", "Age.", func() float64 { return 1.5 })
	n++
	out := render(t, r)
	if !strings.Contains(out, "test_func_total 42\n") {
		t.Errorf("CounterFunc not sampled at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "test_age_seconds 1.5\n") {
		t.Errorf("GaugeFunc value missing:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	// Binary-exact observations so the rendered sum is exact.
	for _, v := range []float64{0.0078125, 0.0078125, 0.0625, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.578125; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 2`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_sum 5.578125",
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBoundary pins the le contract: an observation exactly on
// a bound lands in that bucket (le is <=).
func TestHistogramBoundary(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)
	h.Observe(2)
	buckets, count, _ := h.snapshot()
	if buckets[0] != 1 || buckets[1] != 2 || buckets[2] != 2 || count != 2 {
		t.Errorf("buckets = %v count = %d", buckets, count)
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	hv := r.HistogramVec("test_duration_seconds", "Duration.", []float64{0.1}, "route")
	cv.With("/cve/{id}", "200").Add(3)
	cv.With("/query", "400").Inc()
	if c := cv.With("/cve/{id}", "200"); c.Value() != 3 {
		t.Errorf("interned child not reused: %d", c.Value())
	}
	hv.With("/query").Observe(0.05)
	out := render(t, r)
	for _, want := range []string{
		`test_requests_total{route="/cve/{id}",code="200"} 3`,
		`test_requests_total{route="/query",code="400"} 1`,
		`test_duration_seconds_bucket{route="/query",le="0.1"} 1`,
		`test_duration_seconds_sum{route="/query"} 0.05`,
		`test_duration_seconds_count{route="/query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Children render sorted by label signature.
	if strings.Index(out, `route="/cve/{id}",code="200"`) > strings.Index(out, `route="/query",code="400"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestFamiliesSortedSingleHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "B.")
	r.Counter("test_a_total", "A.")
	out := render(t, r)
	if strings.Index(out, "test_a_total") > strings.Index(out, "test_b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Count(out, "# TYPE test_a_total") != 1 || strings.Count(out, "# HELP test_a_total") != 1 {
		t.Errorf("family headers not exactly once:\n%s", out)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_weird", "Help with \\ and\nnewline.", "l")
	v.With("quote\" back\\slash\nnl").Set(1)
	out := render(t, r)
	if !strings.Contains(out, `# HELP test_weird Help with \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_weird{l="quote\" back\\slash\nnl"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "First.")
	mustPanic("duplicate family", func() { r.Counter("test_dup_total", "Second.") })
	mustPanic("invalid name", func() { r.Counter("0bad", "Bad.") })
	mustPanic("invalid label", func() { r.CounterVec("test_ok_total", "OK.", "0bad") })
	mustPanic("non-increasing buckets", func() { r.Histogram("test_h", "H.", []float64{1, 1}) })
	mustPanic("wrong label arity", func() {
		v := r.CounterVec("test_arity_total", "A.", "a", "b")
		v.With("only-one")
	})
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 4, 5)
	want := []float64{1, 4, 16, 64, 256}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
}

// TestConcurrentObserve hammers one histogram, counter and vec from
// many goroutines while scraping — run under -race in CI; asserts the
// final totals and that every intermediate scrape parses sane.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "C.")
	h := r.Histogram("test_conc_seconds", "H.", LatencyBuckets)
	v := r.CounterVec("test_conc_vec_total", "V.", "worker")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With(string(rune('a' + w)))
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 1e-5)
				child.Inc()
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
			}
		}
	}()
	wg.Wait()
	close(stop)
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	buckets, count, _ := h.snapshot()
	if buckets[len(buckets)-1] != count {
		t.Errorf("+Inf bucket %d != count %d", buckets[len(buckets)-1], count)
	}
}
