package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricType is the TYPE line vocabulary of the exposition format.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named metric family: a help string, a type, and either
// a single unlabeled series or a vec of labeled children.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	// Exactly one of single / childSnap is used. childSnap reads the
	// owning vec's children under its lock, returning stable key order.
	single    any // sampler or *Histogram
	childSnap func() (keys []string, children []any)
}

// Registry collects families and renders them in the Prometheus text
// exposition format v0.0.4. Families are registered once (duplicate
// names panic — two owners of one time series is a programming error)
// and live for the process lifetime.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: typeCounter, single: c})
	return c
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the re-export path for counters that already exist as
// atomics elsewhere (fn must be monotone and safe for concurrent use).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeCounter, single: funcSampler{fn}})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: typeGauge, single: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, single: funcSampler{fn}})
}

// Histogram registers and returns a new histogram with the given
// bucket upper bounds (strictly increasing; +Inf implied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: typeHistogram, single: h})
	return h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{newVec(labels, func() *Counter { return &Counter{} })}
	r.register(&family{name: name, help: help, typ: typeCounter, labels: labels, childSnap: snapVec(v.vec)})
	return v
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(&family{name: name, help: help, typ: typeGauge, labels: labels, childSnap: snapVec(v.vec)})
	return v
}

// HistogramVec registers a labeled histogram family; children share
// the bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing: %v", buckets))
		}
	}
	bounds := append([]float64(nil), buckets...)
	v := &HistogramVec{newVec(labels, func() *Histogram { return newHistogram(bounds) })}
	r.register(&family{name: name, help: help, typ: typeHistogram, labels: labels, childSnap: snapVec(v.vec)})
	return v
}

// snapVec captures a vec's children in sorted key order for rendering.
func snapVec[T any](v *vec[T]) func() ([]string, []any) {
	return func() ([]string, []any) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = v.children[k]
		}
		v.mu.RUnlock()
		return keys, children
	}
}

// WritePrometheus renders every registered family in the text
// exposition format v0.0.4: families sorted by name, one HELP and one
// TYPE line each, labeled children sorted by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f *family) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.typ))
	w.WriteByte('\n')

	if f.single != nil {
		writeSeries(w, f, "", f.single)
		return
	}
	keys, children := f.childSnap()
	for i, key := range keys {
		writeSeries(w, f, key, children[i])
	}
}

// writeSeries renders one child (or the unlabeled single series). key
// is the labelSep-joined label values.
func writeSeries(w *bufio.Writer, f *family, key string, child any) {
	var values []string
	if len(f.labels) > 0 {
		values = strings.Split(key, labelSep)
	}
	switch c := child.(type) {
	case *Histogram:
		buckets, count, sum := c.snapshot()
		for i, b := range buckets {
			le := "+Inf"
			if i < len(c.upper) {
				le = formatFloat(c.upper[i])
			}
			writeName(w, f.name+"_bucket", f.labels, values, "le", le)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatUint(b, 10))
			w.WriteByte('\n')
		}
		writeName(w, f.name+"_sum", f.labels, values, "", "")
		w.WriteByte(' ')
		w.WriteString(formatFloat(sum))
		w.WriteByte('\n')
		writeName(w, f.name+"_count", f.labels, values, "", "")
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(count, 10))
		w.WriteByte('\n')
	case sampler:
		writeName(w, f.name, f.labels, values, "", "")
		w.WriteByte(' ')
		w.WriteString(formatFloat(c.sample()))
		w.WriteByte('\n')
	default:
		panic(fmt.Sprintf("obs: unrenderable child %T in family %q", child, f.name))
	}
}

// writeName renders `name{l1="v1",...}` with an optional extra label
// (the histogram `le`).
func writeName(w *bufio.Writer, name string, labels, values []string, extraK, extraV string) {
	w.WriteString(name)
	if len(labels) == 0 && extraK == "" {
		return
	}
	w.WriteByte('{')
	sep := false
	for i, l := range labels {
		if sep {
			w.WriteByte(',')
		}
		sep = true
		w.WriteString(l)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraK != "" {
		if sep {
			w.WriteByte(',')
		}
		w.WriteString(extraK)
		w.WriteString(`="`)
		w.WriteString(extraV)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a sample value: integral values without a
// decimal point (the common case for counters), +Inf/-Inf/NaN per the
// exposition grammar, everything else in Go's shortest 'g' form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ContentType is the exposition format content type of WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP makes the registry a scrape endpoint handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	_ = r.WritePrometheus(w)
}
