// Package obs is nvdclean's dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms collected in a Registry
// that renders the Prometheus text exposition format (v0.0.4).
//
// The package exists so the serving daemon can expose a scrape-able
// time-series surface without importing a metrics client library. The
// design mirrors the slice of the Prometheus data model the daemon
// needs and nothing more:
//
//   - Counter / Gauge: a single atomic int64. Counters only go up;
//     gauges move both ways. CounterFunc / GaugeFunc variants sample a
//     closure at scrape time, which is how pre-existing atomics (the
//     respcache.Metrics counters, store accessors) are re-exported
//     without duplicating their state.
//   - Histogram: fixed upper-bound buckets chosen at construction,
//     one atomic count per bucket plus an atomic float64 sum (CAS
//     loop). Observe is lock-free and allocation-free.
//   - Vecs: label-parameterized families. With(...) interns the child
//     under its label values; callers on hot paths cache the returned
//     child so the steady state is pure atomic arithmetic.
//
// Every instrument is registered in a Registry keyed by family name;
// WritePrometheus renders families sorted by name, each with exactly
// one HELP/TYPE header, children sorted by label signature — the
// deterministic output the scrape-format tests parse.
//
// Swap-safety contract: instruments hold no reference to any serving
// generation. The daemon's generation swaps replace a state pointer;
// the registry and every counter/histogram live beside — not inside —
// that pointer, so a swap can never reset a time series (the same
// ownership split respcache.Metrics already uses for /stats).
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; negative n is a programming error
// and is dropped (a counter that goes down poisons rate() queries).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed cumulative buckets and
// tracks their sum. Buckets are upper bounds in increasing order; an
// implicit +Inf bucket catches everything past the last bound.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative); cumulated at render
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d: %v", i, buckets))
		}
	}
	u := make([]float64, len(buckets))
	copy(u, buckets)
	return &Histogram{upper: u, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value. Lock-free: one bucket increment and one
// CAS loop folding v into the float sum. There is no separate total
// counter — the count is the sum of the buckets, computed at read time,
// which keeps the hot path one contended atomic shorter and makes
// `+Inf == _count` hold by construction.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists here are ≤ ~24 entries and latency
	// observations concentrate in the first few, so a branchy binary
	// search buys nothing.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with upper (+Inf
// last), plus count and sum. Buckets are cumulated under increasing
// reads so the rendered series is monotone even mid-Observe.
func (h *Histogram) snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		buckets[i] = cum
	}
	return buckets, cum, h.Sum()
}

// LatencyBuckets spans 1µs to 10s — wide enough for cached in-memory
// reads (single-digit µs) and cold pipeline swaps (seconds) alike.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous — the usual shape for byte and entry-count
// distributions.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// sampler is one renderable time series (or histogram series group).
type sampler interface {
	// sample returns the instantaneous scalar for counters/gauges;
	// histograms render through the type switch in writeFamily.
	sample() float64
}

func (c *Counter) sample() float64 { return float64(c.v.Load()) }
func (g *Gauge) sample() float64   { return float64(g.v.Load()) }

// funcSampler samples a closure at scrape time.
type funcSampler struct {
	fn func() float64
}

func (f funcSampler) sample() float64 { return f.fn() }

// labelSep joins label values into a child key; it cannot occur in a
// (sane) label value, so joined keys never collide.
const labelSep = "\x1f"

// vec is the shared child-interning machinery of the *Vec types.
type vec[T any] struct {
	mu       sync.RWMutex
	children map[string]*T
	make     func() *T
	labels   []string
}

func newVec[T any](labels []string, mk func() *T) *vec[T] {
	return &vec[T]{children: make(map[string]*T), make: mk, labels: labels}
}

func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec wants %d label values (%v), got %d", len(v.labels), v.labels, len(values)))
	}
	key := joinLabels(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = v.make()
	v.children[key] = c
	return c
}

func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, s := range values {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, s...)
	}
	return string(b)
}

// CounterVec is a counter family parameterized by labels.
type CounterVec struct {
	*vec[Counter]
}

// With returns (interning on first use) the child for the given label
// values. Hot paths should cache the child: With costs a read-lock and
// a map lookup, the child itself is one atomic.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// GaugeVec is a gauge family parameterized by labels.
type GaugeVec struct {
	*vec[Gauge]
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// HistogramVec is a histogram family parameterized by labels; every
// child shares the family's bucket bounds.
type HistogramVec struct {
	*vec[Histogram]
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }
