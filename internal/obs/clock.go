package obs

import (
	_ "unsafe" // for go:linkname
)

// Nanotime returns the runtime's monotonic clock in nanoseconds.
//
// time.Now reads both the wall and monotonic clocks and packs them
// into a struct; on the virtualized hosts this daemon targets that is
// ~65ns per call, which a per-request latency measurement pays twice.
// Request instrumentation only ever subtracts two readings, so the
// wall half is pure waste. runtime.nanotime is the monotonic half
// alone (~40ns here) and is the same clock the runtime timestamps its
// own events with; the linkname is long-stable and grandfathered by
// the linker's checklinkname list.
//
//go:linkname Nanotime runtime.nanotime
func Nanotime() int64
