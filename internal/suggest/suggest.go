// Package suggest implements the reporter-assistance application of the
// paper's §6: "The individual reporters can enter the vendor and
// product name according to their perception, and the tool will suggest
// the suitable vendor and product name from the generated consistent
// database. ... One path forward would be to require vulnerability
// reporters to check their name submissions against a tool or online
// interface that searches existing names that likely match, perhaps
// using an approach such as our identification method."
//
// An Advisor indexes the consistent name database produced by the
// cleaning pipeline and ranks candidate canonical names for a query
// using the same §4.2 signals: known-alias lookup, token identity,
// abbreviation expansion, prefix relation, edit distance, and
// longest-common-substring overlap.
package suggest

import (
	"sort"
	"strings"

	"nvdclean/internal/cve"
	"nvdclean/internal/naming"
	"nvdclean/internal/textnorm"
)

// Suggestion is one ranked candidate name.
type Suggestion struct {
	// Name is the canonical (consistent) name.
	Name string
	// Score in (0, 1]; higher is a stronger match.
	Score float64
	// Reason names the matching signal ("exact", "known-alias",
	// "tokens", "abbreviation", "prefix", "edit-distance", "substring").
	Reason string
	// CVEs is the number of CVEs associated with the name, the
	// tie-breaker (more established names rank first).
	CVEs int
}

// Advisor serves name suggestions from a cleaned snapshot.
type Advisor struct {
	// vendor index
	vendorCVEs   map[string]int
	vendorNames  []string
	vendorTokens map[string][]string // canonical token string -> names
	vendorAbbrev map[string][]string // abbreviation -> multi-token names
	vendorAlias  map[string]string   // known inconsistent spelling -> canonical

	// product index, keyed by vendor
	products     map[string]map[string]int // vendor -> product -> CVE count
	productAlias map[[2]string]string
}

// NewAdvisor indexes a cleaned snapshot. vendorMap and productMap are
// the consolidation maps from the pipeline; they teach the advisor the
// known inconsistent spellings (nil maps are allowed).
func NewAdvisor(snap *cve.Snapshot, vendorMap *naming.Map, productMap *naming.ProductMap) *Advisor {
	a := &Advisor{
		vendorCVEs:   snap.VendorCVECount(),
		vendorTokens: make(map[string][]string),
		vendorAbbrev: make(map[string][]string),
		vendorAlias:  make(map[string]string),
		products:     make(map[string]map[string]int),
		productAlias: make(map[[2]string]string),
	}
	for _, e := range snap.Entries {
		seen := make(map[[2]string]bool, len(e.CPEs))
		for _, n := range e.CPEs {
			k := [2]string{n.Vendor, n.Product}
			if seen[k] {
				continue
			}
			seen[k] = true
			m := a.products[n.Vendor]
			if m == nil {
				m = make(map[string]int)
				a.products[n.Vendor] = m
			}
			m[n.Product]++
		}
	}
	a.vendorNames = make([]string, 0, len(a.vendorCVEs))
	for name := range a.vendorCVEs {
		a.vendorNames = append(a.vendorNames, name)
		tok := textnorm.CanonicalTokens(name)
		a.vendorTokens[tok] = append(a.vendorTokens[tok], name)
		if ab := textnorm.Abbreviation(name); ab != "" {
			a.vendorAbbrev[ab] = append(a.vendorAbbrev[ab], name)
		}
	}
	sort.Strings(a.vendorNames)
	// Known aliases: everything the consolidation maps rewrite.
	if vendorMap != nil {
		a.vendorAlias = vendorMap.Entries()
	}
	if productMap != nil {
		a.productAlias = productMap.Entries()
	}
	return a
}

// SuggestVendor ranks up to k canonical vendor names for the query.
func (a *Advisor) SuggestVendor(query string, k int) []Suggestion {
	query = strings.ToLower(strings.TrimSpace(query))
	if query == "" {
		return nil
	}
	best := make(map[string]Suggestion)
	consider := func(name string, score float64, reason string) {
		cur, ok := best[name]
		if ok && cur.Score >= score {
			return
		}
		best[name] = Suggestion{Name: name, Score: score, Reason: reason, CVEs: a.vendorCVEs[name]}
	}

	// Exact and known-alias hits.
	if _, ok := a.vendorCVEs[query]; ok {
		consider(query, 1.0, "exact")
	}
	if canonical, ok := a.vendorAlias[query]; ok {
		consider(canonical, 0.95, "known-alias")
	}
	// Token identity: avast! ~ avast, bea systems ~ bea_systems.
	for _, name := range a.vendorTokens[textnorm.CanonicalTokens(query)] {
		if name != query {
			consider(name, 0.90, "tokens")
		}
	}
	// Abbreviation in both directions: query "lms" expands; query
	// "lan management system" abbreviates.
	for _, name := range a.vendorAbbrev[query] {
		consider(name, 0.85, "abbreviation")
	}
	if ab := textnorm.Abbreviation(query); ab != "" {
		if _, ok := a.vendorCVEs[ab]; ok {
			consider(ab, 0.85, "abbreviation")
		}
	}
	// Scan with cheap rejects for prefix / edit distance / substring.
	for _, name := range a.vendorNames {
		if name == query {
			continue
		}
		switch {
		case textnorm.IsPrefix(query, name):
			consider(name, 0.80, "prefix")
		case textnorm.WithinEditDistance(query, name, 1):
			consider(name, 0.75, "edit-distance")
		case textnorm.WithinEditDistance(query, name, 2) && len(query) >= 6:
			consider(name, 0.60, "edit-distance")
		default:
			if len(query) >= 4 {
				lcs := textnorm.LongestCommonSubstring(query, name)
				shorter := len(query)
				if len(name) < shorter {
					shorter = len(name)
				}
				if ratio := float64(lcs) / float64(shorter); ratio >= 0.75 {
					consider(name, 0.5*ratio, "substring")
				}
			}
		}
	}
	return rankSuggestions(best, k)
}

// SuggestProduct ranks up to k canonical product names under a vendor.
// The vendor itself is resolved through the vendor suggestions first,
// so a reporter can type an inconsistent vendor name too.
func (a *Advisor) SuggestProduct(vendor, query string, k int) []Suggestion {
	vendor = strings.ToLower(strings.TrimSpace(vendor))
	query = strings.ToLower(strings.TrimSpace(query))
	if query == "" {
		return nil
	}
	catalog := a.products[vendor]
	if catalog == nil {
		// Resolve the vendor through its own suggestions.
		if vs := a.SuggestVendor(vendor, 1); len(vs) > 0 {
			catalog = a.products[vs[0].Name]
			vendor = vs[0].Name
		}
	}
	if catalog == nil {
		return nil
	}
	best := make(map[string]Suggestion)
	consider := func(name string, score float64, reason string) {
		cur, ok := best[name]
		if ok && cur.Score >= score {
			return
		}
		best[name] = Suggestion{Name: name, Score: score, Reason: reason, CVEs: catalog[name]}
	}
	if _, ok := catalog[query]; ok {
		consider(query, 1.0, "exact")
	}
	if canonical, ok := a.productAlias[[2]string{vendor, query}]; ok {
		consider(canonical, 0.95, "known-alias")
	}
	qTokens := textnorm.CanonicalTokens(query)
	qAbbrev := textnorm.Abbreviation(query)
	for name := range catalog {
		if name == query {
			continue
		}
		switch {
		case textnorm.CanonicalTokens(name) == qTokens:
			consider(name, 0.90, "tokens")
		case textnorm.Abbreviation(name) == query, qAbbrev != "" && qAbbrev == name:
			consider(name, 0.85, "abbreviation")
		case textnorm.IsPrefix(query, name):
			consider(name, 0.80, "prefix")
		case textnorm.WithinEditDistance(query, name, 1):
			consider(name, 0.75, "edit-distance")
		default:
			if len(query) >= 4 {
				lcs := textnorm.LongestCommonSubstring(query, name)
				shorter := len(query)
				if len(name) < shorter {
					shorter = len(name)
				}
				if ratio := float64(lcs) / float64(shorter); ratio >= 0.75 {
					consider(name, 0.5*ratio, "substring")
				}
			}
		}
	}
	return rankSuggestions(best, k)
}

func rankSuggestions(best map[string]Suggestion, k int) []Suggestion {
	out := make([]Suggestion, 0, len(best))
	for _, s := range best {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].CVEs != out[j].CVEs {
			return out[i].CVEs > out[j].CVEs
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
