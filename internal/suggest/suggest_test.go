package suggest

import (
	"testing"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
)

func buildAdvisor(t testing.TB) *Advisor {
	t.Helper()
	rows := []struct {
		vendor, product string
		count           int
	}{
		{"microsoft", "internet_explorer", 30},
		{"microsoft", "windows", 25},
		{"oracle", "database_server", 40},
		{"bea", "weblogic_server", 17},
		{"avast", "antivirus", 8},
		{"lan_management_system", "lms_console", 5},
		{"lynx", "lynx_browser", 6},
		{"schneider_electric", "scada_gateway", 9},
	}
	snap := &cve.Snapshot{}
	seq := 1
	for _, r := range rows {
		for i := 0; i < r.count; i++ {
			snap.Entries = append(snap.Entries, &cve.Entry{
				ID:   cve.FormatID(2012, seq),
				CPEs: []cpe.Name{cpe.NewName(cpe.PartApplication, r.vendor, r.product, "1.0")},
			})
			seq++
		}
	}
	vendorMap := naming.NewMap(map[string]string{
		"microsft":    "microsoft",
		"bea_systems": "bea",
	})
	return NewAdvisor(snap, vendorMap, nil)
}

func TestSuggestVendorExact(t *testing.T) {
	a := buildAdvisor(t)
	s := a.SuggestVendor("microsoft", 3)
	if len(s) == 0 || s[0].Name != "microsoft" || s[0].Reason != "exact" || s[0].Score != 1.0 {
		t.Errorf("exact lookup = %+v", s)
	}
}

func TestSuggestVendorKnownAlias(t *testing.T) {
	a := buildAdvisor(t)
	s := a.SuggestVendor("microsft", 3)
	if len(s) == 0 || s[0].Name != "microsoft" {
		t.Fatalf("alias lookup = %+v", s)
	}
	// known-alias and edit-distance both fire; the stronger signal must
	// win.
	if s[0].Reason != "known-alias" {
		t.Errorf("reason = %s, want known-alias", s[0].Reason)
	}
}

func TestSuggestVendorPatterns(t *testing.T) {
	a := buildAdvisor(t)
	tests := []struct {
		query  string
		want   string
		reason string
	}{
		{"avast!", "avast", "tokens"},
		{"lms", "lan_management_system", "abbreviation"},
		{"lynx_project", "lynx", "prefix"},
		{"oracel", "oracle", "edit-distance"},
		{"schneider electric", "schneider_electric", "tokens"},
	}
	for _, tt := range tests {
		s := a.SuggestVendor(tt.query, 3)
		if len(s) == 0 {
			t.Errorf("SuggestVendor(%q) empty", tt.query)
			continue
		}
		if s[0].Name != tt.want {
			t.Errorf("SuggestVendor(%q)[0] = %s (%s), want %s", tt.query, s[0].Name, s[0].Reason, tt.want)
			continue
		}
		if s[0].Reason != tt.reason {
			t.Errorf("SuggestVendor(%q) reason = %s, want %s", tt.query, s[0].Reason, tt.reason)
		}
	}
}

func TestSuggestVendorEmptyAndUnknown(t *testing.T) {
	a := buildAdvisor(t)
	if s := a.SuggestVendor("", 5); s != nil {
		t.Errorf("empty query = %v", s)
	}
	if s := a.SuggestVendor("zzzzqqqq", 5); len(s) != 0 {
		t.Errorf("unmatchable query = %v", s)
	}
}

func TestSuggestVendorRankingByCVEs(t *testing.T) {
	// "windows" as a vendor query: no exact vendor; oracle/microsoft
	// unrelated. Crafted: two names equidistant — higher CVE count
	// first.
	snap := &cve.Snapshot{}
	seq := 1
	for _, r := range []struct {
		vendor string
		count  int
	}{{"acmesoft", 20}, {"acmesort", 2}} {
		for i := 0; i < r.count; i++ {
			snap.Entries = append(snap.Entries, &cve.Entry{
				ID:   cve.FormatID(2012, seq),
				CPEs: []cpe.Name{cpe.NewName(cpe.PartApplication, r.vendor, "p", "1")},
			})
			seq++
		}
	}
	a := NewAdvisor(snap, nil, nil)
	s := a.SuggestVendor("acmesoft", 2)
	if len(s) < 2 {
		t.Fatalf("suggestions = %v", s)
	}
	if s[0].Name != "acmesoft" || s[1].Name != "acmesort" {
		t.Errorf("ranking = %v", s)
	}
}

func TestSuggestProduct(t *testing.T) {
	a := buildAdvisor(t)
	tests := []struct {
		vendor, query, want string
	}{
		{"microsoft", "internet-explorer", "internet_explorer"},
		{"microsoft", "ie", "internet_explorer"},
		{"microsoft", "internet_explorer", "internet_explorer"},
		{"bea", "weblogic", "weblogic_server"},
	}
	for _, tt := range tests {
		s := a.SuggestProduct(tt.vendor, tt.query, 3)
		if len(s) == 0 || s[0].Name != tt.want {
			t.Errorf("SuggestProduct(%q, %q) = %v, want %s", tt.vendor, tt.query, s, tt.want)
		}
	}
}

func TestSuggestProductThroughVendorAlias(t *testing.T) {
	// Reporter types the inconsistent vendor "microsft": the advisor
	// resolves it and still suggests microsoft's products.
	a := buildAdvisor(t)
	s := a.SuggestProduct("microsft", "internet explorer", 3)
	if len(s) == 0 || s[0].Name != "internet_explorer" {
		t.Errorf("aliased vendor product lookup = %v", s)
	}
}

func TestSuggestProductUnknownVendor(t *testing.T) {
	a := buildAdvisor(t)
	if s := a.SuggestProduct("nonexistent_vendor_xyz", "prod", 3); len(s) != 0 {
		t.Errorf("unknown vendor = %v", s)
	}
	if s := a.SuggestProduct("microsoft", "", 3); s != nil {
		t.Errorf("empty product query = %v", s)
	}
}

func TestAdvisorOnGeneratedSnapshot(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	va := naming.AnalyzeVendors(snap)
	vm := va.Consolidate(naming.HeuristicJudge{})
	clean := snap.Clone()
	vm.Apply(clean)
	a := NewAdvisor(clean, vm, nil)

	// Querying any injected alias must lead to its canonical vendor in
	// the top suggestions (when the canonical name survived cleaning).
	vendors := make(map[string]bool)
	for _, e := range clean.Entries {
		for _, v := range e.Vendors() {
			vendors[v] = true
		}
	}
	var queried, hit int
	for alias, canonical := range truth.VendorCanonical {
		if !vendors[canonical] {
			continue
		}
		s := a.SuggestVendor(alias, 3)
		if len(s) == 0 {
			continue
		}
		queried++
		for _, cand := range s {
			if cand.Name == canonical {
				hit++
				break
			}
		}
	}
	if queried == 0 {
		t.Fatal("no alias queries produced suggestions")
	}
	if rate := float64(hit) / float64(queried); rate < 0.8 {
		t.Errorf("alias→canonical suggestion rate = %.2f (%d/%d), want ≥ 0.8", rate, hit, queried)
	}
}

func BenchmarkSuggestVendor(b *testing.B) {
	snap, _, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := NewAdvisor(snap, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SuggestVendor("microsft", 5)
	}
}
