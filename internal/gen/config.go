// Package gen synthesizes NVD snapshots with the same schema, scale and
// — crucially — the same *defects* the paper measures: publication-date
// lag with a New-Year's-Eve backfill artifact (§4.1, §5.1), inconsistent
// vendor and product names with known alias ground truth (§4.2), CVSS v3
// labels present only on recent entries with a non-linear v2→v3
// relationship (§4.3), and missing/meta CWE types whose true value often
// hides in an evaluator description (§4.4).
//
// Every run is a pure function of the Config, so experiments reproduce
// exactly. The generator also emits a Truth record — the injected ground
// truth — which the test suite uses to score the cleaning pipeline, a
// luxury the paper's authors replaced with manual vetting.
package gen

import "time"

// Config controls the synthetic snapshot. The zero value is not valid;
// start from DefaultConfig or SmallConfig.
type Config struct {
	// Seed drives all randomness.
	Seed int64

	// NumCVEs is the total entry count. The paper's snapshot has 107.2K.
	NumCVEs int

	// NumVendors is the approximate number of *distinct true* vendors
	// before alias injection. The paper observes ≈19K names of which
	// ≈10% are impacted by inconsistency.
	NumVendors int

	// MaxProductsPerVendor caps the product catalog of the long-tail
	// vendors (head vendors get more via their weight).
	MaxProductsPerVendor int

	// FirstYear and LastYear bound the CVE identifier years.
	FirstYear, LastYear int

	// CaptureDate is the snapshot timestamp (paper: 2018-05-21).
	CaptureDate time.Time

	// V3StartYear is the first year whose entries all carry v3 labels;
	// earlier years have only sporadic retroactive v3 labels (§5.2:
	// "all CVEs since 2017 are assigned v3 scores ... before 2013, no
	// more than 35 CVEs each year").
	V3StartYear int

	// VendorAliasRate is the fraction of vendors that receive at least
	// one inconsistent alias (paper: ≈10% of names impacted).
	VendorAliasRate float64

	// ProductAliasRate is the fraction of products that receive an
	// inconsistent alias (paper: ≈6% of product names impacted).
	ProductAliasRate float64

	// UntypedOtherRate, UntypedNoInfoRate and UnassignedRate control the
	// CWE-field quality mix (paper: 24.5% NVD-CWE-Other, 7.1%
	// NVD-CWE-noinfo, 1.2% absent ≈ 31% untyped).
	UntypedOtherRate, UntypedNoInfoRate, UnassignedRate float64

	// EvaluatorHintRate is the probability that an untyped (Other) CVE's
	// evaluator comment names the true CWE (paper: §4.4 recovers 1,732
	// of 26,312 Other entries ≈ 6.6%).
	EvaluatorHintRate float64

	// TypedHintRate is the probability that an already-typed CVE also
	// cites a CWE in its description (the paper's 2,456 total corrections
	// include typed CVEs gaining additional labels).
	TypedHintRate float64
}

// DefaultConfig reproduces the paper's scale: 107.2K CVEs, ≈19K vendors,
// 1998–2018 with a small retroactive tail back to 1988.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		NumCVEs:              107200,
		NumVendors:           17000,
		MaxProductsPerVendor: 4,
		FirstYear:            1988,
		LastYear:             2018,
		CaptureDate:          time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC),
		V3StartYear:          2016,
		VendorAliasRate:      0.10,
		ProductAliasRate:     0.06,
		UntypedOtherRate:     0.245,
		UntypedNoInfoRate:    0.071,
		UnassignedRate:       0.012,
		EvaluatorHintRate:    0.066,
		TypedHintRate:        0.01,
	}
}

// SmallConfig is a proportionally scaled snapshot for tests and quick
// examples (3,000 CVEs, ~600 vendors). All rates match DefaultConfig so
// the shape of every experiment is preserved.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumCVEs = 3000
	c.NumVendors = 600
	return c
}

// TinyConfig is the minimum useful snapshot (400 CVEs) for unit tests
// that only need structural variety.
func TinyConfig() Config {
	c := DefaultConfig()
	c.NumCVEs = 400
	c.NumVendors = 120
	return c
}
