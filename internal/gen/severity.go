package gen

import (
	"math/rand"
	"sort"

	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// impactPattern is one (C, I, A) combination with a sampling weight.
type impactPattern struct {
	c, i, a cvss.ImpactV2
	w       float64
}

// cweProfile describes how vulnerabilities of one weakness type tend to
// score: their v2 metric distribution and how v3 reassesses them. The
// per-type structure is what makes CWE-ID an informative feature for the
// v2→v3 prediction model (§4.3 cites Holm & Afridi for adding it).
type cweProfile struct {
	// family keys the description-template pool.
	family string
	// weight is the relative frequency of the type in the NVD.
	weight float64
	// avNetwork is the probability of AV:N (else mostly local).
	avNetwork float64
	// acLow, acMedium are v2 access-complexity probabilities (rest is
	// High).
	acLow, acMedium float64
	// authNone is the probability of Au:N (else Single).
	authNone float64
	// impacts are the (C, I, A) patterns.
	impacts []impactPattern
	// uiRequired is the probability v3 marks user interaction required.
	uiRequired float64
	// scopeChanged is the probability v3 marks the scope changed.
	scopeChanged float64
	// pUp is the probability a v2 Partial impact is reassessed as v3
	// High (the main driver of the upward severity skew of Table 9).
	pUp float64
}

var defaultProfile = cweProfile{
	family: "generic", weight: 0.002,
	avNetwork: 0.70, acLow: 0.55, acMedium: 0.35, authNone: 0.90,
	impacts: []impactPattern{
		{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.4},
		{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.2},
		{cvss.ImpactNone, cvss.ImpactPartial, cvss.ImpactNone, 0.1},
		{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.1},
		{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.2},
	},
	uiRequired: 0.10, scopeChanged: 0.10, pUp: 0.80,
}

// cweProfiles covers the high-volume weakness types of Table 10;
// everything else in the catalog uses defaultProfile with a small Zipf
// weight assigned in buildCWETable.
var cweProfiles = map[cwe.ID]cweProfile{
	119: { // buffer overflow: the v2 High heavyweight
		family: "overflow", weight: 0.115,
		avNetwork: 0.80, acLow: 0.50, acMedium: 0.38, authNone: 0.95,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.45},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.35},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.20},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.90,
	},
	79: { // XSS: medium-band web issue, scope-changing in v3
		family: "xss", weight: 0.09,
		avNetwork: 1.0, acLow: 0.10, acMedium: 0.85, authNone: 0.90,
		impacts: []impactPattern{
			{cvss.ImpactNone, cvss.ImpactPartial, cvss.ImpactNone, 0.85},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.15},
		},
		uiRequired: 0.90, scopeChanged: 0.85, pUp: 0.05,
	},
	89: { // SQL injection: v3's critical leader (§5.3)
		family: "sqli", weight: 0.075,
		avNetwork: 1.0, acLow: 0.68, acMedium: 0.22, authNone: 0.75,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.90},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.10},
		},
		uiRequired: 0.05, scopeChanged: 0.10, pUp: 0.95,
	},
	20: { // input validation
		family: "input", weight: 0.060,
		avNetwork: 0.85, acLow: 0.60, acMedium: 0.30, authNone: 0.90,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.45},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.30},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.15},
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.10},
		},
		uiRequired: 0.10, scopeChanged: 0.08, pUp: 0.80,
	},
	264: { // permissions & privileges
		family: "priv", weight: 0.055,
		avNetwork: 0.55, acLow: 0.65, acMedium: 0.25, authNone: 0.70,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.40},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.30},
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.20},
			{cvss.ImpactNone, cvss.ImpactPartial, cvss.ImpactNone, 0.10},
		},
		uiRequired: 0.10, scopeChanged: 0.12, pUp: 0.85,
	},
	200: { // information exposure
		family: "info", weight: 0.050,
		avNetwork: 0.80, acLow: 0.70, acMedium: 0.25, authNone: 0.85,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.85},
			{cvss.ImpactComplete, cvss.ImpactNone, cvss.ImpactNone, 0.15},
		},
		uiRequired: 0.15, scopeChanged: 0.05, pUp: 0.90,
	},
	399: { // resource management / DoS
		family: "dos", weight: 0.035,
		avNetwork: 0.85, acLow: 0.60, acMedium: 0.30, authNone: 0.92,
		impacts: []impactPattern{
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.55},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactComplete, 0.30},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.15},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.90,
	},
	22: { // path traversal
		family: "traversal", weight: 0.030,
		avNetwork: 0.95, acLow: 0.75, acMedium: 0.20, authNone: 0.85,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.55},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.30},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.15},
		},
		uiRequired: 0.05, scopeChanged: 0.05, pUp: 0.90,
	},
	352: { // CSRF
		family: "csrf", weight: 0.025,
		avNetwork: 1.0, acLow: 0.15, acMedium: 0.80, authNone: 0.90,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.60},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.40},
		},
		uiRequired: 0.95, scopeChanged: 0.25, pUp: 0.75,
	},
	94: { // code injection
		family: "codeinj", weight: 0.025,
		avNetwork: 0.95, acLow: 0.65, acMedium: 0.28, authNone: 0.88,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.65},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.35},
		},
		uiRequired: 0.15, scopeChanged: 0.12, pUp: 0.95,
	},
	189: { // numeric errors
		family: "numeric", weight: 0.020,
		avNetwork: 0.75, acLow: 0.50, acMedium: 0.38, authNone: 0.93,
		impacts: []impactPattern{
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.40},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.40},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.20},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.25,
	},
	416: { // use after free
		family: "uaf", weight: 0.020,
		avNetwork: 0.80, acLow: 0.35, acMedium: 0.50, authNone: 0.95,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.40},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.45},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.15},
		},
		uiRequired: 0.90, scopeChanged: 0.08, pUp: 0.80,
	},
	284: { // access control
		family: "access", weight: 0.015,
		avNetwork: 0.80, acLow: 0.70, acMedium: 0.22, authNone: 0.80,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.40},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.35},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.25},
		},
		uiRequired: 0.05, scopeChanged: 0.15, pUp: 0.90,
	},
	310: { // cryptographic issues
		family: "crypto", weight: 0.015,
		avNetwork: 0.90, acLow: 0.30, acMedium: 0.50, authNone: 0.92,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.65},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.35},
		},
		uiRequired: 0.05, scopeChanged: 0.05, pUp: 0.90,
	},
	255: { // credentials management
		family: "creds", weight: 0.012,
		avNetwork: 0.80, acLow: 0.70, acMedium: 0.22, authNone: 0.85,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.35},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.35},
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.30},
		},
		uiRequired: 0.05, scopeChanged: 0.10, pUp: 0.95,
	},
	287: { // authentication
		family: "auth", weight: 0.012,
		avNetwork: 0.90, acLow: 0.65, acMedium: 0.25, authNone: 0.90,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.40},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.35},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.25},
		},
		uiRequired: 0.05, scopeChanged: 0.10, pUp: 0.90,
	},
	190: { // integer overflow
		family: "numeric", weight: 0.012,
		avNetwork: 0.80, acLow: 0.45, acMedium: 0.42, authNone: 0.93,
		impacts: []impactPattern{
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.35},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.40},
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.25},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.75,
	},
	476: { // NULL deref
		family: "dos", weight: 0.010,
		avNetwork: 0.70, acLow: 0.55, acMedium: 0.35, authNone: 0.92,
		impacts: []impactPattern{
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.70},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactComplete, 0.30},
		},
		uiRequired: 0.10, scopeChanged: 0.03, pUp: 0.90,
	},
	77: { // command injection
		family: "cmdinj", weight: 0.008,
		avNetwork: 0.90, acLow: 0.70, acMedium: 0.25, authNone: 0.80,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.55},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.45},
		},
		uiRequired: 0.05, scopeChanged: 0.10, pUp: 0.95,
	},
	125: { // out-of-bounds read
		family: "overflow", weight: 0.010,
		avNetwork: 0.80, acLow: 0.45, acMedium: 0.45, authNone: 0.95,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactPartial, 0.50},
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.30},
			{cvss.ImpactNone, cvss.ImpactNone, cvss.ImpactPartial, 0.20},
		},
		uiRequired: 0.90, scopeChanged: 0.05, pUp: 0.75,
	},
	787: { // out-of-bounds write
		family: "overflow", weight: 0.010,
		avNetwork: 0.80, acLow: 0.45, acMedium: 0.45, authNone: 0.95,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.45},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.55},
		},
		uiRequired: 0.90, scopeChanged: 0.05, pUp: 0.85,
	},
	59: { // link following
		family: "traversal", weight: 0.006,
		avNetwork: 0.20, acLow: 0.40, acMedium: 0.45, authNone: 0.85,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.50},
			{cvss.ImpactNone, cvss.ImpactPartial, cvss.ImpactNone, 0.50},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.15,
	},
	134: { // format string
		family: "overflow", weight: 0.005,
		avNetwork: 0.75, acLow: 0.55, acMedium: 0.35, authNone: 0.92,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.50},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.50},
		},
		uiRequired: 0.10, scopeChanged: 0.05, pUp: 0.80,
	},
	611: { // XXE
		family: "xxe", weight: 0.005,
		avNetwork: 0.95, acLow: 0.70, acMedium: 0.25, authNone: 0.88,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.55},
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactPartial, 0.45},
		},
		uiRequired: 0.10, scopeChanged: 0.10, pUp: 0.90,
	},
	601: { // open redirect
		family: "redirect", weight: 0.004,
		avNetwork: 1.0, acLow: 0.20, acMedium: 0.75, authNone: 0.92,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.70},
			{cvss.ImpactNone, cvss.ImpactPartial, cvss.ImpactNone, 0.30},
		},
		uiRequired: 0.95, scopeChanged: 0.60, pUp: 0.10,
	},
	798: { // hard-coded credentials
		family: "creds", weight: 0.004,
		avNetwork: 0.90, acLow: 0.80, acMedium: 0.15, authNone: 0.90,
		impacts: []impactPattern{
			{cvss.ImpactComplete, cvss.ImpactComplete, cvss.ImpactComplete, 0.55},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactPartial, 0.45},
		},
		uiRequired: 0.02, scopeChanged: 0.08, pUp: 0.95,
	},
	918: { // SSRF
		family: "redirect", weight: 0.003,
		avNetwork: 1.0, acLow: 0.75, acMedium: 0.20, authNone: 0.88,
		impacts: []impactPattern{
			{cvss.ImpactPartial, cvss.ImpactNone, cvss.ImpactNone, 0.60},
			{cvss.ImpactPartial, cvss.ImpactPartial, cvss.ImpactNone, 0.40},
		},
		uiRequired: 0.05, scopeChanged: 0.55, pUp: 0.80,
	},
}

// cweTable is a weighted sampler over the full CWE catalog.
type cweTable struct {
	ids     []cwe.ID
	cumsum  []float64
	profile map[cwe.ID]cweProfile
}

// buildCWETable combines the explicit profiles with a Zipf tail over the
// remaining catalog entries.
func buildCWETable(reg *cwe.Registry) *cweTable {
	t := &cweTable{profile: make(map[cwe.ID]cweProfile)}
	ids := reg.IDs()
	// Deterministic order: profile IDs first (sorted), then the rest.
	var profiled, rest []cwe.ID
	for _, id := range ids {
		if _, ok := cweProfiles[id]; ok {
			profiled = append(profiled, id)
		} else {
			rest = append(rest, id)
		}
	}
	sort.Slice(profiled, func(i, j int) bool { return profiled[i] < profiled[j] })

	var total float64
	add := func(id cwe.ID, p cweProfile) {
		t.ids = append(t.ids, id)
		total += p.weight
		t.cumsum = append(t.cumsum, total)
		t.profile[id] = p
	}
	for _, id := range profiled {
		add(id, cweProfiles[id])
	}
	for i, id := range rest {
		p := defaultProfile
		p.weight = 0.45 / float64(len(rest)) * (1 + 1/float64(i+1)) // gentle Zipf
		add(id, p)
	}
	return t
}

// sample draws a weakness type.
func (t *cweTable) sample(rng *rand.Rand) cwe.ID {
	r := rng.Float64() * t.cumsum[len(t.cumsum)-1]
	i := sort.SearchFloat64s(t.cumsum, r)
	if i >= len(t.ids) {
		i = len(t.ids) - 1
	}
	return t.ids[i]
}

// profileOf returns the profile for id (defaultProfile when unknown).
func (t *cweTable) profileOf(id cwe.ID) cweProfile {
	if p, ok := t.profile[id]; ok {
		return p
	}
	return defaultProfile
}

// sampleV2 draws a v2 base vector according to the type profile.
func sampleV2(p cweProfile, rng *rand.Rand) cvss.VectorV2 {
	var v cvss.VectorV2
	switch {
	case rng.Float64() < p.avNetwork:
		v.AccessVector = cvss.AccessNetwork
	case rng.Float64() < 0.12:
		v.AccessVector = cvss.AccessAdjacent
	default:
		v.AccessVector = cvss.AccessLocal
	}
	r := rng.Float64()
	switch {
	case r < p.acLow:
		v.AccessComplexity = cvss.ComplexityLow
	case r < p.acLow+p.acMedium:
		v.AccessComplexity = cvss.ComplexityMedium
	default:
		v.AccessComplexity = cvss.ComplexityHigh
	}
	switch {
	case rng.Float64() < p.authNone:
		v.Authentication = cvss.AuthNone
	case rng.Float64() < 0.95:
		v.Authentication = cvss.AuthSingle
	default:
		v.Authentication = cvss.AuthMultiple
	}
	// Impact pattern.
	var totalW float64
	for _, ip := range p.impacts {
		totalW += ip.w
	}
	rw := rng.Float64() * totalW
	for _, ip := range p.impacts {
		rw -= ip.w
		if rw <= 0 {
			v.Confidentiality, v.Integrity, v.Availability = ip.c, ip.i, ip.a
			break
		}
	}
	if v.Confidentiality == 0 { // numeric safety net for float round-off
		last := p.impacts[len(p.impacts)-1]
		v.Confidentiality, v.Integrity, v.Availability = last.c, last.i, last.a
	}
	return v
}

// deriveV3 computes the "true" v3 vector for a vulnerability from its v2
// vector and type profile. The mapping is mostly deterministic with
// type-dependent stochastic components (scope, user interaction, impact
// reassessment), giving the non-linear v2→v3 relationship the paper
// observes in Fig 5 and bounding model accuracy below 100%.
func deriveV3(v2 cvss.VectorV2, p cweProfile, rng *rand.Rand) cvss.VectorV3 {
	var v cvss.VectorV3
	// Attack vector: v2 Local splits into v3 Local/Physical.
	switch v2.AccessVector {
	case cvss.AccessNetwork:
		v.AttackVector = cvss.AttackNetwork
	case cvss.AccessAdjacent:
		v.AttackVector = cvss.AttackAdjacent
	default:
		if rng.Float64() < 0.03 {
			v.AttackVector = cvss.AttackPhysical
		} else {
			v.AttackVector = cvss.AttackLocal
		}
	}
	// Access complexity: v2 folded "needs user interaction" and "needs
	// special conditions" into AC:Medium. v3 splits them: for
	// client-side weakness classes AC:M becomes AC:L plus UI:R, for
	// server-side ones it becomes AC:H (§4.3: "The access complexity in
	// v2 was divided into attack complexity and user interaction in
	// v3").
	clientSide := p.uiRequired >= 0.5
	switch v2.AccessComplexity {
	case cvss.ComplexityLow:
		v.AttackComplexity = cvss.AttackComplexityLow
	case cvss.ComplexityMedium:
		if clientSide {
			v.AttackComplexity = cvss.AttackComplexityLow
		} else {
			v.AttackComplexity = cvss.AttackComplexityHigh
		}
	default:
		v.AttackComplexity = cvss.AttackComplexityHigh
	}
	// Authentication → privileges required.
	switch v2.Authentication {
	case cvss.AuthNone:
		v.PrivilegesRequired = cvss.PrivilegesNone
	case cvss.AuthSingle:
		v.PrivilegesRequired = cvss.PrivilegesLow
	default:
		v.PrivilegesRequired = cvss.PrivilegesHigh
	}
	// User interaction and scope are properties of the weakness class
	// far more than of the individual CVE: make them near-deterministic
	// per type, with a small per-CVE exception rate. This keeps the
	// mapping learnable from (v2, CWE) at the paper's accuracy level
	// while still denying a perfect fit.
	v.UserInteraction = cvss.InteractionNone
	if (p.uiRequired >= 0.5) != (rng.Float64() < 0.03) {
		v.UserInteraction = cvss.InteractionRequired
	}
	v.Scope = cvss.ScopeUnchanged
	if (p.scopeChanged >= 0.5) != (rng.Float64() < 0.03) {
		v.Scope = cvss.ScopeChanged
	}
	// One shared reassessment latent per CVE: when analysts upgrade a
	// vulnerability's partial impacts to v3 High, they upgrade them
	// together, not per-dimension.
	up := rng.Float64() < p.pUp
	v.Confidentiality = reassessImpact(v2.Confidentiality, up, rng)
	v.Integrity = reassessImpact(v2.Integrity, up, rng)
	v.Availability = reassessImpact(v2.Availability, up, rng)
	// v3 requires some impact for a nonzero score; keep the all-None
	// case only when v2 also had no impact.
	if v.Confidentiality == cvss.ImpactV3None && v.Integrity == cvss.ImpactV3None &&
		v.Availability == cvss.ImpactV3None && v2.Impact() > 0 {
		v.Availability = cvss.ImpactV3Low
	}
	// Table 4 boundary invariant: no vulnerability moves from v2 Low to
	// v3 Critical. When the stochastic components conspire to push a
	// low-severity issue past 9.0, temper the reassessment.
	if v2.Severity() == cvss.SeverityLow {
		for v.Severity() == cvss.SeverityCritical {
			switch {
			case v.Scope == cvss.ScopeChanged:
				v.Scope = cvss.ScopeUnchanged
			case v.Confidentiality == cvss.ImpactV3High:
				v.Confidentiality = cvss.ImpactV3Low
			default:
				v.Integrity = cvss.ImpactV3Low
			}
		}
	}
	return v
}

func reassessImpact(imp cvss.ImpactV2, up bool, rng *rand.Rand) cvss.ImpactV3 {
	switch imp {
	case cvss.ImpactComplete:
		return cvss.ImpactV3High
	case cvss.ImpactPartial:
		if up {
			return cvss.ImpactV3High
		}
		return cvss.ImpactV3Low
	default:
		if rng.Float64() < 0.01 {
			return cvss.ImpactV3Low
		}
		return cvss.ImpactV3None
	}
}
