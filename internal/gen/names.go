package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vendor is one true vendor of the synthetic software universe, carrying
// its canonical name, any injected inconsistent aliases, and a product
// catalog.
type Vendor struct {
	// Name is the canonical vendor name (by construction the name with
	// the most CVEs, matching the paper's consolidation rule).
	Name string
	// Aliases are injected inconsistent spellings, each tagged with the
	// Table 2 pattern that produced it.
	Aliases []VendorAlias
	// Products is the vendor's catalog.
	Products []*Product
	// CVEWeight is the relative share of CVEs attributed to this
	// vendor.
	CVEWeight float64
}

// VendorAlias is an inconsistent vendor name with its generation
// pattern.
type VendorAlias struct {
	Name string
	// Pattern is one of "tokens", "misspell", "prefix", "abbrev",
	// "product-as-vendor" — the Table 2 categories.
	Pattern string
}

// Product is one product with optional inconsistent aliases.
type Product struct {
	// Name is the canonical product name.
	Name string
	// Aliases are injected inconsistent spellings ("separator",
	// "abbrev", "typo" patterns of §4.2).
	Aliases []string
}

// Universe is the complete software-naming world of a synthetic
// snapshot.
type Universe struct {
	Vendors []*Vendor

	// nameTaken guards global vendor-name uniqueness (canonical and
	// alias names share one namespace, as in the NVD's CPE dictionary).
	nameTaken map[string]bool
	// prefixTaken holds every proper prefix of an accepted name, so
	// that distinct vendors never accidentally form prefix pairs —
	// in the real NVD such pairs almost always are the same vendor,
	// which is exactly why the paper's Pref heuristic confirms at >90%.
	prefixTaken map[string]bool
	// delSig holds single-character-deletion signatures of accepted
	// names, so distinct vendors are never within edit distance 1 of
	// each other (only injected misspelling aliases are).
	delSig map[string]bool
}

// registerName indexes an accepted vendor name (canonical or alias).
func (u *Universe) registerName(name string) {
	u.nameTaken[name] = true
	for i := 1; i < len(name); i++ {
		u.prefixTaken[name[:i]] = true
	}
	u.delSig[name] = true
	for i := 0; i < len(name); i++ {
		u.delSig[name[:i]+name[i+1:]] = true
	}
}

// nameCollides reports whether a prospective vendor name would
// accidentally pair with an existing one (exact, prefix either way, or
// edit distance ≤ 1).
func (u *Universe) nameCollides(name string) bool {
	if u.nameTaken[name] || u.prefixTaken[name] {
		return true
	}
	for i := 1; i < len(name); i++ {
		if u.nameTaken[name[:i]] {
			return true
		}
	}
	if u.delSig[name] {
		return true
	}
	for i := 0; i < len(name); i++ {
		if u.delSig[name[:i]+name[i+1:]] {
			return true
		}
	}
	return false
}

// headVendor seeds the well-known vendors of Table 11 with their
// approximate CVE and product shares so the top-10 analyses reproduce.
type headVendor struct {
	name         string
	cveShare     float64 // fraction of all CVEs
	productShare float64 // fraction of all products
}

var headVendors = []headVendor{
	{"microsoft", 0.0780, 0.0107},
	{"oracle", 0.0500, 0.0121},
	{"apple", 0.0426, 0.0050},
	{"ibm", 0.0388, 0.0203},
	{"google", 0.0367, 0.0040},
	{"cisco", 0.0343, 0.0400},
	{"adobe", 0.0268, 0.0045},
	{"linux", 0.0212, 0.0008},
	{"debian", 0.0212, 0.0010},
	{"redhat", 0.0201, 0.0065},
	{"hp", 0.0150, 0.0673},
	{"axis", 0.0030, 0.0177},
	{"intel", 0.0085, 0.0158},
	{"huawei", 0.0080, 0.0154},
	{"lenovo", 0.0045, 0.0127},
	{"siemens", 0.0060, 0.0112},
	{"apache", 0.0120, 0.0030},
	{"mozilla", 0.0110, 0.0012},
	{"wordpress", 0.0080, 0.0008},
	{"openssl_project", 0.0020, 0.0002},
}

// Name-building material for the synthetic long tail.
var (
	nameSyllables = []string{
		"ac", "al", "an", "ar", "bel", "bit", "bro", "cam", "cen", "cor",
		"dat", "del", "dev", "dig", "dor", "el", "en", "ex", "fab", "fen",
		"gal", "gen", "gra", "hel", "hex", "in", "jan", "kel", "kin", "lan",
		"lex", "lin", "lom", "mar", "med", "mon", "nav", "neo", "nor", "on",
		"or", "pan", "pel", "pix", "plex", "quan", "ril", "ros", "san", "sel",
		"sol", "syn", "tal", "tec", "tel", "tor", "tri", "ul", "van", "vel",
		"ver", "vim", "vor", "wel", "xan", "yel", "zan", "zen", "zor",
	}
	vendorSuffixes = []string{
		"soft", "tech", "sys", "ware", "net", "sec", "labs", "works",
		"media", "data", "core", "logic", "byte", "comm", "micro", "dyn",
	}
	productWords = []string{
		"server", "manager", "client", "engine", "suite", "studio",
		"portal", "gateway", "console", "agent", "monitor", "scanner",
		"editor", "viewer", "player", "builder", "center", "desk",
		"board", "mail", "chat", "forum", "wiki", "shop", "cart", "blog",
		"cms", "billing", "erp", "vpn", "proxy", "cache", "backup", "sync",
	}
	productQualifiers = []string{
		"enterprise", "pro", "lite", "secure", "smart", "open", "easy",
		"fast", "multi", "web", "net", "mobile", "cloud", "remote",
		"virtual", "micro", "hyper", "auto", "meta", "ultra",
	}
	// productSyllables is a subset of nameSyllables with pairwise edit
	// distance >= 2, so syllabic product components under one vendor
	// never collide at distance 1 (real catalogs' distinct products
	// differ by more than a typo; only injected aliases are that close).
	productSyllables = []string{
		"bel", "cam", "dor", "fen", "gra", "hex", "jan", "kin", "lom",
		"mar", "nav", "pix", "quan", "ros", "syn", "tal", "vim",
	}
	// genericProducts are product names deliberately shared by several
	// unrelated vendors, creating the false-candidate #MP pairs that
	// Table 2 counts as Possible-but-unconfirmed.
	genericProducts = []string{
		"antivirus", "firewall", "toolbar", "firmware", "dashboard",
		"installer", "updater", "launcher",
	}
)

// NewUniverse builds the vendor/product world for cfg, injecting alias
// inconsistencies at the configured rates.
func NewUniverse(cfg Config, rng *rand.Rand) *Universe {
	u := &Universe{
		nameTaken:   make(map[string]bool),
		prefixTaken: make(map[string]bool),
		delSig:      make(map[string]bool),
	}

	totalProducts := int(2.45 * float64(cfg.NumVendors))
	if totalProducts < 4 {
		totalProducts = 4
	}

	// Head vendors first.
	var headCVE, headProd float64
	for _, h := range headVendors {
		headCVE += h.cveShare
		headProd += h.productShare
	}
	for _, h := range headVendors {
		v := &Vendor{Name: h.name, CVEWeight: h.cveShare}
		u.registerName(h.name)
		nProducts := int(h.productShare * float64(totalProducts))
		if nProducts < 1 {
			nProducts = 1
		}
		for i := 0; i < nProducts; i++ {
			v.Products = append(v.Products, &Product{Name: u.productName(rng, v, i)})
		}
		u.Vendors = append(u.Vendors, v)
	}

	// Long tail.
	tail := cfg.NumVendors - len(headVendors)
	if tail < 0 {
		tail = 0
	}
	tailProducts := totalProducts - int(headProd*float64(totalProducts))
	// Zipf-ish tail weights so CVE counts have the long-tail shape.
	var tailWeight float64
	tailWeights := make([]float64, tail)
	for i := range tailWeights {
		tailWeights[i] = 1 / float64(i+4)
		tailWeight += tailWeights[i]
	}
	remainingCVEShare := 1 - headCVE
	for i := 0; i < tail; i++ {
		v := &Vendor{
			Name:      u.freshVendorName(rng),
			CVEWeight: remainingCVEShare * tailWeights[i] / tailWeight,
		}
		n := 1 + rng.Intn(cfg.MaxProductsPerVendor)
		if used := tailProducts - n; used < 0 {
			n = 1
		} else {
			tailProducts = used
		}
		for j := 0; j < n; j++ {
			name := u.productName(rng, v, j)
			// A slice of the tail shares generic product names,
			// producing false #MP candidate pairs.
			if rng.Float64() < 0.05 {
				name = genericProducts[rng.Intn(len(genericProducts))]
			}
			v.Products = append(v.Products, &Product{Name: name})
		}
		u.Vendors = append(u.Vendors, v)
	}

	u.injectVendorAliases(cfg, rng)
	u.injectProductAliases(cfg, rng)
	return u
}

// freshVendorName synthesizes an unused vendor name.
func (u *Universe) freshVendorName(rng *rand.Rand) string {
	for {
		var b strings.Builder
		n := 2 + rng.Intn(2)
		for i := 0; i < n; i++ {
			b.WriteString(nameSyllables[rng.Intn(len(nameSyllables))])
		}
		if rng.Float64() < 0.5 {
			b.WriteString(vendorSuffixes[rng.Intn(len(vendorSuffixes))])
		}
		name := b.String()
		if rng.Float64() < 0.15 {
			name += "_" + []string{"inc", "corp", "gmbh", "ltd", "org"}[rng.Intn(5)]
		}
		if !u.nameCollides(name) {
			u.registerName(name)
			return name
		}
	}
}

// productName synthesizes a product name. Names are overwhelmingly
// vendor-scoped (as in the real CPE dictionary, where identical product
// names under different vendors are rare): most templates embed a
// vendor token or a unique syllabic coinage. Cross-vendor collisions
// are injected only deliberately through genericProducts — otherwise
// the shared-product heuristic drowns in accidental #MP pairs at full
// scale, which the real NVD does not exhibit.
func (u *Universe) productName(rng *rand.Rand, v *Vendor, idx int) string {
	syllable := func() string { return productSyllables[rng.Intn(len(productSyllables))] }
	word := func() string { return productWords[rng.Intn(len(productWords))] }
	vendorTok := firstToken(v.Name)
	switch rng.Intn(5) {
	case 0:
		// vendorword_product: "oracle_database".
		return fmt.Sprintf("%s_%s", vendorTok, word())
	case 1:
		// vendor-scoped qualified name: "oracle_secure_gateway".
		return fmt.Sprintf("%s_%s_%s", vendorTok,
			productQualifiers[rng.Intn(len(productQualifiers))], word())
	case 2:
		// Three-component name, abbreviation-friendly:
		// "orlan_management_system".
		return fmt.Sprintf("%s%s_%s_%s", vendorTok[:2], syllable(), word(),
			[]string{"system", "engine", "tool", "kit", "service"}[rng.Intn(5)])
	case 3:
		// Vendor-scoped syllabic coinage: "orbelserver". The full word is
		// used (not a truncation) so truncated stems cannot collide at
		// edit distance 1 ("con"sole vs "mon"itor).
		return vendorTok[:2] + syllable() + word()
	default:
		// vendorword + numbered product line: "oracle_server3".
		return fmt.Sprintf("%s_%s%d", vendorTok, word(), idx+1)
	}
}

func firstToken(s string) string {
	if i := strings.IndexAny(s, "_-! "); i > 0 {
		return s[:i]
	}
	return s
}

// injectVendorAliases gives a VendorAliasRate fraction of vendors one or
// two inconsistent aliases, spread over the Table 2 patterns. The head
// vendors the paper calls out as gaining CVEs after correction (§5.4:
// "Oracle had over 100 more associated CVEs after our naming fixes, and
// Debian had 95 more") always receive one.
func (u *Universe) injectVendorAliases(cfg Config, rng *rand.Rand) {
	forced := map[string]bool{"oracle": true, "debian": true, "redhat": true, "ibm": true, "linux": true}
	for _, v := range u.Vendors {
		if !forced[v.Name] && rng.Float64() >= cfg.VendorAliasRate {
			continue
		}
		n := 1
		if rng.Float64() < 0.15 {
			n = 2
		}
		for i := 0; i < n; i++ {
			alias, pattern := u.makeVendorAlias(v, rng)
			if alias == "" {
				continue
			}
			v.Aliases = append(v.Aliases, VendorAlias{Name: alias, Pattern: pattern})
		}
	}
}

func (u *Universe) makeVendorAlias(v *Vendor, rng *rand.Rand) (string, string) {
	for attempt := 0; attempt < 8; attempt++ {
		var alias, pattern string
		switch rng.Intn(5) {
		case 0: // special characters: bea_systems vs "bea systems"/"bea-systems"/"avast!"
			pattern = "tokens"
			switch {
			case strings.Contains(v.Name, "_"):
				alias = strings.ReplaceAll(v.Name, "_", "-")
			case rng.Float64() < 0.5:
				alias = v.Name + "!"
			default:
				half := len(v.Name) / 2
				if half == 0 {
					continue
				}
				alias = v.Name[:half] + "_" + v.Name[half:]
			}
		case 1: // misspelling: drop one interior character (microsft)
			pattern = "misspell"
			if len(v.Name) < 5 {
				continue
			}
			pos := 1 + rng.Intn(len(v.Name)-2)
			if v.Name[pos] == '_' || v.Name[pos] == '-' {
				continue
			}
			alias = v.Name[:pos] + v.Name[pos+1:]
		case 2: // prefix: lynx vs lynx_project
			pattern = "prefix"
			suffix := []string{"_project", "_inc", "_software", "_team", "_foundation"}[rng.Intn(5)]
			if strings.HasSuffix(v.Name, suffix) {
				alias = strings.TrimSuffix(v.Name, suffix)
			} else {
				alias = v.Name + suffix
			}
		case 3: // abbreviation: lan_management_system -> lms
			pattern = "abbrev"
			tokens := strings.FieldsFunc(v.Name, func(r rune) bool { return r == '_' || r == '-' })
			// Two-letter initials ("zi" from zanlex_inc) would collide
			// with the initials of every similarly-suffixed vendor;
			// real abbreviation aliases are 3+ characters.
			if len(tokens) < 3 {
				continue
			}
			var b strings.Builder
			for _, t := range tokens {
				b.WriteByte(t[0])
			}
			alias = b.String()
		default: // product used as vendor name
			pattern = "product-as-vendor"
			if len(v.Products) == 0 {
				continue
			}
			alias = v.Products[rng.Intn(len(v.Products))].Name
		}
		if alias == "" || alias == v.Name || u.nameTaken[alias] {
			continue
		}
		// Intentional collisions with the canonical name are the point;
		// register the alias so later fresh names keep their distance
		// from it too.
		u.registerName(alias)
		return alias, pattern
	}
	return "", ""
}

// injectProductAliases gives a ProductAliasRate fraction of products an
// inconsistent alias using the §4.2 product patterns.
func (u *Universe) injectProductAliases(cfg Config, rng *rand.Rand) {
	for _, v := range u.Vendors {
		taken := make(map[string]bool, len(v.Products))
		for _, p := range v.Products {
			taken[p.Name] = true
		}
		for _, p := range v.Products {
			if rng.Float64() >= cfg.ProductAliasRate {
				continue
			}
			alias := makeProductAlias(p.Name, rng)
			if alias == "" || alias == p.Name || taken[alias] {
				continue
			}
			taken[alias] = true
			p.Aliases = append(p.Aliases, alias)
		}
	}
}

func makeProductAlias(name string, rng *rand.Rand) string {
	tokens := strings.FieldsFunc(name, func(r rune) bool { return r == '_' || r == '-' || r == ' ' })
	switch rng.Intn(3) {
	case 0: // separator variant: internet_explorer -> internet-explorer
		if strings.Contains(name, "_") {
			if rng.Float64() < 0.5 {
				return strings.ReplaceAll(name, "_", "-")
			}
			return strings.ReplaceAll(name, "_", " ")
		}
		if len(tokens) == 1 && len(name) > 5 {
			half := len(name) / 2
			return name[:half] + "_" + name[half:]
		}
		return ""
	case 1: // abbreviation: internet_explorer -> ie
		if len(tokens) < 2 {
			return ""
		}
		var b strings.Builder
		for _, t := range tokens {
			b.WriteByte(t[0])
		}
		return b.String()
	default: // human-error typo at edit distance 1 (tbe_banner_engine)
		if len(name) < 6 {
			return ""
		}
		pos := rng.Intn(len(name))
		c := name[pos]
		if c == '_' || c == '-' {
			return ""
		}
		// Swap with an adjacent letter or substitute a neighbor key.
		if pos+1 < len(name) && name[pos+1] != '_' && name[pos+1] != '-' && name[pos] != name[pos+1] {
			return name[:pos] + string(name[pos+1]) + string(name[pos]) + name[pos+2:]
		}
		return ""
	}
}

// TotalProducts counts products (canonical names) across all vendors.
func (u *Universe) TotalProducts() int {
	var n int
	for _, v := range u.Vendors {
		n += len(v.Products)
	}
	return n
}

// VendorAliasCount counts injected vendor aliases.
func (u *Universe) VendorAliasCount() int {
	var n int
	for _, v := range u.Vendors {
		n += len(v.Aliases)
	}
	return n
}

// ProductAliasCount counts injected product aliases.
func (u *Universe) ProductAliasCount() int {
	var n int
	for _, v := range u.Vendors {
		for _, p := range v.Products {
			n += len(p.Aliases)
		}
	}
	return n
}
