package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// components are the software locations descriptions reference.
var components = []string{
	"the login form", "the admin panel", "the HTTP request parser",
	"the file upload handler", "the session manager", "the search function",
	"the XML parser", "the image decoder", "the URL handler",
	"the configuration interface", "the authentication module",
	"the password reset feature", "the update mechanism", "the API endpoint",
	"the comment field", "the packet handler", "the TLS implementation",
	"the kernel driver", "the RPC service", "the web interface",
	"the template engine", "the database layer", "the logging subsystem",
	"the cache implementation", "the archive extractor",
}

// parameters are request fields attackers manipulate.
var parameters = []string{
	"id", "user", "q", "page", "file", "path", "name", "action", "token",
	"redirect", "callback", "lang", "sort", "filter", "category",
}

// familyTemplates maps a weakness family to description templates. The
// placeholders are: %[1]s product, %[2]s version, %[3]s component,
// %[4]s parameter. Templates inside one family share that family's
// vocabulary; several families intentionally share generic phrasing so
// the §4.4 k-NN classifier faces realistic confusion instead of a
// trivially separable corpus.
var familyTemplates = map[string][]string{
	"overflow": {
		"Buffer overflow in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary code via a long %[4]s parameter.",
		"Heap-based buffer overflow in %[1]s %[2]s allows attackers to cause a denial of service or possibly execute arbitrary code via a crafted file processed by %[3]s.",
		"Stack-based buffer overflow in %[3]s in %[1]s %[2]s allows remote attackers to execute arbitrary code via a crafted request.",
		"%[1]s before %[2]s does not properly restrict operations within the bounds of a memory buffer in %[3]s, which allows attackers to corrupt memory via the %[4]s field.",
	},
	"xss": {
		"Cross-site scripting (XSS) vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to inject arbitrary web script or HTML via the %[4]s parameter.",
		"Multiple cross-site scripting (XSS) vulnerabilities in %[1]s %[2]s allow remote attackers to inject arbitrary web script via %[3]s.",
		"%[1]s before %[2]s does not properly sanitize user input in %[3]s, allowing script injection through the %[4]s parameter.",
	},
	"sqli": {
		"SQL injection vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary SQL commands via the %[4]s parameter.",
		"Multiple SQL injection vulnerabilities in %[1]s %[2]s allow remote authenticated users to execute arbitrary SQL commands via %[3]s.",
		"%[1]s before %[2]s does not properly neutralize special elements used in an SQL command in %[3]s, allowing database manipulation via the %[4]s field.",
	},
	"input": {
		"Improper input validation in %[3]s in %[1]s before %[2]s allows remote attackers to cause unspecified impact via a malformed %[4]s value.",
		"%[1]s %[2]s does not properly validate input to %[3]s, which allows attackers to trigger unexpected behavior via a crafted request.",
		"Improper validation of user-supplied data in %[3]s in %[1]s allows attackers to bypass intended restrictions via the %[4]s parameter.",
	},
	"priv": {
		"%[1]s before %[2]s does not properly enforce permissions in %[3]s, which allows local users to gain privileges via a crafted application.",
		"Incorrect privilege assignment in %[3]s in %[1]s %[2]s allows authenticated users to obtain elevated access.",
		"Permission management error in %[1]s before %[2]s allows local users to bypass access restrictions on %[3]s.",
	},
	"info": {
		"Information exposure in %[3]s in %[1]s before %[2]s allows remote attackers to obtain sensitive information via a crafted request.",
		"%[1]s %[2]s discloses sensitive data through %[3]s, allowing attackers to read configuration details via the %[4]s parameter.",
		"An information disclosure issue in %[3]s in %[1]s allows remote attackers to enumerate valid usernames.",
	},
	"dos": {
		"Resource management error in %[3]s in %[1]s before %[2]s allows remote attackers to cause a denial of service (memory consumption) via a crafted request.",
		"%[1]s %[2]s allows remote attackers to cause a denial of service (crash) via a malformed packet processed by %[3]s.",
		"NULL pointer dereference in %[3]s in %[1]s before %[2]s allows attackers to cause a denial of service via a crafted %[4]s value.",
	},
	"traversal": {
		"Directory traversal vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to read arbitrary files via a .. (dot dot) in the %[4]s parameter.",
		"Path traversal in %[1]s %[2]s allows attackers to access files outside the intended directory via %[3]s.",
		"%[1]s before %[2]s does not properly limit pathnames in %[3]s, allowing file disclosure via a crafted %[4]s value.",
	},
	"csrf": {
		"Cross-site request forgery (CSRF) vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to hijack the authentication of administrators for requests that change settings.",
		"CSRF in %[1]s %[2]s allows remote attackers to perform actions as the victim via a crafted page targeting %[3]s.",
	},
	"codeinj": {
		"Code injection vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary code via the %[4]s parameter.",
		"%[1]s %[2]s allows remote attackers to inject and execute arbitrary PHP code via %[3]s.",
		"Eval injection in %[3]s in %[1]s allows attackers to execute arbitrary commands via a crafted %[4]s value.",
	},
	"cmdinj": {
		"Command injection in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary OS commands via shell metacharacters in the %[4]s parameter.",
		"%[1]s %[2]s allows remote authenticated users to execute arbitrary commands via %[3]s.",
	},
	"numeric": {
		"Integer overflow in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary code via a crafted length field.",
		"Integer underflow in %[1]s %[2]s allows attackers to cause a denial of service via a malformed %[4]s value processed by %[3]s.",
		"Off-by-one error in %[3]s in %[1]s allows attackers to cause memory corruption via a crafted request.",
	},
	"uaf": {
		"Use-after-free vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to execute arbitrary code via a crafted document.",
		"%[1]s %[2]s contains a use-after-free in %[3]s that allows attackers to cause a denial of service or execute arbitrary code.",
	},
	"access": {
		"Improper access control in %[3]s in %[1]s before %[2]s allows remote attackers to bypass authorization and access restricted functionality.",
		"%[1]s %[2]s does not properly check authorization in %[3]s, allowing remote attackers to modify data via the %[4]s parameter.",
	},
	"crypto": {
		"%[1]s before %[2]s uses a weak cryptographic algorithm in %[3]s, which makes it easier for attackers to decrypt intercepted traffic.",
		"Cryptographic issue in %[3]s in %[1]s %[2]s allows man-in-the-middle attackers to obtain sensitive information.",
		"%[1]s generates predictable random values in %[3]s, weakening generated keys.",
	},
	"creds": {
		"%[1]s before %[2]s stores credentials in cleartext in %[3]s, which allows local users to obtain passwords.",
		"%[1]s %[2]s contains hard-coded credentials in %[3]s, which allows remote attackers to gain access.",
	},
	"auth": {
		"Improper authentication in %[3]s in %[1]s before %[2]s allows remote attackers to bypass login via a crafted %[4]s value.",
		"%[1]s %[2]s allows authentication bypass via a spoofed token sent to %[3]s.",
	},
	"xxe": {
		"XML external entity (XXE) vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to read arbitrary files via a crafted DTD.",
		"%[1]s %[2]s processes external entities in %[3]s, allowing attackers to disclose internal files via a crafted XML document.",
	},
	"redirect": {
		"Open redirect vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to redirect users to arbitrary web sites via the %[4]s parameter.",
		"Server-side request forgery (SSRF) in %[3]s in %[1]s %[2]s allows attackers to send requests to internal systems via the %[4]s parameter.",
	},
	"generic": {
		"Unspecified vulnerability in %[3]s in %[1]s before %[2]s allows remote attackers to cause unspecified impact via unknown vectors.",
		"An issue was discovered in %[1]s %[2]s. Attackers can affect %[3]s via the %[4]s parameter.",
		"A vulnerability in %[3]s of %[1]s could allow an attacker to compromise the affected system.",
	},
}

// noiseTemplates are deliberately type-free descriptions used for a
// fraction of CVEs of every family, modeling the crowd-sourced entries
// whose text does not reveal the weakness class (this is what caps the
// k-NN classifier's accuracy near the paper's 65.6%).
var noiseTemplates = []string{
	"An issue was discovered in %[1]s %[2]s. There is an impact to %[3]s.",
	"A vulnerability was found in %[1]s before %[2]s affecting %[3]s. The impact is currently unknown.",
	"Unspecified vulnerability in %[1]s %[2]s has unknown impact and attack vectors related to %[3]s.",
	"A flaw exists in %[3]s in %[1]s %[2]s via the %[4]s parameter.",
}

// noiseRate is the fraction of descriptions drawn from noiseTemplates.
const noiseRate = 0.25

// renderDescription produces the primary free-form description for a
// CVE of the given family. typeName is the weakness name from the CWE
// catalog; long-tail types whose family has only generic templates
// usually mention it (as real NVD analysts do), which is what keeps
// those 100+ classes separable for the §4.4 classifier.
func renderDescription(family, typeName, product, version string, rng *rand.Rand) string {
	component := components[rng.Intn(len(components))]
	param := parameters[rng.Intn(len(parameters))]
	prettyProduct := strings.ReplaceAll(product, "_", " ")
	var tmpl string
	noise := rng.Float64() < noiseRate
	if noise {
		tmpl = noiseTemplates[rng.Intn(len(noiseTemplates))]
	} else {
		pool, ok := familyTemplates[family]
		if !ok {
			pool = familyTemplates["generic"]
		}
		tmpl = pool[rng.Intn(len(pool))]
	}
	desc := fmt.Sprintf(tmpl, prettyProduct, version, component, param)
	if !noise && family == "generic" && typeName != "" && rng.Float64() < 0.75 {
		desc += " The issue relates to " + strings.ToLower(typeName) + "."
	}
	return desc
}

// renderEvaluatorComment produces the evaluator description that embeds
// the true CWE ID (§4.4's recovery channel), e.g.
// "CWE-835: Loop with Unreachable Exit Condition ('Infinite Loop')".
func renderEvaluatorComment(id string, name string) string {
	if name == "" {
		return "Per the evaluator, this issue is classified as " + id + "."
	}
	return id + ": " + name
}

// sampleVersion draws a plausible product version string.
func sampleVersion(rng *rand.Rand) string {
	major := rng.Intn(12)
	minor := rng.Intn(10)
	if rng.Float64() < 0.4 {
		return fmt.Sprintf("%d.%d", major, minor)
	}
	return fmt.Sprintf("%d.%d.%d", major, minor, rng.Intn(20))
}
