package gen

import (
	"math/rand"
	"time"

	"nvdclean/internal/cvss"
)

// yearWeights approximates the real NVD yearly CVE volume (thousands)
// from 1988 through 2018; the small pre-1998 mass models retroactive
// entries.
var yearWeights = map[int]float64{
	1988: 0.01, 1989: 0.01, 1990: 0.02, 1991: 0.02, 1992: 0.02,
	1993: 0.03, 1994: 0.03, 1995: 0.05, 1996: 0.08, 1997: 0.10,
	1998: 0.25, 1999: 1.5, 2000: 1.2, 2001: 1.7, 2002: 2.1,
	2003: 1.5, 2004: 2.45, 2005: 4.9, 2006: 6.6, 2007: 6.5,
	2008: 5.6, 2009: 5.7, 2010: 4.6, 2011: 4.1, 2012: 5.3,
	2013: 5.2, 2014: 7.9, 2015: 6.5, 2016: 6.4, 2017: 14.6,
	2018: 5.5,
}

// weekdayWeights skews disclosures toward the start of the work week
// (Fig 2: Monday/Tuesday peak, weekend trough). Indexed by time.Weekday.
var weekdayWeights = [7]float64{0.04, 0.22, 0.24, 0.19, 0.15, 0.11, 0.05}

// disclosureEvent is a coordinated-disclosure burst: one calendar day
// receiving a large batch of CVEs, the mechanism behind the paper's
// Table 8 top estimated-disclosure dates.
type disclosureEvent struct {
	date  time.Time
	share float64 // fraction of that year's CVEs disclosed on the day
}

var disclosureEvents = []disclosureEvent{
	{time.Date(2014, 9, 9, 0, 0, 0, 0, time.UTC), 0.051},
	{time.Date(2018, 4, 2, 0, 0, 0, 0, time.UTC), 0.023},
	{time.Date(2017, 7, 5, 0, 0, 0, 0, time.UTC), 0.024},
	{time.Date(2016, 1, 19, 0, 0, 0, 0, time.UTC), 0.046},
	{time.Date(2017, 7, 18, 0, 0, 0, 0, time.UTC), 0.022},
	{time.Date(2015, 7, 14, 0, 0, 0, 0, time.UTC), 0.037},
	{time.Date(2005, 5, 2, 0, 0, 0, 0, time.UTC), 0.054},
	{time.Date(2017, 1, 17, 0, 0, 0, 0, time.UTC), 0.020},
	{time.Date(2018, 7, 17, 0, 0, 0, 0, time.UTC), 0.017},
	{time.Date(2017, 8, 8, 0, 0, 0, 0, time.UTC), 0.020},
	{time.Date(2018, 7, 9, 0, 0, 0, 0, time.UTC), 0.024},
	{time.Date(2018, 2, 15, 0, 0, 0, 0, time.UTC), 0.021},
}

// nyeBackfill models the NVD artifact of §5.1: early-2000s CVEs bulk-
// published on December 31, regardless of disclosure date. Keyed by
// year; the value is the fraction of that year's CVEs affected.
var nyeBackfill = map[int]float64{
	2002: 0.205,
	2003: 0.267,
	2004: 0.448,
	2005: 0.078,
}

// publicationBatch models bulk NVD insertions on specific days (the
// left column of Table 8 beyond NYE); CVEs disclosed on event days with
// zero lag dominate these.
var publicationBatch = map[int]disclosureEvent{
	2005: {time.Date(2005, 5, 2, 0, 0, 0, 0, time.UTC), 0.166},
}

// dateSampler draws (disclosure, published) pairs for CVEs of a given
// year and severity.
type dateSampler struct {
	cfg Config
	rng *rand.Rand
	// eventsByYear indexes disclosureEvents.
	eventsByYear map[int][]disclosureEvent
}

func newDateSampler(cfg Config, rng *rand.Rand) *dateSampler {
	s := &dateSampler{cfg: cfg, rng: rng, eventsByYear: make(map[int][]disclosureEvent)}
	for _, e := range disclosureEvents {
		y := e.date.Year()
		s.eventsByYear[y] = append(s.eventsByYear[y], e)
	}
	return s
}

// yearCounts apportions NumCVEs over the configured year range by
// yearWeights.
func yearCounts(cfg Config) map[int]int {
	var total float64
	for y := cfg.FirstYear; y <= cfg.LastYear; y++ {
		total += yearWeights[y]
	}
	counts := make(map[int]int)
	assigned := 0
	for y := cfg.FirstYear; y <= cfg.LastYear; y++ {
		n := int(float64(cfg.NumCVEs) * yearWeights[y] / total)
		counts[y] = n
		assigned += n
	}
	// Distribute the rounding remainder to the busiest year.
	busiest := cfg.LastYear - 1
	best := 0.0
	for y := cfg.FirstYear; y <= cfg.LastYear; y++ {
		if yearWeights[y] > best {
			best, busiest = yearWeights[y], y
		}
	}
	counts[busiest] += cfg.NumCVEs - assigned
	return counts
}

// sampleDisclosure picks a disclosure date within year, honoring burst
// events and the weekday skew.
func (s *dateSampler) sampleDisclosure(year int) time.Time {
	// Burst events first (skipping any falling after the capture date).
	for _, e := range s.eventsByYear[year] {
		if e.date.After(s.cfg.CaptureDate) {
			continue
		}
		if s.rng.Float64() < e.share {
			return e.date
		}
	}
	start := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	days := 365
	if isLeap(year) {
		days = 366
	}
	// The capture year is truncated at the capture date.
	if year == s.cfg.CaptureDate.Year() {
		days = s.cfg.CaptureDate.YearDay()
	}
	// Rejection-sample a day matching the weekday weights.
	maxW := 0.0
	for _, w := range weekdayWeights {
		if w > maxW {
			maxW = w
		}
	}
	for {
		d := start.AddDate(0, 0, s.rng.Intn(days))
		if s.rng.Float64()*maxW <= weekdayWeights[d.Weekday()] {
			return d
		}
	}
}

// samplePublished derives the NVD publication date from the disclosure
// date and the v2 severity. Returns the date and the injected lag in
// days.
func (s *dateSampler) samplePublished(disclosed time.Time, sev cvss.Severity) (time.Time, int) {
	year := disclosed.Year()
	// NYE backfill artifact: publication forced to December 31.
	if share, ok := nyeBackfill[year]; ok && s.rng.Float64() < share {
		nye := time.Date(year, 12, 31, 0, 0, 0, 0, time.UTC)
		if !nye.After(disclosed) {
			return disclosed, 0
		}
		return nye, int(nye.Sub(disclosed).Hours() / 24)
	}
	// Bulk publication batches.
	if e, ok := publicationBatch[year]; ok && s.rng.Float64() < e.share && e.date.After(disclosed) {
		return e.date, int(e.date.Sub(disclosed).Hours() / 24)
	}
	// Severity-dependent zero-lag probability (§4.1: the paper improves
	// the date for 37% of Low, 41% of Medium, and 65% of High severity
	// CVEs — i.e. High entries lag far more often).
	var zeroProb float64
	switch sev {
	case cvss.SeverityLow:
		zeroProb = 0.50
	case cvss.SeverityMedium:
		zeroProb = 0.45
	default:
		zeroProb = 0.20
	}
	if s.rng.Float64() < zeroProb {
		return disclosed, 0
	}
	lag := s.sampleLagDays()
	pub := disclosed.AddDate(0, 0, lag)
	if pub.After(s.cfg.CaptureDate) {
		// A CVE published after the capture date would not be in the
		// snapshot; redraw a lag that fits instead of piling entries
		// onto the capture day.
		room := int(s.cfg.CaptureDate.Sub(disclosed).Hours() / 24)
		if room <= 0 {
			return disclosed, 0
		}
		lag = s.rng.Intn(room + 1)
		pub = disclosed.AddDate(0, 0, lag)
	}
	return pub, lag
}

// sampleLagDays draws a positive lag with the Fig 1 mixture: most lags
// are within a week, with a long tail out past 2,000 days.
func (s *dateSampler) sampleLagDays() int {
	r := s.rng.Float64()
	switch {
	case r < 0.52: // 1–6 days
		return 1 + s.rng.Intn(6)
	case r < 0.80: // one week to two months
		return 7 + s.rng.Intn(54)
	case r < 0.96: // two months to ~400 days
		return 61 + s.rng.Intn(340)
	default: // deep tail, up to ~2,400 days
		return 401 + s.rng.Intn(2000)
	}
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}
