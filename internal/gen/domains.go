package gen

import "math"

// DomainCategory classifies a reference domain the way §4.1 does.
type DomainCategory int

// Categories of the paper's top-50 reference domains.
const (
	CategoryVulnDB DomainCategory = iota + 1
	CategoryBugTracker
	CategoryAdvisory
	CategoryMailArchive
)

// PageFormat selects the HTML layout a domain uses for its vulnerability
// pages, and therefore which extractor the crawler needs. The paper
// built "a separate crawler for each domain" because "each of the
// webpages may have a different structure".
type PageFormat int

// Page formats implemented by webcorpus and crawler.
const (
	// FormatMeta embeds the date in a <meta name="date"> tag.
	FormatMeta PageFormat = iota + 1
	// FormatTable lists "Published:" inside an HTML table row.
	FormatTable
	// FormatText writes "Published: January 2, 2006" in running prose.
	FormatText
	// FormatISO uses a <time datetime="2006-01-02"> element.
	FormatISO
	// FormatJapanese renders the date as 2006年01月02日 (jvn.jp).
	FormatJapanese
)

// Domain is one reference-URL host of the synthetic web.
type Domain struct {
	Host     string
	Category DomainCategory
	Format   PageFormat
	// Dead marks domains that no longer respond (the paper found 14 of
	// the top 50, e.g. osvdb.org, shut down).
	Dead bool
	// weight is the relative share of reference URLs pointing here.
	weight float64
}

// domainTable defines the reference-domain universe: 60 hosts with a
// Zipf-like popularity so the top 50 cover ≈85% of URLs (§4.1). Hosts
// are fictional but mirror the real categories; dead entries cluster in
// the legacy vulnerability-database category.
var domainTable = func() []Domain {
	base := []Domain{
		{Host: "securityfocus.example.com", Category: CategoryVulnDB, Format: FormatTable},
		{Host: "securitytracker.example.com", Category: CategoryVulnDB, Format: FormatTable},
		{Host: "bugzilla.example.org", Category: CategoryBugTracker, Format: FormatMeta},
		{Host: "osvdb.example.org", Category: CategoryVulnDB, Format: FormatTable, Dead: true},
		{Host: "marc.example.info", Category: CategoryMailArchive, Format: FormatText},
		{Host: "seclists.example.org", Category: CategoryMailArchive, Format: FormatText},
		{Host: "advisories.cisco.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "technet.microsoft.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "security.debian.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "rhn.redhat.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "usn.ubuntu.example.com", Category: CategoryAdvisory, Format: FormatText},
		{Host: "exploitdb.example.com", Category: CategoryVulnDB, Format: FormatMeta},
		{Host: "issues.example.io", Category: CategoryBugTracker, Format: FormatISO},
		{Host: "openwall.example.com", Category: CategoryMailArchive, Format: FormatText},
		{Host: "kb.cert.example.org", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "jvn.example.jp", Category: CategoryVulnDB, Format: FormatJapanese},
		{Host: "vupen.example.com", Category: CategoryVulnDB, Format: FormatTable, Dead: true},
		{Host: "secunia.example.com", Category: CategoryVulnDB, Format: FormatTable, Dead: true},
		{Host: "xforce.example.net", Category: CategoryVulnDB, Format: FormatMeta, Dead: true},
		{Host: "oval.example.org", Category: CategoryVulnDB, Format: FormatMeta, Dead: true},
		{Host: "security.gentoo.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "lists.apache.example.org", Category: CategoryMailArchive, Format: FormatText},
		{Host: "support.apple.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "chromium.example.org", Category: CategoryBugTracker, Format: FormatMeta},
		{Host: "mozilla.example.org", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "oracle.example.com", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "ibm.example.com", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "drupal.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "wordpress.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "php.example.net", Category: CategoryBugTracker, Format: FormatTable},
		{Host: "kernel.example.org", Category: CategoryBugTracker, Format: FormatText},
		{Host: "launchpad.example.net", Category: CategoryBugTracker, Format: FormatMeta},
		{Host: "sourceforge.example.net", Category: CategoryBugTracker, Format: FormatMeta, Dead: true},
		{Host: "packetstorm.example.net", Category: CategoryVulnDB, Format: FormatText, Dead: true},
		{Host: "fulldisclosure.example.org", Category: CategoryMailArchive, Format: FormatText, Dead: true},
		{Host: "cert.example.fr", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "jpcert.example.jp", Category: CategoryAdvisory, Format: FormatJapanese},
		{Host: "suse.example.com", Category: CategoryAdvisory, Format: FormatText},
		{Host: "mandriva.example.com", Category: CategoryAdvisory, Format: FormatText, Dead: true},
		{Host: "fedora.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "hp.example.com", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "adobe.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "vmware.example.com", Category: CategoryAdvisory, Format: FormatISO},
		{Host: "juniper.example.net", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "f5.example.com", Category: CategoryAdvisory, Format: FormatTable},
		{Host: "trac.example.org", Category: CategoryBugTracker, Format: FormatMeta, Dead: true},
		{Host: "milw0rm.example.com", Category: CategoryVulnDB, Format: FormatText, Dead: true},
		{Host: "securiteam.example.com", Category: CategoryVulnDB, Format: FormatTable, Dead: true},
		{Host: "frsirt.example.com", Category: CategoryVulnDB, Format: FormatTable, Dead: true},
		{Host: "iss.example.net", Category: CategoryVulnDB, Format: FormatMeta, Dead: true},
		// Below the paper's top-50 cut: the long tail the study skipped.
		{Host: "blog.example-research.com", Category: CategoryAdvisory, Format: FormatText},
		{Host: "pastebin.example.com", Category: CategoryMailArchive, Format: FormatText},
		{Host: "twitter.example.com", Category: CategoryMailArchive, Format: FormatMeta},
		{Host: "medium.example.com", Category: CategoryAdvisory, Format: FormatText},
		{Host: "gist.example.com", Category: CategoryBugTracker, Format: FormatMeta},
		{Host: "wiki.example.org", Category: CategoryAdvisory, Format: FormatText},
		{Host: "forum.example.net", Category: CategoryMailArchive, Format: FormatText},
		{Host: "cxsecurity.example.com", Category: CategoryVulnDB, Format: FormatTable},
		{Host: "vulners.example.com", Category: CategoryVulnDB, Format: FormatMeta},
		{Host: "zerodayinitiative.example.com", Category: CategoryAdvisory, Format: FormatISO},
	}
	for i := range base {
		base[i].weight = 1 / math.Pow(float64(i+1), 0.85)
	}
	return base
}()

// Domains returns the reference-domain universe in popularity order.
// The slice is shared; callers must not modify it.
func Domains() []Domain { return domainTable }

// DeadTop50 counts dead domains within the top 50, which the paper
// reports as 14.
func DeadTop50() int {
	n := 0
	for i, d := range domainTable {
		if i >= 50 {
			break
		}
		if d.Dead {
			n++
		}
	}
	return n
}
