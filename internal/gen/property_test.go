package gen

import (
	"testing"

	"nvdclean/internal/cvss"
)

// TestGenerateAcrossScalesAndSeeds sweeps configurations and checks the
// structural invariants hold everywhere, not just at the tuned default
// scales.
func TestGenerateAcrossScalesAndSeeds(t *testing.T) {
	cases := []struct {
		cves, vendors int
		seed          int64
	}{
		{60, 25, 2},
		{250, 80, 3},
		{900, 200, 4},
		{400, 120, 99},
		{400, 120, 12345},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.NumCVEs = tc.cves
		cfg.NumVendors = tc.vendors
		cfg.Seed = tc.seed
		snap, truth, uni, err := Generate(cfg)
		if err != nil {
			t.Fatalf("cves=%d seed=%d: %v", tc.cves, tc.seed, err)
		}
		if snap.Len() != tc.cves {
			t.Fatalf("cves=%d seed=%d: got %d entries", tc.cves, tc.seed, snap.Len())
		}
		ids := make(map[string]bool, snap.Len())
		for _, e := range snap.Entries {
			if ids[e.ID] {
				t.Fatalf("seed=%d: duplicate %s", tc.seed, e.ID)
			}
			ids[e.ID] = true
			if e.V2 == nil || !e.V2.Valid() {
				t.Fatalf("seed=%d %s: bad v2", tc.seed, e.ID)
			}
			if v3 := truth.TrueV3[e.ID]; !v3.Valid() {
				t.Fatalf("seed=%d %s: bad truth v3", tc.seed, e.ID)
			}
			disc := truth.Disclosure[e.ID]
			if disc.IsZero() || e.Published.Before(disc) || e.Published.After(cfg.CaptureDate) {
				t.Fatalf("seed=%d %s: date invariant broken", tc.seed, e.ID)
			}
			if len(e.CPEs) == 0 {
				t.Fatalf("seed=%d %s: no CPEs", tc.seed, e.ID)
			}
		}
		// Alias ground truth is internally consistent.
		canon := make(map[string]bool)
		for _, v := range uni.Vendors {
			canon[v.Name] = true
		}
		for alias, c := range truth.VendorCanonical {
			if alias == c || !canon[c] {
				t.Fatalf("seed=%d: bad alias mapping %q->%q", tc.seed, alias, c)
			}
		}
	}
}

// TestDistinctSeedsDiffer guards against accidental seed plumbing loss.
func TestDistinctSeedsDiffer(t *testing.T) {
	a := TinyConfig()
	b := TinyConfig()
	b.Seed = 777
	sa, _, _, err := Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, _, _, err := Generate(b)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range sa.Entries {
		if sa.Entries[i].Description() == sb.Entries[i].Description() {
			same++
		}
	}
	if same > sa.Len()/2 {
		t.Errorf("%d/%d identical descriptions across seeds", same, sa.Len())
	}
}

// TestNoAccidentalVendorNearCollisions verifies the universe guards: no
// two distinct canonical vendors within edit distance 1 or in a prefix
// relation (only injected aliases may be).
func TestNoAccidentalVendorNearCollisions(t *testing.T) {
	_, truth, uni, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	aliases := make(map[string]bool, len(truth.VendorCanonical))
	for a := range truth.VendorCanonical {
		aliases[a] = true
	}
	var names []string
	for _, v := range uni.Vendors {
		if !aliases[v.Name] {
			names = append(names, v.Name)
		}
	}
	// Spot check pairwise on a slice (full quadratic is slow): sorted
	// adjacency covers prefix pairs.
	for i := 1; i < len(names); i++ {
		a, b := names[i-1], names[i]
		if len(a) <= len(b) && b[:len(a)] == a {
			t.Errorf("canonical vendors in prefix relation: %q / %q", a, b)
		}
	}
}

// TestV2SeverityDistribution keeps the v2 marginal near the paper's
// Table 9 left column (L 8.25, M 54.8, H 36.9) within generator
// tolerance.
func TestV2SeverityDistribution(t *testing.T) {
	snap, _, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[cvss.Severity]int{}
	for _, e := range snap.Entries {
		counts[e.V2.Severity()]++
	}
	total := float64(snap.Len())
	m := float64(counts[cvss.SeverityMedium]) / total
	h := float64(counts[cvss.SeverityHigh]) / total
	if m < 0.45 || m > 0.65 {
		t.Errorf("v2 Medium share = %.2f, want ≈0.55", m)
	}
	if h < 0.25 || h > 0.45 {
		t.Errorf("v2 High share = %.2f, want ≈0.37", h)
	}
}
