package gen

import (
	"time"

	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// Truth is the injected ground truth of a synthetic snapshot: what the
// paper's authors established by web scraping and manual vetting, we
// know by construction. The test suite scores the cleaning pipeline
// against it.
type Truth struct {
	// Disclosure maps CVE ID to the true public disclosure date.
	Disclosure map[string]time.Time

	// TrueCWE maps CVE ID to the actual weakness type, regardless of
	// what the entry's CWE field says.
	TrueCWE map[string]cwe.ID

	// TrueV3 maps CVE ID to the actual CVSS v3 vector, including for
	// entries whose NVD record carries only v2.
	TrueV3 map[string]cvss.VectorV3

	// VendorCanonical maps every injected alias name to its canonical
	// vendor name.
	VendorCanonical map[string]string

	// VendorPattern maps every injected alias to its Table 2 pattern.
	VendorPattern map[string]string

	// ProductCanonical maps (canonical vendor, alias product) to the
	// canonical product name.
	ProductCanonical map[[2]string]string
}

func newTruth() *Truth {
	return &Truth{
		Disclosure:       make(map[string]time.Time),
		TrueCWE:          make(map[string]cwe.ID),
		TrueV3:           make(map[string]cvss.VectorV3),
		VendorCanonical:  make(map[string]string),
		VendorPattern:    make(map[string]string),
		ProductCanonical: make(map[[2]string]string),
	}
}

// CanonicalVendor resolves a possibly-aliased vendor name.
func (t *Truth) CanonicalVendor(name string) string {
	if c, ok := t.VendorCanonical[name]; ok {
		return c
	}
	return name
}

// CanonicalProduct resolves a possibly-aliased product name under a
// canonical vendor.
func (t *Truth) CanonicalProduct(vendor, product string) string {
	if c, ok := t.ProductCanonical[[2]string{vendor, product}]; ok {
		return c
	}
	return product
}

// LagDays returns the injected lag (publication minus disclosure) for a
// CVE given its published date.
func (t *Truth) LagDays(id string, published time.Time) int {
	d, ok := t.Disclosure[id]
	if !ok {
		return 0
	}
	return int(published.Sub(d).Hours() / 24)
}
