package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/cwe"
)

// Generate synthesizes a full NVD snapshot plus its ground truth and the
// vendor/product universe it was drawn from.
func Generate(cfg Config) (*cve.Snapshot, *Truth, *Universe, error) {
	if cfg.NumCVEs <= 0 || cfg.NumVendors <= 0 {
		return nil, nil, nil, fmt.Errorf("gen: invalid config: %d CVEs, %d vendors", cfg.NumCVEs, cfg.NumVendors)
	}
	if cfg.FirstYear > cfg.LastYear {
		return nil, nil, nil, fmt.Errorf("gen: year range %d-%d", cfg.FirstYear, cfg.LastYear)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	universe := NewUniverse(cfg, rng)
	registry := cwe.NewRegistry()
	table := buildCWETable(registry)
	dates := newDateSampler(cfg, rng)
	truth := newTruth()

	// Record alias ground truth.
	for _, v := range universe.Vendors {
		for _, a := range v.Aliases {
			truth.VendorCanonical[a.Name] = v.Name
			truth.VendorPattern[a.Name] = a.Pattern
		}
		for _, p := range v.Products {
			for _, alias := range p.Aliases {
				truth.ProductCanonical[[2]string{v.Name, alias}] = p.Name
			}
		}
	}

	// Vendor sampling table.
	vendorCum := make([]float64, len(universe.Vendors))
	var acc float64
	for i, v := range universe.Vendors {
		acc += v.CVEWeight
		vendorCum[i] = acc
	}

	snapshot := &cve.Snapshot{CapturedAt: cfg.CaptureDate}
	counts := yearCounts(cfg)
	years := make([]int, 0, len(counts))
	for y := range counts {
		years = append(years, y)
	}
	sort.Ints(years)

	g := &builder{
		cfg: cfg, rng: rng, universe: universe, registry: registry,
		table: table, dates: dates, truth: truth, vendorCum: vendorCum,
	}
	for _, year := range years {
		for seq := 1; seq <= counts[year]; seq++ {
			snapshot.Entries = append(snapshot.Entries, g.buildEntry(year, seq))
		}
	}
	snapshot.Sort()
	return snapshot, truth, universe, nil
}

// builder carries the immutable generation state.
type builder struct {
	cfg       Config
	rng       *rand.Rand
	universe  *Universe
	registry  *cwe.Registry
	table     *cweTable
	dates     *dateSampler
	truth     *Truth
	vendorCum []float64
}

func (g *builder) buildEntry(year, seq int) *cve.Entry {
	id := cve.FormatID(year, seq)
	e := &cve.Entry{ID: id}

	// Weakness type and severity.
	trueCWE := g.table.sample(g.rng)
	profile := g.table.profileOf(trueCWE)
	v2 := sampleV2(profile, g.rng)
	trueV3 := deriveV3(v2, profile, g.rng)
	e.V2 = &v2
	g.truth.TrueCWE[id] = trueCWE
	g.truth.TrueV3[id] = trueV3
	if g.hasV3Label(year) {
		v3 := trueV3
		e.V3 = &v3
	}

	// Dates.
	disclosed := g.dates.sampleDisclosure(year)
	published, _ := g.dates.samplePublished(disclosed, v2.Severity())
	e.Published = published
	e.LastModified = published.AddDate(0, 0, g.rng.Intn(200))
	if e.LastModified.After(g.cfg.CaptureDate) {
		e.LastModified = g.cfg.CaptureDate
	}
	g.truth.Disclosure[id] = disclosed

	// Affected software.
	vendor := g.sampleVendor()
	version := sampleVersion(g.rng)
	vendorName, product, productName := g.sampleNames(vendor)
	e.CPEs = append(e.CPEs, cpe.NewName(cpe.PartApplication, vendorName, productName, version))
	var extraCPEs int
	switch r := g.rng.Float64(); {
	case r < 0.10:
		extraCPEs = 2
	case r < 0.30:
		extraCPEs = 1
	}
	for i := 0; i < extraCPEs; i++ {
		other := vendor
		if g.rng.Float64() < 0.3 {
			other = g.sampleVendor()
		}
		vn, _, pn := g.sampleNames(other)
		e.CPEs = append(e.CPEs, cpe.NewName(cpe.PartApplication, vn, pn, sampleVersion(g.rng)))
	}

	// CWE field quality mix. Untyped entries sometimes leak their true
	// type in an evaluator comment; already-typed entries occasionally
	// cite an additional related weakness (the paper's 2,456
	// corrections include both).
	r := g.rng.Float64()
	var hintProb float64
	hintCWE := trueCWE
	switch {
	case r < g.cfg.UntypedOtherRate:
		e.CWEs = []cwe.ID{cwe.Other}
		hintProb = g.cfg.EvaluatorHintRate
	case r < g.cfg.UntypedOtherRate+g.cfg.UntypedNoInfoRate:
		e.CWEs = []cwe.ID{cwe.NoInfo}
		hintProb = 0.002
	case r < g.cfg.UntypedOtherRate+g.cfg.UntypedNoInfoRate+g.cfg.UnassignedRate:
		// No CWE field at all.
		hintProb = 0.002
	default:
		e.CWEs = []cwe.ID{trueCWE}
		hintProb = g.cfg.TypedHintRate
		// A hint on a typed entry names a second relevant weakness.
		for attempt := 0; attempt < 4; attempt++ {
			if other := g.table.sample(g.rng); other != trueCWE {
				hintCWE = other
				break
			}
		}
	}

	// Descriptions. The primary text reflects the true weakness family;
	// the optional evaluator comment leaks a CWE ID (§4.4).
	typeName, _ := g.registry.Name(trueCWE)
	e.Descriptions = []cve.Description{{
		Value: renderDescription(profile.family, typeName, product.Name, version, g.rng),
	}}
	if g.rng.Float64() < hintProb && hintCWE != cwe.Unassigned {
		name, _ := g.registry.Name(hintCWE)
		e.Descriptions = append(e.Descriptions, cve.Description{
			Source: "evaluator",
			Value:  renderEvaluatorComment(hintCWE.String(), name),
		})
	}

	// References.
	e.References = g.sampleReferences(id)
	return e
}

// hasV3Label decides whether the NVD record carries a v3 vector: all
// recent entries do, with a shrinking retroactive share before
// V3StartYear and only stray labels in the deep past (§5.2).
func (g *builder) hasV3Label(year int) bool {
	d := g.cfg.V3StartYear - year
	switch {
	case d <= 0:
		return true
	case d == 1:
		return g.rng.Float64() < 0.65
	case d == 2:
		return g.rng.Float64() < 0.50
	case d == 3:
		return g.rng.Float64() < 0.35
	default:
		return g.rng.Float64() < 0.004
	}
}

func (g *builder) sampleVendor() *Vendor {
	r := g.rng.Float64() * g.vendorCum[len(g.vendorCum)-1]
	i := sort.SearchFloat64s(g.vendorCum, r)
	if i >= len(g.universe.Vendors) {
		i = len(g.universe.Vendors) - 1
	}
	return g.universe.Vendors[i]
}

// sampleNames picks the vendor name (canonical or alias) and a product
// (canonical or alias) for one CPE entry. Canonical names dominate, so
// the paper's "most CVEs wins" consolidation rule recovers them.
func (g *builder) sampleNames(v *Vendor) (vendorName string, product *Product, productName string) {
	vendorName = v.Name
	if len(v.Aliases) > 0 && g.rng.Float64() < 0.22 {
		vendorName = v.Aliases[g.rng.Intn(len(v.Aliases))].Name
	}
	product = v.Products[g.rng.Intn(len(v.Products))]
	productName = product.Name
	if len(product.Aliases) > 0 && g.rng.Float64() < 0.30 {
		productName = product.Aliases[g.rng.Intn(len(product.Aliases))]
	}
	return vendorName, product, productName
}

// sampleReferences attaches reference URLs. The first reference is the
// primary advisory whose page carries the exact disclosure date; a
// small share of CVEs get only dead-domain references (date
// unrecoverable) or none at all, bounding the crawler's coverage as in
// §6 ("Limitations").
func (g *builder) sampleReferences(id string) []cve.Reference {
	r := g.rng.Float64()
	switch {
	case r < 0.03:
		return nil // no references
	case r < 0.08:
		// Only dead-domain references.
		n := 1 + g.rng.Intn(2)
		seen := make(map[string]bool, n)
		refs := make([]cve.Reference, 0, n)
		for i := 0; i < n; i++ {
			u := refURL(g.sampleDomain(true), id)
			if seen[u] {
				continue
			}
			seen[u] = true
			refs = append(refs, cve.Reference{URL: u})
		}
		return refs
	}
	n := 1 + g.rng.Intn(6)
	seen := make(map[string]bool, n)
	refs := make([]cve.Reference, 0, n)
	// Primary advisory on a live domain.
	primary := refURL(g.sampleDomain(false), id)
	seen[primary] = true
	refs = append(refs, cve.Reference{URL: primary, Tags: []string{"Vendor Advisory"}})
	for i := 1; i < n; i++ {
		u := refURL(domainTable[g.sampleDomainIndex()], id)
		if seen[u] {
			continue
		}
		seen[u] = true
		refs = append(refs, cve.Reference{URL: u})
	}
	return refs
}

func (g *builder) sampleDomainIndex() int {
	var total float64
	for _, d := range domainTable {
		total += d.weight
	}
	r := g.rng.Float64() * total
	for i, d := range domainTable {
		r -= d.weight
		if r <= 0 {
			return i
		}
	}
	return len(domainTable) - 1
}

// sampleDomain draws a domain, filtered to dead or live hosts.
func (g *builder) sampleDomain(dead bool) Domain {
	for {
		d := domainTable[g.sampleDomainIndex()]
		if d.Dead == dead {
			return d
		}
	}
}

// refURL builds the reference URL for a CVE on a domain. The path shape
// depends on the domain category, mirroring how real trackers,
// advisories and archives structure their pages.
func refURL(d Domain, id string) string {
	switch d.Category {
	case CategoryBugTracker:
		return "https://" + d.Host + "/bug/" + id
	case CategoryAdvisory:
		return "https://" + d.Host + "/advisory/" + id
	case CategoryMailArchive:
		return "https://" + d.Host + "/archive/" + id
	default:
		return "https://" + d.Host + "/vuln/" + id
	}
}

// RefPageDate is the date shown on the reference page for a CVE: the
// primary advisory carries the exact disclosure date, while reposts lag
// it by a deterministic URL-hash offset of up to 30 days. webcorpus
// renders pages and tests verify crawls with the same function.
func RefPageDate(url string, disclosed time.Time, primary bool) time.Time {
	if primary {
		return disclosed
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= 1099511628211
	}
	return disclosed.AddDate(0, 0, int(h%31))
}
