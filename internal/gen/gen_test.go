package gen

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

func generateSmall(t testing.TB) (*Truth, *Universe, int) {
	t.Helper()
	snap, truth, uni, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return truth, uni, snap.Len()
}

func TestGenerateCounts(t *testing.T) {
	cfg := SmallConfig()
	snap, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != cfg.NumCVEs {
		t.Errorf("entries = %d, want %d", snap.Len(), cfg.NumCVEs)
	}
	if !snap.CapturedAt.Equal(cfg.CaptureDate) {
		t.Errorf("CapturedAt = %v", snap.CapturedAt)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TinyConfig()
	a, ta, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.ID != eb.ID || !ea.Published.Equal(eb.Published) ||
			ea.Description() != eb.Description() || *ea.V2 != *eb.V2 {
			t.Fatalf("entry %d differs between runs", i)
		}
	}
	for id, d := range ta.Disclosure {
		if !tb.Disclosure[id].Equal(d) {
			t.Fatalf("truth disclosure differs for %s", id)
		}
	}
}

func TestGenerateConfigErrors(t *testing.T) {
	if _, _, _, err := Generate(Config{}); err == nil {
		t.Error("zero config should fail")
	}
	bad := SmallConfig()
	bad.FirstYear, bad.LastYear = 2018, 1998
	if _, _, _, err := Generate(bad); err == nil {
		t.Error("inverted year range should fail")
	}
}

func TestEntryInvariants(t *testing.T) {
	cfg := SmallConfig()
	snap, truth, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range snap.Entries {
		if seen[e.ID] {
			t.Fatalf("duplicate CVE ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.V2 == nil || !e.V2.Valid() {
			t.Fatalf("%s: missing or invalid v2", e.ID)
		}
		if e.V3 != nil && !e.V3.Valid() {
			t.Fatalf("%s: invalid v3", e.ID)
		}
		if len(e.Descriptions) == 0 || e.Description() == "" {
			t.Fatalf("%s: missing description", e.ID)
		}
		disclosed, ok := truth.Disclosure[e.ID]
		if !ok {
			t.Fatalf("%s: no truth disclosure", e.ID)
		}
		if e.Published.Before(disclosed) {
			t.Fatalf("%s: published %v before disclosure %v", e.ID, e.Published, disclosed)
		}
		if e.Published.After(cfg.CaptureDate) {
			t.Fatalf("%s: published after capture", e.ID)
		}
		if _, ok := truth.TrueCWE[e.ID]; !ok {
			t.Fatalf("%s: no truth CWE", e.ID)
		}
		v3, ok := truth.TrueV3[e.ID]
		if !ok || !v3.Valid() {
			t.Fatalf("%s: no valid truth v3", e.ID)
		}
		if e.V3 != nil && *e.V3 != v3 {
			t.Fatalf("%s: NVD v3 label differs from truth", e.ID)
		}
		if len(e.CPEs) == 0 || len(e.CPEs) > 3 {
			t.Fatalf("%s: %d CPEs", e.ID, len(e.CPEs))
		}
	}
}

func TestV3LabelCoverage(t *testing.T) {
	cfg := SmallConfig()
	snap, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var withV3, total int
	perYearOld := make(map[int]int)
	for _, e := range snap.Entries {
		total++
		if e.HasV3() {
			withV3++
			if y := e.Year(); y < cfg.V3StartYear-3 {
				perYearOld[y]++
			}
		}
	}
	frac := float64(withV3) / float64(total)
	// Paper: ≈35% of CVEs carry v3.
	if frac < 0.25 || frac > 0.50 {
		t.Errorf("v3 coverage = %.2f, want ≈0.35", frac)
	}
	// Recent years must be fully labeled.
	for _, e := range snap.Entries {
		if e.Year() >= cfg.V3StartYear && !e.HasV3() {
			t.Fatalf("%s: recent CVE without v3", e.ID)
		}
	}
	// Deep-past years have only stray labels.
	for y, n := range perYearOld {
		if n > 5 {
			t.Errorf("year %d has %d retroactive v3 labels, want few", y, n)
		}
	}
}

func TestLagDistributionShape(t *testing.T) {
	cfg := SmallConfig()
	snap, truth, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var zero, within6, total int
	for _, e := range snap.Entries {
		lag := truth.LagDays(e.ID, e.Published)
		if lag < 0 {
			t.Fatalf("%s: negative lag", e.ID)
		}
		total++
		if lag == 0 {
			zero++
		}
		if lag <= 6 {
			within6++
		}
	}
	zf := float64(zero) / float64(total)
	wf := float64(within6) / float64(total)
	// Fig 1: ≈38% zero-lag, ≈70% within 6 days. Injection targets are
	// looser because the NYE artifact adds long lags.
	if zf < 0.25 || zf > 0.55 {
		t.Errorf("zero-lag fraction = %.2f, want ≈0.38", zf)
	}
	if wf < 0.55 || wf > 0.85 {
		t.Errorf("≤6-day fraction = %.2f, want ≈0.70", wf)
	}
}

func TestNYEArtifactPresent(t *testing.T) {
	snap, _, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	nye2004 := 0
	year2004 := 0
	for _, e := range snap.Entries {
		if e.Year() != 2004 {
			continue
		}
		year2004++
		if e.Published.Month() == time.December && e.Published.Day() == 31 {
			nye2004++
		}
	}
	if year2004 == 0 {
		t.Skip("no 2004 CVEs at this scale")
	}
	frac := float64(nye2004) / float64(year2004)
	if frac < 0.30 || frac > 0.60 {
		t.Errorf("2004 NYE backfill = %.2f of year, want ≈0.45", frac)
	}
}

func TestSeverityUpwardSkew(t *testing.T) {
	// Table 4 shape: no Low→Critical, no High→Low; Medium splits toward
	// High; High splits between High and Critical.
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	trans := make(map[[2]cvss.Severity]int)
	totals := make(map[cvss.Severity]int)
	for _, e := range snap.Entries {
		v2sev := e.V2.Severity()
		v3 := truth.TrueV3[e.ID]
		trans[[2]cvss.Severity{v2sev, v3.Severity()}]++
		totals[v2sev]++
	}
	if n := trans[[2]cvss.Severity{cvss.SeverityLow, cvss.SeverityCritical}]; n > 0 {
		t.Errorf("Low→Critical transitions = %d, want 0", n)
	}
	if n := trans[[2]cvss.Severity{cvss.SeverityHigh, cvss.SeverityLow}]; n > totals[cvss.SeverityHigh]/100 {
		t.Errorf("High→Low transitions = %d, want ≈0", n)
	}
	// High → Critical should be a large share (paper: 47%).
	hc := float64(trans[[2]cvss.Severity{cvss.SeverityHigh, cvss.SeverityCritical}])
	if tot := totals[cvss.SeverityHigh]; tot > 0 {
		if share := hc / float64(tot); share < 0.25 || share > 0.75 {
			t.Errorf("High→Critical share = %.2f, want ≈0.47", share)
		}
	}
	// Medium → High should be substantial (paper: 49%).
	mh := float64(trans[[2]cvss.Severity{cvss.SeverityMedium, cvss.SeverityHigh}])
	if tot := totals[cvss.SeverityMedium]; tot > 0 {
		if share := mh / float64(tot); share < 0.25 || share > 0.75 {
			t.Errorf("Medium→High share = %.2f, want ≈0.49", share)
		}
	}
}

func TestVendorAliasInjection(t *testing.T) {
	truth, uni, _ := generateSmall(t)
	if uni.VendorAliasCount() == 0 {
		t.Fatal("no vendor aliases injected")
	}
	if len(truth.VendorCanonical) != uni.VendorAliasCount() {
		t.Errorf("truth has %d aliases, universe has %d",
			len(truth.VendorCanonical), uni.VendorAliasCount())
	}
	// Every alias maps to an existing canonical vendor and has a pattern.
	canon := make(map[string]bool)
	for _, v := range uni.Vendors {
		canon[v.Name] = true
	}
	for alias, c := range truth.VendorCanonical {
		if !canon[c] {
			t.Errorf("alias %q maps to unknown vendor %q", alias, c)
		}
		if truth.VendorPattern[alias] == "" {
			t.Errorf("alias %q has no pattern", alias)
		}
		if alias == c {
			t.Errorf("alias %q equals canonical", alias)
		}
	}
}

func TestAliasedVendorsAppearInSnapshot(t *testing.T) {
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[string]int)
	for _, e := range snap.Entries {
		for _, v := range e.Vendors() {
			used[v]++
		}
	}
	var aliasUsed int
	for alias := range truth.VendorCanonical {
		if used[alias] > 0 {
			aliasUsed++
		}
	}
	if aliasUsed == 0 {
		t.Fatal("no injected alias appears in any CVE")
	}
	// Canonical names must dominate their aliases (consolidation rule).
	misordered := 0
	checked := 0
	for alias, c := range truth.VendorCanonical {
		if used[alias] == 0 {
			continue
		}
		checked++
		if used[alias] > used[c] {
			misordered++
		}
	}
	if checked > 0 && float64(misordered)/float64(checked) > 0.25 {
		t.Errorf("%d/%d aliases outnumber their canonical name", misordered, checked)
	}
}

func TestCWEFieldQualityMix(t *testing.T) {
	cfg := SmallConfig()
	snap, _, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var other, noinfo, unassigned, typed int
	for _, e := range snap.Entries {
		switch {
		case len(e.CWEs) == 0:
			unassigned++
		case e.CWEs[0] == cwe.Other:
			other++
		case e.CWEs[0] == cwe.NoInfo:
			noinfo++
		default:
			typed++
		}
	}
	total := float64(snap.Len())
	if f := float64(other) / total; f < 0.18 || f > 0.32 {
		t.Errorf("NVD-CWE-Other share = %.3f, want ≈0.245", f)
	}
	if f := float64(noinfo) / total; f < 0.04 || f > 0.11 {
		t.Errorf("noinfo share = %.3f, want ≈0.071", f)
	}
	if f := float64(unassigned) / total; f < 0.004 || f > 0.03 {
		t.Errorf("unassigned share = %.3f, want ≈0.012", f)
	}
}

func TestEvaluatorHintsRecoverable(t *testing.T) {
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hints, correct, typedHints int
	for _, e := range snap.Entries {
		ids := cwe.Extract(e.AllDescriptionText())
		if len(ids) == 0 {
			continue
		}
		if e.Typed() {
			// Typed entries cite an additional related weakness, not
			// necessarily the primary one.
			typedHints++
			continue
		}
		hints++
		if ids[0] == truth.TrueCWE[e.ID] {
			correct++
		}
	}
	if hints == 0 {
		t.Fatal("no evaluator hints injected")
	}
	if correct != hints {
		t.Errorf("untyped hints correct %d/%d, want all (paper found no erroneous cases)", correct, hints)
	}
	if typedHints == 0 {
		t.Error("no typed entries with additional-label hints")
	}
}

func TestDescriptionsReflectTrueFamily(t *testing.T) {
	// SQL injection CVEs must (usually) mention SQL; XSS CVEs must
	// mention scripting — the signal the k-NN classifier learns.
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sqlTotal, sqlMention int
	for _, e := range snap.Entries {
		if truth.TrueCWE[e.ID] != cwe.ID(89) {
			continue
		}
		sqlTotal++
		if strings.Contains(strings.ToLower(e.Description()), "sql") {
			sqlMention++
		}
	}
	if sqlTotal == 0 {
		t.Skip("no SQLI CVEs at this scale")
	}
	frac := float64(sqlMention) / float64(sqlTotal)
	// noiseRate of descriptions are type-free by design.
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("SQLI descriptions mentioning sql = %.2f, want ≈0.70", frac)
	}
}

func TestReferences(t *testing.T) {
	snap, _, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hostSet := make(map[string]bool)
	for _, d := range Domains() {
		hostSet[d.Host] = true
	}
	var withRefs int
	for _, e := range snap.Entries {
		if len(e.References) > 0 {
			withRefs++
		}
		for _, r := range e.References {
			if !strings.HasPrefix(r.URL, "https://") {
				t.Fatalf("%s: bad ref URL %q", e.ID, r.URL)
			}
			if !strings.Contains(r.URL, e.ID) {
				t.Fatalf("%s: ref URL %q missing CVE id", e.ID, r.URL)
			}
			host := strings.TrimPrefix(r.URL, "https://")
			host = host[:strings.Index(host, "/")]
			if !hostSet[host] {
				t.Fatalf("%s: unknown host %q", e.ID, host)
			}
		}
	}
	if f := float64(withRefs) / float64(snap.Len()); f < 0.90 {
		t.Errorf("only %.2f of CVEs have references", f)
	}
}

func TestDomainsTop50Coverage(t *testing.T) {
	ds := Domains()
	if len(ds) < 55 {
		t.Fatalf("domain universe too small: %d", len(ds))
	}
	var total, top50 float64
	for i, d := range ds {
		total += d.weight
		if i < 50 {
			top50 += d.weight
		}
	}
	cov := top50 / total
	if cov < 0.80 || cov > 0.95 {
		t.Errorf("top-50 coverage = %.3f, want ≈0.85", cov)
	}
	if DeadTop50() != 14 {
		t.Errorf("dead top-50 domains = %d, want 14 (paper)", DeadTop50())
	}
}

func TestWeekdaySkew(t *testing.T) {
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var weekday, weekend int
	for _, e := range snap.Entries {
		switch truth.Disclosure[e.ID].Weekday() {
		case time.Saturday, time.Sunday:
			weekend++
		case time.Monday, time.Tuesday:
			weekday++
		}
	}
	if weekday <= weekend*2 {
		t.Errorf("Mon+Tue %d vs weekend %d: disclosure weekday skew missing", weekday, weekend)
	}
}

func TestHeadVendorsDominate(t *testing.T) {
	snap, truth, _, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, e := range snap.Entries {
		for _, v := range e.Vendors() {
			counts[truth.CanonicalVendor(v)]++
		}
	}
	if counts["microsoft"] < counts["axis"] {
		t.Errorf("microsoft (%d) should outnumber axis (%d) by CVE count",
			counts["microsoft"], counts["axis"])
	}
}

func TestUniverseProductShares(t *testing.T) {
	_, uni, _ := generateSmall(t)
	byName := make(map[string]*Vendor)
	for _, v := range uni.Vendors {
		byName[v.Name] = v
	}
	hp, ms := byName["hp"], byName["microsoft"]
	if hp == nil || ms == nil {
		t.Fatal("head vendors missing")
	}
	if len(hp.Products) <= len(ms.Products) {
		t.Errorf("hp products (%d) should exceed microsoft products (%d) — Table 11",
			len(hp.Products), len(ms.Products))
	}
}

func TestRefPageDate(t *testing.T) {
	disc := time.Date(2011, 2, 7, 0, 0, 0, 0, time.UTC)
	if got := RefPageDate("https://x/vuln/CVE-2011-0700", disc, true); !got.Equal(disc) {
		t.Errorf("primary ref date = %v, want disclosure", got)
	}
	d1 := RefPageDate("https://a/vuln/CVE-2011-0700", disc, false)
	d2 := RefPageDate("https://a/vuln/CVE-2011-0700", disc, false)
	if !d1.Equal(d2) {
		t.Error("RefPageDate must be deterministic")
	}
	if d1.Before(disc) || d1.After(disc.AddDate(0, 0, 31)) {
		t.Errorf("repost date %v outside [disclosure, +31d]", d1)
	}
}

func TestProductAliasPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		alias := makeProductAlias("internet_explorer", rng)
		if alias != "" {
			seen[alias] = true
		}
	}
	if !seen["internet-explorer"] && !seen["internet explorer"] {
		t.Error("separator variant never generated")
	}
	if !seen["ie"] {
		t.Error("abbreviation never generated")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
