package report

import (
	"strings"
	"testing"
	"time"

	"nvdclean/internal/analysis"
	"nvdclean/internal/cvss"
	"nvdclean/internal/naming"
	"nvdclean/internal/otherdb"
	"nvdclean/internal/predict"
	"nvdclean/internal/stats"
)

func render(t *testing.T, f func(*strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestFig1(t *testing.T) {
	out := render(t, func(b *strings.Builder) error {
		return Fig1(b, []float64{0, 0, 0, 1, 5, 10, 400})
	})
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "samples: 7") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "42.9%") { // 3/7 at lag 0
		t.Errorf("zero-lag percentage missing:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	tbl := &naming.Table2{}
	tbl.Possible.Tokens = naming.Table2Cell{Pairs: 260, Names: 524}
	tbl.Confirmed.Tokens = naming.Table2Cell{Pairs: 260, Names: 524}
	out := render(t, func(b *strings.Builder) error { return Table2(b, tbl) })
	if !strings.Contains(out, "260 (524)") {
		t.Errorf("tokens cell missing:\n%s", out)
	}
	if !strings.Contains(out, "Possible") || !strings.Contains(out, "Confirmed") {
		t.Error("rows missing")
	}
}

func TestTable3(t *testing.T) {
	rows := []Table3Row{
		{Database: "NVD", VendorNames: 18991, VendorImpacted: 1835, VendorConsolidated: 871,
			ProductNames: 46685, ProductImpacted: 3101, ProductVendors: 700, HasProducts: true},
		OtherDBRow(otherdb.Stats{Kind: otherdb.SecurityFocus, Names: 24760, Impacted: 2094, Consolidated: 878}),
	}
	out := render(t, func(b *strings.Builder) error { return Table3(b, rows) })
	if !strings.Contains(out, "NVD") || !strings.Contains(out, "SF") {
		t.Errorf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "46685") {
		t.Error("product counts missing")
	}
	// SF row has no product columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "SF") && !strings.Contains(line, "-") {
			t.Errorf("SF row should have dashes: %q", line)
		}
	}
}

func TestTransition(t *testing.T) {
	m := stats.NewConfusion([]string{"L", "M", "H", "C"})
	m.Add(0, 1)
	m.Add(1, 2)
	m.Add(2, 3)
	out := render(t, func(b *strings.Builder) error { return Transition(b, "Table 4: test", m) })
	if !strings.Contains(out, "Table 4") {
		t.Error("title missing")
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("expected header + 3 rows:\n%s", out)
	}
	if !strings.Contains(out, "100.00") {
		t.Errorf("row percentage missing:\n%s", out)
	}
}

func TestTable5And7(t *testing.T) {
	evals := []*predict.Evaluation{
		{Model: predict.ModelLR, AE: 0.73, AER: 0.1216, Accuracy: 0.8314,
			ByV2Class: map[cvss.Severity]float64{cvss.SeverityLow: 0.8258, cvss.SeverityMedium: 0.7931, cvss.SeverityHigh: 0.9114}},
		{Model: predict.ModelCNN, AE: 0.54, AER: 0.0962, Accuracy: 0.8629,
			ByV2Class: map[cvss.Severity]float64{cvss.SeverityLow: 0.8284, cvss.SeverityMedium: 0.8331, cvss.SeverityHigh: 0.9355}},
	}
	out5 := render(t, func(b *strings.Builder) error { return Table5(b, evals) })
	if !strings.Contains(out5, "12.16") || !strings.Contains(out5, "0.54") {
		t.Errorf("Table 5 values missing:\n%s", out5)
	}
	out7 := render(t, func(b *strings.Builder) error { return Table7(b, evals) })
	if !strings.Contains(out7, "86.29") || !strings.Contains(out7, "93.55") {
		t.Errorf("Table 7 values missing:\n%s", out7)
	}
}

func TestTable8AndFig2(t *testing.T) {
	mk := func(y, m, d, count int, share float64) analysis.DateCount {
		return analysis.DateCount{
			Date:      time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC),
			Count:     count,
			YearShare: share,
		}
	}
	pub := []analysis.DateCount{mk(2004, 12, 31, 1098, 0.448)}
	edd := []analysis.DateCount{mk(2014, 9, 9, 384, 0.051), mk(2018, 7, 9, 359, 0.024)}
	out := render(t, func(b *strings.Builder) error { return Table8(b, pub, edd) })
	if !strings.Contains(out, "12/31/04") || !strings.Contains(out, "09/09/14") {
		t.Errorf("dates missing:\n%s", out)
	}
	if !strings.Contains(out, "44.8") {
		t.Errorf("year share missing:\n%s", out)
	}
	var disc, published [7]int
	disc[1] = 100
	published[5] = 50
	out2 := render(t, func(b *strings.Builder) error { return Fig2(b, disc, published) })
	if !strings.Contains(out2, "Mon") || !strings.Contains(out2, "100") {
		t.Errorf("Fig2 output:\n%s", out2)
	}
}

func TestTable9(t *testing.T) {
	v2 := analysis.SeverityDist{cvss.SeverityLow: 0.0825, cvss.SeverityMedium: 0.5483, cvss.SeverityHigh: 0.3692}
	pv3 := analysis.SeverityDist{cvss.SeverityLow: 0.0162, cvss.SeverityMedium: 0.383, cvss.SeverityHigh: 0.4448, cvss.SeverityCritical: 0.156}
	out := render(t, func(b *strings.Builder) error { return Table9(b, v2, pv3) })
	if !strings.Contains(out, "N.A.") {
		t.Error("v2 Critical must print N.A.")
	}
	if !strings.Contains(out, "15.60") {
		t.Errorf("pv3 critical share missing:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	yearly := map[int]map[analysis.Scoring]analysis.SeverityDist{
		2005: {
			analysis.ScoreV2:  {cvss.SeverityMedium: 1},
			analysis.ScorePV3: {cvss.SeverityHigh: 1},
		},
	}
	out := render(t, func(b *strings.Builder) error { return Fig3(b, yearly) })
	if !strings.Contains(out, "2005") || !strings.Contains(out, "PV3") {
		t.Errorf("Fig3 output:\n%s", out)
	}
	// Missing V3 renders as dashes.
	if !strings.Contains(out, "-") {
		t.Error("missing scoring should render dashes")
	}
}

func TestTable10(t *testing.T) {
	cols := map[string][]analysis.TypeCount{
		"v2 High":      {{ID: 119, Count: 6935}, {ID: 89, Count: 4115}},
		"pv3 Critical": {{ID: 89, Count: 3420}},
	}
	out := render(t, func(b *strings.Builder) error { return Table10(b, cols) })
	if !strings.Contains(out, "Buffer Overflow") || !strings.Contains(out, "SQL Injection") {
		t.Errorf("short names missing:\n%s", out)
	}
	if !strings.Contains(out, "6935") {
		t.Error("counts missing")
	}
}

func TestTable11(t *testing.T) {
	after := []analysis.VendorCount{{Vendor: "oracle", Count: 5650, Share: 0.0527}}
	before := []analysis.VendorCount{{Vendor: "oracle", Count: 5526, Share: 0.0515}}
	prodA := []analysis.VendorCount{{Vendor: "hp", Count: 3067, Share: 0.0673}}
	prodB := []analysis.VendorCount{{Vendor: "hp", Count: 3083, Share: 0.066}}
	out := render(t, func(b *strings.Builder) error { return Table11(b, after, before, prodA, prodB) })
	for _, want := range []string{"oracle", "5650", "5526", "hp", "3067", "3083"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable12(t *testing.T) {
	v2 := analysis.MislabeledSeverity{
		Vendor:  map[cvss.Severity]int{cvss.SeverityMedium: 2033, cvss.SeverityHigh: 1206},
		Product: map[cvss.Severity]int{cvss.SeverityMedium: 196},
	}
	pv3 := analysis.MislabeledSeverity{
		Vendor:  map[cvss.Severity]int{cvss.SeverityCritical: 919},
		Product: map[cvss.Severity]int{cvss.SeverityCritical: 68},
	}
	out := render(t, func(b *strings.Builder) error { return Table12(b, v2, pv3) })
	if !strings.Contains(out, "2033") || !strings.Contains(out, "919") {
		t.Errorf("values missing:\n%s", out)
	}
	if !strings.Contains(out, "NA") {
		t.Error("v2 Critical must print NA")
	}
}

func TestFig4(t *testing.T) {
	avg := map[cvss.Severity]float64{
		cvss.SeverityLow: 47.6, cvss.SeverityMedium: 55.0,
		cvss.SeverityHigh: 60.2, cvss.SeverityCritical: 66.8,
	}
	out := render(t, func(b *strings.Builder) error { return Fig4(b, avg) })
	if !strings.Contains(out, "47.6") || !strings.Contains(out, "66.8") {
		t.Errorf("averages missing:\n%s", out)
	}
}

func TestFig5(t *testing.T) {
	data := [][]float64{{1, 0, 0}, {2, 0, 0}, {3, 1, 0}, {4, 1, 0}}
	p, err := stats.FitPCA(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.TransformAll(data)
	if err != nil {
		t.Fatal(err)
	}
	labels := []cvss.Severity{cvss.SeverityLow, cvss.SeverityLow, cvss.SeverityHigh, cvss.SeverityHigh}
	out := render(t, func(b *strings.Builder) error { return Fig5(b, p, proj, labels) })
	if !strings.Contains(out, "explained variance") || !strings.Contains(out, "centroid") {
		t.Errorf("Fig5 output:\n%s", out)
	}
}

func TestTable16(t *testing.T) {
	cases := []analysis.CaseStudy{
		{ID: "CVE-2008-4019", Vendor: "microsft", Severity: cvss.SeverityHigh,
			Description: strings.Repeat("remote code execution ", 10)},
	}
	out := render(t, func(b *strings.Builder) error { return Table16(b, cases) })
	if !strings.Contains(out, "microsft") {
		t.Errorf("vendor missing:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Error("long description should be truncated")
	}
}

func TestCrawlSummary(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return CrawlSummary(b, 100, 15, 10, 70, 68) })
	if !strings.Contains(out, "URLs considered:   100") {
		t.Errorf("summary:\n%s", out)
	}
}
