// Package report renders every table and figure of the paper as
// aligned plain text, consuming the outputs of the analysis, naming,
// predict and crawler packages. cmd/nvdreport and the benchmark harness
// print these to reproduce the evaluation section.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"nvdclean/internal/analysis"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/naming"
	"nvdclean/internal/otherdb"
	"nvdclean/internal/predict"
	"nvdclean/internal/stats"
)

// bands is the row/column order of every severity table.
var bands = []cvss.Severity{
	cvss.SeverityLow, cvss.SeverityMedium, cvss.SeverityHigh, cvss.SeverityCritical,
}

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Fig1 prints the CDF of lag times at the paper's reference points.
func Fig1(w io.Writer, lags []float64) error {
	e := stats.NewECDF(lags)
	fmt.Fprintln(w, "Figure 1: CDF of vulnerability lag times")
	fmt.Fprintf(w, "  samples: %d\n", e.Len())
	for _, x := range []float64{0, 1, 2, 4, 6, 7, 14, 30, 60, 100, 200, 400, 800, 1600, 2400} {
		fmt.Fprintf(w, "  lag <= %5.0f days: %5.1f%%\n", x, 100*e.At(x))
	}
	return nil
}

// Table2 prints the vendor inconsistency pattern taxonomy.
func Table2(w io.Writer, t *naming.Table2) error {
	fmt.Fprintln(w, "Table 2: Common inconsistency patterns in vendor naming")
	tab := tw(w)
	fmt.Fprintln(tab, "Category\tTokens\tLCS>=3 #MP=0\t#MP=1\t#MP>1\tPref\tPaV\tLCS<3 #MP=0\t#MP=1\t#MP>1\tPref\tPaV")
	row := func(name string, r *naming.Table2Row) {
		fmt.Fprintf(tab, "%s\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\t%d (%d)\n",
			name,
			r.Tokens.Pairs, r.Tokens.Names,
			r.LCSGE3.MP0.Pairs, r.LCSGE3.MP0.Names,
			r.LCSGE3.MP1.Pairs, r.LCSGE3.MP1.Names,
			r.LCSGE3.MPMany.Pairs, r.LCSGE3.MPMany.Names,
			r.LCSGE3.Pref.Pairs, r.LCSGE3.Pref.Names,
			r.LCSGE3.PaV.Pairs, r.LCSGE3.PaV.Names,
			r.LCSLT3.MP0.Pairs, r.LCSLT3.MP0.Names,
			r.LCSLT3.MP1.Pairs, r.LCSLT3.MP1.Names,
			r.LCSLT3.MPMany.Pairs, r.LCSLT3.MPMany.Names,
			r.LCSLT3.Pref.Pairs, r.LCSLT3.Pref.Names,
			r.LCSLT3.PaV.Pairs, r.LCSLT3.PaV.Names)
	}
	row("Possible", &t.Possible)
	row("Confirmed", &t.Confirmed)
	return tab.Flush()
}

// Table3Row is one database's vendor/product inconsistency summary.
type Table3Row struct {
	Database string
	// Vendor columns.
	VendorNames, VendorImpacted, VendorConsolidated int
	// Product columns (NVD only; negative means not investigated).
	ProductNames, ProductImpacted, ProductVendors int
	HasProducts                                   bool
}

// Table3 prints the cross-database inconsistency summary.
func Table3(w io.Writer, rows []Table3Row) error {
	fmt.Fprintln(w, "Table 3: Vendor and product name inconsistencies")
	tab := tw(w)
	fmt.Fprintln(tab, "Database\tVendor #\t#imp.\t#con.\tProduct #\t#imp.\t#ven.")
	for _, r := range rows {
		if r.HasProducts {
			fmt.Fprintf(tab, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n", r.Database,
				r.VendorNames, r.VendorImpacted, r.VendorConsolidated,
				r.ProductNames, r.ProductImpacted, r.ProductVendors)
		} else {
			fmt.Fprintf(tab, "%s\t%d\t%d\t%d\t-\t-\t-\n", r.Database,
				r.VendorNames, r.VendorImpacted, r.VendorConsolidated)
		}
	}
	return tab.Flush()
}

// OtherDBRow converts an otherdb result to a Table 3 row.
func OtherDBRow(s otherdb.Stats) Table3Row {
	return Table3Row{
		Database:           s.Kind.String(),
		VendorNames:        s.Names,
		VendorImpacted:     s.Impacted,
		VendorConsolidated: s.Consolidated,
	}
}

// Transition prints a v2→v3 severity matrix in the layout of Tables 4,
// 6, 13, 14 and 15.
func Transition(w io.Writer, title string, m *stats.Confusion) error {
	fmt.Fprintln(w, title)
	tab := tw(w)
	fmt.Fprintln(tab, "v2\\v3\tL #\t%\tM #\t%\tH #\t%\tC #\t%")
	names := m.Names()
	for row := 0; row < 3; row++ { // v2 has no Critical row
		fmt.Fprintf(tab, "%s", names[row])
		for col := 0; col < 4; col++ {
			fmt.Fprintf(tab, "\t%d\t%.2f", m.Count(row, col), m.RowPercent(row, col))
		}
		fmt.Fprintln(tab)
	}
	return tab.Flush()
}

// Table5 prints model errors (AE, AER).
func Table5(w io.Writer, evals []*predict.Evaluation) error {
	fmt.Fprintln(w, "Table 5: Prediction results: Average error (AE) and AE Rate (AER)")
	tab := tw(w)
	fmt.Fprint(tab, "Algorithm")
	for _, ev := range evals {
		fmt.Fprintf(tab, "\t%s", ev.Model)
	}
	fmt.Fprint(tab, "\nAER (%)")
	for _, ev := range evals {
		fmt.Fprintf(tab, "\t%.2f", 100*ev.AER)
	}
	fmt.Fprint(tab, "\nAE")
	for _, ev := range evals {
		fmt.Fprintf(tab, "\t%.2f", ev.AE)
	}
	fmt.Fprintln(tab)
	return tab.Flush()
}

// Table7 prints overall and per-input-class accuracy.
func Table7(w io.Writer, evals []*predict.Evaluation) error {
	fmt.Fprintln(w, "Table 7: Prediction accuracy, overall and by input (v2) class")
	tab := tw(w)
	fmt.Fprintln(tab, "Model\tOverall (%)\tL (%)\tM (%)\tH (%)")
	for _, ev := range evals {
		fmt.Fprintf(tab, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", ev.Model,
			100*ev.Accuracy,
			100*ev.ByV2Class[cvss.SeverityLow],
			100*ev.ByV2Class[cvss.SeverityMedium],
			100*ev.ByV2Class[cvss.SeverityHigh])
	}
	return tab.Flush()
}

// Table8 prints the top dates by CVE publication and by estimated
// disclosure.
func Table8(w io.Writer, pub, edd []analysis.DateCount) error {
	fmt.Fprintln(w, "Table 8: Top dates by CVE publication vs estimated disclosure (EDD)")
	tab := tw(w)
	fmt.Fprintln(tab, "CVE Date\tDoW\t#\t%\tEDD\tDoW\t#\t%")
	n := len(pub)
	if len(edd) > n {
		n = len(edd)
	}
	for i := 0; i < n; i++ {
		if i < len(pub) {
			d := pub[i]
			fmt.Fprintf(tab, "%s\t%.3s\t%d\t%.1f", d.Date.Format("01/02/06"), d.DayOfWeek(), d.Count, 100*d.YearShare)
		} else {
			fmt.Fprint(tab, "\t\t\t")
		}
		if i < len(edd) {
			d := edd[i]
			fmt.Fprintf(tab, "\t%s\t%.3s\t%d\t%.1f\n", d.Date.Format("01/02/06"), d.DayOfWeek(), d.Count, 100*d.YearShare)
		} else {
			fmt.Fprintln(tab, "\t\t\t\t")
		}
	}
	return tab.Flush()
}

// Fig2 prints the day-of-week comparison.
func Fig2(w io.Writer, disclosure, published [7]int) error {
	fmt.Fprintln(w, "Figure 2: CVEs per day of week")
	tab := tw(w)
	fmt.Fprintln(tab, "Day\tDisclosure date\tNVD date")
	for d := time.Sunday; d <= time.Saturday; d++ {
		fmt.Fprintf(tab, "%.3s\t%d\t%d\n", d, disclosure[d], published[d])
	}
	return tab.Flush()
}

// Table9 prints severity distributions under v2 and predicted v3.
func Table9(w io.Writer, v2, pv3 analysis.SeverityDist) error {
	fmt.Fprintln(w, "Table 9: CVSS severity score distributions over all CVEs")
	tab := tw(w)
	fmt.Fprintln(tab, "Label\tv2 (%)\tPredicted v3 (%)")
	for _, b := range bands {
		v2s := "N.A."
		if b != cvss.SeverityCritical {
			v2s = fmt.Sprintf("%.2f", 100*v2[b])
		}
		fmt.Fprintf(tab, "%s\t%s\t%.2f\n", b, v2s, 100*pv3[b])
	}
	return tab.Flush()
}

// Fig3 prints per-year severity stacks for each scoring.
func Fig3(w io.Writer, yearly map[int]map[analysis.Scoring]analysis.SeverityDist) error {
	fmt.Fprintln(w, "Figure 3: CVE severity distribution by year and scoring (% L/M/H/C)")
	years := make([]int, 0, len(yearly))
	for y := range yearly {
		years = append(years, y)
	}
	sort.Ints(years)
	tab := tw(w)
	fmt.Fprintln(tab, "Year\tScoring\tL\tM\tH\tC")
	for _, y := range years {
		for _, s := range []analysis.Scoring{analysis.ScoreV2, analysis.ScoreV3, analysis.ScorePV3} {
			dist, ok := yearly[y][s]
			if !ok {
				fmt.Fprintf(tab, "%d\t%s\t-\t-\t-\t-\n", y, s)
				continue
			}
			fmt.Fprintf(tab, "%d\t%s\t%.1f\t%.1f\t%.1f\t%.1f\n", y, s,
				100*dist[cvss.SeverityLow], 100*dist[cvss.SeverityMedium],
				100*dist[cvss.SeverityHigh], 100*dist[cvss.SeverityCritical])
		}
	}
	return tab.Flush()
}

// Table10 prints top weakness types per scoring and severity band.
func Table10(w io.Writer, columns map[string][]analysis.TypeCount) error {
	fmt.Fprintln(w, "Table 10: Top vulnerability types by critical/high severity CVEs")
	keys := make([]string, 0, len(columns))
	for k := range columns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tab := tw(w)
	for _, k := range keys {
		fmt.Fprintf(tab, "%s:\n", k)
		for i, tc := range columns[k] {
			fmt.Fprintf(tab, "  %d.\t%s\t%d\n", i+1, cwe.ShortName(tc.ID), tc.Count)
		}
	}
	return tab.Flush()
}

// Table11 prints top vendors before and after name corrections.
func Table11(w io.Writer, cveAfter, cveBefore, prodAfter, prodBefore []analysis.VendorCount) error {
	fmt.Fprintln(w, "Table 11: Top vendors by CVEs and products, after and before corrections")
	tab := tw(w)
	fmt.Fprintln(tab, "Vendor (CVEs)\tafter #\t%\tbefore #\t%\t\tVendor (products)\tafter #\t%\tbefore #\t%")
	findCount := func(list []analysis.VendorCount, vendor string) (int, float64) {
		for _, v := range list {
			if v.Vendor == vendor {
				return v.Count, v.Share
			}
		}
		return 0, 0
	}
	n := len(cveAfter)
	if len(prodAfter) > n {
		n = len(prodAfter)
	}
	for i := 0; i < n; i++ {
		if i < len(cveAfter) {
			v := cveAfter[i]
			bc, bs := findCount(cveBefore, v.Vendor)
			fmt.Fprintf(tab, "%s\t%d\t%.2f\t%d\t%.2f", v.Vendor, v.Count, 100*v.Share, bc, 100*bs)
		} else {
			fmt.Fprint(tab, "\t\t\t\t")
		}
		if i < len(prodAfter) {
			v := prodAfter[i]
			bc, bs := findCount(prodBefore, v.Vendor)
			fmt.Fprintf(tab, "\t\t%s\t%d\t%.2f\t%d\t%.2f\n", v.Vendor, v.Count, 100*v.Share, bc, 100*bs)
		} else {
			fmt.Fprintln(tab, "\t\t\t\t\t")
		}
	}
	return tab.Flush()
}

// Table12 prints mislabeled-CVE severity breakdowns.
func Table12(w io.Writer, v2, pv3 analysis.MislabeledSeverity) error {
	fmt.Fprintln(w, "Table 12: CVEs with mislabeled vendors/products by severity")
	tab := tw(w)
	fmt.Fprintln(tab, "Severity\tVendor v2\tVendor pv3\tProduct v2\tProduct pv3")
	for _, b := range bands {
		v2v, v2p := "NA", "NA"
		if b != cvss.SeverityCritical {
			v2v = fmt.Sprintf("%d", v2.Vendor[b])
			v2p = fmt.Sprintf("%d", v2.Product[b])
		}
		fmt.Fprintf(tab, "%s\t%s\t%d\t%s\t%d\n", b, v2v, pv3.Vendor[b], v2p, pv3.Product[b])
	}
	return tab.Flush()
}

// Fig4 prints average lag by severity.
func Fig4(w io.Writer, avg map[cvss.Severity]float64) error {
	fmt.Fprintln(w, "Figure 4: Average lag time by v3 severity level")
	tab := tw(w)
	fmt.Fprintln(tab, "Severity\tAvg lag (days)")
	for _, b := range bands {
		if v, ok := avg[b]; ok {
			fmt.Fprintf(tab, "%s\t%.1f\n", b, v)
		}
	}
	return tab.Flush()
}

// Fig5 prints the PCA decomposition summary: explained variance per
// component and the per-v3-band centroid in component space.
func Fig5(w io.Writer, p *stats.PCA, projections [][]float64, labels []cvss.Severity) error {
	fmt.Fprintln(w, "Figure 5: PCA of v2 features by resulting v3 severity")
	for k := 0; k < p.Components(); k++ {
		fmt.Fprintf(w, "  component %d explained variance: %.4f\n", k+1, p.ExplainedVariance(k))
	}
	centroid := make(map[cvss.Severity][]float64)
	count := make(map[cvss.Severity]int)
	for i, proj := range projections {
		c := centroid[labels[i]]
		if c == nil {
			c = make([]float64, len(proj))
			centroid[labels[i]] = c
		}
		for j, v := range proj {
			c[j] += v
		}
		count[labels[i]]++
	}
	tab := tw(w)
	fmt.Fprintln(tab, "v3 band\tn\tcentroid (PC1, PC2, PC3)")
	for _, b := range bands {
		c, ok := centroid[b]
		if !ok {
			continue
		}
		n := float64(count[b])
		for len(c) < 3 {
			c = append(c, 0)
		}
		fmt.Fprintf(tab, "%s\t%d\t(%.3f, %.3f, %.3f)\n", b, count[b], c[0]/n, c[1]/n, c[2]/n)
	}
	return tab.Flush()
}

// Fig5Band prints per-v3-label centroids and dispersion for one v2
// input band's projections — the textual analogue of the paper's
// Fig 5(a)-(c) scatter plots. A large mean distance-to-centroid
// relative to the centroid spread is the "scattered" pattern the paper
// observes for v2-Low.
func Fig5Band(w io.Writer, projections [][]float64, labels []cvss.Severity) error {
	centroid := make(map[cvss.Severity][]float64)
	count := make(map[cvss.Severity]int)
	for i, p := range projections {
		c := centroid[labels[i]]
		if c == nil {
			c = make([]float64, len(p))
			centroid[labels[i]] = c
		}
		for j, v := range p {
			c[j] += v
		}
		count[labels[i]]++
	}
	for sev, c := range centroid {
		for j := range c {
			c[j] /= float64(count[sev])
		}
	}
	// Mean distance to own centroid = within-class dispersion.
	disp := make(map[cvss.Severity]float64)
	for i, p := range projections {
		c := centroid[labels[i]]
		var d2 float64
		for j := range p {
			diff := p[j] - c[j]
			d2 += diff * diff
		}
		disp[labels[i]] += math.Sqrt(d2)
	}
	tab := tw(w)
	fmt.Fprintln(tab, "v3 band\tn\tcentroid PC1\tdispersion")
	for _, b := range bands {
		n, ok := count[b]
		if !ok {
			continue
		}
		fmt.Fprintf(tab, "%s\t%d\t%.3f\t%.3f\n", b, n, centroid[b][0], disp[b]/float64(n))
	}
	return tab.Flush()
}

// Table16 prints the sampled mislabeled-vendor case studies.
func Table16(w io.Writer, cases []analysis.CaseStudy) error {
	fmt.Fprintln(w, "Table 16: Sampled CVEs with mislabeled vendors")
	tab := tw(w)
	fmt.Fprintln(tab, "CVE\tVendor\tSeverity (v2)\tDescription")
	for _, c := range cases {
		desc := c.Description
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		fmt.Fprintf(tab, "%s\t%s\t%s\t%s\n", c.ID, c.Vendor, c.Severity, desc)
	}
	return tab.Flush()
}

// CrawlSummary prints reference-crawl coverage (the §4.1 context
// numbers: URL counts, domain coverage, dead domains).
func CrawlSummary(w io.Writer, urls, skipped, dead, fetched, extracted int) error {
	fmt.Fprintln(w, "Reference crawl summary:")
	fmt.Fprintf(w, "  URLs considered:   %d\n", urls)
	fmt.Fprintf(w, "  outside top-K:     %d\n", skipped)
	fmt.Fprintf(w, "  dead-domain fails: %d\n", dead)
	fmt.Fprintf(w, "  pages fetched:     %d\n", fetched)
	fmt.Fprintf(w, "  dates extracted:   %d\n", extracted)
	return nil
}
