package webcorpus

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nvdclean/internal/gen"
)

func buildCorpus(t testing.TB) (*Corpus, *genData) {
	t.Helper()
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(snap, truth.Disclosure), &genData{snap: snap, truth: truth}
}

type genData struct {
	snap  interface{ Len() int }
	truth *gen.Truth
}

func TestCorpusIndexesAllReferences(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(snap, truth.Disclosure)
	var refs int
	for _, e := range snap.Entries {
		refs += len(e.References)
	}
	if c.NumPages() != refs {
		t.Errorf("pages = %d, references = %d", c.NumPages(), refs)
	}
}

func TestTransportServesPrimaryRefWithDisclosureDate(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(snap, truth.Disclosure)
	client := &http.Client{Transport: c.Transport()}

	var checked int
	for _, e := range snap.Entries {
		if len(e.References) == 0 {
			continue
		}
		url := e.References[0].URL
		host := strings.TrimPrefix(url, "https://")
		host = host[:strings.Index(host, "/")]
		d, ok := c.Domain(host)
		if !ok {
			t.Fatalf("unknown domain %s", host)
		}
		if d.Dead {
			continue
		}
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("Get(%s): %v", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Get(%s) = %d", url, resp.StatusCode)
		}
		disc := truth.Disclosure[e.ID]
		if !containsDate(string(body), d, disc) {
			t.Fatalf("page %s does not contain disclosure date %v:\n%s", url, disc, body)
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no live primary references checked")
	}
}

// containsDate checks the page body shows the date in the domain's
// format.
func containsDate(body string, d gen.Domain, date time.Time) bool {
	switch d.Format {
	case gen.FormatMeta:
		return strings.Contains(body, `<meta name="date" content="`+date.Format("2006-01-02")+`"`)
	case gen.FormatTable:
		return strings.Contains(body, "<td>Published:</td><td>"+date.Format("02 Jan 2006")+"</td>")
	case gen.FormatText:
		return strings.Contains(body, "Published: "+date.Format("January 2, 2006"))
	case gen.FormatISO:
		return strings.Contains(body, `<time datetime="`+date.Format("2006-01-02")+`"`)
	case gen.FormatJapanese:
		return strings.Contains(body, formatJapanese(date))
	}
	return false
}

func TestTransportDeadDomain(t *testing.T) {
	c, _ := buildCorpus(t)
	client := &http.Client{Transport: c.Transport()}
	var dead gen.Domain
	for _, d := range gen.Domains() {
		if d.Dead {
			dead = d
			break
		}
	}
	if dead.Host == "" {
		t.Fatal("no dead domain in registry")
	}
	_, err := client.Get("https://" + dead.Host + "/vuln/CVE-2010-0001")
	if err == nil {
		t.Error("dead domain fetch should fail")
	}
}

func TestTransportUnknownPage404(t *testing.T) {
	c, _ := buildCorpus(t)
	client := &http.Client{Transport: c.Transport()}
	var live gen.Domain
	for _, d := range gen.Domains() {
		if !d.Dead {
			live = d
			break
		}
	}
	resp, err := client.Get("https://" + live.Host + "/vuln/CVE-1999-99999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestTransportUnknownHost(t *testing.T) {
	c, _ := buildCorpus(t)
	client := &http.Client{Transport: c.Transport()}
	if _, err := client.Get("https://nonexistent.example.zz/vuln/CVE-2010-0001"); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestHandlerOverSocket(t *testing.T) {
	snap, truth, _, err := gen.Generate(gen.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(snap, truth.Disclosure)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Find a live reference and request it through the socket with the
	// original host in the Host header.
	for _, e := range snap.Entries {
		if len(e.References) == 0 {
			continue
		}
		url := e.References[0].URL
		host := strings.TrimPrefix(url, "https://")
		path := host[strings.Index(host, "/"):]
		host = host[:strings.Index(host, "/")]
		if d, _ := c.Domain(host); d.Dead {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = host
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("socket fetch = %d", resp.StatusCode)
		}
		if !strings.Contains(string(body), e.ID) {
			t.Fatalf("page body missing CVE id")
		}
		return
	}
	t.Fatal("no live reference found")
}

func TestRenderPageDistractors(t *testing.T) {
	d := gen.Domain{Host: "x.example.com", Category: gen.CategoryVulnDB, Format: gen.FormatTable}
	date := time.Date(2014, 4, 7, 0, 0, 0, 0, time.UTC)
	body := RenderPage(d, "CVE-2014-0160", date)
	if !strings.Contains(body, "07 Apr 2014") {
		t.Error("published date missing")
	}
	// The Updated distractor must be present and differ.
	if !strings.Contains(body, "<td>Updated:</td>") {
		t.Error("updated distractor missing")
	}
	if !strings.Contains(body, "Copyright 2015") {
		t.Error("copyright distractor missing")
	}
}

func TestFormatJapanese(t *testing.T) {
	got := formatJapanese(time.Date(2014, 4, 7, 0, 0, 0, 0, time.UTC))
	if got != "2014年04月07日" {
		t.Errorf("formatJapanese = %q", got)
	}
}

func BenchmarkRenderPage(b *testing.B) {
	d := gen.Domains()[0]
	date := time.Date(2014, 4, 7, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderPage(d, "CVE-2014-0160", date)
	}
}
