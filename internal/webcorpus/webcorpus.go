// Package webcorpus simulates the reference-URL web the paper scraped
// for disclosure dates (§4.1): for every reference URL in a snapshot it
// serves an advisory/bug/archive page whose HTML layout depends on the
// domain (five distinct page formats), embedding the page's publication
// date among realistic distractor dates. Dead domains (osvdb.org et al.)
// fail at the connection level.
//
// The corpus is exposed two ways: as an http.RoundTripper for fast,
// deterministic in-process crawling through a real *http.Client, and as
// an http.Handler for serving over a socket in examples.
package webcorpus

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/gen"
)

// Corpus is the synthetic web for one snapshot.
type Corpus struct {
	// pageDate maps full reference URL to the date its page displays.
	pageDate map[string]time.Time
	// domains indexes the domain registry by host.
	domains map[string]gen.Domain
	// rendered caches page bodies by URL: a page's HTML is a pure
	// function of its URL and date, so it renders once no matter how
	// many CVEs reference it or how many crawls hit the corpus. The
	// cache is bounded (renderCacheMax pages) so a paper-scale corpus
	// does not keep its entire HTML resident; beyond the cap, pages
	// render on demand.
	rendered     sync.Map // url -> string
	renderedSize atomic.Int64
}

// renderCacheMax bounds the rendered-page cache. At ~1 KiB per page
// this caps cache memory near 16 MiB; tiny/small corpora fit entirely.
const renderCacheMax = 16384

// New indexes every reference of the snapshot. Reference pages display
// gen.RefPageDate: the first (primary advisory) reference carries the
// exact disclosure date, later ones a deterministic repost offset.
func New(snap *cve.Snapshot, disclosure map[string]time.Time) *Corpus {
	c := &Corpus{
		pageDate: make(map[string]time.Time),
		domains:  make(map[string]gen.Domain),
	}
	for _, d := range gen.Domains() {
		c.domains[d.Host] = d
	}
	for _, e := range snap.Entries {
		disc, ok := disclosure[e.ID]
		if !ok {
			continue
		}
		for i, r := range e.References {
			d := gen.RefPageDate(r.URL, disc, i == 0)
			// A URL can be referenced by several CVEs; the page keeps
			// its earliest date.
			if prev, ok := c.pageDate[r.URL]; !ok || d.Before(prev) {
				c.pageDate[r.URL] = d
			}
		}
	}
	return c
}

// NumPages returns the number of crawlable pages.
func (c *Corpus) NumPages() int { return len(c.pageDate) }

// Domain returns the registry entry for host.
func (c *Corpus) Domain(host string) (gen.Domain, bool) {
	d, ok := c.domains[host]
	return d, ok
}

// Transport returns an http.RoundTripper that answers requests from the
// corpus in-process. Requests to dead domains fail with a synthetic
// connection error; unknown pages return 404.
func (c *Corpus) Transport() http.RoundTripper {
	return transport{c}
}

type transport struct{ c *Corpus }

// RoundTrip implements http.RoundTripper.
func (t transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	d, ok := t.c.domains[host]
	if !ok || d.Dead {
		return nil, fmt.Errorf("webcorpus: dial tcp %s:443: no route to host", host)
	}
	url := req.URL.Scheme + "://" + req.URL.Host + req.URL.Path
	date, ok := t.c.pageDate[url]
	if !ok {
		return response(req, http.StatusNotFound, "<html><body>Not Found</body></html>"), nil
	}
	return response(req, http.StatusOK, t.c.page(url, d, req.URL.Path, date)), nil
}

// page returns the rendered body for url, rendering at most once for
// cached pages and on demand past the cache bound.
func (c *Corpus) page(url string, d gen.Domain, path string, date time.Time) string {
	if body, ok := c.rendered.Load(url); ok {
		return body.(string)
	}
	body := RenderPage(d, cveIDFromPath(path), date)
	if c.renderedSize.Load() < renderCacheMax {
		if _, loaded := c.rendered.LoadOrStore(url, body); !loaded {
			c.renderedSize.Add(1)
		}
	}
	return body
}

func response(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/html; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Handler returns an http.Handler for socket-based serving. The target
// host is taken from the Host header, so a single listener can serve
// the whole corpus (point the crawler's transport at it).
func (c *Corpus) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host := r.Host
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		d, ok := c.domains[host]
		if !ok || d.Dead {
			http.Error(w, "no such host", http.StatusBadGateway)
			return
		}
		url := "https://" + host + r.URL.Path
		date, ok := c.pageDate[url]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, c.page(url, d, r.URL.Path, date))
	})
}

func cveIDFromPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RenderPage produces the HTML for one vulnerability page in the
// domain's format. Pages deliberately contain distractor dates (site
// update stamps, copyright years) so extractors must target the right
// field, as the paper's per-domain crawlers had to.
func RenderPage(d gen.Domain, cveID string, date time.Time) string {
	var b bytes.Buffer
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s - %s</title>\n", cveID, d.Host)
	if d.Format == gen.FormatMeta {
		fmt.Fprintf(&b, "<meta name=\"date\" content=%q>\n", date.Format("2006-01-02"))
	}
	// Distractor: generator/build stamp after the true date.
	fmt.Fprintf(&b, "<meta name=\"generator-build\" content=%q>\n",
		date.AddDate(1, 2, 3).Format("2006-01-02"))
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>Vulnerability report for %s</h1>\n", cveID)

	switch d.Format {
	case gen.FormatTable:
		b.WriteString("<table class=\"vulninfo\">\n")
		fmt.Fprintf(&b, "<tr><td>Bugtraq ID:</td><td>%d</td></tr>\n", 10000+len(cveID)*137)
		fmt.Fprintf(&b, "<tr><td>Published:</td><td>%s</td></tr>\n", date.Format("02 Jan 2006"))
		fmt.Fprintf(&b, "<tr><td>Updated:</td><td>%s</td></tr>\n",
			date.AddDate(0, 3, 11).Format("02 Jan 2006"))
		fmt.Fprintf(&b, "<tr><td>CVE:</td><td>%s</td></tr>\n", cveID)
		b.WriteString("</table>\n")
	case gen.FormatText:
		fmt.Fprintf(&b, "<p>Advisory for %s.</p>\n", cveID)
		fmt.Fprintf(&b, "<p>Published: %s</p>\n", date.Format("January 2, 2006"))
		fmt.Fprintf(&b, "<p>Last revised: %s</p>\n",
			date.AddDate(0, 1, 4).Format("January 2, 2006"))
	case gen.FormatISO:
		fmt.Fprintf(&b, "<p>Advisory published <time datetime=%q>%s</time>.</p>\n",
			date.Format("2006-01-02"), date.Format("Jan 2, 2006"))
		fmt.Fprintf(&b, "<p>Page generated <span class=\"gen\">%s</span>.</p>\n",
			date.AddDate(0, 6, 0).Format("2006-01-02 15:04"))
	case gen.FormatJapanese:
		fmt.Fprintf(&b, "<p>公開日: <span class=\"published\">%s</span></p>\n",
			formatJapanese(date))
		fmt.Fprintf(&b, "<p>最終更新日: %s</p>\n", formatJapanese(date.AddDate(0, 2, 9)))
	case gen.FormatMeta:
		fmt.Fprintf(&b, "<p>Tracking entry for %s, see header metadata for dates.</p>\n", cveID)
	}

	fmt.Fprintf(&b, "<div class=\"footer\">Copyright %d %s</div>\n",
		date.Year()+1, d.Host)
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// formatJapanese renders 2006年01月02日.
func formatJapanese(t time.Time) string {
	return fmt.Sprintf("%04d年%02d月%02d日", t.Year(), int(t.Month()), t.Day())
}
