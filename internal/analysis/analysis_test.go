package analysis

import (
	"testing"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/gen"
	"nvdclean/internal/naming"
	"nvdclean/internal/predict"
)

// fixture bundles the shared expensive setup: a generated snapshot and
// a backport from a quick LR model.
type fixture struct {
	snap     *cve.Snapshot
	truth    *gen.Truth
	backport *predict.Backport
}

var shared *fixture

func setup(t testing.TB) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	snap, truth, _, err := gen.Generate(gen.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := predict.BuildDataset(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := predict.Train(ds, []predict.ModelKind{predict.ModelLR}, predict.ModelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.BackportAll(snap)
	if err != nil {
		t.Fatal(err)
	}
	shared = &fixture{snap: snap, truth: truth, backport: b}
	return shared
}

func (f *fixture) disclosureDates() []time.Time {
	out := make([]time.Time, 0, f.snap.Len())
	for _, e := range f.snap.Entries {
		out = append(out, f.truth.Disclosure[e.ID])
	}
	return out
}

func TestTopDatesNYEArtifact(t *testing.T) {
	f := setup(t)
	pub := TopDates(PublishedDates(f.snap), 10)
	if len(pub) == 0 {
		t.Fatal("no top dates")
	}
	nyeInPub := false
	for _, d := range pub {
		if d.Date.Month() == time.December && d.Date.Day() == 31 {
			nyeInPub = true
			// The 2004 NYE batch accounts for a large share of its year
			// (paper: 44.8%).
			if d.Date.Year() == 2004 && d.YearShare < 0.30 {
				t.Errorf("2004 NYE share = %.2f, want > 0.30", d.YearShare)
			}
		}
	}
	if !nyeInPub {
		t.Error("New Year's Eve missing from top publication dates — the §5.1 artifact")
	}
	// Under estimated disclosure dates the artifact disappears.
	disc := TopDates(f.disclosureDates(), 10)
	for _, d := range disc {
		if d.Date.Month() == time.December && d.Date.Day() == 31 {
			t.Errorf("NYE %v appears in top disclosure dates", d.Date)
		}
	}
}

func TestTopDatesOrdering(t *testing.T) {
	f := setup(t)
	top := TopDates(PublishedDates(f.snap), 10)
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("top dates not sorted: %d > %d", top[i].Count, top[i-1].Count)
		}
	}
	if len(top) != 10 {
		t.Errorf("len = %d, want 10", len(top))
	}
}

func TestDayOfWeek(t *testing.T) {
	f := setup(t)
	disc := DayOfWeekCounts(f.disclosureDates())
	// Disclosures peak Monday/Tuesday, trough on the weekend (Fig 2).
	if disc[time.Monday] <= disc[time.Saturday] || disc[time.Tuesday] <= disc[time.Sunday] {
		t.Errorf("disclosure weekday skew missing: %v", disc)
	}
	var total int
	for _, c := range disc {
		total += c
	}
	if total != f.snap.Len() {
		t.Errorf("day-of-week total = %d, want %d", total, f.snap.Len())
	}
}

func TestSeverityDistribution(t *testing.T) {
	f := setup(t)
	v2 := SeverityDistribution(f.snap, ScoreV2, nil)
	pv3 := SeverityDistribution(f.snap, ScorePV3, f.backport)
	// Table 9: v2 majority Medium; pv3 skews toward High+Critical.
	if v2[cvss.SeverityMedium] < v2[cvss.SeverityHigh] || v2[cvss.SeverityMedium] < 0.35 {
		t.Errorf("v2 Medium share = %.2f, expected the majority band", v2[cvss.SeverityMedium])
	}
	hc := pv3[cvss.SeverityHigh] + pv3[cvss.SeverityCritical]
	if hc < v2[cvss.SeverityHigh] {
		t.Errorf("pv3 High+Critical %.2f should exceed v2 High %.2f", hc, v2[cvss.SeverityHigh])
	}
	if pv3[cvss.SeverityLow] > v2[cvss.SeverityLow] {
		t.Errorf("pv3 Low %.3f should shrink below v2 Low %.3f", pv3[cvss.SeverityLow], v2[cvss.SeverityLow])
	}
	// Distributions sum to 1.
	for name, d := range map[string]SeverityDist{"v2": v2, "pv3": pv3} {
		var sum float64
		for _, frac := range d {
			sum += frac
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s distribution sums to %v", name, sum)
		}
	}
}

func TestYearlySeverity(t *testing.T) {
	f := setup(t)
	yearly := YearlySeverity(f.snap, f.backport)
	if len(yearly) < 10 {
		t.Fatalf("only %d years", len(yearly))
	}
	cfg := gen.SmallConfig()
	var oldV3Years int
	for year, per := range yearly {
		// PV3 must cover every year that has CVEs (the paper's point:
		// the prediction affords severity analysis across the whole
		// dataset).
		if _, ok := per[ScorePV3]; !ok {
			t.Errorf("year %d lacks PV3 distribution", year)
		}
		if _, ok := per[ScoreV2]; !ok {
			t.Errorf("year %d lacks V2 distribution", year)
		}
		if _, ok := per[ScoreV3]; ok && year < cfg.V3StartYear-3 {
			oldV3Years++
		}
	}
	// Old years may have stray retroactive v3 labels but most have none
	// (§5.2: before 2013 no more than 35 CVEs a year).
	if oldV3Years > 6 {
		t.Errorf("%d deep-past years carry V3 distributions, want few", oldV3Years)
	}
	// Recent years have full V3.
	recent := yearly[cfg.V3StartYear]
	if recent == nil || recent[ScoreV3] == nil {
		t.Errorf("year %d missing V3 distribution", cfg.V3StartYear)
	}
}

func TestTopTypes(t *testing.T) {
	f := setup(t)
	v2High := TopTypes(f.snap, ScoreV2, cvss.SeverityHigh, 10, nil)
	if len(v2High) == 0 {
		t.Fatal("no v2 High types")
	}
	// Table 10: buffer overflow (CWE-119) leads the v2 High column.
	if v2High[0].ID != cwe.ID(119) {
		t.Errorf("top v2 High type = %v, want CWE-119", v2High[0].ID)
	}
	// SQL injection leads the critical column under pv3 (§5.3).
	pv3Crit := TopTypes(f.snap, ScorePV3, cvss.SeverityCritical, 10, f.backport)
	if len(pv3Crit) == 0 {
		t.Fatal("no pv3 Critical types")
	}
	inTop3 := false
	for _, tc := range pv3Crit[:min(3, len(pv3Crit))] {
		if tc.ID == cwe.ID(89) {
			inTop3 = true
		}
	}
	if !inTop3 {
		t.Errorf("CWE-89 not in top-3 pv3 Critical types: %v", pv3Crit[:min(3, len(pv3Crit))])
	}
	// Counts are descending.
	for i := 1; i < len(v2High); i++ {
		if v2High[i].Count > v2High[i-1].Count {
			t.Fatal("TopTypes not sorted")
		}
	}
}

func TestTopVendors(t *testing.T) {
	f := setup(t)
	byCVE := TopVendorsByCVE(f.snap, 10)
	if len(byCVE) != 10 {
		t.Fatalf("len = %d", len(byCVE))
	}
	// Table 11: microsoft leads by CVE count.
	if byCVE[0].Vendor != "microsoft" {
		t.Errorf("top CVE vendor = %s, want microsoft", byCVE[0].Vendor)
	}
	byProd := TopVendorsByProducts(f.snap, 10)
	// hp leads by product count.
	if byProd[0].Vendor != "hp" && byProd[1].Vendor != "hp" {
		t.Errorf("hp not in top-2 product vendors: %v %v", byProd[0], byProd[1])
	}
	// The two rankings differ (the paper notes only 4 common vendors).
	same := 0
	for _, a := range byCVE {
		for _, b := range byProd {
			if a.Vendor == b.Vendor {
				same++
			}
		}
	}
	if same == len(byCVE) {
		t.Error("CVE and product rankings are identical — expected divergence")
	}
	for _, v := range byCVE {
		if v.Share <= 0 || v.Share > 1 {
			t.Errorf("share %v out of range", v.Share)
		}
	}
}

func TestMislabeledAndCaseStudies(t *testing.T) {
	f := setup(t)
	// Apply naming fixes on a clone, recording which CVEs changed.
	clone := f.snap.Clone()
	va := naming.AnalyzeVendors(clone)
	vm := va.Consolidate(naming.HeuristicJudge{})
	vendorChanged := make(map[string]bool)
	for _, e := range clone.Entries {
		for _, n := range e.CPEs {
			if vm.Mapped(n.Vendor) {
				vendorChanged[e.ID] = true
			}
		}
	}
	pa := naming.AnalyzeProducts(clone)
	pm := pa.Consolidate(naming.HeuristicProductJudge{})
	productChanged := make(map[string]bool)
	for _, e := range clone.Entries {
		for _, n := range e.CPEs {
			if pm.Canonical(n.Vendor, n.Product) != n.Product {
				productChanged[e.ID] = true
			}
		}
	}
	if len(vendorChanged) == 0 {
		t.Fatal("no vendor-corrected CVEs")
	}

	tab := MislabeledBySeverity(f.snap, vendorChanged, productChanged, ScoreV2, nil)
	var vTotal int
	for _, c := range tab.Vendor {
		vTotal += c
	}
	if vTotal != len(vendorChanged) {
		t.Errorf("vendor mislabeled total = %d, want %d", vTotal, len(vendorChanged))
	}
	// Table 12's point: a substantial share of mislabeled CVEs are
	// high severity.
	if tab.Vendor[cvss.SeverityHigh] == 0 {
		t.Error("no high-severity mislabeled CVEs")
	}

	cases := SampleCaseStudies(f.snap, vendorChanged, 10, 42)
	if len(cases) == 0 {
		t.Fatal("no case studies")
	}
	if len(cases) > 10 {
		t.Errorf("len = %d, want ≤ 10", len(cases))
	}
	for _, c := range cases {
		if c.ID == "" || c.Description == "" || c.Vendor == "" {
			t.Errorf("incomplete case study %+v", c)
		}
		if !vendorChanged[c.ID] {
			t.Errorf("%s sampled but not vendor-corrected", c.ID)
		}
	}
	// Samples lead with High severity like Table 16.
	if cases[0].Severity < cvss.SeverityHigh {
		t.Errorf("first sample severity = %v, want High", cases[0].Severity)
	}
}

func TestAvgLagBySeverity(t *testing.T) {
	f := setup(t)
	lag := make(map[string]int, f.snap.Len())
	for _, e := range f.snap.Entries {
		lag[e.ID] = f.truth.LagDays(e.ID, e.Published)
	}
	avg := AvgLagBySeverity(f.snap, lag, ScorePV3, f.backport)
	if len(avg) < 3 {
		t.Fatalf("only %d severity bands: %v", len(avg), avg)
	}
	// Fig 4: averages are tens of days and of the same order across
	// bands ("no relationship with severity").
	for sev, days := range avg {
		if days < 5 || days > 400 {
			t.Errorf("%v: average lag %.1f days implausible", sev, days)
		}
	}
}

func TestScoringString(t *testing.T) {
	if ScoreV2.String() != "V2" || ScoreV3.String() != "V3" || ScorePV3.String() != "PV3" || Scoring(9).String() != "?" {
		t.Error("Scoring strings wrong")
	}
}

func TestSeverityOfUnknownScoring(t *testing.T) {
	if _, ok := SeverityOf(&cve.Entry{}, Scoring(9), nil); ok {
		t.Error("unknown scoring should not resolve")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkYearlySeverity(b *testing.B) {
	f := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		YearlySeverity(f.snap, f.backport)
	}
}
