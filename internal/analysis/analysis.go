// Package analysis implements the case studies of §5, each computable
// on both the original and the rectified snapshot so the "Impact of NVD
// Data Issues" comparisons reproduce: top disclosure/publication dates
// (Table 8), day-of-week distributions (Fig 2), severity distributions
// (Table 9, Fig 3), top weakness types by severity (Table 10), top
// vendors (Table 11), the severity of mislabeled-vendor CVEs
// (Table 12), lag by severity (Fig 4), and the sampled case studies of
// Table 16.
package analysis

import (
	"sort"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/predict"
)

// Scoring selects which severity labeling a breakdown uses.
type Scoring int

// The three labelings compared throughout §5.
const (
	// ScoreV2 uses the v2 base score present on every CVE.
	ScoreV2 Scoring = iota + 1
	// ScoreV3 uses the NVD-assigned v3 score where present.
	ScoreV3
	// ScorePV3 uses the v3 score where present, otherwise the
	// model-predicted ("pv3") score.
	ScorePV3
)

// String names the scoring as the paper's figures do.
func (s Scoring) String() string {
	switch s {
	case ScoreV2:
		return "V2"
	case ScoreV3:
		return "V3"
	case ScorePV3:
		return "PV3"
	default:
		return "?"
	}
}

// SeverityOf returns an entry's severity under a scoring; ok is false
// when the entry has no label under that scoring (e.g. ScoreV3 on an
// old CVE).
func SeverityOf(e *cve.Entry, s Scoring, b *predict.Backport) (cvss.Severity, bool) {
	switch s {
	case ScoreV2:
		return e.SeverityV2()
	case ScoreV3:
		return e.SeverityV3()
	case ScorePV3:
		return predict.PV3Severity(e, b)
	default:
		return 0, false
	}
}

// DateCount is one row of Table 8.
type DateCount struct {
	Date  time.Time
	Count int
	// YearShare is the date's share of that year's CVEs ("% of that
	// year's vulnerabilities reported on date").
	YearShare float64
}

// DayOfWeek returns the date's weekday, a column of Table 8.
func (d DateCount) DayOfWeek() time.Weekday { return d.Date.Weekday() }

// TopDates ranks calendar days by how many of the given per-CVE dates
// fall on them (dates are truncated to UTC days).
func TopDates(dates []time.Time, n int) []DateCount {
	dayCount := make(map[time.Time]int)
	yearCount := make(map[int]int)
	for _, d := range dates {
		day := time.Date(d.Year(), d.Month(), d.Day(), 0, 0, 0, 0, time.UTC)
		dayCount[day]++
		yearCount[day.Year()]++
	}
	out := make([]DateCount, 0, len(dayCount))
	for day, c := range dayCount {
		out = append(out, DateCount{
			Date:      day,
			Count:     c,
			YearShare: float64(c) / float64(yearCount[day.Year()]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Date.Before(out[j].Date)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// PublishedDates extracts every entry's NVD publication date.
func PublishedDates(snap *cve.Snapshot) []time.Time {
	out := make([]time.Time, len(snap.Entries))
	for i, e := range snap.Entries {
		out[i] = e.Published
	}
	return out
}

// DayOfWeekCounts buckets dates by weekday (Fig 2's series).
func DayOfWeekCounts(dates []time.Time) [7]int {
	var out [7]int
	for _, d := range dates {
		out[int(d.Weekday())]++
	}
	return out
}

// SeverityDist is a severity histogram normalized to fractions.
type SeverityDist map[cvss.Severity]float64

// SeverityDistribution computes the Table 9 distribution of CVE
// severities under a scoring, over the entries that have a label.
func SeverityDistribution(snap *cve.Snapshot, s Scoring, b *predict.Backport) SeverityDist {
	counts := make(map[cvss.Severity]int)
	total := 0
	for _, e := range snap.Entries {
		sev, ok := SeverityOf(e, s, b)
		if !ok {
			continue
		}
		counts[sev]++
		total++
	}
	dist := make(SeverityDist, len(counts))
	if total == 0 {
		return dist
	}
	for sev, c := range counts {
		dist[sev] = float64(c) / float64(total)
	}
	return dist
}

// YearlySeverity computes Fig 3: for each CVE-identifier year, the
// severity distribution under each scoring.
func YearlySeverity(snap *cve.Snapshot, b *predict.Backport) map[int]map[Scoring]SeverityDist {
	type key struct {
		year int
		s    Scoring
	}
	counts := make(map[key]map[cvss.Severity]int)
	totals := make(map[key]int)
	for _, e := range snap.Entries {
		year := e.Year()
		if year == 0 {
			continue
		}
		for _, s := range []Scoring{ScoreV2, ScoreV3, ScorePV3} {
			sev, ok := SeverityOf(e, s, b)
			if !ok {
				continue
			}
			k := key{year, s}
			if counts[k] == nil {
				counts[k] = make(map[cvss.Severity]int)
			}
			counts[k][sev]++
			totals[k]++
		}
	}
	out := make(map[int]map[Scoring]SeverityDist)
	for k, c := range counts {
		perYear := out[k.year]
		if perYear == nil {
			perYear = make(map[Scoring]SeverityDist)
			out[k.year] = perYear
		}
		dist := make(SeverityDist, len(c))
		for sev, n := range c {
			dist[sev] = float64(n) / float64(totals[k])
		}
		perYear[k.s] = dist
	}
	return out
}

// AvgLagBySeverity computes Fig 4: the mean lag (days between estimated
// disclosure and NVD publication) per severity band under a scoring.
func AvgLagBySeverity(snap *cve.Snapshot, lagDays map[string]int, s Scoring, b *predict.Backport) map[cvss.Severity]float64 {
	sum := make(map[cvss.Severity]float64)
	n := make(map[cvss.Severity]int)
	for _, e := range snap.Entries {
		lag, ok := lagDays[e.ID]
		if !ok {
			continue
		}
		sev, ok := SeverityOf(e, s, b)
		if !ok {
			continue
		}
		sum[sev] += float64(lag)
		n[sev]++
	}
	out := make(map[cvss.Severity]float64, len(sum))
	for sev, total := range sum {
		out[sev] = total / float64(n[sev])
	}
	return out
}
