package analysis

import (
	"testing"
	"time"
)

func TestNthWeekday(t *testing.T) {
	tests := []struct {
		year  int
		month time.Month
		day   time.Weekday
		n     int
		want  time.Time
	}{
		// Labor Day 2014 was September 1.
		{2014, time.September, time.Monday, 1, time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)},
		// Thanksgiving 2016 was November 24.
		{2016, time.November, time.Thursday, 4, time.Date(2016, 11, 24, 0, 0, 0, 0, time.UTC)},
		// Labor Day 2018 was September 3.
		{2018, time.September, time.Monday, 1, time.Date(2018, 9, 3, 0, 0, 0, 0, time.UTC)},
	}
	for _, tt := range tests {
		got := nthWeekday(tt.year, tt.month, tt.day, tt.n)
		if !got.Equal(tt.want) {
			t.Errorf("nthWeekday(%d, %v, %v, %d) = %v, want %v",
				tt.year, tt.month, tt.day, tt.n, got, tt.want)
		}
	}
}

func TestDaysAfterHoliday(t *testing.T) {
	tests := []struct {
		date time.Time
		want int
	}{
		// The paper's examples: 9/9/14 is 8 days after Labor Day (9/1).
		{time.Date(2014, 9, 9, 0, 0, 0, 0, time.UTC), 8},
		// 7/9/18 is 5 days after Independence Day.
		{time.Date(2018, 7, 9, 0, 0, 0, 0, time.UTC), 5},
		// 1/17/17 is 16 days after New Year's Day.
		{time.Date(2017, 1, 17, 0, 0, 0, 0, time.UTC), 16},
		// A holiday itself is 0 days after.
		{time.Date(2018, 7, 4, 0, 0, 0, 0, time.UTC), 0},
		// Early January reaches back to the prior year's Christmas? No —
		// New Year's Day is closer: 1/2 is 1 day after.
		{time.Date(2018, 1, 2, 0, 0, 0, 0, time.UTC), 1},
		// December 27 is 2 days after Christmas.
		{time.Date(2017, 12, 27, 0, 0, 0, 0, time.UTC), 2},
	}
	for _, tt := range tests {
		if got := DaysAfterHoliday(tt.date); got != tt.want {
			t.Errorf("DaysAfterHoliday(%v) = %d, want %d", tt.date.Format("2006-01-02"), got, tt.want)
		}
	}
}

func TestHolidayProximityPaperDates(t *testing.T) {
	// The paper's top-10 estimated disclosure dates (Table 8).
	mk := func(y, m, d int) DateCount {
		return DateCount{Date: time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)}
	}
	top := []DateCount{
		mk(2014, 9, 9), mk(2018, 7, 9), mk(2018, 4, 2), mk(2017, 7, 5),
		mk(2016, 1, 19), mk(2017, 7, 18), mk(2015, 7, 14), mk(2005, 5, 2),
		mk(2017, 1, 17), mk(2018, 7, 17),
	}
	after, pre := HolidayProximity(top, 21)
	// The paper observes: "several of these top dates are within a
	// couple of weeks after a US holiday" (8 of 10 within 3 weeks) and
	// "we do not notice any particular pattern of pre-holiday
	// disclosures".
	if after < 6 {
		t.Errorf("post-holiday dates = %d, want most of the top 10", after)
	}
	if pre > 1 {
		t.Errorf("pre-holiday dates = %d, want ≈0", pre)
	}
}

func TestHolidayProximityOnGenerated(t *testing.T) {
	f := setup(t)
	top := TopDates(f.disclosureDates(), 10)
	after, _ := HolidayProximity(top, 21)
	// The generator's burst events mirror the paper's post-holiday
	// clustering.
	if after == 0 {
		t.Error("no post-holiday clustering in generated top dates")
	}
}
