package analysis

import "time"

// §5.1 examines whether top disclosure dates cluster around US holidays:
// "several of these top dates are within a couple of weeks after a US
// holiday, such as Independence Day (7/9/18, 7/5/17, ...), Labor Day
// (9/9/14), and New Year's Day (1/17/17 and 1/19/16)". This file
// implements the US-holiday calendar and the proximity measure behind
// that observation.

// usHolidays returns the federal holidays observed in year that the
// paper references (fixed-date plus the floating Labor Day and
// Thanksgiving).
func usHolidays(year int) []time.Time {
	return []time.Time{
		time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC),       // New Year's Day
		time.Date(year, 7, 4, 0, 0, 0, 0, time.UTC),       // Independence Day
		nthWeekday(year, time.September, time.Monday, 1),  // Labor Day
		nthWeekday(year, time.November, time.Thursday, 4), // Thanksgiving
		time.Date(year, 12, 25, 0, 0, 0, 0, time.UTC),     // Christmas
	}
}

// nthWeekday returns the n-th weekday of a month (n starting at 1).
func nthWeekday(year int, month time.Month, day time.Weekday, n int) time.Time {
	t := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	offset := (int(day) - int(t.Weekday()) + 7) % 7
	return t.AddDate(0, 0, offset+(n-1)*7)
}

// DaysAfterHoliday returns the number of days since the most recent US
// holiday at or before date (spanning year boundaries for early
// January).
func DaysAfterHoliday(date time.Time) int {
	date = time.Date(date.Year(), date.Month(), date.Day(), 0, 0, 0, 0, time.UTC)
	best := -1
	for _, h := range append(usHolidays(date.Year()), usHolidays(date.Year()-1)...) {
		if h.After(date) {
			continue
		}
		d := int(date.Sub(h).Hours() / 24)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// HolidayProximity classifies the paper's Table 8 observation: how many
// of the given top dates fall within `within` days *after* a US holiday
// versus in the `before` days leading up to one (pre-holiday disclosure
// would hint at burying bad news; the paper finds none).
func HolidayProximity(dates []DateCount, within int) (after, preHoliday int) {
	for _, dc := range dates {
		if d := DaysAfterHoliday(dc.Date); d >= 0 && d <= within {
			after++
		}
		if daysBeforeHoliday(dc.Date) <= 3 {
			preHoliday++
		}
	}
	return after, preHoliday
}

func daysBeforeHoliday(date time.Time) int {
	date = time.Date(date.Year(), date.Month(), date.Day(), 0, 0, 0, 0, time.UTC)
	best := 1 << 30
	for _, h := range append(usHolidays(date.Year()), usHolidays(date.Year()+1)...) {
		if h.Before(date) {
			continue
		}
		if d := int(h.Sub(date).Hours() / 24); d < best {
			best = d
		}
	}
	return best
}
