package analysis

import (
	"testing"
	"time"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/predict"
)

func TestTopDatesUnbounded(t *testing.T) {
	dates := []time.Time{
		time.Date(2010, 1, 4, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 1, 4, 10, 0, 0, 0, time.UTC), // same day, later hour
		time.Date(2010, 2, 5, 0, 0, 0, 0, time.UTC),
	}
	all := TopDates(dates, 0)
	if len(all) != 2 {
		t.Fatalf("distinct days = %d, want 2", len(all))
	}
	if all[0].Count != 2 {
		t.Errorf("top count = %d, want 2 (hour truncation)", all[0].Count)
	}
	if all[0].YearShare != 1.0 {
		// 3 CVEs in 2010; the top day has 2 → 2/3.
		if diff := all[0].YearShare - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("year share = %v, want 2/3", all[0].YearShare)
		}
	}
}

func TestTopDatesEmpty(t *testing.T) {
	if got := TopDates(nil, 10); len(got) != 0 {
		t.Errorf("TopDates(nil) = %v", got)
	}
}

func TestSeverityDistributionEmpty(t *testing.T) {
	snap := &cve.Snapshot{}
	if d := SeverityDistribution(snap, ScoreV2, nil); len(d) != 0 {
		t.Errorf("empty snapshot distribution = %v", d)
	}
}

func TestSeverityDistributionScoreV3OnlyLabeled(t *testing.T) {
	// Entries without v3 labels are excluded from the V3 scoring
	// distribution (the paper's point about unrepresentative years).
	v2, err := cvss.ParseV2("AV:N/AC:L/Au:N/C:P/I:P/A:P")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := cvss.ParseV3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	if err != nil {
		t.Fatal(err)
	}
	snap := &cve.Snapshot{Entries: []*cve.Entry{
		{ID: "CVE-2016-0001", V2: &v2, V3: &v3},
		{ID: "CVE-2005-0001", V2: &v2}, // no v3 label
	}}
	d := SeverityDistribution(snap, ScoreV3, nil)
	if d[cvss.SeverityCritical] != 1.0 {
		t.Errorf("V3 distribution = %v, want Critical 100%% over the labeled subset", d)
	}
}

func TestAvgLagBySeverityNoLags(t *testing.T) {
	snap := &cve.Snapshot{Entries: []*cve.Entry{{ID: "CVE-2010-0001"}}}
	if avg := AvgLagBySeverity(snap, nil, ScoreV2, nil); len(avg) != 0 {
		t.Errorf("no lag data should give empty result: %v", avg)
	}
}

func TestMislabeledBySeverityEmptySets(t *testing.T) {
	f := setup(t)
	tab := MislabeledBySeverity(f.snap, nil, nil, ScoreV2, nil)
	for _, c := range tab.Vendor {
		if c != 0 {
			t.Error("no changed CVEs should give zero counts")
		}
	}
}

func TestSampleCaseStudiesDeterministic(t *testing.T) {
	f := setup(t)
	changed := map[string]bool{}
	for i, e := range f.snap.Entries {
		if i%7 == 0 {
			changed[e.ID] = true
		}
	}
	a := SampleCaseStudies(f.snap, changed, 5, 42)
	b := SampleCaseStudies(f.snap, changed, 5, 42)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("non-deterministic sample")
		}
	}
	c := SampleCaseStudies(f.snap, changed, 5, 43)
	same := true
	for i := range a {
		if i < len(c) && a[i].ID != c[i].ID {
			same = false
		}
	}
	if same && len(a) > 2 {
		t.Log("warning: different seeds gave identical samples (possible but unlikely)")
	}
}

func TestTopTypesExcludesMeta(t *testing.T) {
	f := setup(t)
	for _, tc := range TopTypes(f.snap, ScoreV2, cvss.SeverityHigh, 0, nil) {
		if tc.ID.IsMeta() {
			t.Fatalf("meta CWE %v in top types", tc.ID)
		}
	}
}

func TestPV3SeverityWithoutBackport(t *testing.T) {
	v2, err := cvss.ParseV2("AV:N/AC:L/Au:N/C:P/I:P/A:P")
	if err != nil {
		t.Fatal(err)
	}
	e := &cve.Entry{ID: "CVE-2005-0001", V2: &v2}
	if _, ok := predict.PV3Severity(e, nil); ok {
		t.Error("pv3 without backport or label should be absent")
	}
	if _, ok := SeverityOf(e, ScorePV3, &predict.Backport{Scores: map[string]float64{}}); ok {
		t.Error("pv3 with empty backport should be absent")
	}
}
