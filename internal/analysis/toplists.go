package analysis

import (
	"math/rand"
	"sort"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/predict"
)

// TypeCount is one row of Table 10: a weakness type with its number of
// CVEs at a severity band.
type TypeCount struct {
	ID    cwe.ID
	Count int
}

// TopTypes ranks CWE types by the number of CVEs whose severity under
// scoring s equals band (Table 10 uses High and Critical).
func TopTypes(snap *cve.Snapshot, s Scoring, band cvss.Severity, n int, b *predict.Backport) []TypeCount {
	counts := make(map[cwe.ID]int)
	for _, e := range snap.Entries {
		sev, ok := SeverityOf(e, s, b)
		if !ok || sev != band {
			continue
		}
		seen := make(map[cwe.ID]struct{}, len(e.CWEs))
		for _, id := range e.CWEs {
			if id.IsMeta() {
				continue
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			counts[id]++
		}
	}
	out := make([]TypeCount, 0, len(counts))
	for id, c := range counts {
		out = append(out, TypeCount{ID: id, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// VendorCount is one row of Table 11.
type VendorCount struct {
	Vendor string
	Count  int
	// Share is the count as a fraction of all CVEs (or products).
	Share float64
}

// TopVendorsByCVE ranks vendors by associated CVEs (left half of
// Table 11).
func TopVendorsByCVE(snap *cve.Snapshot, n int) []VendorCount {
	counts := snap.VendorCVECount()
	return rank(counts, n, float64(snap.Len()))
}

// TopVendorsByProducts ranks vendors by the number of distinct affected
// products (right half of Table 11).
func TopVendorsByProducts(snap *cve.Snapshot, n int) []VendorCount {
	products := snap.VendorProducts()
	counts := make(map[string]int, len(products))
	total := 0
	for v, set := range products {
		counts[v] = len(set)
		total += len(set)
	}
	return rank(counts, n, float64(total))
}

func rank(counts map[string]int, n int, total float64) []VendorCount {
	out := make([]VendorCount, 0, len(counts))
	for v, c := range counts {
		share := 0.0
		if total > 0 {
			share = float64(c) / total
		}
		out = append(out, VendorCount{Vendor: v, Count: c, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Vendor < out[j].Vendor
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MislabeledSeverity is Table 12: the severity breakdown of CVEs whose
// vendor or product name was corrected.
type MislabeledSeverity struct {
	// Vendor[sev] counts CVEs with a corrected vendor at severity sev;
	// Product likewise.
	Vendor, Product map[cvss.Severity]int
}

// MislabeledBySeverity classifies every CVE touched by the vendor or
// product corrections by its severity under scoring s. vendorChanged
// and productChanged report whether a given entry was rewritten (the
// pipeline records these sets while applying maps).
func MislabeledBySeverity(snap *cve.Snapshot, vendorChanged, productChanged map[string]bool, s Scoring, b *predict.Backport) MislabeledSeverity {
	out := MislabeledSeverity{
		Vendor:  make(map[cvss.Severity]int),
		Product: make(map[cvss.Severity]int),
	}
	for _, e := range snap.Entries {
		sev, ok := SeverityOf(e, s, b)
		if !ok {
			continue
		}
		if vendorChanged[e.ID] {
			out.Vendor[sev]++
		}
		if productChanged[e.ID] {
			out.Product[sev]++
		}
	}
	return out
}

// CaseStudy is one row of Table 16: a sampled CVE whose vendor was
// corrected.
type CaseStudy struct {
	ID string
	// Vendor is the (inconsistent) vendor name as originally recorded.
	Vendor string
	// Severity is the v2 band.
	Severity cvss.Severity
	// Description is the primary free-form text.
	Description string
}

// SampleCaseStudies draws n deterministic samples from the CVEs whose
// vendor was corrected, preferring high-severity ones as the paper's
// Table 16 does.
func SampleCaseStudies(orig *cve.Snapshot, vendorChanged map[string]bool, n int, seed int64) []CaseStudy {
	var pool []CaseStudy
	for _, e := range orig.Entries {
		if !vendorChanged[e.ID] {
			continue
		}
		sev, ok := e.SeverityV2()
		if !ok {
			continue
		}
		vendor := ""
		if len(e.CPEs) > 0 {
			vendor = e.CPEs[0].Vendor
		}
		pool = append(pool, CaseStudy{
			ID: e.ID, Vendor: vendor, Severity: sev, Description: e.Description(),
		})
	}
	// Prefer High severity (the paper's sample is 9 High + 1 Medium),
	// then shuffle deterministically within bands.
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Severity > pool[j].Severity })
	rng := rand.New(rand.NewSource(seed))
	// Shuffle inside the leading high-severity run for variety.
	end := 0
	for end < len(pool) && pool[end].Severity == cvss.SeverityHigh {
		end++
	}
	rng.Shuffle(end, func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > 0 && len(pool) > n {
		pool = pool[:n]
	}
	return pool
}
