package store

import (
	"slices"
	"testing"
)

// ordsSeq builds the strictly increasing list {start, start+step, ...}
// of n ordinals.
func ordsSeq(start, step uint32, n int) []uint32 {
	out := make([]uint32, n)
	v := start
	for i := range out {
		out[i] = v
		v += step
	}
	return out
}

func TestPostingRoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{0},
		{41},
		ordsSeq(0, 1, postingBlockSize-1),
		ordsSeq(0, 1, postingBlockSize),
		ordsSeq(0, 1, postingBlockSize+1),
		ordsSeq(3, 17, 1000),
		{0, 1, 1000000, 1000001, 4000000000},
	}
	for _, ords := range cases {
		p := encodePosting(ords)
		if p.count != len(ords) {
			t.Fatalf("count %d, want %d", p.count, len(ords))
		}
		wantBlocks := (len(ords) + postingBlockSize - 1) / postingBlockSize
		if len(p.skips) != wantBlocks {
			t.Fatalf("%d blocks for %d ordinals, want %d", len(p.skips), len(ords), wantBlocks)
		}
		got, err := p.decode(nil)
		if err != nil {
			t.Fatalf("decode(%d ordinals): %v", len(ords), err)
		}
		if !slices.Equal(got, ords) {
			t.Fatalf("round trip of %d ordinals diverged", len(ords))
		}
	}
}

func TestPostingIterSeek(t *testing.T) {
	ords := ordsSeq(10, 7, 1000)
	p := encodePosting(ords)
	it := newPostingIter(p)
	// Monotone seek targets: exact hits, between-value targets, and a
	// long jump that must skip whole blocks.
	targets := []uint32{0, 10, 11, 17, 500, 501, 3000, ords[999]}
	for _, v := range targets {
		got, ok, err := it.seek(v)
		if err != nil {
			t.Fatalf("seek(%d): %v", v, err)
		}
		// Reference: first ordinal >= v.
		i, _ := slices.BinarySearch(ords, v)
		if i >= len(ords) {
			if ok {
				t.Fatalf("seek(%d) = %d, want exhausted", v, got)
			}
			continue
		}
		if !ok || got != ords[i] {
			t.Fatalf("seek(%d) = %d,%v, want %d", v, got, ok, ords[i])
		}
	}
	if _, ok, _ := it.seek(ords[999] + 1); ok {
		t.Fatal("seek past the last ordinal should exhaust")
	}
}

func TestIntersectPostings(t *testing.T) {
	cases := []struct{ a, b []uint32 }{
		{ordsSeq(0, 2, 600), ordsSeq(0, 3, 400)},
		{ordsSeq(0, 1, 50), ordsSeq(1000, 1, 50)},    // disjoint ranges: pure block skipping
		{ordsSeq(0, 1, 1000), ordsSeq(999, 1000, 4)}, // sparse drags dense past blocks
		{ordsSeq(5, 1, 3), ordsSeq(0, 1, 10)},        // containment
		{[]uint32{7}, []uint32{7}},                   // singletons
		{[]uint32{1, 2, 3}, []uint32{4, 5, 6}},       // empty result
	}
	for _, tc := range cases {
		want := map[uint32]bool{}
		for _, v := range tc.a {
			want[v] = true
		}
		var ref []uint32
		for _, v := range tc.b {
			if want[v] {
				ref = append(ref, v)
			}
		}
		got, err := intersectPostings(encodePosting(tc.a), encodePosting(tc.b), nil)
		if err != nil {
			t.Fatalf("intersect: %v", err)
		}
		if !slices.Equal(got, ref) {
			t.Fatalf("intersect(%d,%d ordinals) = %v, want %v", len(tc.a), len(tc.b), got, ref)
		}
		// intersectOrds (the 3+ list path) must agree.
		acc := slices.Clone(tc.a)
		acc, err = intersectOrds(acc, encodePosting(tc.b))
		if err != nil {
			t.Fatalf("intersectOrds: %v", err)
		}
		if !slices.Equal(acc, ref) {
			t.Fatalf("intersectOrds = %v, want %v", acc, ref)
		}
	}
}

func TestPostingRejectsNonMonotonic(t *testing.T) {
	// A hand-built block whose single delta is 0: the decoded second
	// ordinal would repeat the first.
	p := &posting{
		count: 2,
		skips: []skipEntry{{first: 5, last: 5, off: 0, bytes: 1}},
		data:  []byte{0x00},
	}
	if _, err := p.decode(nil); err == nil {
		t.Fatal("zero delta decoded without error")
	}
	// A delta overflowing uint32.
	p = &posting{
		count: 2,
		skips: []skipEntry{{first: ^uint32(0) - 1, last: ^uint32(0), off: 0, bytes: 2}},
		data:  []byte{0x80, 0x20}, // 4096
	}
	if _, err := p.decode(nil); err == nil {
		t.Fatal("uint32 overflow decoded without error")
	}
	// A final ordinal disagreeing with the skip entry.
	p = &posting{
		count: 2,
		skips: []skipEntry{{first: 5, last: 9, off: 0, bytes: 1}},
		data:  []byte{0x01},
	}
	if _, err := p.decode(nil); err == nil {
		t.Fatal("skip-entry mismatch decoded without error")
	}
	// Trailing bytes after the block's ordinals.
	p = &posting{
		count: 2,
		skips: []skipEntry{{first: 5, last: 6, off: 0, bytes: 2}},
		data:  []byte{0x01, 0x01},
	}
	if _, err := p.decode(nil); err == nil {
		t.Fatal("trailing block bytes decoded without error")
	}
}

// testShardPost builds a multi-key posting map exercising every key
// kind, pair keys with both fields, and multi-block postings.
func testShardPost() map[key]*posting {
	return map[key]*posting{
		{kind: keyVendor, a: "redhat"}:            encodePosting(ordsSeq(0, 3, 500)),
		{kind: keyProduct, a: "kernel"}:           encodePosting(ordsSeq(1, 2, 300)),
		{kind: keyPair, a: "redhat", b: "kernel"}: encodePosting(ordsSeq(7, 11, 90)),
		{kind: keyPair, a: "red", b: "hatkernel"}: encodePosting([]uint32{42}),
		{kind: keyCWE, a: "CWE-79"}:               encodePosting(ordsSeq(2, 5, 250)),
		{kind: keySeverity, a: "HIGH"}:            encodePosting(ordsSeq(0, 1, 129)),
		{kind: keyYear, a: "2017"}:                encodePosting([]uint32{1499}),
	}
}

func TestShardWireRoundTrip(t *testing.T) {
	post := testShardPost()
	wire := appendShardWire(nil, 1500, post)
	got, entries, err := parseShardWire(wire)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if entries != 1500 {
		t.Fatalf("entries = %d, want 1500", entries)
	}
	if len(got) != len(post) {
		t.Fatalf("parsed %d keys, want %d", len(got), len(post))
	}
	for k, p := range post {
		q := got[k]
		if q == nil {
			t.Fatalf("key %+v missing after round trip", k)
		}
		want, err := p.decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		have, err := q.decode(nil)
		if err != nil {
			t.Fatalf("decode %+v after round trip: %v", k, err)
		}
		if !slices.Equal(have, want) {
			t.Fatalf("posting %+v diverged after round trip", k)
		}
	}
	// Canonical: re-encoding the parsed map reproduces the bytes.
	if again := appendShardWire(nil, 1500, got); !slices.Equal(again, wire) {
		t.Fatal("re-encode of parsed shard is not byte-identical")
	}
	// Header peek agrees without parsing postings.
	if n, err := peekShardEntries(wire); err != nil || n != 1500 {
		t.Fatalf("peekShardEntries = %d, %v", n, err)
	}
}

// TestShardWireRejectsTruncation mirrors the WAL's torn-tail
// discipline: every proper prefix of a valid segment must fail to
// parse — the declared key count and block extents leave no prefix
// that looks complete.
func TestShardWireRejectsTruncation(t *testing.T) {
	wire := appendShardWire(nil, 1500, testShardPost())
	for n := 0; n < len(wire); n++ {
		if _, _, err := parseShardWire(wire[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed without error", n, len(wire))
		}
	}
}

func TestShardWireRejectsCorruption(t *testing.T) {
	valid := appendShardWire(nil, 1500, testShardPost())
	mutate := func(fn func([]byte)) []byte {
		b := slices.Clone(valid)
		fn(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":   mutate(func(b []byte) { b[0] = 'X' }),
		"bad version": mutate(func(b []byte) { b[len(indexMagic)] = 99 }),
		"trailing":    append(slices.Clone(valid), 0x00),
	}
	for name, b := range cases {
		if _, _, err := parseShardWire(b); err == nil {
			t.Errorf("%s parsed without error", name)
		}
	}
	// Keys out of order: encode two keys manually in reversed order.
	a := map[key]*posting{{kind: keyVendor, a: "a"}: encodePosting([]uint32{1})}
	b := map[key]*posting{{kind: keyVendor, a: "b"}: encodePosting([]uint32{2})}
	wa := appendShardWire(nil, 10, a)
	wb := appendShardWire(nil, 10, b)
	// Splice: header of a two-key shard, then b's key record, then a's.
	var spliced []byte
	spliced = append(spliced, wa[:len(indexMagic)+1]...) // magic+version
	spliced = append(spliced, 10)                        // entryCount=10 (single-byte varint)
	spliced = append(spliced, 2)                         // keyCount=2
	hdr := len(indexMagic) + 1 + 1 + 1                   // magic, version, entries, keys
	spliced = append(spliced, wb[hdr:]...)
	spliced = append(spliced, wa[hdr:]...)
	if _, _, err := parseShardWire(spliced); err == nil {
		t.Error("out-of-order keys parsed without error")
	}
	// An ordinal at/after the declared entry count.
	tooBig := appendShardWire(nil, 10, map[key]*posting{
		{kind: keyVendor, a: "v"}: encodePosting([]uint32{10}),
	})
	if _, _, err := parseShardWire(tooBig); err == nil {
		t.Error("ordinal >= entry count parsed without error")
	}
}

// FuzzPostingCodec fuzzes both codec layers. The segment layer must
// never panic, and anything it accepts must decode to strictly
// increasing in-range ordinals whose canonical re-encode is stable.
// The block layer proves encode→decode identity on lists derived from
// the fuzz input.
func FuzzPostingCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendShardWire(nil, 1500, testShardPost()))
	f.Add(appendShardWire(nil, 1, map[key]*posting{
		{kind: keyYear, a: "2017"}: encodePosting([]uint32{0}),
	}))
	f.Add([]byte("NVIX\x01"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if post, entries, err := parseShardWire(raw); err == nil {
			decoded := make(map[key][]uint32, len(post))
			clean := true
			for k, p := range post {
				ords, err := p.decode(nil)
				if err != nil {
					// Structural parse passed but a block is corrupt:
					// rejection at decode time is the contract.
					clean = false
					continue
				}
				if len(ords) != p.count {
					t.Fatalf("decoded %d ordinals, count says %d", len(ords), p.count)
				}
				for i, v := range ords {
					if int(v) >= entries {
						t.Fatalf("ordinal %d out of range (%d entries)", v, entries)
					}
					if i > 0 && v <= ords[i-1] {
						t.Fatalf("ordinals not strictly increasing: %d after %d", v, ords[i-1])
					}
				}
				decoded[k] = ords
			}
			if clean {
				// Canonical stability: re-encode from decoded ordinals,
				// parse again, and the second encode must be
				// byte-identical to the first.
				canon := make(map[key]*posting, len(decoded))
				for k, ords := range decoded {
					canon[k] = encodePosting(ords)
				}
				wire1 := appendShardWire(nil, entries, canon)
				post2, entries2, err := parseShardWire(wire1)
				if err != nil {
					t.Fatalf("canonical re-encode does not parse: %v", err)
				}
				if entries2 != entries || len(post2) != len(canon) {
					t.Fatal("canonical re-encode changed shape")
				}
				if wire2 := appendShardWire(nil, entries2, post2); !slices.Equal(wire1, wire2) {
					t.Fatal("canonical encode is not a fixed point")
				}
			}
		}

		// Block layer: derive a strictly increasing list from the fuzz
		// bytes and prove encode→decode→seek identity.
		var ords []uint32
		v := uint32(0)
		for _, c := range raw {
			v += uint32(c) + 1
			ords = append(ords, v)
			if len(ords) == 4096 {
				break
			}
		}
		if len(ords) == 0 {
			return
		}
		p := encodePosting(ords)
		got, err := p.decode(nil)
		if err != nil {
			t.Fatalf("decode of valid posting: %v", err)
		}
		if !slices.Equal(got, ords) {
			t.Fatal("posting round trip diverged")
		}
		it := newPostingIter(p)
		for _, tgt := range []int{0, len(ords) / 2, len(ords) - 1} {
			w, ok, err := it.seek(ords[tgt])
			if err != nil || !ok || w != ords[tgt] {
				t.Fatalf("seek(%d) = %d,%v,%v", ords[tgt], w, ok, err)
			}
		}
	})
}
