package store

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Committer runs checkpoint commits off the ingest hot path. The feed
// handler seals the active segment, builds the sealed generation's
// Checkpoint document (cheap — it shares the in-memory snapshots and
// maps), and enqueues it here; the committer goroutine pays the disk
// write, swaps CURRENT and retires the folded segments.
//
// The queue is a single latest-wins slot: every enqueued checkpoint is
// a complete image of the store, so a newer one strictly supersedes an
// older one that has not started writing — committing only the newest
// loses nothing and skips obsolete disk work. Durability never depends
// on the queue: every acknowledged delta is fsynced in some live
// segment before its checkpoint is even built, so a failed or skipped
// commit merely leaves the old checkpoint plus all segments intact.
// Failed commits are re-enqueued and retried with exponential backoff
// (unless a newer checkpoint superseded them) and surfaced in Stats
// for /stats.
type Committer struct {
	s *Store

	mu sync.Mutex
	// backoff and maxBackoff bound the retry delay after a failed
	// commit (doubling per consecutive failure); see SetBackoff.
	backoff    time.Duration
	maxBackoff time.Duration
	pending    *commitReq
	inflight   bool
	committed  int
	retries    int
	lastErr    string
	lastErrAt  time.Time

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

type commitReq struct {
	cp  *Checkpoint
	seq uint64
}

// CommitterStats is a point-in-time view of the commit queue, shaped
// for /stats.
type CommitterStats struct {
	// Pending reports a checkpoint waiting in the queue (or mid-write).
	Pending bool `json:"pending"`
	// Committed counts checkpoints committed since the committer
	// started.
	Committed int `json:"committed"`
	// Retries counts failed commit attempts (each is re-enqueued with
	// backoff unless superseded).
	Retries int `json:"retries"`
	// LastError is the most recent commit failure, cleared by the next
	// success.
	LastError string `json:"lastError,omitempty"`
	// LastErrorUnix is the Unix time LastError was recorded (0 when
	// there is none): an operator reading /stats can tell a stale error
	// — long since retried past — from a live one without tailing logs.
	LastErrorUnix int64 `json:"lastErrorUnix,omitempty"`
}

// NewCommitter starts a background committer for s. Close it before
// closing the store.
func NewCommitter(s *Store) *Committer {
	c := &Committer{
		s:          s,
		backoff:    100 * time.Millisecond,
		maxBackoff: 5 * time.Second,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go c.loop()
	return c
}

// SetBackoff overrides the retry delay bounds (initial delay, doubling
// per consecutive failure up to max).
func (c *Committer) SetBackoff(initial, max time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backoff, c.maxBackoff = initial, max
}

// Enqueue hands the committer a checkpoint covering segments at or
// below seq (the value Seal returned). A checkpoint already queued but
// not yet started is replaced — the newer image supersedes it.
// Enqueue never blocks.
func (c *Committer) Enqueue(cp *Checkpoint, seq uint64) {
	c.mu.Lock()
	c.pending = &commitReq{cp: cp, seq: seq}
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Stats returns the current queue counters.
func (c *Committer) Stats() CommitterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CommitterStats{
		Pending:   c.pending != nil || c.inflight,
		Committed: c.committed,
		Retries:   c.retries,
		LastError: c.lastErr,
	}
	if !c.lastErrAt.IsZero() {
		st.LastErrorUnix = c.lastErrAt.Unix()
	}
	return st
}

// Close stops the committer, waiting for an in-flight commit to finish
// (a commit is never torn by shutdown — CommitSealed either completes
// or leaves the old generation intact). A checkpoint still queued is
// dropped: its deltas are all fsynced in live segments, so the next
// boot replays them and loses nothing.
func (c *Committer) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// jitterDelay spreads a retry delay over [d/2, d), so a fleet of
// daemons failing on a shared fault (a full volume, a down primary)
// does not retry in lockstep and stampede whatever just recovered.
func jitterDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half)
}

func (c *Committer) loop() {
	defer close(c.done)
	failures := 0
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		}
		for {
			c.mu.Lock()
			req := c.pending
			c.pending = nil
			c.inflight = req != nil
			c.mu.Unlock()
			if req == nil {
				break
			}
			err := c.s.CommitSealed(req.cp, req.seq)
			c.mu.Lock()
			c.inflight = false
			if err == nil {
				c.committed++
				c.lastErr = ""
				c.lastErrAt = time.Time{}
				c.mu.Unlock()
				failures = 0
				continue
			}
			c.retries++
			c.lastErr = err.Error()
			c.lastErrAt = time.Now()
			// Re-enqueue the failed checkpoint unless a newer one
			// arrived while we were writing.
			if c.pending == nil {
				c.pending = req
			}
			delay, max := c.backoff, c.maxBackoff
			c.mu.Unlock()
			if delay <<= failures; delay > max || delay <= 0 {
				delay = max
			}
			delay = jitterDelay(delay)
			failures++
			select {
			case <-c.stop:
				return
			case <-time.After(delay):
			}
		}
	}
}
