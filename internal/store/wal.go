package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"nvdclean/internal/cve"
	"nvdclean/internal/fsio"
)

// The delta log is segmented: a store directory holds log-<seq> files,
// each a flat sequence of framed records:
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian CRC-32C of the payload]
//	[payload: one cve.MarshalDelta document]
//
// Records are appended and fsynced one at a time into the *active*
// segment (the highest seq); segments are never rewritten in place.
// When compaction trips, the active segment is sealed (closed, a
// successor opened) and a checkpoint of the sealed generation is
// written off the hot path; the checkpoint's manifest records the
// sealed seq as its walSeq watermark, and once CURRENT adopts it every
// segment at or below that seq is retired.
//
// Recovery replays live segments (seq > the committed checkpoint's
// walSeq) in ascending order. Only the last segment may legitimately
// end in a torn frame (a crash mid-append), and its tail is truncated
// at the last good record. A bad frame inside an earlier segment is
// real corruption: everything from that frame on — including every
// later segment, which cannot be applied across the gap — is dropped,
// exactly as the bad frame's suffix would be in a flat log.
//
// The same framed byte stream doubles as the replication stream
// (replication.go): followers tail segment bytes verbatim and append
// them through the identical validation path, so a (segment seq, byte
// offset) pair names the same record boundary on every replica.

const (
	walHeaderSize = 8
	// walMaxRecord bounds a single record so a corrupted length field
	// cannot make recovery attempt a multi-gigabyte read.
	walMaxRecord = 1 << 30
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(seq uint64) string { return fmt.Sprintf("log-%06d", seq) }

// segmentSeq parses a log-<seq> file name.
func segmentSeq(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "log-")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentSeqs lists the segment files in dir, ascending by seq.
func segmentSeqs(fs fsio.FS, dir string) []uint64 {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := segmentSeq(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	slices.Sort(seqs)
	return seqs
}

// wal is one open delta-log segment positioned for appending.
type wal struct {
	f       fsio.File
	path    string
	seq     uint64
	records int
	// off is the end offset of the last fully committed frame. A
	// failed append truncates back to it; if even that fails the log
	// is poisoned and refuses further appends, so a torn frame can
	// never end up followed by acknowledged records that recovery
	// would silently discard.
	off      int64
	poisoned bool
}

// scanFrames parses a flat byte sequence of framed records. It returns
// the decoded deltas, the end offset of the last intact frame, and a
// human-readable note when data holds anything past that offset (torn,
// corrupt, or undecodable; empty note means every byte was consumed).
// It is the single framing validator: segment recovery and the
// replication sink both run shipped or recovered bytes through it.
func scanFrames(data []byte) ([]*cve.Delta, int64, string) {
	var (
		deltas []*cve.Delta
		off    int64
		note   string
	)
	// Frame bounds are compared in int64: on a 32-bit platform a
	// corrupted length field near MaxInt32 would wrap an int sum and
	// slip past the torn-frame check.
	size := int64(len(data))
	for off+walHeaderSize <= size {
		h := data[off : off+walHeaderSize]
		length := binary.LittleEndian.Uint32(h[0:4])
		sum := binary.LittleEndian.Uint32(h[4:8])
		end := off + walHeaderSize + int64(length)
		if length > walMaxRecord || end > size {
			note = fmt.Sprintf("dropped torn record %d at offset %d", len(deltas), off)
			break
		}
		payload := data[off+walHeaderSize : end]
		if crc32.Checksum(payload, walTable) != sum {
			note = fmt.Sprintf("dropped corrupt record %d at offset %d (checksum mismatch)", len(deltas), off)
			break
		}
		d, err := cve.UnmarshalDelta(payload)
		if err != nil {
			note = fmt.Sprintf("dropped undecodable record %d at offset %d: %v", len(deltas), off, err)
			break
		}
		deltas = append(deltas, d)
		off = end
	}
	if off < size && note == "" {
		note = fmt.Sprintf("dropped torn tail at offset %d", off)
	}
	return deltas, off, note
}

// openSegment opens (creating if absent) one segment, replays every
// committed record, truncates any torn or corrupt tail, and leaves the
// file positioned for appending. It returns the decoded deltas and a
// human-readable note when a tail was dropped.
func openSegment(fs fsio.FS, path string, seq uint64) (*wal, []*cve.Delta, string, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, "", err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, "", fmt.Errorf("store: reading delta log: %w", err)
	}

	deltas, off, note := scanFrames(data)
	if off < int64(len(data)) {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, "", fmt.Errorf("store: truncating delta log tail: %w", err)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, "", err
	}
	return &wal{f: f, path: path, seq: seq, records: len(deltas), off: off}, deltas, note, nil
}

// sealedSeg is one sealed-but-unretired segment's bookkeeping. end is
// the segment's byte length — the offset past its last frame — which
// doubles as the replication stream position of that frame.
type sealedSeg struct {
	seq     uint64
	records int
	end     int64
}

// replaySegments recovers the live segments of a store whose committed
// checkpoint covers every segment at or below after. It returns the
// reopened active segment (the highest live seq, or a fresh successor
// when none exist or the chain was cut by corruption), the sealed
// segments still awaiting retirement, every recovered delta in append
// order, and recovery notes.
func replaySegments(fs fsio.FS, dir string, after uint64) (*wal, []sealedSeg, []*cve.Delta, []string, error) {
	var live []uint64
	for _, seq := range segmentSeqs(fs, dir) {
		if seq > after {
			live = append(live, seq)
		}
	}
	var (
		active *wal
		sealed []sealedSeg
		deltas []*cve.Delta
		notes  []string
	)
	for i, seq := range live {
		w, segDeltas, note, err := openSegment(fs, filepath.Join(dir, segmentName(seq)), seq)
		if err != nil {
			return nil, nil, nil, notes, err
		}
		deltas = append(deltas, segDeltas...)
		if note != "" {
			notes = append(notes, fmt.Sprintf("segment %s: %s", segmentName(seq), note))
		}
		last := i == len(live)-1
		if last {
			active = w
			break
		}
		end := w.off
		w.close()
		sealed = append(sealed, sealedSeg{seq: seq, records: len(segDeltas), end: end})
		if note != "" {
			// A bad frame inside a sealed segment strands every later
			// segment: replaying them would apply deltas across the
			// gap. Drop them — the same suffix a flat log would lose —
			// and resume appends past the highest seq seen.
			for _, later := range live[i+1:] {
				if err := fs.Remove(filepath.Join(dir, segmentName(later))); err == nil {
					notes = append(notes, fmt.Sprintf("dropped unreachable segment %s", segmentName(later)))
				}
			}
			break
		}
	}
	if active == nil {
		next := after + 1
		if n := len(live); n > 0 {
			next = live[n-1] + 1
		}
		var err error
		active, _, _, err = openSegment(fs, filepath.Join(dir, segmentName(next)), next)
		if err != nil {
			return nil, nil, nil, notes, err
		}
		// Persist the fresh segment's directory entry: deltas appended
		// to it are acknowledged on their own fsync, which does not
		// cover the dirent of a file created here.
		if err := syncDir(fs, dir); err != nil {
			active.close()
			return nil, nil, nil, notes, err
		}
	}
	return active, sealed, deltas, notes, nil
}

// append frames, writes and fsyncs one delta record. The record is
// durable once append returns; a failed append rolls the file back to
// the previous committed frame (or poisons the log if it cannot).
func (w *wal) append(d *cve.Delta) error {
	payload, err := cve.MarshalDelta(d)
	if err != nil {
		return fmt.Errorf("store: encoding delta record: %w", err)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walTable))
	copy(frame[walHeaderSize:], payload)
	return w.appendRaw(frame, 1)
}

// appendRaw writes and fsyncs pre-framed record bytes — one locally
// framed record, or a batch of frames shipped verbatim from a
// replication primary (the caller has already validated them with
// scanFrames). Shipped frames land byte-identical, which is what keeps
// replication stream offsets aligned across replicas.
func (w *wal) appendRaw(raw []byte, records int) error {
	if w.poisoned {
		return fmt.Errorf("store: delta log poisoned by an earlier failed append; restart to recover")
	}
	if _, err := w.f.Write(raw); err != nil {
		w.rollback()
		return fmt.Errorf("store: appending delta record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return fmt.Errorf("store: syncing delta log: %w", err)
	}
	w.off += int64(len(raw))
	w.records += records
	return nil
}

// rollback discards a torn frame after a failed append. If the file
// cannot be restored to its last committed length, later appends must
// not land after the garbage — recovery truncates at the first bad
// frame and would silently drop them — so the log poisons itself.
func (w *wal) rollback() {
	if w.f.Truncate(w.off) != nil {
		w.poisoned = true
		return
	}
	if _, err := w.f.Seek(w.off, io.SeekStart); err != nil {
		w.poisoned = true
	}
}

// heal retries a failed rollback: a log is poisoned only because the
// truncate back to the last committed frame boundary failed at fault
// time, so once the underlying fault clears the same truncate clears
// the poison. Nothing acknowledged lives past w.off — appends were
// refused the whole time — so the discard is exactly the torn frame.
func (w *wal) heal() error {
	if !w.poisoned {
		return nil
	}
	if err := w.f.Truncate(w.off); err != nil {
		return fmt.Errorf("store: delta log still poisoned: %w", err)
	}
	if _, err := w.f.Seek(w.off, io.SeekStart); err != nil {
		return fmt.Errorf("store: delta log still poisoned: %w", err)
	}
	w.poisoned = false
	return nil
}

func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
