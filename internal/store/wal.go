package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"nvdclean/internal/cve"
)

// The delta log is a flat file of framed records:
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian CRC-32C of the payload]
//	[payload: one cve.MarshalDelta document]
//
// Records are appended and fsynced one at a time; the file is never
// rewritten in place. Recovery reads records until the first frame that
// is torn (header or payload extends past EOF) or fails its checksum,
// and truncates the file there — everything before the bad frame is a
// committed delta, everything after is a casualty of the crash that
// produced it.

const (
	walHeaderSize = 8
	// walMaxRecord bounds a single record so a corrupted length field
	// cannot make recovery attempt a multi-gigabyte read.
	walMaxRecord = 1 << 30
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

// wal is an open delta log positioned for appending.
type wal struct {
	f       *os.File
	path    string
	records int
	// off is the end offset of the last fully committed frame. A
	// failed append truncates back to it; if even that fails the log
	// is poisoned and refuses further appends, so a torn frame can
	// never end up followed by acknowledged records that recovery
	// would silently discard.
	off      int64
	poisoned bool
}

// openWAL opens (creating if absent) the delta log at path, replays
// every committed record, truncates any torn or corrupt tail, and
// leaves the file positioned for appending. It returns the decoded
// deltas and a human-readable note when a tail was dropped.
func openWAL(path string) (*wal, []*cve.Delta, string, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, "", err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, "", fmt.Errorf("store: reading delta log: %w", err)
	}

	var (
		deltas []*cve.Delta
		off    int64
		note   string
	)
	for int(off)+walHeaderSize <= len(data) {
		h := data[off : off+walHeaderSize]
		length := binary.LittleEndian.Uint32(h[0:4])
		sum := binary.LittleEndian.Uint32(h[4:8])
		if length > walMaxRecord || int(off)+walHeaderSize+int(length) > len(data) {
			note = fmt.Sprintf("dropped torn record %d at offset %d", len(deltas), off)
			break
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+int64(length)]
		if crc32.Checksum(payload, walTable) != sum {
			note = fmt.Sprintf("dropped corrupt record %d at offset %d (checksum mismatch)", len(deltas), off)
			break
		}
		d, err := cve.UnmarshalDelta(payload)
		if err != nil {
			note = fmt.Sprintf("dropped undecodable record %d at offset %d: %v", len(deltas), off, err)
			break
		}
		deltas = append(deltas, d)
		off += walHeaderSize + int64(length)
	}
	if int(off) < len(data) {
		if note == "" {
			note = fmt.Sprintf("dropped torn tail at offset %d", off)
		}
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, "", fmt.Errorf("store: truncating delta log tail: %w", err)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, "", err
	}
	return &wal{f: f, path: path, records: len(deltas), off: off}, deltas, note, nil
}

// append frames, writes and fsyncs one delta record. The record is
// durable once append returns; a failed append rolls the file back to
// the previous committed frame (or poisons the log if it cannot).
func (w *wal) append(d *cve.Delta) error {
	if w.poisoned {
		return fmt.Errorf("store: delta log poisoned by an earlier failed append; restart to recover")
	}
	payload, err := cve.MarshalDelta(d)
	if err != nil {
		return fmt.Errorf("store: encoding delta record: %w", err)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walTable))
	copy(frame[walHeaderSize:], payload)
	if _, err := w.f.Write(frame); err != nil {
		w.rollback()
		return fmt.Errorf("store: appending delta record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return fmt.Errorf("store: syncing delta log: %w", err)
	}
	w.off += int64(len(frame))
	w.records++
	return nil
}

// rollback discards a torn frame after a failed append. If the file
// cannot be restored to its last committed length, later appends must
// not land after the garbage — recovery truncates at the first bad
// frame and would silently drop them — so the log poisons itself.
func (w *wal) rollback() {
	if w.f.Truncate(w.off) != nil {
		w.poisoned = true
		return
	}
	if _, err := w.f.Seek(w.off, io.SeekStart); err != nil {
		w.poisoned = true
	}
}

func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
