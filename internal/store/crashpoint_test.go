package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"nvdclean/internal/cve"
	"nvdclean/internal/fsio"
)

// Crash-point exploration (ALICE/CrashMonkey style): instead of
// hand-picking crash windows, enumerate every mutating filesystem
// operation a store mutation performs, simulate a crash immediately
// after each one (by snapshotting the directory at that boundary),
// reopen the snapshot, and assert the recovered view is exactly the
// pre-operation or the post-operation state — never a third thing.
// Three passes per path:
//
//   - crash-after-op: the op landed, then the machine died;
//   - ENOSPC-at-op: the op itself failed (disk full), the caller saw
//     the error, then the machine died;
//   - torn-write-at-op: a write landed partially before failing, then
//     the machine died.
//
// The fsio.Injector serializes mutating ops, so each snapshot is a
// consistent between-ops image even while CommitSealed writes
// checkpoint files concurrently.

// dirImage is a point-in-time copy of a store directory. Keys are
// slash-separated relative paths; a nil value marks a directory.
type dirImage map[string][]byte

func snapshotDir(t *testing.T, dir string) dirImage {
	t.Helper()
	img := dirImage{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil || rel == "." {
			return err
		}
		if d.IsDir() {
			img[filepath.ToSlash(rel)] = nil
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		img[filepath.ToSlash(rel)] = b
		return nil
	})
	if err != nil {
		t.Fatalf("snapshotting %s: %v", dir, err)
	}
	return img
}

func materializeDir(t *testing.T, img dirImage) string {
	t.Helper()
	dir := t.TempDir()
	for rel, data := range img {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if data == nil {
			if err := os.MkdirAll(path, 0o755); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// viewOf recovers a (copy of a) store directory and fingerprints the
// logical state it serves: the committed checkpoint's generation,
// watermark and snapshots plus every replayed delta, in order. Two
// directories with the same fingerprint recover to the same serving
// view. Recovery itself must never fail on a crash image — an error
// becomes a fingerprint no legitimate view matches, failing the
// assertion with the error text.
func viewOf(t *testing.T, dir string) string {
	t.Helper()
	s, cp, deltas, _, err := Open(dir)
	if err != nil {
		return "unrecoverable: " + err.Error()
	}
	defer s.Close()
	if cp == nil {
		return "empty"
	}
	h := sha256.New()
	fmt.Fprintf(h, "gen=%d seq=%d\n", cp.Generation, cp.Seq)
	if err := cve.WriteFeedCompact(h, cp.Original); err != nil {
		return "unrecoverable: " + err.Error()
	}
	if err := cve.WriteFeedCompact(h, cp.Cleaned); err != nil {
		return "unrecoverable: " + err.Error()
	}
	for _, d := range deltas {
		b, err := cve.MarshalDelta(d)
		if err != nil {
			return "unrecoverable: " + err.Error()
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// crashStride subsamples n crash points in -short mode so the CI step
// stays fast; the full sweep runs in the unabridged store test step.
func crashStride(n int) int {
	if !testing.Short() || n <= 24 {
		return 1
	}
	return n/24 + 1
}

// exploreCrashPath drives the three passes for one store mutation.
// setup builds the initial on-disk state (and must close every store
// handle); run performs the mutation on a store opened over the
// injector. It returns the number of explored crash points.
func exploreCrashPath(t *testing.T, setup func(t *testing.T, dir string), run func(t *testing.T, s *Store) error) int {
	t.Helper()
	base := t.TempDir()
	setup(t, base)
	preSnap := snapshotDir(t, base)
	preView := viewOf(t, materializeDir(t, preSnap))

	openInjected := func(img dirImage) (*Store, *fsio.Injector, string) {
		dir := materializeDir(t, img)
		inj := fsio.NewInjector(fsio.OS{})
		s, _, _, _, err := OpenFS(dir, inj)
		if err != nil {
			t.Fatalf("OpenFS on materialized image: %v", err)
		}
		return s, inj, dir
	}

	// Pass 1: clean run, snapshot after every mutating op.
	s, inj, work := openInjected(preSnap)
	bootOps := inj.Ops()
	var ops []fsio.Op
	var snaps []dirImage
	inj.SetAfter(func(op fsio.Op) {
		ops = append(ops, op)
		snaps = append(snaps, snapshotDir(t, work))
	})
	if err := run(t, s); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	inj.SetAfter(nil)
	s.Close()
	postView := viewOf(t, materializeDir(t, snapshotDir(t, work)))
	if len(ops) == 0 {
		t.Fatal("mutation performed no mutating fsio ops — nothing to explore")
	}

	explored := 0
	check := func(pass string, op fsio.Op, img dirImage) {
		t.Helper()
		v := viewOf(t, materializeDir(t, img))
		if v != preView && v != postView {
			t.Errorf("%s at op %d (%s %s): recovered view %.40s is neither pre %.12s nor post %.12s",
				pass, op.N, op.Kind, filepath.Base(op.Path), v, preView, postView)
		}
		explored++
	}

	stride := crashStride(len(ops))
	for k := 0; k < len(ops); k += stride {
		check("crash-after", ops[k], snaps[k])
	}

	// Pass 2: the op fails with ENOSPC, the caller observes the error,
	// then the machine dies.
	for k := 0; k < len(ops); k += stride {
		s2, inj2, dir2 := openInjected(preSnap)
		if got := inj2.Ops(); got != bootOps {
			t.Fatalf("boot performed %d mutating ops, first run %d — op numbering drifted", got, bootOps)
		}
		inj2.SetDecide(fsio.FailOp(ops[k].N, syscall.ENOSPC))
		_ = run(t, s2) // an error is expected but not required: some failures are absorbed (e.g. retirement)
		inj2.SetDecide(nil)
		s2.Close()
		check("enospc-at", ops[k], snapshotDir(t, dir2))
	}

	// Pass 3: writes land one byte and then fail — a torn write.
	for k := 0; k < len(ops); k += stride {
		if ops[k].Kind != fsio.OpWrite && ops[k].Kind != fsio.OpWriteFile {
			continue
		}
		s3, inj3, dir3 := openInjected(preSnap)
		inj3.SetDecide(fsio.TornWriteOp(ops[k].N, 1, syscall.EIO))
		_ = run(t, s3)
		inj3.SetDecide(nil)
		s3.Close()
		check("torn-write-at", ops[k], snapshotDir(t, dir3))
	}
	if explored == 0 {
		t.Fatal("explored 0 crash points")
	}
	t.Logf("explored %d crash points across %d mutating ops (stride %d)", explored, len(ops), stride)
	return explored
}

// setupCommitted commits one checkpoint and appends one delta — the
// steady state every mutation path starts from.
func setupCommitted(t *testing.T, dir string) {
	t.Helper()
	s, _, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashPointsAppend(t *testing.T) {
	n := exploreCrashPath(t, setupCommitted, func(t *testing.T, s *Store) error {
		return s.AppendDelta(testDelta(2))
	})
	if n == 0 {
		t.Fatal("append path explored no crash points")
	}
}

func TestCrashPointsSeal(t *testing.T) {
	n := exploreCrashPath(t, setupCommitted, func(t *testing.T, s *Store) error {
		_, err := s.Seal()
		return err
	})
	if n == 0 {
		t.Fatal("seal path explored no crash points")
	}
}

func TestCrashPointsCommitSealed(t *testing.T) {
	n := exploreCrashPath(t, setupCommitted, func(t *testing.T, s *Store) error {
		seq, err := s.Seal()
		if err != nil {
			return err
		}
		return s.CommitSealed(testCheckpoint(), seq)
	})
	if n == 0 {
		t.Fatal("commit path explored no crash points")
	}
}

func TestCrashPointsCommitSealedWithIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("index-bearing commit sweep runs in the full store step")
	}
	n := exploreCrashPath(t, setupCommitted, func(t *testing.T, s *Store) error {
		seq, err := s.Seal()
		if err != nil {
			return err
		}
		cp := testCheckpoint()
		cp.Index = BuildIndex(cp.Cleaned, 0)
		return s.CommitSealed(cp, seq)
	})
	if n == 0 {
		t.Fatal("index commit path explored no crash points")
	}
}

func TestCrashPointsInstallCheckpoint(t *testing.T) {
	// A real source store serves the shipped checkpoint; the sink —
	// a cold, empty store — installs it under injection.
	srcDir := t.TempDir()
	src, _, _, _, err := Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := src.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rm, err := src.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(mf ManifestFile) (io.ReadCloser, error) {
		rc, _, err := src.CheckpointFile(mf.Name)
		return rc, err
	}
	n := exploreCrashPath(t,
		func(t *testing.T, dir string) {}, // cold sink: pre-view is "empty"
		func(t *testing.T, s *Store) error {
			_, err := s.InstallCheckpoint(rm, fetch)
			return err
		})
	if n == 0 {
		t.Fatal("install path explored no crash points")
	}
}

// TestCrashPointViewsDiffer sanity-checks the fingerprint: the
// pre- and post-append views of a store must differ, or the
// pre-or-post assertion above would be vacuous.
func TestCrashPointViewsDiffer(t *testing.T) {
	dir := t.TempDir()
	setupCommitted(t, dir)
	pre := viewOf(t, materializeDir(t, snapshotDir(t, dir)))
	s, _, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	post := viewOf(t, materializeDir(t, snapshotDir(t, dir)))
	if pre == post {
		t.Fatal("pre- and post-append fingerprints are identical")
	}
	if strings.HasPrefix(pre, "unrecoverable") || strings.HasPrefix(post, "unrecoverable") {
		t.Fatalf("fingerprinting failed: pre=%s post=%s", pre, post)
	}
}
