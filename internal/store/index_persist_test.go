package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// commitWithIndex commits a testCheckpoint carrying a built index over
// its cleaned snapshot.
func commitWithIndex(t *testing.T, s *Store) *Index {
	t.Helper()
	cp := testCheckpoint()
	cp.Index = BuildIndex(cp.Cleaned, 4)
	if err := s.Commit(cp); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return cp.Index
}

// TestCheckpointIndexRoundTrip proves a committed index reloads as a
// lazy index answering identically: no shard parses at load, segments
// report their on-disk size, and every posting decodes to the bytes
// the in-memory index held.
func TestCheckpointIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	want := commitWithIndex(t, s)
	s.Close()

	_, cp, _, notes := mustOpen(t, dir)
	if cp == nil {
		t.Fatal("no checkpoint after commit")
	}
	if cp.Index == nil {
		t.Fatalf("reloaded checkpoint has no index (note %q, notes %v)", cp.IndexNote, notes)
	}
	st := cp.Index.Stats()
	if st.LoadedShards != 0 {
		t.Fatalf("lazy index parsed %d shards at load", st.LoadedShards)
	}
	if st.DiskBytes == 0 {
		t.Fatal("lazy index reports zero on-disk bytes")
	}
	if st.Entries != len(cp.Cleaned.Entries) {
		t.Fatalf("index entries %d != cleaned %d", st.Entries, len(cp.Cleaned.Entries))
	}
	for s2 := range cp.Index.shards {
		if !reflect.DeepEqual(decodedShard(t, cp.Index.shards[s2]), decodedShard(t, want.shards[s2])) {
			t.Fatalf("shard %d diverged across persist/load", s2)
		}
	}
	after := cp.Index.Stats()
	if after.LoadedShards != numShards {
		t.Fatalf("decoding every shard loaded %d/%d", after.LoadedShards, numShards)
	}
	if after.Keys == 0 || after.ResidentBytes == 0 {
		t.Fatalf("loaded index stats empty: %+v", after)
	}
}

// TestLegacyCheckpointWithoutIndex is the migration test: a checkpoint
// committed by a pre-index-segment build (no index-NN.seg files, no
// manifest entries for them) must load cleanly with a nil Index and no
// note — the caller's BuildIndex fallback covers it.
func TestLegacyCheckpointWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil { // no Index attached
		t.Fatalf("Commit: %v", err)
	}
	s.Close()

	_, cp, _, notes := mustOpen(t, dir)
	if cp == nil {
		t.Fatalf("legacy checkpoint did not load (notes %v)", notes)
	}
	if cp.Index != nil {
		t.Fatal("checkpoint without segments produced an index")
	}
	if cp.IndexNote != "" {
		t.Fatalf("legacy checkpoint raised index note %q", cp.IndexNote)
	}
}

// TestPartialIndexSegmentsFallBack proves index trouble never fails
// the checkpoint: with some segments missing from the manifest, the
// checkpoint loads, the index is nil, and recovery notes say why.
func TestPartialIndexSegmentsFallBack(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	commitWithIndex(t, s)
	genDir := filepath.Join(dir, genName(s.Generation()))
	s.Close()

	// Surgically drop three segments: remove the files and their
	// manifest entries (the manifest must stay consistent, or the
	// checkpoint itself is rightly rejected).
	mPath := filepath.Join(genDir, manifestFile)
	mb, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []int{0, 7, 15} {
		name := indexSegName(seg)
		if _, ok := m.Files[name]; !ok {
			t.Fatalf("manifest lists no %s", name)
		}
		delete(m.Files, name)
		if err := os.Remove(filepath.Join(genDir, name)); err != nil {
			t.Fatal(err)
		}
	}
	mb, err = json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mPath, mb, 0o644); err != nil {
		t.Fatal(err)
	}

	_, cp, _, notes := mustOpen(t, dir)
	if cp == nil {
		t.Fatalf("checkpoint with partial index segments did not load (notes %v)", notes)
	}
	if cp.Index != nil {
		t.Fatal("partial segment set still produced an index")
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "index segments incomplete") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recovery note about the partial index: %v", notes)
	}
}

// TestDamagedIndexSegmentsDowngrade is the boot-robustness sweep for
// persisted index segments: byte-level truncations and bit flips at
// assorted offsets of an index-NN.seg must never fail the checkpoint —
// the index is derivable from the snapshots, so damage downgrades to
// Index == nil with a note naming the rebuild, while the snapshots and
// the rest of recovery proceed untouched. Contrast with snapshot files
// (TestRecoveryCorruptCheckpoint), where the same bit flip rightly
// rejects the whole generation.
func TestDamagedIndexSegmentsDowngrade(t *testing.T) {
	type damage struct {
		name  string
		apply func(data []byte) []byte
	}
	cases := []damage{
		{"truncate-to-zero", func(b []byte) []byte { return nil }},
		{"truncate-to-one-byte", func(b []byte) []byte { return b[:1] }},
		{"truncate-at-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncate-last-byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"flip-first-byte", func(b []byte) []byte { b[0] ^= 0x01; return b }},
		{"flip-middle-byte", func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b }},
		{"flip-last-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _, _, _ := mustOpen(t, dir)
			commitWithIndex(t, s)
			if err := s.AppendDelta(testDelta(1)); err != nil {
				t.Fatal(err)
			}
			genDir := filepath.Join(dir, genName(s.Generation()))
			s.Close()

			path := filepath.Join(genDir, indexSegName(3))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.apply(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2, cp, deltas, _ := mustOpen(t, dir)
			defer s2.Close()
			if cp == nil {
				t.Fatal("damaged index segment rejected the whole checkpoint")
			}
			if cp.Index != nil {
				t.Fatal("damaged index segment still produced an index")
			}
			if !strings.Contains(cp.IndexNote, "damaged") || !strings.Contains(cp.IndexNote, indexSegName(3)) {
				t.Fatalf("index note does not name the damage: %q", cp.IndexNote)
			}
			// Everything else recovered: snapshots, generation, the
			// appended delta — and the store still takes writes.
			if len(cp.Cleaned.Entries) != len(testCheckpoint().Cleaned.Entries) {
				t.Fatal("cleaned snapshot diverged under index damage")
			}
			if len(deltas) != 1 {
				t.Fatalf("replayed %d deltas, want 1", len(deltas))
			}
			if err := s2.AppendDelta(testDelta(2)); err != nil {
				t.Fatalf("append after index downgrade: %v", err)
			}
		})
	}
}

// TestMultipleDamagedIndexSegments: the note lists every damaged
// segment, sorted, so an operator sees the blast radius at a glance.
func TestMultipleDamagedIndexSegments(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	commitWithIndex(t, s)
	genDir := filepath.Join(dir, genName(s.Generation()))
	s.Close()
	for _, seg := range []int{14, 2} {
		path := filepath.Join(genDir, indexSegName(seg))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0x55
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, cp, _, _ := mustOpen(t, dir)
	defer s2.Close()
	if cp == nil || cp.Index != nil {
		t.Fatal("damaged segments did not downgrade to a rebuildable checkpoint")
	}
	i2, i14 := strings.Index(cp.IndexNote, indexSegName(2)), strings.Index(cp.IndexNote, indexSegName(14))
	if i2 < 0 || i14 < 0 || i2 > i14 {
		t.Fatalf("note does not list both damaged segments in order: %q", cp.IndexNote)
	}
}

// TestIndexSegmentSizeGuard is the checkpoint-size regression bound:
// persisted index segments must stay within a recorded bytes-per-entry
// budget on a realistic synthetic snapshot. The old map[key][]string
// representation costs 16+ bytes per posting element before string
// data; delta-varint blocks hold dense postings near 1 byte/element,
// so total segment bytes per entry stays in the low tens even with
// per-key headers. Raising this bound is a format regression — justify
// it in the commit that does.
func TestIndexSegmentSizeGuard(t *testing.T) {
	const maxBytesPerEntry = 16.0 // measured ~6.9 on this snapshot
	snap := indexSnapshot(3000)
	ix := BuildIndex(snap, 4)
	total := 0
	for s := 0; s < numShards; s++ {
		wire, err := ix.shardWire(s)
		if err != nil {
			t.Fatalf("shardWire(%d): %v", s, err)
		}
		total += len(wire)
	}
	perEntry := float64(total) / float64(len(snap.Entries))
	t.Logf("index segments: %d bytes over %d entries = %.2f bytes/entry", total, len(snap.Entries), perEntry)
	if perEntry > maxBytesPerEntry {
		t.Fatalf("index segments cost %.2f bytes/entry, budget %.1f", perEntry, maxBytesPerEntry)
	}
}
