// Replication surface of the generation store.
//
// A Store's on-disk layout is already a replication stream: the
// committed checkpoint is a CRC-manifested set of flat files, and the
// delta log is a sequence of CRC-framed segments whose (seq, byte
// offset) pairs name record boundaries identically on every replica —
// because followers append the primary's frame bytes verbatim. This
// file factors that observation into two symmetric surfaces:
//
//   - ReplicationSource: enumerate the committed checkpoint's files
//     and the live segments (ReplicationManifest), stream checkpoint
//     file bytes (CheckpointFile), and stream segment bytes from a
//     cursor (ReadSegment) — everything a remote follower needs to
//     bootstrap and tail.
//   - ReplicationSink: install a shipped checkpoint as the next local
//     generation (InstallCheckpoint) and append tailed frames through
//     the same validation path recovery uses (AppendFrames).
//
// *Store implements both. The convergence argument: a checkpoint ships
// with per-file CRCs and is re-verified on install; frames ship
// verbatim and are re-framed-checked on append; and CleanDelta is
// bit-deterministic — so a follower at the same stream position as its
// primary serves a byte-identical view (TestFollowerEquivalence in
// cmd/nvdserve).

package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nvdclean/internal/cve"
	"nvdclean/internal/parallel"
)

// installFanout bounds the concurrent file fetches of one
// InstallCheckpoint. The work is I/O-bound (network + fsync), so the
// bound is a transfer-parallelism knob, not a CPU one.
const installFanout = 8

// ErrSegmentRetired reports a read of a segment at or below the
// source's watermark: its records are folded into the committed
// checkpoint and the file is (or may be) gone. A follower that hits it
// has fallen behind the stream and must re-bootstrap from a fresh
// checkpoint — the periodic-state-broadcast half of the protocol.
var ErrSegmentRetired = errors.New("store: segment retired into a checkpoint")

// ErrNoSegment reports a read of a segment the source has not created
// yet (or an empty store).
var ErrNoSegment = errors.New("store: no such segment")

// ManifestFile is one checkpoint file a follower must fetch, with the
// size and CRC-32C it must verify against.
type ManifestFile struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// SegmentInfo describes one live delta-log segment at manifest time.
// Size counts committed (fsynced-frame) bytes only.
type SegmentInfo struct {
	Seq     uint64 `json:"seq"`
	Size    int64  `json:"size"`
	Records int    `json:"records"`
	Sealed  bool   `json:"sealed"`
}

// ReplicationManifest is a point-in-time description of everything a
// follower needs: the committed checkpoint (generation, watermark, and
// file list with sums) and the live segments above the watermark.
type ReplicationManifest struct {
	Generation    uint64         `json:"generation"`
	CheckpointSeq uint64         `json:"checkpointSeq"`
	WALSeq        uint64         `json:"walSeq"`
	Files         []ManifestFile `json:"files"`
	Segments      []SegmentInfo  `json:"segments,omitempty"`
}

// ReplicationSource is the read side of the stream: what a primary
// exposes so followers can bootstrap from its checkpoint and tail its
// segments.
type ReplicationSource interface {
	ReplicationManifest() (*ReplicationManifest, error)
	CheckpointFile(name string) (io.ReadCloser, int64, error)
	ReadSegment(seq uint64, off int64) (data []byte, sealed bool, err error)
	Watermark() uint64
}

// ReplicationSink is the write side: what a follower's local store
// accepts from the stream. Seal is part of the sink contract because
// followers mirror the primary's segment boundaries — when the stream
// says a segment is sealed, the sink seals its copy so seqs stay in
// lockstep.
type ReplicationSink interface {
	InstallCheckpoint(rm *ReplicationManifest, fetch func(ManifestFile) (io.ReadCloser, error)) (*Checkpoint, error)
	AppendFrames(raw []byte) ([]*cve.Delta, error)
	Seal() (uint64, error)
}

var (
	_ ReplicationSource = (*Store)(nil)
	_ ReplicationSink   = (*Store)(nil)
)

// checkpointFileName rejects anything but a bare file name, so a
// hostile manifest or URL cannot escape the checkpoint directory.
func checkpointFileName(name string) error {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") ||
		strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("store: invalid checkpoint file name %q", name)
	}
	return nil
}

// ReplicationManifest describes the committed checkpoint and the live
// segments for a follower. It returns an error while the store has no
// committed generation, and may return a transient error when a
// concurrent commit retires the generation mid-read — callers just
// retry and see the newer generation.
func (s *Store) ReplicationManifest() (*ReplicationManifest, error) {
	s.mu.Lock()
	gen, genSeq := s.gen, s.genSeq
	var segs []SegmentInfo
	for _, seg := range s.sealed {
		segs = append(segs, SegmentInfo{Seq: seg.seq, Size: seg.end, Records: seg.records, Sealed: true})
	}
	var walSeq uint64
	if s.active != nil {
		walSeq = s.active.seq
		segs = append(segs, SegmentInfo{Seq: s.active.seq, Size: s.active.off, Records: s.active.records})
	}
	s.mu.Unlock()
	if gen == 0 {
		return nil, fmt.Errorf("store: no committed generation to replicate")
	}
	mb, err := s.fs.ReadFile(filepath.Join(s.dir, genName(gen), manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: reading checkpoint manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("store: parsing checkpoint manifest: %w", err)
	}
	if m.Kind != manifestKind || m.Generation != gen {
		return nil, fmt.Errorf("store: checkpoint manifest does not match generation %d", gen)
	}
	rm := &ReplicationManifest{Generation: gen, CheckpointSeq: genSeq, WALSeq: walSeq, Segments: segs}
	for name, sum := range m.Files {
		rm.Files = append(rm.Files, ManifestFile{Name: name, Size: sum.Size, CRC32C: sum.CRC32C})
	}
	sort.Slice(rm.Files, func(i, j int) bool { return rm.Files[i].Name < rm.Files[j].Name })
	return rm, nil
}

// CheckpointFile opens one file of the committed checkpoint for
// streaming to a follower. The caller owns the ReadCloser.
func (s *Store) CheckpointFile(name string) (io.ReadCloser, int64, error) {
	if err := checkpointFileName(name); err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()
	if gen == 0 {
		return nil, 0, fmt.Errorf("store: no committed generation to replicate")
	}
	f, err := s.fs.Open(filepath.Join(s.dir, genName(gen), name))
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// ReadSegment returns the committed bytes of segment seq starting at
// byte offset off, and whether the segment is sealed (a sealed segment
// with no bytes past off means the follower should seal its own copy
// and advance to seq+1). It is safe to run concurrently with appends
// and seals: reads of the active segment are bounded by the committed
// frame offset captured under the lock, so a torn in-flight frame is
// never shipped. Reads at or below the watermark return
// ErrSegmentRetired; reads past the active segment return ErrNoSegment.
func (s *Store) ReadSegment(seq uint64, off int64) (data []byte, sealed bool, err error) {
	if off < 0 {
		return nil, false, fmt.Errorf("store: negative segment offset %d", off)
	}
	s.mu.Lock()
	genSeq := s.genSeq
	limit := int64(-1)
	sealed = true
	switch {
	case s.active == nil:
		s.mu.Unlock()
		return nil, false, ErrNoSegment
	case seq == s.active.seq:
		sealed = false
		limit = s.active.off
	case seq > s.active.seq:
		s.mu.Unlock()
		return nil, false, ErrNoSegment
	}
	s.mu.Unlock()
	if seq <= genSeq {
		return nil, false, ErrSegmentRetired
	}
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, segmentName(seq)))
	if err != nil {
		if os.IsNotExist(err) {
			// Raced a concurrent commit's retirement sweep.
			return nil, false, ErrSegmentRetired
		}
		return nil, false, err
	}
	if limit >= 0 && limit < int64(len(raw)) {
		raw = raw[:limit]
	}
	if off > int64(len(raw)) {
		if sealed {
			return nil, true, fmt.Errorf("store: offset %d beyond sealed segment %d end %d", off, seq, len(raw))
		}
		// The caller is exactly at (or, across a read race, momentarily
		// past) the committed end of the active segment: no new bytes.
		return nil, false, nil
	}
	return raw[off:], sealed, nil
}

// InstallCheckpoint makes a shipped checkpoint the store's next
// committed generation: it streams every manifest-listed file through
// fetch (invoked concurrently, up to installFanout calls in flight)
// into a gen-N.tmp directory re-verifying size and CRC-32C,
// writes a local manifest carrying the primary's walSeq watermark (the
// generation number is local bookkeeping — replicas compact at their
// own pace — but the watermark is the shared stream cursor and is
// preserved), fully loads and verifies the result, and commits it with
// the same rename + CURRENT-swap protocol as a local checkpoint. On
// success the old generation and every segment at or below the
// watermark are retired, a fresh active segment is open at watermark+1,
// and the loaded Checkpoint is returned for the caller to restore a
// serving view from. On error the store is unchanged.
//
// The local log must not be ahead of the shipped watermark: records
// past it would be silently discarded. Followers only install when
// bootstrapping cold or after ErrSegmentRetired, both of which satisfy
// this.
func (s *Store) InstallCheckpoint(rm *ReplicationManifest, fetch func(ManifestFile) (io.ReadCloser, error)) (*Checkpoint, error) {
	if rm == nil || rm.Generation == 0 || len(rm.Files) == 0 {
		return nil, fmt.Errorf("store: empty replication manifest")
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	gen := s.gen + 1
	keepActive := false
	switch {
	case s.active == nil:
		// Cold store: nothing local to reconcile.
	case s.active.seq <= rm.CheckpointSeq:
		// Every local record is folded into the shipped checkpoint;
		// the local segments retire below.
	case s.active.seq == rm.CheckpointSeq+1 && s.active.off == 0:
		// Already the empty successor (a reinstall after a crashed
		// bootstrap): keep it.
		keepActive = true
	default:
		seq := s.active.seq
		s.mu.Unlock()
		return nil, fmt.Errorf("store: local log at segment %d is ahead of shipped checkpoint watermark %d", seq, rm.CheckpointSeq)
	}
	s.mu.Unlock()

	name := genName(gen)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := s.fs.RemoveAll(tmp); err != nil {
		return nil, err
	}
	if err := s.fs.MkdirAll(tmp, 0o755); err != nil {
		return nil, err
	}
	m := &manifest{Kind: manifestKind, Generation: gen, Seq: rm.CheckpointSeq, Files: make(map[string]fileSum)}
	files := make([]ManifestFile, 0, len(rm.Files))
	for _, mf := range rm.Files {
		if err := checkpointFileName(mf.Name); err != nil {
			return nil, err
		}
		if mf.Name == manifestFile {
			continue // the local manifest is written below
		}
		files = append(files, mf)
		m.Files[mf.Name] = fileSum{Size: mf.Size, CRC32C: mf.CRC32C}
	}
	// Files land in parallel: install cost is I/O waits (network reads,
	// per-file fsyncs) that overlap across files even on one core. The
	// fetch callback must tolerate concurrent calls; the files are
	// independent, so worker count cannot change the installed bytes.
	workers := installFanout
	if len(files) < workers {
		workers = len(files)
	}
	if err := parallel.ForErr(workers, len(files), func(i int) error {
		return s.installFile(tmp, files[i], fetch)
	}); err != nil {
		return nil, err
	}
	f, err := s.fs.Create(filepath.Join(tmp, manifestFile))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: writing local manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	// Fully verify and decode the shipped checkpoint before committing
	// to it — a checkpoint that cannot serve must never win CURRENT.
	cp, err := loadCheckpoint(s.fs, tmp)
	if err != nil {
		return nil, fmt.Errorf("store: shipped checkpoint unusable: %w", err)
	}
	final := filepath.Join(s.dir, name)
	if err := s.fs.RemoveAll(final); err != nil {
		return nil, err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return nil, err
	}
	if err := syncDir(s.fs, s.dir); err != nil {
		return nil, err
	}
	// An active segment must exist before the commit point (same
	// protocol as commitSealed).
	var next *wal
	if !keepActive {
		next, _, _, err = openSegment(s.fs, filepath.Join(s.dir, segmentName(rm.CheckpointSeq+1)), rm.CheckpointSeq+1)
		if err != nil {
			return nil, err
		}
		if err := syncDir(s.fs, s.dir); err != nil {
			next.close()
			return nil, err
		}
	}
	if err := writeCurrent(s.fs, s.dir, name); err != nil {
		next.close()
		return nil, err
	}
	// Committed. Swap bookkeeping and retire the old world.
	s.mu.Lock()
	oldGen := s.gen
	oldActive := s.active
	s.gen = gen
	s.genSeq = rm.CheckpointSeq
	s.sealed = nil
	if !keepActive {
		s.active = next
	}
	s.lastSeq, s.lastOff = rm.CheckpointSeq+1, 0
	s.mu.Unlock()
	if !keepActive {
		oldActive.close()
	}
	if oldGen != 0 && oldGen != gen {
		s.fs.RemoveAll(filepath.Join(s.dir, genName(oldGen)))
	}
	for _, q := range segmentSeqs(s.fs, s.dir) {
		if q <= rm.CheckpointSeq {
			s.fs.Remove(filepath.Join(s.dir, segmentName(q)))
		}
	}
	return cp, nil
}

// installFile streams one shipped checkpoint file to disk, verifying
// its size and CRC-32C against the manifest entry as it lands.
func (s *Store) installFile(tmp string, mf ManifestFile, fetch func(ManifestFile) (io.ReadCloser, error)) error {
	rc, err := fetch(mf)
	if err != nil {
		return fmt.Errorf("store: fetching shipped %s: %w", mf.Name, err)
	}
	defer rc.Close()
	f, err := s.fs.Create(filepath.Join(tmp, mf.Name))
	if err != nil {
		return err
	}
	cw := &crcWriter{crc: crc32.New(walTable)}
	if _, err := io.Copy(io.MultiWriter(f, cw), rc); err != nil {
		f.Close()
		return fmt.Errorf("store: streaming shipped %s: %w", mf.Name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if cw.size != mf.Size || cw.crc.Sum32() != mf.CRC32C {
		return fmt.Errorf("store: shipped %s does not match its manifest sum (%d bytes, crc %08x; want %d, %08x)",
			mf.Name, cw.size, cw.crc.Sum32(), mf.Size, mf.CRC32C)
	}
	return nil
}

// AppendFrames validates and appends a batch of frames shipped
// verbatim from a primary's segment, returning the decoded deltas for
// the caller to apply to its serving view. The batch must be whole
// frames end to end — a shipped torn tail is transport corruption, not
// a crash artifact, and is rejected without touching the log. Bytes
// land verbatim, so after the append this store's LastPosition matches
// the primary's position for the same records.
func (s *Store) AppendFrames(raw []byte) ([]*cve.Delta, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	deltas, off, note := scanFrames(raw)
	if note != "" || off != int64(len(raw)) {
		return nil, fmt.Errorf("store: shipped frames rejected: %s", note)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil, fmt.Errorf("store: no committed checkpoint to log deltas against")
	}
	if err := s.active.appendRaw(raw, len(deltas)); err != nil {
		return nil, err
	}
	s.lastSeq, s.lastOff = s.active.seq, s.active.off
	return deltas, nil
}
