// Package store is nvdserve's persistence layer: a generation store
// that makes a cleaned-snapshot generation durable, and sharded
// inverted indexes (index.go) that make querying one fast.
//
// On disk a store directory holds:
//
//	CURRENT          the name of the committed checkpoint directory
//	gen-NNNNNN/      one full checkpoint (see below)
//	log-NNNNNN       one delta-log segment of CRC-framed records
//
// A checkpoint directory contains the original and cleaned snapshots in
// NVD JSON 1.1 feed form (the cleaned feed carries the backportedV3
// extension key), the consolidation maps, the trained severity engine,
// and state.json — the incremental-reuse state (dataset fingerprint,
// per-entry crawl and CWE artifacts, backported scores) that lets a
// restart rebuild a delta-cleanable Result without re-running the
// pipeline. MANIFEST.json closes the checkpoint with per-file CRC-32C
// sums — and the walSeq watermark naming the highest log segment the
// checkpoint already folds in — and is written last.
//
// The delta log is segmented (wal.go): appends go to the active
// segment, Seal closes it and opens a successor, and CommitSealed
// writes a checkpoint covering every record at or below the sealed
// seq. Sealing is what lets the checkpoint write leave the ingest hot
// path: the committer serializes the sealed generation in the
// background while new deltas append to the successor segment, and
// durability never weakens because every acknowledged delta is fsynced
// in some live segment before CURRENT swaps.
//
// A commit writes the next checkpoint into a gen-NNNNNN.tmp directory,
// fsyncs it, renames it into place, and only then swaps CURRENT (also
// via rename) — the CURRENT swap is the commit point. Segments at or
// below the checkpoint's walSeq are retired only after the swap. A
// crash at any step leaves either the old generation fully intact (tmp
// directories and orphaned gen directories are swept on open, and
// every segment is still on disk) or the new one fully committed
// (straggler segments at or below its walSeq are skipped and swept).
// The delta log recovers independently by truncating the last
// segment's torn tail, so the store always reopens at the last
// committed generation plus every durable delta.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"nvdclean/internal/crawler"
	"nvdclean/internal/cve"
	"nvdclean/internal/fsio"
	"nvdclean/internal/naming"
	"nvdclean/internal/parallel"
	"nvdclean/internal/predict"
)

// Checkpoint file names.
const (
	currentFile  = "CURRENT"
	manifestFile = "MANIFEST.json"
	originalFile = "original.json"
	cleanedFile  = "cleaned.json"
	vendorsFile  = "vendors.json"
	productsFile = "products.json"
	engineFile   = "engine.json"
	stateFile    = "state.json"
)

// CrawlArtifact is one entry's persisted §4.1 outcome: a pure function
// of the entry's references, replayed on warm starts so unchanged
// entries never touch the network again.
type CrawlArtifact struct {
	Estimated time.Time     `json:"estimated"`
	LagDays   int           `json:"lagDays"`
	Stats     crawler.Stats `json:"stats"`
}

// State is the serializable incremental-reuse state of one cleaned
// generation — everything CleanDelta needs from a previous Result that
// is not already in the two snapshots, the consolidation maps, or the
// engine document.
type State struct {
	// Fingerprint is the §4.3 dataset fingerprint of the cleaned
	// snapshot; Trained marks a generation whose severity stage ran.
	Fingerprint uint64 `json:"fingerprint"`
	Trained     bool   `json:"trained"`
	// Models, ModelConfig and Seed reproduce the training signature the
	// engine warm-start check compares against the boot options.
	Models      string              `json:"models"`
	ModelConfig predict.ModelConfig `json:"modelConfig"`
	Seed        int64               `json:"seed"`
	// Crawled marks a generation produced with a transport; Crawl holds
	// the per-entry artifacts.
	Crawled bool                     `json:"crawled"`
	Crawl   map[string]CrawlArtifact `json:"crawl,omitempty"`
	// CWEFix holds the per-entry §4.4 outcomes.
	CWEFix map[string]predict.EntryCorrection `json:"cweFix"`
	// HasBackport marks a generation carrying predicted v3 scores;
	// Backport maps CVE ID to the predicted score.
	HasBackport bool               `json:"hasBackport"`
	Backport    map[string]float64 `json:"backport,omitempty"`
}

// Checkpoint is one full generation as persisted: both snapshots, the
// consolidation maps, the trained engine (nil when the severity stage
// did not run) and the reuse state. Generation and Seq are filled by
// the store on load; callers building a checkpoint leave them zero.
type Checkpoint struct {
	Generation uint64
	// Seq is the walSeq watermark: the highest delta-log segment this
	// checkpoint folds in. Recovery replays only segments above it.
	Seq      uint64
	Original *cve.Snapshot
	Cleaned  *cve.Snapshot
	Vendors  *naming.Map
	Products *naming.ProductMap
	Engine   *predict.Engine
	State    *State
	// Index is the generation's query index. On commit, a non-nil
	// Index persists as per-shard segment files; on load, it is
	// assembled lazily from them (shards stay raw bytes until first
	// queried). Nil on legacy checkpoints without index segments —
	// callers fall back to one in-memory BuildIndex.
	Index *Index
	// IndexNote is filled on load when index segments were present but
	// unusable (and Index is therefore nil): the checkpoint itself is
	// still good, only the index needs rebuilding.
	IndexNote string
}

// manifest closes a checkpoint directory: it is written last, so its
// presence (with matching sums) certifies every other file.
type manifest struct {
	Kind       string             `json:"kind"`
	Generation uint64             `json:"generation"`
	Seq        uint64             `json:"walSeq"`
	Files      map[string]fileSum `json:"files"`
}

type fileSum struct {
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

const manifestKind = "nvdstore-checkpoint"

// Store is an open generation store. Log writers (AppendDelta, Seal)
// must be serialized (nvdserve does so behind its feed mutex), but a
// single CommitSealed may run concurrently with them — that is the
// background-compaction contract: the committer writes the sealed
// generation's checkpoint while new deltas append to the successor
// segment. The counter accessors may be called concurrently with
// everything.
type Store struct {
	dir string
	// fs is the filesystem every durability operation goes through —
	// fsio.OS in production, an fsio.Injector under fault-injection and
	// crash-point tests.
	fs fsio.FS
	// mu guards the generation counters, the sealed-segment list and
	// the active-segment pointer against concurrent reads; the log
	// write path itself is externally serialized.
	mu     sync.Mutex
	gen    uint64
	genSeq uint64
	sealed []sealedSeg
	active *wal
	// lastSeq/lastOff are the replication stream position of the last
	// applied record: the segment it landed in and the byte offset just
	// past its frame. Appends (local or shipped) advance it, Seal leaves
	// it alone, and installing or cold-committing a checkpoint resets it
	// to the fresh active segment's start — so two replicas whose
	// positions match are serving byte-identical log contents.
	lastSeq uint64
	lastOff int64
	// commitMu serializes checkpoint commits (the boot-path Commit
	// against a background CommitSealed).
	commitMu sync.Mutex
	// commitObs, when set, observes every CommitSealed outcome — wall
	// time and error — so the daemon can feed a checkpoint-duration
	// histogram without the store importing a metrics package.
	commitObs func(time.Duration, error)
}

// SetCommitObserver installs fn to be called after every CommitSealed
// (the funnel both the synchronous Commit and the background committer
// go through) with the commit's duration and outcome. fn must be safe
// for concurrent use; set it before commits start.
func (s *Store) SetCommitObserver(fn func(time.Duration, error)) {
	s.mu.Lock()
	s.commitObs = fn
	s.mu.Unlock()
}

// Open opens (creating if needed) the store at dir and recovers it to
// the last committed generation: the newest valid checkpoint plus every
// durable delta-log record, replayed across segments in order. It
// returns a nil Checkpoint when the store is empty (cold boot), and
// human-readable notes for anything recovery had to repair or discard.
func Open(dir string) (*Store, *Checkpoint, []*cve.Delta, []string, error) {
	return OpenFS(dir, fsio.OS{})
}

// OpenFS is Open with an explicit filesystem: fault-injection and
// crash-point tests pass an fsio.Injector, production passes fsio.OS
// (via Open).
func OpenFS(dir string, fs fsio.FS) (*Store, *Checkpoint, []*cve.Delta, []string, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, nil, err
	}
	var notes []string

	cp, err := pickCheckpoint(fs, dir, &notes)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s := &Store{dir: dir, fs: fs}
	if cp != nil {
		s.gen = cp.Generation
		s.genSeq = cp.Seq
	}
	migrateLegacyWAL(fs, dir, s.gen, s.genSeq, &notes)
	sweepStale(fs, dir, s.gen, s.genSeq, &notes)
	if cp == nil {
		return s, nil, nil, notes, nil
	}

	active, sealed, deltas, segNotes, err := replaySegments(fs, dir, s.genSeq)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	notes = append(notes, segNotes...)
	s.active = active
	s.sealed = sealed
	// Recover the replication position: the end of the last segment that
	// holds records, or the start of the (empty) active segment — the
	// same position the store had before the restart.
	s.lastSeq, s.lastOff = active.seq, 0
	if active.records > 0 {
		s.lastOff = active.off
	} else {
		for i := len(sealed) - 1; i >= 0; i-- {
			if sealed[i].records > 0 {
				s.lastSeq, s.lastOff = sealed[i].seq, sealed[i].end
				break
			}
		}
	}
	return s, cp, deltas, notes, nil
}

// migrateLegacyWAL adopts a pre-segmentation wal-NNNNNN.log belonging
// to the recovered generation as the first live segment: the frame
// format is unchanged, so a rename is a complete migration. When the
// file cannot be adopted (rename failure, or segments already exist —
// an ambiguous mix no upgrade path produces), it is left in place and
// noted; sweepStale preserves the current generation's legacy log, so
// acknowledged records are never silently discarded.
func migrateLegacyWAL(fs fsio.FS, dir string, gen, genSeq uint64, notes *[]string) {
	if gen == 0 {
		return
	}
	legacy := filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))
	if _, err := fs.Stat(legacy); err != nil {
		return
	}
	if len(segmentSeqs(fs, dir)) > 0 {
		*notes = append(*notes, fmt.Sprintf("ignoring legacy delta log wal-%06d.log (segments already present)", gen))
		return
	}
	if err := fs.Rename(legacy, filepath.Join(dir, segmentName(genSeq+1))); err != nil {
		*notes = append(*notes, fmt.Sprintf("legacy delta log not migrated: %v", err))
		return
	}
	*notes = append(*notes, fmt.Sprintf("migrated legacy delta log to segment %s", segmentName(genSeq+1)))
}

// pickCheckpoint loads the generation CURRENT names, falling back to
// the newest readable gen-* directory when CURRENT is missing, stale,
// or names a corrupt checkpoint.
func pickCheckpoint(fs fsio.FS, dir string, notes *[]string) (*Checkpoint, error) {
	var tried []string
	if name, err := readCurrent(fs, dir); err == nil && name != "" {
		cp, err := loadCheckpoint(fs, filepath.Join(dir, name))
		if err == nil {
			if cp.IndexNote != "" {
				*notes = append(*notes, fmt.Sprintf("checkpoint %s: %s", name, cp.IndexNote))
			}
			return cp, nil
		}
		*notes = append(*notes, fmt.Sprintf("checkpoint %s (CURRENT): %v", name, err))
		tried = append(tried, name)
	}
	for _, name := range genDirs(fs, dir) {
		if slices.Contains(tried, name) {
			continue
		}
		cp, err := loadCheckpoint(fs, filepath.Join(dir, name))
		if err != nil {
			*notes = append(*notes, fmt.Sprintf("checkpoint %s: %v", name, err))
			continue
		}
		if cp.IndexNote != "" {
			*notes = append(*notes, fmt.Sprintf("checkpoint %s: %s", name, cp.IndexNote))
		}
		*notes = append(*notes, fmt.Sprintf("recovered from checkpoint %s", name))
		return cp, nil
	}
	return nil, nil
}

// sweepStale removes interrupted commits (gen-*.tmp), checkpoint
// directories other than the recovered generation, legacy single-file
// delta logs of retired generations (the current generation's, if one
// somehow survived migration, still holds acknowledged records and is
// preserved), segments the committed checkpoint already folds in
// (walSeq and below — stragglers of a crash between the CURRENT swap
// and retirement), and, on a cold recovery with no checkpoint at all,
// every segment (deltas are unusable without their base generation).
func sweepStale(fs fsio.FS, dir string, gen, genSeq uint64, notes *[]string) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	keepDir := genName(gen)
	keepWAL := fmt.Sprintf("wal-%06d.log", gen)
	for _, ent := range entries {
		name := ent.Name()
		var stale bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = true
		case strings.HasPrefix(name, "gen-") && ent.IsDir() && name != keepDir:
			stale = true
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && name != keepWAL:
			stale = true
		default:
			if seq, ok := segmentSeq(name); ok && (gen == 0 || seq <= genSeq) {
				stale = true
			}
		}
		if stale {
			if err := fs.RemoveAll(filepath.Join(dir, name)); err == nil {
				*notes = append(*notes, "swept stale "+name)
			}
		}
	}
}

// genDirs lists complete-looking checkpoint directories, newest first.
func genDirs(fs fsio.FS, dir string) []string {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() && strings.HasPrefix(name, "gen-") && !strings.HasSuffix(name, ".tmp") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

func genName(gen uint64) string { return fmt.Sprintf("gen-%06d", gen) }

// Generation returns the committed checkpoint generation (0 when the
// store is empty).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// LogRecords returns the number of delta records applied on top of the
// committed checkpoint, across every live segment (sealed segments
// awaiting a background commit plus the active one).
func (s *Store) LogRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.sealed {
		n += seg.records
	}
	if s.active != nil {
		n += s.active.records
	}
	return n
}

// ActiveRecords returns the record count of the active segment alone —
// the records accumulated since the last seal, which is the compaction
// trigger.
func (s *Store) ActiveRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0
	}
	return s.active.records
}

// SealedSegments returns the number of sealed segments awaiting
// retirement by a checkpoint commit.
func (s *Store) SealedSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sealed)
}

// WALSeq returns the sequence number of the active delta-log segment —
// the replication/observability cursor that advances with every seal —
// or 0 when the store has no committed checkpoint yet.
func (s *Store) WALSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0
	}
	return s.active.seq
}

// LastPosition returns the replication stream position of the last
// record applied to this store: the segment it landed in and the byte
// offset just past its frame (segment start for a store that has not
// appended since its checkpoint). Because followers append the
// primary's frame bytes verbatim, two replicas at the same position
// are serving byte-identical content — which is why the daemon derives
// its ETag validator from this pair.
func (s *Store) LastPosition() (seq uint64, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq, s.lastOff
}

// ActivePosition returns the active segment's seq and committed byte
// length — the cursor a follower resumes tailing from after a local
// restart. (0, 0) when the store has no committed checkpoint yet.
func (s *Store) ActivePosition() (seq uint64, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0, 0
	}
	return s.active.seq, s.active.off
}

// Watermark returns the committed checkpoint's walSeq watermark: every
// segment at or below it is folded into the checkpoint and retired
// from the replication stream. 0 when the store is empty.
func (s *Store) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.genSeq
}

// AppendDelta makes one feed delta durable in the active segment. It
// must be called before the corresponding generation starts serving: a
// crash after the append replays the delta on restart, a crash before
// it loses nothing that was ever visible.
func (s *Store) AppendDelta(d *cve.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return fmt.Errorf("store: no committed checkpoint to log deltas against")
	}
	if err := s.active.append(d); err != nil {
		return err
	}
	s.lastSeq, s.lastOff = s.active.seq, s.active.off
	return nil
}

// Seal closes the active segment and opens its successor, returning
// the sealed seq. Every record appended before Seal is fsynced in the
// sealed segment; a checkpoint of the generation those records produce
// can then be committed off the append path (CommitSealed), while new
// deltas append to the successor. Seal itself is O(1) — one file
// create plus a directory sync, never a checkpoint write.
func (s *Store) Seal() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0, fmt.Errorf("store: no active segment to seal")
	}
	sealedSeq := s.active.seq
	records := s.active.records
	end := s.active.off
	next, _, _, err := openSegment(s.fs, filepath.Join(s.dir, segmentName(sealedSeq+1)), sealedSeq+1)
	if err != nil {
		return 0, err
	}
	if err := s.active.close(); err != nil {
		next.close()
		return 0, fmt.Errorf("store: sealing segment %d: %w", sealedSeq, err)
	}
	s.sealed = append(s.sealed, sealedSeg{seq: sealedSeq, records: records, end: end})
	s.active = next
	// Persist the successor's directory entry so a crash cannot lose
	// the (empty) segment the next append lands in.
	if err := syncDir(s.fs, s.dir); err != nil {
		return 0, err
	}
	return sealedSeq, nil
}

// Commit synchronously persists cp as the next generation, folding in
// every delta logged so far: it seals the active segment (when one
// exists) and runs CommitSealed inline. This is the boot path and the
// -compact-sync escape hatch; the non-blocking ingest path calls Seal
// and hands CommitSealed to a background Committer instead.
func (s *Store) Commit(cp *Checkpoint) error {
	s.mu.Lock()
	hasActive := s.active != nil
	s.mu.Unlock()
	var seq uint64
	if hasActive {
		var err error
		if seq, err = s.Seal(); err != nil {
			return err
		}
	}
	return s.CommitSealed(cp, seq)
}

// CommitSealed persists cp as the next generation, covering every
// delta-log record in segments at or below seq: it writes a complete
// checkpoint directory whose manifest records seq as its walSeq
// watermark, atomically renames it into place, swaps CURRENT, and then
// retires the previous generation and every segment the new checkpoint
// folds in. It is safe to run concurrently with AppendDelta/Seal on
// the successor segments — the write path the background committer
// uses — but at most one commit may be in flight at a time (enforced
// by commitMu). On error the old checkpoint and every segment are left
// intact, so the commit can simply be retried.
func (s *Store) CommitSealed(cp *Checkpoint, seq uint64) error {
	start := time.Now()
	err := s.commitSealed(cp, seq)
	s.mu.Lock()
	obs := s.commitObs
	s.mu.Unlock()
	if obs != nil {
		obs(time.Since(start), err)
	}
	return err
}

func (s *Store) commitSealed(cp *Checkpoint, seq uint64) error {
	if cp == nil || cp.Original == nil || cp.Cleaned == nil || cp.State == nil ||
		cp.Vendors == nil || cp.Products == nil {
		return fmt.Errorf("store: incomplete checkpoint")
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	gen := s.gen + 1
	if s.active != nil && seq >= s.active.seq {
		s.mu.Unlock()
		return fmt.Errorf("store: cannot commit through unsealed segment %d (active %d)", seq, s.active.seq)
	}
	if seq < s.genSeq {
		s.mu.Unlock()
		return fmt.Errorf("store: checkpoint walSeq %d behind committed watermark %d", seq, s.genSeq)
	}
	s.mu.Unlock()
	name := genName(gen)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := s.fs.RemoveAll(tmp); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	m := &manifest{Kind: manifestKind, Generation: gen, Seq: seq, Files: make(map[string]fileSum)}
	var mMu sync.Mutex
	write := func(file string, encode func(io.Writer) error) error {
		f, err := s.fs.Create(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		// Checksum while encoding, so the manifest sum costs no
		// second read of the (potentially large) document.
		cw := &crcWriter{crc: crc32.New(walTable)}
		if err := encode(io.MultiWriter(f, cw)); err != nil {
			f.Close()
			return fmt.Errorf("store: writing %s: %w", file, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		mMu.Lock()
		m.Files[file] = fileSum{Size: cw.size, CRC32C: cw.crc.Sum32()}
		mMu.Unlock()
		return nil
	}

	// Encode the checkpoint documents concurrently; the manifest is
	// written strictly last, since its presence certifies the rest.
	var g parallel.Group
	g.Go(func() error {
		return write(originalFile, func(w io.Writer) error { return cve.WriteFeedCompact(w, cp.Original) })
	})
	g.Go(func() error {
		return write(cleanedFile, func(w io.Writer) error { return cve.WriteFeedCompact(w, cp.Cleaned) })
	})
	g.Go(func() error {
		return write(vendorsFile, func(w io.Writer) error { return cp.Vendors.WriteJSON(w) })
	})
	g.Go(func() error {
		return write(productsFile, func(w io.Writer) error { return cp.Products.WriteJSON(w) })
	})
	g.Go(func() error {
		return write(stateFile, func(w io.Writer) error { return json.NewEncoder(w).Encode(cp.State) })
	})
	if cp.Engine != nil {
		g.Go(func() error {
			return write(engineFile, func(w io.Writer) error { return cp.Engine.WriteJSON(w) })
		})
	}
	if cp.Index != nil {
		if cp.Index.Entries() != len(cp.Cleaned.Entries) {
			return fmt.Errorf("store: index covers %d entries, cleaned snapshot has %d",
				cp.Index.Entries(), len(cp.Cleaned.Entries))
		}
		for s := 0; s < numShards; s++ {
			s := s
			g.Go(func() error {
				wire, err := cp.Index.shardWire(s)
				if err != nil {
					return fmt.Errorf("store: encoding index shard %d: %w", s, err)
				}
				return write(indexSegName(s), func(w io.Writer) error {
					_, err := w.Write(wire)
					return err
				})
			})
		}
	}
	if err := g.Wait(); err != nil {
		return err
	}
	if err := write(manifestFile, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}); err != nil {
		return err
	}
	// The manifest records sums for every other file, not itself.
	delete(m.Files, manifestFile)

	// A prior Commit attempt for this generation may have renamed its
	// directory into place and then failed (e.g. disk full writing
	// CURRENT); clear the orphan or the rename below wedges every
	// retry with ENOTEMPTY.
	final := filepath.Join(s.dir, name)
	if err := s.fs.RemoveAll(final); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(s.fs, s.dir); err != nil {
		return err
	}
	// An active segment must exist before the commit point, so a
	// committed CURRENT always has a log to append to. The compaction
	// path sealed one open already; the cold boot path creates the
	// first segment here.
	s.mu.Lock()
	if s.active == nil {
		next, _, _, err := openSegment(s.fs, filepath.Join(s.dir, segmentName(seq+1)), seq+1)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.active = next
		// First segment of a cold boot: the replication position starts
		// at its first byte.
		if s.lastSeq == 0 {
			s.lastSeq, s.lastOff = seq+1, 0
		}
	}
	s.mu.Unlock()
	if err := writeCurrent(s.fs, s.dir, name); err != nil {
		return err
	}
	// Committed. Retire the previous generation and every segment the
	// new checkpoint folds in (seq and below).
	s.mu.Lock()
	oldGen := s.gen
	s.gen = gen
	s.genSeq = seq
	var retire []uint64
	live := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.seq <= seq {
			retire = append(retire, seg.seq)
		} else {
			live = append(live, seg)
		}
	}
	s.sealed = live
	s.mu.Unlock()
	if oldGen != 0 {
		s.fs.RemoveAll(filepath.Join(s.dir, genName(oldGen)))
	}
	for _, q := range retire {
		s.fs.Remove(filepath.Join(s.dir, segmentName(q)))
	}
	return nil
}

// Probe attempts one small durable write cycle — create, write, fsync,
// remove a scratch file — in the store directory, reporting whether
// the disk currently accepts writes. The daemon's degraded-mode
// recovery loop polls it after a persist failure; the .tmp suffix
// means a probe stranded by a crash is swept on the next open. A
// successful probe also heals a poisoned delta log (a rollback that
// could not truncate at fault time is retried now that writes work),
// so recovery never requires a restart: Probe returning nil means the
// store accepts appends again.
func (s *Store) Probe() error {
	path := filepath.Join(s.dir, "probe.tmp")
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("probe\n")); err != nil {
		f.Close()
		s.fs.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(path)
		return err
	}
	if err := s.fs.Remove(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	return s.active.heal()
}

// Close releases the active delta-log segment handle.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active.close()
}

// crcWriter accumulates the size and CRC-32C of everything written
// through it.
type crcWriter struct {
	crc  hash.Hash32
	size int64
}

func (w *crcWriter) Write(p []byte) (int, error) {
	w.crc.Write(p)
	w.size += int64(len(p))
	return len(p), nil
}

func syncDir(fs fsio.FS, dir string) error {
	f, err := fs.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func readCurrent(fs fsio.FS, dir string) (string, error) {
	b, err := fs.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// writeCurrent atomically repoints CURRENT — the commit point of the
// whole store.
func writeCurrent(fs fsio.FS, dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := fs.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	f, err := fs.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := fs.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(fs, dir)
}

// loadCheckpoint reads and fully verifies one checkpoint directory:
// the manifest must parse, every listed file must match its recorded
// size and CRC-32C sum, and every document must decode. Index segment
// files are the one exception to strictness: a torn or corrupt
// index-NN.seg is dropped (with a note) rather than failing the
// checkpoint, because the index is derivable — the caller rebuilds it
// from the cleaned snapshot — while the snapshots and maps are not.
func loadCheckpoint(fs fsio.FS, path string) (*Checkpoint, error) {
	mb, err := fs.ReadFile(filepath.Join(path, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Kind != manifestKind {
		return nil, fmt.Errorf("manifest: unexpected kind %q", m.Kind)
	}
	files := make(map[string][]byte, len(m.Files))
	var segDamage []string
	for name, want := range m.Files {
		data, err := fs.ReadFile(filepath.Join(path, name))
		if err == nil && (int64(len(data)) != want.Size || crc32.Checksum(data, walTable) != want.CRC32C) {
			err = fmt.Errorf("%s: checksum mismatch", name)
		}
		if err != nil {
			if isIndexSegName(name) {
				segDamage = append(segDamage, name)
				continue
			}
			return nil, err
		}
		files[name] = data
	}
	need := func(name string) ([]byte, error) {
		data, ok := files[name]
		if !ok {
			return nil, fmt.Errorf("manifest lists no %s", name)
		}
		return data, nil
	}

	// The two snapshots, the reuse state and the engine are the large
	// documents; decode them concurrently. The consolidation maps are
	// small enough to decode inline.
	cp := &Checkpoint{Generation: m.Generation, Seq: m.Seq}
	var g parallel.Group
	decode := func(file string, fn func([]byte) error) {
		g.Go(func() error {
			data, err := need(file)
			if err != nil {
				return err
			}
			if err := fn(data); err != nil {
				return fmt.Errorf("%s: %w", file, err)
			}
			return nil
		})
	}
	decode(originalFile, func(data []byte) (err error) {
		cp.Original, err = cve.ReadFeed(bytes.NewReader(data))
		return err
	})
	decode(cleanedFile, func(data []byte) (err error) {
		cp.Cleaned, err = cve.ReadFeed(bytes.NewReader(data))
		return err
	})
	decode(stateFile, func(data []byte) error {
		return json.Unmarshal(data, &cp.State)
	})
	if _, ok := files[engineFile]; ok {
		decode(engineFile, func(data []byte) (err error) {
			cp.Engine, err = predict.ReadEngineJSON(bytes.NewReader(data))
			return err
		})
	}
	if data, err := need(vendorsFile); err != nil {
		return nil, err
	} else if cp.Vendors, err = naming.ReadMapJSON(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("%s: %w", vendorsFile, err)
	}
	if data, err := need(productsFile); err != nil {
		return nil, err
	} else if cp.Products, err = naming.ReadProductMapJSON(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("%s: %w", productsFile, err)
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	cp.Index, cp.IndexNote = loadIndexSegments(files, cp.Cleaned)
	if len(segDamage) > 0 {
		sort.Strings(segDamage)
		cp.Index = nil
		cp.IndexNote = fmt.Sprintf("index segments damaged (%s); index will be rebuilt",
			strings.Join(segDamage, ", "))
	}
	return cp, nil
}

// isIndexSegName reports whether a manifest-listed file is an index
// segment — the derivable class of checkpoint file that may be dropped
// on damage.
func isIndexSegName(name string) bool {
	return strings.HasPrefix(name, "index-") && strings.HasSuffix(name, ".seg")
}

// loadIndexSegments assembles the checkpoint's lazy index from its
// segment files (already CRC-verified against the manifest). Index
// trouble never fails the checkpoint: a legacy checkpoint with no
// segments returns a silent nil, and a partial or mismatched segment
// set returns nil with a note — either way the caller rebuilds in
// memory.
func loadIndexSegments(files map[string][]byte, cleaned *cve.Snapshot) (*Index, string) {
	var raws [numShards][]byte
	found := 0
	for s := range raws {
		if data, ok := files[indexSegName(s)]; ok {
			raws[s] = data
			found++
		}
	}
	if found == 0 {
		return nil, ""
	}
	if found < numShards {
		return nil, fmt.Sprintf("index segments incomplete (%d/%d); index will be rebuilt", found, numShards)
	}
	ix, err := indexFromSegments(raws, cleaned)
	if err != nil {
		return nil, fmt.Sprintf("index segments unusable (%v); index will be rebuilt", err)
	}
	return ix, ""
}
