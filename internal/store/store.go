// Package store is nvdserve's persistence layer: a generation store
// that makes a cleaned-snapshot generation durable, and sharded
// inverted indexes (index.go) that make querying one fast.
//
// On disk a store directory holds:
//
//	CURRENT          the name of the committed checkpoint directory
//	gen-NNNNNN/      one full checkpoint (see below)
//	wal-NNNNNN.log   CRC-framed delta records applied since gen-NNNNNN
//
// A checkpoint directory contains the original and cleaned snapshots in
// NVD JSON 1.1 feed form (the cleaned feed carries the backportedV3
// extension key), the consolidation maps, the trained severity engine,
// and state.json — the incremental-reuse state (dataset fingerprint,
// per-entry crawl and CWE artifacts, backported scores) that lets a
// restart rebuild a delta-cleanable Result without re-running the
// pipeline. MANIFEST.json closes the checkpoint with per-file CRC-32C
// sums and is written last.
//
// Commit writes the next checkpoint into a gen-NNNNNN.tmp directory,
// fsyncs it, renames it into place, and only then swaps CURRENT (also
// via rename) — the CURRENT swap is the commit point. A crash at any
// step leaves either the old generation fully intact (tmp directories
// and orphaned gen directories are swept on open) or the new one fully
// committed. The delta log recovers independently by truncating its
// torn tail, so the store always reopens at the last committed
// generation plus every durable delta.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"nvdclean/internal/crawler"
	"nvdclean/internal/cve"
	"nvdclean/internal/naming"
	"nvdclean/internal/parallel"
	"nvdclean/internal/predict"
)

// Checkpoint file names.
const (
	currentFile  = "CURRENT"
	manifestFile = "MANIFEST.json"
	originalFile = "original.json"
	cleanedFile  = "cleaned.json"
	vendorsFile  = "vendors.json"
	productsFile = "products.json"
	engineFile   = "engine.json"
	stateFile    = "state.json"
)

// CrawlArtifact is one entry's persisted §4.1 outcome: a pure function
// of the entry's references, replayed on warm starts so unchanged
// entries never touch the network again.
type CrawlArtifact struct {
	Estimated time.Time     `json:"estimated"`
	LagDays   int           `json:"lagDays"`
	Stats     crawler.Stats `json:"stats"`
}

// State is the serializable incremental-reuse state of one cleaned
// generation — everything CleanDelta needs from a previous Result that
// is not already in the two snapshots, the consolidation maps, or the
// engine document.
type State struct {
	// Fingerprint is the §4.3 dataset fingerprint of the cleaned
	// snapshot; Trained marks a generation whose severity stage ran.
	Fingerprint uint64 `json:"fingerprint"`
	Trained     bool   `json:"trained"`
	// Models, ModelConfig and Seed reproduce the training signature the
	// engine warm-start check compares against the boot options.
	Models      string              `json:"models"`
	ModelConfig predict.ModelConfig `json:"modelConfig"`
	Seed        int64               `json:"seed"`
	// Crawled marks a generation produced with a transport; Crawl holds
	// the per-entry artifacts.
	Crawled bool                     `json:"crawled"`
	Crawl   map[string]CrawlArtifact `json:"crawl,omitempty"`
	// CWEFix holds the per-entry §4.4 outcomes.
	CWEFix map[string]predict.EntryCorrection `json:"cweFix"`
	// HasBackport marks a generation carrying predicted v3 scores;
	// Backport maps CVE ID to the predicted score.
	HasBackport bool               `json:"hasBackport"`
	Backport    map[string]float64 `json:"backport,omitempty"`
}

// Checkpoint is one full generation as persisted: both snapshots, the
// consolidation maps, the trained engine (nil when the severity stage
// did not run) and the reuse state.
type Checkpoint struct {
	Generation uint64
	Original   *cve.Snapshot
	Cleaned    *cve.Snapshot
	Vendors    *naming.Map
	Products   *naming.ProductMap
	Engine     *predict.Engine
	State      *State
}

// manifest closes a checkpoint directory: it is written last, so its
// presence (with matching sums) certifies every other file.
type manifest struct {
	Kind       string             `json:"kind"`
	Generation uint64             `json:"generation"`
	Files      map[string]fileSum `json:"files"`
}

type fileSum struct {
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

const manifestKind = "nvdstore-checkpoint"

// Store is an open generation store. Writers must be serialized
// (nvdserve does so behind its feed mutex); the counter accessors
// Generation and LogRecords may be called concurrently with a writer.
type Store struct {
	dir string
	// mu guards gen and wal against concurrent counter reads; the
	// write path itself is externally serialized.
	mu  sync.Mutex
	gen uint64
	wal *wal
}

// Open opens (creating if needed) the store at dir and recovers it to
// the last committed generation: the newest valid checkpoint plus every
// durable delta-log record. It returns a nil Checkpoint when the store
// is empty (cold boot), and human-readable notes for anything recovery
// had to repair or discard.
func Open(dir string) (*Store, *Checkpoint, []*cve.Delta, []string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, nil, err
	}
	var notes []string

	cp, err := pickCheckpoint(dir, &notes)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s := &Store{dir: dir}
	if cp != nil {
		s.gen = cp.Generation
	}
	sweepStale(dir, s.gen, &notes)
	if cp == nil {
		return s, nil, nil, notes, nil
	}

	w, deltas, note, err := openWAL(s.walPath(s.gen))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if note != "" {
		notes = append(notes, "delta log: "+note)
	}
	s.wal = w
	return s, cp, deltas, notes, nil
}

// pickCheckpoint loads the generation CURRENT names, falling back to
// the newest readable gen-* directory when CURRENT is missing, stale,
// or names a corrupt checkpoint.
func pickCheckpoint(dir string, notes *[]string) (*Checkpoint, error) {
	var tried []string
	if name, err := readCurrent(dir); err == nil && name != "" {
		cp, err := loadCheckpoint(filepath.Join(dir, name))
		if err == nil {
			return cp, nil
		}
		*notes = append(*notes, fmt.Sprintf("checkpoint %s (CURRENT): %v", name, err))
		tried = append(tried, name)
	}
	for _, name := range genDirs(dir) {
		if slices.Contains(tried, name) {
			continue
		}
		cp, err := loadCheckpoint(filepath.Join(dir, name))
		if err != nil {
			*notes = append(*notes, fmt.Sprintf("checkpoint %s: %v", name, err))
			continue
		}
		*notes = append(*notes, fmt.Sprintf("recovered from checkpoint %s", name))
		return cp, nil
	}
	return nil, nil
}

// sweepStale removes interrupted commits (gen-*.tmp), checkpoint
// directories other than the recovered generation, and delta logs that
// no longer belong to any generation.
func sweepStale(dir string, gen uint64, notes *[]string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepDir := genName(gen)
	keepWAL := fmt.Sprintf("wal-%06d.log", gen)
	for _, ent := range entries {
		name := ent.Name()
		var stale bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = true
		case strings.HasPrefix(name, "gen-") && ent.IsDir() && name != keepDir:
			stale = true
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && name != keepWAL:
			stale = true
		}
		if stale {
			if err := os.RemoveAll(filepath.Join(dir, name)); err == nil {
				*notes = append(*notes, "swept stale "+name)
			}
		}
	}
}

// genDirs lists complete-looking checkpoint directories, newest first.
func genDirs(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() && strings.HasPrefix(name, "gen-") && !strings.HasSuffix(name, ".tmp") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

func genName(gen uint64) string { return fmt.Sprintf("gen-%06d", gen) }

func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%06d.log", gen))
}

// Generation returns the committed checkpoint generation (0 when the
// store is empty).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// LogRecords returns the number of delta records applied on top of the
// committed checkpoint — the compaction trigger.
func (s *Store) LogRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.records
}

// AppendDelta makes one feed delta durable. It must be called before
// the corresponding generation starts serving: a crash after the
// append replays the delta on restart, a crash before it loses nothing
// that was ever visible.
func (s *Store) AppendDelta(d *cve.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: no committed checkpoint to log deltas against")
	}
	return s.wal.append(d)
}

// Commit persists cp as the next generation: it writes a complete
// checkpoint directory, atomically renames it into place, swaps
// CURRENT, starts a fresh (empty) delta log and sweeps the previous
// generation. Folding the serving Result into a Commit after enough
// AppendDelta calls is the store's compaction.
func (s *Store) Commit(cp *Checkpoint) error {
	if cp == nil || cp.Original == nil || cp.Cleaned == nil || cp.State == nil ||
		cp.Vendors == nil || cp.Products == nil {
		return fmt.Errorf("store: incomplete checkpoint")
	}
	gen := s.gen + 1
	name := genName(gen)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	m := &manifest{Kind: manifestKind, Generation: gen, Files: make(map[string]fileSum)}
	var mMu sync.Mutex
	write := func(file string, encode func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		// Checksum while encoding, so the manifest sum costs no
		// second read of the (potentially large) document.
		cw := &crcWriter{crc: crc32.New(walTable)}
		if err := encode(io.MultiWriter(f, cw)); err != nil {
			f.Close()
			return fmt.Errorf("store: writing %s: %w", file, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		mMu.Lock()
		m.Files[file] = fileSum{Size: cw.size, CRC32C: cw.crc.Sum32()}
		mMu.Unlock()
		return nil
	}

	// Encode the checkpoint documents concurrently; the manifest is
	// written strictly last, since its presence certifies the rest.
	var g parallel.Group
	g.Go(func() error {
		return write(originalFile, func(w io.Writer) error { return cve.WriteFeedCompact(w, cp.Original) })
	})
	g.Go(func() error {
		return write(cleanedFile, func(w io.Writer) error { return cve.WriteFeedCompact(w, cp.Cleaned) })
	})
	g.Go(func() error {
		return write(vendorsFile, func(w io.Writer) error { return cp.Vendors.WriteJSON(w) })
	})
	g.Go(func() error {
		return write(productsFile, func(w io.Writer) error { return cp.Products.WriteJSON(w) })
	})
	g.Go(func() error {
		return write(stateFile, func(w io.Writer) error { return json.NewEncoder(w).Encode(cp.State) })
	})
	if cp.Engine != nil {
		g.Go(func() error {
			return write(engineFile, func(w io.Writer) error { return cp.Engine.WriteJSON(w) })
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	if err := write(manifestFile, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}); err != nil {
		return err
	}
	// The manifest records sums for every other file, not itself.
	delete(m.Files, manifestFile)

	// A prior Commit attempt for this generation may have renamed its
	// directory into place and then failed (e.g. disk full writing
	// CURRENT); clear the orphan or the rename below wedges every
	// retry with ENOTEMPTY.
	final := filepath.Join(s.dir, name)
	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Fresh, empty delta log for the new generation before the commit
	// point, so a committed CURRENT always has its log.
	newWAL, _, _, err := openWAL(s.walPath(gen))
	if err != nil {
		return err
	}
	if err := writeCurrent(s.dir, name); err != nil {
		newWAL.close()
		return err
	}
	// Committed. Retire the previous generation.
	s.mu.Lock()
	oldGen := s.gen
	if s.wal != nil {
		s.wal.close()
	}
	s.wal = newWAL
	s.gen = gen
	s.mu.Unlock()
	if oldGen != 0 {
		os.RemoveAll(filepath.Join(s.dir, genName(oldGen)))
		os.Remove(s.walPath(oldGen))
	}
	return nil
}

// Close releases the delta log handle.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.wal.close()
}

// crcWriter accumulates the size and CRC-32C of everything written
// through it.
type crcWriter struct {
	crc  hash.Hash32
	size int64
}

func (w *crcWriter) Write(p []byte) (int, error) {
	w.crc.Write(p)
	w.size += int64(len(p))
	return len(p), nil
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func readCurrent(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// writeCurrent atomically repoints CURRENT — the commit point of the
// whole store.
func writeCurrent(dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadCheckpoint reads and fully verifies one checkpoint directory:
// the manifest must parse, every listed file must match its recorded
// size and CRC-32C sum, and every document must decode.
func loadCheckpoint(path string) (*Checkpoint, error) {
	mb, err := os.ReadFile(filepath.Join(path, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Kind != manifestKind {
		return nil, fmt.Errorf("manifest: unexpected kind %q", m.Kind)
	}
	files := make(map[string][]byte, len(m.Files))
	for name, want := range m.Files {
		data, err := os.ReadFile(filepath.Join(path, name))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != want.Size || crc32.Checksum(data, walTable) != want.CRC32C {
			return nil, fmt.Errorf("%s: checksum mismatch", name)
		}
		files[name] = data
	}
	need := func(name string) ([]byte, error) {
		data, ok := files[name]
		if !ok {
			return nil, fmt.Errorf("manifest lists no %s", name)
		}
		return data, nil
	}

	// The two snapshots, the reuse state and the engine are the large
	// documents; decode them concurrently. The consolidation maps are
	// small enough to decode inline.
	cp := &Checkpoint{Generation: m.Generation}
	var g parallel.Group
	decode := func(file string, fn func([]byte) error) {
		g.Go(func() error {
			data, err := need(file)
			if err != nil {
				return err
			}
			if err := fn(data); err != nil {
				return fmt.Errorf("%s: %w", file, err)
			}
			return nil
		})
	}
	decode(originalFile, func(data []byte) (err error) {
		cp.Original, err = cve.ReadFeed(bytes.NewReader(data))
		return err
	})
	decode(cleanedFile, func(data []byte) (err error) {
		cp.Cleaned, err = cve.ReadFeed(bytes.NewReader(data))
		return err
	})
	decode(stateFile, func(data []byte) error {
		return json.Unmarshal(data, &cp.State)
	})
	if _, ok := files[engineFile]; ok {
		decode(engineFile, func(data []byte) (err error) {
			cp.Engine, err = predict.ReadEngineJSON(bytes.NewReader(data))
			return err
		})
	}
	if data, err := need(vendorsFile); err != nil {
		return nil, err
	} else if cp.Vendors, err = naming.ReadMapJSON(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("%s: %w", vendorsFile, err)
	}
	if data, err := need(productsFile); err != nil {
		return nil, err
	} else if cp.Products, err = naming.ReadProductMapJSON(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("%s: %w", productsFile, err)
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return cp, nil
}
