package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// sourceFetch adapts a local source store's CheckpointFile to the fetch
// callback InstallCheckpoint wants — the in-process stand-in for the
// HTTP client in cmd/nvdserve.
func sourceFetch(src *Store) func(ManifestFile) (io.ReadCloser, error) {
	return func(mf ManifestFile) (io.ReadCloser, error) {
		rc, _, err := src.CheckpointFile(mf.Name)
		return rc, err
	}
}

func TestReplicationManifest(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if _, err := s.ReplicationManifest(); err == nil {
		t.Fatal("empty store offered a replication manifest")
	}
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(3)); err != nil {
		t.Fatal(err)
	}

	rm, err := s.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	if rm.Generation != 1 || rm.CheckpointSeq != 0 || rm.WALSeq != 2 {
		t.Fatalf("manifest gen=%d checkpointSeq=%d walSeq=%d, want 1/0/2", rm.Generation, rm.CheckpointSeq, rm.WALSeq)
	}
	if len(rm.Segments) != 2 {
		t.Fatalf("manifest lists %d segments, want 2", len(rm.Segments))
	}
	if sg := rm.Segments[0]; sg.Seq != 1 || !sg.Sealed || sg.Records != 2 || sg.Size <= 0 {
		t.Errorf("sealed segment entry: %+v", sg)
	}
	if sg := rm.Segments[1]; sg.Seq != 2 || sg.Sealed || sg.Records != 1 || sg.Size <= 0 {
		t.Errorf("active segment entry: %+v", sg)
	}

	// Every listed file must exist in the committed generation with the
	// listed size, and the list must cover the directory minus the
	// manifest itself (which the follower rewrites locally).
	genDir := filepath.Join(dir, genName(1))
	ents, err := os.ReadDir(genDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Files) != len(ents)-1 {
		t.Errorf("manifest lists %d files, directory has %d (incl. manifest)", len(rm.Files), len(ents))
	}
	for _, mf := range rm.Files {
		if mf.Name == manifestFile {
			t.Errorf("manifest lists itself")
		}
		fi, err := os.Stat(filepath.Join(genDir, mf.Name))
		if err != nil {
			t.Errorf("listed file %s: %v", mf.Name, err)
			continue
		}
		if fi.Size() != mf.Size {
			t.Errorf("%s: manifest size %d, on disk %d", mf.Name, mf.Size, fi.Size())
		}
	}
}

func TestReadSegment(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	_, end := s.ActivePosition()

	if _, _, err := s.ReadSegment(1, -1); err == nil {
		t.Error("negative offset accepted")
	}
	data, sealed, err := s.ReadSegment(1, 0)
	if err != nil || sealed || int64(len(data)) != end {
		t.Fatalf("active read: %d bytes sealed=%v err=%v, want %d/false/nil", len(data), sealed, err, end)
	}
	// A cursor at the committed end of the active segment gets nothing —
	// the caught-up case.
	data, sealed, err = s.ReadSegment(1, end)
	if err != nil || sealed || len(data) != 0 {
		t.Fatalf("caught-up read: %d bytes sealed=%v err=%v", len(data), sealed, err)
	}
	// Mid-segment resume returns the tail only.
	tail, _, err := s.ReadSegment(1, 8)
	if err != nil || int64(len(tail)) != end-8 {
		t.Fatalf("resumed read: %d bytes err=%v, want %d", len(tail), err, end-8)
	}

	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	data, sealed, err = s.ReadSegment(1, 0)
	if err != nil || !sealed || int64(len(data)) != end {
		t.Fatalf("sealed read: %d bytes sealed=%v err=%v", len(data), sealed, err)
	}
	if _, _, err := s.ReadSegment(1, end+10); err == nil {
		t.Error("offset beyond sealed end accepted")
	}
	// The fresh active successor exists and is empty.
	data, sealed, err = s.ReadSegment(2, 0)
	if err != nil || sealed || len(data) != 0 {
		t.Fatalf("empty active read: %d bytes sealed=%v err=%v", len(data), sealed, err)
	}
	if _, _, err := s.ReadSegment(3, 0); !errors.Is(err, ErrNoSegment) {
		t.Errorf("future segment: %v, want ErrNoSegment", err)
	}

	// Folding segment 1 into a checkpoint retires it from the stream.
	if err := s.CommitSealed(testCheckpoint(), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadSegment(1, 0); !errors.Is(err, ErrSegmentRetired) {
		t.Errorf("retired segment: %v, want ErrSegmentRetired", err)
	}
}

// TestInstallCheckpointRoundTrip ships a primary's checkpoint and
// tailed frames into a cold sink store and proves the sink converges to
// the same content and the same stream position.
func TestInstallCheckpointRoundTrip(t *testing.T) {
	primary, _, _, _ := mustOpen(t, t.TempDir())
	want := testCheckpoint()
	if err := primary.Commit(want); err != nil {
		t.Fatal(err)
	}
	if err := primary.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	rm, err := primary.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}

	sinkDir := t.TempDir()
	sink, _, _, _ := mustOpen(t, sinkDir)
	cp, err := sink.InstallCheckpoint(rm, sourceFetch(primary))
	if err != nil {
		t.Fatalf("InstallCheckpoint: %v", err)
	}
	if sink.Generation() != 1 || sink.Watermark() != rm.CheckpointSeq {
		t.Fatalf("sink gen=%d watermark=%d, want 1/%d", sink.Generation(), sink.Watermark(), rm.CheckpointSeq)
	}
	for i, e := range want.Cleaned.Entries {
		if !e.Equal(cp.Cleaned.Entries[i]) {
			t.Errorf("shipped cleaned entry %d mismatch", i)
		}
	}
	if cp.Vendors.Canonical("redhat_inc") != "redhat" {
		t.Error("shipped vendor map mismatch")
	}

	// Tail the primary's frames verbatim; positions must align.
	raw, _, err := primary.ReadSegment(rm.CheckpointSeq+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := sink.AppendFrames(raw)
	if err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}
	if len(deltas) != 1 || len(deltas[0].Added) != 1 || deltas[0].Added[0].ID != "CVE-2018-0101" {
		t.Fatalf("shipped deltas decoded wrong: %+v", deltas)
	}
	pSeq, pOff := primary.LastPosition()
	sSeq, sOff := sink.LastPosition()
	if pSeq != sSeq || pOff != sOff {
		t.Fatalf("positions diverge: primary (%d,%d) sink (%d,%d)", pSeq, pOff, sSeq, sOff)
	}

	// The sink's log must replay on reopen like a native one.
	sink.Close()
	reopened, cp2, replayed, notes := mustOpen(t, sinkDir)
	if cp2 == nil || len(replayed) != 1 || len(notes) != 0 {
		t.Fatalf("sink reopen: cp=%v deltas=%d notes=%v", cp2 != nil, len(replayed), notes)
	}
	if reopened.Generation() != 1 {
		t.Fatalf("sink reopened at generation %d", reopened.Generation())
	}
}

// TestInstallCheckpointRejectsCorrupt proves a fetch that delivers
// corrupted bytes fails the install and leaves the sink untouched.
func TestInstallCheckpointRejectsCorrupt(t *testing.T) {
	primary, _, _, _ := mustOpen(t, t.TempDir())
	if err := primary.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	rm, err := primary.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	sink, _, _, _ := mustOpen(t, t.TempDir())
	fetch := func(mf ManifestFile) (io.ReadCloser, error) {
		rc, _, err := primary.CheckpointFile(mf.Name)
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		b, err := io.ReadAll(rc)
		if err != nil {
			return nil, err
		}
		if mf.Name == cleanedFile {
			b[len(b)/2] ^= 0x01
		}
		return io.NopCloser(bytes.NewReader(b)), nil
	}
	if _, err := sink.InstallCheckpoint(rm, fetch); err == nil {
		t.Fatal("corrupt shipped checkpoint was installed")
	}
	if sink.Generation() != 0 {
		t.Fatalf("failed install advanced the sink to generation %d", sink.Generation())
	}
	// The sink still takes a clean install afterwards.
	if _, err := sink.InstallCheckpoint(rm, sourceFetch(primary)); err != nil {
		t.Fatalf("clean install after corrupt attempt: %v", err)
	}
}

// TestInstallCheckpointRefusesAheadLog proves a sink whose local log
// holds records past the shipped watermark refuses the install instead
// of silently discarding them.
func TestInstallCheckpointRefusesAheadLog(t *testing.T) {
	primary, _, _, _ := mustOpen(t, t.TempDir())
	if err := primary.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	rm, err := primary.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	sink, _, _, _ := mustOpen(t, t.TempDir())
	if err := sink.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := sink.AppendDelta(testDelta(9)); err != nil {
		t.Fatal(err)
	}
	// Sink active is segment 1 with a record; shipped watermark is 0.
	if _, err := sink.InstallCheckpoint(rm, sourceFetch(primary)); err == nil {
		t.Fatal("install discarded local records past the shipped watermark")
	}
}

func TestAppendFramesRejectsCorrupt(t *testing.T) {
	primary, _, _, _ := mustOpen(t, t.TempDir())
	if err := primary.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := primary.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	raw, _, err := primary.ReadSegment(1, 0)
	if err != nil {
		t.Fatal(err)
	}

	sink, _, _, _ := mustOpen(t, t.TempDir())
	if err := sink.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	before := sink.LogRecords()

	flipped := append([]byte(nil), raw...)
	flipped[walHeaderSize+3] ^= 0x10
	if _, err := sink.AppendFrames(flipped); err == nil {
		t.Error("corrupt frame batch accepted")
	}
	if _, err := sink.AppendFrames(raw[:len(raw)-2]); err == nil {
		t.Error("torn frame batch accepted")
	}
	if sink.LogRecords() != before {
		t.Errorf("rejected batches changed the log: %d records", sink.LogRecords())
	}
	if _, err := sink.AppendFrames(raw); err != nil {
		t.Errorf("intact batch rejected after failures: %v", err)
	}
}

// TestLegacyWALReplicationSource proves a store migrated from the
// pre-segmentation wal-NNNNNN.log layout serves as a replication
// source: the adopted segment is enumerable, readable from a cursor,
// and positioned exactly where a follower's verbatim copy would be.
func TestLegacyWALReplicationSource(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.Rename(filepath.Join(dir, "log-000001"), filepath.Join(dir, "wal-000001.log")); err != nil {
		t.Fatal(err)
	}

	migrated, _, _, _ := mustOpen(t, dir)
	rm, err := migrated.ReplicationManifest()
	if err != nil {
		t.Fatalf("migrated store offers no manifest: %v", err)
	}
	if rm.WALSeq != 1 || len(rm.Segments) != 1 || rm.Segments[0].Records != 2 {
		t.Fatalf("migrated manifest: walSeq=%d segments=%+v", rm.WALSeq, rm.Segments)
	}
	raw, sealed, err := migrated.ReadSegment(1, 0)
	if err != nil || sealed {
		t.Fatalf("ReadSegment on migrated log: sealed=%v err=%v", sealed, err)
	}
	deltas, off, note := scanFrames(raw)
	if note != "" || len(deltas) != 2 || off != int64(len(raw)) {
		t.Fatalf("migrated segment bytes unusable: %d deltas, note %q", len(deltas), note)
	}
	seq, lastOff := migrated.LastPosition()
	if seq != 1 || lastOff != int64(len(raw)) {
		t.Fatalf("migrated position (%d,%d), want (1,%d)", seq, lastOff, len(raw))
	}

	// And a sink fed those bytes lands at the same position.
	sink, _, _, _ := mustOpen(t, t.TempDir())
	if _, err := sink.InstallCheckpoint(rm, sourceFetch(migrated)); err != nil {
		t.Fatal(err)
	}
	if _, err := sink.AppendFrames(raw); err != nil {
		t.Fatal(err)
	}
	sSeq, sOff := sink.LastPosition()
	if sSeq != seq || sOff != lastOff {
		t.Fatalf("sink position (%d,%d) diverges from migrated source (%d,%d)", sSeq, sOff, seq, lastOff)
	}
}
