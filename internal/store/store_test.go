package store

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/crawler"
	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/fsio"
	"nvdclean/internal/naming"
	"nvdclean/internal/predict"
)

// testEntry builds one structurally complete entry.
func testEntry(year, seq int, vendor, product string, cwes []int, v2, v3 string) *cve.Entry {
	e := &cve.Entry{
		ID:        cve.FormatID(year, seq),
		Published: time.Date(year, 3, 1, 12, 0, 0, 0, time.UTC),
		Descriptions: []cve.Description{
			{Value: "A vulnerability in " + product + "."},
		},
		CPEs:       []cpe.Name{cpe.NewName(cpe.PartApplication, vendor, product, "")},
		References: []cve.Reference{{URL: "https://example.com/" + product, Tags: []string{"Vendor Advisory"}}},
	}
	for _, c := range cwes {
		e.CWEs = append(e.CWEs, cwe.ID(c))
	}
	if v2 != "" {
		v, err := cvss.ParseV2(v2)
		if err != nil {
			panic(err)
		}
		e.V2 = &v
	}
	if v3 != "" {
		v, err := cvss.ParseV3(v3)
		if err != nil {
			panic(err)
		}
		e.V3 = &v
	}
	return e
}

const (
	v2High = "AV:N/AC:L/Au:N/C:P/I:P/A:P"
	v2Low  = "AV:L/AC:H/Au:S/C:N/I:P/A:N"
	v3Crit = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"
)

// testSnapshots builds a small (original, cleaned) snapshot pair with
// a consolidation, a CWE fix and a backported score between them.
func testSnapshots() (*cve.Snapshot, *cve.Snapshot) {
	orig := &cve.Snapshot{
		CapturedAt: time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC),
		Entries: []*cve.Entry{
			testEntry(2017, 1, "redhat_inc", "linux_kernel", []int{79}, v2High, ""),
			testEntry(2017, 2, "redhat", "linux_kernel", nil, v2Low, v3Crit),
			testEntry(2018, 1, "acme", "anvil", []int{89}, v2High, ""),
		},
	}
	cleaned := orig.Clone()
	// Consolidate redhat_inc -> redhat, fix a CWE, backport a score.
	cleaned.Entries[0].CPEs[0].Vendor = "redhat"
	cleaned.Entries[1].CWEs = []cwe.ID{cwe.ID(125)}
	pv := 8.5
	cleaned.Entries[0].PV3 = &pv
	return orig, cleaned
}

func testCheckpoint() *Checkpoint {
	orig, cleaned := testSnapshots()
	return &Checkpoint{
		Original: orig,
		Cleaned:  cleaned,
		Vendors:  naming.NewMap(map[string]string{"redhat_inc": "redhat"}),
		Products: naming.NewProductMap(map[[2]string]string{{"acme", "anvil2"}: "anvil"}),
		State: &State{
			Fingerprint: 0xfeedbeef,
			Trained:     true,
			Models:      "LR",
			ModelConfig: predict.ModelConfig{Epochs: 3, Compact: true, Seed: 7},
			Seed:        7,
			Crawled:     true,
			Crawl: map[string]CrawlArtifact{
				"CVE-2017-0001": {
					Estimated: time.Date(2017, 2, 20, 0, 0, 0, 0, time.UTC),
					LagDays:   9,
					Stats:     crawler.Stats{URLs: 1, Fetched: 1, Extracted: 1},
				},
			},
			CWEFix: map[string]predict.EntryCorrection{
				"CVE-2017-0002": {CWEs: []cwe.ID{cwe.ID(125)}, Changed: true, Kind: predict.CorrectionFromOther},
			},
			HasBackport: true,
			Backport:    map[string]float64{"CVE-2017-0001": 8.5},
		},
	}
}

func mustOpen(t *testing.T, dir string) (*Store, *Checkpoint, []*cve.Delta, []string) {
	t.Helper()
	s, cp, deltas, notes, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, cp, deltas, notes
}

func testDelta(seq int) *cve.Delta {
	d := &cve.Delta{
		CapturedAt: time.Date(2018, 5, 22, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Hour),
		Added:      []*cve.Entry{testEntry(2018, 100+seq, "acme", "dynamite", nil, v2High, "")},
		Removed:    []string{"CVE-2017-0002"},
	}
	d.Sort()
	return d
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, cp0, _, _ := mustOpen(t, dir)
	if cp0 != nil {
		t.Fatalf("fresh store returned a checkpoint")
	}
	want := testCheckpoint()
	if err := s.Commit(want); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d", s.Generation())
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatalf("AppendDelta: %v", err)
	}
	s.Close()

	s2, got, deltas, notes := mustOpen(t, dir)
	if got == nil {
		t.Fatal("reopen found no checkpoint")
	}
	if len(notes) != 0 {
		t.Errorf("clean reopen produced recovery notes: %v", notes)
	}
	if got.Generation != 1 || s2.Generation() != 1 || s2.LogRecords() != 1 {
		t.Fatalf("gen=%d store gen=%d records=%d", got.Generation, s2.Generation(), s2.LogRecords())
	}
	for i, e := range want.Original.Entries {
		if !e.Equal(got.Original.Entries[i]) {
			t.Errorf("original entry %d mismatch", i)
		}
	}
	for i, e := range want.Cleaned.Entries {
		if !e.Equal(got.Cleaned.Entries[i]) {
			t.Errorf("cleaned entry %d mismatch", i)
		}
	}
	if got.Cleaned.Entries[0].PV3 == nil || *got.Cleaned.Entries[0].PV3 != 8.5 {
		t.Error("backportedV3 key did not survive the cleaned feed round trip")
	}
	if got.Vendors.Canonical("redhat_inc") != "redhat" || got.Vendors.Len() != 1 {
		t.Errorf("vendor map mismatch")
	}
	if got.Products.Canonical("acme", "anvil2") != "anvil" {
		t.Errorf("product map mismatch")
	}
	st := got.State
	if st.Fingerprint != 0xfeedbeef || !st.Trained || st.Models != "LR" ||
		st.ModelConfig != want.State.ModelConfig || st.Seed != 7 || !st.Crawled || !st.HasBackport {
		t.Errorf("state mismatch: %+v", st)
	}
	a := st.Crawl["CVE-2017-0001"]
	if !a.Estimated.Equal(time.Date(2017, 2, 20, 0, 0, 0, 0, time.UTC)) || a.LagDays != 9 || a.Stats.Fetched != 1 {
		t.Errorf("crawl artifact mismatch: %+v", a)
	}
	fix := st.CWEFix["CVE-2017-0002"]
	if !fix.Changed || fix.Kind != predict.CorrectionFromOther || len(fix.CWEs) != 1 || fix.CWEs[0] != cwe.ID(125) {
		t.Errorf("cwe fix mismatch: %+v", fix)
	}
	if st.Backport["CVE-2017-0001"] != 8.5 {
		t.Errorf("backport mismatch: %v", st.Backport)
	}
	if len(deltas) != 1 || len(deltas[0].Added) != 1 || deltas[0].Added[0].ID != "CVE-2018-0101" ||
		len(deltas[0].Removed) != 1 {
		t.Fatalf("delta log mismatch: %+v", deltas)
	}
}

// TestCommitCompacts proves a second Commit retires the first
// generation and starts an empty delta log.
func TestCommitCompacts(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 || s.LogRecords() != 0 {
		t.Fatalf("after compaction: gen=%d records=%d", s.Generation(), s.LogRecords())
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Error("generation 1 not retired")
	}
	if _, err := os.Stat(filepath.Join(dir, "log-000001")); !os.IsNotExist(err) {
		t.Error("delta log segment 1 not retired")
	}
	s.Close()

	s2, cp, deltas, _ := mustOpen(t, dir)
	if s2.Generation() != 2 || cp == nil || len(deltas) != 0 {
		t.Fatalf("reopen after compaction: gen=%d deltas=%d", s2.Generation(), len(deltas))
	}
}

// TestRecoveryTornTail proves a partially written delta record is
// truncated away and the log remains appendable.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a frame header promising more bytes
	// than were written.
	walPath := filepath.Join(dir, "log-000001")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4, 'x'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath)

	s2, _, deltas, notes := mustOpen(t, dir)
	if len(deltas) != 2 {
		t.Fatalf("recovered %d deltas, want 2 (notes: %v)", len(deltas), notes)
	}
	if len(notes) == 0 {
		t.Error("torn tail produced no recovery note")
	}
	after, _ := os.Stat(walPath)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	if err := s2.AppendDelta(testDelta(3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, _, deltas, _ = mustOpen(t, dir)
	if len(deltas) != 3 {
		t.Fatalf("after post-recovery append: %d deltas, want 3", len(deltas))
	}
}

// TestAppendRollback proves a torn frame left by a failed append is
// rolled back before the next append, so later acknowledged records
// are never stranded behind garbage that recovery would truncate.
func TestAppendRollback(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate the failed append's torn frame at the file tail, then
	// the recovery path a real append error takes.
	w := s.active
	if _, err := w.f.Write([]byte{0xff, 0xff, 0x00, 0x00, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	w.rollback()
	if w.poisoned {
		t.Fatal("rollback on a healthy file must not poison the log")
	}
	if err := s.AppendDelta(testDelta(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, _, deltas, notes := mustOpen(t, dir)
	if len(deltas) != 2 || len(notes) != 0 {
		t.Fatalf("after rollback: %d deltas (want 2), notes %v", len(deltas), notes)
	}

	// A poisoned log refuses appends instead of stranding them.
	w.poisoned = true
	if err := w.append(testDelta(3)); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
}

// TestProbeHealsPoisonedLog: when a fault breaks both the append and
// its rollback truncate, the log poisons itself — and a later
// successful Probe must heal it in process (retry the truncate, drop
// exactly the torn frame) so degraded-mode recovery never needs a
// restart.
func TestProbeHealsPoisonedLog(t *testing.T) {
	dir := t.TempDir()
	inj := fsio.NewInjector(fsio.OS{})
	s, _, _, _, err := OpenFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}

	// The fault rejects writes AND truncates — a frozen file, not a
	// full disk — so the rollback fails too and the log poisons.
	inj.SetDecide(func(op fsio.Op) fsio.Decision {
		switch op.Kind {
		case fsio.OpWrite, fsio.OpTruncate:
			return fsio.Decision{Err: syscall.EPERM}
		}
		return fsio.Decision{}
	})
	if err := s.AppendDelta(testDelta(2)); err == nil {
		t.Fatal("append through a frozen file did not error")
	}
	if !s.active.poisoned {
		t.Fatal("failed rollback did not poison the log")
	}
	if err := s.Probe(); err == nil {
		t.Fatal("probe with the fault still live reported healthy")
	}
	if err := s.AppendDelta(testDelta(2)); err == nil {
		t.Fatal("poisoned log accepted an append")
	}

	// Fault clears: one successful probe heals the log and appends
	// land again, with the torn frame gone.
	inj.SetDecide(nil)
	if err := s.Probe(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	if s.active.poisoned {
		t.Fatal("successful probe left the log poisoned")
	}
	if err := s.AppendDelta(testDelta(2)); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	s.Close()
	_, _, deltas, notes := mustOpen(t, dir)
	if len(deltas) != 2 || len(notes) != 0 {
		t.Fatalf("after heal: %d deltas (want 2), notes %v", len(deltas), notes)
	}
}

// TestRecoveryCorruptRecord proves a checksum-mismatched record drops
// it and everything after it.
func TestRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	walPath := filepath.Join(dir, "log-000001")
	for i := 1; i <= 3; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
		fi, _ := os.Stat(walPath)
		offsets = append(offsets, fi.Size())
	}
	s.Close()

	// Flip one payload byte inside the second record.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[0]+walHeaderSize+5] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, deltas, notes := mustOpen(t, dir)
	if len(deltas) != 1 {
		t.Fatalf("recovered %d deltas, want 1 (corrupt record and successor dropped)", len(deltas))
	}
	if len(notes) == 0 {
		t.Error("corrupt record produced no recovery note")
	}
	fi, _ := os.Stat(walPath)
	if fi.Size() != offsets[0] {
		t.Errorf("log truncated to %d, want %d", fi.Size(), offsets[0])
	}
}

// TestRecoveryInterruptedCommit simulates dying between sealing the
// active segment and swapping CURRENT: both a leftover .tmp directory
// and a fully renamed-but-uncommitted generation directory must be
// swept, and the store must reopen at the last committed generation
// with every acknowledged delta — in the sealed segment and the active
// one — intact.
func TestRecoveryInterruptedCommit(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	// The compaction path seals before the background commit; dying
	// anywhere after the seal must lose neither the sealed segment's
	// record nor one appended to the successor afterwards.
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A crash before the rename leaves gen-000002.tmp; a crash after
	// the rename but before the CURRENT swap leaves a complete
	// gen-000002 that CURRENT never adopted.
	if err := os.MkdirAll(filepath.Join(dir, "gen-000002.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gen-000002.tmp", "original.json"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build the orphan by copying generation 1's files.
	orphan := filepath.Join(dir, "gen-000002")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "gen-000001")
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range files {
		b, err := os.ReadFile(filepath.Join(src, fi.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(orphan, fi.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, cp, deltas, _ := mustOpen(t, dir)
	if cp == nil || cp.Generation != 1 || s2.Generation() != 1 {
		t.Fatalf("recovered generation %v, want 1", s2.Generation())
	}
	if len(deltas) != 2 {
		t.Fatalf("recovered %d deltas, want 2 (one sealed, one active)", len(deltas))
	}
	if s2.SealedSegments() != 1 || s2.ActiveRecords() != 1 {
		t.Errorf("segments: sealed=%d active=%d, want 1/1", s2.SealedSegments(), s2.ActiveRecords())
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002.tmp")); !os.IsNotExist(err) {
		t.Error("interrupted .tmp directory not swept")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned generation directory not swept")
	}
}

// TestRecoveryCorruptCheckpoint proves a bit-flipped checkpoint file
// fails its manifest sum and recovery falls back cleanly: to an older
// valid generation when one exists, to a cold boot otherwise.
func TestRecoveryCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, "gen-000001", cleanedFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, cp, _, notes := mustOpen(t, dir)
	if cp != nil {
		t.Fatalf("corrupt checkpoint was accepted")
	}
	if s2.Generation() != 0 {
		t.Fatalf("generation = %d, want 0", s2.Generation())
	}
	if len(notes) == 0 {
		t.Error("corruption produced no recovery notes")
	}
	// The store must still accept a fresh Commit afterwards.
	if err := s2.Commit(testCheckpoint()); err != nil {
		t.Fatalf("Commit after corruption recovery: %v", err)
	}
}

// TestRecoveryMissingCurrent proves the store finds the newest valid
// generation when the CURRENT pointer is lost.
func TestRecoveryMissingCurrent(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, currentFile)); err != nil {
		t.Fatal(err)
	}

	s2, cp, _, notes := mustOpen(t, dir)
	if cp == nil || cp.Generation != 1 || s2.Generation() != 1 {
		t.Fatalf("lost CURRENT not recovered: %v (notes %v)", s2.Generation(), notes)
	}
}

// TestLegacyWALMigration proves a pre-segmentation store — one
// wal-NNNNNN.log beside its generation — reopens with the log adopted
// as the first segment and every record intact (the frame format never
// changed, so the rename is the whole migration).
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Reshape the directory as the old layout left it.
	if err := os.Rename(filepath.Join(dir, "log-000001"), filepath.Join(dir, "wal-000001.log")); err != nil {
		t.Fatal(err)
	}

	s2, cp, deltas, notes := mustOpen(t, dir)
	if cp == nil || len(deltas) != 2 {
		t.Fatalf("migration recovered %d deltas (notes %v)", len(deltas), notes)
	}
	migrated := false
	for _, n := range notes {
		if strings.Contains(n, "migrated legacy delta log") {
			migrated = true
		}
	}
	if !migrated {
		t.Errorf("no migration note: %v", notes)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000001.log")); !os.IsNotExist(err) {
		t.Error("legacy log still present after migration")
	}
	if err := s2.AppendDelta(testDelta(3)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, _, deltas, _ = mustOpen(t, dir)
	if len(deltas) != 3 {
		t.Fatalf("append after migration lost records: %d deltas", len(deltas))
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d := testDelta(1)
	d.Modified = []*cve.Entry{testEntry(2017, 1, "redhat", "linux_kernel", []int{79}, v2High, v3Crit)}
	d.Sort()
	b, err := cve.MarshalDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cve.UnmarshalDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CapturedAt.Equal(d.CapturedAt) {
		t.Errorf("capturedAt = %v", got.CapturedAt)
	}
	if len(got.Added) != 1 || !got.Added[0].Equal(d.Added[0]) {
		t.Error("added entries mismatch")
	}
	if len(got.Modified) != 1 || !got.Modified[0].Equal(d.Modified[0]) {
		t.Error("modified entries mismatch")
	}
	if len(got.Removed) != 1 || got.Removed[0] != "CVE-2017-0002" {
		t.Error("removed IDs mismatch")
	}
}
