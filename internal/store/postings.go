package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Posting lists hold entry ordinals — positions in the cleaned
// snapshot, which is sorted in (year, sequence) order — as strictly
// increasing uint32 sequences encoded in delta-varint blocks of
// postingBlockSize values. Each block carries a skip entry (first and
// last ordinal plus the block's byte extent), so an ordered-merge
// intersection discards whole blocks by range without decoding them,
// and a persisted shard can parse its key table while leaving every
// block as raw bytes.

// postingBlockSize is the fixed ordinal count per block. 128 keeps the
// skip table a small fraction of the encoded size while bounding the
// work a single seek has to decode.
const postingBlockSize = 128

// skipEntry locates one block: its first and last ordinals (for
// range skipping) and its byte extent in posting.data. The first
// ordinal of a block is stored only here; data holds the remaining
// blockLen-1 deltas.
type skipEntry struct {
	first, last uint32
	off, bytes  uint32
}

// posting is one encoded posting list. Immutable once built.
type posting struct {
	count int         // total ordinals
	skips []skipEntry // one per block
	data  []byte      // concatenated delta-varint blocks
}

// blockLen is the ordinal count of block b.
func (p *posting) blockLen(b int) int {
	if b == len(p.skips)-1 {
		return p.count - b*postingBlockSize
	}
	return postingBlockSize
}

// encodePosting encodes a strictly increasing ordinal list. Panics on
// unordered input: every caller feeds it lists built in snapshot order.
func encodePosting(ords []uint32) *posting {
	p := &posting{count: len(ords)}
	if len(ords) == 0 {
		return p
	}
	nBlocks := (len(ords) + postingBlockSize - 1) / postingBlockSize
	p.skips = make([]skipEntry, 0, nBlocks)
	data := make([]byte, 0, len(ords)) // 1 byte/delta for dense lists
	for start := 0; start < len(ords); start += postingBlockSize {
		end := min(start+postingBlockSize, len(ords))
		blk := ords[start:end]
		if start > 0 && blk[0] <= ords[start-1] {
			panic("store: posting ordinals not strictly increasing")
		}
		off := len(data)
		for i := 1; i < len(blk); i++ {
			if blk[i] <= blk[i-1] {
				panic("store: posting ordinals not strictly increasing")
			}
			data = binary.AppendUvarint(data, uint64(blk[i]-blk[i-1]))
		}
		p.skips = append(p.skips, skipEntry{
			first: blk[0],
			last:  blk[len(blk)-1],
			off:   uint32(off),
			bytes: uint32(len(data) - off),
		})
	}
	p.data = data
	return p
}

// decodeBlock appends block b's ordinals to dst, rejecting corrupt
// blocks: truncated or trailing bytes, non-monotonic deltas, ordinal
// overflow, and a final ordinal disagreeing with the skip entry.
func (p *posting) decodeBlock(b int, dst []uint32) ([]uint32, error) {
	sk := p.skips[b]
	if int64(sk.off)+int64(sk.bytes) > int64(len(p.data)) {
		return nil, fmt.Errorf("posting block %d: extent out of range", b)
	}
	data := p.data[sk.off : sk.off+sk.bytes]
	v := sk.first
	dst = append(dst, v)
	for i := 1; i < p.blockLen(b); i++ {
		d, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("posting block %d: truncated delta", b)
		}
		if d == 0 || uint64(v)+d > math.MaxUint32 {
			return nil, fmt.Errorf("posting block %d: non-monotonic ordinal", b)
		}
		data = data[n:]
		v += uint32(d)
		dst = append(dst, v)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("posting block %d: trailing bytes", b)
	}
	if v != sk.last {
		return nil, fmt.Errorf("posting block %d: last ordinal %d != skip entry %d", b, v, sk.last)
	}
	return dst, nil
}

// decode appends the full ordinal list to dst.
func (p *posting) decode(dst []uint32) ([]uint32, error) {
	var err error
	for b := range p.skips {
		if dst, err = p.decodeBlock(b, dst); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// postingIter iterates one posting in increasing-ordinal order with
// block-skipping seeks: a seek that lands past a block consults only
// its skip entry and never decodes it.
type postingIter struct {
	p   *posting
	b   int      // decoded block index; -1 before the first decode
	buf []uint32 // decoded ordinals of block b
	i   int      // cursor within buf
}

func newPostingIter(p *posting) postingIter { return postingIter{p: p, b: -1} }

// seek returns the first ordinal >= v at or after the cursor, advancing
// the cursor to it. Seek targets must be non-decreasing.
func (it *postingIter) seek(v uint32) (uint32, bool, error) {
	sk := it.p.skips
	b := max(it.b, 0)
	for b < len(sk) && sk[b].last < v {
		b++
	}
	if b >= len(sk) {
		return 0, false, nil
	}
	if b != it.b {
		buf, err := it.p.decodeBlock(b, it.buf[:0])
		if err != nil {
			return 0, false, err
		}
		it.b, it.buf, it.i = b, buf, 0
	}
	for it.i < len(it.buf) && it.buf[it.i] < v {
		it.i++
	}
	if it.i >= len(it.buf) {
		// Unreachable for well-formed blocks: sk[b].last >= v.
		return 0, false, fmt.Errorf("posting cursor overran block %d", b)
	}
	return it.buf[it.i], true, nil
}

// intersectPostings ordered-merges two posting lists into dst. Each
// side leapfrogs to the other's cursor, so runs of non-overlapping
// blocks are skipped via their skip entries without decoding.
func intersectPostings(a, b *posting, dst []uint32) ([]uint32, error) {
	ia, ib := newPostingIter(a), newPostingIter(b)
	va, okA, err := ia.seek(0)
	if err != nil {
		return nil, err
	}
	vb, okB, err := ib.seek(0)
	if err != nil {
		return nil, err
	}
	for okA && okB {
		switch {
		case va == vb:
			dst = append(dst, va)
			if va == math.MaxUint32 {
				return dst, nil
			}
			if va, okA, err = ia.seek(va + 1); err != nil {
				return nil, err
			}
			if vb, okB, err = ib.seek(vb + 1); err != nil {
				return nil, err
			}
		case va < vb:
			if va, okA, err = ia.seek(vb); err != nil {
				return nil, err
			}
		default:
			if vb, okB, err = ib.seek(va); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// intersectOrds narrows an already-materialized ordinal list by one
// more posting, in place.
func intersectOrds(acc []uint32, p *posting) ([]uint32, error) {
	it := newPostingIter(p)
	out := acc[:0]
	for _, v := range acc {
		w, ok, err := it.seek(v)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if w == v {
			out = append(out, v)
		}
	}
	return out, nil
}

// mergeOrds ordered-merges two increasing ordinal lists, dropping
// duplicates.
func mergeOrds(a, b []uint32) []uint32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
