package store

import (
	"strconv"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/parallel"
)

// The query indexes: inverted posting lists over one cleaned
// generation, sharded by key hash so builds and incremental updates
// parallelize and a generation swap clones only the shards a delta
// touches. Posting lists hold CVE IDs in (year, sequence) order — the
// order the snapshot itself is sorted in — so index intersections are
// ordered merges and results come out in snapshot order, identical to
// a linear scan, at any worker count.
//
// Severity postings read the entry's materialized pv3 band (the real
// v3 severity when present, the backported PV3 score's band
// otherwise), so the indexed snapshot must have backported scores
// applied (nvdclean.ApplyBackport).

// numShards is the fixed shard count. Key placement is a pure hash of
// the key, so index contents never depend on the worker count.
const numShards = 16

// indexGrain is the entry-chunk size of parallel builds. Chunk layout
// depends only on the snapshot length, keeping per-chunk partial
// postings — and their in-order merge — worker-independent.
const indexGrain = 512

// Kinds of index keys.
type keyKind uint8

const (
	keyVendor keyKind = iota + 1
	keyProduct
	// keyPair indexes (vendor, product) pairs: a query constraining
	// both fields must match them on the same CPE name, which separate
	// vendor∩product postings cannot express.
	keyPair
	keyCWE
	keySeverity
	keyYear
)

// key is one posting-list key.
type key struct {
	kind keyKind
	a, b string
}

// shardOf places a key by FNV-1a hash. The hash is seedless so shard
// placement is identical across processes and runs; nothing persists
// shard numbers (which is also why changing the fold is safe across
// versions), but stable placement keeps update/build comparisons in
// the invariant tests exact.
func shardOf(k key) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		// keySep separates the a and b fields in the fold. Folding a
		// byte that cannot occur in either field keeps pair keys with
		// shifted boundaries — ("ab","c") vs ("a","bc") — in distinct
		// hash streams; XOR-ing 0 here would make them collide onto
		// the same shard.
		keySep = 0x1f
	)
	h := uint64(offset64)
	h = (h ^ uint64(k.kind)) * prime64
	for i := 0; i < len(k.a); i++ {
		h = (h ^ uint64(k.a[i])) * prime64
	}
	h = (h ^ keySep) * prime64
	for i := 0; i < len(k.b); i++ {
		h = (h ^ uint64(k.b[i])) * prime64
	}
	return int(h % numShards)
}

// shard is one immutable posting-list map.
type shard struct {
	post map[key][]string
}

// Index is an immutable set of sharded inverted indexes over one
// cleaned generation. Lookups are lock-free; updates produce a new
// Index sharing every untouched shard with the old one.
type Index struct {
	shards [numShards]*shard
}

// entrySeverity is the pv3 band of a cleaned entry with backported
// scores materialized: the real v3 band when present, the predicted
// band otherwise.
func entrySeverity(e *cve.Entry) (cvss.Severity, bool) {
	if e.V3 != nil {
		return e.V3.Severity(), true
	}
	if e.PV3 != nil {
		return cvss.SeverityV3(*e.PV3), true
	}
	return 0, false
}

// entryKeys returns every posting key of one cleaned entry.
func entryKeys(e *cve.Entry) []key {
	keys := make([]key, 0, 3*len(e.CPEs)+len(e.CWEs)+2)
	seenV := make(map[string]bool, len(e.CPEs))
	seenP := make(map[string]bool, len(e.CPEs))
	seenVP := make(map[[2]string]bool, len(e.CPEs))
	for _, n := range e.CPEs {
		if !seenV[n.Vendor] {
			seenV[n.Vendor] = true
			keys = append(keys, key{kind: keyVendor, a: n.Vendor})
		}
		if !seenP[n.Product] {
			seenP[n.Product] = true
			keys = append(keys, key{kind: keyProduct, a: n.Product})
		}
		vp := [2]string{n.Vendor, n.Product}
		if !seenVP[vp] {
			seenVP[vp] = true
			keys = append(keys, key{kind: keyPair, a: n.Vendor, b: n.Product})
		}
	}
	seenC := make(map[cwe.ID]bool, len(e.CWEs))
	for _, c := range e.CWEs {
		if !seenC[c] {
			seenC[c] = true
			keys = append(keys, key{kind: keyCWE, a: c.String()})
		}
	}
	if sev, ok := entrySeverity(e); ok {
		keys = append(keys, key{kind: keySeverity, a: sev.String()})
	}
	keys = append(keys, key{kind: keyYear, a: strconv.Itoa(e.Year())})
	return keys
}

// BuildIndex builds the full index over a cleaned snapshot (entries
// sorted by ID, backported scores materialized). Chunks of entries map
// to shard-local partial postings in parallel; each shard then folds
// its partials in chunk order, so posting lists come out in snapshot
// order no matter how many workers ran.
func BuildIndex(snap *cve.Snapshot, workers int) *Index {
	n := len(snap.Entries)
	chunks := parallel.NumChunks(n, indexGrain)
	locals := make([][numShards]map[key][]string, chunks)
	parallel.ForRange(workers, n, indexGrain, func(start, end int) {
		c := start / indexGrain
		for i := start; i < end; i++ {
			e := snap.Entries[i]
			for _, k := range entryKeys(e) {
				s := shardOf(k)
				if locals[c][s] == nil {
					locals[c][s] = make(map[key][]string)
				}
				locals[c][s][k] = append(locals[c][s][k], e.ID)
			}
		}
	})
	ix := &Index{}
	parallel.For(workers, numShards, func(s int) {
		post := make(map[key][]string)
		for c := range locals {
			for k, ids := range locals[c][s] {
				post[k] = append(post[k], ids...)
			}
		}
		ix.shards[s] = &shard{post: post}
	})
	return ix
}

// Update returns a new Index reflecting a cleaned-view delta (the Diff
// of the previous and next cleaned snapshots — which can differ on
// entries the feed delta never touched, e.g. when a new alias flips a
// consolidation). prev resolves an ID to the previous generation's
// cleaned entry, providing the keys removed and modified entries held.
// Shards the delta does not touch are shared with the receiver; the
// receiver itself is never modified, so the old generation keeps
// serving its index.
func (ix *Index) Update(d *cve.Delta, prev func(id string) *cve.Entry, workers int) *Index {
	if d.Empty() {
		return ix
	}
	type op struct {
		k   key
		id  string
		add bool
	}
	var perShard [numShards][]op
	stage := func(e *cve.Entry, add bool) {
		for _, k := range entryKeys(e) {
			s := shardOf(k)
			perShard[s] = append(perShard[s], op{k: k, id: e.ID, add: add})
		}
	}
	for _, id := range d.Removed {
		if e := prev(id); e != nil {
			stage(e, false)
		}
	}
	for _, e := range d.Modified {
		if old := prev(e.ID); old != nil {
			stage(old, false)
		}
		stage(e, true)
	}
	for _, e := range d.Added {
		stage(e, true)
	}

	out := &Index{}
	parallel.For(workers, numShards, func(s int) {
		ops := perShard[s]
		if len(ops) == 0 {
			out.shards[s] = ix.shards[s]
			return
		}
		old := ix.shards[s].post
		post := make(map[key][]string, len(old))
		for k, ids := range old {
			post[k] = ids
		}
		// Copy each touched posting list once, then edit the copy.
		touched := make(map[key]bool, len(ops))
		for _, o := range ops {
			list := post[o.k]
			if !touched[o.k] {
				list = append([]string(nil), list...)
				touched[o.k] = true
			}
			if o.add {
				list = insertID(list, o.id)
			} else {
				list = removeID(list, o.id)
			}
			if len(list) == 0 {
				delete(post, o.k)
			} else {
				post[o.k] = list
			}
		}
		out.shards[s] = &shard{post: post}
	})
	return out
}

// insertID adds id to a (year, sequence)-ordered posting list,
// ignoring duplicates.
func insertID(list []string, id string) []string {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if cve.IDLess(list[mid], id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == id {
		return list
	}
	list = append(list, "")
	copy(list[lo+1:], list[lo:])
	list[lo] = id
	return list
}

// removeID drops id from an ordered posting list.
func removeID(list []string, id string) []string {
	for i, v := range list {
		if v == id {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Query is one /query filter set. Zero-valued fields are inactive.
type Query struct {
	Vendor, Product string
	CWE             cwe.ID
	HasCWE          bool
	Severity        cvss.Severity
	HasSeverity     bool
	Year            int
}

// Filtered reports whether any index-backed filter is active.
func (q Query) Filtered() bool {
	return q.Vendor != "" || q.Product != "" || q.HasCWE || q.HasSeverity || q.Year != 0
}

func (ix *Index) lookup(k key) []string {
	return ix.shards[shardOf(k)].post[k]
}

// Match intersects the posting lists of every active filter and
// returns the matching CVE IDs in snapshot order. The second result is
// false when the query has no active filters (every entry matches, no
// lists to intersect). The returned slice aliases index internals on
// single-filter queries and must not be modified.
func (ix *Index) Match(q Query) ([]string, bool) {
	if !q.Filtered() {
		return nil, false
	}
	var lists [][]string
	switch {
	case q.Vendor != "" && q.Product != "":
		lists = append(lists, ix.lookup(key{kind: keyPair, a: q.Vendor, b: q.Product}))
	case q.Vendor != "":
		lists = append(lists, ix.lookup(key{kind: keyVendor, a: q.Vendor}))
	case q.Product != "":
		lists = append(lists, ix.lookup(key{kind: keyProduct, a: q.Product}))
	}
	if q.HasCWE {
		lists = append(lists, ix.lookup(key{kind: keyCWE, a: q.CWE.String()}))
	}
	if q.HasSeverity {
		lists = append(lists, ix.lookup(key{kind: keySeverity, a: q.Severity.String()}))
	}
	if q.Year != 0 {
		lists = append(lists, ix.lookup(key{kind: keyYear, a: strconv.Itoa(q.Year)}))
	}
	// Intersect smallest-first: every list is ordered, so each
	// intersection is one linear merge bounded by the smaller side.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	acc := lists[0]
	for _, next := range lists[1:] {
		if len(acc) == 0 {
			return nil, true
		}
		acc = intersect(acc, next)
	}
	return acc, true
}

// intersect merges two ordered ID lists.
func intersect(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case cve.IDLess(a[i], b[j]):
			i++
		default:
			j++
		}
	}
	return out
}
