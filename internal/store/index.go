package store

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
	"nvdclean/internal/parallel"
)

// The query indexes: inverted posting lists over one cleaned
// generation, sharded by key hash so builds and incremental updates
// parallelize and a generation swap clones only the shards a delta
// touches. Posting lists hold entry ordinals — positions in the
// cleaned snapshot, which is already sorted in (year, sequence) order —
// encoded as delta-varint blocks (postings.go), so index intersections
// are block-skipping ordered merges and results come out in snapshot
// order, identical to a linear scan, at any worker count. Ordinals
// translate back to entries only at the /query materialization edge.
//
// Shards loaded from a persisted checkpoint stay raw segment bytes
// until a query first touches them (shard.load), so boot cost and
// resident memory track the hot key set rather than the feed.
//
// Severity postings read the entry's materialized pv3 band (the real
// v3 severity when present, the backported PV3 score's band
// otherwise), so the indexed snapshot must have backported scores
// applied (nvdclean.ApplyBackport).

// numShards is the fixed shard count. Key placement is a pure hash of
// the key, so index contents never depend on the worker count.
const numShards = 16

// indexGrain is the entry-chunk size of parallel builds. Chunk layout
// depends only on the snapshot length, keeping per-chunk partial
// postings — and their in-order merge — worker-independent.
const indexGrain = 512

// Kinds of index keys.
type keyKind uint8

const (
	keyVendor keyKind = iota + 1
	keyProduct
	// keyPair indexes (vendor, product) pairs: a query constraining
	// both fields must match them on the same CPE name, which separate
	// vendor∩product postings cannot express.
	keyPair
	keyCWE
	keySeverity
	keyYear
)

// key is one posting-list key.
type key struct {
	kind keyKind
	a, b string
}

// shardOf places a key by FNV-1a hash. The hash is seedless so shard
// placement is identical across processes and runs; persisted segments
// are keyed by shard number, so changing the fold is a format break
// (bump indexFormatVersion).
func shardOf(k key) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		// keySep separates the a and b fields in the fold. Folding a
		// byte that cannot occur in either field keeps pair keys with
		// shifted boundaries — ("ab","c") vs ("a","bc") — in distinct
		// hash streams; XOR-ing 0 here would make them collide onto
		// the same shard.
		keySep = 0x1f
	)
	h := uint64(offset64)
	h = (h ^ uint64(k.kind)) * prime64
	for i := 0; i < len(k.a); i++ {
		h = (h ^ uint64(k.a[i])) * prime64
	}
	h = (h ^ keySep) * prime64
	for i := 0; i < len(k.b); i++ {
		h = (h ^ uint64(k.b[i])) * prime64
	}
	return int(h % numShards)
}

// shard is one immutable posting map, possibly still in its raw
// persisted form. The first load parses the raw segment under mu and
// publishes via loaded (release/acquire), so concurrent lookups never
// block once a shard is hot.
type shard struct {
	mu     sync.Mutex
	loaded atomic.Bool

	// raw is the shard's segment payload when it came from a persisted
	// checkpoint; parsed postings alias it, so it stays reachable for
	// the shard's lifetime. nil for shards built in memory.
	raw        []byte
	rawEntries int // entry count in raw's header
	diskBytes  int // len(raw) as persisted; 0 for in-memory shards

	post      map[key]*posting
	dataBytes int   // Σ posting block bytes, once loaded
	err       error // sticky parse failure
}

// newShard wraps an in-memory posting map.
func newShard(post map[key]*posting) *shard {
	sh := &shard{post: post}
	for _, p := range post {
		sh.dataBytes += len(p.data)
	}
	sh.loaded.Store(true)
	return sh
}

// load returns the shard's posting map, parsing the raw segment on
// first touch.
func (sh *shard) load() (map[key]*posting, error) {
	if sh.loaded.Load() {
		return sh.post, sh.err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.loaded.Load() {
		post, _, err := parseShardWire(sh.raw)
		if err != nil {
			sh.err = err
		} else {
			sh.post = post
			for _, p := range post {
				sh.dataBytes += len(p.data)
			}
		}
		sh.loaded.Store(true)
	}
	return sh.post, sh.err
}

// Index is an immutable set of sharded inverted indexes over one
// cleaned generation. Lookups are lock-free on loaded shards; updates
// produce a new Index sharing every untouched shard with the old one.
type Index struct {
	// ids holds the indexed snapshot's entry IDs in ordinal order —
	// ids[o] is the ID of ordinal o. It pins the ordinal space an
	// incremental Update re-ordinates against.
	ids    []string
	shards [numShards]*shard
}

// idsOf extracts the ordinal→ID table of a snapshot.
func idsOf(snap *cve.Snapshot) []string {
	ids := make([]string, len(snap.Entries))
	for i, e := range snap.Entries {
		ids[i] = e.ID
	}
	return ids
}

// ordIn finds id's ordinal in a (year, sequence)-ordered ID table.
func ordIn(ids []string, id string) (uint32, bool) {
	lo := sort.Search(len(ids), func(i int) bool { return !cve.IDLess(ids[i], id) })
	if lo < len(ids) && ids[lo] == id {
		return uint32(lo), true
	}
	return 0, false
}

// Entries returns the indexed snapshot length.
func (ix *Index) Entries() int { return len(ix.ids) }

// entrySeverity is the pv3 band of a cleaned entry with backported
// scores materialized: the real v3 band when present, the predicted
// band otherwise.
func entrySeverity(e *cve.Entry) (cvss.Severity, bool) {
	if e.V3 != nil {
		return e.V3.Severity(), true
	}
	if e.PV3 != nil {
		return cvss.SeverityV3(*e.PV3), true
	}
	return 0, false
}

// entryKeys returns every posting key of one cleaned entry. The seen
// maps are filled first so the keys slice is allocated once at its
// exact final length (sizing by 3*len(CPEs) over-allocates on
// duplicate-heavy CPE lists); the second pass emits keys in
// first-appearance order, flipping each seen mark as it goes.
func entryKeys(e *cve.Entry) []key {
	seenV := make(map[string]bool, len(e.CPEs))
	seenP := make(map[string]bool, len(e.CPEs))
	seenVP := make(map[[2]string]bool, len(e.CPEs))
	for _, n := range e.CPEs {
		seenV[n.Vendor] = true
		seenP[n.Product] = true
		seenVP[[2]string{n.Vendor, n.Product}] = true
	}
	seenC := make(map[cwe.ID]bool, len(e.CWEs))
	for _, c := range e.CWEs {
		seenC[c] = true
	}
	sev, hasSev := entrySeverity(e)
	total := len(seenV) + len(seenP) + len(seenVP) + len(seenC) + 1 // + year
	if hasSev {
		total++
	}
	keys := make([]key, 0, total)
	for _, n := range e.CPEs {
		if seenV[n.Vendor] {
			seenV[n.Vendor] = false
			keys = append(keys, key{kind: keyVendor, a: n.Vendor})
		}
		if seenP[n.Product] {
			seenP[n.Product] = false
			keys = append(keys, key{kind: keyProduct, a: n.Product})
		}
		vp := [2]string{n.Vendor, n.Product}
		if seenVP[vp] {
			seenVP[vp] = false
			keys = append(keys, key{kind: keyPair, a: n.Vendor, b: n.Product})
		}
	}
	for _, c := range e.CWEs {
		if seenC[c] {
			seenC[c] = false
			keys = append(keys, key{kind: keyCWE, a: c.String()})
		}
	}
	if hasSev {
		keys = append(keys, key{kind: keySeverity, a: sev.String()})
	}
	keys = append(keys, key{kind: keyYear, a: strconv.Itoa(e.Year())})
	return keys
}

// BuildIndex builds the full index over a cleaned snapshot (entries
// sorted by ID, backported scores materialized). Chunks of entries map
// to shard-local partial postings in parallel; each shard then folds
// its partials in chunk order, so ordinals come out strictly increasing
// no matter how many workers ran.
func BuildIndex(snap *cve.Snapshot, workers int) *Index {
	n := len(snap.Entries)
	chunks := parallel.NumChunks(n, indexGrain)
	locals := make([][numShards]map[key][]uint32, chunks)
	parallel.ForRange(workers, n, indexGrain, func(start, end int) {
		c := start / indexGrain
		for i := start; i < end; i++ {
			e := snap.Entries[i]
			for _, k := range entryKeys(e) {
				s := shardOf(k)
				if locals[c][s] == nil {
					locals[c][s] = make(map[key][]uint32)
				}
				locals[c][s][k] = append(locals[c][s][k], uint32(i))
			}
		}
	})
	ix := &Index{ids: idsOf(snap)}
	parallel.For(workers, numShards, func(s int) {
		ords := make(map[key][]uint32)
		for c := range locals {
			for k, os := range locals[c][s] {
				ords[k] = append(ords[k], os...)
			}
		}
		post := make(map[key]*posting, len(ords))
		for k, os := range ords {
			post[k] = encodePosting(os)
		}
		ix.shards[s] = newShard(post)
	})
	return ix
}

// ordGone marks a removed entry in the re-ordination table.
const ordGone = ^uint32(0)

// Update returns a new Index reflecting a cleaned-view delta (the Diff
// of the previous and next cleaned snapshots — which can differ on
// entries the feed delta never touched, e.g. when a new alias flips a
// consolidation). prev resolves an ID to the previous generation's
// cleaned entry, providing the keys removed and modified entries held;
// next is the new cleaned snapshot, fixing the new ordinal space.
//
// Re-ordination is bounded by the first insertion or removal point:
// ordinals below the shift are identical in both spaces, so a shard
// whose postings never reach the shift — and that the delta's key ops
// don't touch — is shared byte-for-byte with the receiver. For the
// common CVE feed shape (new entries append at the top of the ID
// order) the shift is at the end and every untouched shard is shared.
// The receiver itself is never modified, so the old generation keeps
// serving its index.
func (ix *Index) Update(d *cve.Delta, prev func(id string) *cve.Entry, next *cve.Snapshot, workers int) (*Index, error) {
	if d.Empty() {
		return ix, nil
	}
	oldIDs := ix.ids
	newIDs := idsOf(next)

	// Old ordinal → new ordinal (ordGone for removals), plus the first
	// old ordinal whose mapping is not the identity.
	remap := make([]uint32, len(oldIDs))
	shift := len(oldIDs)
	i, j := 0, 0
	for i < len(oldIDs) {
		switch {
		case j < len(newIDs) && oldIDs[i] == newIDs[j]:
			remap[i] = uint32(j)
			if i != j && i < shift {
				shift = i
			}
			i++
			j++
		case j < len(newIDs) && cve.IDLess(newIDs[j], oldIDs[i]):
			j++ // insertion; the next match records the shift
		default:
			remap[i] = ordGone
			if i < shift {
				shift = i
			}
			i++
		}
	}
	identity := shift == len(oldIDs)
	if identity {
		remap = nil
	}

	// Stage per-shard key ops: removals in old-ordinal space (applied
	// before re-ordination), additions in new-ordinal space.
	type op struct {
		k   key
		ord uint32
		add bool
	}
	var perShard [numShards][]op
	stage := func(e *cve.Entry, ord uint32, add bool) {
		for _, k := range entryKeys(e) {
			s := shardOf(k)
			perShard[s] = append(perShard[s], op{k: k, ord: ord, add: add})
		}
	}
	for _, id := range d.Removed {
		if e := prev(id); e != nil {
			if o, ok := ordIn(oldIDs, id); ok {
				stage(e, o, false)
			}
		}
	}
	for _, e := range d.Modified {
		if old := prev(e.ID); old != nil {
			if o, ok := ordIn(oldIDs, e.ID); ok {
				stage(old, o, false)
			}
		}
		if o, ok := ordIn(newIDs, e.ID); ok {
			stage(e, o, true)
		}
	}
	for _, e := range d.Added {
		if o, ok := ordIn(newIDs, e.ID); ok {
			stage(e, o, true)
		}
	}

	out := &Index{ids: newIDs}
	var errs [numShards]error
	parallel.For(workers, numShards, func(s int) {
		sh := ix.shards[s]
		ops := perShard[s]
		if len(ops) == 0 && identity {
			out.shards[s] = sh
			return
		}
		post, err := sh.load()
		if err != nil {
			errs[s] = err
			return
		}
		if len(ops) == 0 && !postingsReach(post, uint32(shift)) {
			out.shards[s] = sh
			return
		}
		var rem map[key]map[uint32]bool
		var add map[key][]uint32
		for _, o := range ops {
			if o.add {
				if add == nil {
					add = make(map[key][]uint32)
				}
				add[o.k] = append(add[o.k], o.ord)
			} else {
				if rem == nil {
					rem = make(map[key]map[uint32]bool)
				}
				m := rem[o.k]
				if m == nil {
					m = make(map[uint32]bool)
					rem[o.k] = m
				}
				m[o.ord] = true
			}
		}
		for k := range add {
			slices.Sort(add[k])
			add[k] = slices.Compact(add[k])
		}
		npost := make(map[key]*posting, len(post))
		var scratch []uint32
		for k, p := range post {
			kr, ka := rem[k], add[k]
			untouched := kr == nil && ka == nil &&
				(p.count == 0 || int64(p.skips[len(p.skips)-1].last) < int64(shift))
			if untouched {
				npost[k] = p
				continue
			}
			scratch, err = p.decode(scratch[:0])
			if err != nil {
				errs[s] = err
				return
			}
			ords := make([]uint32, 0, len(scratch)+len(ka))
			for _, o := range scratch {
				if kr[o] {
					continue
				}
				no := o
				if remap != nil {
					no = remap[o]
					if no == ordGone {
						continue
					}
				}
				ords = append(ords, no)
			}
			ords = mergeOrds(ords, ka)
			if len(ords) == 0 {
				continue
			}
			npost[k] = encodePosting(ords)
		}
		for k, ka := range add {
			if _, exists := post[k]; !exists {
				npost[k] = encodePosting(ka)
			}
		}
		out.shards[s] = newShard(npost)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// postingsReach reports whether any posting holds an ordinal at or
// above lo — i.e. whether a re-ordination shifted at lo can touch this
// shard.
func postingsReach(post map[key]*posting, lo uint32) bool {
	for _, p := range post {
		if p.count > 0 && p.skips[len(p.skips)-1].last >= lo {
			return true
		}
	}
	return false
}

// Query is one /query filter set. Zero-valued fields are inactive.
type Query struct {
	Vendor, Product string
	CWE             cwe.ID
	HasCWE          bool
	Severity        cvss.Severity
	HasSeverity     bool
	Year            int
}

// Filtered reports whether any index-backed filter is active.
func (q Query) Filtered() bool {
	return q.Vendor != "" || q.Product != "" || q.HasCWE || q.HasSeverity || q.Year != 0
}

// Match intersects the posting lists of every active filter and returns
// the matching entry ordinals in snapshot order. The second result is
// false when the query has no active filters (every entry matches, no
// lists to intersect). The error is a corrupt lazily-loaded segment —
// callers fall back to the linear scan.
func (ix *Index) Match(q Query) ([]uint32, bool, error) {
	if !q.Filtered() {
		return nil, false, nil
	}
	var ks []key
	switch {
	case q.Vendor != "" && q.Product != "":
		ks = append(ks, key{kind: keyPair, a: q.Vendor, b: q.Product})
	case q.Vendor != "":
		ks = append(ks, key{kind: keyVendor, a: q.Vendor})
	case q.Product != "":
		ks = append(ks, key{kind: keyProduct, a: q.Product})
	}
	if q.HasCWE {
		ks = append(ks, key{kind: keyCWE, a: q.CWE.String()})
	}
	if q.HasSeverity {
		ks = append(ks, key{kind: keySeverity, a: q.Severity.String()})
	}
	if q.Year != 0 {
		ks = append(ks, key{kind: keyYear, a: strconv.Itoa(q.Year)})
	}
	ps := make([]*posting, 0, len(ks))
	for _, k := range ks {
		post, err := ix.shards[shardOf(k)].load()
		if err != nil {
			return nil, true, err
		}
		p := post[k]
		if p == nil || p.count == 0 {
			return nil, true, nil
		}
		ps = append(ps, p)
	}
	// Intersect smallest-first: each merge is bounded by the smaller
	// side, and block skipping lets the sparse list drag the dense one
	// past whole undecoded blocks.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].count < ps[j-1].count; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	if len(ps) == 1 {
		ords, err := ps[0].decode(make([]uint32, 0, ps[0].count))
		return ords, true, err
	}
	acc, err := intersectPostings(ps[0], ps[1], make([]uint32, 0, ps[0].count))
	if err != nil {
		return nil, true, err
	}
	for _, p := range ps[2:] {
		if len(acc) == 0 {
			return nil, true, nil
		}
		if acc, err = intersectOrds(acc, p); err != nil {
			return nil, true, err
		}
	}
	return acc, true, nil
}

// LoadAll eagerly parses every lazy shard (the -index-load=eager boot
// path), returning the first parse failure.
func (ix *Index) LoadAll(workers int) error {
	var errs [numShards]error
	parallel.For(workers, numShards, func(s int) {
		_, errs[s] = ix.shards[s].load()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// IndexStats is the /stats view of one generation's index.
type IndexStats struct {
	Shards        int   // total shards
	LoadedShards  int   // shards parsed into posting maps
	Keys          int   // distinct keys across loaded shards
	Entries       int   // indexed snapshot length
	ResidentBytes int64 // posting block bytes held by loaded shards
	DiskBytes     int64 // segment bytes as persisted (0 if in-memory)
	Format        int   // segment encode version
}

// Stats reports the index's load state and memory footprint.
func (ix *Index) Stats() IndexStats {
	st := IndexStats{Shards: numShards, Entries: len(ix.ids), Format: indexFormatVersion}
	for _, sh := range ix.shards {
		st.DiskBytes += int64(sh.diskBytes)
		if sh.loaded.Load() {
			st.LoadedShards++
			st.Keys += len(sh.post)
			st.ResidentBytes += int64(sh.dataBytes)
		}
	}
	return st
}

// shardWire returns shard s's persisted form. A shard still carrying
// its raw segment for the same snapshot length passes through verbatim
// — persisting an untouched lazy shard decodes nothing; anything else
// re-encodes canonically.
func (ix *Index) shardWire(s int) ([]byte, error) {
	sh := ix.shards[s]
	if sh.raw != nil && sh.rawEntries == len(ix.ids) {
		return sh.raw, nil
	}
	post, err := sh.load()
	if err != nil {
		return nil, err
	}
	size := len(indexMagic) + 16
	for k, p := range post {
		size += len(k.a) + len(k.b) + len(p.data) + 8 + 15*len(p.skips)
	}
	return appendShardWire(make([]byte, 0, size), len(ix.ids), post), nil
}

// indexFromSegments assembles a lazy Index from per-shard segment
// payloads. Shards stay raw until first touched; only each segment's
// header is read here, to pin every shard to the given snapshot length.
func indexFromSegments(raws [numShards][]byte, cleaned *cve.Snapshot) (*Index, error) {
	ix := &Index{ids: idsOf(cleaned)}
	for s, raw := range raws {
		entries, err := peekShardEntries(raw)
		if err != nil {
			return nil, err
		}
		if entries != len(ix.ids) {
			return nil, fmt.Errorf("index segment %d indexes %d entries, snapshot has %d", s, entries, len(ix.ids))
		}
		ix.shards[s] = &shard{raw: raw, rawEntries: entries, diskBytes: len(raw)}
	}
	return ix, nil
}
