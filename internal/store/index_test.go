package store

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// indexSnapshot builds a deterministic snapshot with overlapping
// vendors, products, CWE types, severity bands and years.
func indexSnapshot(n int) *cve.Snapshot {
	vendors := []string{"redhat", "microsoft", "oracle", "acme", "initech"}
	products := []string{"kernel", "office", "db", "anvil", "tps"}
	cwes := [][]int{{79}, {89, 79}, {125}, nil, {-1}}
	s := &cve.Snapshot{CapturedAt: time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC)}
	for i := 0; i < n; i++ {
		year := 2014 + i%5
		e := testEntry(year, i+1, vendors[i%len(vendors)], products[i%len(products)], cwes[i%len(cwes)], v2High, "")
		// Multi-CPE entries exercise pair semantics: vendor A with
		// product X plus vendor B with product Y must NOT match a
		// query for (A, Y).
		if i%3 == 0 {
			e.CPEs = append(e.CPEs, cpe.NewName(cpe.PartApplication, vendors[(i+1)%len(vendors)], products[(i+2)%len(products)], ""))
		}
		switch i % 4 {
		case 0:
			v, _ := cvss.ParseV3(v3Crit)
			e.V3 = &v
		case 1:
			pv := 2.0 + float64(i%8)
			e.PV3 = &pv
		case 2:
			// v2-only, no backported score: no severity posting.
			e.V2 = nil
			e.PV3 = nil
		}
		s.Entries = append(s.Entries, e)
	}
	s.Sort()
	return s
}

// bruteMatch is the reference filter: a plain scan of the snapshot.
func bruteMatch(snap *cve.Snapshot, q Query) []string {
	var out []string
	for _, e := range snap.Entries {
		if q.Year != 0 && e.Year() != q.Year {
			continue
		}
		if q.Vendor != "" || q.Product != "" {
			found := false
			for _, n := range e.CPEs {
				if q.Vendor != "" && n.Vendor != q.Vendor {
					continue
				}
				if q.Product != "" && n.Product != q.Product {
					continue
				}
				found = true
				break
			}
			if !found {
				continue
			}
		}
		if q.HasCWE && !e.HasCWE(q.CWE) {
			continue
		}
		if q.HasSeverity {
			sev, ok := entrySeverity(e)
			if !ok || sev != q.Severity {
				continue
			}
		}
		out = append(out, e.ID)
	}
	return out
}

// queryGrid enumerates a representative set of filter combinations.
func queryGrid() []Query {
	var qs []Query
	for _, vendor := range []string{"", "redhat", "acme", "nosuch"} {
		for _, product := range []string{"", "kernel", "anvil"} {
			qs = append(qs, Query{Vendor: vendor, Product: product})
			qs = append(qs, Query{Vendor: vendor, Product: product, Year: 2016})
			qs = append(qs, Query{Vendor: vendor, Product: product, HasSeverity: true, Severity: cvss.SeverityCritical})
		}
	}
	qs = append(qs,
		Query{HasCWE: true, CWE: cwe.ID(79)},
		Query{HasCWE: true, CWE: cwe.ID(89), Year: 2015},
		Query{HasCWE: true, CWE: cwe.ID(4242)},
		Query{HasSeverity: true, Severity: cvss.SeverityHigh, Year: 2017},
		Query{Year: 1999},
	)
	return qs
}

func TestIndexMatchesLinearScan(t *testing.T) {
	snap := indexSnapshot(300)
	ix := BuildIndex(snap, 4)
	for _, q := range queryGrid() {
		got, filtered := ix.Match(q)
		if !q.Filtered() {
			if filtered {
				t.Fatalf("empty query reported filtered")
			}
			continue
		}
		want := bruteMatch(snap, q)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %+v: got %v, want %v", q, got, want)
		}
	}
}

func TestIndexWorkerInvariance(t *testing.T) {
	snap := indexSnapshot(300)
	base := BuildIndex(snap, 1)
	for _, w := range []int{2, 3, 8} {
		ix := BuildIndex(snap, w)
		for s := range base.shards {
			if !reflect.DeepEqual(base.shards[s].post, ix.shards[s].post) {
				t.Fatalf("shard %d differs between workers 1 and %d", s, w)
			}
		}
	}
}

// TestIndexUpdate proves incremental maintenance: updating with a
// delta yields exactly the index a full rebuild of the new snapshot
// would, the old index is untouched, and unaffected shards are shared.
func TestIndexUpdate(t *testing.T) {
	snap := indexSnapshot(200)
	ix := BuildIndex(snap, 4)

	next := snap.Clone()
	// Remove one entry, modify another (vendor rename + severity
	// change), add two new ones.
	removedID := next.Entries[10].ID
	next.Entries = append(next.Entries[:10], next.Entries[11:]...)
	mod := next.Entries[20]
	mod.CPEs[0].Vendor = "globex"
	pv := 9.8
	mod.V3 = nil
	mod.PV3 = &pv
	added1 := testEntry(2019, 1, "globex", "kernel", []int{79}, v2High, "")
	added2 := testEntry(2013, 1, "initech", "tps", nil, "", v3Crit)
	next.Entries = append(next.Entries, added1, added2)
	next.Sort()

	d := cve.Diff(snap, next)
	if len(d.Added) != 2 || len(d.Modified) != 1 || len(d.Removed) != 1 || d.Removed[0] != removedID {
		t.Fatalf("unexpected delta shape: %d/%d/%d", len(d.Added), len(d.Modified), len(d.Removed))
	}
	prevByID := make(map[string]*cve.Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		prevByID[e.ID] = e
	}

	before := make([]map[key][]string, numShards)
	for s := range ix.shards {
		before[s] = make(map[key][]string, len(ix.shards[s].post))
		for k, ids := range ix.shards[s].post {
			before[s][k] = append([]string(nil), ids...)
		}
	}

	got := ix.Update(d, func(id string) *cve.Entry { return prevByID[id] }, 4)
	want := BuildIndex(next, 4)
	shared := 0
	for s := range want.shards {
		if !reflect.DeepEqual(got.shards[s].post, want.shards[s].post) {
			t.Errorf("shard %d: incremental update diverges from full rebuild", s)
		}
		if got.shards[s] == ix.shards[s] {
			shared++
		}
	}
	for s := range ix.shards {
		if !reflect.DeepEqual(ix.shards[s].post, before[s]) {
			t.Errorf("shard %d of the previous index was mutated", s)
		}
	}
	if shared == 0 {
		t.Error("no shard was shared between generations (copy-on-write defeated)")
	}
	if got2 := ix.Update(&cve.Delta{}, func(string) *cve.Entry { return nil }, 4); got2 != ix {
		t.Error("empty delta should return the receiver")
	}
}

// TestShardBoundarySeparation is the regression test for the shardOf
// field separator: pair keys whose concatenated bytes are equal but
// whose a/b boundary differs must not all collapse onto one shard —
// the old fold XOR-ed a zero byte between the fields, which mixes no
// boundary information into the low bits the shard number is taken
// from.
func TestShardBoundarySeparation(t *testing.T) {
	// The issue's canonical pair.
	if a, b := shardOf(key{kind: keyPair, a: "ab", b: "c"}), shardOf(key{kind: keyPair, a: "a", b: "bc"}); a == b {
		t.Errorf(`shardOf("ab","c") == shardOf("a","bc") == %d: boundary not folded`, a)
	}
	// Every split family of a word: at least two distinct shards per
	// family (a 16-way hash may still collide individual pairs).
	words := []string{"linuxkernel", "microsoftoffice", "redhatenterprise", "acmeanvil", "initechtps"}
	for _, w := range words {
		shards := make(map[int]bool)
		for cut := 1; cut < len(w); cut++ {
			shards[shardOf(key{kind: keyPair, a: w[:cut], b: w[cut:]})] = true
		}
		if len(shards) < 2 {
			t.Errorf("all %d boundary splits of %q land on one shard", len(w)-1, w)
		}
	}
	// An empty b must differ from the whole string in a (the other
	// degenerate boundary).
	if a, b := shardOf(key{kind: keyVendor, a: "abc"}), shardOf(key{kind: keyPair, a: "abc", b: ""}); a == b {
		// Different kinds already separate these; this guards the
		// fold's shape if kinds ever merge.
		t.Logf("vendor(abc) and pair(abc,\"\") share shard %d (allowed: kind byte separates them)", a)
	}
}

// TestShardDistribution is the distribution sanity check: a realistic
// key population must spread across every shard without pathological
// skew.
func TestShardDistribution(t *testing.T) {
	var counts [numShards]int
	n := 0
	add := func(k key) {
		counts[shardOf(k)]++
		n++
	}
	for i := 0; i < 40; i++ {
		vendor := fmt.Sprintf("vendor%02d", i)
		add(key{kind: keyVendor, a: vendor})
		for j := 0; j < 12; j++ {
			product := fmt.Sprintf("product%02d", j)
			add(key{kind: keyProduct, a: product})
			add(key{kind: keyPair, a: vendor, b: product})
		}
	}
	for y := 1999; y < 2026; y++ {
		add(key{kind: keyYear, a: fmt.Sprint(y)})
	}
	for c := 1; c < 1000; c += 7 {
		add(key{kind: keyCWE, a: fmt.Sprintf("CWE-%d", c)})
	}
	mean := n / numShards
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys (n=%d)", s, n)
		}
		if c > 4*mean {
			t.Errorf("shard %d holds %d of %d keys (>4x the mean %d)", s, c, n, mean)
		}
	}
}

func TestInsertRemoveID(t *testing.T) {
	var list []string
	for _, seq := range []int{5, 1, 9, 3, 5} {
		list = insertID(list, cve.FormatID(2017, seq))
	}
	want := []string{"CVE-2017-0001", "CVE-2017-0003", "CVE-2017-0005", "CVE-2017-0009"}
	if !reflect.DeepEqual(list, want) {
		t.Fatalf("insertID: %v", list)
	}
	list = removeID(list, "CVE-2017-0003")
	list = removeID(list, "CVE-2017-9999")
	if fmt.Sprint(list) != "[CVE-2017-0001 CVE-2017-0005 CVE-2017-0009]" {
		t.Fatalf("removeID: %v", list)
	}
}
