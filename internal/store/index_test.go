package store

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nvdclean/internal/cpe"
	"nvdclean/internal/cve"
	"nvdclean/internal/cvss"
	"nvdclean/internal/cwe"
)

// indexSnapshot builds a deterministic snapshot with overlapping
// vendors, products, CWE types, severity bands and years.
func indexSnapshot(n int) *cve.Snapshot {
	vendors := []string{"redhat", "microsoft", "oracle", "acme", "initech"}
	products := []string{"kernel", "office", "db", "anvil", "tps"}
	cwes := [][]int{{79}, {89, 79}, {125}, nil, {-1}}
	s := &cve.Snapshot{CapturedAt: time.Date(2018, 5, 21, 0, 0, 0, 0, time.UTC)}
	for i := 0; i < n; i++ {
		year := 2014 + i%5
		e := testEntry(year, i+1, vendors[i%len(vendors)], products[i%len(products)], cwes[i%len(cwes)], v2High, "")
		// Multi-CPE entries exercise pair semantics: vendor A with
		// product X plus vendor B with product Y must NOT match a
		// query for (A, Y).
		if i%3 == 0 {
			e.CPEs = append(e.CPEs, cpe.NewName(cpe.PartApplication, vendors[(i+1)%len(vendors)], products[(i+2)%len(products)], ""))
		}
		switch i % 4 {
		case 0:
			v, _ := cvss.ParseV3(v3Crit)
			e.V3 = &v
		case 1:
			pv := 2.0 + float64(i%8)
			e.PV3 = &pv
		case 2:
			// v2-only, no backported score: no severity posting.
			e.V2 = nil
			e.PV3 = nil
		}
		s.Entries = append(s.Entries, e)
	}
	s.Sort()
	return s
}

// bruteMatch is the reference filter: a plain scan of the snapshot.
func bruteMatch(snap *cve.Snapshot, q Query) []string {
	var out []string
	for _, e := range snap.Entries {
		if q.Year != 0 && e.Year() != q.Year {
			continue
		}
		if q.Vendor != "" || q.Product != "" {
			found := false
			for _, n := range e.CPEs {
				if q.Vendor != "" && n.Vendor != q.Vendor {
					continue
				}
				if q.Product != "" && n.Product != q.Product {
					continue
				}
				found = true
				break
			}
			if !found {
				continue
			}
		}
		if q.HasCWE && !e.HasCWE(q.CWE) {
			continue
		}
		if q.HasSeverity {
			sev, ok := entrySeverity(e)
			if !ok || sev != q.Severity {
				continue
			}
		}
		out = append(out, e.ID)
	}
	return out
}

// queryGrid enumerates a representative set of filter combinations.
func queryGrid() []Query {
	var qs []Query
	for _, vendor := range []string{"", "redhat", "acme", "nosuch"} {
		for _, product := range []string{"", "kernel", "anvil"} {
			qs = append(qs, Query{Vendor: vendor, Product: product})
			qs = append(qs, Query{Vendor: vendor, Product: product, Year: 2016})
			qs = append(qs, Query{Vendor: vendor, Product: product, HasSeverity: true, Severity: cvss.SeverityCritical})
		}
	}
	qs = append(qs,
		Query{HasCWE: true, CWE: cwe.ID(79)},
		Query{HasCWE: true, CWE: cwe.ID(89), Year: 2015},
		Query{HasCWE: true, CWE: cwe.ID(4242)},
		Query{HasSeverity: true, Severity: cvss.SeverityHigh, Year: 2017},
		Query{Year: 1999},
	)
	return qs
}

// matchIDs resolves Match's ordinals against the indexed snapshot.
func matchIDs(t *testing.T, ix *Index, snap *cve.Snapshot, q Query) ([]string, bool) {
	t.Helper()
	ords, filtered, err := ix.Match(q)
	if err != nil {
		t.Fatalf("Match(%+v): %v", q, err)
	}
	if !filtered {
		return nil, false
	}
	var out []string
	for _, o := range ords {
		out = append(out, snap.Entries[o].ID)
	}
	return out, true
}

// decodedShard materializes one shard's posting map into plain ordinal
// slices for comparison.
func decodedShard(t *testing.T, sh *shard) map[key][]uint32 {
	t.Helper()
	post, err := sh.load()
	if err != nil {
		t.Fatalf("shard load: %v", err)
	}
	out := make(map[key][]uint32, len(post))
	for k, p := range post {
		ords, err := p.decode(nil)
		if err != nil {
			t.Fatalf("decode posting %+v: %v", k, err)
		}
		out[k] = ords
	}
	return out
}

func TestIndexMatchesLinearScan(t *testing.T) {
	snap := indexSnapshot(300)
	ix := BuildIndex(snap, 4)
	for _, q := range queryGrid() {
		got, filtered := matchIDs(t, ix, snap, q)
		if !q.Filtered() {
			if filtered {
				t.Fatalf("empty query reported filtered")
			}
			continue
		}
		want := bruteMatch(snap, q)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %+v: got %v, want %v", q, got, want)
		}
	}
}

func TestIndexWorkerInvariance(t *testing.T) {
	snap := indexSnapshot(300)
	base := BuildIndex(snap, 1)
	for _, w := range []int{2, 3, 8} {
		ix := BuildIndex(snap, w)
		for s := range base.shards {
			if !reflect.DeepEqual(decodedShard(t, base.shards[s]), decodedShard(t, ix.shards[s])) {
				t.Fatalf("shard %d differs between workers 1 and %d", s, w)
			}
		}
	}
}

// checkIndexEqual asserts two indexes hold identical postings and the
// same ordinal→ID table.
func checkIndexEqual(t *testing.T, got, want *Index) {
	t.Helper()
	if !reflect.DeepEqual(got.ids, want.ids) {
		t.Fatalf("ordinal tables differ: %d vs %d ids", len(got.ids), len(want.ids))
	}
	for s := range want.shards {
		if !reflect.DeepEqual(decodedShard(t, got.shards[s]), decodedShard(t, want.shards[s])) {
			t.Errorf("shard %d: postings diverge", s)
		}
	}
}

// TestIndexUpdate proves incremental maintenance under re-ordination:
// a delta whose insertions land in the middle of the ordinal space
// (every later ordinal shifts) still yields exactly the index a full
// rebuild of the new snapshot would, and the old index is untouched.
func TestIndexUpdate(t *testing.T) {
	snap := indexSnapshot(200)
	ix := BuildIndex(snap, 4)

	next := snap.Clone()
	// Remove one entry, modify another (vendor rename + severity
	// change), add two new ones — one after every existing entry, one
	// before all of them (a front insertion shifts every ordinal).
	removedID := next.Entries[10].ID
	next.Entries = append(next.Entries[:10], next.Entries[11:]...)
	mod := next.Entries[20]
	mod.CPEs[0].Vendor = "globex"
	pv := 9.8
	mod.V3 = nil
	mod.PV3 = &pv
	added1 := testEntry(2019, 1, "globex", "kernel", []int{79}, v2High, "")
	added2 := testEntry(2013, 1, "initech", "tps", nil, "", v3Crit)
	next.Entries = append(next.Entries, added1, added2)
	next.Sort()

	d := cve.Diff(snap, next)
	if len(d.Added) != 2 || len(d.Modified) != 1 || len(d.Removed) != 1 || d.Removed[0] != removedID {
		t.Fatalf("unexpected delta shape: %d/%d/%d", len(d.Added), len(d.Modified), len(d.Removed))
	}
	prevByID := make(map[string]*cve.Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		prevByID[e.ID] = e
	}

	before := make([]map[key][]uint32, numShards)
	for s := range ix.shards {
		before[s] = decodedShard(t, ix.shards[s])
	}

	got, err := ix.Update(d, func(id string) *cve.Entry { return prevByID[id] }, next, 4)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	checkIndexEqual(t, got, BuildIndex(next, 4))
	for s := range ix.shards {
		if !reflect.DeepEqual(decodedShard(t, ix.shards[s]), before[s]) {
			t.Errorf("shard %d of the previous index was mutated", s)
		}
	}
	got2, err := ix.Update(&cve.Delta{}, func(string) *cve.Entry { return nil }, snap, 4)
	if err != nil {
		t.Fatalf("empty Update: %v", err)
	}
	if got2 != ix {
		t.Error("empty delta should return the receiver")
	}
}

// TestIndexUpdateSharing proves copy-on-write under the common CVE feed
// shape: additions whose IDs sort after every existing entry keep the
// re-ordination an identity, so every shard the delta's keys don't
// touch is shared pointer-for-pointer with the previous index.
func TestIndexUpdateSharing(t *testing.T) {
	snap := indexSnapshot(200)
	ix := BuildIndex(snap, 4)

	next := snap.Clone()
	added := testEntry(2019, 500, "globex", "kernel", []int{79}, v2High, "")
	next.Entries = append(next.Entries, added)
	next.Sort()

	d := cve.Diff(snap, next)
	prevByID := make(map[string]*cve.Entry, len(snap.Entries))
	for _, e := range snap.Entries {
		prevByID[e.ID] = e
	}
	got, err := ix.Update(d, func(id string) *cve.Entry { return prevByID[id] }, next, 4)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	checkIndexEqual(t, got, BuildIndex(next, 4))
	shared := 0
	for s := range got.shards {
		if got.shards[s] == ix.shards[s] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shard was shared between generations (copy-on-write defeated)")
	}

	// A removal mid-snapshot bounds sharing by the shift point instead
	// of defeating it: shards whose postings stay below the removed
	// ordinal — and that the removal's keys don't touch — are shared.
	next2 := snap.Clone()
	removedID := next2.Entries[150].ID
	next2.Entries = append(next2.Entries[:150], next2.Entries[151:]...)
	d2 := cve.Diff(snap, next2)
	if len(d2.Removed) != 1 || d2.Removed[0] != removedID {
		t.Fatalf("unexpected removal delta: %+v", d2.Removed)
	}
	got2, err := ix.Update(d2, func(id string) *cve.Entry { return prevByID[id] }, next2, 4)
	if err != nil {
		t.Fatalf("Update (removal): %v", err)
	}
	checkIndexEqual(t, got2, BuildIndex(next2, 4))
}

// TestShardBoundarySeparation is the regression test for the shardOf
// field separator: pair keys whose concatenated bytes are equal but
// whose a/b boundary differs must not all collapse onto one shard —
// the old fold XOR-ed a zero byte between the fields, which mixes no
// boundary information into the low bits the shard number is taken
// from.
func TestShardBoundarySeparation(t *testing.T) {
	// The issue's canonical pair.
	if a, b := shardOf(key{kind: keyPair, a: "ab", b: "c"}), shardOf(key{kind: keyPair, a: "a", b: "bc"}); a == b {
		t.Errorf(`shardOf("ab","c") == shardOf("a","bc") == %d: boundary not folded`, a)
	}
	// Every split family of a word: at least two distinct shards per
	// family (a 16-way hash may still collide individual pairs).
	words := []string{"linuxkernel", "microsoftoffice", "redhatenterprise", "acmeanvil", "initechtps"}
	for _, w := range words {
		shards := make(map[int]bool)
		for cut := 1; cut < len(w); cut++ {
			shards[shardOf(key{kind: keyPair, a: w[:cut], b: w[cut:]})] = true
		}
		if len(shards) < 2 {
			t.Errorf("all %d boundary splits of %q land on one shard", len(w)-1, w)
		}
	}
	// An empty b must differ from the whole string in a (the other
	// degenerate boundary).
	if a, b := shardOf(key{kind: keyVendor, a: "abc"}), shardOf(key{kind: keyPair, a: "abc", b: ""}); a == b {
		// Different kinds already separate these; this guards the
		// fold's shape if kinds ever merge.
		t.Logf("vendor(abc) and pair(abc,\"\") share shard %d (allowed: kind byte separates them)", a)
	}
}

// TestShardDistribution is the distribution sanity check: a realistic
// key population must spread across every shard without pathological
// skew.
func TestShardDistribution(t *testing.T) {
	var counts [numShards]int
	n := 0
	add := func(k key) {
		counts[shardOf(k)]++
		n++
	}
	for i := 0; i < 40; i++ {
		vendor := fmt.Sprintf("vendor%02d", i)
		add(key{kind: keyVendor, a: vendor})
		for j := 0; j < 12; j++ {
			product := fmt.Sprintf("product%02d", j)
			add(key{kind: keyProduct, a: product})
			add(key{kind: keyPair, a: vendor, b: product})
		}
	}
	for y := 1999; y < 2026; y++ {
		add(key{kind: keyYear, a: fmt.Sprint(y)})
	}
	for c := 1; c < 1000; c += 7 {
		add(key{kind: keyCWE, a: fmt.Sprintf("CWE-%d", c)})
	}
	mean := n / numShards
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys (n=%d)", s, n)
		}
		if c > 4*mean {
			t.Errorf("shard %d holds %d of %d keys (>4x the mean %d)", s, c, n, mean)
		}
	}
}

// TestEntryKeysExactCapacity is the regression test for the entryKeys
// pre-sizing fix: duplicate-heavy CPE lists must not over-allocate, and
// the emitted key set must be exactly the distinct keys in
// first-appearance order.
func TestEntryKeysExactCapacity(t *testing.T) {
	e := testEntry(2017, 1, "redhat", "kernel", []int{79, 79, 89}, v2High, v3Crit)
	// Duplicate the same CPE name many times: 3*len(CPEs) would
	// reserve 30 key slots for what dedups to 3.
	for i := 0; i < 9; i++ {
		e.CPEs = append(e.CPEs, e.CPEs[0])
	}
	keys := entryKeys(e)
	if len(keys) != cap(keys) {
		t.Errorf("entryKeys allocated %d slots for %d keys", cap(keys), len(keys))
	}
	seen := make(map[key]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Errorf("duplicate key %+v", k)
		}
		seen[k] = true
	}
	// vendor + product + pair + 2 CWEs + severity + year.
	if len(keys) != 7 {
		t.Errorf("got %d keys, want 7: %+v", len(keys), keys)
	}
}
