package store

import (
	"fmt"
	"runtime"
	"testing"

	"nvdclean/internal/cve"
)

// legacyIndex mirrors the pre-ordinal representation: one map per
// shard from key to a []string of CVE IDs. It exists only as the
// baseline for BenchmarkIndexMemory.
func legacyIndex(snap *cve.Snapshot) [numShards]map[key][]string {
	var shards [numShards]map[key][]string
	for s := range shards {
		shards[s] = make(map[key][]string)
	}
	for _, e := range snap.Entries {
		for _, k := range entryKeys(e) {
			s := shardOf(k)
			shards[s][k] = append(shards[s][k], e.ID)
		}
	}
	return shards
}

// heapBytes runs build with a quiesced heap and returns its live-heap
// cost. The returned value must be kept alive past the second read.
func heapBytes(b *testing.B, build func() any) (any, uint64) {
	b.Helper()
	// Two cycles: the first can leave floating garbage from earlier
	// builds, which would inflate the before-reading.
	runtime.GC()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return keep, 0
	}
	return keep, after.HeapAlloc - before.HeapAlloc
}

// BenchmarkIndexMemory compares resident index bytes per entry for the
// ordinal delta-varint representation (fully loaded — the worst case;
// lazy shards cost less) against the legacy map[key][]string layout,
// at 10x (30K) and 100x (300K) synthetic feed scale. The headline
// metrics are ordinal-B/entry, legacy-B/entry and reduction-x; time
// per op is meaningless here.
func BenchmarkIndexMemory(b *testing.B) {
	for _, sc := range []struct {
		name string
		n    int
	}{{"10x", 30000}, {"100x", 300000}} {
		b.Run(sc.name, func(b *testing.B) {
			snap := indexSnapshot(sc.n)
			keepIx, ordBytes := heapBytes(b, func() any {
				ix := BuildIndex(snap, runtime.GOMAXPROCS(0))
				for s := 0; s < numShards; s++ {
					if _, err := ix.shards[s].load(); err != nil {
						b.Fatal(err)
					}
				}
				// The ordinal→ID table is shared with the snapshot in
				// production; it still counts here, keeping the
				// comparison conservative.
				return ix
			})
			keepLegacy, legacyBytes := heapBytes(b, func() any {
				return legacyIndex(snap)
			})
			perOrd := float64(ordBytes) / float64(sc.n)
			perLegacy := float64(legacyBytes) / float64(sc.n)
			b.ReportMetric(perOrd, "ordinal-B/entry")
			b.ReportMetric(perLegacy, "legacy-B/entry")
			if perOrd > 0 {
				b.ReportMetric(perLegacy/perOrd, "reduction-x")
			}
			for i := 0; i < b.N; i++ {
			}
			runtime.KeepAlive(keepIx)
			runtime.KeepAlive(keepLegacy)
			// The snapshot must stay live through both measurements, or
			// its collection mid-measure masks the build's allocation.
			runtime.KeepAlive(snap)
		})
	}
}

// BenchmarkBootIndex compares what a warm restart pays for its index:
// "lazy" parses segment headers and answers one vendor query (the
// O(hot-set) path); "rebuild" is the old boot cost, a full BuildIndex
// over the snapshot plus the same query.
func BenchmarkBootIndex(b *testing.B) {
	for _, sc := range []struct {
		name string
		n    int
	}{{"10x", 30000}, {"100x", 300000}} {
		snap := indexSnapshot(sc.n)
		built := BuildIndex(snap, runtime.GOMAXPROCS(0))
		var raws [numShards][]byte
		for s := 0; s < numShards; s++ {
			wire, err := built.shardWire(s)
			if err != nil {
				b.Fatal(err)
			}
			raws[s] = wire
		}
		q := Query{Vendor: "redhat"}
		b.Run(fmt.Sprintf("lazy/%s", sc.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := indexFromSegments(raws, snap)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := ix.Match(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/%s", sc.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := BuildIndex(snap, runtime.GOMAXPROCS(0))
				if _, _, err := ix.Match(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
