package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSegmentedReplayOrder proves deltas recover in append order across
// several sealed segments plus the active one, with the per-segment
// record counts intact.
func TestSegmentedReplayOrder(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	seals := map[int]bool{2: true, 4: true} // seal after the 2nd and 4th append
	for i := 1; i <= 5; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
		if seals[i] {
			if _, err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.LogRecords() != 5 || s.ActiveRecords() != 1 || s.SealedSegments() != 2 {
		t.Fatalf("live log: total=%d active=%d sealed=%d", s.LogRecords(), s.ActiveRecords(), s.SealedSegments())
	}
	s.Close()

	s2, cp, deltas, notes := mustOpen(t, dir)
	if cp == nil || len(deltas) != 5 {
		t.Fatalf("reopen: %d deltas (notes %v)", len(deltas), notes)
	}
	if len(notes) != 0 {
		t.Errorf("clean multi-segment reopen produced notes: %v", notes)
	}
	for i, d := range deltas {
		want := fmt.Sprintf("CVE-2018-%04d", 101+i)
		if len(d.Added) != 1 || d.Added[0].ID != want {
			t.Fatalf("delta %d out of order: %+v", i, d.Added)
		}
	}
	if s2.SealedSegments() != 2 || s2.ActiveRecords() != 1 {
		t.Errorf("reopened segments: sealed=%d active=%d", s2.SealedSegments(), s2.ActiveRecords())
	}
}

// TestCommitSealedRetires proves a sealed-generation commit folds in
// exactly the segments at or below the sealed seq: later records stay
// live, retired files disappear, and a straggler copy of a retired
// segment (a crash between the CURRENT swap and retirement) is skipped
// and swept on the next open instead of being replayed twice.
func TestCommitSealedRetires(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(4)); err != nil {
		t.Fatal(err)
	}
	// Keep a copy of the sealed segment to resurrect as a straggler.
	segPath := filepath.Join(dir, segmentName(seq))
	sealedBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.CommitSealed(testCheckpoint(), seq); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 || s.SealedSegments() != 0 || s.LogRecords() != 1 {
		t.Fatalf("after sealed commit: gen=%d sealed=%d records=%d", s.Generation(), s.SealedSegments(), s.LogRecords())
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Error("sealed segment not retired")
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Error("generation 1 not retired")
	}
	// Committing through the active segment must be refused.
	if err := s.CommitSealed(testCheckpoint(), seq+1); err == nil {
		t.Error("CommitSealed through the active segment succeeded")
	}
	s.Close()

	// Straggler: the retired segment reappears (crash before the
	// remove). Its records are already folded into the checkpoint —
	// recovery must skip it by the manifest's walSeq watermark.
	if err := os.WriteFile(segPath, sealedBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, cp, deltas, notes := mustOpen(t, dir)
	if cp == nil || cp.Generation != 2 || cp.Seq != seq {
		t.Fatalf("reopen: gen=%v walSeq=%v", cp.Generation, cp.Seq)
	}
	if len(deltas) != 1 || len(deltas[0].Added) != 1 || deltas[0].Added[0].ID != "CVE-2018-0104" {
		t.Fatalf("straggler segment replayed: %d deltas", len(deltas))
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Error("straggler segment not swept")
	}
	found := false
	for _, n := range notes {
		if n == "swept stale "+segmentName(seq) {
			found = true
		}
	}
	if !found {
		t.Errorf("no sweep note for the straggler: %v", notes)
	}
	s2.Close()
}

// TestRecoveryHeaderAtSegmentEOF covers the frame-at-the-boundary
// windows: a frame header lying exactly at EOF (its payload never
// written) in the active segment truncates cleanly with every earlier
// segment's records intact, while the same tear inside a sealed
// segment cuts the replay chain — the good prefix survives, later
// segments are dropped, and the store remains appendable past the
// highest seq.
func TestRecoveryHeaderAtSegmentEOF(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		s, _, _, _ := mustOpen(t, dir)
		if err := s.Commit(testCheckpoint()); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 2; i++ {
			if err := s.AppendDelta(testDelta(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendDelta(testDelta(3)); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir
	}
	// An 8-byte header promising a payload that was never written.
	tornHeader := []byte{16, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}
	appendTo := func(t *testing.T, path string, b []byte) {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	t.Run("active", func(t *testing.T) {
		dir := build(t)
		active := filepath.Join(dir, segmentName(2))
		appendTo(t, active, tornHeader)
		s, _, deltas, notes := mustOpen(t, dir)
		if len(deltas) != 3 {
			t.Fatalf("recovered %d deltas, want 3 (notes %v)", len(deltas), notes)
		}
		if len(notes) == 0 {
			t.Error("torn header at EOF produced no note")
		}
		// The tail is gone and the segment appends cleanly again.
		if err := s.AppendDelta(testDelta(4)); err != nil {
			t.Fatal(err)
		}
		s.Close()
		_, _, deltas, _ = mustOpen(t, dir)
		if len(deltas) != 4 {
			t.Fatalf("post-recovery append lost: %d deltas", len(deltas))
		}
	})

	t.Run("sealed", func(t *testing.T) {
		dir := build(t)
		sealedSegPath := filepath.Join(dir, segmentName(1))
		appendTo(t, sealedSegPath, tornHeader)
		s, _, deltas, notes := mustOpen(t, dir)
		// The sealed segment's two good records survive; the active
		// segment beyond the cut is unreachable and dropped.
		if len(deltas) != 2 {
			t.Fatalf("recovered %d deltas, want 2 (notes %v)", len(deltas), notes)
		}
		dropped := false
		for _, n := range notes {
			if n == "dropped unreachable segment "+segmentName(2) {
				dropped = true
			}
		}
		if !dropped {
			t.Errorf("no note for the dropped successor segment: %v", notes)
		}
		// Appends resume in a fresh segment past the highest seq seen.
		if err := s.AppendDelta(testDelta(9)); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, segmentName(3))); err != nil {
			t.Errorf("appends did not resume past the dropped segment: %v", err)
		}
		s.Close()
		_, _, deltas, _ = mustOpen(t, dir)
		if len(deltas) != 3 {
			t.Fatalf("after recovery append: %d deltas, want 3", len(deltas))
		}
	})
}

// TestCommitterBackground drives the commit queue end to end: seal,
// enqueue, background commit, segment retirement — with appends to the
// successor segment racing the commit.
func TestCommitterBackground(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s)
	defer c.Close()

	for i := 1; i <= 2; i++ {
		if err := s.AppendDelta(testDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	c.Enqueue(testCheckpoint(), seq)
	// The acknowledge path stays open while the committer writes.
	if err := s.AppendDelta(testDelta(3)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "background commit", func() bool { return s.Generation() == 2 })
	waitFor(t, "commit recorded", func() bool { return c.Stats().Committed == 1 })
	st := c.Stats()
	if st.Pending || st.Retries != 0 || st.LastError != "" {
		t.Errorf("stats after one commit: %+v", st)
	}
	if s.SealedSegments() != 0 || s.LogRecords() != 1 {
		t.Errorf("after background commit: sealed=%d records=%d", s.SealedSegments(), s.LogRecords())
	}
	c.Close()
	s.Close()

	s2, cp, deltas, _ := mustOpen(t, dir)
	if cp == nil || cp.Generation != 2 || len(deltas) != 1 {
		t.Fatalf("reopen: gen=%v deltas=%d", cp.Generation, len(deltas))
	}
	s2.Close()
}

// TestCommitterRetryAndSupersede proves a failing commit is surfaced,
// re-enqueued with backoff, and superseded by a newer checkpoint.
func TestCommitterRetryAndSupersede(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelta(testDelta(1)); err != nil {
		t.Fatal(err)
	}
	seq, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(s)
	c.SetBackoff(time.Millisecond, 10*time.Millisecond)
	defer c.Close()

	// An incomplete checkpoint can never commit: it must keep failing
	// (with backoff) without touching the committed generation.
	c.Enqueue(&Checkpoint{}, seq)
	waitFor(t, "retries", func() bool { st := c.Stats(); return st.Retries >= 2 && st.LastError != "" })
	if s.Generation() != 1 {
		t.Fatalf("failed commit advanced the generation to %d", s.Generation())
	}
	// A live error carries its timestamp, so /stats readers can age it.
	if st := c.Stats(); st.LastErrorUnix == 0 {
		t.Errorf("failing commit recorded no lastErrorUnix: %+v", st)
	} else if age := time.Now().Unix() - st.LastErrorUnix; age < 0 || age > 60 {
		t.Errorf("lastErrorUnix implausibly old: age %ds", age)
	}
	// The sealed segment is still intact — durability never depended
	// on the queue.
	if s.SealedSegments() != 1 {
		t.Fatalf("failed commit lost the sealed segment")
	}

	// A good checkpoint supersedes the poisoned one and commits.
	c.Enqueue(testCheckpoint(), seq)
	waitFor(t, "superseding commit", func() bool { return s.Generation() == 2 })
	waitFor(t, "error cleared", func() bool { return c.Stats().LastError == "" })
	if st := c.Stats(); st.Committed != 1 {
		t.Errorf("stats after recovery: %+v", st)
	}
	if st := c.Stats(); st.LastErrorUnix != 0 {
		t.Errorf("successful commit did not clear lastErrorUnix: %+v", st)
	}
}

// TestCommitObserver proves the commit observer fires on both the
// synchronous and failure paths with a plausible duration — the hook
// the daemon's checkpoint-duration histogram hangs off.
func TestCommitObserver(t *testing.T) {
	dir := t.TempDir()
	s, _, _, _ := mustOpen(t, dir)
	var mu sync.Mutex
	type obsCall struct {
		d   time.Duration
		err error
	}
	var calls []obsCall
	s.SetCommitObserver(func(d time.Duration, err error) {
		mu.Lock()
		calls = append(calls, obsCall{d, err})
		mu.Unlock()
	})
	if err := s.Commit(testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitSealed(&Checkpoint{}, 0); err == nil {
		t.Fatal("incomplete checkpoint committed")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(calls))
	}
	if calls[0].err != nil || calls[0].d < 0 {
		t.Errorf("successful commit observed as %v after %v", calls[0].err, calls[0].d)
	}
	if calls[1].err == nil {
		t.Error("failed commit observed without its error")
	}
	s.Close()
}
