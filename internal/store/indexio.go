package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// On-disk index segments: each checkpoint generation persists one
// `index-NN.seg` file per shard, CRC-summed in MANIFEST.json like every
// other artifact. The wire layout is
//
//	"NVIX" | version(1B) | entryCount(uvarint) | keyCount(uvarint)
//	then per key, sorted by (kind, a, b):
//	  kind(1B) | len(a) a | len(b) b | ordCount(uvarint)
//	  per block: first last byteLen (uvarints)
//	  concatenated delta-varint block data
//
// Everything before the block data is the shard's key table; parsing it
// builds the posting map while each posting's blocks stay raw bytes
// slices into the segment, so a lazily-loaded shard costs its key table
// plus only the blocks queries actually decode. The entry count pins
// the segment to one cleaned snapshot length — a mismatch at load time
// downgrades the whole index to an in-memory rebuild rather than serve
// ordinals against the wrong snapshot.

// indexFormatVersion is the segment encode version.
const indexFormatVersion = 1

var indexMagic = []byte("NVIX")

// indexSegName is the checkpoint file name of shard s's segment.
func indexSegName(s int) string { return fmt.Sprintf("index-%02d.seg", s) }

// keyLess is the canonical key order of the wire format.
func keyLess(a, b key) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.a != b.a {
		return a.a < b.a
	}
	return a.b < b.b
}

// appendShardWire serializes one shard's posting map over a snapshot of
// `entries` entries. The encoding is canonical: keys in (kind, a, b)
// order, blocks exactly as encodePosting lays them out.
func appendShardWire(buf []byte, entries int, post map[key]*posting) []byte {
	buf = append(buf, indexMagic...)
	buf = append(buf, indexFormatVersion)
	buf = binary.AppendUvarint(buf, uint64(entries))
	keys := make([]key, 0, len(post))
	for k := range post {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		p := post[k]
		buf = append(buf, byte(k.kind))
		buf = binary.AppendUvarint(buf, uint64(len(k.a)))
		buf = append(buf, k.a...)
		buf = binary.AppendUvarint(buf, uint64(len(k.b)))
		buf = append(buf, k.b...)
		buf = binary.AppendUvarint(buf, uint64(p.count))
		for _, sk := range p.skips {
			buf = binary.AppendUvarint(buf, uint64(sk.first))
			buf = binary.AppendUvarint(buf, uint64(sk.last))
			buf = binary.AppendUvarint(buf, uint64(sk.bytes))
		}
		buf = append(buf, p.data...)
	}
	return buf
}

// wireReader is a bounds-checked cursor over one segment.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.buf)-r.off {
		return nil, errors.New("truncated segment")
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) byteVal() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errors.New("truncated varint")
	}
	r.off += n
	return v, nil
}

// str reads a length-prefixed string, copying out of the segment so
// parsed keys never pin the raw buffer.
func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// parseShardHeader validates the magic and version and returns the
// entry count.
func parseShardHeader(r *wireReader) (int, error) {
	magic, err := r.take(len(indexMagic))
	if err != nil || !bytes.Equal(magic, indexMagic) {
		return 0, errors.New("bad index segment magic")
	}
	ver, err := r.byteVal()
	if err != nil {
		return 0, err
	}
	if ver != indexFormatVersion {
		return 0, fmt.Errorf("unsupported index segment version %d", ver)
	}
	entries, err := r.uvarint()
	if err != nil || entries > math.MaxUint32 {
		return 0, errors.New("bad index segment entry count")
	}
	return int(entries), nil
}

// peekShardEntries reads only the segment header, leaving every posting
// untouched — the boot-time cost of a lazy shard.
func peekShardEntries(raw []byte) (int, error) {
	return parseShardHeader(&wireReader{buf: raw})
}

// parseShardWire parses one shard segment into its posting map. Block
// data is aliased, not copied; per-block corruption surfaces later, on
// first decode. Structural corruption — truncation, out-of-order or
// duplicate keys, skip entries out of order or out of snapshot range —
// is rejected here.
func parseShardWire(raw []byte) (map[key]*posting, int, error) {
	r := &wireReader{buf: raw}
	entries, err := parseShardHeader(r)
	if err != nil {
		return nil, 0, err
	}
	nKeysU, err := r.uvarint()
	if err != nil || nKeysU > uint64(len(raw)) {
		return nil, 0, errors.New("bad index segment key count")
	}
	nKeys := int(nKeysU)
	post := make(map[key]*posting, nKeys)
	var prevKey key
	for i := 0; i < nKeys; i++ {
		kindB, err := r.byteVal()
		if err != nil {
			return nil, 0, err
		}
		kind := keyKind(kindB)
		if kind < keyVendor || kind > keyYear {
			return nil, 0, fmt.Errorf("bad index key kind %d", kindB)
		}
		a, err := r.str()
		if err != nil {
			return nil, 0, err
		}
		b, err := r.str()
		if err != nil {
			return nil, 0, err
		}
		k := key{kind: kind, a: a, b: b}
		if i > 0 && !keyLess(prevKey, k) {
			return nil, 0, errors.New("index keys out of order")
		}
		prevKey = k
		countU, err := r.uvarint()
		if err != nil || countU == 0 || countU > uint64(entries) {
			return nil, 0, errors.New("bad posting count")
		}
		count := int(countU)
		nBlocks := (count + postingBlockSize - 1) / postingBlockSize
		skips := make([]skipEntry, nBlocks)
		var off uint64
		prevLast := int64(-1)
		for bi := range skips {
			first, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			last, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			blen, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if first > last || last >= uint64(entries) {
				return nil, 0, errors.New("posting skip entry out of range")
			}
			if int64(first) <= prevLast {
				return nil, 0, errors.New("posting skip entries out of order")
			}
			if off+blen > uint64(len(raw)) {
				return nil, 0, errors.New("posting block extent out of range")
			}
			skips[bi] = skipEntry{
				first: uint32(first),
				last:  uint32(last),
				off:   uint32(off),
				bytes: uint32(blen),
			}
			off += blen
			prevLast = int64(last)
		}
		data, err := r.take(int(off))
		if err != nil {
			return nil, 0, err
		}
		post[k] = &posting{count: count, skips: skips, data: data}
	}
	if r.off != len(raw) {
		return nil, 0, errors.New("trailing bytes after index segment")
	}
	return post, entries, nil
}
